(* The rule catalogue for the determinism & protocol-hygiene linter.

   Each rule guards one of the reproduction's standing assumptions:
   byte-identical experiment tables at 1 vs N domains, lossless trace
   replay, and the Section 4 algorithm's tolerance of obsolete-ballot
   traffic.  The pass is purely syntactic (Parsetree, no typing), so
   every rule is written to be cheap, predictable and suppressible at
   the site with an explicit reason. *)

type id = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | T1 | T2 | T3

let all_ids = [ R1; R2; R3; R4; R5; R6; R7; R8; R9; T1; T2; T3 ]

let id_to_string = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"
  | T1 -> "T1"
  | T2 -> "T2"
  | T3 -> "T3"

let id_of_string s =
  match String.uppercase_ascii s with
  | "R1" -> Some R1
  | "R2" -> Some R2
  | "R3" -> Some R3
  | "R4" -> Some R4
  | "R5" -> Some R5
  | "R6" -> Some R6
  | "R7" -> Some R7
  | "R8" -> Some R8
  | "R9" -> Some R9
  | "T1" -> Some T1
  | "T2" -> Some T2
  | "T3" -> Some T3
  | _ -> None

let title = function
  | R1 -> "wall clock outside lib/realtime"
  | R2 -> "ambient Random outside the seeded PRNG"
  | R3 -> "Hashtbl iteration order leaks into results"
  | R4 -> "toplevel mutable state in Domain_pool-reachable code"
  | R5 -> "physical equality on non-immediate values"
  | R6 -> "polymorphic compare/equality hazard"
  | R7 -> "wildcard arm in a protocol message-handler match"
  | R8 -> "partial function on a step/handle path"
  | R9 -> "per-event allocation on a step/handle path"
  | T1 -> "nondeterminism taints the deterministic core"
  | T2 -> "hot-path hazard in a step/handle-reachable helper"
  | T3 -> "unbalanced message-arena acquire/release"

let rationale = function
  | R1 ->
      "Simulated runs must depend only on Sim_time; a wall-clock read \
       makes replay and 1-vs-N-domain table equality impossible.  Only \
       lib/realtime (the wall-clock engine) may read the real clock."
  | R2 ->
      "All randomness must flow from the run's seeded splitmix64 stream \
       (Sim.Prng); ambient Random.* draws from process-global state and \
       breaks replay."
  | R3 ->
      "Hashtbl.iter/fold/to_seq enumerate in hash-bucket order, which is \
       not part of any contract.  Deterministic modules must take sorted \
       snapshots (Sim.Sorted_tbl) before iterating."
  | R4 ->
      "A module-level ref/Hashtbl/etc. in a library reachable from \
       Domain_pool closures is shared across worker domains: a data race \
       at worst, cross-run contamination at best.  Keep state inside the \
       per-run record."
  | R5 ->
      "==/!= on boxed values compares addresses, which vary with \
       allocation order; use structural or domain-specific equality."
  | R6 ->
      "Bare polymorphic compare (and =/<> against float literals) order \
       variants by tag and bits: adding a constructor or a NaN silently \
       reorders results.  Use monomorphic compares (Int.compare, \
       Float.compare, Ballot.compare, ...)."
  | R7 ->
      "A `_` arm in a match over protocol messages silently drops any \
       constructor added later; the Section 4 algorithm must *explicitly* \
       tolerate obsolete-ballot traffic, so handlers enumerate every \
       message."
  | R8 ->
      "List.hd/Option.get/failwith/assert false on a step/handle path \
       turns an unexpected-but-tolerable message interleaving into a \
       crash; protocol code must handle or explicitly ignore, never trap."
  | R9 ->
      "Printf/Format sprintf and list append (@) on a step/handle path \
       allocate (and sprintf interprets its format) once per event, \
       which the allocation-free engine budget (test/test_alloc.ml) \
       pays for on every run.  Advisory: build text in the ctx scratch \
       buffer with the Numfmt emitters and prefer cons + a single \
       reversal (or the scratch tables) over repeated append."
  | T1 ->
      "Whole-program taint: a value originating from the wall clock, \
       ambient Random or Domain state may not flow — through calls \
       across module boundaries — into any function reachable from a \
       step/handle entry point or Mcheck successor generation.  Unlike \
       R1/R2, a sited allow on the read does not cover the core: the \
       laundered value still breaks replay.  lib/realtime is the sole \
       declared source-sink boundary."
  | T2 ->
      "Whole-program reachability: the R7/R8/R9 hazards (wildcard \
       message arms, partial functions, per-event allocation) apply to \
       every function *transitively reachable* from a step/handle \
       entry point, not just code lexically inside one — a helper one \
       module over is on the hot path all the same."
  | T3 ->
      "Arena pairing: every message-arena acquire must be matched by \
       exactly one release (or an explicit ownership transfer) on \
       every control path.  A branch that drops the slot leaks it from \
       the free list, which the test_alloc.ml slope tests only catch \
       dynamically and only on exercised paths."

type finding = {
  rule : id;
  file : string;  (* repo-relative, '/'-separated *)
  line : int;  (* 1-based *)
  col : int;  (* 0-based, as in compiler locations *)
  context : string;  (* the offending token, e.g. "Unix.gettimeofday" *)
  message : string;
  chain : string list;
      (* T1/T2: the witness call chain, entry point first, the
         function containing the finding last.  [] for syntactic
         rules. *)
}

let finding ?(chain = []) ~rule ~file ~line ~col ~context ~message () =
  { rule; file; line; col; context; message; chain }

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d:%d: [%s] %s (%s)%s" f.file f.line f.col
    (id_to_string f.rule) f.message
    (title f.rule)
    (match f.chain with
    | [] -> ""
    | chain ->
        Printf.sprintf " [chain: %s]" (String.concat " -> " chain))

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else String.compare (id_to_string a.rule) (id_to_string b.rule)
