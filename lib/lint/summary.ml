(* Per-compilation-unit summaries: the exchange format between the
   phase-1 walk (Ast_scan.scan_unit, one file at a time) and the
   phase-2 whole-program fixpoints (Callgraph + Taint).

   A summary is deliberately shallow — names, sites and shapes, no
   Parsetree — so building the call graph from N summaries is pure
   list/array work and independent of the order the files were walked
   in (test_lint pins that with a qcheck permutation property). *)

type site = {
  s_line : int;  (* 1-based *)
  s_col : int;  (* 0-based *)
  s_context : string;  (* the token, e.g. "Unix.gettimeofday" *)
}

let compare_site a b =
  let c = Int.compare a.s_line b.s_line in
  if c <> 0 then c
  else
    let c = Int.compare a.s_col b.s_col in
    if c <> 0 then c else String.compare a.s_context b.s_context

(* The R7/R8/R9-shaped hazards phase 1 records *everywhere* (not just
   lexically inside handlers); phase 2 re-examines them under hot-path
   reachability.  [reported] marks sites the syntactic rules already
   flagged, so T2 never double-reports a site R7/R8/R9 covers. *)
type hazard_kind =
  | Wildcard_arm  (* R7 shape: `_` in a protocol message match *)
  | Partial_fn  (* R8 shape: List.hd/Option.get/failwith *)
  | Alloc_sprintf  (* R9 shape: sprintf family *)
  | Alloc_append  (* R9 shape: (@) / List.append *)

type hazard = {
  h_site : site;
  h_kind : hazard_kind;
  h_reported : bool;  (* already emitted as a syntactic R7/R8/R9 *)
}

(* An arena acquire whose slot is provably dropped on some control
   path of the acquiring function. *)
type leak = {
  k_acquire : site;  (* the acquire call *)
  k_drop : site;  (* the branch arm that loses the slot *)
  k_detail : string;  (* human description of the lossy path *)
}

type def = {
  d_name : string;  (* the binding's own name *)
  d_path : string list;
      (* fully qualified: unit prefix + submodule path + name,
         e.g. ["Sim"; "Engine"; "send"] *)
  d_site : site;  (* the binding's pattern location *)
  d_entry : bool;  (* step/handle/on_* in protocol scope, or mcheck
                      successor generation: a deterministic-core root *)
  d_calls : string list;
      (* dotted identifier paths referenced from the body, sorted and
         deduplicated; resolution happens in Callgraph *)
  d_taints : site list;  (* direct nondeterminism-source reads *)
  d_hazards : hazard list;
  d_leaks : leak list;
}

type t = { file : string; defs : def list }

let qualified d = String.concat "." d.d_path

(* ------------------------------------------------------------------ *)
(* Unit naming                                                         *)
(* ------------------------------------------------------------------ *)

(* The module path a repo-relative file compiles to.  Library wrapping
   in this tree always matches the directory name (lib/sim -> Sim),
   so lib/<dir>/<m>.ml is <Dir>.<M>; anything else (bin, bench, test,
   examples, fixtures) is a bare top-level unit <M>. *)
let unit_path_of_file file =
  let base = Filename.remove_extension (Filename.basename file) in
  let m = String.capitalize_ascii base in
  match String.split_on_char '/' file with
  | "lib" :: dir :: _ :: _ -> [ String.capitalize_ascii dir; m ]
  | _ -> [ m ]
