(** The whole-program call graph over per-unit summaries: phase 2's
    substrate.

    Resolution is nominal and conservative — a qualified reference
    resolves to every definition whose path ends with it, a bare
    reference resolves same-file only.  Node numbering, adjacency and
    BFS order are all deterministic functions of the summary set. *)

type node = { nid : int; file : string; def : Summary.def }

type t = {
  nodes : node array;  (** indexed by nid, file-then-definition order *)
  succ : int array array;  (** sorted, deduplicated adjacency *)
  entries : int list;  (** nids of [d_entry] definitions, ascending *)
}

val build : Summary.t list -> t
(** Order-insensitive: summaries are sorted by file before numbering. *)

val node_count : t -> int

val reach : t -> int array
(** BFS parent array from the entry set: [-2] unreachable, [-1] an
    entry point, otherwise the first-discovering predecessor.  Ascending
    visit order makes shortest witness chains deterministic. *)

val reachable : int array -> int -> bool

val chain : t -> int array -> int -> string list
(** Witness path to a node: entry point first, the node last, as
    fully-qualified dotted names.  [[]] if unreachable. *)

val to_dot : Format.formatter -> t -> unit
(** Graphviz dump for [--call-graph dot]: entries boxed, reachable
    nodes shaded. *)
