(** Per-compilation-unit summaries: what the phase-1 walk extracts
    from each file and the phase-2 whole-program analyses consume.

    Summaries are shallow (names, sites, shapes — no Parsetree), so
    phase 2 is a pure function of the summary *set*: building the call
    graph is independent of the order files were walked in. *)

type site = {
  s_line : int;  (** 1-based *)
  s_col : int;  (** 0-based *)
  s_context : string;  (** the token at the site *)
}

val compare_site : site -> site -> int

type hazard_kind =
  | Wildcard_arm  (** R7 shape: [_] arm in a protocol message match *)
  | Partial_fn  (** R8 shape: [List.hd]/[Option.get]/[failwith] *)
  | Alloc_sprintf  (** R9 shape: the sprintf family *)
  | Alloc_append  (** R9 shape: [(@)] / [List.append] *)

type hazard = {
  h_site : site;
  h_kind : hazard_kind;
  h_reported : bool;
      (** already emitted as a syntactic R7/R8/R9 finding; T2 skips it *)
}

type leak = {
  k_acquire : site;  (** the arena-acquire call *)
  k_drop : site;  (** the branch arm that drops the slot *)
  k_detail : string;
}

type def = {
  d_name : string;
  d_path : string list;
      (** fully qualified: unit prefix + submodule path + name *)
  d_site : site;
  d_entry : bool;
      (** a deterministic-core root: step/handle/on_* in protocol
          scope, or mcheck successor generation *)
  d_calls : string list;  (** referenced dotted paths, sorted, deduped *)
  d_taints : site list;  (** direct nondeterminism-source reads *)
  d_hazards : hazard list;
  d_leaks : leak list;
}

type t = { file : string; defs : def list }

val qualified : def -> string
(** The dotted rendering of [d_path]. *)

val unit_path_of_file : string -> string list
(** The module path a repo-relative file compiles to:
    [lib/<dir>/<m>.ml] is [<Dir>.<M>] (library wrapping matches the
    directory name in this tree), anything else a bare [<M>]. *)
