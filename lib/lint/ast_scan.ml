(* The Parsetree pass: one Ast_iterator walk per file, all nine rules.

   Everything here is syntactic — no typing, no cmt files — so each
   rule is a conservative pattern over names and shapes, scoped by the
   file's path (a wall-clock read is fine in lib/realtime, Hashtbl
   iteration is fine inside Sorted_tbl, ...).  False positives are the
   price of a zero-dependency pass; the suppression comment exists to
   pay it explicitly, with a reason, at the site. *)

open Parsetree

type scope = {
  file : string;  (* repo-relative, '/'-separated *)
  allow_wall_clock : bool;  (* R1 off: the wall-clock engine itself *)
  allow_random : bool;  (* R2 off: the seeded PRNG implementation *)
  allow_tbl_iter : bool;  (* R3 off: the sorted-snapshot helper *)
  module_state_scope : bool;  (* R4 on: library code Domain_pool can reach *)
  protocol_scope : bool;  (* R7/R8 on: protocol step/handle code *)
}

let starts_with prefix s = String.starts_with ~prefix s

let scope_of_path path =
  (* windows-proof normalization; the tree itself always uses '/' *)
  let file = String.map (fun c -> if c = '\\' then '/' else c) path in
  let contains_fixtures =
    (* the linter's own test corpus runs with every rule armed *)
    let needle = "lint_fixtures" in
    let n = String.length needle and l = String.length file in
    let rec go i =
      i + n <= l && (String.sub file i n = needle || go (i + 1))
    in
    go 0
  in
  if contains_fixtures then
    {
      file;
      allow_wall_clock = false;
      allow_random = false;
      allow_tbl_iter = false;
      module_state_scope = true;
      protocol_scope = true;
    }
  else
    {
      file;
      allow_wall_clock = starts_with "lib/realtime/" file;
      allow_random =
        file = "lib/sim/prng.ml" || file = "lib/sim/prng.mli";
      allow_tbl_iter =
        file = "lib/sim/sorted_tbl.ml" || file = "lib/sim/sorted_tbl.mli";
      module_state_scope = starts_with "lib/" file;
      protocol_scope =
        List.exists
          (fun p -> starts_with p file)
          [ "lib/dgl/"; "lib/bconsensus/"; "lib/baselines/"; "lib/smr/" ];
    }

(* ------------------------------------------------------------------ *)
(* Name helpers                                                        *)
(* ------------------------------------------------------------------ *)

let path_of_lid lid = String.concat "." (Longident.flatten lid)

let head_of_lid lid =
  match Longident.flatten lid with [] -> "" | h :: _ -> h

let wall_clock_fns = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let tbl_iter_fns =
  [
    "Hashtbl.iter";
    "Hashtbl.fold";
    "Hashtbl.to_seq";
    "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values";
  ]

let partial_fns = [ "List.hd"; "List.tl"; "Option.get"; "failwith" ]

(* R9: per-event allocators.  sprintf also interprets its format string
   each call; (@) copies its whole left operand. *)
let sprintf_fns = [ "Printf.sprintf"; "Format.sprintf"; "Format.asprintf" ]

let append_fns = [ "@"; "List.append"; "Stdlib.List.append" ]

(* Allocators whose module-level evaluation creates shared mutable
   state.  [ref] is the headline; the rest are the stdlib's other
   mutable containers. *)
let mutable_allocators =
  [
    "ref";
    "Hashtbl.create";
    "Queue.create";
    "Stack.create";
    "Buffer.create";
    "Bytes.create";
    "Bytes.make";
    "Array.make";
    "Array.create_float";
    "Array.init";
    "Atomic.make";
    "Weak.create";
  ]

let is_handler_name name =
  starts_with "handle_" name
  || starts_with "on_message" name
  || name = "step"
  || starts_with "step_" name

(* ------------------------------------------------------------------ *)
(* Shape helpers                                                       *)
(* ------------------------------------------------------------------ *)

(* Values ==/!= is legitimate on: immediates known from the literal. *)
let is_immediate_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _) -> true
  | Pexp_construct ({ txt = Longident.Lident ("true" | "false" | "()"); _ }, None)
    ->
      true
  | _ -> false

let is_float_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

(* The eagerly-evaluated spine of a module-level binding: stops at
   anything that defers evaluation (fun, function, lazy).  Returns the
   first mutable-allocator application found. *)
let rec eager_mutable_alloc e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
    when List.mem (path_of_lid txt) mutable_allocators ->
      Some (path_of_lid txt)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) ->
      eager_mutable_alloc e
  | Pexp_let (_, vbs, body) ->
      let from_vbs =
        List.find_map (fun vb -> eager_mutable_alloc vb.pvb_expr) vbs
      in
      (match from_vbs with Some _ as r -> r | None -> eager_mutable_alloc body)
  | Pexp_sequence (a, b) -> (
      match eager_mutable_alloc a with
      | Some _ as r -> r
      | None -> eager_mutable_alloc b)
  | Pexp_ifthenelse (_, t, eo) -> (
      match eager_mutable_alloc t with
      | Some _ as r -> r
      | None -> Option.bind eo eager_mutable_alloc)
  | Pexp_tuple es -> List.find_map eager_mutable_alloc es
  | Pexp_record (fields, base) -> (
      match List.find_map (fun (_, e) -> eager_mutable_alloc e) fields with
      | Some _ as r -> r
      | None -> Option.bind base eager_mutable_alloc)
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.find_map (fun c -> eager_mutable_alloc c.pc_rhs) cases
  | _ -> None

(* R7: does any arm of this match name a protocol-message constructor?
   Message constructors in this tree are always qualified through a
   module called [Messages] or [Xxx_messages]. *)
let rec pattern_mentions_message_ctor p =
  let lid_is_messages lid =
    List.exists
      (fun comp ->
        comp = "Messages"
        || (String.length comp > 9
            && String.lowercase_ascii
                 (String.sub comp (String.length comp - 9) 9)
               = "_messages"))
      (Longident.flatten lid)
  in
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, arg) ->
      lid_is_messages txt
      || Option.fold ~none:false
           ~some:(fun (_, p) -> pattern_mentions_message_ctor p)
           arg
  | Ppat_or (a, b) ->
      pattern_mentions_message_ctor a || pattern_mentions_message_ctor b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) ->
      pattern_mentions_message_ctor p
  | Ppat_tuple ps -> List.exists pattern_mentions_message_ctor ps
  | _ -> false

(* a top-level wildcard arm: `_`, possibly parenthesized/aliased *)
let rec is_wildcard_pattern p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> is_wildcard_pattern p
  | Ppat_or (a, b) -> is_wildcard_pattern a || is_wildcard_pattern b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)
(* ------------------------------------------------------------------ *)

let scan ~scope (structure : Parsetree.structure) : Rules.finding list =
  let findings = ref [] in
  let report ~rule ~loc ~context ~message =
    let pos = loc.Location.loc_start in
    findings :=
      Rules.finding ~rule ~file:scope.file ~line:pos.Lexing.pos_lnum
        ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
        ~context ~message
      :: !findings
  in
  (* module-level vs inside-an-expression: R4 only fires at module level *)
  let expr_depth = ref 0 in
  (* inside a step/handle binding: R7/R8 scope *)
  let handler_depth = ref 0 in

  let check_ident txt loc =
    let path = path_of_lid txt in
    if List.mem path wall_clock_fns && not scope.allow_wall_clock then
      report ~rule:Rules.R1 ~loc ~context:path
        ~message:
          (Printf.sprintf
             "%s reads the wall clock; simulated code must use Sim_time \
              (only lib/realtime may)"
             path);
    if head_of_lid txt = "Random" && not scope.allow_random then
      report ~rule:Rules.R2 ~loc ~context:path
        ~message:
          (Printf.sprintf
             "%s draws from the ambient generator; use the run's seeded \
              Sim.Prng stream"
             path);
    if List.mem path tbl_iter_fns && not scope.allow_tbl_iter then
      report ~rule:Rules.R3 ~loc ~context:path
        ~message:
          (Printf.sprintf
             "%s enumerates in hash-bucket order; take a sorted snapshot \
              (Sim.Sorted_tbl) instead"
             path);
    (match txt with
    | Longident.Lident (("==" | "!=") as op) ->
        report ~rule:Rules.R5 ~loc ~context:op
          ~message:
            (Printf.sprintf
               "(%s) is physical equality; use (%s) or a domain compare"
               op
               (if op = "==" then "=" else "<>"))
    | _ -> ());
    (match path with
    | "compare" | "Stdlib.compare" | "Pervasives.compare" ->
        report ~rule:Rules.R6 ~loc ~context:"compare"
          ~message:
            "bare polymorphic compare; use a monomorphic compare \
             (Int.compare, Float.compare, String.compare, ...)"
    | _ -> ());
    if
      scope.protocol_scope && !handler_depth > 0
      && List.mem path partial_fns
    then
      report ~rule:Rules.R8 ~loc ~context:path
        ~message:
          (Printf.sprintf
             "%s can raise on a step/handle path; protocol handlers must \
              tolerate every interleaving"
             path);
    if scope.protocol_scope && !handler_depth > 0 then begin
      if List.mem path sprintf_fns then
        report ~rule:Rules.R9 ~loc ~context:path
          ~message:
            (Printf.sprintf
               "%s allocates and re-interprets its format once per event \
                on a step/handle path; build the text in the ctx scratch \
                buffer with the Sim.Numfmt emitters"
               path);
      if List.mem path append_fns then
        report ~rule:Rules.R9 ~loc ~context:path
          ~message:
            (Printf.sprintf
               "(%s) copies its whole left operand once per event on a \
                step/handle path; prefer cons plus one reversal, or a \
                scratch table"
               (if path = "@" then "@" else path))
    end
  in

  let check_match_cases loc cases =
    if
      scope.protocol_scope && !handler_depth > 0
      && List.exists
           (fun c -> pattern_mentions_message_ctor c.pc_lhs)
           cases
    then
      List.iter
        (fun c ->
          if is_wildcard_pattern c.pc_lhs then
            report ~rule:Rules.R7 ~loc:c.pc_lhs.ppat_loc ~context:"_"
              ~message:
                "wildcard arm in a protocol message match; enumerate the \
                 constructors so new messages fail to compile here")
        cases;
    ignore loc
  in

  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      expr =
        (fun it e ->
          incr expr_depth;
          Fun.protect
            ~finally:(fun () -> decr expr_depth)
            (fun () ->
              match e.pexp_desc with
              | Pexp_apply
                  ( ({ pexp_desc = Pexp_ident { txt = Longident.Lident (("==" | "!=") as op); _ }; _ }
                     as fn),
                    args ) ->
                  (* applied physical equality: allowed when a literal
                     operand proves the comparison is on immediates *)
                  if not (List.exists (fun (_, a) -> is_immediate_literal a) args)
                  then
                    report ~rule:Rules.R5 ~loc:fn.pexp_loc ~context:op
                      ~message:
                        (Printf.sprintf
                           "(%s) is physical equality; use (%s) or a domain \
                            compare"
                           op
                           (if op = "==" then "=" else "<>"));
                  (* iterate the arguments only: visiting [fn] again
                     would double-report via the bare-ident case *)
                  List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
              | _ ->
                  (match e.pexp_desc with
                  | Pexp_ident { txt; loc } -> check_ident txt loc
                  | Pexp_apply
                      ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
                        args )
                    when List.exists (fun (_, a) -> is_float_literal a) args ->
                      report ~rule:Rules.R6 ~loc:e.pexp_loc
                        ~context:("float" ^ op)
                        ~message:
                          (Printf.sprintf
                             "(%s) against a float literal; use \
                              Float.compare or an epsilon test"
                             op)
                  | Pexp_assert
                      {
                        pexp_desc =
                          Pexp_construct
                            ({ txt = Longident.Lident "false"; _ }, None);
                        _;
                      }
                    when scope.protocol_scope && !handler_depth > 0 ->
                      report ~rule:Rules.R8 ~loc:e.pexp_loc
                        ~context:"assert false"
                        ~message:
                          "assert false on a step/handle path; protocol \
                           handlers must tolerate every interleaving"
                  | Pexp_match (_, cases) -> check_match_cases e.pexp_loc cases
                  | Pexp_function cases -> check_match_cases e.pexp_loc cases
                  | _ -> ());
                  default.Ast_iterator.expr it e))
      ;
      value_binding =
        (fun it vb ->
          let handler =
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } -> is_handler_name txt
            | _ -> false
          in
          if handler then begin
            incr handler_depth;
            Fun.protect
              ~finally:(fun () -> decr handler_depth)
              (fun () -> default.Ast_iterator.value_binding it vb)
          end
          else default.Ast_iterator.value_binding it vb);
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_value (_, vbs)
            when !expr_depth = 0 && scope.module_state_scope ->
              List.iter
                (fun vb ->
                  match eager_mutable_alloc vb.pvb_expr with
                  | Some alloc ->
                      report ~rule:Rules.R4 ~loc:vb.pvb_pat.ppat_loc
                        ~context:alloc
                        ~message:
                          (Printf.sprintf
                             "module-level %s is state shared across \
                              Domain_pool workers; keep it in the per-run \
                              record"
                             alloc)
                  | None -> ())
                vbs
          | _ -> ());
          default.Ast_iterator.structure_item it si);
    }
  in
  iter.Ast_iterator.structure iter structure;
  List.sort Rules.compare_findings !findings
