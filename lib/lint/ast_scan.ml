(* The Parsetree pass: one Ast_iterator walk per file.

   The walk does two jobs at once.  It evaluates the nine syntactic
   rules (R1-R9) exactly as before — conservative patterns over names
   and shapes, scoped by the file's path — and it extracts the file's
   Summary.t: every module-level definition with the identifier paths
   it references, its direct nondeterminism-source reads, its
   R7/R8/R9-shaped hazard sites, and any arena acquire whose slot a
   control path provably drops.  Phase 2 (Callgraph + Taint) turns the
   summaries into the whole-program T1/T2/T3 findings.

   Everything here is syntactic — no typing, no cmt files — so each
   rule is a conservative pattern; false positives are the price of a
   zero-dependency pass, and the suppression comment exists to pay it
   explicitly, with a reason, at the site. *)

open Parsetree

type scope = {
  file : string;  (* repo-relative, '/'-separated *)
  allow_wall_clock : bool;  (* R1 off: the wall-clock engine itself *)
  allow_random : bool;  (* R2 off: the seeded PRNG implementation *)
  allow_tbl_iter : bool;  (* R3 off: the sorted-snapshot helper *)
  module_state_scope : bool;  (* R4 on: library code Domain_pool can reach *)
  protocol_scope : bool;  (* R7/R8 on: protocol step/handle code *)
  mcheck_scope : bool;  (* successor generation counts as a T1/T2 entry *)
}

let starts_with prefix s = String.starts_with ~prefix s

let scope_of_path path =
  (* windows-proof normalization; the tree itself always uses '/' *)
  let file = String.map (fun c -> if c = '\\' then '/' else c) path in
  let contains_fixtures =
    (* the linter's own test corpus runs with every rule armed *)
    let needle = "lint_fixtures" in
    let n = String.length needle and l = String.length file in
    let rec go i =
      i + n <= l && (String.sub file i n = needle || go (i + 1))
    in
    go 0
  in
  if contains_fixtures then
    {
      file;
      allow_wall_clock = false;
      allow_random = false;
      allow_tbl_iter = false;
      module_state_scope = true;
      protocol_scope = true;
      mcheck_scope = true;
    }
  else
    {
      file;
      allow_wall_clock = starts_with "lib/realtime/" file;
      allow_random =
        file = "lib/sim/prng.ml" || file = "lib/sim/prng.mli";
      allow_tbl_iter =
        file = "lib/sim/sorted_tbl.ml" || file = "lib/sim/sorted_tbl.mli";
      module_state_scope = starts_with "lib/" file;
      protocol_scope =
        List.exists
          (fun p -> starts_with p file)
          [ "lib/dgl/"; "lib/bconsensus/"; "lib/baselines/"; "lib/smr/" ];
      mcheck_scope = starts_with "lib/mcheck/" file;
    }

(* ------------------------------------------------------------------ *)
(* Name helpers                                                        *)
(* ------------------------------------------------------------------ *)

let path_of_lid lid = String.concat "." (Longident.flatten lid)

let head_of_lid lid =
  match Longident.flatten lid with [] -> "" | h :: _ -> h

let wall_clock_fns = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

let tbl_iter_fns =
  [
    "Hashtbl.iter";
    "Hashtbl.fold";
    "Hashtbl.to_seq";
    "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values";
  ]

let partial_fns = [ "List.hd"; "List.tl"; "Option.get"; "failwith" ]

(* R9: per-event allocators.  sprintf also interprets its format string
   each call; (@) copies its whole left operand. *)
let sprintf_fns = [ "Printf.sprintf"; "Format.sprintf"; "Format.asprintf" ]

let append_fns = [ "@"; "List.append"; "Stdlib.List.append" ]

(* T3: the arena discipline is keyed on acquire-function names
   (matched on the last path component so Engine-internal and fixture
   arenas both resolve); *any* downstream mention of the bound slot —
   an arena_release/arena_free call included — counts as the slot
   being handled on that path. *)
let arena_acquire_fns = [ "arena_alloc"; "arena_acquire" ]

(* Allocators whose module-level evaluation creates shared mutable
   state.  [ref] is the headline; the rest are the stdlib's other
   mutable containers. *)
let mutable_allocators =
  [
    "ref";
    "Hashtbl.create";
    "Queue.create";
    "Stack.create";
    "Buffer.create";
    "Bytes.create";
    "Bytes.make";
    "Array.make";
    "Array.create_float";
    "Array.init";
    "Atomic.make";
    "Weak.create";
  ]

let is_handler_name name =
  starts_with "handle_" name
  || starts_with "on_message" name
  || name = "step"
  || starts_with "step_" name

(* T1/T2 entry points are broader than the lexical handler set: any
   on_* protocol callback (on_timer_impl, on_boot_impl, on_frame, ...)
   roots the deterministic core, as does mcheck successor generation. *)
let is_entry_name name = is_handler_name name || starts_with "on_" name

(* ------------------------------------------------------------------ *)
(* Shape helpers                                                       *)
(* ------------------------------------------------------------------ *)

(* Values ==/!= is legitimate on: immediates known from the literal. *)
let is_immediate_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _) -> true
  | Pexp_construct ({ txt = Longident.Lident ("true" | "false" | "()"); _ }, None)
    ->
      true
  | _ -> false

let is_float_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

(* The eagerly-evaluated spine of a module-level binding: stops at
   anything that defers evaluation (fun, function, lazy).  Returns the
   first mutable-allocator application found. *)
let rec eager_mutable_alloc e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
    when List.mem (path_of_lid txt) mutable_allocators ->
      Some (path_of_lid txt)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) ->
      eager_mutable_alloc e
  | Pexp_let (_, vbs, body) ->
      let from_vbs =
        List.find_map (fun vb -> eager_mutable_alloc vb.pvb_expr) vbs
      in
      (match from_vbs with Some _ as r -> r | None -> eager_mutable_alloc body)
  | Pexp_sequence (a, b) -> (
      match eager_mutable_alloc a with
      | Some _ as r -> r
      | None -> eager_mutable_alloc b)
  | Pexp_ifthenelse (_, t, eo) -> (
      match eager_mutable_alloc t with
      | Some _ as r -> r
      | None -> Option.bind eo eager_mutable_alloc)
  | Pexp_tuple es -> List.find_map eager_mutable_alloc es
  | Pexp_record (fields, base) -> (
      match List.find_map (fun (_, e) -> eager_mutable_alloc e) fields with
      | Some _ as r -> r
      | None -> Option.bind base eager_mutable_alloc)
  | Pexp_match (_, cases) | Pexp_try (_, cases) ->
      List.find_map (fun c -> eager_mutable_alloc c.pc_rhs) cases
  | _ -> None

(* R7: does any arm of this match name a protocol-message constructor?
   Message constructors in this tree are always qualified through a
   module called [Messages] or [Xxx_messages]. *)
let rec pattern_mentions_message_ctor p =
  let lid_is_messages lid =
    List.exists
      (fun comp ->
        comp = "Messages"
        || (String.length comp > 9
            && String.lowercase_ascii
                 (String.sub comp (String.length comp - 9) 9)
               = "_messages"))
      (Longident.flatten lid)
  in
  match p.ppat_desc with
  | Ppat_construct ({ txt; _ }, arg) ->
      lid_is_messages txt
      || Option.fold ~none:false
           ~some:(fun (_, p) -> pattern_mentions_message_ctor p)
           arg
  | Ppat_or (a, b) ->
      pattern_mentions_message_ctor a || pattern_mentions_message_ctor b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) ->
      pattern_mentions_message_ctor p
  | Ppat_tuple ps -> List.exists pattern_mentions_message_ctor ps
  | _ -> false

(* a top-level wildcard arm: `_`, possibly parenthesized/aliased *)
let rec is_wildcard_pattern p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> is_wildcard_pattern p
  | Ppat_or (a, b) -> is_wildcard_pattern a || is_wildcard_pattern b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* T3: arena slot drop analysis (intra-definition, path-sensitive)     *)
(* ------------------------------------------------------------------ *)

(* Does [e] mention the variable [s] at all?  Any occurrence — release,
   escape into a call, storage — counts as the slot being handled on
   that path; only a path with *no* occurrence drops it. *)
let mentions_var s e =
  let found = ref false in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } when x = s ->
              found := true
          | _ -> ());
          if not !found then default.Ast_iterator.expr it e);
    }
  in
  it.Ast_iterator.expr it e;
  !found

(* An arm whose whole body is an abort (raise/failwith/assert) is an
   error path: losing the slot there aborts the run, not the arena. *)
let rec is_abort_arm e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match path_of_lid txt with
      | "raise" | "raise_notrace" | "failwith" | "invalid_arg" -> true
      | _ -> false)
  | Pexp_assert _ -> true
  | Pexp_constraint (e, _) | Pexp_open (_, e) -> is_abort_arm e
  | Pexp_sequence (_, e) -> is_abort_arm e
  | _ -> false

(* [slot_drops s body] returns the branch arms of [body] on which the
   acquired slot [s] is dropped: a path with no occurrence of [s] while
   a sibling path does handle it.  Conservative in the quiet direction:
   any non-branching occurrence (a release, an escape into another
   call, storage into a structure) counts as handled, so ownership
   transfer through the summarized call graph never false-positives. *)
let slot_drops s body =
  (* (covers : s handled on every path, drops : (loc, detail) list) *)
  let rec go e =
    if not (mentions_var s e) then (false, [])
    else
      match e.pexp_desc with
      | Pexp_let (_, vbs, b) ->
          if List.exists (fun vb -> mentions_var s vb.pvb_expr) vbs then
            (true, [])
          else go b
      | Pexp_sequence (a, b) ->
          let ca, la = go a and cb, lb = go b in
          (ca || cb, la @ lb)
      | Pexp_constraint (e, _) | Pexp_open (_, e) -> go e
      | Pexp_ifthenelse (c, t, eo) ->
          if mentions_var s c then (true, [])
          else
            let arms =
              (t.pexp_loc, "this branch", t)
              ::
              (match eo with
              | Some el -> [ (el.pexp_loc, "this branch", el) ]
              | None -> [])
            in
            let implicit =
              match eo with
              | None ->
                  [ (e.pexp_loc, "the implicit else path", false, [], false) ]
              | Some _ -> []
            in
            combine
              (List.map
                 (fun (loc, what, arm) ->
                   let c, l = go arm in
                   (loc, what, c, l, is_abort_arm arm))
                 arms
              @ implicit)
      | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
          if mentions_var s scrut then (true, [])
          else
            combine
              (List.map
                 (fun case ->
                   let guard_covers =
                     match case.pc_guard with
                     | Some g -> mentions_var s g
                     | None -> false
                   in
                   let c, l = go case.pc_rhs in
                   ( case.pc_lhs.ppat_loc,
                     "this match arm",
                     guard_covers || c,
                     l,
                     is_abort_arm case.pc_rhs ))
                 cases)
      | _ -> (true, [])
  (* arms: (loc, what, covers, nested drops, aborts) *)
  and combine arms =
    let any = List.exists (fun (_, _, c, _, _) -> c) arms in
    let all = List.for_all (fun (_, _, c, _, aborts) -> c || aborts) arms in
    let drops =
      List.concat_map
        (fun (loc, what, c, nested, aborts) ->
          if c then nested
          else if aborts then []
          else if any then (loc, what ^ " drops the slot") :: nested
          else nested)
        arms
    in
    (all, drops)
  in
  if not (mentions_var s body) then
    [ (body.pexp_loc, "the slot is never used after the acquire") ]
  else snd (go body)

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)
(* ------------------------------------------------------------------ *)

let site_of_loc loc ~context =
  let pos = loc.Location.loc_start in
  {
    Summary.s_line = pos.Lexing.pos_lnum;
    s_col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol;
    s_context = context;
  }

(* Accumulator for the definition currently being walked. *)
type def_acc = {
  a_name : string;
  a_path : string list;
  a_site : Summary.site;
  a_entry : bool;
  mutable a_calls : string list;  (* reversed, with duplicates *)
  mutable a_taints : Summary.site list;  (* reversed *)
  mutable a_hazards : Summary.hazard list;  (* reversed *)
  mutable a_leaks : Summary.leak list;  (* reversed *)
}

let looks_like_ident path =
  path <> ""
  && (match path.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)

let scan_unit ~scope (structure : Parsetree.structure) :
    Rules.finding list * Summary.t =
  let findings = ref [] in
  let report ~rule ~loc ~context ~message =
    let pos = loc.Location.loc_start in
    findings :=
      Rules.finding ~rule ~file:scope.file ~line:pos.Lexing.pos_lnum
        ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
        ~context ~message ()
      :: !findings
  in
  (* module-level vs inside-an-expression: R4 only fires at module
     level, and definitions only open at module level *)
  let expr_depth = ref 0 in
  (* inside a step/handle binding: R7/R8/R9 lexical scope *)
  let handler_depth = ref 0 in
  (* submodule path within the unit, innermost first *)
  let module_stack = ref [] in
  let unit_path = Summary.unit_path_of_file scope.file in
  let defs = ref [] in
  let current = ref None in

  let in_handler () = scope.protocol_scope && !handler_depth > 0 in

  let add_call path =
    match !current with
    | Some acc when looks_like_ident path -> acc.a_calls <- path :: acc.a_calls
    | _ -> ()
  in
  let add_taint loc path =
    match !current with
    | Some acc ->
        acc.a_taints <- site_of_loc loc ~context:path :: acc.a_taints
    | None -> ()
  in
  let add_hazard loc context kind =
    match !current with
    | Some acc ->
        acc.a_hazards <-
          {
            Summary.h_site = site_of_loc loc ~context;
            h_kind = kind;
            h_reported = in_handler ();
          }
          :: acc.a_hazards
    | None -> ()
  in

  let check_ident txt loc =
    let path = path_of_lid txt in
    add_call path;
    if List.mem path wall_clock_fns then begin
      if not scope.allow_wall_clock then begin
        add_taint loc path;
        report ~rule:Rules.R1 ~loc ~context:path
          ~message:
            (Printf.sprintf
               "%s reads the wall clock; simulated code must use Sim_time \
                (only lib/realtime may)"
               path)
      end
    end;
    if head_of_lid txt = "Random" && not scope.allow_random then begin
      add_taint loc path;
      report ~rule:Rules.R2 ~loc ~context:path
        ~message:
          (Printf.sprintf
             "%s draws from the ambient generator; use the run's seeded \
              Sim.Prng stream"
             path)
    end;
    (* Domain-local state (Domain.self, Domain.DLS, ...) is a taint
       source for T1 even though no syntactic rule bans it outright:
       Domain_pool may use it, the deterministic core may not. *)
    if head_of_lid txt = "Domain" then add_taint loc path;
    if List.mem path tbl_iter_fns && not scope.allow_tbl_iter then
      report ~rule:Rules.R3 ~loc ~context:path
        ~message:
          (Printf.sprintf
             "%s enumerates in hash-bucket order; take a sorted snapshot \
              (Sim.Sorted_tbl) instead"
             path);
    (match txt with
    | Longident.Lident (("==" | "!=") as op) ->
        report ~rule:Rules.R5 ~loc ~context:op
          ~message:
            (Printf.sprintf
               "(%s) is physical equality; use (%s) or a domain compare"
               op
               (if op = "==" then "=" else "<>"))
    | _ -> ());
    (match path with
    | "compare" | "Stdlib.compare" | "Pervasives.compare" ->
        report ~rule:Rules.R6 ~loc ~context:"compare"
          ~message:
            "bare polymorphic compare; use a monomorphic compare \
             (Int.compare, Float.compare, String.compare, ...)"
    | _ -> ());
    if List.mem path partial_fns then begin
      add_hazard loc path Summary.Partial_fn;
      if in_handler () then
        report ~rule:Rules.R8 ~loc ~context:path
          ~message:
            (Printf.sprintf
               "%s can raise on a step/handle path; protocol handlers must \
                tolerate every interleaving"
               path)
    end;
    if List.mem path sprintf_fns then begin
      add_hazard loc path Summary.Alloc_sprintf;
      if in_handler () then
        report ~rule:Rules.R9 ~loc ~context:path
          ~message:
            (Printf.sprintf
               "%s allocates and re-interprets its format once per event \
                on a step/handle path; build the text in the ctx scratch \
                buffer with the Sim.Numfmt emitters"
               path)
    end;
    if List.mem path append_fns then begin
      add_hazard loc path Summary.Alloc_append;
      if in_handler () then
        report ~rule:Rules.R9 ~loc ~context:path
          ~message:
            (Printf.sprintf
               "(%s) copies its whole left operand once per event on a \
                step/handle path; prefer cons plus one reversal, or a \
                scratch table"
               (if path = "@" then "@" else path))
    end
  in

  let check_match_cases loc cases =
    if
      List.exists (fun c -> pattern_mentions_message_ctor c.pc_lhs) cases
    then
      List.iter
        (fun c ->
          if is_wildcard_pattern c.pc_lhs then begin
            add_hazard c.pc_lhs.ppat_loc "_" Summary.Wildcard_arm;
            if in_handler () then
              report ~rule:Rules.R7 ~loc:c.pc_lhs.ppat_loc ~context:"_"
                ~message:
                  "wildcard arm in a protocol message match; enumerate the \
                   constructors so new messages fail to compile here"
          end)
        cases;
    ignore loc
  in

  (* T3: a let-bound arena acquire must not lose its slot on any branch
     of the body it scopes. *)
  let strip_rhs e =
    let rec go e =
      match e.pexp_desc with
      | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) ->
          go e
      | _ -> e
    in
    go e
  in
  let last_component path =
    match List.rev (String.split_on_char '.' path) with
    | last :: _ -> last
    | [] -> path
  in
  let check_arena_let vbs body =
    match !current with
    | None -> ()
    | Some acc ->
        List.iter
          (fun vb ->
            match (vb.pvb_pat.ppat_desc, (strip_rhs vb.pvb_expr).pexp_desc) with
            | ( Ppat_var { txt = s; _ },
                Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) )
              when List.mem (last_component (path_of_lid txt)) arena_acquire_fns
              ->
                let acquire =
                  site_of_loc vb.pvb_expr.pexp_loc ~context:(path_of_lid txt)
                in
                List.iter
                  (fun (loc, detail) ->
                    acc.a_leaks <-
                      {
                        Summary.k_acquire = acquire;
                        k_drop = site_of_loc loc ~context:(path_of_lid txt);
                        k_detail = detail;
                      }
                      :: acc.a_leaks)
                  (slot_drops s body)
            | _ -> ())
          vbs
  in

  let close_def () =
    match !current with
    | None -> ()
    | Some acc ->
        defs :=
          {
            Summary.d_name = acc.a_name;
            d_path = acc.a_path;
            d_site = acc.a_site;
            d_entry = acc.a_entry;
            d_calls = List.sort_uniq String.compare acc.a_calls;
            d_taints = List.rev acc.a_taints;
            d_hazards = List.rev acc.a_hazards;
            d_leaks = List.rev acc.a_leaks;
          }
          :: !defs;
        current := None
  in

  let default = Ast_iterator.default_iterator in
  let iter =
    {
      default with
      expr =
        (fun it e ->
          incr expr_depth;
          Fun.protect
            ~finally:(fun () -> decr expr_depth)
            (fun () ->
              match e.pexp_desc with
              | Pexp_apply
                  ( ({ pexp_desc = Pexp_ident { txt = Longident.Lident (("==" | "!=") as op); _ }; _ }
                     as fn),
                    args ) ->
                  (* applied physical equality: allowed when a literal
                     operand proves the comparison is on immediates *)
                  if not (List.exists (fun (_, a) -> is_immediate_literal a) args)
                  then
                    report ~rule:Rules.R5 ~loc:fn.pexp_loc ~context:op
                      ~message:
                        (Printf.sprintf
                           "(%s) is physical equality; use (%s) or a domain \
                            compare"
                           op
                           (if op = "==" then "=" else "<>"));
                  (* iterate the arguments only: visiting [fn] again
                     would double-report via the bare-ident case *)
                  List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
              | _ ->
                  (match e.pexp_desc with
                  | Pexp_ident { txt; loc } -> check_ident txt loc
                  | Pexp_apply
                      ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ }; _ },
                        args )
                    when List.exists (fun (_, a) -> is_float_literal a) args ->
                      report ~rule:Rules.R6 ~loc:e.pexp_loc
                        ~context:("float" ^ op)
                        ~message:
                          (Printf.sprintf
                             "(%s) against a float literal; use \
                              Float.compare or an epsilon test"
                             op)
                  | Pexp_assert
                      {
                        pexp_desc =
                          Pexp_construct
                            ({ txt = Longident.Lident "false"; _ }, None);
                        _;
                      }
                    when in_handler () ->
                      report ~rule:Rules.R8 ~loc:e.pexp_loc
                        ~context:"assert false"
                        ~message:
                          "assert false on a step/handle path; protocol \
                           handlers must tolerate every interleaving"
                  | Pexp_match (_, cases) -> check_match_cases e.pexp_loc cases
                  | Pexp_function cases -> check_match_cases e.pexp_loc cases
                  | Pexp_let (_, vbs, body) -> check_arena_let vbs body
                  | _ -> ());
                  default.Ast_iterator.expr it e))
      ;
      value_binding =
        (fun it vb ->
          let name =
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } -> Some txt
            | _ -> None
          in
          let handler =
            match name with Some n -> is_handler_name n | None -> false
          in
          let opened =
            (* module-level named binding: open a summary definition *)
            match name with
            | Some n when !expr_depth = 0 && !current = None ->
                current :=
                  Some
                    {
                      a_name = n;
                      a_path = unit_path @ List.rev (n :: !module_stack);
                      a_site = site_of_loc vb.pvb_pat.ppat_loc ~context:n;
                      a_entry =
                        (scope.protocol_scope && is_entry_name n)
                        || (scope.mcheck_scope && n = "successors");
                      a_calls = [];
                      a_taints = [];
                      a_hazards = [];
                      a_leaks = [];
                    };
                (* the binding's own rhs can be an arena let at depth 0 *)
                (match (strip_rhs vb.pvb_expr).pexp_desc with
                | Pexp_let (_, vbs, body) -> check_arena_let vbs body
                | _ -> ());
                true
            | _ -> false
          in
          let finish () = if opened then close_def () in
          if handler then begin
            incr handler_depth;
            Fun.protect
              ~finally:(fun () ->
                decr handler_depth;
                finish ())
              (fun () -> default.Ast_iterator.value_binding it vb)
          end
          else
            Fun.protect ~finally:finish (fun () ->
                default.Ast_iterator.value_binding it vb));
      module_binding =
        (fun it mb ->
          let name =
            match mb.pmb_name.Location.txt with Some n -> n | None -> "_"
          in
          module_stack := name :: !module_stack;
          Fun.protect
            ~finally:(fun () ->
              module_stack := List.tl !module_stack)
            (fun () -> default.Ast_iterator.module_binding it mb));
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_value (_, vbs)
            when !expr_depth = 0 && scope.module_state_scope ->
              List.iter
                (fun vb ->
                  match eager_mutable_alloc vb.pvb_expr with
                  | Some alloc ->
                      report ~rule:Rules.R4 ~loc:vb.pvb_pat.ppat_loc
                        ~context:alloc
                        ~message:
                          (Printf.sprintf
                             "module-level %s is state shared across \
                              Domain_pool workers; keep it in the per-run \
                              record"
                             alloc)
                  | None -> ())
                vbs
          | _ -> ());
          default.Ast_iterator.structure_item it si);
    }
  in
  iter.Ast_iterator.structure iter structure;
  ( List.sort Rules.compare_findings !findings,
    { Summary.file = scope.file; defs = List.rev !defs } )

let scan ~scope structure = fst (scan_unit ~scope structure)
