(* The whole-program call graph over per-unit summaries.

   Nodes are module-level definitions; edges resolve the dotted
   identifier paths each body references against the definitions the
   summary set declares.  Resolution is purely nominal and
   conservative:

   - a qualified reference (>= 2 components) resolves to every
     definition whose fully-qualified path ends with those components
     ("Engine.send" matches Sim.Engine.send; a multi-match adds an
     edge to each candidate);
   - a bare reference resolves within its own file only (same-unit
     helpers; cross-unit bare names would need the open-environment,
     which a syntactic pass does not have).

   Determinism: summaries are sorted by file and nodes numbered in
   file-then-definition order before any edge is built, so the graph —
   and everything phase 2 derives from it — is a pure function of the
   summary *set*, not of walk order.  The qcheck permutation property
   in test_lint.ml pins this. *)

type node = { nid : int; file : string; def : Summary.def }

type t = {
  nodes : node array;  (* indexed by nid *)
  succ : int array array;  (* sorted, deduplicated adjacency *)
  entries : int list;  (* ascending nids of d_entry definitions *)
}

let node_count g = Array.length g.nodes

let build (summaries : Summary.t list) : t =
  let summaries =
    List.sort (fun a b -> String.compare a.Summary.file b.Summary.file)
      summaries
  in
  let nodes =
    List.concat_map
      (fun (s : Summary.t) ->
        List.map (fun d -> (s.Summary.file, d)) s.Summary.defs)
      summaries
    |> List.mapi (fun nid (file, def) -> { nid; file; def })
    |> Array.of_list
  in
  (* suffix index: every non-empty suffix of a def's qualified path,
     rendered dotted, maps to the nids claiming it.  A def path is at
     most a handful of components, so this stays linear in practice. *)
  let by_suffix : (string, int list) Hashtbl.t = Hashtbl.create 256 in
  let by_file_name : (string * string, int list) Hashtbl.t =
    Hashtbl.create 256
  in
  let add tbl key nid =
    let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (nid :: prev)
  in
  Array.iter
    (fun n ->
      let rec suffixes = function
        | [] -> ()
        | _ :: rest as path ->
            add by_suffix (String.concat "." path) n.nid;
            suffixes rest
      in
      suffixes n.def.Summary.d_path;
      add by_file_name (n.file, n.def.Summary.d_name) n.nid)
    nodes;
  let resolve file call =
    if String.contains call '.' then
      Option.value ~default:[] (Hashtbl.find_opt by_suffix call)
    else
      (* bare name: same-file resolution only, and never a self-loop
         worth keeping — recursion adds nothing to reachability *)
      Option.value ~default:[] (Hashtbl.find_opt by_file_name (file, call))
  in
  let succ =
    Array.map
      (fun n ->
        n.def.Summary.d_calls
        |> List.concat_map (resolve n.file)
        |> List.filter (fun t -> t <> n.nid)
        |> List.sort_uniq Int.compare
        |> Array.of_list)
      nodes
  in
  let entries =
    Array.to_list nodes
    |> List.filter_map (fun n ->
           if n.def.Summary.d_entry then Some n.nid else None)
  in
  { nodes; succ; entries }

(* Forward BFS from the entry set.  Visiting in ascending-nid order at
   every frontier makes both the reachable set and the parent array
   (first discoverer wins) deterministic, so T1/T2 witness chains are
   stable across runs. *)
let reach g =
  let n = Array.length g.nodes in
  let parent = Array.make n (-2) in
  (* -2 unvisited, -1 entry/root *)
  let q = Queue.create () in
  List.iter
    (fun e ->
      if parent.(e) = -2 then begin
        parent.(e) <- -1;
        Queue.add e q
      end)
    (List.sort_uniq Int.compare g.entries);
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun v ->
        if parent.(v) = -2 then begin
          parent.(v) <- u;
          Queue.add v q
        end)
      g.succ.(u)
  done;
  parent

let reachable parent nid = parent.(nid) <> -2

(* The witness chain to [nid]: entry point first, [nid] last, each
   rendered as its fully-qualified dotted path. *)
let chain g parent nid =
  let rec up acc u =
    let acc = Summary.qualified g.nodes.(u).def :: acc in
    if parent.(u) >= 0 then up acc parent.(u) else acc
  in
  if not (reachable parent nid) then [] else up [] nid

let to_dot fmt g =
  let parent = reach g in
  Format.fprintf fmt "digraph lint_callgraph {@.";
  Format.fprintf fmt "  rankdir=LR;@.  node [fontsize=10];@.";
  Array.iter
    (fun n ->
      let shape =
        if n.def.Summary.d_entry then " shape=box style=bold"
        else if reachable parent n.nid then " style=filled fillcolor=gray92"
        else ""
      in
      Format.fprintf fmt "  n%d [label=\"%s\\n%s:%d\"%s];@." n.nid
        (Summary.qualified n.def) n.file n.def.Summary.d_site.Summary.s_line
        shape)
    g.nodes;
  Array.iteri
    (fun u targets ->
      Array.iter (fun v -> Format.fprintf fmt "  n%d -> n%d;@." u v) targets)
    g.succ;
  Format.fprintf fmt "}@."
