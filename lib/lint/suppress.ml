(* Per-site suppressions: `(* lint: allow R3 — reason *)`.

   An allow-comment suppresses findings of the listed rules on its own
   line and on the line immediately below it, so both styles read
   naturally:

     let xs = Hashtbl.fold f tbl []  (* lint: allow R3 — sorted below *)

     (* lint: allow R3 — merge is commutative, order cannot matter *)
     Hashtbl.iter merge_one src

   The scan is purely line-based (it does not track comment nesting):
   the marker is unusual enough that a false positive would itself be a
   comment talking about the linter, which is harmless. *)

type allow = {
  line : int;  (* 1-based line the marker appears on *)
  until : int;  (* last line the allow covers (see [scan]) *)
  rules : Rules.id list;  (* rules it suppresses *)
  reason : string;  (* text after the rule list; may be empty *)
}

let marker = "lint: allow"

(* Split on spaces/tabs, keeping it allocation-light is not a concern
   here: lint runs once per file, not per event. *)
let tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_after_marker rest =
  let rec take_rules acc = function
    | tok :: more -> (
        match Rules.id_of_string tok with
        | Some id -> take_rules (id :: acc) more
        | None -> (List.rev acc, tok :: more))
    | [] -> (List.rev acc, [])
  in
  let rules, rest = take_rules [] (tokens rest) in
  let reason =
    match rest with
    | [] -> ""
    | toks ->
        (* drop a leading dash/em-dash separator before the reason *)
        let toks =
          match toks with
          | ("-" | "--" | "\xe2\x80\x94" | "\xe2\x80\x93") :: t -> t
          | t -> t
        in
        String.concat " " toks
  in
  (rules, reason)

let find_marker line =
  let mlen = String.length marker and llen = String.length line in
  let rec go i =
    if i + mlen > llen then None
    else if String.sub line i mlen = marker then Some (i + mlen)
    else go (i + 1)
  in
  go 0

let contains_close line =
  let rec go i =
    i + 1 < String.length line
    && ((line.[i] = '*' && line.[i + 1] = ')') || go (i + 1))
  in
  go 0

let scan source =
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let allows = ref [] in
  Array.iteri
    (fun i line ->
      match find_marker line with
      | None -> ()
      | Some stop ->
          let lineno = i + 1 in
          let rest = String.sub line stop (String.length line - stop) in
          (* strip a trailing comment close if the whole directive is on
             one line *)
          let rest =
            match String.index_opt rest '*' with
            | Some j when j + 1 < String.length rest && rest.[j + 1] = ')' ->
                String.sub rest 0 j
            | _ -> rest
          in
          (* the allow covers its own line (trailing-comment style) and
             the line after the comment closes (comment-above style,
             including multi-line comments) *)
          let close = ref i in
          while
            !close < Array.length lines - 1
            && not (contains_close lines.(!close))
          do
            incr close
          done;
          let rules, reason = parse_after_marker rest in
          if rules <> [] then
            allows :=
              { line = lineno; until = !close + 2; rules; reason } :: !allows)
    lines;
  List.rev !allows

let covers allow (f : Rules.finding) =
  f.line >= allow.line && f.line <= allow.until
  && List.mem f.rule allow.rules

let suppressed allows f = List.exists (fun a -> covers a f) allows
