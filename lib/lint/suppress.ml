(* Per-site suppressions — the allow-comment directive (the concrete
   syntax, with examples of both the trailing-comment and the
   comment-above style, is in suppress.mli; spelling it out here would
   make this very file parse as carrying directives).

   An allow-comment suppresses findings of the listed rules on its own
   line and on the line immediately below the comment's close, so both
   styles read naturally.

   The scan is line-based (it does not track comment nesting), but a
   directive must sit at the head of a comment — the opener, optional
   spaces, then the marker — so prose that merely mentions the marker
   never parses as one.

   Sloppy directives warn rather than silently misfire: a marker
   naming an unknown or unparseable rule, several markers crowded onto
   one line, or one comment bundling several rules (each rule deserves
   its own reason) all produce a {!warning}.  An allow that suppresses
   nothing also warns, but only the driver can see that — it owns the
   usage accounting. *)

type allow = {
  line : int;  (* 1-based line the marker appears on *)
  until : int;  (* last line the allow covers (see [scan]) *)
  rules : Rules.id list;  (* rules it suppresses *)
  reason : string;  (* text after the rule list; may be empty *)
}

type warning = { w_line : int; w_message : string }

let marker = "lint: allow"

(* Split on spaces/tabs, keeping it allocation-light is not a concern
   here: lint runs once per file, not per event. *)
let tokens s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* shaped like a rule id ("R12", "t3") without being one we know *)
let rule_shaped tok =
  String.length tok >= 2
  && (match tok.[0] with 'R' | 'r' | 'T' | 't' -> true | _ -> false)
  && String.for_all
       (function '0' .. '9' -> true | _ -> false)
       (String.sub tok 1 (String.length tok - 1))

let parse_after_marker rest =
  let rec take_rules acc = function
    | tok :: more -> (
        match Rules.id_of_string tok with
        | Some id -> take_rules (id :: acc) more
        | None -> (List.rev acc, tok :: more))
    | [] -> (List.rev acc, [])
  in
  let rules, rest = take_rules [] (tokens rest) in
  let reason =
    match rest with
    | [] -> ""
    | toks ->
        (* drop a leading dash/em-dash separator before the reason *)
        let toks =
          match toks with
          | ("-" | "--" | "\xe2\x80\x94" | "\xe2\x80\x93") :: t -> t
          | t -> t
        in
        String.concat " " toks
  in
  (rules, rest, reason)

(* A directive is the marker at the head of a comment: the opener,
   optional spaces, then the marker.  Requiring the opener keeps prose
   that merely mentions the marker (doc-strings, the linter's own
   sources, string literals) from parsing as a directive. *)
let opens_comment line before =
  let rec first_non_space i =
    if i >= 0 && line.[i] = ' ' then first_non_space (i - 1) else i
  in
  let i = first_non_space (before - 1) in
  i >= 1 && line.[i - 1] = '(' && line.[i] = '*'

let find_marker_from line start =
  let mlen = String.length marker and llen = String.length line in
  let rec go i =
    if i + mlen > llen then None
    else if String.sub line i mlen = marker && opens_comment line i then
      Some (i + mlen)
    else go (i + 1)
  in
  go start

let contains_close line =
  let rec go i =
    i + 1 < String.length line
    && ((line.[i] = '*' && line.[i + 1] = ')') || go (i + 1))
  in
  go 0

let scan_full source =
  let lines = Array.of_list (String.split_on_char '\n' source) in
  let allows = ref [] and warnings = ref [] in
  let warn lineno msg = warnings := { w_line = lineno; w_message = msg } :: !warnings in
  Array.iteri
    (fun i line ->
      match find_marker_from line 0 with
      | None -> ()
      | Some stop ->
          let lineno = i + 1 in
          (match find_marker_from line stop with
          | Some _ ->
              warn lineno
                "multiple 'lint: allow' markers on one line; only the \
                 first is honored — list the rule in one marker or move \
                 the second to its own line"
          | None -> ());
          let rest = String.sub line stop (String.length line - stop) in
          (* stop the directive at a second marker or a comment close,
             whichever comes first *)
          let rest =
            match find_marker_from rest 0 with
            | Some j -> String.sub rest 0 (j - String.length marker)
            | None -> rest
          in
          let rest =
            match String.index_opt rest '*' with
            | Some j when j + 1 < String.length rest && rest.[j + 1] = ')' ->
                String.sub rest 0 j
            | _ -> rest
          in
          (* the allow covers its own line (trailing-comment style) and
             the line after the comment closes (comment-above style,
             including multi-line comments) *)
          let close = ref i in
          while
            !close < Array.length lines - 1
            && not (contains_close lines.(!close))
          do
            incr close
          done;
          let rules, after_rules, reason = parse_after_marker rest in
          (match after_rules with
          | tok :: _ when rule_shaped tok ->
              warn lineno
                (Printf.sprintf
                   "'lint: allow' names unknown rule %s; known rules are \
                    R1-R9 and T1-T3"
                   tok)
          | _ -> ());
          if rules = [] then begin
            if
              match after_rules with
              | tok :: _ -> not (rule_shaped tok)
              | [] -> true
            then
              warn lineno
                "'lint: allow' names no recognizable rule and suppresses \
                 nothing"
          end
          else begin
            if List.length rules > 1 then
              warn lineno
                (Printf.sprintf
                   "'lint: allow' bundles %d rules in one comment; split \
                    it so each rule carries its own reason"
                   (List.length rules));
            allows :=
              { line = lineno; until = !close + 2; rules; reason } :: !allows
          end)
    lines;
  (List.rev !allows, List.rev !warnings)

let scan source = fst (scan_full source)

let covers allow (f : Rules.finding) =
  f.line >= allow.line && f.line <= allow.until
  && List.mem f.rule allow.rules

let suppressed allows f = List.exists (fun a -> covers a f) allows
