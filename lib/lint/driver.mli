(** Orchestration: walk, parse, scan, suppress, baseline, render.

    Reports are deterministic: directory entries are sorted before
    walking and findings before rendering, so two runs over the same
    tree are byte-identical (the linter lints itself). *)

type report = {
  findings : Rules.finding list;
      (** unsuppressed, unbaselined, sorted by file/line/col/rule *)
  suppressed : int;
  baselined : int;
  files_scanned : int;
  errors : (string * string) list;
      (** (path, message) for unreadable or unparsable files; any entry
          fails the run *)
  unused_baseline : Baseline.entry list;
}

val ok : report -> bool
(** No findings and no errors (unused baseline entries only warn). *)

val lint_source : rel:string -> source:string -> (Rules.finding list * int, string) result
(** Lint one file's contents.  [rel] is the repo-relative path used for
    rule scoping and reporting.  Returns surviving findings plus the
    count silenced by allow-comments; [Error] on parse failure.
    Interfaces ([.mli]) are parsed for rot but yield no findings. *)

val default_paths : string list
(** [lib; bin; bench] — the scanned roots. *)

val run :
  ?root:string ->
  ?baseline:Baseline.t ->
  ?paths:string list ->
  unit ->
  report
(** Lint [paths] (files or directories, repo-relative) resolved against
    [root].  [_build] and dot-directories are skipped. *)

val find_root : unit -> string option
(** Nearest ancestor of the cwd containing a [dune-project]. *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string
