(** Orchestration: walk, parse, scan (phase 1), whole-program analyze
    (phase 2), suppress, baseline, render.

    Reports are deterministic: directory entries are sorted before
    walking, unit summaries before call-graph numbering, and findings
    before rendering, so two runs over the same tree are byte-identical
    (the linter lints itself). *)

type warning = { w_file : string; w_line : int; w_message : string }
(** A sloppy or useless allow directive (see {!Suppress.warning}, plus
    the "suppresses nothing" case the driver's usage accounting adds).
    Warnings never fail the run. *)

type report = {
  findings : Rules.finding list;
      (** fatal: unsuppressed, unbaselined, sorted by
          file/line/col/rule *)
  advisories : Rules.finding list;
      (** findings in [test/]/[examples/] support code: reported but
          never fatal *)
  suppressed : int;
  baselined : int;
  files_scanned : int;
  errors : (string * string) list;
      (** (path, message) for unreadable or unparsable files; any entry
          fails the run *)
  unused_baseline : Baseline.entry list;
  warnings : warning list;
  callgraph_nodes : int;  (** definitions in the phase-2 call graph *)
  rules_run : int;  (** [List.length Rules.all_ids] *)
}

val ok : report -> bool
(** No fatal findings and no errors (advisories, warnings and unused
    baseline entries only warn). *)

val lint_source :
  rel:string -> source:string -> (Rules.finding list * int, string) result
(** The per-file pipeline alone (phase 1 + this file's allow-comments;
    no whole-program phase).  [rel] is the repo-relative path used for
    rule scoping and reporting.  Returns surviving findings plus the
    count silenced by allow-comments; [Error] on parse failure.
    Interfaces ([.mli]) are parsed for rot but yield no findings. *)

val default_paths : string list
(** [lib; bin; bench; examples; test] — the scanned roots.  [test/]
    and [examples/] findings are advisory. *)

val run :
  ?root:string ->
  ?baseline:Baseline.t ->
  ?paths:string list ->
  unit ->
  report
(** Lint [paths] (files or directories, repo-relative) resolved against
    [root].  [_build], dot-directories, [lint_fixtures] and [corpus]
    are never descended into (explicitly requested paths are walked
    regardless). *)

val call_graph_dot : ?root:string -> ?paths:string list -> unit -> string
(** The phase-2 call graph as Graphviz dot (entry points boxed,
    reachable nodes shaded); unparsable files are skipped. *)

val find_root : unit -> string option
(** Nearest ancestor of the cwd containing a [dune-project]. *)

val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> string
