(** Grandfathered findings (the checked-in [lint.baseline] file).

    Entries key on (rule, file, context) — not line numbers — so they
    survive unrelated edits; one entry absorbs every matching finding
    in its file.  Format: tab-separated [RULE FILE CONTEXT REASON],
    [#]-comments and blank lines ignored. *)

type entry = {
  rule : Rules.id;
  file : string;
  context : string;
  reason : string;
}

type t = entry list

val empty : t

val of_string : string -> (t, string) result
(** First malformed line wins the error. *)

val to_string : t -> string
(** Round-trips with {!of_string} (comments excepted). *)

val entry_to_string : entry -> string

val load : string -> (t, string) result
(** Missing file is an empty baseline, not an error. *)

val covers : t -> Rules.finding -> bool

val unused : t -> Rules.finding list -> t
(** Entries matching none of the given (pre-baseline) findings: dead
    weight the report asks the committer to delete. *)

val of_findings : ?reason:string -> Rules.finding list -> t
(** Deduplicated baseline covering the given findings, for
    [lint --update-baseline]. *)

val update : t -> Rules.finding list -> t * t
(** [update old findings] is [(merged, pruned)]: entries of [old] still
    matching a finding survive with their hand-written reasons, findings
    no surviving entry covers are grandfathered, and stale entries are
    pruned (returned so the CLI can print them). *)
