(* Phase 2: the interprocedural fixpoints over the call graph.

   All three analyses reduce to set computations on Callgraph.reach:

   - T1: a direct nondeterminism-source read (wall clock, ambient
     Random, Domain state) inside any definition reachable from a
     deterministic-core entry point.  Reachability *is* the taint
     fixpoint here: phase 1 recorded where sources are read, and a
     read inside the reachable set means the laundered value can flow
     back to the core through the very call edges that made the
     definition reachable.  The witness chain names them.

   - T2: an R7/R8/R9-shaped hazard inside a reachable definition that
     the lexical rules did not already report (h_reported = false) —
     the helper one module over is on the hot path all the same.
     Allocation-shaped hazards (sprintf/append) use the *handler*
     reachability set only: mcheck successor generation builds
     successor-state lists by design and does not share the simulator
     engine's allocation-free budget, while its crash/drop hazards
     (wildcard arms, partial functions) still count — a dropped state
     is an unsound model check.

   - T3: arena-slot drops, which phase 1 proved path-locally; they are
     reported regardless of reachability (a leak on a cold path is
     still a leak in the free list). *)

let hazard_describe (k : Summary.hazard_kind) context =
  match k with
  | Summary.Wildcard_arm ->
      "wildcard arm in a protocol message match inside a \
       step/handle-reachable helper; enumerate the constructors"
  | Summary.Partial_fn ->
      Printf.sprintf
        "%s can raise in a helper reachable from a step/handle entry \
         point; the hot path must tolerate every interleaving"
        context
  | Summary.Alloc_sprintf ->
      Printf.sprintf
        "%s allocates once per event in a helper reachable from a \
         step/handle entry point; use the ctx scratch buffer emitters"
        context
  | Summary.Alloc_append ->
      Printf.sprintf
        "(%s) copies its left operand once per event in a helper \
         reachable from a step/handle entry point; prefer cons plus \
         one reversal"
        context

let analyze (g : Callgraph.t) : Rules.finding list =
  let parent = Callgraph.reach g in
  (* the handler-rooted subset: every entry except mcheck successor
     generation, for the allocation-shaped T2 hazards *)
  let handler_parent =
    Callgraph.reach
      {
        g with
        Callgraph.entries =
          List.filter
            (fun e ->
              g.Callgraph.nodes.(e).Callgraph.def.Summary.d_name
              <> "successors")
            g.Callgraph.entries;
      }
  in
  let findings = ref [] in
  let emit ?chain ~rule ~file ~(site : Summary.site) ~message () =
    findings :=
      Rules.finding ?chain ~rule ~file ~line:site.Summary.s_line
        ~col:site.Summary.s_col ~context:site.Summary.s_context ~message ()
      :: !findings
  in
  Array.iter
    (fun (n : Callgraph.node) ->
      let d = n.Callgraph.def in
      if Callgraph.reachable parent n.Callgraph.nid then begin
        let chain = Callgraph.chain g parent n.Callgraph.nid in
        List.iter
          (fun (site : Summary.site) ->
            emit ~chain ~rule:Rules.T1 ~file:n.Callgraph.file ~site
              ~message:
                (Printf.sprintf
                   "%s is read in %s, which is reachable from the \
                    deterministic core; the value can flow back along \
                    the call chain and break replay"
                   site.Summary.s_context (Summary.qualified d))
              ())
          d.Summary.d_taints;
        List.iter
          (fun (h : Summary.hazard) ->
            let alloc_shaped =
              match h.Summary.h_kind with
              | Summary.Alloc_sprintf | Summary.Alloc_append -> true
              | Summary.Wildcard_arm | Summary.Partial_fn -> false
            in
            let relevant, chain =
              if alloc_shaped then
                ( Callgraph.reachable handler_parent n.Callgraph.nid,
                  Callgraph.chain g handler_parent n.Callgraph.nid )
              else (true, chain)
            in
            if relevant && not h.Summary.h_reported then
              emit ~chain ~rule:Rules.T2 ~file:n.Callgraph.file
                ~site:h.Summary.h_site
                ~message:
                  (hazard_describe h.Summary.h_kind
                     h.Summary.h_site.Summary.s_context)
                ())
          d.Summary.d_hazards
      end;
      List.iter
        (fun (k : Summary.leak) ->
          emit ~rule:Rules.T3 ~file:n.Callgraph.file ~site:k.Summary.k_drop
            ~message:
              (Printf.sprintf
                 "%s at line %d acquires a slot but %s; every path must \
                  release it or hand it off"
                 k.Summary.k_acquire.Summary.s_context
                 k.Summary.k_acquire.Summary.s_line k.Summary.k_detail)
            ())
        d.Summary.d_leaks)
    g.Callgraph.nodes;
  List.sort Rules.compare_findings !findings
