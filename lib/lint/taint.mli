(** Phase 2: the whole-program analyses over the call graph.

    - T1: a nondeterminism-source read inside any definition reachable
      from a deterministic-core entry point, with the witness chain.
    - T2: an R7/R8/R9-shaped hazard inside a reachable definition that
      the lexical rules did not already report.
    - T3: arena-slot drops, reported regardless of reachability.

    Output is sorted by {!Rules.compare_findings} and is a
    deterministic function of the graph. *)

val analyze : Callgraph.t -> Rules.finding list
