(** Per-site suppression comments: [(* lint: allow R3 — reason *)].

    An allow-comment suppresses the listed rules on its own line and on
    the line immediately below it, supporting both the trailing-comment
    and comment-above styles. *)

type allow = {
  line : int;  (** 1-based line the marker appears on *)
  until : int;
      (** last covered line: the line after the comment closes, so both
          the trailing-comment and (multi-line) comment-above styles
          reach the flagged site *)
  rules : Rules.id list;
  reason : string;  (** may be empty; style asks for one *)
}

type warning = { w_line : int; w_message : string }
(** A sloppy directive: several markers on one line, an unknown rule
    id, one comment bundling several rules, or a marker naming no rule
    at all.  (The "allow suppresses nothing" warning lives in
    {!Driver}, which owns the usage accounting.) *)

val scan_full : string -> allow list * warning list
(** All allow-comments in a source file, in line order, plus the
    directive warnings. *)

val scan : string -> allow list
(** [fst (scan_full source)].  Lines whose [lint: allow] marker is
    followed by no recognizable rule id are ignored. *)

val covers : allow -> Rules.finding -> bool

val suppressed : allow list -> Rules.finding -> bool
