(** Per-site suppression comments: [(* lint: allow R3 — reason *)].

    An allow-comment suppresses the listed rules on its own line and on
    the line immediately below it, supporting both the trailing-comment
    and comment-above styles. *)

type allow = {
  line : int;  (** 1-based line the marker appears on *)
  until : int;
      (** last covered line: the line after the comment closes, so both
          the trailing-comment and (multi-line) comment-above styles
          reach the flagged site *)
  rules : Rules.id list;
  reason : string;  (** may be empty; style asks for one *)
}

val scan : string -> allow list
(** All allow-comments in a source file, in line order.  Lines whose
    [lint: allow] marker is followed by no recognizable rule id are
    ignored. *)

val covers : allow -> Rules.finding -> bool

val suppressed : allow list -> Rules.finding -> bool
