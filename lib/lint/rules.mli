(** Rule catalogue for the determinism & protocol-hygiene linter.

    The nine syntactic rules (R1-R9), the three whole-program analyses
    (T1 taint, T2 hot-path reachability, T3 arena pairing), and the
    [finding] record every stage of the pass exchanges.  See DESIGN.md
    §5d for the narrative version of the catalogue. *)

type id = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | T1 | T2 | T3

val all_ids : id list

val id_to_string : id -> string

val id_of_string : string -> id option
(** Case-insensitive; [None] for anything that is not [R1]..[R9] or
    [T1]..[T3]. *)

val title : id -> string
(** One-line summary, used in human output and [--list-rules]. *)

val rationale : id -> string
(** Why the rule exists, in terms of the reproduction's guarantees. *)

type finding = {
  rule : id;
  file : string;  (** repo-relative, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  context : string;
      (** the offending token ("Unix.gettimeofday", "Hashtbl.fold",
          "_", ...); baseline entries key on it so they survive
          line-number churn *)
  message : string;
  chain : string list;
      (** T1/T2 witness call chain: the entry point first, the function
          containing the finding last.  Empty for syntactic rules. *)
}

val finding :
  ?chain:string list ->
  rule:id ->
  file:string ->
  line:int ->
  col:int ->
  context:string ->
  message:string ->
  unit ->
  finding

val pp_finding : Format.formatter -> finding -> unit
(** [file:line:col: [Rn] message (title)] — one line, greppable; T1/T2
    findings append their [chain] witness. *)

val compare_findings : finding -> finding -> int
(** Order by file, then line, column, rule id: the report order. *)
