(** Rule catalogue for the determinism & protocol-hygiene linter.

    The nine rules, what each guards, and the [finding] record every
    stage of the pass exchanges.  See DESIGN.md §5d for the narrative
    version of the catalogue. *)

type id = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9

val all_ids : id list

val id_to_string : id -> string

val id_of_string : string -> id option
(** Case-insensitive; [None] for anything that is not [R1]..[R9]. *)

val title : id -> string
(** One-line summary, used in human output and [--list-rules]. *)

val rationale : id -> string
(** Why the rule exists, in terms of the reproduction's guarantees. *)

type finding = {
  rule : id;
  file : string;  (** repo-relative, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  context : string;
      (** the offending token ("Unix.gettimeofday", "Hashtbl.fold",
          "_", ...); baseline entries key on it so they survive
          line-number churn *)
  message : string;
}

val finding :
  rule:id ->
  file:string ->
  line:int ->
  col:int ->
  context:string ->
  message:string ->
  finding

val pp_finding : Format.formatter -> finding -> unit
(** [file:line:col: [Rn] message (title)] — one line, greppable. *)

val compare_findings : finding -> finding -> int
(** Order by file, then line, column, rule id: the report order. *)
