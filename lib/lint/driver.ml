(* Orchestration: walk the tree, parse every .ml/.mli, run the
   two-phase analysis, apply suppressions and the baseline, render
   human or JSON output.

   Phase 1 is per-file (Ast_scan.scan_unit: syntactic findings plus
   the unit summary); phase 2 is whole-program (Callgraph.build over
   all summaries, then Taint.analyze).  Suppression comments apply to
   both phases' findings; the baseline applies to error-severity
   findings only.

   Severity: findings in test/ and examples/ support code (but not in
   the linter's own lint_fixtures corpus) are *advisory* — reported,
   never fatal — so fixture-adjacent helpers cannot rot unseen without
   turning every experiment script into a gate.

   Determinism note (the linter lints itself): directory entries are
   sorted before walking, summaries are sorted before the call graph
   is numbered, and findings/warnings are sorted before reporting, so
   two runs over the same tree are byte-identical regardless of
   readdir order. *)

type warning = { w_file : string; w_line : int; w_message : string }

type report = {
  findings : Rules.finding list;  (* fatal: unsuppressed, unbaselined *)
  advisories : Rules.finding list;  (* test//examples/: reported, exit 0 *)
  suppressed : int;  (* silenced by allow-comments *)
  baselined : int;  (* silenced by lint.baseline entries *)
  files_scanned : int;
  errors : (string * string) list;  (* path, message: unreadable/unparsable *)
  unused_baseline : Baseline.entry list;
  warnings : warning list;  (* sloppy or useless allow directives *)
  callgraph_nodes : int;
  rules_run : int;
}

let ok r = r.findings = [] && r.errors = []

(* ------------------------------------------------------------------ *)
(* Parsing one file                                                    *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let parse_error_message path = function
  | Syntaxerr.Error _ -> Printf.sprintf "%s: syntax error" path
  | exn -> Printf.sprintf "%s: %s" path (Printexc.to_string exn)

(* Phase 1 on one file.  [rel] is the repo-relative path used for
   scoping and reporting; [source] is the file contents. *)
let scan_file ~rel ~source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf rel;
  if Filename.check_suffix rel ".mli" then
    (* interfaces carry no expressions; parse only to catch rot *)
    match Parse.interface lexbuf with
    | _ -> Ok ([], None, [], [])
    | exception exn -> Error (parse_error_message rel exn)
  else
    match Parse.implementation lexbuf with
    | structure ->
        let scope = Ast_scan.scope_of_path rel in
        let raw, summary = Ast_scan.scan_unit ~scope structure in
        let allows, warns = Suppress.scan_full source in
        Ok (raw, Some summary, allows, warns)
    | exception exn -> Error (parse_error_message rel exn)

(* The per-file pipeline alone (no whole-program phase): the syntactic
   findings surviving this file's allow-comments, plus the suppressed
   count.  Kept for tests and single-file tooling. *)
let lint_source ~rel ~source =
  match scan_file ~rel ~source with
  | Error _ as e -> e
  | Ok (raw, _, allows, _) ->
      let kept, dropped =
        List.partition (fun f -> not (Suppress.suppressed allows f)) raw
      in
      Ok (kept, List.length dropped)

(* ------------------------------------------------------------------ *)
(* Walking                                                             *)
(* ------------------------------------------------------------------ *)

let is_source name =
  Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"

(* Directories never descended into: build artifacts, dot-dirs, the
   linter's own deliberately-bad corpus and the fuzz replay corpus.
   (An explicitly requested path is walked regardless — that is how
   the fixture tests run.) *)
let skip_dir name =
  name = "_build" || name = "lint_fixtures" || name = "corpus"
  || (name <> "" && name.[0] = '.')

(* (absolute-or-cwd-relative path on disk, repo-relative path) pairs,
   lexicographically sorted for deterministic reports. *)
let rec collect acc ~disk ~rel =
  if Sys.is_directory disk then
    Sys.readdir disk |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if skip_dir name then acc
           else
             collect acc
               ~disk:(Filename.concat disk name)
               ~rel:(if rel = "" then name else rel ^ "/" ^ name))
         acc
  else if is_source disk then (disk, rel) :: acc
  else acc

let find_root () =
  let rec go dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else go parent
  in
  go (Sys.getcwd ())

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

let default_paths = [ "lib"; "bin"; "bench"; "examples"; "test" ]

let contains_sub needle hay =
  let n = String.length needle and l = String.length hay in
  let rec go i = i + n <= l && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* advisory: support code around the tests and examples — except the
   lint fixtures, whose whole point is to fail *)
let is_advisory rel =
  (String.starts_with ~prefix:"test/" rel
  || String.starts_with ~prefix:"examples/" rel)
  && not (contains_sub "lint_fixtures" rel)

let gather_files ~root paths =
  let files, missing =
    List.fold_left
      (fun (files, missing) p ->
        let disk = if root = "." then p else Filename.concat root p in
        if Sys.file_exists disk then
          ( collect files ~disk
              ~rel:(String.map (fun c -> if c = '\\' then '/' else c) p),
            missing )
        else (files, (p, "no such file or directory") :: missing))
      ([], []) paths
  in
  (List.sort (fun (_, a) (_, b) -> String.compare a b) files, missing)

(* [paths] are repo-relative; [root] is the directory they resolve
   against. *)
let run ?(root = ".") ?(baseline = Baseline.empty) ?(paths = default_paths) ()
    =
  let files, missing = gather_files ~root paths in
  let scanned = ref [] and errors = ref missing in
  List.iter
    (fun (disk, rel) ->
      match scan_file ~rel ~source:(read_file disk) with
      | Ok (raw, summary, allows, warns) ->
          scanned := (rel, raw, summary, allows, warns) :: !scanned
      | Error msg -> errors := (rel, msg) :: !errors
      | exception Sys_error msg -> errors := (rel, msg) :: !errors)
    files;
  let scanned = List.rev !scanned in
  (* phase 2: the whole-program analyses over all unit summaries *)
  let graph =
    Callgraph.build
      (List.filter_map (fun (_, _, s, _, _) -> s) scanned)
  in
  let phase2 = Taint.analyze graph in
  let allows_of =
    let tbl = Hashtbl.create 64 in
    List.iter (fun (rel, _, _, allows, _) -> Hashtbl.replace tbl rel allows)
      scanned;
    fun rel -> Option.value ~default:[] (Hashtbl.find_opt tbl rel)
  in
  let raw_all =
    List.concat_map (fun (_, raw, _, _, _) -> raw) scanned @ phase2
  in
  let kept, dropped =
    List.partition
      (fun (f : Rules.finding) ->
        not (Suppress.suppressed (allows_of f.file) f))
      raw_all
  in
  (* allow-comments that silenced nothing at all are themselves a
     smell.  Warnings are collected for gate-severity files only:
     test support code legitimately embeds directive-shaped strings
     (test_lint.ml builds sources containing them). *)
  let warnings =
    List.concat_map
      (fun (rel, _, _, allows, warns) ->
        if is_advisory rel then []
        else
        List.map
          (fun (w : Suppress.warning) ->
            { w_file = rel; w_line = w.Suppress.w_line; w_message = w.Suppress.w_message })
          warns
        @ List.filter_map
            (fun (a : Suppress.allow) ->
              if
                List.exists
                  (fun (f : Rules.finding) ->
                    String.equal f.file rel && Suppress.covers a f)
                  raw_all
              then None
              else
                Some
                  {
                    w_file = rel;
                    w_line = a.Suppress.line;
                    w_message =
                      Printf.sprintf
                        "'lint: allow %s' suppresses nothing — delete it"
                        (String.concat " "
                           (List.map Rules.id_to_string a.Suppress.rules));
                  })
            allows)
      scanned
    |> List.sort (fun a b ->
           let c = String.compare a.w_file b.w_file in
           if c <> 0 then c
           else
             let c = Int.compare a.w_line b.w_line in
             if c <> 0 then c else String.compare a.w_message b.w_message)
  in
  let all = List.sort Rules.compare_findings kept in
  let fatal, advisories =
    List.partition (fun (f : Rules.finding) -> not (is_advisory f.file)) all
  in
  let kept_fatal, baselined =
    List.partition (fun f -> not (Baseline.covers baseline f)) fatal
  in
  {
    findings = kept_fatal;
    advisories;
    suppressed = List.length dropped;
    baselined = List.length baselined;
    files_scanned = List.length files;
    errors = List.rev !errors;
    unused_baseline = Baseline.unused baseline fatal;
    warnings;
    callgraph_nodes = Callgraph.node_count graph;
    rules_run = List.length Rules.all_ids;
  }

(* The call graph alone, for [--call-graph dot]: same walk, no rule
   evaluation, unparsable files skipped. *)
let call_graph_dot ?(root = ".") ?(paths = default_paths) () =
  let files, _ = gather_files ~root paths in
  let summaries =
    List.filter_map
      (fun (disk, rel) ->
        match scan_file ~rel ~source:(read_file disk) with
        | Ok (_, summary, _, _) -> summary
        | Error _ | (exception Sys_error _) -> None)
      files
  in
  let g = Callgraph.build summaries in
  Format.asprintf "%a" Callgraph.to_dot g

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_report fmt r =
  List.iter (fun f -> Format.fprintf fmt "%a@." Rules.pp_finding f) r.findings;
  List.iter
    (fun f -> Format.fprintf fmt "advisory: %a@." Rules.pp_finding f)
    r.advisories;
  List.iter
    (fun (path, msg) -> Format.fprintf fmt "%s: ERROR: %s@." path msg)
    r.errors;
  List.iter
    (fun w ->
      Format.fprintf fmt "%s:%d: warning: %s@." w.w_file w.w_line w.w_message)
    r.warnings;
  List.iter
    (fun (e : Baseline.entry) ->
      Format.fprintf fmt
        "lint.baseline: unused entry %s %s %S — delete it@."
        (Rules.id_to_string e.rule)
        e.file e.context)
    r.unused_baseline;
  Format.fprintf fmt
    "lint: %d file%s, %d finding%s (%d advisory, %d suppressed, %d \
     baselined), %d graph nodes%s@."
    r.files_scanned
    (if r.files_scanned = 1 then "" else "s")
    (List.length r.findings)
    (if List.length r.findings = 1 then "" else "s")
    (List.length r.advisories) r.suppressed r.baselined r.callgraph_nodes
    (if ok r then ": ok" else "")

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let finding_to_json (f : Rules.finding) =
  let chain =
    match f.chain with
    | [] -> ""
    | chain ->
        Printf.sprintf ",\"chain\":[%s]"
          (String.concat "," (List.map json_escape chain))
  in
  Printf.sprintf
    "{\"rule\":%s,\"file\":%s,\"line\":%d,\"col\":%d,\"context\":%s,\"message\":%s%s}"
    (json_escape (Rules.id_to_string f.rule))
    (json_escape f.file) f.line f.col (json_escape f.context)
    (json_escape f.message) chain

let report_to_json r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"ok\":";
  Buffer.add_string buf (if ok r then "true" else "false");
  Buffer.add_string buf
    (Printf.sprintf
       ",\"files_scanned\":%d,\"suppressed\":%d,\"baselined\":%d,\"callgraph_nodes\":%d,\"rules_run\":%d"
       r.files_scanned r.suppressed r.baselined r.callgraph_nodes r.rules_run);
  Buffer.add_string buf ",\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (finding_to_json f))
    r.findings;
  Buffer.add_string buf "],\"advisories\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (finding_to_json f))
    r.advisories;
  Buffer.add_string buf "],\"warnings\":[";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"file\":%s,\"line\":%d,\"message\":%s}"
           (json_escape w.w_file) w.w_line (json_escape w.w_message)))
    r.warnings;
  Buffer.add_string buf "],\"errors\":[";
  List.iteri
    (fun i (path, msg) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"file\":%s,\"message\":%s}" (json_escape path)
           (json_escape msg)))
    r.errors;
  Buffer.add_string buf "]}";
  Buffer.contents buf
