(* Orchestration: walk the tree, parse every .ml/.mli, run the pass,
   apply suppressions and the baseline, render human or JSON output.

   Determinism note (the linter lints itself): directory entries are
   sorted before walking and findings are sorted before reporting, so
   two runs over the same tree are byte-identical. *)

type report = {
  findings : Rules.finding list;  (* unsuppressed, unbaselined, sorted *)
  suppressed : int;  (* silenced by (* lint: allow ... *) comments *)
  baselined : int;  (* silenced by lint.baseline entries *)
  files_scanned : int;
  errors : (string * string) list;  (* path, message: unreadable/unparsable *)
  unused_baseline : Baseline.entry list;
}

let ok r = r.findings = [] && r.errors = []

(* ------------------------------------------------------------------ *)
(* Parsing one file                                                    *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let parse_error_message path = function
  | Syntaxerr.Error _ -> Printf.sprintf "%s: syntax error" path
  | exn -> Printf.sprintf "%s: %s" path (Printexc.to_string exn)

(* [rel] is the repo-relative path used for scoping and reporting;
   [source] is the file contents. *)
let lint_source ~rel ~source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf rel;
  if Filename.check_suffix rel ".mli" then
    (* interfaces carry no expressions; parse only to catch rot *)
    match Parse.interface lexbuf with
    | _ -> Ok ([], 0)
    | exception exn -> Error (parse_error_message rel exn)
  else
    match Parse.implementation lexbuf with
    | structure ->
        let scope = Ast_scan.scope_of_path rel in
        let raw = Ast_scan.scan ~scope structure in
        let allows = Suppress.scan source in
        let kept, dropped =
          List.partition (fun f -> not (Suppress.suppressed allows f)) raw
        in
        Ok (kept, List.length dropped)
    | exception exn -> Error (parse_error_message rel exn)

(* ------------------------------------------------------------------ *)
(* Walking                                                             *)
(* ------------------------------------------------------------------ *)

let is_source name =
  Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"

(* (absolute-or-cwd-relative path on disk, repo-relative path) pairs,
   lexicographically sorted for deterministic reports. *)
let rec collect acc ~disk ~rel =
  if Sys.is_directory disk then
    Sys.readdir disk |> Array.to_list
    |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "_build" || (name <> "" && name.[0] = '.') then acc
           else
             collect acc
               ~disk:(Filename.concat disk name)
               ~rel:(if rel = "" then name else rel ^ "/" ^ name))
         acc
  else if is_source disk then (disk, rel) :: acc
  else acc

let find_root () =
  let rec go dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else go parent
  in
  go (Sys.getcwd ())

(* ------------------------------------------------------------------ *)
(* The run                                                             *)
(* ------------------------------------------------------------------ *)

let default_paths = [ "lib"; "bin"; "bench" ]

(* [paths] are repo-relative; [root] is the directory they resolve
   against. *)
let run ?(root = ".") ?(baseline = Baseline.empty) ?(paths = default_paths) ()
    =
  let files, missing =
    List.fold_left
      (fun (files, missing) p ->
        let disk = if root = "." then p else Filename.concat root p in
        if Sys.file_exists disk then
          (collect files ~disk ~rel:(String.map (fun c -> if c = '\\' then '/' else c) p), missing)
        else (files, (p, "no such file or directory") :: missing))
      ([], []) paths
  in
  let files = List.sort (fun (_, a) (_, b) -> String.compare a b) files in
  let findings = ref [] and suppressed = ref 0 and errors = ref missing in
  List.iter
    (fun (disk, rel) ->
      match lint_source ~rel ~source:(read_file disk) with
      | Ok (fs, dropped) ->
          findings := List.rev_append fs !findings;
          suppressed := !suppressed + dropped
      | Error msg -> errors := (rel, msg) :: !errors
      | exception Sys_error msg -> errors := (rel, msg) :: !errors)
    files;
  let all = List.sort Rules.compare_findings !findings in
  let kept, baselined =
    List.partition (fun f -> not (Baseline.covers baseline f)) all
  in
  {
    findings = kept;
    suppressed = !suppressed;
    baselined = List.length baselined;
    files_scanned = List.length files;
    errors = List.rev !errors;
    unused_baseline = Baseline.unused baseline all;
  }

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_report fmt r =
  List.iter (fun f -> Format.fprintf fmt "%a@." Rules.pp_finding f) r.findings;
  List.iter
    (fun (path, msg) -> Format.fprintf fmt "%s: ERROR: %s@." path msg)
    r.errors;
  List.iter
    (fun (e : Baseline.entry) ->
      Format.fprintf fmt
        "lint.baseline: unused entry %s %s %S — delete it@."
        (Rules.id_to_string e.rule)
        e.file e.context)
    r.unused_baseline;
  Format.fprintf fmt
    "lint: %d file%s, %d finding%s (%d suppressed, %d baselined)%s@."
    r.files_scanned
    (if r.files_scanned = 1 then "" else "s")
    (List.length r.findings)
    (if List.length r.findings = 1 then "" else "s")
    r.suppressed r.baselined
    (if ok r then ": ok" else "")

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let report_to_json r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"ok\":";
  Buffer.add_string buf (if ok r then "true" else "false");
  Buffer.add_string buf
    (Printf.sprintf ",\"files_scanned\":%d,\"suppressed\":%d,\"baselined\":%d"
       r.files_scanned r.suppressed r.baselined);
  Buffer.add_string buf ",\"findings\":[";
  List.iteri
    (fun i (f : Rules.finding) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"rule\":%s,\"file\":%s,\"line\":%d,\"col\":%d,\"context\":%s,\"message\":%s}"
           (json_escape (Rules.id_to_string f.rule))
           (json_escape f.file) f.line f.col (json_escape f.context)
           (json_escape f.message)))
    r.findings;
  Buffer.add_string buf "],\"errors\":[";
  List.iteri
    (fun i (path, msg) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"file\":%s,\"message\":%s}" (json_escape path)
           (json_escape msg)))
    r.errors;
  Buffer.add_string buf "]}";
  Buffer.contents buf
