(* Grandfathered findings, checked in as `lint.baseline` at the repo
   root.  One entry per line:

     RULE<TAB>FILE<TAB>CONTEXT<TAB>REASON

   Entries key on (rule, file, context) rather than line numbers so
   they survive unrelated edits to the file; an entry absorbs every
   matching finding in that file.  `#` lines and blank lines are
   comments.  The file is deliberately boring: append-only in spirit,
   and the linter reports entries that no longer match anything so dead
   weight gets deleted. *)

type entry = {
  rule : Rules.id;
  file : string;
  context : string;
  reason : string;
}

type t = entry list

let empty = []

let parse_line ~lineno line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match String.split_on_char '\t' line with
    | rule :: file :: context :: rest -> (
        match Rules.id_of_string rule with
        | Some rule ->
            Ok
              (Some
                 {
                   rule;
                   file;
                   context;
                   reason = String.concat "\t" rest;
                 })
        | None -> Error (Printf.sprintf "line %d: unknown rule %S" lineno rule)
        )
    | _ ->
        Error
          (Printf.sprintf
             "line %d: want RULE<TAB>FILE<TAB>CONTEXT<TAB>REASON, got %S"
             lineno line)

let of_string s =
  let lineno = ref 0 in
  let entries = ref [] and errors = ref [] in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         incr lineno;
         match parse_line ~lineno:!lineno line with
         | Ok (Some e) -> entries := e :: !entries
         | Ok None -> ()
         | Error msg -> errors := msg :: !errors);
  match List.rev !errors with
  | [] -> Ok (List.rev !entries)
  | e :: _ -> Error e

let entry_to_string e =
  Printf.sprintf "%s\t%s\t%s\t%s"
    (Rules.id_to_string e.rule)
    e.file e.context e.reason

let to_string t = String.concat "\n" (List.map entry_to_string t) ^ "\n"

let load path =
  if not (Sys.file_exists path) then Ok empty
  else
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    of_string s

let matches e (f : Rules.finding) =
  e.rule = f.rule && String.equal e.file f.file
  && String.equal e.context f.context

let covers t f = List.exists (fun e -> matches e f) t

let unused t findings =
  List.filter (fun e -> not (List.exists (fun f -> matches e f) findings)) t

let compare_entries a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c =
      String.compare (Rules.id_to_string a.rule) (Rules.id_to_string b.rule)
    in
    if c <> 0 then c else String.compare a.context b.context

let of_findings ?(reason = "grandfathered") findings =
  List.map
    (fun (f : Rules.finding) ->
      { rule = f.rule; file = f.file; context = f.context; reason })
    findings
  |> List.sort_uniq compare_entries

(* --update-baseline: keep entries that still match a finding (their
   hand-written reasons survive), grandfather findings no entry covers,
   and prune the rest.  Returns (new baseline, pruned entries). *)
let update t findings =
  let kept, pruned =
    List.partition (fun e -> List.exists (matches e) findings) t
  in
  let uncovered =
    List.filter (fun f -> not (List.exists (fun e -> matches e f) kept))
      findings
  in
  let merged = List.sort_uniq compare_entries (kept @ of_findings uncovered) in
  (merged, pruned)
