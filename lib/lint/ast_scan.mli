(** The compiler-libs Parsetree pass: phase 1 of the analysis.

    One walk per file evaluates the nine syntactic rules (R1-R9) and
    extracts the unit's {!Summary.t} — definitions, referenced
    identifier paths, taint-source reads, hot-path hazard shapes and
    arena-slot drops — for the phase-2 whole-program fixpoints.

    Purely syntactic — no typing — so each rule is a conservative
    pattern over names and shapes, scoped by the file's path. *)

type scope = {
  file : string;  (** repo-relative, '/'-separated *)
  allow_wall_clock : bool;  (** R1 off (lib/realtime) *)
  allow_random : bool;  (** R2 off (lib/sim/prng.ml) *)
  allow_tbl_iter : bool;  (** R3 off (lib/sim/sorted_tbl.ml) *)
  module_state_scope : bool;  (** R4 on (library code) *)
  protocol_scope : bool;  (** R7/R8 on (protocol libraries) *)
  mcheck_scope : bool;
      (** [successors] counts as a T1/T2 entry point (lib/mcheck) *)
}

val scope_of_path : string -> scope
(** Derive the rule scoping from a repo-relative path.  Paths
    containing [lint_fixtures] get every rule armed — that is the
    linter's own test corpus. *)

val scan_unit :
  scope:scope -> Parsetree.structure -> Rules.finding list * Summary.t
(** The syntactic findings (sorted by {!Rules.compare_findings}) and
    the unit summary, from one walk.  Suppression and baseline
    filtering happen in {!Driver}. *)

val scan : scope:scope -> Parsetree.structure -> Rules.finding list
(** [fst (scan_unit ~scope s)] — the syntactic findings alone. *)
