(** The compiler-libs Parsetree pass: all eight rules in one walk.

    Purely syntactic — no typing — so each rule is a conservative
    pattern over names and shapes, scoped by the file's path. *)

type scope = {
  file : string;  (** repo-relative, '/'-separated *)
  allow_wall_clock : bool;  (** R1 off (lib/realtime) *)
  allow_random : bool;  (** R2 off (lib/sim/prng.ml) *)
  allow_tbl_iter : bool;  (** R3 off (lib/sim/sorted_tbl.ml) *)
  module_state_scope : bool;  (** R4 on (library code) *)
  protocol_scope : bool;  (** R7/R8 on (protocol libraries) *)
}

val scope_of_path : string -> scope
(** Derive the rule scoping from a repo-relative path.  Paths
    containing [lint_fixtures] get every rule armed — that is the
    linter's own test corpus. *)

val scan : scope:scope -> Parsetree.structure -> Rules.finding list
(** All findings in one file, sorted by {!Rules.compare_findings};
    suppression and baseline filtering happen in {!Driver}. *)
