type outcome = {
  violations : Invariants.violation list;
  decided : int;
  events : int;
  msgs_sent : int;
  msgs_delivered : int;
  msgs_dropped : int;
}

(* ------------------------------------------------------------------ *)
(* Liveness deadlines                                                  *)
(* ------------------------------------------------------------------ *)

(* Budgets are deliberately loose multiples of each protocol's decision
   bound: tight enough that the A1 ungated ablation blows through them
   under high-session injections, loose enough that the correct
   protocols never do (a false positive here would break `dev check`).
   Traditional Paxos gets the paper's O(N delta) allowance — one extra
   retry round per obsolete ballot and per failed leader candidate. *)
let liveness_budget (fs : Fuzz_scenario.t) =
  let d = fs.delta in
  let n = float_of_int fs.n in
  match fs.protocol with
  | Fuzz_scenario.Modified_paxos | Fuzz_scenario.Ungated_paxos -> 60. *. d
  | Fuzz_scenario.Traditional_paxos ->
      let inj = float_of_int (List.length fs.injections) in
      (40. +. (8. *. inj) +. (4. *. n)) *. d
  | Fuzz_scenario.Rotating_coordinator -> (40. +. (10. *. n)) *. d
  | Fuzz_scenario.B_consensus -> 80. *. d

(* The paper bounds restart recovery only for the modified algorithms
   (Section 4, "Process Restarts"); for the baselines a restarted
   process may legitimately idle until someone speaks to it, so the
   liveness check covers only never-faulty processes there. *)
let covers_restarts = function
  | Fuzz_scenario.Modified_paxos | Fuzz_scenario.Ungated_paxos -> true
  | Fuzz_scenario.Traditional_paxos | Fuzz_scenario.Rotating_coordinator
  | Fuzz_scenario.B_consensus ->
      false

let ever_faulty (f : Sim.Fault.t) p =
  List.mem p f.Sim.Fault.initially_down
  || List.exists (fun e -> e.Sim.Fault.proc = p) f.Sim.Fault.events

let last_restart (f : Sim.Fault.t) p =
  List.fold_left
    (fun acc e ->
      match e.Sim.Fault.action with
      | Sim.Fault.Restart when e.Sim.Fault.proc = p -> (
          match acc with
          | Some t when t >= e.Sim.Fault.at -> acc
          | _ -> Some e.Sim.Fault.at)
      | _ -> acc)
    None f.Sim.Fault.events

let liveness_violations (fs : Fuzz_scenario.t) decision_times =
  let budget = liveness_budget fs in
  List.filter_map
    (fun p ->
      let faulty = ever_faulty fs.faults p in
      if not (Sim.Fault.alive_at fs.faults ~proc:p ~time:fs.horizon) then None
      else if faulty && not (covers_restarts fs.protocol) then None
      else
        let start =
          if faulty then
            match last_restart fs.faults p with
            | Some t -> Float.max fs.ts t
            | None -> fs.ts
          else fs.ts
        in
        let deadline = start +. budget in
        if deadline > fs.horizon then None
        else
          match decision_times.(p) with
          | Some _ -> None
          | None ->
              Some
                {
                  Invariants.check = "liveness";
                  detail =
                    Printf.sprintf
                      "process %d alive at horizon %g undecided past its \
                       deadline %g (start %g + budget %g)"
                      p fs.horizon deadline start budget;
                })
    (List.init fs.n Fun.id)

(* ------------------------------------------------------------------ *)
(* Running one scenario                                                *)
(* ------------------------------------------------------------------ *)

let outcome_of_run (fs : Fuzz_scenario.t) (report : Invariants.report)
    (r : _ Sim.Engine.run_result) =
  {
    violations =
      report.Invariants.violations @ liveness_violations fs r.decision_times;
    decided =
      Array.fold_left
        (fun acc d -> match d with Some _ -> acc + 1 | None -> acc)
        0 r.Sim.Engine.decision_values;
    events = r.Sim.Engine.events_processed;
    msgs_sent = r.Sim.Engine.messages_sent;
    msgs_delivered = r.Sim.Engine.messages_delivered;
    msgs_dropped = r.Sim.Engine.messages_dropped;
  }

let dgl_injections (fs : Fuzz_scenario.t) =
  List.map
    (fun { Fuzz_scenario.at; src; dst; session } ->
      ( at,
        src,
        dst,
        Dgl.Messages.P1a
          { mbal = Consensus.Ballot.of_session ~n:fs.n ~proc:src session } ))
    fs.injections

let paxos_injections (fs : Fuzz_scenario.t) =
  List.map
    (fun { Fuzz_scenario.at; src; dst; session } ->
      ( at,
        src,
        dst,
        Baselines.Paxos_messages.P1a
          { mbal = Consensus.Ballot.of_session ~n:fs.n ~proc:src session } ))
    fs.injections

let run_one (fs : Fuzz_scenario.t) =
  (match Fuzz_scenario.validate fs with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Fuzz.run_one: " ^ msg));
  let sc = Fuzz_scenario.to_scenario fs in
  match fs.protocol with
  | Fuzz_scenario.Modified_paxos | Fuzz_scenario.Ungated_paxos ->
      let options =
        {
          Dgl.Modified_paxos.default_options with
          session_gate =
            (match fs.protocol with
            | Fuzz_scenario.Ungated_paxos -> false
            | _ -> true);
        }
      in
      let cfg = Dgl.Config.make ~n:fs.n ~delta:fs.delta ~rho:fs.rho () in
      let r =
        Sim.Engine.run ~injections:(dgl_injections fs) sc
          (Dgl.Modified_paxos.protocol ~options cfg)
      in
      outcome_of_run fs
        (Invariants.check_run ~timer_bounds:(fs.delta, cfg.Dgl.Config.sigma) r)
        r
  | Fuzz_scenario.Traditional_paxos ->
      let oracle =
        Baselines.Leader_election.make ~n:fs.n ~ts:fs.ts ~delta:fs.delta
          ~faults:fs.faults ()
      in
      let r =
        Sim.Engine.run ~injections:(paxos_injections fs) sc
          (Baselines.Traditional_paxos.protocol ~n:fs.n ~delta:fs.delta ~oracle
             ())
      in
      outcome_of_run fs (Invariants.check_run r) r
  | Fuzz_scenario.Rotating_coordinator ->
      let r =
        Sim.Engine.run sc
          (Baselines.Rotating_coordinator.protocol ~n:fs.n ~delta:fs.delta ())
      in
      outcome_of_run fs (Invariants.check_run r) r
  | Fuzz_scenario.B_consensus ->
      let r =
        Sim.Engine.run sc
          (Bconsensus.Modified_b_consensus.protocol ~n:fs.n ~delta:fs.delta
             ~rho:fs.rho ())
      in
      outcome_of_run fs (Invariants.check_run r) r

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let default_protocols =
  [
    Fuzz_scenario.Modified_paxos; Fuzz_scenario.Traditional_paxos;
    Fuzz_scenario.Rotating_coordinator; Fuzz_scenario.B_consensus;
  ]

(* Scenario [index] draws from a splitmix64 stream whose seed is offset
   by a golden-ratio multiple of the index, the standard way to derive
   independent splitmix streams. *)
let index_rng ~seed ~index =
  Sim.Prng.create
    (Int64.add seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (index + 1))))

let gen_victims rng ~n =
  let max_faulty = n - Consensus.Quorum.majority n in
  let k = Sim.Prng.int rng (max_faulty + 1) in
  let procs = Array.init n Fun.id in
  Sim.Prng.shuffle rng procs;
  Array.to_list (Array.sub procs 0 k)

let gen_faults rng ~ts ~delta ~victims =
  List.fold_left
    (fun acc v ->
      match Sim.Prng.int rng 4 with
      | 0 ->
          Sim.Fault.union acc
            { Sim.Fault.initially_down = [ v ]; events = [] }
      | 1 ->
          let restart_at = Sim.Prng.float rng (ts +. (10. *. delta)) in
          Sim.Fault.union acc
            {
              Sim.Fault.initially_down = [ v ];
              events = [ Sim.Fault.restart ~at:restart_at v ];
            }
      | 2 ->
          let crash_at = Sim.Prng.float rng ts in
          Sim.Fault.union acc
            { Sim.Fault.initially_down = []; events = [ Sim.Fault.crash ~at:crash_at v ] }
      | _ ->
          let crash_at = Sim.Prng.float rng ts in
          let restart_at =
            crash_at
            +. Sim.Prng.float_range rng (delta /. 2.)
                 (ts -. crash_at +. (10. *. delta))
          in
          Sim.Fault.union acc
            (Sim.Fault.crash_then_restart ~crash_at ~restart_at v))
    Sim.Fault.none victims

let gen_network rng ~n ~delta =
  let base =
    match Sim.Prng.int rng 8 with
    | 0 -> Sim.Network_spec.Always_synchronous
    | 1 -> Sim.Network_spec.Silent_until_ts
    | 2 -> Sim.Network_spec.Deterministic_after_ts
    | 3 ->
        (* split the processes into two nonempty pre-ts islands *)
        let cut = 1 + Sim.Prng.int rng (n - 1) in
        Sim.Network_spec.Partitioned_until_ts
          [ List.init cut Fun.id; List.init (n - cut) (fun i -> cut + i) ]
    | _ ->
        Sim.Network_spec.Eventually_synchronous
          {
            pre_loss = Sim.Prng.float rng 1.0;
            pre_delay_max =
              (if Sim.Prng.bool rng 0.5 then
                 Some (Sim.Prng.float_range rng delta (8. *. delta))
               else None);
          }
  in
  let spec =
    if Sim.Prng.bool rng 0.3 then
      Sim.Network_spec.With_duplication
        { prob = Sim.Prng.float rng 0.3; base }
    else base
  in
  if Sim.Prng.bool rng 0.3 then
    Sim.Network_spec.With_reordering
      { window = Sim.Prng.float rng (4. *. delta); base = spec }
  else spec

(* Obsolete phase 1a injections where the model admits them: session 1
   against the gated algorithm (a failed process can be at most one
   session ahead), anomalously high sessions against the ungated
   ablation and traditional Paxos — the paper's attack.  Messages sent
   before [ts] may be delivered at any later instant, so besides a
   scatter of one-offs around [ts] the generator also produces long
   periodic trains of escalating sessions (the A1 fan): each arrival
   outranks the receiver's ballot and re-arms its session timer, which
   the ungated algorithm cannot absorb. *)
let gen_injections rng (protocol : Fuzz_scenario.protocol) ~n ~ts ~delta =
  let takes =
    match protocol with
    | Fuzz_scenario.Modified_paxos | Fuzz_scenario.Ungated_paxos
    | Fuzz_scenario.Traditional_paxos ->
        true
    | Fuzz_scenario.Rotating_coordinator | Fuzz_scenario.B_consensus -> false
  in
  if (not takes) || Sim.Prng.bool rng 0.4 then []
  else
    let session_for i =
      match protocol with
      | Fuzz_scenario.Modified_paxos -> 1
      | _ -> 1000 * (i + 1)
    in
    if Sim.Prng.bool rng 0.5 then
      let steps = 4 + Sim.Prng.int rng 25 in
      let spacing = Sim.Prng.float_range rng (2. *. delta) (4. *. delta) in
      let src = Sim.Prng.int rng n in
      List.concat
        (List.init steps (fun i ->
             let at = ts +. (spacing *. float_of_int i) in
             List.init n (fun dst ->
                 { Fuzz_scenario.at; src; dst; session = session_for i })))
    else
      let count = 1 + Sim.Prng.int rng 8 in
      List.init count (fun i ->
          let at =
            Float.max 0.
              (Sim.Prng.float_range rng (ts -. (2. *. delta))
                 (ts +. (4. *. delta)))
          in
          let src = Sim.Prng.int rng n in
          let dst = Sim.Prng.int rng n in
          { Fuzz_scenario.at; src; dst; session = session_for i })

let generate ?protocol ~seed ~index () =
  let rng = index_rng ~seed ~index in
  let protocol =
    match protocol with
    | Some p -> p
    | None -> Sim.Prng.pick rng default_protocols
  in
  let n = 3 + Sim.Prng.int rng 5 in
  let delta = Sim.Prng.pick rng [ 0.005; 0.01; 0.02 ] in
  let ts =
    if Sim.Prng.bool rng 0.2 then 0.
    else Sim.Prng.float_range rng delta (20. *. delta)
  in
  let rho = if Sim.Prng.bool rng 0.3 then Sim.Prng.float rng 0.05 else 0. in
  let network = gen_network rng ~n ~delta in
  let victims = gen_victims rng ~n in
  let faults = gen_faults rng ~ts ~delta ~victims in
  let proposals = Array.init n (fun _ -> Sim.Prng.int rng 4) in
  let injections = gen_injections rng protocol ~n ~ts ~delta in
  let fs =
    {
      Fuzz_scenario.name = Printf.sprintf "fuzz-%Ld-%d" seed index;
      protocol;
      n;
      ts;
      delta;
      rho;
      seed = Sim.Prng.next_int64 rng;
      horizon = 0.;
      network;
      faults;
      proposals;
      injections;
    }
  in
  let last_fault =
    List.fold_left
      (fun acc e -> Float.max acc e.Sim.Fault.at)
      ts faults.Sim.Fault.events
  in
  let horizon = last_fault +. liveness_budget fs +. (10. *. delta) in
  let fs = { fs with horizon } in
  match Fuzz_scenario.validate fs with
  | Ok () -> fs
  | Error msg ->
      invalid_arg
        (Printf.sprintf "Fuzz.generate produced an invalid scenario (%s): %s"
           fs.Fuzz_scenario.name msg)

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

type shrink_result = {
  shrunk : Fuzz_scenario.t;
  steps : int;
  tries : int;
}

(* [xs] with one aligned chunk removed, largest chunks first: the
   whole list, halves, quarters, ..., singletons. *)
let chunk_removals xs =
  let arr = Array.of_list xs in
  let len = Array.length arr in
  if len = 0 then []
  else
    let without start size =
      Array.to_list arr |> List.filteri (fun i _ -> i < start || i >= start + size)
    in
    let rec sizes s acc = if s <= 0 then List.rev acc else sizes (s / 2) (s :: acc) in
    List.concat_map
      (fun size ->
        let rec starts s acc =
          if s >= len then List.rev acc else starts (s + size) (s :: acc)
        in
        List.map (fun s -> without s size) (starts 0 []))
      (sizes len [])

(* Candidate scenarios strictly below [fs] in {!Fuzz_scenario.size},
   most aggressive first. *)
let shrink_candidates (fs : Fuzz_scenario.t) =
  let with_injections injections = { fs with Fuzz_scenario.injections } in
  let with_faults faults = { fs with Fuzz_scenario.faults } in
  let injections = List.map with_injections (chunk_removals fs.injections) in
  let events = fs.faults.Sim.Fault.events in
  let down = fs.faults.Sim.Fault.initially_down in
  let victims =
    List.sort_uniq Int.compare
      (down @ List.map (fun e -> e.Sim.Fault.proc) events)
  in
  (* whole fault footprint of one process at a time *)
  let per_proc =
    List.map
      (fun p ->
        with_faults
          {
            Sim.Fault.initially_down = List.filter (fun q -> q <> p) down;
            events = List.filter (fun e -> e.Sim.Fault.proc <> p) events;
          })
      victims
  in
  let single_events =
    List.mapi
      (fun i _ ->
        with_faults
          {
            fs.faults with
            Sim.Fault.events = List.filteri (fun j _ -> j <> i) events;
          })
      events
  in
  let single_down =
    List.map
      (fun p ->
        with_faults
          {
            fs.faults with
            Sim.Fault.initially_down = List.filter (fun q -> q <> p) down;
          })
      down
  in
  let networks =
    List.map
      (fun network -> { fs with Fuzz_scenario.network })
      (Sim.Network_spec.shrink fs.network)
  in
  let drift = if fs.rho > 0. then [ { fs with Fuzz_scenario.rho = 0. } ] else [] in
  injections @ per_proc @ single_events @ single_down @ networks @ drift

let shrink ?(max_tries = 500) fs ~check =
  let tries = ref 0 in
  let steps = ref 0 in
  let still_fails cur cand =
    !tries < max_tries
    && Fuzz_scenario.size cand < Fuzz_scenario.size cur
    &&
    match Fuzz_scenario.validate cand with
    | Error _ -> false
    | Ok () ->
        incr tries;
        List.exists
          (fun v -> String.equal v.Invariants.check check)
          (run_one cand).violations
  in
  let rec fixpoint cur =
    if !tries >= max_tries then cur
    else
      match List.find_opt (still_fails cur) (shrink_candidates cur) with
      | Some cand ->
          incr steps;
          fixpoint cand
      | None -> cur
  in
  let shrunk = fixpoint fs in
  { shrunk; steps = !steps; tries = !tries }

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)
(* ------------------------------------------------------------------ *)

type counterexample = {
  index : int;
  check : string;
  detail : string;
  scenario : Fuzz_scenario.t;
  original_size : int;
  shrunk_size : int;
  shrink_tries : int;
}

type summary = {
  seed : int64;
  budget : int;
  protocol : Fuzz_scenario.protocol option;
  runs : int;
  failures : int;
  by_check : (string * int) list;
  counterexamples : counterexample list;
  total_events : int;
  total_msgs : int;
  total_decided : int;
  total_shrink_tries : int;
}

let run_index ?protocol ~seed index =
  let fs = generate ?protocol ~seed ~index () in
  let o = run_one fs in
  match o.violations with
  | [] -> (o, None)
  | v :: _ ->
      let sr = shrink fs ~check:v.Invariants.check in
      ( o,
        Some
          {
            index;
            check = v.Invariants.check;
            detail = v.Invariants.detail;
            scenario = sr.shrunk;
            original_size = Fuzz_scenario.size fs;
            shrunk_size = Fuzz_scenario.size sr.shrunk;
            shrink_tries = sr.tries;
          } )

let campaign ?protocol ~budget ~seed () =
  if budget < 0 then invalid_arg "Fuzz.campaign: negative budget";
  let results =
    Measure.par_map (run_index ?protocol ~seed) (List.init budget Fun.id)
  in
  let counterexamples = List.filter_map snd results in
  let bump acc check =
    match List.assoc_opt check acc with
    | Some k -> (check, k + 1) :: List.remove_assoc check acc
    | None -> (check, 1) :: acc
  in
  let by_check =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.fold_left (fun acc cx -> bump acc cx.check) [] counterexamples)
  in
  let total f = List.fold_left (fun acc (o, _) -> acc + f o) 0 results in
  {
    seed;
    budget;
    protocol;
    runs = List.length results;
    failures = List.length counterexamples;
    by_check;
    counterexamples;
    total_events = total (fun o -> o.events);
    total_msgs = total (fun o -> o.msgs_sent);
    total_decided = total (fun o -> o.decided);
    total_shrink_tries =
      List.fold_left (fun acc cx -> acc + cx.shrink_tries) 0 counterexamples;
  }

let pp_summary fmt s =
  Format.fprintf fmt "fuzz: budget=%d seed=%Ld protocol=%s@." s.budget s.seed
    (match s.protocol with
    | Some p -> Fuzz_scenario.protocol_name p
    | None -> "mixed");
  Format.fprintf fmt
    "runs=%d failures=%d events=%d msgs=%d decided=%d shrink_tries=%d@."
    s.runs s.failures s.total_events s.total_msgs s.total_decided
    s.total_shrink_tries;
  List.iter
    (fun (check, k) -> Format.fprintf fmt "  %s: %d@." check k)
    s.by_check;
  List.iter
    (fun cx ->
      Format.fprintf fmt "counterexample [%d] %s (size %d -> %d): %a@."
        cx.index cx.check cx.original_size cx.shrunk_size Fuzz_scenario.pp
        cx.scenario)
    s.counterexamples

let register_metrics reg s =
  Sim.Registry.inc ~by:s.runs reg "fuzz_runs";
  Sim.Registry.inc ~by:s.failures reg "fuzz_failures";
  Sim.Registry.inc ~by:(List.length s.counterexamples) reg
    "fuzz_counterexamples";
  Sim.Registry.inc ~by:s.total_shrink_tries reg "fuzz_shrink_tries";
  Sim.Registry.inc ~by:s.total_events reg "fuzz_events";
  Sim.Registry.inc ~by:s.total_msgs reg "fuzz_msgs"

(* ------------------------------------------------------------------ *)
(* Corpus files                                                        *)
(* ------------------------------------------------------------------ *)

type corpus_entry = {
  format : string;
  check : string;
  detail : string;
  scenario : Fuzz_scenario.t;
}

let corpus_format = "consensus-fuzz-corpus/1"

let entry_of_counterexample (cx : counterexample) =
  {
    format = corpus_format;
    check = cx.check;
    detail = cx.detail;
    scenario = cx.scenario;
  }

let entry_to_json e =
  Sim.Json.Obj
    [
      ("format", Sim.Json.Str e.format);
      ("check", Sim.Json.Str e.check);
      ("detail", Sim.Json.Str e.detail);
      ("scenario", Fuzz_scenario.to_json e.scenario);
    ]

let ( let* ) = Result.bind

let entry_of_json j =
  let* format = Result.bind (Sim.Json.member "format" j) Sim.Json.to_string in
  if not (String.equal format corpus_format) then
    Error (Printf.sprintf "unsupported corpus format %S" format)
  else
    let* check = Result.bind (Sim.Json.member "check" j) Sim.Json.to_string in
    let* detail =
      Result.bind (Sim.Json.member "detail" j) Sim.Json.to_string
    in
    let* scenario =
      Result.bind (Sim.Json.member "scenario" j) Fuzz_scenario.of_json
    in
    Ok { format; check; detail; scenario }

let entry_filename e =
  Printf.sprintf "%s-%s.json" e.check e.scenario.Fuzz_scenario.name

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then (
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ())

let save_entry ~dir e =
  ensure_dir dir;
  let path = Filename.concat dir (entry_filename e) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Sim.Json.print_pretty (entry_to_json e));
      output_char oc '\n');
  path

let load_entry path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents ->
      let* j = Sim.Json.parse contents in
      entry_of_json j

let replay e =
  let o = run_one e.scenario in
  if List.exists (fun v -> String.equal v.Invariants.check e.check) o.violations
  then Ok o
  else
    let saw =
      match o.violations with
      | [] -> "no violation"
      | vs ->
          String.concat ", "
            (List.map (fun v -> v.Invariants.check) vs)
    in
    Error (saw, o)
