(** Trace-driven invariant checking.

    Every check here is computed from a {!Sim.Trace.t} alone, so it
    applies equally to a live {!Sim.Engine} run, a
    {!Realtime.Threads_engine} run, or a trace re-imported from JSONL.
    The checks:

    - {b agreement}: all [Decide] entries carry the same value;
    - {b decide-once}: no process decides twice;
    - {b validity} (when [proposals] is given): every decided value was
      proposed by someone;
    - {b message causality}: a [Deliver] (or receiver-down [Drop]) with a
      non-negative id must be preceded by the [Send] that minted that id,
      with matching endpoints and a send time no later than the delivery;
    - {b session monotonicity}: ["session:<k>:<how>"] notes — the
      modified algorithms' session-entry markers — are strictly
      increasing per process;
    - {b timer sanity}: timers never fire without a due [Timer_set] and
      are never set to fire in the past;
    - {b sigma-timer bound} (when [timer_bounds] is given): session
      timers (non-negative tags) run for a real duration inside
      [\[4 delta, sigma\]], the window Section 4 of the paper requires.

    Causality and timer-sanity checks are skipped when a bounded trace
    has wrapped ({!Sim.Trace.dropped_oldest} > 0), since the origin
    entries may have been overwritten. *)

type violation = {
  check : string;  (** which invariant, e.g. ["agreement"] *)
  detail : string;  (** human-readable description of the failure *)
}

type report = {
  entries_checked : int;  (** retained entries examined *)
  wrapped : bool;  (** bounded ring wrapped: causality checks skipped *)
  violations : violation list;  (** trace order *)
}

(** No violations found. *)
val ok : report -> bool

(** One line when clean; one line per violation otherwise. *)
val pp : Format.formatter -> report -> unit

(** [check ?proposals ?timer_bounds trace] runs every applicable check.
    [proposals] enables the validity check (omit it when decisions are
    not proposal values, e.g. SMR log checksums); [timer_bounds] is
    [(delta, sigma)] and enables the sigma-timer bound (only meaningful
    for the modified algorithms' session timers). *)
val check :
  ?proposals:int array ->
  ?timer_bounds:float * float ->
  Sim.Trace.t ->
  report

(** [check_run r] checks a simulator run's trace, taking proposals from
    its scenario.  Pass [~check_validity:false] for protocols whose
    decided values are not proposals. *)
val check_run :
  ?timer_bounds:float * float ->
  ?check_validity:bool ->
  'st Sim.Engine.run_result ->
  report
