(* Synthetic protocols that stress exactly one engine path each, so the
   allocation test and the benchmarks can attribute every word of garbage
   to a specific subsystem.  Neither protocol ever decides: runs are
   bounded by the scenario horizon, and the event count scales linearly
   with it — which is what lets callers measure a steady-state slope by
   differencing two horizons. *)

let no_payload = Sim.Trace.payload "hotpath"

(* One token per process chases around the ring forever.  With tracing
   off and an rng-free network policy (use
   [Sim.Network.deterministic_after_ts] with [ts = 0]), the entire
   steady state is message events: this is the path the zero-allocation
   contract covers. *)
let pinger : (int, unit) Sim.Engine.protocol =
  {
    name = "hotpath-pinger";
    on_boot =
      (fun ctx ->
        let n = Sim.Engine.n_processes ctx in
        Sim.Engine.send ctx ~dst:((Sim.Engine.self ctx + 1) mod n) 0);
    on_message =
      (fun ctx () ~src:_ m ->
        let n = Sim.Engine.n_processes ctx in
        Sim.Engine.send ctx ~dst:((Sim.Engine.self ctx + 1) mod n) (m + 1));
    on_timer = (fun _ () ~tag:_ -> ());
    on_restart = (fun _ ~persisted:_ -> ());
    msg_payload = (fun _ -> no_payload);
  }

(* Every process re-arms a periodic timer and never sends.  The timer
   path is *not* allocation-free (the [local_delay] float boxes at the
   context boundary and the drifted-clock conversion returns a boxed
   float); this protocol pins that residual cost so regressions in it are
   caught even though the budget is nonzero. *)
let ticker_period = 0.1

let ticker : (unit, unit) Sim.Engine.protocol =
  let rearm ctx = Sim.Engine.set_timer ctx ~local_delay:ticker_period ~tag:0 in
  {
    name = "hotpath-ticker";
    on_boot = (fun ctx -> rearm ctx);
    on_message = (fun _ () ~src:_ () -> ());
    on_timer =
      (fun ctx () ~tag:_ ->
        rearm ctx;
        ());
    on_restart = (fun ctx ~persisted:_ -> rearm ctx);
    msg_payload = (fun () -> no_payload);
  }

let scenario ?(n = 3) ~horizon () =
  Sim.Scenario.make ~name:"hotpath" ~n ~ts:0. ~horizon
    ~network:Sim.Network.deterministic_after_ts ~stop_on_all_decided:false ()

(* Steady-state words allocated per engine event, measured by running the
   same scenario at two horizons and differencing: setup cost (contexts,
   queue growth, metric registration) cancels out, leaving the slope.
   [Gc.minor_words] counts every minor-heap word, and nothing here
   survives to the major heap, so the slope is the per-event allocation
   exactly. *)
let alloc_words_per_event protocol ~n ~horizon_lo ~horizon_hi =
  let events horizon =
    let r = Sim.Engine.run (scenario ~n ~horizon ()) protocol in
    r.Sim.Engine.events_processed
  in
  ignore (events horizon_lo : int) (* warm up: grow queue + arena *);
  let w0 = Gc.minor_words () in
  let e_lo = events horizon_lo in
  let w1 = Gc.minor_words () in
  let e_hi = events horizon_hi in
  let w2 = Gc.minor_words () in
  let d_events = e_hi - e_lo in
  if d_events <= 0 then invalid_arg "Hotpath.alloc_words_per_event: no slope";
  ((w2 -. w1) -. (w1 -. w0)) /. float_of_int d_events
