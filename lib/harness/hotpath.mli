(** Synthetic single-path protocols for allocation accounting.

    The engine's zero-allocation contract ("the steady-state event loop
    allocates nothing") is only meaningful for a specific configuration:
    tracing off, an rng-free network policy, and a protocol whose
    handlers themselves allocate nothing.  {!pinger} is that protocol;
    {!ticker} isolates the timer path, which retains a small documented
    per-event cost.  [test/test_alloc.ml] pins both, and the benchmark
    suite reports the same slopes as [alloc_words_per_event] metrics. *)

(** Message-driven token ring: process [p] forwards an int counter to
    [(p + 1) mod n] forever.  Never decides, never sets timers. *)
val pinger : (int, unit) Sim.Engine.protocol

(** Timer-driven: every process re-arms a {!ticker_period} timer forever.
    Never decides, never sends. *)
val ticker : (unit, unit) Sim.Engine.protocol

(** Local-clock period of {!ticker}'s timer, in seconds. *)
val ticker_period : float

(** [scenario ?n ~horizon ()] is the measurement scenario both protocols
    run under: [ts = 0], {!Sim.Network.deterministic_after_ts} (rng-free,
    loss-free once stable), tracing off, no faults, and
    [stop_on_all_decided = false] so the event count is a linear function
    of [horizon]. *)
val scenario : ?n:int -> horizon:float -> unit -> Sim.Scenario.t

(** [alloc_words_per_event protocol ~n ~horizon_lo ~horizon_hi] is the
    steady-state minor-heap words allocated per engine event: the same
    scenario is run at both horizons and the allocation difference is
    divided by the event-count difference, cancelling per-run setup cost.
    Requires [horizon_hi > horizon_lo] (raises [Invalid_argument] if the
    event counts do not separate). *)
val alloc_words_per_event :
  (_, _) Sim.Engine.protocol ->
  n:int ->
  horizon_lo:float ->
  horizon_hi:float ->
  float
