type protocol =
  | Modified_paxos
  | Ungated_paxos
  | Traditional_paxos
  | Rotating_coordinator
  | B_consensus

let protocols =
  [
    Modified_paxos; Ungated_paxos; Traditional_paxos; Rotating_coordinator;
    B_consensus;
  ]

let protocol_name = function
  | Modified_paxos -> "modified-paxos"
  | Ungated_paxos -> "ungated-paxos"
  | Traditional_paxos -> "traditional-paxos"
  | Rotating_coordinator -> "rotating-coordinator"
  | B_consensus -> "b-consensus"

let protocol_of_name s =
  match String.lowercase_ascii s with
  | "modified-paxos" -> Some Modified_paxos
  | "ungated-paxos" -> Some Ungated_paxos
  | "traditional-paxos" -> Some Traditional_paxos
  | "rotating-coordinator" -> Some Rotating_coordinator
  | "b-consensus" -> Some B_consensus
  | _ -> None

let equal_protocol a b =
  match (a, b) with
  | Modified_paxos, Modified_paxos
  | Ungated_paxos, Ungated_paxos
  | Traditional_paxos, Traditional_paxos
  | Rotating_coordinator, Rotating_coordinator
  | B_consensus, B_consensus ->
      true
  | _ -> false

let takes_injections = function
  | Modified_paxos | Ungated_paxos | Traditional_paxos -> true
  | Rotating_coordinator | B_consensus -> false

type injection = { at : float; src : int; dst : int; session : int }

type t = {
  name : string;
  protocol : protocol;
  n : int;
  ts : float;
  delta : float;
  rho : float;
  seed : int64;
  horizon : float;
  network : Sim.Network_spec.t;
  faults : Sim.Fault.t;
  proposals : int array;
  injections : injection list;
}

let to_scenario ?(record_trace = true) t =
  Sim.Scenario.make ~name:t.name ~n:t.n ~ts:t.ts ~delta:t.delta ~rho:t.rho
    ~seed:t.seed ~horizon:t.horizon
    ~network:(Sim.Network_spec.compile t.network)
    ~faults:t.faults ~proposals:t.proposals ~record_trace ()

let validate t =
  match Sim.Scenario.validate (to_scenario t) with
  | Error _ as e -> e
  | Ok () -> (
      match Sim.Network_spec.validate t.network with
      | Error _ as e -> e
      | Ok () ->
          if
            t.injections <> [] && not (takes_injections t.protocol)
          then
            Error
              (Printf.sprintf "%s takes no injections"
                 (protocol_name t.protocol))
          else (
            match
              List.find_opt
                (fun { at; src; dst; session } ->
                  at < 0. || session < 0 || src < 0 || src >= t.n || dst < 0
                  || dst >= t.n)
                t.injections
            with
            | Some { src; dst; session; _ } ->
                Error
                  (Printf.sprintf
                     "injection out of range (src=%d dst=%d session=%d, n=%d)"
                     src dst session t.n)
            | None -> Ok ()))

let size t =
  List.length t.injections
  + List.length t.faults.Sim.Fault.events
  + List.length t.faults.Sim.Fault.initially_down
  + Sim.Network_spec.complexity t.network
  + if t.rho > 0. then 1 else 0

let equal_injection a b =
  Float.equal a.at b.at && Int.equal a.src b.src && Int.equal a.dst b.dst
  && Int.equal a.session b.session

let equal_fault_event (a : Sim.Fault.event) (b : Sim.Fault.event) =
  Float.equal a.Sim.Fault.at b.Sim.Fault.at
  && Int.equal a.proc b.proc
  && (match (a.action, b.action) with
     | Sim.Fault.Crash, Sim.Fault.Crash | Sim.Fault.Restart, Sim.Fault.Restart
       ->
         true
     | _ -> false)

let equal a b =
  String.equal a.name b.name
  && equal_protocol a.protocol b.protocol
  && Int.equal a.n b.n && Float.equal a.ts b.ts
  && Float.equal a.delta b.delta
  && Float.equal a.rho b.rho
  && Int64.equal a.seed b.seed
  && Float.equal a.horizon b.horizon
  && Sim.Network_spec.equal a.network b.network
  && List.equal Int.equal a.faults.Sim.Fault.initially_down
       b.faults.Sim.Fault.initially_down
  && List.equal equal_fault_event a.faults.Sim.Fault.events
       b.faults.Sim.Fault.events
  && Array.length a.proposals = Array.length b.proposals
  && Array.for_all2 Int.equal a.proposals b.proposals
  && List.equal equal_injection a.injections b.injections

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let fault_event_to_json { Sim.Fault.at; proc; action } =
  Sim.Json.Obj
    [
      ("at", Sim.Json.float at);
      ("proc", Sim.Json.int proc);
      ( "action",
        Sim.Json.Str
          (match action with
          | Sim.Fault.Crash -> "crash"
          | Sim.Fault.Restart -> "restart") );
    ]

let injection_to_json { at; src; dst; session } =
  Sim.Json.Obj
    [
      ("at", Sim.Json.float at);
      ("src", Sim.Json.int src);
      ("dst", Sim.Json.int dst);
      ("session", Sim.Json.int session);
    ]

let to_json t =
  Sim.Json.Obj
    [
      ("name", Sim.Json.Str t.name);
      ("protocol", Sim.Json.Str (protocol_name t.protocol));
      ("n", Sim.Json.int t.n);
      ("ts", Sim.Json.float t.ts);
      ("delta", Sim.Json.float t.delta);
      ("rho", Sim.Json.float t.rho);
      ("seed", Sim.Json.int64 t.seed);
      ("horizon", Sim.Json.float t.horizon);
      ("network", Sim.Network_spec.to_json t.network);
      ( "initially_down",
        Sim.Json.Arr
          (List.map Sim.Json.int t.faults.Sim.Fault.initially_down) );
      ( "fault_events",
        Sim.Json.Arr
          (List.map fault_event_to_json t.faults.Sim.Fault.events) );
      ( "proposals",
        Sim.Json.Arr (List.map Sim.Json.int (Array.to_list t.proposals)) );
      ("injections", Sim.Json.Arr (List.map injection_to_json t.injections));
    ]

let ( let* ) = Result.bind

let int_list_of_json j =
  let* items = Sim.Json.to_list j in
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* i = Sim.Json.to_int x in
      Ok (i :: acc))
    (Ok []) items
  |> Result.map List.rev

let fault_event_of_json j =
  let* at = Result.bind (Sim.Json.member "at" j) Sim.Json.to_float in
  let* proc = Result.bind (Sim.Json.member "proc" j) Sim.Json.to_int in
  let* action = Result.bind (Sim.Json.member "action" j) Sim.Json.to_string in
  let* action =
    match action with
    | "crash" -> Ok Sim.Fault.Crash
    | "restart" -> Ok Sim.Fault.Restart
    | a -> Error (Printf.sprintf "unknown fault action %S" a)
  in
  Ok { Sim.Fault.at; proc; action }

let injection_of_json j =
  let* at = Result.bind (Sim.Json.member "at" j) Sim.Json.to_float in
  let* src = Result.bind (Sim.Json.member "src" j) Sim.Json.to_int in
  let* dst = Result.bind (Sim.Json.member "dst" j) Sim.Json.to_int in
  let* session = Result.bind (Sim.Json.member "session" j) Sim.Json.to_int in
  Ok { at; src; dst; session }

let list_of_json f j =
  let* items = Sim.Json.to_list j in
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* v = f x in
      Ok (v :: acc))
    (Ok []) items
  |> Result.map List.rev

let of_json j =
  let* name = Result.bind (Sim.Json.member "name" j) Sim.Json.to_string in
  let* protocol =
    Result.bind (Sim.Json.member "protocol" j) Sim.Json.to_string
  in
  let* protocol =
    match protocol_of_name protocol with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "unknown protocol %S" protocol)
  in
  let* n = Result.bind (Sim.Json.member "n" j) Sim.Json.to_int in
  let* ts = Result.bind (Sim.Json.member "ts" j) Sim.Json.to_float in
  let* delta = Result.bind (Sim.Json.member "delta" j) Sim.Json.to_float in
  let* rho = Result.bind (Sim.Json.member "rho" j) Sim.Json.to_float in
  let* seed = Result.bind (Sim.Json.member "seed" j) Sim.Json.to_int64 in
  let* horizon = Result.bind (Sim.Json.member "horizon" j) Sim.Json.to_float in
  let* network =
    Result.bind (Sim.Json.member "network" j) Sim.Network_spec.of_json
  in
  let* initially_down =
    Result.bind (Sim.Json.member "initially_down" j) int_list_of_json
  in
  let* events =
    Result.bind (Sim.Json.member "fault_events" j)
      (list_of_json fault_event_of_json)
  in
  let* proposals =
    Result.bind (Sim.Json.member "proposals" j) int_list_of_json
  in
  let* injections =
    Result.bind (Sim.Json.member "injections" j)
      (list_of_json injection_of_json)
  in
  Ok
    {
      name;
      protocol;
      n;
      ts;
      delta;
      rho;
      seed;
      horizon;
      network;
      faults = Sim.Fault.make ~initially_down events;
      proposals = Array.of_list proposals;
      injections;
    }

let pp fmt t =
  Format.fprintf fmt
    "%s[%s n=%d ts=%g delta=%g rho=%g seed=%Ld net=%s down=%d faults=%d \
     inj=%d]"
    t.name (protocol_name t.protocol) t.n t.ts t.delta t.rho t.seed
    (Sim.Network_spec.name t.network)
    (List.length t.faults.Sim.Fault.initially_down)
    (List.length t.faults.Sim.Fault.events)
    (List.length t.injections)
