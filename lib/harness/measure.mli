(** Shared measurement and safety-checking helpers for experiments. *)

(** Worst decision latency among [procs], in units of [delta], measured
    from [from_time] (usually [TS]; pass a restart instant for restart
    experiments).  [Float.infinity] if any of [procs] did not decide. *)
val worst_latency :
  'st Sim.Engine.run_result ->
  procs:int list ->
  from_time:Sim.Sim_time.t ->
  delta:float ->
  float

(** Mean decision latency among deciders in [procs] (delta units). *)
val mean_latency :
  'st Sim.Engine.run_result ->
  procs:int list ->
  from_time:Sim.Sim_time.t ->
  delta:float ->
  float

(** Agreement (all decided values equal) and validity (every decided
    value was somebody's proposal).  [Error msg] names the violation. *)
val check_safety : 'st Sim.Engine.run_result -> (unit, string) result

(** Process ids [0 .. n-1] minus [except]. *)
val procs : n:int -> ?except:int list -> unit -> int list

(** Fold [f] over [seeds] distinct seeds derived from [base]. *)
val over_seeds : seeds:int -> base:int64 -> (int64 -> 'a) -> 'a list

(** {2 Parallel sweeps}

    Every {!Sim.Engine.run} is a self-contained deterministic function
    of its scenario, so sweeps fan out across a {!Sim.Domain_pool} and
    collect results by submission index: the output of {!par_map} is the
    output of [List.map], whatever the pool size. *)

(** Number of domains sweeps use: [SIM_DOMAINS] if set to a positive
    integer ([1] = the serial path), otherwise
    [Domain.recommended_domain_count]; a surrounding {!with_domains}
    overrides both. *)
val domain_count : unit -> int

(** [par_map f xs] is [List.map f xs] computed on {!domain_count}
    domains (shared process-wide pool, created on first use).  Nested
    calls (from inside a task) run serially on the calling domain. *)
val par_map : ('a -> 'b) -> 'a list -> 'b list

(** {!over_seeds}, parallelized over the seeds. *)
val over_seeds_par : seeds:int -> base:int64 -> (int64 -> 'a) -> 'a list

(** [with_domains n f] runs [f ()] with the pool size forced to [n]
    (restored afterwards) — the hook the determinism regression test
    uses to compare [n = 1] against [n >= 4] in one process. *)
val with_domains : int -> (unit -> 'a) -> 'a
