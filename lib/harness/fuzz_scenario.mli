(** Serializable fault-injection scenarios.

    A fuzz scenario is the fully declarative counterpart of
    {!Sim.Scenario.t}: where the engine scenario holds a compiled
    network closure, this one holds a {!Sim.Network_spec.t}; where the
    harness passes typed in-flight injections to {!Sim.Engine.run}, this
    one holds their protocol-independent description.  The result is a
    plain data term with a lossless JSON form — the unit the fuzzer
    generates, delta-debugs, persists to the regression corpus, and
    replays. *)

(** Which implementation the scenario runs.  [Ungated_paxos] is modified
    Paxos with condition (ii) of Start Phase 1 dropped (the A1 ablation)
    — an intentionally broken variant kept as a fuzzer target: campaigns
    against it must find the obsolete-ballot liveness attack. *)
type protocol =
  | Modified_paxos
  | Ungated_paxos
  | Traditional_paxos
  | Rotating_coordinator
  | B_consensus

val protocol_name : protocol -> string

(** Inverse of {!protocol_name} (case-insensitive). *)
val protocol_of_name : string -> protocol option

(** All five, in declaration order. *)
val protocols : protocol list

(** An obsolete message placed directly into the network: a phase 1a of
    session [session] owned by [src] (ballot [session * n + src]),
    delivered to [dst] at instant [at] — the paper's "message sent
    before [TS] by a process that has since failed", without simulating
    the execution that produced it.  Compiled per protocol:
    {!Dgl.Messages.P1a} for the (un)gated modified algorithm,
    {!Baselines.Paxos_messages.P1a} for traditional Paxos.  The
    round-based protocols take no injections. *)
type injection = { at : float; src : int; dst : int; session : int }

type t = {
  name : string;
  protocol : protocol;
  n : int;
  ts : float;
  delta : float;
  rho : float;
  seed : int64;
  horizon : float;
  network : Sim.Network_spec.t;
  faults : Sim.Fault.t;
  proposals : int array;
  injections : injection list;
}

(** The engine scenario this term describes ([record_trace] defaults to
    [true]: fuzzer runs are always checked through their trace). *)
val to_scenario : ?record_trace:bool -> t -> Sim.Scenario.t

(** Everything {!Sim.Scenario.validate} checks, plus: the network spec
    is well-formed, injection endpoints are in range with non-negative
    times and sessions, and the protocol accepts injections
    (round-based protocols take none). *)
val validate : t -> (unit, string) result

(** Number of discrete adversarial choices: injections, fault events,
    initially-down processes, network complexity, plus one for nonzero
    clock drift.  The shrinker minimizes this measure and never lets it
    grow. *)
val size : t -> int

val equal : t -> t -> bool

val to_json : t -> Sim.Json.t

val of_json : Sim.Json.t -> (t, string) result

(** One-line summary: protocol, n, network name, fault/injection
    counts. *)
val pp : Format.formatter -> t -> unit
