(* Trace-driven invariant checking.

   Everything here re-derives its verdict from the recorded (or
   imported) trace alone — independent of the engine state that produced
   it — so a JSONL trace from disk is as checkable as a live run. *)

type violation = { check : string; detail : string }

type report = {
  entries_checked : int;
  wrapped : bool;
  violations : violation list;
}

let ok r = r.violations = []

(* Absolute slack on float comparisons: trace times survive a JSONL
   round-trip exactly (%.17g), so this only absorbs arithmetic noise in
   derived quantities like [fire_at - t]. *)
let tol = 1e-9

let pp fmt r =
  if ok r then
    Format.fprintf fmt "invariants OK (%d entries%s)" r.entries_checked
      (if r.wrapped then ", ring wrapped: causality checks skipped" else "")
  else begin
    Format.fprintf fmt "%d invariant violation(s) in %d entries:@."
      (List.length r.violations) r.entries_checked;
    List.iter
      (fun v -> Format.fprintf fmt "  [%s] %s@." v.check v.detail)
      r.violations
  end

(* Notes of the form "session:<k>:<how>" are the modified algorithms'
   session-entry markers (see lib/dgl/modified_paxos.ml). *)
let session_of_note text =
  match String.split_on_char ':' text with
  | "session" :: k :: _ -> int_of_string_opt k
  | _ -> None

let check ?proposals ?timer_bounds trace =
  let violations = ref [] in
  let add check detail = violations := { check; detail } :: !violations in
  let wrapped = Sim.Trace.dropped_oldest trace > 0 in
  (* agreement + decide-once + validity *)
  let decided : (int, Sim.Sim_time.t * int) Hashtbl.t = Hashtbl.create 8 in
  let first_decision = ref None in
  (* message causality: id -> (send_time, src, dst) *)
  let sends : (int, Sim.Sim_time.t * int * int) Hashtbl.t =
    Hashtbl.create 256
  in
  (* timer causality: (proc, tag) -> pending fire_at list *)
  let timers : (int * int, Sim.Sim_time.t list) Hashtbl.t =
    Hashtbl.create 64
  in
  (* session monotonicity: proc -> last session entered *)
  let sessions : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let check_msg_causality ~what ~t ~id ~src ~dst =
    if (not wrapped) && id >= 0 then
      match Hashtbl.find_opt sends id with
      | None ->
          add "causality"
            (Printf.sprintf
               "%s of message #%d %d->%d at %s has no recorded send" what id
               src dst (Sim.Sim_time.to_string t))
      | Some (t0, src0, dst0) ->
          if src0 <> src || dst0 <> dst then
            add "causality"
              (Printf.sprintf
                 "message #%d sent as %d->%d but %s as %d->%d" id src0 dst0
                 what src dst)
          else if Sim.Sim_time.compare t0 t > 0 then
            add "causality"
              (Printf.sprintf "message #%d %s at %s before its send at %s" id
                 what
                 (Sim.Sim_time.to_string t)
                 (Sim.Sim_time.to_string t0))
  in
  Sim.Trace.iter
    (fun e ->
      match e with
      | Sim.Trace.Send { t; id; src; dst; _ } ->
          if id >= 0 && not (Hashtbl.mem sends id) then
            Hashtbl.add sends id (t, src, dst)
      | Sim.Trace.Deliver { t; id; src; dst; _ } ->
          check_msg_causality ~what:"delivery" ~t ~id ~src ~dst
      | Sim.Trace.Drop { t; id; src; dst; _ } ->
          (* A drop with no recorded send is the network refusing the
             message at send time — it is its own origin record. *)
          if id >= 0 && Hashtbl.mem sends id then
            check_msg_causality ~what:"drop" ~t ~id ~src ~dst
          else if id >= 0 then Hashtbl.add sends id (t, src, dst)
      | Sim.Trace.Timer_set { t; proc; tag; fire_at } ->
          if Sim.Sim_time.compare fire_at t < 0 then
            add "timer"
              (Printf.sprintf "p%d timer tag=%d set at %s to fire in the past"
                 proc tag
                 (Sim.Sim_time.to_string t));
          (match timer_bounds with
          | Some (delta, sigma) when tag >= 0 ->
              (* Session timers must keep their real duration inside the
                 paper's [4 delta, sigma] window (Section 4). *)
              let d = Sim.Sim_time.diff fire_at t in
              if d < (4. *. delta) -. tol || d > sigma +. tol then
                add "sigma-timer"
                  (Printf.sprintf
                     "p%d session timer tag=%d runs %.6fs, outside [4d=%.6f, \
                      sigma=%.6f]"
                     proc tag d (4. *. delta) sigma)
          | _ -> ());
          let key = (proc, tag) in
          let prev = Option.value ~default:[] (Hashtbl.find_opt timers key) in
          Hashtbl.replace timers key (fire_at :: prev)
      | Sim.Trace.Timer_fire { t; proc; tag } ->
          if not wrapped then begin
            let key = (proc, tag) in
            let pending =
              Option.value ~default:[] (Hashtbl.find_opt timers key)
            in
            match
              List.partition
                (fun fire_at -> Sim.Sim_time.compare fire_at (t +. tol) <= 0)
                pending
            with
            | [], _ ->
                add "timer"
                  (Printf.sprintf
                     "p%d timer tag=%d fired at %s with no due Timer_set"
                     proc tag
                     (Sim.Sim_time.to_string t))
            | _ :: due_rest, not_due ->
                Hashtbl.replace timers key (due_rest @ not_due)
          end
      | Sim.Trace.Note { proc; text; _ } -> (
          match session_of_note text with
          | None -> ()
          | Some s -> (
              match Hashtbl.find_opt sessions proc with
              | Some prev when s <= prev ->
                  add "session-monotonic"
                    (Printf.sprintf
                       "p%d entered session %d after already being in \
                        session %d"
                       proc s prev)
              | _ -> Hashtbl.replace sessions proc s))
      | Sim.Trace.Decide { t; proc; value } -> (
          (match Hashtbl.find_opt decided proc with
          | Some _ ->
              add "decide-once"
                (Printf.sprintf "p%d decided twice (again at %s)" proc
                   (Sim.Sim_time.to_string t))
          | None -> Hashtbl.add decided proc (t, value));
          (match !first_decision with
          | None -> first_decision := Some (proc, value)
          | Some (p0, v0) ->
              if value <> v0 then
                add "agreement"
                  (Printf.sprintf "p%d decided %d but p%d decided %d" proc
                     value p0 v0));
          match proposals with
          | Some props when not (Array.exists (( = ) value) props) ->
              add "validity"
                (Printf.sprintf "p%d decided %d, which nobody proposed" proc
                   value)
          | _ -> ())
      | Sim.Trace.Crash _ | Sim.Trace.Restart _ -> ())
    trace;
  {
    entries_checked = Sim.Trace.length trace;
    wrapped;
    violations = List.rev !violations;
  }

let check_run ?timer_bounds ?(check_validity = true) r =
  let proposals =
    if check_validity then
      Some r.Sim.Engine.scenario.Sim.Scenario.proposals
    else None
  in
  check ?proposals ?timer_bounds r.Sim.Engine.trace
