(** The reproduction experiments.

    The paper is analytical — it has no numbered tables or figures — so
    each experiment regenerates one of its quantitative claims (see
    DESIGN.md section 4 for the index).  Every experiment validates
    agreement and validity on every run it performs; a violation shows
    up in the table notes and in {!Report.table} rows as ["NO"]. *)

type speed = Quick | Full

(** Modified Paxos decides by [TS + eps + 3 tau + 5 delta], independent
    of [N] (Section 4, proof step 8). *)
val e1 : ?speed:speed -> unit -> Report.table

(** Traditional Paxos is delayed [O(N delta)] by obsolete high ballots
    (Section 2). *)
val e2 : ?speed:speed -> unit -> Report.table

(** Rotating-coordinator round-based consensus needs [O(N delta)] when
    the [⌈N/2⌉-1] first coordinators are faulty (Section 3). *)
val e3 : ?speed:speed -> unit -> Report.table

(** A process that restarts after [TS] decides within [O(delta)] of its
    restart (Section 4, "Process Restarts"). *)
val e4 : ?speed:speed -> unit -> Report.table

(** Modified B-Consensus also decides within [O(delta)] of [TS],
    "about the same" as modified Paxos (Section 5). *)
val e5 : ?speed:speed -> unit -> Report.table

(** Message-complexity vs decision-latency trade-off in [epsilon]
    (Section 4, "Reducing Message Complexity"). *)
val e6 : ?speed:speed -> unit -> Report.table

(** Stable case: with phase 1 pre-executed, decision within 3 message
    delays (Section 4, "Reducing Message Complexity"). *)
val e7 : ?speed:speed -> unit -> Report.table

(** Sensitivity to the session-timeout upper bound [sigma] (enters the
    bound through [tau = max (2 delta + eps) sigma]). *)
val e8 : ?speed:speed -> unit -> Report.table

(** Tolerance of clock-rate error [rho] while the timer window
    [[4 delta, sigma]] stays feasible. *)
val e9 : ?speed:speed -> unit -> Report.table

(** State machine replication (lib/smr): with phase 1 pre-executed for
    all instances, a stable leader commits each command within 3 message
    delays (Section 4, "Reducing Message Complexity"). *)
val e10 : ?speed:speed -> unit -> Report.table

(** A concrete heartbeat-based leader elector stabilizes in O(delta)
    after TS only without obsolete heartbeats; stale heartbeats from dead
    low-id processes delay it O(N delta) — the Section 3 remark about
    leader-based algorithms, made executable. *)
val e11 : ?speed:speed -> unit -> Report.table

(** Ablation: dropping the session gate (condition (ii) of Start
    Phase 1) re-opens the [O(N delta)] obsolete-ballot attack. *)
val a1 : ?speed:speed -> unit -> Report.table

(** Ablation: oracle hold-backs shorter than [2 delta] break same-order
    delivery and slow modified B-Consensus down. *)
val a2 : ?speed:speed -> unit -> Report.table

(** Ablation: with round jumping disabled (the original B-Consensus
    shape) a straggler executes every round in order and its catch-up
    grows with how far behind it is (Section 5, last paragraph). *)
val a3 : ?speed:speed -> unit -> Report.table

(** Ablation: without the progress gate the SMR layer's leadership
    churns every session timeout even in a healthy system (the gate is
    this repository's realization of the paper's "same behavior as
    normal Paxos in the stable case"; see DESIGN.md 4b.5). *)
val a4 : ?speed:speed -> unit -> Report.table

(** All of the above, in order. *)
val all : ?speed:speed -> unit -> Report.table list

(** The headline comparison as a chartable (label, worst-latency) series:
    each algorithm under its worst admissible adversary, per cluster
    size.  Feed to {!Report.bar_chart}. *)
val headline : ?speed:speed -> unit -> (string * float) list

(** Look an experiment up by id ("e1" ... "a2", case-insensitive). *)
val by_id : string -> (?speed:speed -> unit -> Report.table) option

val ids : string list

(** {1 Aggregate run metrics}

    Every experiment folds each run's {!Sim.Registry} into a
    process-wide collector (mutex-guarded: experiment bodies execute on
    {!Measure} worker domains).  Since only commutative sums and bucket
    counts are accumulated, the snapshot is byte-identical whatever
    [SIM_DOMAINS] is. *)

(** Clear the process-wide metrics collector. *)
val reset_metrics : unit -> unit

(** A copy of everything collected since the last {!reset_metrics}. *)
val metrics_snapshot : unit -> Sim.Registry.t

(** {1 Traced replays}

    One representative, fully-traced run per experiment id — the same
    scenario bench/main.ml times for that id.  This is what the
    [consensus_sim trace] subcommand replays and what the invariant
    tests check. *)

type replay = {
  replay_id : string;  (** lower-cased experiment id *)
  scenario : Sim.Scenario.t;  (** the scenario that was run *)
  trace : Sim.Trace.t;  (** full structured trace (recording on) *)
  metrics : Sim.Registry.t;  (** the run's counters and histograms *)
  proposals : int array option;
      (** [Some] when decided values are proposals (validity applies) *)
  timer_bounds : (float * float) option;
      (** [(delta, sigma)] for modified-Paxos runs: session timers must
          stay inside [[4 delta, sigma]] *)
  invariants : Invariants.report;  (** checker verdict on the trace *)
}

(** [replay id] runs the representative scenario for [id]
    (case-insensitive) with tracing on; [None] for unknown ids. *)
val replay : string -> replay option
