let latencies r ~procs ~from_time ~delta =
  List.map
    (fun p ->
      match r.Sim.Engine.decision_times.(p) with
      | Some t -> (t -. from_time) /. delta
      | None -> Float.infinity)
    procs

let worst_latency r ~procs ~from_time ~delta =
  List.fold_left Float.max 0. (latencies r ~procs ~from_time ~delta)

let mean_latency r ~procs ~from_time ~delta =
  let finite =
    List.filter Float.is_finite (latencies r ~procs ~from_time ~delta)
  in
  match finite with [] -> Float.infinity | xs -> Sim.Metrics.mean xs

let check_safety (r : _ Sim.Engine.run_result) =
  match r.Sim.Engine.agreement_violation with
  | Some (p1, v1, p2, v2) ->
      Error
        (Printf.sprintf "agreement violated: p%d decided %d but p%d decided %d"
           p1 v1 p2 v2)
  | None ->
      let proposals = Array.to_list r.scenario.Sim.Scenario.proposals in
      let bad = ref None in
      Array.iteri
        (fun p v ->
          match v with
          | Some v when (not (List.mem v proposals)) && !bad = None ->
              bad := Some (p, v)
          | _ -> ())
        r.decision_values;
      (match !bad with
      | Some (p, v) ->
          Error
            (Printf.sprintf "validity violated: p%d decided %d, never proposed"
               p v)
      | None -> Ok ())

let procs ~n ?(except = []) () =
  List.filter (fun p -> not (List.mem p except)) (List.init n (fun i -> i))

let over_seeds ~seeds ~base f =
  List.init seeds (fun i -> f (Int64.add base (Int64.of_int (i * 7919))))

(* ------------------------------------------------------------------ *)
(* Parallel sweeps                                                     *)
(* ------------------------------------------------------------------ *)

(* lint: allow R4 — test-only override, written solely from the
   coordinating domain via [with_domains]; workers never read it *)
let forced_domains = ref None

let domain_count () =
  match !forced_domains with
  | Some n -> n
  | None -> (
      match Sys.getenv_opt "SIM_DOMAINS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 1 -> n
          | _ -> Domain.recommended_domain_count ())
      | None -> Domain.recommended_domain_count ())

(* One pool, created on first use and re-created if the requested size
   changes (tests flip sizes via [with_domains]). *)
(* lint: allow R4 — process-wide pool cache by design: created and
   swapped only on the coordinating domain, never from workers *)
let pool = ref None

let get_pool () =
  let want = domain_count () in
  match !pool with
  | Some p when Sim.Domain_pool.size p = want -> p
  | prev ->
      (match prev with Some p -> Sim.Domain_pool.shutdown p | None -> ());
      let p = Sim.Domain_pool.create ~domains:want () in
      pool := Some p;
      p

let par_map f xs = Sim.Domain_pool.map (get_pool ()) f xs

let over_seeds_par ~seeds ~base f =
  par_map f (List.init seeds (fun i -> Int64.add base (Int64.of_int (i * 7919))))

let with_domains n f =
  if n < 1 then invalid_arg "Measure.with_domains: n < 1";
  let saved = !forced_domains in
  forced_domains := Some n;
  Fun.protect ~finally:(fun () -> forced_domains := saved) f
