type speed = Quick | Full

(* All experiments share one parameterization: delta = 10ms, stabilization
   after 50 delta of arbitrary behaviour. *)
let delta = 0.01

let ts = 0.5

let sizes = function Quick -> [ 3; 5; 9; 17 ] | Full -> [ 3; 5; 9; 17; 33; 65 ]

let seeds = function Quick -> 3 | Full -> 10

let seed_base = 42L

(* Safety violations and run metrics are collected per row.  Rows fan
   out across domains ({!Measure.par_map}), so each row body receives a
   private collector; {!par_collect} merges notes and registries in row
   order, which keeps the rendered tables byte-identical whatever
   SIM_DOMAINS is (registry merges are commutative sums anyway). *)
type obs = { notes : string list ref; reg : Sim.Registry.t }

(* Process-wide metrics accumulator, fed by every [par_collect] so bench
   can dump one aggregate registry into BENCH_RESULTS.json.  Experiment
   bodies run on worker domains, hence the mutex. *)
let collector = Sim.Registry.create ()

let collector_mu = Mutex.create ()

let reset_metrics () =
  Mutex.protect collector_mu (fun () -> Sim.Registry.reset collector)

let metrics_snapshot () =
  Mutex.protect collector_mu (fun () ->
      let c = Sim.Registry.create () in
      Sim.Registry.merge_into ~dst:c collector;
      c)

(* Fold one run's counters/histograms into the row's registry.  Called
   by [check]; experiments that skip the generic safety check (SMR
   checksum decisions, leader election) call it directly. *)
let record_metrics obs r =
  Sim.Registry.merge_into ~dst:obs.reg r.Sim.Engine.metrics

let check obs r =
  record_metrics obs r;
  match Measure.check_safety r with
  | Ok () -> ()
  | Error msg ->
      obs.notes :=
        Printf.sprintf "%s (scenario %s, seed %Ld)" msg
          r.Sim.Engine.scenario.Sim.Scenario.name
          r.Sim.Engine.scenario.Sim.Scenario.seed
        :: !(obs.notes)

(* [par_collect xs f] maps [f] over [xs] on the sweep pool, giving each
   element a fresh observability collector; returns the results in input
   order, the notes merged in input order (each element's notes in
   occurrence order), and the per-element registries merged into one. *)
let par_collect xs f =
  let triples =
    Measure.par_map
      (fun x ->
        let obs = { notes = ref []; reg = Sim.Registry.create () } in
        let y = f obs x in
        (y, List.rev !(obs.notes), obs.reg))
      xs
  in
  let merged = Sim.Registry.create () in
  List.iter
    (fun (_, _, reg) -> Sim.Registry.merge_into ~dst:merged reg)
    triples;
  Mutex.protect collector_mu (fun () ->
      Sim.Registry.merge_into ~dst:collector merged);
  ( List.map (fun (y, _, _) -> y) triples,
    List.concat_map (fun (_, ns, _) -> ns) triples,
    merged )

(* One deterministic summary line per table, from the table's merged
   registry.  Only sums and bucket quantiles appear, so the line is
   byte-identical across SIM_DOMAINS settings. *)
let metrics_note reg =
  let c name = Sim.Registry.counter_total reg name in
  let q p =
    match Sim.Registry.quantile reg "decision_latency_delta" p with
    | Some v -> Printf.sprintf "%gd" v
    | None -> "n/a"
  in
  let protocol_counters =
    List.filter_map
      (fun (name, label) ->
        let v = c name in
        if v = 0 then None else Some (Printf.sprintf "%s %d" label v))
      [
        ("phase1_starts", "phase-1 starts");
        ("session_entries", "session entries");
      ]
  in
  Printf.sprintf
    "observability: %d runs; msgs sent/delivered/dropped %d/%d/%d%s; \
     decision latency p50<=%s p95<=%s"
    (c "runs") (c "msgs_sent") (c "msgs_delivered") (c "msgs_dropped")
    (match protocol_counters with
    | [] -> ""
    | cs -> "; " ^ String.concat ", " cs)
    (q 0.5) (q 0.95)

let drain_notes ~reg ~pass_note = function
  | [] -> [ pass_note; metrics_note reg ]
  | notes ->
      ("SAFETY VIOLATIONS DETECTED:" :: notes)
      @ [ pass_note; metrics_note reg ]

(* ------------------------------------------------------------------ *)
(* E1: modified Paxos decides in O(delta), independent of N            *)
(* ------------------------------------------------------------------ *)

let e1 ?(speed = Quick) () =
  let cfg_for n = Dgl.Config.make ~n ~delta () in
  let bound = Dgl.Config.decision_bound (cfg_for 3) /. delta in
  let rows, notes, reg =
    par_collect (sizes speed) (fun obs n ->
        let victims = Adversaries.faulty_minority ~n in
        let faults = Sim.Fault.make ~initially_down:victims [] in
        let live = Measure.procs ~n ~except:victims () in
        let run ~network ~injections seed =
          let sc =
            Sim.Scenario.make ~name:"e1" ~n ~ts ~delta ~seed ~network ~faults
              ()
          in
          let r = Sim.Engine.run ~injections sc (Dgl.Modified_paxos.protocol (cfg_for n)) in
          check obs r;
          Measure.worst_latency r ~procs:live ~from_time:ts ~delta
        in
        let lat_det =
          Measure.over_seeds ~seeds:(seeds speed) ~base:seed_base (fun seed ->
              run ~network:Sim.Network.deterministic_after_ts
                ~injections:
                  (Adversaries.dgl_session1_injections ~n ~from:ts
                     ~spacing:(2. *. delta) ~victims)
                seed)
        in
        let lat_rand =
          Measure.over_seeds ~seeds:(seeds speed) ~base:seed_base (fun seed ->
              run
                ~network:(Sim.Network.eventually_synchronous ())
                ~injections:[] seed)
        in
        let all = lat_det @ lat_rand in
        let worst = List.fold_left Float.max 0. all in
        [
          string_of_int n;
          string_of_int (List.length victims);
          Report.cell_f (Sim.Metrics.mean all);
          Report.cell_latency worst;
          Report.cell_f bound;
          Report.cell_bool (worst <= bound);
        ])
  in
  Report.make ~id:"E1" ~title:"Modified Paxos: decision latency after TS"
    ~claim:
      "every process nonfaulty at TS decides by TS + eps + 3*tau + 5*delta, \
       independent of N (Sec. 4)"
    ~columns:[ "n"; "faulty"; "mean(d)"; "worst(d)"; "bound(d)"; "<=bound" ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "adversaries: faulty minority + injected session-1 obsolete \
            ballots (deterministic net), and 50%-loss random pre-TS net; \
            latency in units of delta"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* E2: traditional Paxos, O(N delta) under obsolete ballots            *)
(* ------------------------------------------------------------------ *)

let e2 ?(speed = Quick) () =
  let theta = 2. *. delta in
  let rows, notes, reg =
    par_collect (sizes speed) (fun obs n ->
        let victims = Adversaries.faulty_minority ~n in
        let faults = Sim.Fault.make ~initially_down:victims [] in
        let live = Measure.procs ~n ~except:victims () in
        let t0 =
          Adversaries.traditional_first_start ~ts ~theta ~stabilize_delay:delta
        in
        let injections =
          Adversaries.paxos_aligned_injections ~n ~delta ~t0 ~leader:0
            ~victims
        in
        let sc =
          Sim.Scenario.make ~name:"e2" ~n ~ts ~delta ~seed:seed_base
            ~network:Sim.Network.deterministic_after_ts ~faults ()
        in
        let oracle = Baselines.Leader_election.make ~n ~ts ~delta ~faults () in
        let proto = Baselines.Traditional_paxos.protocol ~n ~delta ~oracle () in
        let r = Sim.Engine.run ~injections sc proto in
        check obs r;
        let worst = Measure.worst_latency r ~procs:live ~from_time:ts ~delta in
        let k = List.length victims in
        [
          string_of_int n;
          string_of_int k;
          Report.cell_latency worst;
          Report.cell_f (worst /. float_of_int k);
        ])
  in
  Report.make ~id:"E2"
    ~title:"Traditional Paxos: obsolete high ballots cost O(N*delta)"
    ~claim:
      "each of up to ceil(N/2)-1 obsolete ballots forces another Start \
       Phase 1 round trip, so deciding can take TS + O(N*delta) (Sec. 2)"
    ~columns:[ "n"; "obsolete"; "worst(d)"; "delta per ballot" ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "deterministic-delay net; ballot i lands mid-phase-2 of the \
            leader's retry i; expect ~4 delta per obsolete ballot \
            (linear), vs E1's flat bound"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* E3: rotating coordinator, O(N delta) with dead coordinators         *)
(* ------------------------------------------------------------------ *)

let e3 ?(speed = Quick) () =
  let rows, notes, reg =
    par_collect (sizes speed) (fun obs n ->
        let f = n - Consensus.Quorum.majority n in
        let dead = List.init f (fun i -> i) in
        let faults = Sim.Fault.make ~initially_down:dead [] in
        let live = Measure.procs ~n ~except:dead () in
        let lats =
          Measure.over_seeds ~seeds:(seeds speed) ~base:seed_base (fun seed ->
              let sc =
                Sim.Scenario.make ~name:"e3" ~n ~ts ~delta ~seed
                  ~network:Sim.Network.silent_until_ts ~faults ()
              in
              let proto = Baselines.Rotating_coordinator.protocol ~n ~delta () in
              let r = Sim.Engine.run sc proto in
              check obs r;
              Measure.worst_latency r ~procs:live ~from_time:ts ~delta)
        in
        let worst = List.fold_left Float.max 0. lats in
        [
          string_of_int n;
          string_of_int f;
          Report.cell_f (Sim.Metrics.mean lats);
          Report.cell_latency worst;
          Report.cell_f (worst /. float_of_int f);
        ])
  in
  Report.make ~id:"E3"
    ~title:"Rotating coordinator: dead coordinators cost O(N*delta)"
    ~claim:
      "rounds 0..ceil(N/2)-2 have faulty coordinators and each burns one \
       O(delta) timeout before the first live coordinator decides (Sec. 3)"
    ~columns:[ "n"; "dead coords"; "mean(d)"; "worst(d)"; "delta per round" ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "the ceil(N/2)-1 lowest-id processes are down; round timeout = \
            4 delta, so expect ~4 delta per dead coordinator"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* E4: restart after TS decides within O(delta) of the restart         *)
(* ------------------------------------------------------------------ *)

let e4 ?(speed = Quick) () =
  let n = 5 in
  let cfg = Dgl.Config.make ~n ~delta () in
  let bound = Dgl.Config.restart_bound cfg /. delta in
  let offsets = [ 10.; 20.; 40.; 80. ] in
  let rows, notes, reg =
    par_collect offsets (fun obs off ->
        let restart_at = ts +. (off *. delta) in
        let faults =
          Sim.Fault.crash_then_restart ~crash_at:(ts /. 2.) ~restart_at 2
        in
        let lats =
          Measure.over_seeds ~seeds:(seeds speed) ~base:seed_base (fun seed ->
              let sc =
                Sim.Scenario.make ~name:"e4" ~n ~ts ~delta ~seed
                  ~network:(Sim.Network.eventually_synchronous ())
                  ~faults
                  ~horizon:(restart_at +. (200. *. delta))
                  ()
              in
              let r = Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg) in
              check obs r;
              Measure.worst_latency r ~procs:[ 2 ] ~from_time:restart_at
                ~delta)
        in
        let worst = List.fold_left Float.max 0. lats in
        [
          Printf.sprintf "TS + %.0f delta" off;
          Report.cell_f (Sim.Metrics.mean lats);
          Report.cell_latency worst;
          Report.cell_f bound;
          Report.cell_bool (worst <= bound);
        ])
  in
  Report.make ~id:"E4" ~title:"Modified Paxos: decision latency after restart"
    ~claim:
      "a process restarting at T' > TS decides within O(delta) of T': a new \
       session starts every tau and completes within 5 delta (Sec. 4)"
    ~columns:[ "restart at"; "mean(d)"; "worst(d)"; "bound(d)"; "<=bound" ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "n=5; process 2 crashes before TS and restarts at the given \
            offset; latency measured from the restart instant; decision \
            broadcast OFF (the paper's optional optimization would shrink \
            this to ~1 delta)"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* E5: modified B-Consensus decides in O(delta), independent of N      *)
(* ------------------------------------------------------------------ *)

let e5 ?(speed = Quick) () =
  let dgl_ref = Dgl.Config.decision_bound (Dgl.Config.make ~n:3 ~delta ()) /. delta in
  let rows, notes, reg =
    par_collect (sizes speed) (fun obs n ->
        let victims = Adversaries.faulty_minority ~n in
        let faults = Sim.Fault.make ~initially_down:victims [] in
        let live = Measure.procs ~n ~except:victims () in
        let run ~network seed =
          let sc =
            Sim.Scenario.make ~name:"e5" ~n ~ts ~delta ~seed ~network ~faults
              ()
          in
          let proto =
            Bconsensus.Modified_b_consensus.protocol ~n ~delta ~rho:0. ()
          in
          let r = Sim.Engine.run sc proto in
          check obs r;
          Measure.worst_latency r ~procs:live ~from_time:ts ~delta
        in
        let lats =
          Measure.over_seeds ~seeds:(seeds speed) ~base:seed_base
            (run ~network:Sim.Network.silent_until_ts)
          @ Measure.over_seeds ~seeds:(seeds speed) ~base:7777L
              (run ~network:(Sim.Network.eventually_synchronous ()))
        in
        let worst = List.fold_left Float.max 0. lats in
        [
          string_of_int n;
          Report.cell_f (Sim.Metrics.mean lats);
          Report.cell_latency worst;
          Report.cell_f dgl_ref;
        ])
  in
  Report.make ~id:"E5"
    ~title:"Modified B-Consensus: decision latency after TS"
    ~claim:
      "the oracle-based leaderless algorithm also decides within O(delta) \
       of TS; \"the actual maximum delay is about the same as for the \
       modified Paxos algorithm\" (Sec. 5)"
    ~columns:[ "n"; "mean(d)"; "worst(d)"; "mod-Paxos bound(d)" ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "faulty minority down; both silent and 50%-loss pre-TS networks; \
            2 delta oracle hold-back; flat in n like E1"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* E6: epsilon trade-off, messages vs latency                          *)
(* ------------------------------------------------------------------ *)

let e6 ?(speed = Quick) () =
  let n = 5 in
  let eps_factors = [ 0.125; 0.25; 0.5; 1.; 2.; 4. ] in
  let window = 30. *. delta in
  let rows, notes, reg =
    par_collect eps_factors (fun obs f ->
        let epsilon = f *. delta in
        let sigma = Float.max (5. *. delta) (4. *. delta +. epsilon) in
        let cfg = Dgl.Config.make ~n ~delta ~epsilon ~sigma () in
        let bound = Dgl.Config.decision_bound cfg /. delta in
        (* latency: silent-before-TS scenario *)
        let lats =
          Measure.over_seeds ~seeds:(seeds speed) ~base:seed_base (fun seed ->
              let sc =
                Sim.Scenario.make ~name:"e6lat" ~n ~ts ~delta ~seed
                  ~network:Sim.Network.silent_until_ts
                  ~horizon:(ts +. (300. *. delta))
                  ()
              in
              let r = Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg) in
              check obs r;
              Measure.worst_latency r
                ~procs:(Measure.procs ~n ())
                ~from_time:ts ~delta)
        in
        (* steady-state message rate: keep running past the decision *)
        let rate =
          let sc =
            Sim.Scenario.make ~name:"e6rate" ~n ~ts:0. ~delta ~seed:seed_base
              ~network:Sim.Network.always_synchronous
              ~stop_on_all_decided:false ~record_trace:true
              ~horizon:(2. *. window) ()
          in
          let r = Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg) in
          check obs r;
          let sends =
            Sim.Trace.sends_in_window r.Sim.Engine.trace ~lo:window
              ~hi:(2. *. window)
          in
          float_of_int sends /. (window /. delta) /. float_of_int n
        in
        let worst = List.fold_left Float.max 0. lats in
        [
          Printf.sprintf "%.3f delta" f;
          Report.cell_f (Sim.Metrics.mean lats);
          Report.cell_latency worst;
          Report.cell_f bound;
          Report.cell_f rate;
        ])
  in
  Report.make ~id:"E6" ~title:"Epsilon trade-off: message rate vs latency"
    ~claim:
      "sending 1a messages less often (larger epsilon) reduces the \
       steady-state message rate but increases how long decisions take \
       after stabilization; \"frequent message sending is an unavoidable \
       cost of fast recovery\" (Sec. 4)"
    ~columns:
      [ "epsilon"; "mean lat(d)"; "worst lat(d)"; "bound(d)"; "msgs/proc/delta" ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "n=5; latency under the silent-until-TS adversary; message rate \
            in the steady state of an already-stable run (algorithm keeps \
            executing after deciding, as in the paper's model)"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* E7: stable case, phase 1 pre-executed                               *)
(* ------------------------------------------------------------------ *)

let e7 ?(speed = Quick) () =
  let n = 5 in
  ignore speed;
  let run obs ~prestart =
    let options = { Dgl.Modified_paxos.default_options with prestart } in
    let cfg = Dgl.Config.make ~n ~delta () in
    let sc =
      Sim.Scenario.make
        ~name:(if prestart then "e7-prestarted" else "e7-cold")
        ~n ~ts:0. ~delta ~seed:seed_base
        ~network:Sim.Network.deterministic_after_ts ()
    in
    let r = Sim.Engine.run sc (Dgl.Modified_paxos.protocol ~options cfg) in
    check obs r;
    Measure.worst_latency r ~procs:(Measure.procs ~n ()) ~from_time:0. ~delta
  in
  let lats, notes, reg =
    par_collect [ true; false ] (fun obs prestart -> run obs ~prestart)
  in
  let pre, cold =
    match lats with [ a; b ] -> (a, b) | _ -> assert false
  in
  let rows =
    [
      [ "phase 1 pre-executed"; Report.cell_latency pre; "2 one-way delays" ];
      [ "cold start"; Report.cell_latency cold; "4 one-way delays + eps" ];
    ]
  in
  Report.make ~id:"E7" ~title:"Stable case: message delays to decide"
    ~claim:
      "with phase 1 executed in advance, all nonfaulty processes decide \
       within 3 message delays of the proposal (2a + 2b after the leader \
       holds the value; the third delay is the client's proposal reaching \
       the leader, which the simulation starts past) (Sec. 4)"
    ~columns:[ "mode"; "decision time (delta)"; "expected" ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "n=5, stable from time 0, deterministic delta-delay network; \
            every message takes exactly delta, so message delays are \
            directly readable from the decision time"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* E8: sigma sensitivity                                               *)
(* ------------------------------------------------------------------ *)

let e8 ?(speed = Quick) () =
  let n = 5 in
  let sigmas = [ 4.05; 5.; 6.; 8.; 10. ] in
  let rows, notes, reg =
    par_collect sigmas (fun obs s ->
        let sigma = s *. delta in
        let cfg = Dgl.Config.make ~n ~delta ~sigma () in
        let bound = Dgl.Config.decision_bound cfg /. delta in
        let lats =
          Measure.over_seeds ~seeds:(seeds speed) ~base:seed_base (fun seed ->
              let sc =
                Sim.Scenario.make ~name:"e8" ~n ~ts ~delta ~seed
                  ~network:Sim.Network.silent_until_ts ()
              in
              let r = Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg) in
              check obs r;
              Measure.worst_latency r
                ~procs:(Measure.procs ~n ())
                ~from_time:ts ~delta)
        in
        let worst = List.fold_left Float.max 0. lats in
        [
          Printf.sprintf "%.2f delta" s;
          Report.cell_f (Sim.Metrics.mean lats);
          Report.cell_latency worst;
          Report.cell_f bound;
          Report.cell_bool (worst <= bound);
        ])
  in
  Report.make ~id:"E8" ~title:"Sigma sensitivity"
    ~claim:
      "the decision bound eps + 3*tau + 5*delta grows with sigma through \
       tau = max(2*delta + eps, sigma); taking sigma ~ 4*delta gives the \
       paper's ~17*delta figure (Sec. 4)"
    ~columns:[ "sigma"; "mean lat(d)"; "worst lat(d)"; "bound(d)"; "<=bound" ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:"n=5, silent-until-TS; larger sigma = lazier session \
                     turnover = later worst-case decisions"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* E9: clock drift                                                     *)
(* ------------------------------------------------------------------ *)

let e9 ?(speed = Quick) () =
  let n = 5 in
  let rhos = [ 0.; 0.02; 0.05; 0.1 ] in
  let rows, notes, reg =
    par_collect rhos (fun obs rho ->
        let cfg = Dgl.Config.make ~n ~delta ~rho () in
        let bound = Dgl.Config.decision_bound cfg /. delta in
        let lats =
          Measure.over_seeds ~seeds:(seeds speed) ~base:seed_base (fun seed ->
              let sc =
                Sim.Scenario.make ~name:"e9" ~n ~ts ~delta ~rho ~seed
                  ~network:Sim.Network.silent_until_ts ()
              in
              let r = Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg) in
              check obs r;
              Measure.worst_latency r
                ~procs:(Measure.procs ~n ())
                ~from_time:ts ~delta)
        in
        let worst = List.fold_left Float.max 0. lats in
        [
          Printf.sprintf "%.2f" rho;
          Report.cell_f (Sim.Metrics.mean lats);
          Report.cell_latency worst;
          Report.cell_f bound;
          Report.cell_bool (worst <= bound);
        ])
  in
  Report.make ~id:"E9" ~title:"Clock-rate error tolerance"
    ~claim:
      "timers only need a known rate-error bound rho << 1: the session \
       timer is set so its real duration stays inside [4*delta, sigma] for \
       every admissible rate (Sec. 4)"
    ~columns:[ "rho"; "mean lat(d)"; "worst lat(d)"; "bound(d)"; "<=bound" ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "n=5, sigma = 5*delta (feasible for rho <= 0.11); per-process \
            clock rates drawn from [1-rho, 1+rho]"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* A1: session-gate ablation                                           *)
(* ------------------------------------------------------------------ *)

let a1 ?(speed = Quick) () =
  let rows, notes, reg =
    par_collect (sizes speed) (fun obs n ->
        let victims = Adversaries.faulty_minority ~n in
        let faults = Sim.Fault.make ~initially_down:victims [] in
        let live = Measure.procs ~n ~except:victims () in
        let cfg = Dgl.Config.make ~n ~delta () in
        let run ~gate ~injections =
          let options =
            { Dgl.Modified_paxos.default_options with session_gate = gate }
          in
          let sc =
            Sim.Scenario.make ~name:"a1" ~n ~ts ~delta ~seed:seed_base
              ~network:Sim.Network.deterministic_after_ts ~faults ()
          in
          let r =
            Sim.Engine.run ~injections sc
              (Dgl.Modified_paxos.protocol ~options cfg)
          in
          check obs r;
          Measure.worst_latency r ~procs:live ~from_time:ts ~delta
        in
        let high =
          Adversaries.dgl_high_session_injections ~n ~from:ts
            ~spacing:(3. *. delta) ~victims
        in
        let admissible =
          Adversaries.dgl_session1_injections ~n ~from:ts
            ~spacing:(2. *. delta) ~victims
        in
        let ungated = run ~gate:false ~injections:high in
        let gated = run ~gate:true ~injections:admissible in
        [
          string_of_int n;
          string_of_int (List.length victims);
          Report.cell_latency ungated;
          Report.cell_latency gated;
        ])
  in
  Report.make ~id:"A1" ~title:"Ablation: the session gate is load-bearing"
    ~claim:
      "without condition (ii) of Start Phase 1, failed processes can leave \
       behind arbitrarily high sessions and each obsolete ballot costs \
       another O(delta) — the gate makes such ballots impossible (Sec. 4)"
    ~columns:[ "n"; "obsolete"; "ungated worst(d)"; "gated worst(d)" ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "the ungated variant faces session-1000k ballots (admissible \
            without the gate); the gated algorithm faces its own worst \
            admissible adversary, session-1 ballots — the gate caps \
            obsolete sessions at s0+1 (proof step 1)"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* A2: oracle hold-back ablation                                       *)
(* ------------------------------------------------------------------ *)

let a2 ?(speed = Quick) () =
  let n = 9 in
  let factors = [ 0.; 0.5; 1.; 2.; 4. ] in
  let rows, notes, reg =
    par_collect factors (fun obs f ->
        let tuning =
          {
            (Bconsensus.Modified_b_consensus.default_tuning ~delta) with
            hold_back = f *. delta;
          }
        in
        let lats =
          Measure.over_seeds ~seeds:(seeds speed) ~base:seed_base (fun seed ->
              let sc =
                Sim.Scenario.make ~name:"a2" ~n ~ts ~delta ~seed
                  ~network:Sim.Network.silent_until_ts
                  ~horizon:(ts +. (500. *. delta))
                  ()
              in
              let proto =
                Bconsensus.Modified_b_consensus.protocol ~tuning ~n ~delta
                  ~rho:0. ()
              in
              let r = Sim.Engine.run sc proto in
              check obs r;
              Measure.worst_latency r
                ~procs:(Measure.procs ~n ())
                ~from_time:ts ~delta)
        in
        let worst = List.fold_left Float.max 0. lats in
        [
          Printf.sprintf "%.1f delta" f;
          Report.cell_f (Sim.Metrics.mean lats);
          Report.cell_latency worst;
        ])
  in
  Report.make ~id:"A2" ~title:"Ablation: oracle hold-back duration"
    ~claim:
      "the 2*delta hold-back is what makes oracle delivery order identical \
       at all processes after TS (Sec. 5); shorter hold-backs let delivery \
       orders diverge, costing extra rounds"
    ~columns:[ "hold-back"; "mean lat(d)"; "worst lat(d)" ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "n=9, silent-until-TS network; safety never depends on the \
            hold-back (agreement checked on every run), only latency does: \
            short hold-backs make processes report different values, \
            costing extra rounds until estimates coalesce"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* E10: state machine replication, stable-case commit cost             *)
(* ------------------------------------------------------------------ *)

let e10 ?(speed = Quick) () =
  let n = 5 in
  ignore speed;
  let gap = 10. *. delta in
  let per_proc = 6 in
  let submitter = 1 in
  let run obs ~stable_from_start =
    let ts' = if stable_from_start then 0. else ts in
    let start = ts' +. (20. *. delta) in
    let workloads =
      Array.init n (fun p ->
          if p <> submitter then []
          else
            List.init per_proc (fun k ->
                ( start +. (gap *. float_of_int k),
                  Smr.Command.make ~id:k (Smr.Command.Add 1) )))
    in
    let cfg = Dgl.Config.make ~n ~delta () in
    let sc =
      Sim.Scenario.make ~name:"e10" ~n ~ts:ts' ~delta ~seed:seed_base
        ~network:
          (if stable_from_start then Sim.Network.deterministic_after_ts
           else Sim.Network.eventually_synchronous ())
        ~record_trace:true
        ~horizon:(start +. (float_of_int per_proc *. gap) +. (100. *. delta))
        ()
    in
    let r = Sim.Engine.run sc (Smr.Multi_paxos.protocol cfg ~workloads) in
    record_metrics obs r;
    (* SMR decisions are log checksums, so only the agreement half of the
       safety check applies (checksum equality = identical applied logs). *)
    (match r.Sim.Engine.agreement_violation with
    | Some _ ->
        obs.notes := "SAFETY: E10 replicated logs diverged" :: !(obs.notes)
    | None -> ());
    (* commit latency per command from trace notes *)
    let submits = Hashtbl.create 16 and chosens = Hashtbl.create 16 in
    List.iter
      (fun e ->
        match e with
        | Sim.Trace.Note { t; text; _ } -> (
            match String.split_on_char ':' text with
            | [ "submit"; id ] -> Hashtbl.replace submits (int_of_string id) t
            | [ "chosen"; id ] ->
                let id = int_of_string id in
                if not (Hashtbl.mem chosens id) then Hashtbl.add chosens id t
            | _ -> ())
        | _ -> ())
      (Sim.Trace.entries r.Sim.Engine.trace);
    let lats =
      Sim.Sorted_tbl.fold ~compare:Int.compare
        (fun id t0 acc ->
          match Hashtbl.find_opt chosens id with
          | Some t1 -> (t1 -. t0) /. delta :: acc
          | None -> Float.infinity :: acc)
        submits []
    in
    (* Split steady-state traffic: phase-2 messages are the per-command
       cost (expect ~2n+1: forward + n 2a + n 2b); the rest is the
       epsilon gossip, the paper's "unavoidable cost of fast recovery",
       reported as a background rate. *)
    let window_lo = start
    and window_hi = start +. (float_of_int per_proc *. gap) in
    let phase2 = ref 0 and gossip = ref 0 in
    Sim.Trace.fold_window
      (fun () e ->
        match e with
        | Sim.Trace.Send { payload; _ } -> (
            match payload.Sim.Trace.kind with
            | "2a" | "2b" | "forward" -> incr phase2
            | _ -> incr gossip)
        | _ -> ())
      () r.Sim.Engine.trace ~lo:window_lo ~hi:window_hi;
    let phase2_per_cmd = float_of_int !phase2 /. float_of_int per_proc in
    let gossip_rate =
      float_of_int !gossip /. ((window_hi -. window_lo) /. delta)
    in
    (lats, phase2_per_cmd, gossip_rate)
  in
  let variants, notes, reg =
    par_collect [ true; false ] (fun obs stable_from_start ->
        run obs ~stable_from_start)
  in
  let (stable_lats, stable_p2, stable_g), (churn_lats, churn_p2, churn_g) =
    match variants with [ a; b ] -> (a, b) | _ -> assert false
  in
  let steady xs = List.filter Float.is_finite xs in
  let rows =
    [
      [
        "stable from start";
        Report.cell_f (Sim.Metrics.mean (steady stable_lats));
        Report.cell_latency (List.fold_left Float.max 0. stable_lats);
        Report.cell_f stable_p2;
        Report.cell_f stable_g;
      ];
      [
        "submits after chaos";
        Report.cell_f (Sim.Metrics.mean (steady churn_lats));
        Report.cell_latency (List.fold_left Float.max 0. churn_lats);
        Report.cell_f churn_p2;
        Report.cell_f churn_g;
      ];
    ]
  in
  Report.make ~id:"E10"
    ~title:"State machine replication: per-command commit cost"
    ~claim:
      "with phase 1 executed in advance for all instances, a stable \
       leader commits each command within 3 message delays (forward, 2a, \
       2b); the epsilon-periodic 1a gossip is the steady-state overhead \
       (Sec. 4, Reducing Message Complexity)"
    ~columns:
      [
        "scenario";
        "mean commit(d)";
        "worst commit(d)";
        "phase-2 msgs/cmd";
        "gossip msgs/delta";
      ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "n=5, 6 commands submitted to a follower 10 delta apart; commit \
            latency = submit to first replica learning the choice; expect \
            ~n^2+n+1 = 31 phase-2 messages per command (2b is broadcast so \
            every replica learns in 3 delays; relaying via the leader \
            would cost a 4th delay for O(n) messages) plus epsilon-period \
            forward retries; replica logs compared by order-sensitive \
            checksum"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* A3: round jumping vs executing all rounds (original B-Consensus)    *)
(* ------------------------------------------------------------------ *)

let a3 ?(speed = Quick) () =
  ignore speed;
  let n = 5 in
  let straggler = n - 1 in
  let partition_lengths = [ 25.; 50.; 100. ] in
  let run obs ~jump ~ts' =
    let tuning =
      {
        (Bconsensus.Modified_b_consensus.default_tuning ~delta) with
        epsilon = delta;
        jump;
      }
    in
    let network =
      Sim.Network.partitioned_until_ts [ List.init (n - 1) Fun.id ]
    in
    let proto =
      Bconsensus.Modified_b_consensus.protocol ~tuning ~n ~delta ~rho:0. ()
    in
    (* probe: how many rounds did the majority group burn through? *)
    let probe =
      Sim.Engine.run
        (* stop at the heal instant: the horizon sits a hair above [ts']
           (validation requires horizon > ts), far below the minimum
           post-heal delivery delay of [0.05 * delta] *)
        (Sim.Scenario.make ~name:"a3-probe" ~n ~ts:ts' ~delta ~seed:seed_base
           ~network ~horizon:(ts' +. 1e-9) ~stop_on_all_decided:false ())
        proto
    in
    let rounds_behind =
      match probe.Sim.Engine.final_states.(0) with
      | Some st -> Bconsensus.Modified_b_consensus.round st
      | None -> -1
    in
    let r =
      Sim.Engine.run
        (Sim.Scenario.make ~name:"a3" ~n ~ts:ts' ~delta ~seed:seed_base
           ~network ~record_trace:true
           ~horizon:(ts' +. (500. *. delta))
           ())
        proto
    in
    record_metrics obs probe;
    record_metrics obs r;
    (match r.Sim.Engine.agreement_violation with
    | Some _ -> obs.notes := "SAFETY: A3 disagreement" :: !(obs.notes)
    | None -> ());
    (* retransmission volume right before the heal: messages per delta *)
    let volume =
      float_of_int
        (Sim.Trace.sends_in_window r.Sim.Engine.trace
           ~lo:(ts' -. (5. *. delta))
           ~hi:ts')
      /. 5.
    in
    ( rounds_behind,
      Measure.worst_latency r ~procs:[ straggler ] ~from_time:ts' ~delta,
      volume )
  in
  let rows, notes, reg =
    par_collect partition_lengths (fun obs len ->
        let ts' = len *. delta in
        let rounds, lat_jump, vol_jump = run obs ~jump:true ~ts' in
        let _, lat_nojump, vol_nojump = run obs ~jump:false ~ts' in
        [
          Printf.sprintf "%.0f delta" len;
          string_of_int rounds;
          Report.cell_latency lat_jump;
          Report.cell_latency lat_nojump;
          Report.cell_f vol_jump;
          Report.cell_f vol_nojump;
        ])
  in
  Report.make ~id:"A3"
    ~title:"Ablation: round jumping vs executing every round"
    ~claim:
      "as described by Pedone et al., a process must execute all previous \
       rounds, so peers must keep retransmitting every round and a \
       straggler's catch-up grows with how far behind it is; \"the \
       algorithm is easily modified to allow a process to jump \
       immediately to a later round\" (Sec. 5)"
    ~columns:
      [
        "straggler isolated for";
        "rounds behind";
        "jump: catch-up(d)";
        "no jump: catch-up(d)";
        "jump: msgs/delta";
        "no jump: msgs/delta";
      ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "n=5; one process partitioned from boot until TS while the \
            majority keeps advancing rounds; catch-up = straggler's \
            decision latency after the heal (small either way, because \
            old-round locks carry the decision); the separating cost is \
            the retransmission volume, which grows with the round count \
            without jumping and is flat with it"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* E11: electing a leader is the same problem                          *)
(* ------------------------------------------------------------------ *)

let e11 ?(speed = Quick) () =
  let rows, notes, reg =
    par_collect (sizes speed) (fun obs n ->
        let k = n - Consensus.Quorum.majority n in
        (* the DEAD processes are the lowest ids: the ones a
           lowest-id-alive elector would trust *)
        let dead = List.init k Fun.id in
        let faults = Sim.Fault.make ~initially_down:dead [] in
        let live = Measure.procs ~n ~except:dead () in
        let tuning = Baselines.Heartbeat_omega.default_tuning ~delta in
        let run ~injections =
          let sc =
            Sim.Scenario.make ~name:"e11" ~n ~ts ~delta ~seed:seed_base
              ~network:Sim.Network.deterministic_after_ts ~faults
              ~horizon:(ts +. (1000. *. delta))
              ()
          in
          let r =
            Sim.Engine.run ~injections sc
              (Baselines.Heartbeat_omega.protocol ~tuning ~n ~delta ())
          in
          record_metrics obs r;
          (* all live processes must settle on the lowest live id *)
          List.iter
            (fun p ->
              match r.Sim.Engine.decision_values.(p) with
              | Some v when v <> k ->
                  obs.notes :=
                    Printf.sprintf
                      "SAFETY: E11 p%d settled on leader %d, expected %d" p v
                      k
                    :: !(obs.notes)
              | _ -> ())
            live;
          Measure.worst_latency r ~procs:live ~from_time:ts ~delta
        in
        (* stale heartbeats of the dead low ids, spaced one trust window
           apart so each buys a full window of misplaced trust *)
        let spacing = tuning.Baselines.Heartbeat_omega.timeout -. (0.1 *. delta) in
        let injections =
          List.concat_map
            (fun i ->
              let v = List.nth dead i in
              let at = ts +. (float_of_int i *. spacing) in
              List.filter_map
                (fun dst ->
                  if List.mem dst dead then None
                  else
                    Some
                      ( at,
                        v,
                        dst,
                        Baselines.Heartbeat_omega.Heartbeat { id = v } ))
                (List.init n Fun.id))
            (List.init k Fun.id)
        in
        let clean = run ~injections:[] in
        let attacked = run ~injections in
        [
          string_of_int n;
          string_of_int k;
          Report.cell_latency clean;
          Report.cell_latency attacked;
        ])
  in
  Report.make ~id:"E11"
    ~title:"Heartbeat Omega: leader election is the same problem"
    ~claim:
      "relying on a leader elector \"simply shifts our problem to that of \
       electing a leader within O(delta) seconds of TS, in the presence \
       of obsolete messages and process restarts\" (Sec. 3): stale \
       heartbeats from dead low-id processes delay a lowest-id-alive \
       elector by one trust window each"
    ~columns:
      [ "n"; "dead low ids"; "no stale hb: settle(d)"; "stale hbs: settle(d)" ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "heartbeat period delta/2, trust window 2.5 delta; settle = all \
            live processes stably trusting the lowest live id; stale \
            heartbeats spaced one window apart cost ~2.5 delta each \
            (linear in the dead count), vs O(delta) without them"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* A4: the SMR progress gate (stable leadership)                       *)
(* ------------------------------------------------------------------ *)

let a4 ?(speed = Quick) () =
  ignore speed;
  let n = 5 in
  let horizon = 3.0 in
  let run obs ~progress_gate =
    let cfg = Dgl.Config.make ~n ~delta () in
    let workloads =
      Array.init n (fun p ->
          if p <> 1 then []
          else
            List.init 5 (fun k ->
                ( 0.1 +. (20. *. delta *. float_of_int k),
                  Smr.Command.make ~id:k (Smr.Command.Add 1) )))
    in
    let sc =
      Sim.Scenario.make ~name:"a4" ~n ~ts:0. ~delta ~seed:seed_base
        ~network:Sim.Network.always_synchronous ~stop_on_all_decided:false
        ~horizon ()
    in
    let r =
      Sim.Engine.run sc (Smr.Multi_paxos.protocol ~progress_gate cfg ~workloads)
    in
    record_metrics obs r;
    (match r.Sim.Engine.agreement_violation with
    | Some _ -> obs.notes := "SAFETY: A4 log divergence" :: !(obs.notes)
    | None -> ());
    let sessions =
      match r.Sim.Engine.final_states.(0) with
      | Some st -> Smr.Multi_paxos.session_number st
      | None -> -1
    in
    let converged =
      Array.for_all (fun v -> v <> None) r.Sim.Engine.decision_values
    in
    ( sessions,
      float_of_int r.Sim.Engine.messages_sent /. (horizon /. delta),
      converged )
  in
  let variants, notes, reg =
    par_collect [ true; false ] (fun obs progress_gate ->
        run obs ~progress_gate)
  in
  let (s_on, m_on, c_on), (s_off, m_off, c_off) =
    match variants with [ a; b ] -> (a, b) | _ -> assert false
  in
  let rows =
    [
      [
        "progress gate on";
        string_of_int s_on;
        Report.cell_f m_on;
        Report.cell_bool c_on;
      ];
      [
        "progress gate off";
        string_of_int s_off;
        Report.cell_f m_off;
        Report.cell_bool c_off;
      ];
    ]
  in
  Report.make ~id:"A4" ~title:"Ablation: the SMR progress gate"
    ~claim:
      "the multi-instance variant matches \"the same behavior as normal \
       Paxos in the stable case\" (Sec. 4) only if session timeouts stand \
       down while commands are being chosen; without the gate, leadership \
       churns every ~4.5 delta forever and every churn re-runs phase 1"
    ~columns:
      [ "variant"; "sessions in 300 delta"; "msgs/delta"; "all converged" ]
    ~rows
    ~notes:
      (drain_notes ~reg
         ~pass_note:
           "n=5, stable from the start, 5 commands then idle; the gate \
            freezes the session number once the system is healthy; both \
            variants stay safe and converge, and total message volume is \
            dominated by the epsilon gossip either way — what the gate \
            buys is stable leadership (no phase-1 interruptions), which \
            is what makes single-round commits the steady state"
         notes)
    ()

(* ------------------------------------------------------------------ *)
(* The headline comparison, as a chartable series                      *)
(* ------------------------------------------------------------------ *)

let headline ?(speed = Quick) () =
  List.concat
    (Measure.par_map
       (fun n ->
      let victims = Adversaries.faulty_minority ~n in
      let faults = Sim.Fault.make ~initially_down:victims [] in
      let live = Measure.procs ~n ~except:victims () in
      let lat r = Measure.worst_latency r ~procs:live ~from_time:ts ~delta in
      (* modified Paxos under its worst admissible adversary *)
      let m =
        let sc =
          Sim.Scenario.make ~name:"headline-m" ~n ~ts ~delta ~seed:seed_base
            ~network:Sim.Network.deterministic_after_ts ~faults ()
        in
        lat
          (Sim.Engine.run
             ~injections:
               (Adversaries.dgl_session1_injections ~n ~from:ts
                  ~spacing:(2. *. delta) ~victims)
             sc
             (Dgl.Modified_paxos.protocol (Dgl.Config.make ~n ~delta ())))
      in
      (* traditional Paxos under aligned obsolete ballots *)
      let t =
        let t0 =
          Adversaries.traditional_first_start ~ts ~theta:(2. *. delta)
            ~stabilize_delay:delta
        in
        let sc =
          Sim.Scenario.make ~name:"headline-t" ~n ~ts ~delta ~seed:seed_base
            ~network:Sim.Network.deterministic_after_ts ~faults ()
        in
        let oracle = Baselines.Leader_election.make ~n ~ts ~delta ~faults () in
        lat
          (Sim.Engine.run
             ~injections:
               (Adversaries.paxos_aligned_injections ~n ~delta ~t0 ~leader:0
                  ~victims)
             sc
             (Baselines.Traditional_paxos.protocol ~n ~delta ~oracle ()))
      in
      (* rotating coordinator with its first coordinators dead *)
      let rc =
        let dead = List.init (List.length victims) Fun.id in
        let faults = Sim.Fault.make ~initially_down:dead [] in
        let sc =
          Sim.Scenario.make ~name:"headline-r" ~n ~ts ~delta ~seed:seed_base
            ~network:Sim.Network.silent_until_ts ~faults ()
        in
        let r =
          Sim.Engine.run sc (Baselines.Rotating_coordinator.protocol ~n ~delta ())
        in
        Measure.worst_latency r
          ~procs:(Measure.procs ~n ~except:dead ())
          ~from_time:ts ~delta
      in
      [
        (Printf.sprintf "n=%-2d modified Paxos" n, m);
        (Printf.sprintf "n=%-2d traditional Paxos" n, t);
        (Printf.sprintf "n=%-2d rotating coord." n, rc);
      ])
       (sizes speed))

(* ------------------------------------------------------------------ *)

let table =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("a1", a1);
    ("a2", a2);
    ("a3", a3);
    ("a4", a4);
  ]

let by_id id = List.assoc_opt (String.lowercase_ascii id) table

let ids = List.map fst table

(* The whole suite is itself a sweep: experiments fan out alongside their
   own rows (nested [par_map] is deadlock-free), and results come back
   in table order. *)
let all ?(speed = Quick) () =
  Measure.par_map
    (fun ((_, f) : _ * (?speed:speed -> unit -> Report.table)) ->
      f ~speed ())
    table

(* ------------------------------------------------------------------ *)
(* Traced replays: one representative run per experiment               *)
(* ------------------------------------------------------------------ *)

type replay = {
  replay_id : string;
  scenario : Sim.Scenario.t;
  trace : Sim.Trace.t;
  metrics : Sim.Registry.t;
  proposals : int array option;
  timer_bounds : (float * float) option;
  invariants : Invariants.report;
}

(* Wrap a finished run.  [validity] is off for protocols whose decided
   values are not proposals (SMR log checksums, elected leader ids). *)
let finish ~replay_id ?timer_bounds ~validity (r : _ Sim.Engine.run_result) =
  let proposals =
    if validity then Some r.Sim.Engine.scenario.Sim.Scenario.proposals
    else None
  in
  {
    replay_id;
    scenario = r.Sim.Engine.scenario;
    trace = r.Sim.Engine.trace;
    metrics = r.Sim.Engine.metrics;
    proposals;
    timer_bounds;
    invariants = Invariants.check ?proposals ?timer_bounds r.Sim.Engine.trace;
  }

(* Each replay mirrors the representative single run bench/main.ml times
   for the same experiment id (same sizes, same adversary, same seed),
   with tracing on. *)
let replay id =
  let id = String.lowercase_ascii id in
  let seed = seed_base in
  let mk_mp ?options ~n ~cfg ~network ?faults ?horizon ~injections ~sc_ts ()
      =
    let sc =
      Sim.Scenario.make ~name:("replay-" ^ id) ~n ~ts:sc_ts ~delta ~seed
        ~network ?faults ?horizon ~record_trace:true ()
    in
    let r =
      Sim.Engine.run ~injections sc (Dgl.Modified_paxos.protocol ?options cfg)
    in
    finish ~replay_id:id
      ~timer_bounds:(delta, cfg.Dgl.Config.sigma)
      ~validity:true r
  in
  match id with
  | "e1" ->
      let n = 9 in
      let victims = Adversaries.faulty_minority ~n in
      Some
        (mk_mp ~n
           ~cfg:(Dgl.Config.make ~n ~delta ())
           ~network:Sim.Network.deterministic_after_ts
           ~faults:(Sim.Fault.make ~initially_down:victims [])
           ~injections:
             (Adversaries.dgl_session1_injections ~n ~from:ts
                ~spacing:(2. *. delta) ~victims)
           ~sc_ts:ts ())
  | "e2" ->
      let n = 9 in
      let victims = Adversaries.faulty_minority ~n in
      let faults = Sim.Fault.make ~initially_down:victims [] in
      let t0 =
        Adversaries.traditional_first_start ~ts ~theta:(2. *. delta)
          ~stabilize_delay:delta
      in
      let sc =
        Sim.Scenario.make ~name:"replay-e2" ~n ~ts ~delta ~seed
          ~network:Sim.Network.deterministic_after_ts ~faults
          ~record_trace:true ()
      in
      let oracle = Baselines.Leader_election.make ~n ~ts ~delta ~faults () in
      Some
        (finish ~replay_id:id ~validity:true
           (Sim.Engine.run
              ~injections:
                (Adversaries.paxos_aligned_injections ~n ~delta ~t0 ~leader:0
                   ~victims)
              sc
              (Baselines.Traditional_paxos.protocol ~n ~delta ~oracle ())))
  | "e3" ->
      let n = 9 in
      let dead = List.init (Consensus.Quorum.majority n - 1) Fun.id in
      let sc =
        Sim.Scenario.make ~name:"replay-e3" ~n ~ts ~delta ~seed
          ~network:Sim.Network.silent_until_ts
          ~faults:(Sim.Fault.make ~initially_down:dead [])
          ~record_trace:true ()
      in
      Some
        (finish ~replay_id:id ~validity:true
           (Sim.Engine.run sc
              (Baselines.Rotating_coordinator.protocol ~n ~delta ())))
  | "e4" ->
      let n = 5 in
      Some
        (mk_mp ~n
           ~cfg:(Dgl.Config.make ~n ~delta ())
           ~network:(Sim.Network.eventually_synchronous ())
           ~faults:
             (Sim.Fault.crash_then_restart ~crash_at:(ts /. 2.)
                ~restart_at:(ts +. (20. *. delta))
                2)
           ~injections:[] ~sc_ts:ts ())
  | "e5" ->
      let n = 9 in
      let victims = Adversaries.faulty_minority ~n in
      let sc =
        Sim.Scenario.make ~name:"replay-e5" ~n ~ts ~delta ~seed
          ~network:Sim.Network.silent_until_ts
          ~faults:(Sim.Fault.make ~initially_down:victims [])
          ~record_trace:true ()
      in
      Some
        (finish ~replay_id:id ~validity:true
           (Sim.Engine.run sc
              (Bconsensus.Modified_b_consensus.protocol ~n ~delta ~rho:0. ())))
  | "e6" ->
      let n = 5 in
      Some
        (mk_mp ~n
           ~cfg:(Dgl.Config.make ~n ~delta ~epsilon:delta ())
           ~network:Sim.Network.silent_until_ts ~injections:[] ~sc_ts:ts ())
  | "e7" ->
      let n = 5 in
      Some
        (mk_mp ~n
           ~options:{ Dgl.Modified_paxos.default_options with prestart = true }
           ~cfg:(Dgl.Config.make ~n ~delta ())
           ~network:Sim.Network.deterministic_after_ts ~injections:[]
           ~sc_ts:0. ())
  | "e8" ->
      let n = 5 in
      Some
        (mk_mp ~n
           ~cfg:(Dgl.Config.make ~n ~delta ~sigma:(8. *. delta) ())
           ~network:Sim.Network.silent_until_ts ~injections:[] ~sc_ts:ts ())
  | "e9" ->
      let n = 5 in
      let cfg = Dgl.Config.make ~n ~delta ~rho:0.05 () in
      let sc =
        Sim.Scenario.make ~name:"replay-e9" ~n ~ts ~delta ~rho:0.05 ~seed
          ~network:Sim.Network.silent_until_ts ~record_trace:true ()
      in
      Some
        (finish ~replay_id:id
           ~timer_bounds:(delta, cfg.Dgl.Config.sigma)
           ~validity:true
           (Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg)))
  | "a1" ->
      let n = 9 in
      let victims = Adversaries.faulty_minority ~n in
      Some
        (mk_mp ~n
           ~options:
             { Dgl.Modified_paxos.default_options with session_gate = false }
           ~cfg:(Dgl.Config.make ~n ~delta ())
           ~network:Sim.Network.deterministic_after_ts
           ~faults:(Sim.Fault.make ~initially_down:victims [])
           ~injections:
             (Adversaries.dgl_high_session_injections ~n ~from:ts
                ~spacing:(3. *. delta) ~victims)
           ~sc_ts:ts ())
  | "a2" ->
      let n = 9 in
      let tuning =
        {
          (Bconsensus.Modified_b_consensus.default_tuning ~delta) with
          hold_back = 0.5 *. delta;
        }
      in
      let sc =
        Sim.Scenario.make ~name:"replay-a2" ~n ~ts ~delta ~seed
          ~network:(Sim.Network.eventually_synchronous ())
          ~horizon:(ts +. (500. *. delta))
          ~record_trace:true ()
      in
      Some
        (finish ~replay_id:id ~validity:true
           (Sim.Engine.run sc
              (Bconsensus.Modified_b_consensus.protocol ~tuning ~n ~delta
                 ~rho:0. ())))
  | "e10" ->
      let n = 5 in
      let cfg = Dgl.Config.make ~n ~delta () in
      let workloads =
        Array.init n (fun p ->
            if p <> 1 then []
            else
              List.init 4 (fun k ->
                  ( 0.2 +. (10. *. delta *. float_of_int k),
                    Smr.Command.make ~id:k (Smr.Command.Add 1) )))
      in
      let sc =
        Sim.Scenario.make ~name:"replay-e10" ~n ~ts:0. ~delta ~seed
          ~network:Sim.Network.deterministic_after_ts ~horizon:1.0
          ~record_trace:true ()
      in
      Some
        (finish ~replay_id:id ~validity:false
           (Sim.Engine.run sc (Smr.Multi_paxos.protocol cfg ~workloads)))
  | "a3" ->
      let n = 5 in
      let tuning =
        {
          (Bconsensus.Modified_b_consensus.default_tuning ~delta) with
          epsilon = delta;
          jump = false;
        }
      in
      let sc =
        Sim.Scenario.make ~name:"replay-a3" ~n ~ts:(25. *. delta) ~delta
          ~seed
          ~network:
            (Sim.Network.partitioned_until_ts [ List.init (n - 1) Fun.id ])
          ~horizon:((25. *. delta) +. 2.)
          ~record_trace:true ()
      in
      Some
        (finish ~replay_id:id ~validity:true
           (Sim.Engine.run sc
              (Bconsensus.Modified_b_consensus.protocol ~tuning ~n ~delta
                 ~rho:0. ())))
  | "e11" ->
      let n = 9 in
      let dead = List.init (n - Consensus.Quorum.majority n) Fun.id in
      let sc =
        Sim.Scenario.make ~name:"replay-e11" ~n ~ts ~delta ~seed
          ~network:Sim.Network.deterministic_after_ts
          ~faults:(Sim.Fault.make ~initially_down:dead [])
          ~horizon:(ts +. 1.0) ~record_trace:true ()
      in
      Some
        (finish ~replay_id:id ~validity:false
           (Sim.Engine.run sc
              (Baselines.Heartbeat_omega.protocol ~n ~delta ())))
  | "a4" ->
      let n = 5 in
      let cfg = Dgl.Config.make ~n ~delta () in
      let workloads =
        Array.init n (fun p ->
            if p <> 1 then []
            else [ (0.1, Smr.Command.make ~id:0 (Smr.Command.Add 1)) ])
      in
      let sc =
        Sim.Scenario.make ~name:"replay-a4" ~n ~ts:0. ~delta ~seed
          ~network:Sim.Network.always_synchronous ~stop_on_all_decided:false
          ~horizon:1.0 ~record_trace:true ()
      in
      Some
        (finish ~replay_id:id ~validity:false
           (Sim.Engine.run sc
              (Smr.Multi_paxos.protocol ~progress_gate:false cfg ~workloads)))
  | _ -> None
