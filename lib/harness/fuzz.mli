(** Randomized fault-injection fuzzing with counterexample shrinking.

    A campaign draws admissible {!Fuzz_scenario.t} values from a seeded
    generator, runs each against its protocol with tracing on, and
    checks the resulting trace with {!Invariants} plus a liveness
    deadline derived from the paper's bounds.  Every violating scenario
    is delta-debugged down to a minimal deterministic counterexample
    suitable for the regression corpus in [test/corpus/].

    Determinism: scenario [i] of a campaign is a pure function of
    [(seed, i)] and shrinking re-runs are themselves deterministic, so a
    campaign's {!summary} is identical whatever the
    {!Measure.domain_count} it fans out over. *)

(** {2 Running and checking one scenario} *)

(** The checked result of one run.  [violations] lists the trace
    invariant violations (agreement, validity, causality, ...) followed
    by any {!liveness} violation; a scenario "fails" when this list is
    non-empty. *)
type outcome = {
  violations : Invariants.violation list;
  decided : int;  (** processes that decided *)
  events : int;  (** engine events processed *)
  msgs_sent : int;
  msgs_delivered : int;
  msgs_dropped : int;
}

(** Real-time decision budget for processes the paper's analysis covers,
    measured from [max ts (last restart)]: a deliberately loose multiple
    of the protocol's decision bound (for traditional Paxos it grows
    with the injection count and [n], matching the [O(N delta)] negative
    result).  A process alive at the horizon whose budget has elapsed
    must have decided; the generator sizes horizons so this deadline is
    always testable. *)
val liveness_budget : Fuzz_scenario.t -> float

(** [run_one s] executes [s] (compiling its injections for its protocol)
    and checks it.  The liveness check covers processes alive at the
    horizon whose deadline [max ts (last restart) + budget] falls at or
    before the horizon; for the round-based baselines it is restricted
    to never-faulty processes (the paper bounds restart recovery only
    for the modified algorithms).  Violations of it carry
    [check = "liveness"].

    Raises [Invalid_argument] when [s] fails {!Fuzz_scenario.validate}. *)
val run_one : Fuzz_scenario.t -> outcome

(** {2 Generation} *)

(** Protocols a default campaign draws from: every implementation except
    [Ungated_paxos], which is broken by design (the A1 ablation) and
    only fuzzed when targeted explicitly. *)
val default_protocols : Fuzz_scenario.protocol list

(** [generate ~seed ~index ?protocol ()] draws scenario [index] of
    campaign [seed] — a pure function of its arguments.  The scenarios
    are admissible by construction (crashes only before [ts], at most
    [ceil n/2 - 1] ever-faulty processes, feasible [rho], obsolete
    injections only where the model permits them: high sessions only
    against [Ungated_paxos]) and always pass {!Fuzz_scenario.validate}. *)
val generate :
  ?protocol:Fuzz_scenario.protocol ->
  seed:int64 ->
  index:int ->
  unit ->
  Fuzz_scenario.t

(** {2 Shrinking} *)

type shrink_result = {
  shrunk : Fuzz_scenario.t;
  steps : int;  (** accepted shrink steps *)
  tries : int;  (** candidate scenarios executed *)
}

(** [shrink s ~check] greedily minimizes {!Fuzz_scenario.size}: it
    tries removing injections (in halving chunks, then singly), fault
    events, initially-down entries, network structure
    ({!Sim.Network_spec.shrink}) and clock drift, accepting a candidate
    iff it still validates and {!run_one} still reports a violation of
    [check].  The result never has a larger size than [s], and equal
    inputs give equal results.  [max_tries] (default [500]) bounds the
    candidate executions. *)
val shrink :
  ?max_tries:int -> Fuzz_scenario.t -> check:string -> shrink_result

(** {2 Campaigns} *)

type counterexample = {
  index : int;  (** campaign index that produced it *)
  check : string;  (** violated invariant *)
  detail : string;  (** from the original (unshrunk) failure *)
  scenario : Fuzz_scenario.t;  (** shrunk *)
  original_size : int;
  shrunk_size : int;
  shrink_tries : int;
}

type summary = {
  seed : int64;
  budget : int;
  protocol : Fuzz_scenario.protocol option;  (** [None] = default mix *)
  runs : int;
  failures : int;  (** runs with at least one violation *)
  by_check : (string * int) list;  (** failing runs per check, sorted *)
  counterexamples : counterexample list;  (** by campaign index *)
  total_events : int;
  total_msgs : int;
  total_decided : int;
  total_shrink_tries : int;
}

(** [campaign ~budget ~seed ()] generates and checks scenarios
    [0 .. budget-1], shrinking every failure, fanned out with
    {!Measure.par_map}.  The summary is a pure function of
    [(budget, seed, protocol)] — identical at any domain count. *)
val campaign :
  ?protocol:Fuzz_scenario.protocol ->
  budget:int ->
  seed:int64 ->
  unit ->
  summary

(** Render a summary (no wall-clock content; byte-stable). *)
val pp_summary : Format.formatter -> summary -> unit

(** Fold a campaign's counters into a metrics registry under
    [fuzz_runs], [fuzz_failures], [fuzz_counterexamples],
    [fuzz_shrink_tries], [fuzz_events], [fuzz_msgs]. *)
val register_metrics : Sim.Registry.t -> summary -> unit

(** {2 Corpus files}

    A corpus entry is the JSON object
    [{format = "consensus-fuzz-corpus/1"; check; detail; scenario}];
    see [test/corpus/README.md]. *)

type corpus_entry = {
  format : string;
  check : string;  (** invariant the scenario must violate on replay *)
  detail : string;  (** diagnostic from the run that produced it *)
  scenario : Fuzz_scenario.t;
}

val corpus_format : string

val entry_of_counterexample : counterexample -> corpus_entry

val entry_to_json : corpus_entry -> Sim.Json.t

val entry_of_json : Sim.Json.t -> (corpus_entry, string) result

(** Stable corpus filename: [<check>-<scenario name>.json]. *)
val entry_filename : corpus_entry -> string

(** Write the entry into [dir] (created, with parents, if missing)
    under {!entry_filename}; returns the path. *)
val save_entry : dir:string -> corpus_entry -> string

val load_entry : string -> (corpus_entry, string) result

(** Re-execute the entry's scenario and check that the recorded
    invariant is violated again.  [Ok outcome] when it reproduces;
    [Error (what_we_saw, outcome)] when the run no longer violates
    [entry.check]. *)
val replay : corpus_entry -> (outcome, string * outcome) result
