(** Wire messages of the rotating-coordinator round-based algorithm. *)

open Consensus

type t =
  | Estimate of { round : int; est : Types.value; ts : int }
      (** broadcast on round entry (and re-sent every epsilon): the
          process's current estimate and the round that locked it; also
          serves as the round-presence announcement used by the
          majority gate *)
  | Propose of { round : int; value : Types.value }
      (** the round's coordinator proposes the max-ts estimate of a
          majority *)
  | Ack of { round : int; value : Types.value }
      (** broadcast after adopting a proposal; a majority of acks for one
          round decides *)
  | Decision of { value : Types.value }

(** Round carried by the message ([None] for [Decision]). *)
val round_of : t -> int option

(** One-line human-readable description. *)
val info : t -> string

(** Structured trace payload: kind ["est"]/["propose"]/["ack"]/
    ["decision"] with round and value. *)
val payload : t -> Sim.Trace.payload
