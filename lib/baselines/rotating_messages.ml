open Consensus

type t =
  | Estimate of { round : int; est : Types.value; ts : int }
  | Propose of { round : int; value : Types.value }
  | Ack of { round : int; value : Types.value }
  | Decision of { value : Types.value }

let round_of = function
  | Estimate { round; _ } | Propose { round; _ } | Ack { round; _ } ->
      Some round
  | Decision _ -> None

let info = function
  | Estimate { round; est; ts } -> Printf.sprintf "est(r%d,v%d,ts%d)" round est ts
  | Propose { round; value } -> Printf.sprintf "propose(r%d,v%d)" round value
  | Ack { round; value } -> Printf.sprintf "ack(r%d,v%d)" round value
  | Decision { value } -> Printf.sprintf "decision(v%d)" value

let payload = function
  | Estimate { round; est; ts } ->
      Sim.Trace.payload ~round ~value:est
        ~detail:(Printf.sprintf "ts%d" ts)
        "est"
  | Propose { round; value } -> Sim.Trace.payload ~round ~value "propose"
  | Ack { round; value } -> Sim.Trace.payload ~round ~value "ack"
  | Decision { value } -> Sim.Trace.payload ~value "decision"
