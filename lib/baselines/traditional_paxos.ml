open Consensus
module Engine = Sim.Engine
module Imap = Map.Make (Int)

type tuning = { theta : float; broadcast_decision : bool }

let default_tuning ~delta = { theta = 2. *. delta; broadcast_decision = true }

let tick_tag = 0

type config = {
  n : int;
  tuning : tuning;
  oracle : Leader_election.t;
}

type state = {
  cfg : config;
  mbal : Ballot.t;
  vote : Vote.t;
  proposal : Types.value;
  max_seen : Ballot.t;  (* highest ballot observed in any message *)
  p1b_from : Quorum.t;
  p1b_votes : Vote.t list;
  sent_2a : bool;
  p2b : (Quorum.t * Types.value) Imap.t;
  decided : Types.value option;
  last_progress_local : float;
      (* local time of the last step forward on our own ballot; the
         leader re-runs Start Phase 1 when this goes stale *)
}

let mbal st = st.mbal

let max_seen st = st.max_seen

let decided st = st.decided

let observe st b = { st with max_seen = Stdlib.max st.max_seen b }

let progress ctx st = { st with last_progress_local = Engine.local_time ctx }

let is_leader ctx st =
  Leader_election.leader_at st.cfg.oracle ~now:(Engine.oracle_time ctx)
  = Engine.self ctx

(* Start Phase 1: pick the smallest self-owned ballot above everything
   seen so far and broadcast a 1a. *)
let start_phase1 ctx st =
  let self = Engine.self ctx in
  let base = Stdlib.max st.mbal st.max_seen in
  let b = Ballot.succ_owned ~n:st.cfg.n ~proc:self base in
  let st =
    {
      st with
      mbal = b;
      max_seen = Stdlib.max st.max_seen b;
      p1b_from = Quorum.create ~n:st.cfg.n;
      p1b_votes = [];
      sent_2a = false;
    }
  in
  Engine.broadcast ctx (Paxos_messages.P1a { mbal = b });
  progress ctx st

let record_decision ctx st v =
  Engine.decide ctx v;
  match st.decided with
  | Some _ -> st
  | None ->
      if st.cfg.tuning.broadcast_decision then
        Engine.broadcast ctx (Paxos_messages.Decision { value = v });
      { st with decided = Some v }

let handle_1a ctx st b =
  let st = observe st b in
  if b >= st.mbal then begin
    let st =
      if b > st.mbal then
        {
          st with
          mbal = b;
          p1b_from = Quorum.create ~n:st.cfg.n;
          p1b_votes = [];
          sent_2a = false;
        }
      else st
    in
    Engine.send ctx
      ~dst:(Ballot.owner ~n:st.cfg.n b)
      (Paxos_messages.P1b { mbal = b; vote = st.vote });
    st
  end
  else begin
    (* Reject: tell the owner of the stale ballot how far we are. *)
    Engine.send ctx
      ~dst:(Ballot.owner ~n:st.cfg.n b)
      (Paxos_messages.Rejected { mbal = st.mbal });
    st
  end

let handle_1b ctx st ~src b vote =
  let st = observe st b in
  if
    b = st.mbal
    && Ballot.owner ~n:st.cfg.n b = Engine.self ctx
    && (not st.sent_2a)
    && not (Quorum.mem st.p1b_from src)
  then begin
    let st =
      {
        st with
        p1b_from = Quorum.add st.p1b_from src;
        p1b_votes = vote :: st.p1b_votes;
      }
    in
    let st = progress ctx st in
    if Quorum.reached st.p1b_from then begin
      let value = Vote.choose ~fallback:st.proposal st.p1b_votes in
      Engine.broadcast ctx (Paxos_messages.P2a { mbal = b; value });
      { st with sent_2a = true }
    end
    else st
  end
  else st

let handle_2a ctx st b value =
  let st = observe st b in
  if b >= st.mbal then begin
    let st = { st with mbal = b; vote = Vote.make ~vbal:b ~vval:value } in
    Engine.broadcast ctx (Paxos_messages.P2b { mbal = b; value });
    st
  end
  else begin
    Engine.send ctx
      ~dst:(Ballot.owner ~n:st.cfg.n b)
      (Paxos_messages.Rejected { mbal = st.mbal });
    st
  end

let handle_2b ctx st ~src b value =
  let st = observe st b in
  let who, v =
    match Imap.find_opt b st.p2b with
    | Some (q, v) -> (q, v)
    | None -> (Quorum.create ~n:st.cfg.n, value)
  in
  if v <> value then st
  else begin
    let who = Quorum.add who src in
    let st = { st with p2b = Imap.add b (who, v) st.p2b } in
    let st =
      if b = st.mbal && Ballot.owner ~n:st.cfg.n b = Engine.self ctx then
        progress ctx st
      else st
    in
    if Quorum.reached who then record_decision ctx st v else st
  end

let handle_rejected ctx st b =
  let st = observe st b in
  (* A rejection means somebody is ahead: if we are the leader, retry
     immediately with a higher ballot (the "within 2 delta ... can then
     execute the Start Phase 1 action with a larger value" path). *)
  if is_leader ctx st && b > st.mbal && st.decided = None then
    start_phase1 ctx st
  else st

let on_tick ctx st =
  let st =
    match st.decided with
    | Some v ->
        (* "Once a process has decided, it would ... simply respond to
           every message by announcing the value it has decided upon".
           Re-announcing every theta is the periodic form of that rule;
           without it a process restarting after everyone has decided
           hears nothing, since only the (now satisfied) leader ever
           initiates traffic. *)
        if st.cfg.tuning.broadcast_decision then
          Engine.broadcast ctx (Paxos_messages.Decision { value = v });
        st
    | None ->
        if is_leader ctx st then begin
          let lnow = Engine.local_time ctx in
          let stale =
            lnow -. st.last_progress_local >= st.cfg.tuning.theta
          in
          let leading = Ballot.owner ~n:st.cfg.n st.mbal = Engine.self ctx in
          if (not leading) || stale then start_phase1 ctx st else st
        end
        else st
  in
  Engine.set_timer ctx ~local_delay:st.cfg.tuning.theta ~tag:tick_tag;
  st

let initial_state ctx cfg =
  let self = Engine.self ctx in
  {
    cfg;
    mbal = Ballot.initial ~proc:self;
    vote = Vote.none;
    proposal = Engine.proposal ctx;
    max_seen = Ballot.initial ~proc:self;
    p1b_from = Quorum.create ~n:cfg.n;
    p1b_votes = [];
    sent_2a = false;
    p2b = Imap.empty;
    decided = None;
    last_progress_local = Engine.local_time ctx;
  }

let with_persist f ctx st =
  let st' = f ctx st in
  Engine.persist ctx st';
  st'

let protocol ?tuning ~n ~delta ~oracle () =
  let tuning =
    match tuning with Some t -> t | None -> default_tuning ~delta
  in
  if tuning.theta <= 0. then
    invalid_arg "Traditional_paxos.protocol: theta must be positive";
  let cfg = { n; tuning; oracle } in
  let boot ctx =
    let st = initial_state ctx cfg in
    Engine.set_timer ctx ~local_delay:tuning.theta ~tag:tick_tag;
    Engine.persist ctx st;
    st
  in
  {
    Engine.name = "traditional-paxos";
    on_boot = boot;
    on_message =
      (fun ctx st ~src msg ->
        with_persist
          (fun ctx st ->
            match msg with
            | Paxos_messages.P1a { mbal } -> handle_1a ctx st mbal
            | Paxos_messages.P1b { mbal; vote } ->
                handle_1b ctx st ~src mbal vote
            | Paxos_messages.P2a { mbal; value } -> handle_2a ctx st mbal value
            | Paxos_messages.P2b { mbal; value } ->
                handle_2b ctx st ~src mbal value
            | Paxos_messages.Rejected { mbal } -> handle_rejected ctx st mbal
            | Paxos_messages.Decision { value } -> record_decision ctx st value)
          ctx st);
    on_timer =
      (fun ctx st ~tag:_ -> with_persist (fun ctx st -> on_tick ctx st) ctx st);
    on_restart =
      (fun ctx ~persisted ->
        match persisted with
        | None -> boot ctx
        | Some st ->
            let st =
              { st with last_progress_local = Engine.local_time ctx }
            in
            Engine.set_timer ctx ~local_delay:tuning.theta ~tag:tick_tag;
            Engine.persist ctx st;
            st);
    msg_payload = Paxos_messages.payload;
  }
