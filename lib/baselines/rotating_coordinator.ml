open Consensus
module Engine = Sim.Engine
module Imap = Map.Make (Int)

type tuning = {
  round_timeout : float;
  epsilon : float;
  broadcast_decision : bool;
}

let default_tuning ~delta =
  {
    round_timeout = 4. *. delta;
    epsilon = delta /. 4.;
    broadcast_decision = true;
  }

let resend_tag = -1

let coordinator ~n r = r mod n

type config = { n : int; tuning : tuning }

type state = {
  cfg : config;
  round : int;
  est : Types.value;
  ts : int;  (* round that locked [est]; -1 initially *)
  presence : Quorum.t;  (* senders of current-round messages *)
  round_expired : bool;
  (* coordinator bookkeeping for the current round *)
  est_from : Quorum.t;
  est_best : Types.value * int;  (* max-ts estimate seen, with its ts *)
  proposed : bool;
  acked : bool;  (* did we already ack a proposal this round *)
  acks : (Quorum.t * Types.value) Imap.t;  (* per round *)
  decided : Types.value option;
}

let round st = st.round

let estimate st = st.est

let estimate_ts st = st.ts

let decided st = st.decided

let broadcast_estimate ctx st =
  Engine.broadcast ctx
    (Rotating_messages.Estimate { round = st.round; est = st.est; ts = st.ts })

let enter_round ctx st r =
  assert (r > st.round);
  let n = st.cfg.n in
  let st =
    {
      st with
      round = r;
      presence = Quorum.create ~n;
      round_expired = false;
      est_from = Quorum.create ~n;
      est_best = (st.est, st.ts);
      proposed = false;
      acked = false;
    }
  in
  Engine.set_timer ctx ~local_delay:st.cfg.tuning.round_timeout ~tag:r;
  broadcast_estimate ctx st;
  st

let maybe_advance ctx st =
  if st.round_expired && Quorum.reached st.presence then
    enter_round ctx st (st.round + 1)
  else st

let record_decision ctx st v =
  Engine.decide ctx v;
  match st.decided with
  | Some _ -> st
  | None ->
      if st.cfg.tuning.broadcast_decision then
        Engine.broadcast ctx (Rotating_messages.Decision { value = v });
      { st with decided = Some v }

(* Coordinator side: a majority of estimates locks the proposal to the
   highest-timestamp one (the Chandra-Toueg safety rule). *)
let handle_estimate ctx st ~src est ts =
  if coordinator ~n:st.cfg.n st.round <> Engine.self ctx || st.proposed then st
  else if Quorum.mem st.est_from src then st
  else begin
    let est_from = Quorum.add st.est_from src in
    let est_best = if ts > snd st.est_best then (est, ts) else st.est_best in
    let st = { st with est_from; est_best } in
    if Quorum.reached est_from then begin
      let value = fst st.est_best in
      Engine.broadcast ctx
        (Rotating_messages.Propose { round = st.round; value });
      { st with proposed = true }
    end
    else st
  end

let handle_propose ctx st value =
  if st.acked then st
  else begin
    let st = { st with est = value; ts = st.round; acked = true } in
    Engine.broadcast ctx (Rotating_messages.Ack { round = st.round; value });
    st
  end

let handle_ack ctx st ~src r value =
  let who, v =
    match Imap.find_opt r st.acks with
    | Some (q, v) -> (q, v)
    | None -> (Quorum.create ~n:st.cfg.n, value)
  in
  if v <> value then st
  else begin
    let who = Quorum.add who src in
    let st = { st with acks = Imap.add r (who, v) st.acks } in
    if Quorum.reached who then record_decision ctx st v else st
  end

let on_message_impl ctx st ~src msg =
  match msg with
  | Rotating_messages.Decision { value } -> record_decision ctx st value
  | Rotating_messages.Estimate _ | Rotating_messages.Propose _
  | Rotating_messages.Ack _ -> (
      match Rotating_messages.round_of msg with
      | None -> st
      | Some r ->
          if st.decided <> None then begin
            (* Help laggards: answer protocol traffic with the decision. *)
            (match st.decided with
            | Some v ->
                Engine.send ctx ~dst:src
                  (Rotating_messages.Decision { value = v })
            | None -> ());
            st
          end
          else if r < st.round then
            (* Stale-round acks may still complete a majority. *)
            match msg with
            | Rotating_messages.Ack { round; value } ->
                handle_ack ctx st ~src round value
            | Rotating_messages.Estimate _ | Rotating_messages.Propose _
            | Rotating_messages.Decision _ ->
                st
          else begin
            (* Jump to a higher round on receipt of one of its messages
               (allowed: only *spontaneous* advancement is gated). *)
            let st = if r > st.round then enter_round ctx st r else st in
            let st = { st with presence = Quorum.add st.presence src } in
            let st =
              match msg with
              | Rotating_messages.Estimate { est; ts; _ } ->
                  handle_estimate ctx st ~src est ts
              | Rotating_messages.Propose { value; _ } ->
                  handle_propose ctx st value
              | Rotating_messages.Ack { round; value } ->
                  handle_ack ctx st ~src round value
              | Rotating_messages.Decision _ -> st
            in
            maybe_advance ctx st
          end)

let on_timer_impl ctx st ~tag =
  if tag = resend_tag then begin
    if st.decided = None then broadcast_estimate ctx st;
    Engine.set_timer ctx ~local_delay:st.cfg.tuning.epsilon ~tag:resend_tag;
    st
  end
  else if tag = st.round && not st.round_expired then
    maybe_advance ctx { st with round_expired = true }
  else st

let initial_state ctx cfg =
  {
    cfg;
    round = 0;
    est = Engine.proposal ctx;
    ts = -1;
    presence = Quorum.create ~n:cfg.n;
    round_expired = false;
    est_from = Quorum.create ~n:cfg.n;
    est_best = (Engine.proposal ctx, -1);
    proposed = false;
    acked = false;
    acks = Imap.empty;
    decided = None;
  }

let with_persist f ctx st =
  let st' = f ctx st in
  Engine.persist ctx st';
  st'

let protocol ?tuning ~n ~delta () =
  let tuning =
    match tuning with Some t -> t | None -> default_tuning ~delta
  in
  if tuning.round_timeout <= 0. || tuning.epsilon <= 0. then
    invalid_arg "Rotating_coordinator.protocol: non-positive timeout";
  let cfg = { n; tuning } in
  let boot ctx =
    let st = initial_state ctx cfg in
    Engine.set_timer ctx ~local_delay:tuning.round_timeout ~tag:0;
    Engine.set_timer ctx ~local_delay:tuning.epsilon ~tag:resend_tag;
    broadcast_estimate ctx st;
    Engine.persist ctx st;
    st
  in
  {
    Engine.name = "rotating-coordinator";
    on_boot = boot;
    on_message =
      (fun ctx st ~src msg ->
        with_persist (fun ctx st -> on_message_impl ctx st ~src msg) ctx st);
    on_timer =
      (fun ctx st ~tag ->
        with_persist (fun ctx st -> on_timer_impl ctx st ~tag) ctx st);
    on_restart =
      (fun ctx ~persisted ->
        match persisted with
        | None -> boot ctx
        | Some st ->
            Engine.set_timer ctx ~local_delay:tuning.round_timeout
              ~tag:st.round;
            Engine.set_timer ctx ~local_delay:tuning.epsilon ~tag:resend_tag;
            Engine.persist ctx st;
            st);
    msg_payload = Rotating_messages.payload;
  }
