(** Wire messages of traditional Paxos (Section 2), including the
    [Rejected] message the modified algorithm removes. *)

open Consensus

type t =
  | P1a of { mbal : Ballot.t }
  | P1b of { mbal : Ballot.t; vote : Vote.t }
  | P2a of { mbal : Ballot.t; value : Types.value }
  | P2b of { mbal : Ballot.t; value : Types.value }
  | Rejected of { mbal : Ballot.t }
      (** carries the rejecting process's (higher) ballot, sent to the
          owner of the rejected message's ballot *)
  | Decision of { value : Types.value }

(** One-line human-readable description. *)
val info : t -> string

(** Structured trace payload (no session field: traditional Paxos has no
    session discipline). *)
val payload : t -> Sim.Trace.payload
