open Consensus
module Engine = Sim.Engine

type tuning = { period : float; timeout : float }

let default_tuning ~delta =
  let period = delta /. 2. in
  { period; timeout = (2. *. delta) +. period }

type msg = Heartbeat of { id : Types.proc_id }

type config = { n : int; tuning : tuning }

type state = {
  cfg : config;
  last_heard : float array;  (* local receipt time of freshest heartbeat *)
  estimate : Types.proc_id option;  (* current heartbeat-backed leader *)
  estimate_since : float;  (* local time the estimate last changed *)
  decided : bool;
}

let tick_tag = 0

let never = Float.neg_infinity

(* Lowest id whose heartbeat is still within the trust window. *)
let backed_leader st ~local_now =
  let rec scan i =
    if i >= st.cfg.n then None
    else if local_now -. st.last_heard.(i) <= st.cfg.tuning.timeout then
      Some i
    else scan (i + 1)
  in
  scan 0

let current_leader st ~local_now =
  match backed_leader st ~local_now with
  | Some id -> id
  | None -> -1

(* Track estimate changes; a decision is the first leader that stays the
   estimate for a full trust window (by then every staler heartbeat the
   process had seen has expired). *)
let refresh ctx st =
  let local_now = Engine.local_time ctx in
  let leader = backed_leader st ~local_now in
  let st =
    if leader <> st.estimate then
      { st with estimate = leader; estimate_since = local_now }
    else st
  in
  match st.estimate with
  | Some id
    when (not st.decided)
         && local_now -. st.estimate_since >= st.cfg.tuning.timeout ->
      Engine.decide ctx id;
      { st with decided = true }
  | _ -> st

let on_message_impl ctx st ~src:_ (Heartbeat { id }) =
  let last_heard = Array.copy st.last_heard in
  last_heard.(id) <- Engine.local_time ctx;
  refresh ctx { st with last_heard }

let on_timer_impl ctx st ~tag:_ =
  Engine.broadcast ctx (Heartbeat { id = Engine.self ctx });
  Engine.set_timer ctx ~local_delay:st.cfg.tuning.period ~tag:tick_tag;
  refresh ctx st

let initial_state ctx cfg =
  {
    cfg;
    last_heard = Array.make cfg.n never;
    estimate = None;
    estimate_since = Engine.local_time ctx;
    decided = false;
  }

let protocol ?tuning ~n ~delta () =
  let tuning =
    match tuning with Some t -> t | None -> default_tuning ~delta
  in
  if tuning.period <= 0. || tuning.timeout <= tuning.period then
    invalid_arg "Heartbeat_omega.protocol: need 0 < period < timeout";
  let cfg = { n; tuning } in
  let boot ctx =
    let st = initial_state ctx cfg in
    Engine.broadcast ctx (Heartbeat { id = Engine.self ctx });
    Engine.set_timer ctx ~local_delay:tuning.period ~tag:tick_tag;
    Engine.persist ctx st;
    st
  in
  {
    Engine.name = "heartbeat-omega";
    on_boot = boot;
    on_message =
      (fun ctx st ~src msg ->
        let st' = on_message_impl ctx st ~src msg in
        Engine.persist ctx st';
        st');
    on_timer =
      (fun ctx st ~tag ->
        let st' = on_timer_impl ctx st ~tag in
        Engine.persist ctx st';
        st');
    on_restart =
      (fun ctx ~persisted ->
        match persisted with
        | None -> boot ctx
        | Some st ->
            Engine.set_timer ctx ~local_delay:tuning.period ~tag:tick_tag;
            Engine.persist ctx st;
            st);
    msg_payload =
      (fun (Heartbeat { id }) ->
        Sim.Trace.payload ~detail:(Printf.sprintf "p%d" id) "hb");
  }
