open Consensus

type t =
  | P1a of { mbal : Ballot.t }
  | P1b of { mbal : Ballot.t; vote : Vote.t }
  | P2a of { mbal : Ballot.t; value : Types.value }
  | P2b of { mbal : Ballot.t; value : Types.value }
  | Rejected of { mbal : Ballot.t }
  | Decision of { value : Types.value }

let info = function
  | P1a { mbal } -> Printf.sprintf "1a(b%d)" mbal
  | P1b { mbal; vote } ->
      Printf.sprintf "1b(b%d,%s)" mbal (Format.asprintf "%a" Vote.pp vote)
  | P2a { mbal; value } -> Printf.sprintf "2a(b%d,v%d)" mbal value
  | P2b { mbal; value } -> Printf.sprintf "2b(b%d,v%d)" mbal value
  | Rejected { mbal } -> Printf.sprintf "rejected(b%d)" mbal
  | Decision { value } -> Printf.sprintf "decision(v%d)" value

let payload = function
  | P1a { mbal } -> Sim.Trace.payload ~ballot:mbal ~phase:1 "1a"
  | P1b { mbal; vote } ->
      Sim.Trace.payload ~ballot:mbal ~phase:1
        ~detail:(Format.asprintf "%a" Vote.pp vote)
        "1b"
  | P2a { mbal; value } -> Sim.Trace.payload ~ballot:mbal ~phase:2 ~value "2a"
  | P2b { mbal; value } -> Sim.Trace.payload ~ballot:mbal ~phase:2 ~value "2b"
  | Rejected { mbal } -> Sim.Trace.payload ~ballot:mbal "rejected"
  | Decision { value } -> Sim.Trace.payload ~value "decision"
