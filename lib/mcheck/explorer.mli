(** Bounded exploration of the {!Model} state space — {!Explore.run}
    instantiated with {!Model.fingerprint} / {!Model.key}. *)

type outcome = {
  states : int;  (** stored states (the visited-set size) *)
  transitions : int;  (** generated edges of expanded levels *)
  complete : bool;  (** false if a depth/state bound stopped the search *)
  violation : (string * Model.state) option;
      (** first property violation found: (property name, witness) *)
  collisions : int option;
      (** [Some n] in [exact_keys] mode (see {!Explore.run}) *)
  table_words : int;  (** visited-table footprint in heap words *)
}

(** [run cfg ~max_states ~properties] explores breadth-first from
    {!Model.initial}.  [properties] are (name, predicate) pairs checked
    on every discovered state — before either bound applies (see
    {!Explore.run} for the full bound semantics); the search stops at
    the first violation.  [domains] parallelizes frontier expansion
    with byte-identical results at any value; [exact_keys] re-runs the
    visited check on structural keys and counts fingerprint
    collisions. *)
val run :
  ?max_depth:int ->
  ?domains:int ->
  ?exact_keys:bool ->
  ?registry:Sim.Registry.t ->
  Model.config ->
  max_states:int ->
  properties:(string * (Model.state -> bool)) list ->
  outcome

(** The two standard property sets. *)
val safety_properties :
  Model.config -> (string * (Model.state -> bool)) list

(** Safety plus the step-1 obsolete-ballot invariant (only meaningful
    when [cfg.gate] is on). *)
val all_properties : Model.config -> (string * (Model.state -> bool)) list

val pp_outcome : Format.formatter -> outcome -> unit
