type msg =
  | First of { src : int; round : int; value : int }
  | Report of { src : int; round : int; value : int }
  | Lock of { src : int; round : int; value : int option }

type proc = {
  round : int;
  est : int;
  reported : int option;
  locked : int option option;
  decided : int;
}

(* Tag order, then fields left-to-right: identical to the polymorphic
   order, but monomorphic, so a new constructor is a compile error here
   rather than a silent reorder (lint R6). *)
let compare_msg a b =
  let tag = function First _ -> 0 | Report _ -> 1 | Lock _ -> 2 in
  match (a, b) with
  | ( First { src = s1; round = r1; value = v1 },
      First { src = s2; round = r2; value = v2 } )
  | ( Report { src = s1; round = r1; value = v1 },
      Report { src = s2; round = r2; value = v2 } ) ->
      let c = Int.compare s1 s2 in
      if c <> 0 then c
      else
        let c = Int.compare r1 r2 in
        if c <> 0 then c else Int.compare v1 v2
  | ( Lock { src = s1; round = r1; value = v1 },
      Lock { src = s2; round = r2; value = v2 } ) ->
      let c = Int.compare s1 s2 in
      if c <> 0 then c
      else
        let c = Int.compare r1 r2 in
        if c <> 0 then c else Option.compare Int.compare v1 v2
  | _ -> Int.compare (tag a) (tag b)

module Msgset = Set.Make (struct
  type t = msg

  let compare = compare_msg
end)

type state = { procs : proc array; msgs : Msgset.t }

type mutation = Decide_on_any_some | Lock_on_first_report

type config = {
  n : int;
  proposals : int array;
  max_round : int;
  mutation : mutation option;
}

let initial cfg =
  {
    procs =
      Array.init cfg.n (fun p ->
          {
            round = 0;
            est = cfg.proposals.(p);
            reported = None;
            locked = None;
            decided = -1;
          });
    msgs = Msgset.empty;
  }

let majority n = (n / 2) + 1

(* Canonical sorted-list key (set values are not canonical); the
   exact-mode visited key, mirrored by the fingerprint stream below. *)
let key (st : state) = (Array.to_list st.procs, Msgset.elements st.msgs)

(* Canonical, prefix-decodable word stream: lengths before sections,
   explicit tags before every option/variant payload, messages in
   Msgset (sorted) order. *)
let fold_canonical f acc st =
  let fold_opt f acc = function None -> f acc 0 | Some v -> f (f acc 1) v in
  let acc = f acc (Array.length st.procs) in
  let acc =
    Array.fold_left
      (fun acc p ->
        let acc = f acc p.round in
        let acc = f acc p.est in
        let acc = fold_opt f acc p.reported in
        let acc =
          match p.locked with
          | None -> f acc 0
          | Some None -> f acc 1
          | Some (Some v) -> f (f acc 2) v
        in
        f acc p.decided)
      acc st.procs
  in
  let acc = f acc (Msgset.cardinal st.msgs) in
  Msgset.fold
    (fun m acc ->
      match m with
      | First { src; round; value } -> f (f (f (f acc 0) src) round) value
      | Report { src; round; value } -> f (f (f (f acc 1) src) round) value
      | Lock { src; round; value } ->
          fold_opt f (f (f (f acc 2) src) round) value)
    st.msgs acc

let fingerprint st =
  Fingerprint.finish (fold_canonical Fingerprint.add_int Fingerprint.empty st)

let with_proc st p proc =
  let procs = Array.copy st.procs in
  procs.(p) <- proc;
  { st with procs }

let add_msg st m =
  if Msgset.mem m st.msgs then None
  else Some { st with msgs = Msgset.add m st.msgs }

let procs cfg = List.init cfg.n Fun.id

(* all k-subsets of a list *)
let rec subsets k = function
  | [] -> if k = 0 then [ [] ] else []
  | x :: rest ->
      if k = 0 then [ [] ]
      else List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest

(* 1. Boot / retransmit: broadcast the current estimate into the oracle
   stream. *)
let wabcasts cfg st =
  List.filter_map
    (fun p ->
      let pr = st.procs.(p) in
      add_msg st (First { src = p; round = pr.round; value = pr.est }))
    (procs cfg)

(* 2. Report: the adversary hands p *any* round-r First as "the first
   delivered" — a superset of every oracle behaviour. *)
let reports cfg st =
  List.concat_map
    (fun p ->
      let pr = st.procs.(p) in
      if pr.reported <> None then []
      else
        Msgset.fold
          (fun m acc ->
            match m with
            | First { round; value; _ } when round = pr.round -> (
                let st = with_proc st p { pr with reported = Some value } in
                match
                  add_msg st (Report { src = p; round = pr.round; value })
                with
                | Some st' -> st' :: acc
                | None -> st :: acc)
            | _ -> acc)
          st.msgs [])
    (procs cfg)

(* 3. Lock: the first majority of reports fixes the lock value (all
   majority subsets explored). *)
let locks cfg st =
  (* one scratch table per call, reset per process *)
  let by_sender = Hashtbl.create 8 in
  List.concat_map
    (fun p ->
      let pr = st.procs.(p) in
      if pr.locked <> None then []
      else begin
        Hashtbl.reset by_sender;
        Msgset.iter
          (function
            | Report { src; round; value } when round = pr.round ->
                Hashtbl.replace by_sender src value
            | _ -> ())
          st.msgs;
        let senders = Sim.Sorted_tbl.bindings ~compare:Int.compare by_sender in
        List.filter_map
          (fun subset ->
            let lv =
              match subset with
              | [] -> None
              | (_, v0) :: rest -> (
                  match cfg.mutation with
                  | Some Lock_on_first_report -> Some v0
                  | _ ->
                      if List.for_all (fun (_, v) -> v = v0) rest then Some v0
                      else None)
            in
            let st = with_proc st p { pr with locked = Some lv } in
            match add_msg st (Lock { src = p; round = pr.round; value = lv }) with
            | Some st' -> Some st'
            | None -> Some st)
          (subsets (majority cfg.n) senders)
      end)
    (procs cfg)

(* 4. Finish: a majority of locks ends the round — decide on all-Some,
   adopt any Some, else fall back to the reported (oracle) value. *)
let finishes cfg st =
  (* group lock entries by round once per call, instead of rescanning
     the whole message set once per process; the per-round cons order is
     the same as the per-process fold it replaces *)
  let locks_by_round : (int, (int * int option) list) Hashtbl.t =
    Hashtbl.create 8
  in
  Msgset.iter
    (function
      | Lock { src; round; value } ->
          let prev =
            match Hashtbl.find_opt locks_by_round round with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace locks_by_round round ((src, value) :: prev)
      | _ -> ())
    st.msgs;
  List.concat_map
    (fun p ->
      let pr = st.procs.(p) in
      let lock_entries =
        match Hashtbl.find_opt locks_by_round pr.round with
        | Some l -> l
        | None -> []
      in
      List.filter_map
        (fun subset ->
          let somes = List.filter_map snd subset in
          let all_some =
            match cfg.mutation with
            | Some Decide_on_any_some -> somes <> []
            | Some Lock_on_first_report | None ->
                List.length somes = List.length subset
          in
          let pr' =
            match somes with
            | v :: _ when all_some ->
                {
                  pr with
                  est = v;
                  decided = (if pr.decided < 0 then v else pr.decided);
                }
            | v :: _ -> { pr with est = v }
            | [] -> (
                match pr.reported with
                | Some v -> { pr with est = v }
                | None -> pr)
          in
          let pr' =
            if pr.round + 1 <= cfg.max_round then
              {
                pr' with
                round = pr.round + 1;
                reported = None;
                locked = None;
              }
            else pr'
          in
          if pr' = pr then None else Some (with_proc st p pr'))
        (subsets (majority cfg.n) lock_entries))
    (procs cfg)

(* 5. Jump: receipt of a higher-round message lets p enter that round
   directly. *)
let jumps cfg st =
  (* distinct in-cap rounds are collected once per call (first-encounter
     order, as before) and filtered per process, instead of rescanning
     the message set once per process *)
  let all_rounds =
    Msgset.fold
      (fun m acc ->
        let r =
          match m with
          | First { round; _ } | Report { round; _ } | Lock { round; _ } ->
              round
        in
        if r <= cfg.max_round && not (List.mem r acc) then r :: acc else acc)
      st.msgs []
  in
  List.concat_map
    (fun p ->
      let pr = st.procs.(p) in
      List.filter_map
        (fun r ->
          if r > pr.round then
            Some
              (with_proc st p
                 { pr with round = r; reported = None; locked = None })
          else None)
        all_rounds)
    (procs cfg)

let successors cfg st =
  wabcasts cfg st @ reports cfg st @ locks cfg st @ finishes cfg st
  @ jumps cfg st

(* --- properties ------------------------------------------------------- *)

let agreement st =
  let decided =
    Array.to_list st.procs
    |> List.filter_map (fun p ->
           if p.decided >= 0 then Some p.decided else None)
  in
  match decided with
  | [] -> true
  | v :: rest -> List.for_all (( = ) v) rest

let validity cfg st =
  Array.for_all
    (fun p -> p.decided < 0 || Array.exists (( = ) p.decided) cfg.proposals)
    st.procs

let lock_uniqueness st =
  let somes = Hashtbl.create 8 in
  try
    Msgset.iter
      (function
        | Lock { round; value = Some v; _ } -> (
            match Hashtbl.find_opt somes round with
            | Some v' when v' <> v -> raise Exit
            | Some _ -> ()
            | None -> Hashtbl.add somes round v)
        | _ -> ())
      st.msgs;
    true
  with Exit -> false

let pp_state fmt st =
  Array.iteri
    (fun i p ->
      Format.fprintf fmt "p%d{r=%d est=%d rep=%s lock=%s dec=%d} " i p.round
        p.est
        (match p.reported with Some v -> string_of_int v | None -> "-")
        (match p.locked with
        | Some (Some v) -> string_of_int v
        | Some None -> "?"
        | None -> "-")
        p.decided)
    st.procs;
  Format.fprintf fmt "| %d msgs" (Msgset.cardinal st.msgs)
