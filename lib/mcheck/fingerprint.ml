type t = { hi : int64; lo : int64 }

let equal a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo

let compare a b =
  let c = Int64.compare a.hi b.hi in
  if c <> 0 then c else Int64.compare a.lo b.lo

let hash t = Int64.to_int t.lo land max_int

let to_hex t = Printf.sprintf "%016Lx%016Lx" t.hi t.lo

(* Two independent 64-bit lanes.  Each step xors the (whitened) input
   word into the lane, multiplies by a lane-specific odd constant and
   runs the splitmix64 finalizer, so every input bit avalanches into
   the whole lane before the next word arrives.  The lanes differ in
   multiplier, initial value and input whitening, so a joint collision
   needs the full 128-bit internal state to collide. *)

let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

type acc = { h1 : int64; h2 : int64 }

let empty = { h1 = 0x9E3779B97F4A7C15L; h2 = 0xC2B2AE3D27D4EB4FL }

let add_int64 a w =
  {
    h1 = mix64 (Int64.mul (Int64.logxor a.h1 w) 0xFF51AFD7ED558CCDL);
    h2 =
      mix64
        (Int64.mul
           (Int64.logxor a.h2 (Int64.logxor w 0xA5A5A5A5A5A5A5A5L))
           0xC4CEB9FE1A85EC53L);
  }

let add_int a i = add_int64 a (Int64.of_int i)

let finish a = { hi = mix64 a.h1; lo = mix64 a.h2 }

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)
