(** Compact 128-bit state fingerprints for the visited set.

    The explorer used to key its visited table on full structural keys
    (sorted message lists plus process arrays), so the table retained a
    deep copy of every state it had ever seen.  A fingerprint is a
    128-bit hash of a {e canonical} encoding of the state: the table
    stores 16 bytes per state regardless of state size, and the deep
    keys are only materialized in the [--exact-keys] verification mode.

    {2 Collision risk}

    Fingerprints are two independent 64-bit lanes, each a
    multiply-xor chain over the canonical word stream with a
    splitmix64-style finalizer per step (different odd multipliers and
    input whitening per lane).  Treating the lanes as uniform, the
    birthday bound for [n] distinct states puts the probability of any
    collision at about [n^2 / 2^129] — under [10^-24] for the [10^6]-
    state spaces we explore, and far below the probability of a
    hardware fault during the run.  A collision would only ever {e hide}
    a state (merge it with another), never invent one, and
    {!Explore.run}'s exact-keys mode re-runs the search with both
    tables live and reports any collision observed in practice.

    Producers must feed a canonical, prefix-decodable word stream:
    equal states must produce equal streams (sort sets first) and
    distinct states distinct streams (emit lengths before variable-
    length sections and tags before variant payloads).  See
    {!Model.fold_canonical} / {!Bc_model.fold_canonical}. *)

type t

val equal : t -> t -> bool

val compare : t -> t -> int

(** Hash for use in (functorial, non-randomized) hash tables. *)
val hash : t -> int

(** 32 lowercase hex digits. *)
val to_hex : t -> string

(** {2 Incremental construction}

    The accumulator is immutable, so folding is safe from
    {!Sim.Domain_pool} workers and partial accumulators can be
    shared/reused freely. *)

type acc

val empty : acc

val add_int : acc -> int -> acc

val add_int64 : acc -> int64 -> acc

(** Finalize the two lanes into a fingerprint. *)
val finish : acc -> t

(** Hash tables keyed on fingerprints (functorial interface: never
    randomized, so table layout is a deterministic function of the
    insertion sequence). *)
module Tbl : Hashtbl.S with type key = t
