type 'state outcome = {
  states : int;
  transitions : int;
  complete : bool;
  violation : (string * 'state) option;
  collisions : int option;
  table_words : int;
}

(* Split [xs] into at most [parts] contiguous chunks of near-equal
   length, preserving order.  Chunking only affects load balance: the
   coordinator merges per-chunk results in submission order, so the
   concatenation is always the original successor order. *)
let split_chunks ~parts xs =
  let n = List.length xs in
  if parts <= 1 || n <= 1 then [ xs ]
  else begin
    let parts = Int.min parts n in
    let base = n / parts and extra = n mod parts in
    let rec take k xs acc =
      if k = 0 then (List.rev acc, xs)
      else
        match xs with
        | [] -> (List.rev acc, [])
        | x :: tl -> take (k - 1) tl (x :: acc)
    in
    let rec go i xs acc =
      if i >= parts then List.rev acc
      else
        let len = base + if i < extra then 1 else 0 in
        let chunk, rest = take len xs [] in
        go (i + 1) rest (chunk :: acc)
    in
    go 0 xs []
  end

let run ?(domains = 1) ?(exact_keys = false) ?registry ~initial ~successors
    ~fingerprint ~key ~properties ~max_depth ~max_states () =
  let pool =
    if domains > 1 then Some (Sim.Domain_pool.create ~domains ()) else None
  in
  let finally () =
    match pool with Some p -> Sim.Domain_pool.shutdown p | None -> ()
  in
  Fun.protect ~finally @@ fun () ->
  let visited_fp : unit Fingerprint.Tbl.t = Fingerprint.Tbl.create 4096 in
  (* exact-keys mode: the structural table is authoritative (results are
     ground truth) and [visited_fp] runs alongside purely to count
     collisions *)
  let visited_exact =
    if exact_keys then Some (Hashtbl.create ~random:false 4096) else None
  in
  let stored () =
    match visited_exact with
    | Some t -> Hashtbl.length t
    | None -> Fingerprint.Tbl.length visited_fp
  in
  let transitions = ref 0 in
  let complete = ref true in
  let violation = ref None in
  let collisions = ref 0 in
  let check st =
    match List.find_opt (fun (_, pred) -> not (pred st)) properties with
    | Some (name, _) -> violation := Some (name, st)
    | None -> ()
  in
  (* First occurrence of a state: property-check it (before any bound),
     and store + schedule it unless the state cap is hit. *)
  let admit next (fp, st) =
    let status =
      match visited_exact with
      | Some t ->
          let k = key st in
          if Hashtbl.mem t k then `Seen
          else if Hashtbl.length t >= max_states then `Full
          else begin
            if Fingerprint.Tbl.mem visited_fp fp then incr collisions;
            Hashtbl.replace t k ();
            Fingerprint.Tbl.replace visited_fp fp ();
            `Stored
          end
      | None ->
          if Fingerprint.Tbl.mem visited_fp fp then `Seen
          else if Fingerprint.Tbl.length visited_fp >= max_states then `Full
          else begin
            Fingerprint.Tbl.replace visited_fp fp ();
            `Stored
          end
    in
    match status with
    | `Seen -> ()
    | `Stored ->
        next := st :: !next;
        check st
    | `Full ->
        complete := false;
        check st
  in
  let expand states =
    List.map
      (fun st -> List.map (fun s -> (fingerprint s, s)) (successors st))
      states
  in
  let seed = ref [] in
  admit seed (fingerprint initial, initial);
  let frontier = ref (List.rev !seed) in
  let depth = ref 0 in
  let continue_ () =
    (match !frontier with [] -> false | _ :: _ -> true)
    && Option.is_none !violation
  in
  while continue_ () do
    (match registry with
    | Some r ->
        Sim.Registry.inc r "mcheck_frontier_levels";
        Sim.Registry.inc r ~by:(List.length !frontier) "mcheck_frontier_states"
    | None -> ());
    if !depth >= max_depth then begin
      (* states at the depth bound are stored and checked, not expanded *)
      complete := false;
      frontier := []
    end
    else begin
      let chunks = split_chunks ~parts:(domains * 4) !frontier in
      let expanded =
        match pool with
        | Some p -> Sim.Domain_pool.map p expand chunks
        | None -> List.map expand chunks
      in
      (* every generated edge of the level counts, deterministically,
         whether or not the merge below stops at a violation *)
      List.iter
        (List.iter (fun succs -> transitions := !transitions + List.length succs))
        expanded;
      let next = ref [] in
      List.iter
        (List.iter
           (List.iter (fun fs -> if Option.is_none !violation then admit next fs)))
        expanded;
      frontier := List.rev !next;
      incr depth
    end
  done;
  let table_words =
    Obj.reachable_words (Obj.repr visited_fp)
    + match visited_exact with
      | Some t -> Obj.reachable_words (Obj.repr t)
      | None -> 0
  in
  {
    states = stored ();
    transitions = !transitions;
    complete = !complete && Option.is_none !violation;
    violation = !violation;
    collisions = (if exact_keys then Some !collisions else None);
    table_words;
  }
