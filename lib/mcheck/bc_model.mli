(** A small-scope formal model of the modified B-Consensus round core.

    Section 5 of the paper only sketches the algorithm, so our
    implementation ({!Bconsensus.Modified_b_consensus}) reconstructs the
    round structure (oracle suggestion → report → ⊥-lock).  This model
    lets the explorer check the two lemmas that reconstruction's safety
    argument rests on, mechanically:

    - {b lock uniqueness}: no round can contain two non-⊥ locks with
      different values;
    - {b agreement}: no two processes decide different values, in any
      interleaving, under a {e fully adversarial} oracle (here, "the
      first delivered First of round r" is a nondeterministic choice
      among all round-r Firsts — a superset of every possible ordering
      oracle, including a broken one, since safety must not depend on
      the hold-back).

    Same abstractions as {!Model}: time-free, grow-only message set
    (subsumes loss/duplication/reordering/crash-restart), bounded round
    numbers. *)

type msg =
  | First of { src : int; round : int; value : int }
  | Report of { src : int; round : int; value : int }
  | Lock of { src : int; round : int; value : int option }

type proc = {
  round : int;
  est : int;
  reported : int option;  (** value reported this round *)
  locked : int option option;  (** [Some lv] once locked *)
  decided : int;  (** -1 = undecided *)
}

module Msgset : Set.S with type elt = msg

type state = { procs : proc array; msgs : Msgset.t }

(** Deliberate bugs, to validate that the checker finds real unsoundness:
    [Decide_on_any_some] decides as soon as any collected lock is non-⊥
    (instead of all) — breaks agreement (deep counterexample);
    [Lock_on_first_report] locks the first report's value without
    requiring the majority to agree — breaks lock uniqueness (shallow
    counterexample). *)
type mutation = Decide_on_any_some | Lock_on_first_report

type config = {
  n : int;
  proposals : int array;
  max_round : int;
  mutation : mutation option;
}

val initial : config -> state

val successors : config -> state -> state list

(** {2 State identity} (see {!Model}: set values are not canonical) *)

(** Canonical structural key — the exact-mode visited key. *)
val key : state -> proc list * msg list

(** Canonical, prefix-decodable word encoding of a state. *)
val fold_canonical : ('a -> int -> 'a) -> 'a -> state -> 'a

(** 128-bit fingerprint of the canonical encoding. *)
val fingerprint : state -> Fingerprint.t

(** {2 Properties} *)

val agreement : state -> bool

val validity : config -> state -> bool

(** No two conflicting non-⊥ locks in any round. *)
val lock_uniqueness : state -> bool

val pp_state : Format.formatter -> state -> unit
