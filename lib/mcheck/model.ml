type msg =
  | M1a of { src : int; bal : int }
  | M1b of { src : int; bal : int; vbal : int; vval : int }
  | M2a of { bal : int; value : int }
  | M2b of { src : int; bal : int; value : int }

type proc = { mbal : int; vbal : int; vval : int; decided : int }

(* Same order as the polymorphic compare, made monomorphic (lint R6). *)
let compare_msg a b =
  let tag = function M1a _ -> 0 | M1b _ -> 1 | M2a _ -> 2 | M2b _ -> 3 in
  match (a, b) with
  | M1a { src = s1; bal = b1 }, M1a { src = s2; bal = b2 } ->
      let c = Int.compare s1 s2 in
      if c <> 0 then c else Int.compare b1 b2
  | ( M1b { src = s1; bal = b1; vbal = vb1; vval = vv1 },
      M1b { src = s2; bal = b2; vbal = vb2; vval = vv2 } ) ->
      let c = Int.compare s1 s2 in
      if c <> 0 then c
      else
        let c = Int.compare b1 b2 in
        if c <> 0 then c
        else
          let c = Int.compare vb1 vb2 in
          if c <> 0 then c else Int.compare vv1 vv2
  | M2a { bal = b1; value = v1 }, M2a { bal = b2; value = v2 } ->
      let c = Int.compare b1 b2 in
      if c <> 0 then c else Int.compare v1 v2
  | ( M2b { src = s1; bal = b1; value = v1 },
      M2b { src = s2; bal = b2; value = v2 } ) ->
      let c = Int.compare s1 s2 in
      if c <> 0 then c
      else
        let c = Int.compare b1 b2 in
        if c <> 0 then c else Int.compare v1 v2
  | _ -> Int.compare (tag a) (tag b)

module Msgset = Set.Make (struct
  type t = msg

  let compare = compare_msg
end)

type state = { procs : proc array; msgs : Msgset.t }

type config = {
  n : int;
  proposals : int array;
  max_session : int;
  gate : bool;
}

let initial cfg =
  {
    procs =
      Array.init cfg.n (fun p ->
          { mbal = p; vbal = -1; vval = -1; decided = -1 });
    msgs = Msgset.empty;
  }

let session ~n b = b / n

let owner ~n b = b mod n

let majority n = (n / 2) + 1

let sender_of ~n = function
  | M1a { src; _ } | M1b { src; _ } | M2b { src; _ } -> src
  | M2a { bal; _ } -> owner ~n bal

let bal_of = function
  | M1a { bal; _ } | M1b { bal; _ } | M2a { bal; _ } | M2b { bal; _ } -> bal

(* Distinct processes that provably reached session [s]: they sent a
   message carrying a session-[s] ballot. *)
let senders_in_session cfg msgs s =
  Msgset.fold
    (fun m acc ->
      if session ~n:cfg.n (bal_of m) = s then
        let src = sender_of ~n:cfg.n m in
        if List.mem src acc then acc else src :: acc
      else acc)
    msgs []

(* Set.t values are not canonical (equal sets can have different AVL
   shapes), so hashing/comparing states directly would break visited
   checks; [Msgset.elements] gives a canonical sorted-list key.  This is
   the exact-mode key; the fingerprint below hashes the same canonical
   stream. *)
let key (st : state) = (Array.to_list st.procs, Msgset.elements st.msgs)

(* Canonical, prefix-decodable word stream: section lengths first, then
   fixed-arity records, then messages in Msgset (sorted) order with a
   tag before each payload.  Equal states produce equal streams and
   distinct states distinct streams, which is all {!Fingerprint}
   needs. *)
let fold_canonical f acc st =
  let acc = f acc (Array.length st.procs) in
  let acc =
    Array.fold_left
      (fun acc p ->
        let acc = f acc p.mbal in
        let acc = f acc p.vbal in
        let acc = f acc p.vval in
        f acc p.decided)
      acc st.procs
  in
  let acc = f acc (Msgset.cardinal st.msgs) in
  Msgset.fold
    (fun m acc ->
      match m with
      | M1a { src; bal } -> f (f (f acc 0) src) bal
      | M1b { src; bal; vbal; vval } ->
          f (f (f (f (f acc 1) src) bal) vbal) vval
      | M2a { bal; value } -> f (f (f acc 2) bal) value
      | M2b { src; bal; value } -> f (f (f (f acc 3) src) bal) value)
    st.msgs acc

let fingerprint st =
  Fingerprint.finish (fold_canonical Fingerprint.add_int Fingerprint.empty st)

let with_proc st p proc =
  let procs = Array.copy st.procs in
  procs.(p) <- proc;
  { st with procs }

let add_msg st m =
  if Msgset.mem m st.msgs then None
  else Some { st with msgs = Msgset.add m st.msgs }

(* --- transitions ----------------------------------------------------- *)

(* Boot / epsilon-gossip: announce the current ballot. *)
let announces cfg st =
  List.filter_map
    (fun p -> add_msg st (M1a { src = p; bal = st.procs.(p).mbal }))
    (List.init cfg.n Fun.id)

(* Start Phase 1: jump to the next self-owned session, if the gate lets
   us and the session cap is not exceeded. *)
let start_phase1s cfg st =
  List.filter_map
    (fun p ->
      let proc = st.procs.(p) in
      let s = session ~n:cfg.n proc.mbal in
      let enabled =
        (not cfg.gate)
        || s = 0
        || List.length (senders_in_session cfg st.msgs s) >= majority cfg.n
      in
      if (not enabled) || s + 1 > cfg.max_session then None
      else begin
        let bal = ((s + 1) * cfg.n) + p in
        let st = with_proc st p { proc with mbal = bal } in
        match add_msg st (M1a { src = p; bal }) with
        | Some st' -> Some st'
        | None -> Some st
      end)
    (List.init cfg.n Fun.id)

(* Receive a 1a: adopt the ballot and answer 1b.  Successors are consed
   straight onto the accumulator (no per-message intermediate list), and
   the process list is built once per call, not once per message. *)
let deliver_1as cfg st =
  let ps = List.init cfg.n Fun.id in
  Msgset.fold
    (fun m acc ->
      match m with
      | M1a { bal; _ } ->
          List.fold_left
            (fun acc p ->
              let proc = st.procs.(p) in
              if bal < proc.mbal then acc
              else begin
                let st' = with_proc st p { proc with mbal = bal } in
                match
                  add_msg st'
                    (M1b
                       { src = p; bal; vbal = proc.vbal; vval = proc.vval })
                with
                | Some st'' -> st'' :: acc
                | None ->
                    (* the 1b already exists; still a transition if the
                       adoption raised p's ballot *)
                    if proc.mbal < bal then st' :: acc else acc
              end)
            acc ps
      | _ -> acc)
    st.msgs []

(* Phase 2a: the owner of its current ballot picks a majority of 1b
   answers (every choice of majority is explored — the adversary picks)
   and proposes the max-vbal value, or its own proposal. *)
let phase2as cfg st =
  (* one scratch table per call, reset per process: the 1b grouping is
     the hot allocation in successor generation *)
  let by_sender = Hashtbl.create 8 in
  List.concat_map
    (fun p ->
      let proc = st.procs.(p) in
      let bal = proc.mbal in
      if owner ~n:cfg.n bal <> p then []
      else if Msgset.exists (function M2a { bal = b; _ } -> b = bal | _ -> false) st.msgs
      then []
      else begin
        (* group this ballot's 1b messages by sender *)
        Hashtbl.reset by_sender;
        Msgset.iter
          (function
            | M1b { src; bal = b; vbal; vval } when b = bal ->
                Hashtbl.replace by_sender src
                  ((vbal, vval) :: (try Hashtbl.find by_sender src with Not_found -> []))
            | _ -> ())
          st.msgs;
        let senders = Sim.Sorted_tbl.keys ~compare:Int.compare by_sender in
        let m = majority cfg.n in
        if List.length senders < m then []
        else begin
          (* all majority-sized sender subsets x per-sender vote choices *)
          let rec subsets k = function
            | [] -> if k = 0 then [ [] ] else []
            | x :: rest ->
                if k = 0 then [ [] ]
                else
                  List.map (fun sub -> x :: sub) (subsets (k - 1) rest)
                  @ subsets k rest
          in
          let vote_choices sub =
            List.fold_left
              (fun acc s ->
                let votes = Hashtbl.find by_sender s in
                List.concat_map
                  (fun chosen -> List.map (fun v -> v :: chosen) votes)
                  acc)
              [ [] ] sub
          in
          List.concat_map
            (fun sub ->
              List.filter_map
                (fun votes ->
                  let vb, vv =
                    List.fold_left
                      (fun (b0, v0) (b1, v1) ->
                        if b1 > b0 then (b1, v1) else (b0, v0))
                      (-1, -1) votes
                  in
                  let value = if vb >= 0 then vv else cfg.proposals.(p) in
                  add_msg st (M2a { bal; value }))
                (vote_choices sub))
            (subsets m senders)
        end
      end)
    (List.init cfg.n Fun.id)

(* Receive a 2a: adopt and accept. *)
let deliver_2as cfg st =
  let ps = List.init cfg.n Fun.id in
  Msgset.fold
    (fun m acc ->
      match m with
      | M2a { bal; value } ->
          List.fold_left
            (fun acc p ->
              let proc = st.procs.(p) in
              if bal < proc.mbal then acc
              else begin
                let st =
                  with_proc st p { proc with mbal = bal; vbal = bal; vval = value }
                in
                match add_msg st (M2b { src = p; bal; value }) with
                | Some st' -> st' :: acc
                | None -> acc
              end)
            acc ps
      | _ -> acc)
    st.msgs []

(* Same key order as the polymorphic compare on int pairs, made
   monomorphic (lint R6). *)
let compare_int_pair (b1, v1) (b2, v2) =
  let c = Int.compare b1 b2 in
  if c <> 0 then c else Int.compare v1 v2

(* Decide on a majority of matching 2b messages.  Senders are grouped by
   (ballot, value) in a single pass over the message set — the old code
   re-scanned all messages once per candidate pair.  Set membership makes
   (src, bal, value) unique, so each group's sender list is distinct
   without a membership test. *)
let decides cfg st =
  let groups : (int * int, int list) Hashtbl.t = Hashtbl.create 16 in
  Msgset.iter
    (fun m ->
      match m with
      | M2b { src; bal; value } ->
          let prev =
            match Hashtbl.find_opt groups (bal, value) with
            | Some l -> l
            | None -> []
          in
          Hashtbl.replace groups (bal, value) (src :: prev)
      | _ -> ())
    st.msgs;
  let ps = List.init cfg.n Fun.id in
  List.concat_map
    (fun ((_bal, value), senders) ->
      if List.length senders < majority cfg.n then []
      else
        List.filter_map
          (fun p ->
            let proc = st.procs.(p) in
            if proc.decided >= 0 then None
            else Some (with_proc st p { proc with decided = value }))
          ps)
    (Sim.Sorted_tbl.bindings ~compare:compare_int_pair groups)

let successors cfg st =
  announces cfg st @ start_phase1s cfg st @ deliver_1as cfg st
  @ phase2as cfg st @ deliver_2as cfg st @ decides cfg st

(* --- properties ------------------------------------------------------- *)

let agreement st =
  let decided =
    Array.to_list st.procs
    |> List.filter_map (fun p -> if p.decided >= 0 then Some p.decided else None)
  in
  match decided with
  | [] -> true
  | v :: rest -> List.for_all (( = ) v) rest

let validity cfg st =
  Array.for_all
    (fun p -> p.decided < 0 || Array.exists (( = ) p.decided) cfg.proposals)
    st.procs

let obsolete_bound cfg st =
  (* highest session reached by a majority *)
  let sessions =
    Array.to_list st.procs
    |> List.map (fun p -> session ~n:cfg.n p.mbal)
    |> List.sort (fun a b -> Int.compare b a)
  in
  let majority_session = List.nth sessions (majority cfg.n - 1) in
  let ok_bal b = session ~n:cfg.n b <= majority_session + 1 in
  Array.for_all (fun p -> ok_bal p.mbal) st.procs
  && Msgset.for_all (fun m -> ok_bal (bal_of m)) st.msgs

let pp_state fmt st =
  Array.iteri
    (fun i p ->
      Format.fprintf fmt "p%d{mbal=%d vbal=%d vval=%d dec=%d} " i p.mbal
        p.vbal p.vval p.decided)
    st.procs;
  Format.fprintf fmt "| %d msgs" (Msgset.cardinal st.msgs)
