(** Generic bounded state-space exploration: a parallel layered BFS.

    Polymorphic over the transition system: {!Explorer} instantiates it
    for the modified-Paxos core ({!Model}); the CLI instantiates it for
    the B-Consensus round core ({!Bc_model}).

    {2 Algorithm and determinism rule}

    The search proceeds level by level.  Each frontier level is split
    into deterministic contiguous chunks that {!Sim.Domain_pool} workers
    expand concurrently (successor generation and fingerprinting only —
    both pure); the coordinator then merges the resulting
    [(fingerprint, state)] deltas {e in submission-index order} (chunk
    by chunk, and within a chunk state by state, within a state in
    successor-list order).  Merge order is therefore exactly the serial
    BFS discovery order, so [states], [transitions], [complete] and the
    first [violation] — lowest chunk index, then lowest in-chunk index,
    the same rule as {!Sim.Domain_pool.map}'s exception choice — are
    identical at 1 and N domains.  [domains = 1] runs the same layered
    algorithm inline on the calling domain with no pool at all (the
    exact serial path).

    {2 Visited keys}

    The visited set is keyed on 128-bit {!Fingerprint}s of the
    producer's canonical encoding — 16 bytes per state instead of a
    deep structural key.  [exact_keys] is the verification mode: the
    structural [key] table becomes authoritative (so its results are
    ground truth) and the fingerprint table runs alongside purely to
    count collisions — a nonzero [collisions] means two structurally
    distinct stored states shared a fingerprint.

    {2 Bound semantics}

    Every {e discovered} state (first occurrence by visited key) is
    checked against all [properties], {e before} any bound applies; the
    search stops at the first violation.  The bounds only limit what is
    {e stored and expanded}:
    - a state discovered after [max_states] states are stored is
      property-checked, then dropped ([complete] becomes [false]; its
      incoming edge still counts in [transitions], like every generated
      edge of an expanded level);
    - a state at depth [max_depth] is stored and checked but not
      expanded ([complete] becomes [false]).

    Hence [states] counts {e stored} states, [transitions] counts every
    generated edge of every expanded level, and a [violation] witness
    beyond the state cap is still reported. *)

type 'state outcome = {
  states : int;  (** stored states (the visited-set size) *)
  transitions : int;  (** generated edges of expanded levels *)
  complete : bool;  (** false when a depth/state bound stopped the search *)
  violation : (string * 'state) option;
      (** first violation in BFS discovery order *)
  collisions : int option;
      (** [Some n] in [exact_keys] mode: fingerprint collisions observed
          ([n = 0] validates the compact keys); [None] otherwise *)
  table_words : int;
      (** heap words reachable from the visited table(s) at the end of
          the run — the checker's peak key-storage footprint *)
}

(** [run ~initial ~successors ~fingerprint ~key ~properties ~max_depth
    ~max_states] explores the reachable states breadth-first.

    [fingerprint] must hash a canonical encoding (equal states — equal
    fingerprints); [key] must map equal states to equal, structurally
    comparable values — beware non-canonical representations like
    [Set.t].  [key] is only evaluated in [exact_keys] mode.

    [domains] (default 1) sizes the worker pool for frontier expansion;
    results are identical for every value.  [registry] receives the
    [mcheck_frontier_levels] / [mcheck_frontier_states] counters. *)
val run :
  ?domains:int ->
  ?exact_keys:bool ->
  ?registry:Sim.Registry.t ->
  initial:'state ->
  successors:('state -> 'state list) ->
  fingerprint:('state -> Fingerprint.t) ->
  key:('state -> 'key) ->
  properties:(string * ('state -> bool)) list ->
  max_depth:int ->
  max_states:int ->
  unit ->
  'state outcome
