type outcome = {
  states : int;
  transitions : int;
  complete : bool;
  violation : (string * Model.state) option;
  collisions : int option;
  table_words : int;
}

let safety_properties cfg =
  [
    ("agreement", Model.agreement);
    ("validity", fun st -> Model.validity cfg st);
  ]

let all_properties cfg =
  safety_properties cfg
  @ [ ("obsolete-bound", fun st -> Model.obsolete_bound cfg st) ]

let run ?(max_depth = max_int) ?(domains = 1) ?(exact_keys = false) ?registry
    cfg ~max_states ~properties =
  let o =
    Explore.run ~domains ~exact_keys ?registry ~initial:(Model.initial cfg)
      ~successors:(Model.successors cfg) ~fingerprint:Model.fingerprint
      ~key:Model.key ~properties ~max_depth ~max_states ()
  in
  {
    states = o.Explore.states;
    transitions = o.Explore.transitions;
    complete = o.Explore.complete;
    violation = o.Explore.violation;
    collisions = o.Explore.collisions;
    table_words = o.Explore.table_words;
  }

let pp_outcome fmt o =
  (match o.violation with
  | Some (name, st) ->
      Format.fprintf fmt "VIOLATION of %s at %a (after %d states)" name
        Model.pp_state st o.states
  | None ->
      Format.fprintf fmt "%s: %d states, %d transitions, no violations"
        (if o.complete then "exhaustive" else "bounded (cap hit)")
        o.states o.transitions);
  match o.collisions with
  | Some c -> Format.fprintf fmt "; %d fingerprint collision%s" c
        (if c = 1 then "" else "s")
  | None -> ()
