(** A small-scope formal model of the modified Paxos core.

    This is a time-free {e over-approximation} of the Section 4
    algorithm, built for exhaustive safety checking:

    - timers are erased: any action whose timing precondition could ever
      be met is always enabled (a superset of all real schedules);
    - the network is a grow-only set of messages: any sent message can be
      delivered at any time, any number of times, or never — which
      subsumes loss, reordering, duplication, and crash/restart (a
      crashed process is simply one that takes no more steps; stable
      storage means its state is still there if it resumes);
    - the "received from a majority" gate reads the message set directly:
      a message with a session-[s] ballot proves its sender had reached
      session [s], which is the fact the gate exploits.

    Every safety property that holds on this model holds on every timed
    execution, because each timed execution's steps embed into the
    model's transitions.  Liveness and latency do {e not} transfer — they
    are what the simulator measures.

    The state space is bounded by capping session numbers; the explorer
    reports how many states a cap covers. *)

type msg =
  | M1a of { src : int; bal : int }
  | M1b of { src : int; bal : int; vbal : int; vval : int }
  | M2a of { bal : int; value : int }
  | M2b of { src : int; bal : int; value : int }

type proc = {
  mbal : int;
  vbal : int;  (** -1 = never accepted *)
  vval : int;  (** meaningful when [vbal >= 0] *)
  decided : int;  (** -1 = undecided *)
}

module Msgset : Set.S with type elt = msg

type state = { procs : proc array; msgs : Msgset.t }

type config = {
  n : int;
  proposals : int array;
  max_session : int;  (** Start Phase 1 beyond this cap is disabled *)
  gate : bool;  (** condition (ii); [false] explores the ungated variant *)
}

val initial : config -> state

(** All states reachable in one step. *)
val successors : config -> state -> state list

(** {2 State identity}

    [Set.t] values are not canonical (equal sets can differ in AVL
    shape), so states must never be compared or hashed structurally. *)

(** Canonical structural key: equal states map to equal, structurally
    comparable values.  This is the exact-mode visited key (and the one
    witness states are compared with in tests). *)
val key : state -> proc list * msg list

(** [fold_canonical f acc st] folds [f] over a canonical,
    prefix-decodable word encoding of [st]: equal states yield equal
    word streams, distinct states distinct streams. *)
val fold_canonical : ('a -> int -> 'a) -> 'a -> state -> 'a

(** 128-bit fingerprint of the canonical encoding — the compact visited
    key ({!Fingerprint} documents the collision-risk argument). *)
val fingerprint : state -> Fingerprint.t

(** {2 Properties} *)

(** No two processes decided different values. *)
val agreement : state -> bool

(** Every decided value is some process's proposal. *)
val validity : config -> state -> bool

(** The proof's step-1 invariant: every ballot present anywhere (process
    or message) has a session at most one above the highest session that
    a majority of processes have reached. *)
val obsolete_bound : config -> state -> bool

val pp_state : Format.formatter -> state -> unit
