(** Deterministic, JSON-serializable fault schedules for the socket
    cluster.

    A schedule is the eventual-synchrony adversary as data: every time
    is relative to the campaign's start, [ts] is the stabilization
    point, and {!validate} enforces the model's shape — disruptive
    actions (cuts, partitions, corruption, truncation, duplication,
    reordering, stalls, resets) must end by [ts], and post-[ts]
    interference is limited to added latency bounded by [delta].  The
    recovery bound the campaign asserts after [ts] is exactly the
    paper's promise for that regime.

    Link endpoints are [-1] for clients and [0..n-1] for replicas; a
    direction [(src, dst)] matches frames flowing from [src] to [dst]
    on any proxied connection, in either connection role (the proxy
    learns endpoint identity from the [Hello] frame that opens every
    WIRE.md connection). *)

type action =
  | Cut of { src : int; dst : int; from_ : float; until : float }
      (** silently drop frames [src -> dst] during the window *)
  | Partition of { groups : int list list; from_ : float; until : float }
      (** drop frames between endpoints in different groups; endpoints
          not listed are unaffected *)
  | Delay of { from_ : float; until : float; max_delay : float }
      (** add uniform [0, max_delay) latency to every frame, preserving
          per-direction FIFO order; the only action allowed to cross or
          follow [ts] (with [max_delay <= delta]) *)
  | Duplicate of { src : int; dst : int; from_ : float; until : float; prob : float }
  | Reorder of { src : int; dst : int; from_ : float; until : float; prob : float }
      (** hold a frame back and release it after its successor *)
  | Corrupt of { src : int; dst : int; from_ : float; until : float; prob : float }
      (** flip a payload byte — the receiver's CRC check must turn this
          into a clean per-connection teardown *)
  | Truncate of { src : int; dst : int; from_ : float; until : float; prob : float }
      (** forward a frame prefix, then sever the connection *)
  | Reset of { dst : int; at : float }
      (** tear down every proxied connection through replica [dst]'s
          front at time [at] *)
  | Stall of { src : int; dst : int; from_ : float; until : float }
      (** hold all frames until the window closes, then flush in order *)

type t = {
  name : string;
  seed : int64;
  n : int;  (** replicas *)
  ts : float;  (** stabilization point, seconds from campaign start *)
  delta : float;  (** post-[ts] delivery bound *)
  horizon : float;  (** end of scheduled interference, [>= ts] *)
  actions : action list;
}

val validate : t -> (unit, string) result
(** Structural and model-shape checks (see module doc). *)

val generate :
  ?name:string ->
  seed:int64 ->
  n:int ->
  ts:float ->
  delta:float ->
  horizon:float ->
  unit ->
  t
(** The canonical seeded campaign: a directed partition isolating a
    random victim, a link cut, corruption on a peer link, one replica
    reset — all before [ts] — then delta-bounded added latency to the
    horizon.  Pure function of its arguments: the same seed yields the
    same schedule byte for byte.  Raises [Invalid_argument] on [n < 2]
    or a malformed time layout. *)

val equal : t -> t -> bool

val to_json : t -> Sim.Json.t
(** Includes a [format] member ({!format_tag}) so corpus files are
    self-describing. *)

val of_json : Sim.Json.t -> (t, string) result
(** Checks the [format] member and {!validate}s the result. *)

val format_tag : string
(** ["chaos-schedule/1"]. *)

val pp : Format.formatter -> t -> unit

val pp_action : Format.formatter -> action -> unit
