(* A deterministic, JSON-serializable fault schedule for the socket
   cluster — the eventual-synchrony adversary as data.  Every time in a
   schedule is relative to the campaign's start; [ts] is the
   stabilization point: disruptive actions must end by then, and the
   only post-[ts] interference allowed is added latency bounded by
   [delta], which is exactly the regime the paper's recovery bound is
   proved for. *)

type action =
  | Cut of { src : int; dst : int; from_ : float; until : float }
  | Partition of { groups : int list list; from_ : float; until : float }
  | Delay of { from_ : float; until : float; max_delay : float }
  | Duplicate of { src : int; dst : int; from_ : float; until : float; prob : float }
  | Reorder of { src : int; dst : int; from_ : float; until : float; prob : float }
  | Corrupt of { src : int; dst : int; from_ : float; until : float; prob : float }
  | Truncate of { src : int; dst : int; from_ : float; until : float; prob : float }
  | Reset of { dst : int; at : float }
  | Stall of { src : int; dst : int; from_ : float; until : float }

type t = {
  name : string;
  seed : int64;
  n : int;
  ts : float;
  delta : float;
  horizon : float;
  actions : action list;
}

let format_tag = "chaos-schedule/1"

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let check cond fmt =
  Printf.ksprintf (fun m -> if cond then Ok () else Error m) fmt

let endpoint_ok n e = e >= -1 && e < n

let validate_action t i a =
  let pre = Printf.sprintf "action %d" i in
  let window ~from_ ~until =
    let* () =
      check (from_ >= 0. && from_ <= until) "%s: window [%g,%g) malformed" pre
        from_ until
    in
    check (until <= t.horizon) "%s: window ends past the horizon" pre
  in
  let link ~src ~dst =
    check (endpoint_ok t.n src && endpoint_ok t.n dst && src <> dst)
      "%s: link %d->%d out of range for n=%d" pre src dst t.n
  in
  let probability p = check (p >= 0. && p <= 1.) "%s: prob %g outside [0,1]" pre p in
  let disruptive ~until =
    check (until <= t.ts)
      "%s: disruptive window must end by ts=%g (ends %g)" pre t.ts until
  in
  match a with
  | Cut { src; dst; from_; until } | Stall { src; dst; from_; until } ->
      let* () = link ~src ~dst in
      let* () = window ~from_ ~until in
      disruptive ~until
  | Partition { groups; from_; until } ->
      let* () = window ~from_ ~until in
      let* () = disruptive ~until in
      let members = List.concat groups in
      let* () =
        check
          (List.for_all (endpoint_ok t.n) members)
          "%s: partition member out of range" pre
      in
      check
        (List.length members
        = List.length (List.sort_uniq Int.compare members))
        "%s: partition groups overlap" pre
  | Delay { from_; until; max_delay } ->
      let* () = window ~from_ ~until in
      let* () = check (max_delay >= 0.) "%s: negative max_delay" pre in
      (* pre-TS delay is arbitrary (that is the model); post-TS it must
         keep the link delta-bounded *)
      if until <= t.ts then Ok ()
      else
        let* () =
          check (from_ >= t.ts)
            "%s: delay window must lie entirely before or after ts" pre
        in
        check (max_delay <= t.delta)
          "%s: post-ts delay %g exceeds delta=%g" pre max_delay t.delta
  | Duplicate { src; dst; from_; until; prob }
  | Reorder { src; dst; from_; until; prob }
  | Corrupt { src; dst; from_; until; prob }
  | Truncate { src; dst; from_; until; prob } ->
      let* () = link ~src ~dst in
      let* () = window ~from_ ~until in
      let* () = probability prob in
      disruptive ~until
  | Reset { dst; at } ->
      let* () =
        check (dst >= 0 && dst < t.n) "%s: reset target %d out of range" pre dst
      in
      check (at >= 0. && at <= t.ts) "%s: reset at %g must lie in [0,ts]" pre at

let validate t =
  let* () = check (t.name <> "") "empty name" in
  let* () = check (t.n >= 1 && t.n <= 64) "n=%d outside [1,64]" t.n in
  let* () = check (t.ts >= 0.) "negative ts" in
  let* () = check (t.delta > 0.) "delta must be positive" in
  let* () = check (t.horizon >= t.ts) "horizon before ts" in
  let rec go i = function
    | [] -> Ok ()
    | a :: rest ->
        let* () = validate_action t i a in
        go (i + 1) rest
  in
  go 0 t.actions

(* ------------------------------------------------------------------ *)
(* Deterministic generation                                            *)
(* ------------------------------------------------------------------ *)

(* The canonical campaign shape from the acceptance criteria: a
   directed partition plus a link cut before ts, corruption on a peer
   link, one replica reset, then delta-bounded added latency after ts.
   Same seed, same schedule — byte for byte. *)
let generate ?(name = "") ~seed ~n ~ts ~delta ~horizon () =
  if n < 2 then invalid_arg "Schedule.generate: need n >= 2";
  if ts <= 0. || delta <= 0. || horizon < ts then
    invalid_arg "Schedule.generate: need ts > 0, delta > 0, horizon >= ts";
  let rng = Sim.Prng.create seed in
  let victim = Sim.Prng.int rng n in
  let other_of avoid =
    let rec draw () =
      let r = Sim.Prng.int rng n in
      if r = avoid then draw () else r
    in
    draw ()
  in
  let rest =
    List.filter (fun r -> r <> victim) (List.init n (fun i -> i))
  in
  let cut_src = Sim.Prng.int rng n in
  let cut_dst = other_of cut_src in
  let corrupt_src = Sim.Prng.int rng n in
  let corrupt_dst = other_of corrupt_src in
  let corrupt_prob = 0.1 +. Sim.Prng.float rng 0.4 in
  let reset_at = ts *. (0.55 +. Sim.Prng.float rng 0.2) in
  let actions =
    [
      (* isolate the victim (clients ride with the majority side) *)
      Partition
        {
          groups = [ [ victim ]; -1 :: rest ];
          from_ = ts *. 0.1;
          until = ts *. 0.55;
        };
      Cut { src = cut_src; dst = cut_dst; from_ = 0.; until = ts *. 0.4 };
      Corrupt
        {
          src = corrupt_src;
          dst = corrupt_dst;
          from_ = ts *. 0.2;
          until = ts *. 0.8;
          prob = corrupt_prob;
        };
      Reset { dst = Sim.Prng.int rng n; at = reset_at };
      Delay { from_ = ts; until = horizon; max_delay = delta };
    ]
  in
  let name = if name = "" then Printf.sprintf "chaos-%Ld" seed else name in
  let t = { name; seed; n; ts; delta; horizon; actions } in
  match validate t with
  | Ok () -> t
  | Error m -> invalid_arg ("Schedule.generate: " ^ m)

(* ------------------------------------------------------------------ *)
(* Equality                                                            *)
(* ------------------------------------------------------------------ *)

let equal_action a b =
  match (a, b) with
  | Cut a, Cut b ->
      a.src = b.src && a.dst = b.dst && Float.equal a.from_ b.from_
      && Float.equal a.until b.until
  | Partition a, Partition b ->
      List.equal (List.equal Int.equal) a.groups b.groups
      && Float.equal a.from_ b.from_
      && Float.equal a.until b.until
  | Delay a, Delay b ->
      Float.equal a.from_ b.from_
      && Float.equal a.until b.until
      && Float.equal a.max_delay b.max_delay
  | Duplicate a, Duplicate b ->
      a.src = b.src && a.dst = b.dst && Float.equal a.from_ b.from_
      && Float.equal a.until b.until
      && Float.equal a.prob b.prob
  | Reorder a, Reorder b ->
      a.src = b.src && a.dst = b.dst && Float.equal a.from_ b.from_
      && Float.equal a.until b.until
      && Float.equal a.prob b.prob
  | Corrupt a, Corrupt b ->
      a.src = b.src && a.dst = b.dst && Float.equal a.from_ b.from_
      && Float.equal a.until b.until
      && Float.equal a.prob b.prob
  | Truncate a, Truncate b ->
      a.src = b.src && a.dst = b.dst && Float.equal a.from_ b.from_
      && Float.equal a.until b.until
      && Float.equal a.prob b.prob
  | Reset a, Reset b -> a.dst = b.dst && Float.equal a.at b.at
  | Stall a, Stall b ->
      a.src = b.src && a.dst = b.dst && Float.equal a.from_ b.from_
      && Float.equal a.until b.until
  | ( ( Cut _ | Partition _ | Delay _ | Duplicate _ | Reorder _ | Corrupt _
      | Truncate _ | Reset _ | Stall _ ),
      _ ) ->
      false

let equal a b =
  String.equal a.name b.name
  && Int64.equal a.seed b.seed
  && Int.equal a.n b.n && Float.equal a.ts b.ts
  && Float.equal a.delta b.delta
  && Float.equal a.horizon b.horizon
  && List.equal equal_action a.actions b.actions

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let link_fields src dst from_ until =
  [
    ("src", Sim.Json.int src);
    ("dst", Sim.Json.int dst);
    ("from", Sim.Json.float from_);
    ("until", Sim.Json.float until);
  ]

let action_to_json = function
  | Cut { src; dst; from_; until } ->
      Sim.Json.Obj (("kind", Sim.Json.Str "cut") :: link_fields src dst from_ until)
  | Partition { groups; from_; until } ->
      Sim.Json.Obj
        [
          ("kind", Sim.Json.Str "partition");
          ( "groups",
            Sim.Json.Arr
              (List.map
                 (fun g -> Sim.Json.Arr (List.map Sim.Json.int g))
                 groups) );
          ("from", Sim.Json.float from_);
          ("until", Sim.Json.float until);
        ]
  | Delay { from_; until; max_delay } ->
      Sim.Json.Obj
        [
          ("kind", Sim.Json.Str "delay");
          ("from", Sim.Json.float from_);
          ("until", Sim.Json.float until);
          ("max_delay", Sim.Json.float max_delay);
        ]
  | Duplicate { src; dst; from_; until; prob } ->
      Sim.Json.Obj
        (("kind", Sim.Json.Str "duplicate")
        :: link_fields src dst from_ until
        @ [ ("prob", Sim.Json.float prob) ])
  | Reorder { src; dst; from_; until; prob } ->
      Sim.Json.Obj
        (("kind", Sim.Json.Str "reorder")
        :: link_fields src dst from_ until
        @ [ ("prob", Sim.Json.float prob) ])
  | Corrupt { src; dst; from_; until; prob } ->
      Sim.Json.Obj
        (("kind", Sim.Json.Str "corrupt")
        :: link_fields src dst from_ until
        @ [ ("prob", Sim.Json.float prob) ])
  | Truncate { src; dst; from_; until; prob } ->
      Sim.Json.Obj
        (("kind", Sim.Json.Str "truncate")
        :: link_fields src dst from_ until
        @ [ ("prob", Sim.Json.float prob) ])
  | Reset { dst; at } ->
      Sim.Json.Obj
        [
          ("kind", Sim.Json.Str "reset");
          ("dst", Sim.Json.int dst);
          ("at", Sim.Json.float at);
        ]
  | Stall { src; dst; from_; until } ->
      Sim.Json.Obj
        (("kind", Sim.Json.Str "stall") :: link_fields src dst from_ until)

let to_json t =
  Sim.Json.Obj
    [
      ("format", Sim.Json.Str format_tag);
      ("name", Sim.Json.Str t.name);
      ("seed", Sim.Json.int64 t.seed);
      ("n", Sim.Json.int t.n);
      ("ts", Sim.Json.float t.ts);
      ("delta", Sim.Json.float t.delta);
      ("horizon", Sim.Json.float t.horizon);
      ("actions", Sim.Json.Arr (List.map action_to_json t.actions));
    ]

let field name f j = Result.bind (Sim.Json.member name j) f

let link_of_json j k =
  let* src = field "src" Sim.Json.to_int j in
  let* dst = field "dst" Sim.Json.to_int j in
  let* from_ = field "from" Sim.Json.to_float j in
  let* until = field "until" Sim.Json.to_float j in
  k ~src ~dst ~from_ ~until

let prob_link_of_json j k =
  link_of_json j (fun ~src ~dst ~from_ ~until ->
      let* prob = field "prob" Sim.Json.to_float j in
      k ~src ~dst ~from_ ~until ~prob)

let action_of_json j =
  let* kind = field "kind" Sim.Json.to_string j in
  match kind with
  | "cut" ->
      link_of_json j (fun ~src ~dst ~from_ ~until ->
          Ok (Cut { src; dst; from_; until }))
  | "stall" ->
      link_of_json j (fun ~src ~dst ~from_ ~until ->
          Ok (Stall { src; dst; from_; until }))
  | "partition" ->
      let* groups = field "groups" Sim.Json.to_list j in
      let* groups =
        List.fold_left
          (fun acc g ->
            let* acc = acc in
            let* items = Sim.Json.to_list g in
            let* members =
              List.fold_left
                (fun acc x ->
                  let* acc = acc in
                  let* i = Sim.Json.to_int x in
                  Ok (i :: acc))
                (Ok []) items
            in
            Ok (List.rev members :: acc))
          (Ok []) groups
        |> Result.map List.rev
      in
      let* from_ = field "from" Sim.Json.to_float j in
      let* until = field "until" Sim.Json.to_float j in
      Ok (Partition { groups; from_; until })
  | "delay" ->
      let* from_ = field "from" Sim.Json.to_float j in
      let* until = field "until" Sim.Json.to_float j in
      let* max_delay = field "max_delay" Sim.Json.to_float j in
      Ok (Delay { from_; until; max_delay })
  | "duplicate" ->
      prob_link_of_json j (fun ~src ~dst ~from_ ~until ~prob ->
          Ok (Duplicate { src; dst; from_; until; prob }))
  | "reorder" ->
      prob_link_of_json j (fun ~src ~dst ~from_ ~until ~prob ->
          Ok (Reorder { src; dst; from_; until; prob }))
  | "corrupt" ->
      prob_link_of_json j (fun ~src ~dst ~from_ ~until ~prob ->
          Ok (Corrupt { src; dst; from_; until; prob }))
  | "truncate" ->
      prob_link_of_json j (fun ~src ~dst ~from_ ~until ~prob ->
          Ok (Truncate { src; dst; from_; until; prob }))
  | "reset" ->
      let* dst = field "dst" Sim.Json.to_int j in
      let* at = field "at" Sim.Json.to_float j in
      Ok (Reset { dst; at })
  | k -> Error (Printf.sprintf "unknown action kind %S" k)

let of_json j =
  let* format = field "format" Sim.Json.to_string j in
  let* () =
    if String.equal format format_tag then Ok ()
    else Error (Printf.sprintf "unsupported schedule format %S" format)
  in
  let* name = field "name" Sim.Json.to_string j in
  let* seed = field "seed" Sim.Json.to_int64 j in
  let* n = field "n" Sim.Json.to_int j in
  let* ts = field "ts" Sim.Json.to_float j in
  let* delta = field "delta" Sim.Json.to_float j in
  let* horizon = field "horizon" Sim.Json.to_float j in
  let* actions = field "actions" Sim.Json.to_list j in
  let* actions =
    List.fold_left
      (fun acc a ->
        let* acc = acc in
        let* a = action_of_json a in
        Ok (a :: acc))
      (Ok []) actions
    |> Result.map List.rev
  in
  let t = { name; seed; n; ts; delta; horizon; actions } in
  let* () = validate t in
  Ok t

let pp_action fmt = function
  | Cut { src; dst; from_; until } ->
      Format.fprintf fmt "cut %d->%d [%g,%g)" src dst from_ until
  | Partition { groups; from_; until } ->
      Format.fprintf fmt "partition {%s} [%g,%g)"
        (String.concat "|"
           (List.map
              (fun g -> String.concat "," (List.map string_of_int g))
              groups))
        from_ until
  | Delay { from_; until; max_delay } ->
      Format.fprintf fmt "delay<=%g [%g,%g)" max_delay from_ until
  | Duplicate { src; dst; from_; until; prob } ->
      Format.fprintf fmt "dup %d->%d p=%g [%g,%g)" src dst prob from_ until
  | Reorder { src; dst; from_; until; prob } ->
      Format.fprintf fmt "reorder %d->%d p=%g [%g,%g)" src dst prob from_ until
  | Corrupt { src; dst; from_; until; prob } ->
      Format.fprintf fmt "corrupt %d->%d p=%g [%g,%g)" src dst prob from_ until
  | Truncate { src; dst; from_; until; prob } ->
      Format.fprintf fmt "truncate %d->%d p=%g [%g,%g)" src dst prob from_
        until
  | Reset { dst; at } -> Format.fprintf fmt "reset %d @%g" dst at
  | Stall { src; dst; from_; until } ->
      Format.fprintf fmt "stall %d->%d [%g,%g)" src dst from_ until

let pp fmt t =
  Format.fprintf fmt "%s[n=%d ts=%g delta=%g horizon=%g seed=%Ld: %a]" t.name
    t.n t.ts t.delta t.horizon t.seed
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       pp_action)
    t.actions
