(** Chaos campaign runner: a live cluster behind the {!Proxy}, the
    {!Smr.Client} load generator pushed through the scheduled faults,
    and the robustness contract asserted at the end:

    - {b lossless}: every submitted command completed (at-least-once
      delivery with failover/resubmission);
    - {b exactly-once effects}: the load is {!Smr.Client.Unique_puts},
      so resubmissions are idempotent and the final KV state must hold
      exactly the written values — sampled keys are verified;
    - {b agreement}: replicas' order-independent KV checksums match;
    - {b recovery}: the latency samples satisfy the paper's recovery
      bound after the schedule's stabilization point
      ({!Smr.Recovery.check}). *)

type mode =
  | In_process
      (** replicas on threads in this process, probed directly — tests
          and bench *)
  | Subprocess of {
      argv :
        id:int -> cluster:string -> bind:string -> snapshot:string ->
        string array;
          (** command line for one replica (typically
              [consensus_sim serve --id .. --cluster .. --bind ..]);
              stdout/stderr are redirected to a log the campaign parses
              for the shutdown [kv_checksum=]/[kv_applied=] tags *)
      dir : string;  (** scratch directory for snapshots and logs *)
    }

type config = {
  schedule : Schedule.t;
  commands : int;
  pipeline : int;
  value_bytes : int;
  client_timeout : float;
      (** per-wait receive timeout — the client's failover trigger under
          a partition, so it must sit well inside the recovery bound's
          stall allowance *)
  mode : mode;
  verbose : bool;
}

val default_config : Schedule.t -> config
(** 50k commands, pipeline 128, 16-byte values, 0.75 s client timeout,
    [In_process]. *)

type check = { name : string; ok : bool; detail : string }

type outcome = {
  checks : check list;
  report : Smr.Client.report option;  (** [None] if the client died *)
  recovery : Smr.Recovery.verdict option;
  registry : Sim.Registry.t;
      (** the proxy's [chaos_*] (and its loop's [netio_*]) counters *)
}

val run : config -> outcome
(** Raises [Invalid_argument] on a malformed config; everything else —
    including a cluster that never makes progress — surfaces as failed
    checks. *)

val ok : outcome -> bool

val pp_outcome : Format.formatter -> outcome -> unit
(** One line per check: [ok name: detail] / [FAIL name: detail]. *)

val expected_value : value_bytes:int -> int -> string
(** The value [Unique_puts] writes for command [i] (exposed for
    tests). *)
