(* Campaign runner: stand a 3-5 replica cluster up behind the chaos
   proxy, push the PR 7 load generator through the scheduled faults,
   and assert the robustness contract — lossless completion,
   exactly-once effects, replica agreement, and the paper's recovery
   bound after the schedule's stabilization point.

   Two modes: [In_process] replicas on threads (tests, bench) with
   direct KV probes, and [Subprocess] real `serve` processes (the CLI
   and ./dev chaos-smoke) whose final KV checksums are parsed from
   their shutdown lines. *)

module Netio = Realtime.Netio

type mode =
  | In_process
  | Subprocess of {
      argv :
        id:int -> cluster:string -> bind:string -> snapshot:string ->
        string array;
          (* how to exec one replica; the campaign redirects its output *)
      dir : string;  (* scratch directory for snapshots and logs *)
    }

type config = {
  schedule : Schedule.t;
  commands : int;
  pipeline : int;
  value_bytes : int;
  client_timeout : float;
      (* per-wait receive timeout: under a partition this is how long
         the client waits before failing over, so it must sit well
         inside the recovery bound's stall allowance *)
  mode : mode;
  verbose : bool;
}

let default_config schedule =
  {
    schedule;
    commands = 50_000;
    pipeline = 128;
    value_bytes = 16;
    client_timeout = 0.75;
    mode = In_process;
    verbose = false;
  }

type check = { name : string; ok : bool; detail : string }

type outcome = {
  checks : check list;
  report : Smr.Client.report option;
  recovery : Smr.Recovery.verdict option;
  registry : Sim.Registry.t;  (* the proxy's chaos_* / netio_* counters *)
}

let ok outcome = List.for_all (fun c -> c.ok) outcome.checks

let pp_outcome fmt o =
  List.iter
    (fun c ->
      Format.fprintf fmt "%s %s: %s@." (if c.ok then "ok  " else "FAIL")
        c.name c.detail)
    o.checks

let expected_value ~value_bytes i =
  Printf.sprintf "%0*d" value_bytes (i land 0xffffff)

let decision_bound sched =
  Dgl.Config.decision_bound
    (Dgl.Config.make ~n:sched.Schedule.n ~delta:sched.Schedule.delta ())

(* sample key indices spread over the whole load *)
let sample_indices commands =
  let k = Stdlib.min 64 commands in
  List.init k (fun j -> j * commands / k)

let run_client cfg fronts =
  match
    Smr.Client.connect ~verbose:cfg.verbose ~prefer:0
      ~backoff_seed:(Int64.to_int cfg.schedule.Schedule.seed)
      fronts
  with
  | exception Smr.Client.Disconnected m -> Error ("connect: " ^ m)
  | c -> (
      match
        Smr.Client.run_load ~timeout:cfg.client_timeout c
          {
            Smr.Client.commands = cfg.commands;
            pipeline = cfg.pipeline;
            value_bytes = cfg.value_bytes;
            keyspace = 1;
            seed = Int64.to_int cfg.schedule.Schedule.seed;
            mix = Smr.Client.Unique_puts;
            latency_trace = None;
          }
      with
      | report ->
          Smr.Client.close c;
          Ok report
      | exception Smr.Client.Disconnected m ->
          Smr.Client.close c;
          Error ("load: " ^ m))

let settled_point cfg ~wall_t0 =
  let bound = decision_bound cfg.schedule in
  wall_t0 +. cfg.schedule.Schedule.ts +. bound
  +. Smr.Recovery.default_slack bound

(* A fast machine can drain the whole load before the settle point,
   leaving the recovery check nothing to judge.  [Unique_puts] is
   idempotent, so re-running a small prefix of the load keeps the
   cluster committing without changing its final state: the tail exists
   purely to collect latency samples past the settle point. *)
let settle_tail cfg fronts ~settled =
  if Netio.wall () >= settled then []
  else
    match
      Smr.Client.connect ~prefer:0
        ~backoff_seed:(Int64.to_int cfg.schedule.Schedule.seed + 1)
        fronts
    with
    | exception Smr.Client.Disconnected _ -> []
    | c ->
        let load =
          {
            Smr.Client.commands = Stdlib.min 500 cfg.commands;
            pipeline = Stdlib.min 32 cfg.pipeline;
            value_bytes = cfg.value_bytes;
            keyspace = 1;
            seed = Int64.to_int cfg.schedule.Schedule.seed;
            mix = Smr.Client.Unique_puts;
            latency_trace = None;
          }
        in
        let acc = ref [] in
        let give_up = Netio.wall () +. 30. in
        (try
           while Netio.wall () < settled +. 0.25 && Netio.wall () < give_up do
             let r = Smr.Client.run_load ~timeout:cfg.client_timeout c load in
             acc := !acc @ Array.to_list r.Smr.Client.samples
           done
         with Smr.Client.Disconnected _ -> ());
        Smr.Client.close c;
        !acc

let recovery_check cfg ~wall_t0 ?(tail = []) report =
  let bound = decision_bound cfg.schedule in
  let samples = Array.to_list report.Smr.Client.samples @ tail in
  Smr.Recovery.check ~bound ~after:(wall_t0 +. cfg.schedule.Schedule.ts)
    samples

let base_checks cfg outcome_report =
  match outcome_report with
  | Error m -> [ { name = "lossless"; ok = false; detail = m } ]
  | Ok r ->
      [
        {
          name = "lossless";
          ok = r.Smr.Client.completed = cfg.commands;
          detail =
            Printf.sprintf
              "%d/%d commands completed (%d resubmitted, %d reconnects, \
               %.3fs backoff)"
              r.Smr.Client.completed cfg.commands r.Smr.Client.resubmitted
              r.Smr.Client.reconnects r.Smr.Client.backoff;
        };
      ]

let recovery_to_check v =
  {
    name = "recovery";
    ok = Smr.Recovery.ok v;
    detail = Format.asprintf "@[<h>%a@]" Smr.Recovery.pp v;
  }

(* ------------------------------------------------------------------ *)
(* In-process mode                                                     *)
(* ------------------------------------------------------------------ *)

let quiesce_replicas replicas =
  (* wait until the replicas' applied state agrees and stops moving *)
  let deadline = 200 in
  let rec go i last stable =
    if i >= deadline || stable >= 3 then stable >= 3
    else begin
      Thread.delay 0.05;
      let sigs =
        Array.map
          (fun r -> (Smr.Replica.chosen_count r, Smr.Replica.kv_checksum r))
          replicas
      in
      let all_equal =
        Array.for_all (fun s -> s = sigs.(0)) sigs
      in
      if all_equal && last = Some sigs.(0) then go (i + 1) last (stable + 1)
      else go (i + 1) (Some sigs.(0)) 0
    end
  in
  go 0 None 0

let run_in_process cfg =
  let sched = cfg.schedule in
  let n = sched.Schedule.n in
  let reg = Sim.Registry.create () in
  let proxy = Proxy.create ~schedule:sched ~registry:reg () in
  let fronts = Proxy.fronts proxy in
  let replicas =
    Array.init n (fun i ->
        Smr.Replica.create
          {
            (Smr.Replica.default_config ~id:i ~cluster:fronts) with
            bind = Some ("127.0.0.1", 0);
            delta = sched.Schedule.delta;
            seed = Int64.to_int sched.Schedule.seed;
            verbose = cfg.verbose;
          })
  in
  Proxy.set_backends proxy
    (Array.map (fun r -> ("127.0.0.1", Smr.Replica.port r)) replicas);
  Proxy.start_clock proxy;
  let wall_t0 = Netio.wall () in
  let proxy_thread = Thread.create Proxy.run proxy in
  let replica_threads =
    Array.map (fun r -> Thread.create Smr.Replica.run r) replicas
  in
  let finish () =
    Array.iter Smr.Replica.stop replicas;
    Array.iter Thread.join replica_threads;
    Proxy.stop proxy;
    Thread.join proxy_thread;
    Proxy.shutdown proxy
  in
  let outcome_report = run_client cfg fronts in
  let checks = ref (base_checks cfg outcome_report) in
  let add c = checks := !checks @ [ c ] in
  let recovery = ref None in
  (match outcome_report with
  | Error _ -> ()
  | Ok report ->
      let tail =
        settle_tail cfg fronts ~settled:(settled_point cfg ~wall_t0)
      in
      let settled = quiesce_replicas replicas in
      let sums = Array.map Smr.Replica.kv_checksum replicas in
      let agree = Array.for_all (fun s -> s = sums.(0)) sums in
      add
        {
          name = "agreement";
          ok = settled && agree;
          detail =
            (if not settled then "replicas did not quiesce"
             else
               Printf.sprintf "all %d replicas at checksum %d (%d applied)" n
                 sums.(0)
                 (Smr.Replica.kv_applied replicas.(0)));
        };
      let bad =
        List.filter
          (fun i ->
            let key = "u" ^ string_of_int i in
            let want = expected_value ~value_bytes:cfg.value_bytes i in
            Array.exists
              (fun r -> Smr.Replica.kv_get r key <> Some want)
              replicas)
          (sample_indices cfg.commands)
      in
      add
        {
          name = "exactly-once effects";
          ok = bad = [];
          detail =
            (match bad with
            | [] ->
                Printf.sprintf "%d sampled keys correct on every replica"
                  (List.length (sample_indices cfg.commands))
            | i :: _ ->
                Printf.sprintf "key u%d wrong or missing on some replica" i);
        };
      let v = recovery_check cfg ~wall_t0 ~tail report in
      recovery := Some v;
      add (recovery_to_check v));
  finish ();
  {
    checks = !checks;
    report = Result.to_option outcome_report;
    recovery = !recovery;
    registry = reg;
  }

(* ------------------------------------------------------------------ *)
(* Subprocess mode                                                     *)
(* ------------------------------------------------------------------ *)

let reserve_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> 0
  in
  Unix.close fd;
  port

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> ""
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s

(* pull "<token>=<int>" out of a replica's shutdown line *)
let parse_tagged log token =
  let tag = token ^ "=" in
  let rec find from =
    match String.index_from_opt log from tag.[0] with
    | None -> None
    | Some i ->
        if
          i + String.length tag <= String.length log
          && String.sub log i (String.length tag) = tag
        then
          let start = i + String.length tag in
          let finish = ref start in
          while
            !finish < String.length log
            &&
            match log.[!finish] with '0' .. '9' | '-' -> true | _ -> false
          do
            incr finish
          done;
          if !finish > start then
            int_of_string_opt (String.sub log start (!finish - start))
          else find (i + 1)
        else find (i + 1)
  in
  find 0

let terminate_and_reap pids =
  Array.iter
    (fun pid -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
    pids;
  Array.iter
    (fun pid ->
      let rec wait tries =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if tries > 100 then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (Unix.waitpid [] pid)
            end
            else begin
              Thread.delay 0.05;
              wait (tries + 1)
            end
        | _ -> ()
        | exception Unix.Unix_error _ -> ()
      in
      wait 0)
    pids

let run_subprocess cfg ~argv ~dir =
  let sched = cfg.schedule in
  let n = sched.Schedule.n in
  let reg = Sim.Registry.create () in
  let backend_ports = Array.init n (fun _ -> reserve_port ()) in
  let proxy = Proxy.create ~schedule:sched ~registry:reg () in
  let fronts = Proxy.fronts proxy in
  Proxy.set_backends proxy
    (Array.map (fun p -> ("127.0.0.1", p)) backend_ports);
  let cluster_str =
    String.concat ","
      (List.map
         (fun (h, p) -> Printf.sprintf "%s:%d" h p)
         (Array.to_list fronts))
  in
  let logs = Array.init n (fun i -> Filename.concat dir (Printf.sprintf "r%d.log" i)) in
  let pids =
    Array.init n (fun i ->
        let av =
          argv ~id:i ~cluster:cluster_str
            ~bind:(Printf.sprintf "127.0.0.1:%d" backend_ports.(i))
            ~snapshot:(Filename.concat dir (Printf.sprintf "r%d.snap" i))
        in
        let out =
          Unix.openfile logs.(i)
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o644
        in
        let pid = Unix.create_process av.(0) av Unix.stdin out out in
        Unix.close out;
        pid)
  in
  (* let the processes boot and mesh up before the adversary's clock
     starts ticking *)
  Thread.delay 0.4;
  Proxy.start_clock proxy;
  let wall_t0 = Netio.wall () in
  let proxy_thread = Thread.create Proxy.run proxy in
  let outcome_report = run_client cfg fronts in
  let checks = ref (base_checks cfg outcome_report) in
  let add c = checks := !checks @ [ c ] in
  let recovery = ref None in
  (match outcome_report with
  | Error _ -> ()
  | Ok report ->
      let tail =
        settle_tail cfg fronts ~settled:(settled_point cfg ~wall_t0)
      in
      (* spot-check effects through the cluster while it is still up *)
      let bad = ref [] in
      (try
         let c = Smr.Client.connect fronts in
         List.iter
           (fun i ->
             let key = "u" ^ string_of_int i in
             let want = expected_value ~value_bytes:cfg.value_bytes i in
             match Smr.Client.get c key with
             | Smr.Wire.R_value (Some v) when v = want -> ()
             | _ -> bad := i :: !bad)
           (sample_indices cfg.commands);
         Smr.Client.close c
       with Smr.Client.Disconnected _ -> bad := [ -1 ]);
      add
        {
          name = "exactly-once effects";
          ok = !bad = [];
          detail =
            (match !bad with
            | [] ->
                Printf.sprintf "%d sampled keys correct"
                  (List.length (sample_indices cfg.commands))
            | -1 :: _ -> "probe client could not connect"
            | i :: _ -> Printf.sprintf "key u%d wrong or missing" i);
        };
      let v = recovery_check cfg ~wall_t0 ~tail report in
      recovery := Some v;
      add (recovery_to_check v));
  (* settle, then collect each process's final KV signature from its
     shutdown line *)
  Thread.delay 0.3;
  terminate_and_reap pids;
  Proxy.stop proxy;
  Thread.join proxy_thread;
  Proxy.shutdown proxy;
  (match outcome_report with
  | Error _ -> ()
  | Ok _ ->
      let sigs =
        Array.map
          (fun log ->
            let s = read_file log in
            (parse_tagged s "kv_checksum", parse_tagged s "kv_applied"))
          logs
      in
      let all_parsed =
        Array.for_all (function Some _, Some _ -> true | _ -> false) sigs
      in
      let agree =
        all_parsed && Array.for_all (fun s -> s = sigs.(0)) sigs
      in
      checks :=
        !checks
        @ [
            {
              name = "agreement";
              ok = agree;
              detail =
                (if not all_parsed then
                   "missing kv_checksum in a replica shutdown line"
                 else if agree then
                   Printf.sprintf "all %d replicas at checksum %s" n
                     (match sigs.(0) with
                     | Some c, _ -> string_of_int c
                     | None, _ -> "?")
                 else "replica checksums diverge");
            };
          ]);
  {
    checks = !checks;
    report = Result.to_option outcome_report;
    recovery = !recovery;
    registry = reg;
  }

let run cfg =
  if cfg.commands < 1 || cfg.pipeline < 1 then
    invalid_arg "Campaign.run: commands and pipeline must be >= 1";
  match cfg.mode with
  | In_process -> run_in_process cfg
  | Subprocess { argv; dir } -> run_subprocess cfg ~argv ~dir
