(** Frame-aware TCP chaos proxy for the socket cluster.

    One front listener per replica; each accepted connection is paired
    with a backend connection to the real replica, and {!Smr.Wire}
    frames are decoded only to find boundaries and learn endpoint
    identity (from the [Hello] that opens every connection — see the
    proxy-transparency note in WIRE.md).  The original bytes are
    forwarded untouched unless the {!Schedule} says otherwise, so with
    an empty schedule the proxy is byte-transparent.

    Per-direction random draws come from a {!Sim.Prng} substream keyed
    by (schedule seed, src, dst): accept order does not perturb which
    frames a given link corrupts, delays, or duplicates.

    Counters land in the supplied registry under the [chaos_*] family
    (see OBSERVABILITY.md): [chaos_conns], [chaos_frames],
    [chaos_dropped], [chaos_delayed], [chaos_duplicated],
    [chaos_reordered], [chaos_corrupted], [chaos_truncated],
    [chaos_resets], [chaos_bad_frames].

    Threading: {!create}, {!set_backends}, and {!start_clock} must all
    happen before the loop thread calls {!run}; afterwards only {!stop}
    may be called from another thread. *)

type t

val create :
  ?host:string ->
  ?ports:int array ->
  schedule:Schedule.t ->
  registry:Sim.Registry.t ->
  unit ->
  t
(** Validate the schedule and bind one front listener per replica on
    [host] (default [127.0.0.1]); [ports] requests specific front ports
    (default all [0] = ephemeral).  Raises [Invalid_argument] on a
    malformed schedule and [Unix.Unix_error] if a bind fails. *)

val front_ports : t -> int array

val fronts : t -> (string * int) array
(** [(host, port)] per replica — what replicas and clients should be
    given as the cluster addresses. *)

val set_backends : t -> (string * int) array -> unit
(** Where the real replicas listen; must be set before traffic flows. *)

val start_clock : t -> unit
(** Pin campaign time zero to now and arm scheduled resets.  Before
    this call no schedule window is active (the proxy forwards
    transparently). *)

val run : t -> unit
(** Run the proxy event loop until {!stop} (call from its own thread). *)

val stop : t -> unit

val shutdown : t -> unit
(** Close every connection and listener (after {!run} returns). *)

val registry : t -> Sim.Registry.t
