(* Frame-aware chaos proxy: one front listener per replica, each
   accepted connection paired with a backend connection to the real
   replica.  Frames are decoded only to find boundaries and learn
   endpoint identity (the Hello that opens every WIRE.md connection);
   the original bytes are forwarded untouched unless the schedule says
   otherwise, so with an empty schedule the proxy is byte-transparent.

   Determinism: every per-direction random draw comes from a Sim.Prng
   substream keyed by (schedule seed, src, dst), so accept order does
   not perturb which frames a given link corrupts or delays.  The
   schedule itself is deterministic data; the interleaving of a live
   cluster of course is not. *)

module Netio = Realtime.Netio

type dir = {
  mutable rng : Sim.Prng.t;
  mutable last_release : float;  (* loop time; enforces per-dir FIFO *)
  mutable held : Bytes.t option;  (* reorder hold-back *)
}

type link = {
  replica : int;  (* which front this connection arrived on *)
  front : Netio.conn;
  back : Netio.conn;
  mutable ident : int;  (* -3 until Hello; -1 client; >=0 peer replica *)
  fwd : dir;  (* ident -> replica *)
  rev : dir;  (* replica -> ident *)
  mutable dead : bool;
}

type t = {
  io : Netio.t;
  sched : Schedule.t;
  reg : Sim.Registry.t;
  host : string;
  front_ports : int array;
  mutable backends : (string * int) array;
  mutable t0 : float;
  mutable started : bool;
  mutable links : link list;
}

let count ?(by = 1) t name = Sim.Registry.inc ~by t.reg name

let front_ports t = Array.copy t.front_ports

let fronts t = Array.map (fun p -> (t.host, p)) t.front_ports

let set_backends t backends =
  if Array.length backends <> t.sched.Schedule.n then
    invalid_arg "Proxy.set_backends: wrong length";
  t.backends <- Array.copy backends

(* relative campaign time; negative before the clock starts, which no
   schedule window covers *)
let rel t = if t.started then Netio.now t.io -. t.t0 else -1.

let in_window ~from_ ~until r = r >= from_ && r < until

(* ---- schedule queries -------------------------------------------- *)

let group_of groups e =
  let rec go i = function
    | [] -> -1
    | g :: rest -> if List.mem e g then i else go (i + 1) rest
  in
  go 0 groups

let drop_active sched r ~src ~dst =
  List.exists
    (fun a ->
      match a with
      | Schedule.Cut c ->
          c.src = src && c.dst = dst && in_window ~from_:c.from_ ~until:c.until r
      | Schedule.Partition p ->
          in_window ~from_:p.from_ ~until:p.until r
          &&
          let gs = group_of p.groups src and gd = group_of p.groups dst in
          gs >= 0 && gd >= 0 && gs <> gd
      | Schedule.Delay _ | Schedule.Duplicate _ | Schedule.Reorder _
      | Schedule.Corrupt _ | Schedule.Truncate _ | Schedule.Reset _
      | Schedule.Stall _ ->
          false)
    sched.Schedule.actions

(* first matching probabilistic action of the wanted kind; one rng draw
   iff a window is active *)
let roll sched r ~src ~dst rng kind =
  let probe a =
    match (kind, a) with
    | `Duplicate, Schedule.Duplicate c
      when c.src = src && c.dst = dst
           && in_window ~from_:c.from_ ~until:c.until r ->
        Some c.prob
    | `Reorder, Schedule.Reorder c
      when c.src = src && c.dst = dst
           && in_window ~from_:c.from_ ~until:c.until r ->
        Some c.prob
    | `Corrupt, Schedule.Corrupt c
      when c.src = src && c.dst = dst
           && in_window ~from_:c.from_ ~until:c.until r ->
        Some c.prob
    | `Truncate, Schedule.Truncate c
      when c.src = src && c.dst = dst
           && in_window ~from_:c.from_ ~until:c.until r ->
        Some c.prob
    | _ -> None
  in
  match List.find_map probe sched.Schedule.actions with
  | Some prob -> Sim.Prng.float rng 1. < prob
  | None -> false

(* seconds of added latency for a frame arriving at relative time r *)
let added_latency sched r ~src ~dst rng =
  let stall =
    List.fold_left
      (fun acc a ->
        match a with
        | Schedule.Stall c
          when c.src = src && c.dst = dst
               && in_window ~from_:c.from_ ~until:c.until r ->
            (* hold until the window closes; FIFO keeps order *)
            Float.max acc (c.until -. r)
        | _ -> acc)
      0. sched.Schedule.actions
  in
  let delay =
    List.fold_left
      (fun acc a ->
        match a with
        | Schedule.Delay c when in_window ~from_:c.from_ ~until:c.until r ->
            Float.max acc (Sim.Prng.float rng c.max_delay)
        | _ -> acc)
      0. sched.Schedule.actions
  in
  stall +. delay

(* ---- link plumbing ----------------------------------------------- *)

let kill t link =
  if not link.dead then begin
    link.dead <- true;
    t.links <-
      List.filter
        (fun l -> Netio.conn_id l.front <> Netio.conn_id link.front)
        t.links;
    Netio.close t.io link.front;
    Netio.close t.io link.back
  end

(* send [bytes] on [out] no earlier than the direction's last release
   (per-direction FIFO), [extra] seconds from now *)
let emit t dir out ~extra bytes =
  let now = Netio.now t.io in
  let release = Float.max dir.last_release (now +. extra) in
  dir.last_release <- release;
  if release <= now then Netio.send t.io out bytes
  else begin
    count t "chaos_delayed";
    Netio.after t.io (release -. now) (fun () ->
        if not (Netio.closing out) then Netio.send t.io out bytes)
  end

(* flip one payload byte (or a CRC byte when the payload is empty): the
   receiver's CRC check fails and the connection is torn down cleanly *)
let corrupt_copy rng bytes =
  let b = Bytes.copy bytes in
  let len = Bytes.length b in
  let payload = len - Smr.Wire.header_len in
  let i =
    if payload > 0 then Smr.Wire.header_len + Sim.Prng.int rng payload else 8
  in
  if i < len then Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  b

let dir_key ~src ~dst = (((src + 2) * 67) + dst + 2) * 1_000_003

let dir_rng sched ~src ~dst =
  Sim.Prng.create
    (Int64.add sched.Schedule.seed (Int64.of_int (dir_key ~src ~dst)))

let learn_ident t link sender =
  link.ident <- sender;
  link.fwd.rng <- dir_rng t.sched ~src:sender ~dst:link.replica;
  link.rev.rng <- dir_rng t.sched ~src:link.replica ~dst:sender

let process t link kind bytes =
  let dir, out, src, dst =
    match kind with
    | `Fwd -> (link.fwd, link.back, link.ident, link.replica)
    | `Rev -> (link.rev, link.front, link.replica, link.ident)
  in
  let r = rel t in
  count t "chaos_frames";
  if drop_active t.sched r ~src ~dst then count t "chaos_dropped"
  else begin
    let corrupted = roll t.sched r ~src ~dst dir.rng `Corrupt in
    let bytes = if corrupted then corrupt_copy dir.rng bytes else bytes in
    if corrupted then count t "chaos_corrupted";
    if roll t.sched r ~src ~dst dir.rng `Truncate then begin
      count t "chaos_truncated";
      emit t dir out ~extra:0.
        (Bytes.sub bytes 0 (Stdlib.max 1 (Bytes.length bytes / 2)));
      (* sever shortly after, giving the prefix a loop turn to flush *)
      Netio.after t.io 0.02 (fun () -> kill t link)
    end
    else begin
      let extra = added_latency t.sched r ~src ~dst dir.rng in
      let dup = roll t.sched r ~src ~dst dir.rng `Duplicate in
      let swap = roll t.sched r ~src ~dst dir.rng `Reorder in
      match dir.held with
      | Some earlier ->
          (* release the held frame after its successor: the swap *)
          dir.held <- None;
          emit t dir out ~extra bytes;
          emit t dir out ~extra earlier
      | None ->
          if swap && not dup then begin
            count t "chaos_reordered";
            dir.held <- Some bytes;
            (* safety valve: a held frame with no successor still goes
               out, just late *)
            Netio.after t.io 0.05 (fun () ->
                match dir.held with
                | Some b when not link.dead ->
                    dir.held <- None;
                    emit t dir out ~extra:0. b
                | Some _ | None -> ())
          end
          else begin
            emit t dir out ~extra bytes;
            if dup then begin
              count t "chaos_duplicated";
              emit t dir out ~extra bytes
            end
          end
    end
  end

(* Decode every buffered frame on [conn], forwarding the original byte
   slices.  A decode error here means an endpoint (not us — we only
   mutate output copies) broke the protocol: sever the pair. *)
let pump t link kind conn =
  let rec go () =
    if not (Netio.closing conn) && not link.dead then begin
      let buf, pos, avail = Netio.input conn in
      match Smr.Wire.decode buf ~pos ~avail with
      | Ok (msg, used) ->
          let bytes = Bytes.sub buf pos used in
          Netio.consume conn used;
          (match (kind, msg) with
          | `Fwd, Smr.Wire.Hello { sender }
            when link.ident = -3
                 && sender >= -1
                 && sender < t.sched.Schedule.n ->
              learn_ident t link sender
          | _ -> ());
          process t link kind bytes;
          go ()
      | Error `Need_more -> ()
      | Error (`Error _) ->
          count t "chaos_bad_frames";
          kill t link
    end
  in
  go ()

let on_front_accept t replica front =
  match t.backends.(replica) with
  | exception Invalid_argument _ -> Netio.close t.io front
  | host, port ->
      if port <= 0 then Netio.close t.io front
      else begin
        count t "chaos_conns";
        let back = Netio.connect t.io ~host ~port in
        let link =
          {
            replica;
            front;
            back;
            ident = -3;
            fwd =
              {
                rng = dir_rng t.sched ~src:(-3) ~dst:replica;
                last_release = 0.;
                held = None;
              };
            rev =
              {
                rng = dir_rng t.sched ~src:replica ~dst:(-3);
                last_release = 0.;
                held = None;
              };
            dead = false;
          }
        in
        t.links <- link :: t.links;
        Netio.set_callbacks front
          ~on_data:(fun c -> pump t link `Fwd c)
          ~on_close:(fun _ -> kill t link);
        Netio.set_callbacks back
          ~on_data:(fun c -> pump t link `Rev c)
          ~on_close:(fun _ -> kill t link)
      end

let create ?(host = "127.0.0.1") ?ports ~schedule ~registry () =
  (match Schedule.validate schedule with
  | Ok () -> ()
  | Error m -> invalid_arg ("Proxy.create: " ^ m));
  let n = schedule.Schedule.n in
  let ports =
    match ports with
    | Some p when Array.length p = n -> p
    | Some _ -> invalid_arg "Proxy.create: ports length <> n"
    | None -> Array.make n 0
  in
  let io = Netio.create () in
  Netio.set_registry io registry;
  let t =
    {
      io;
      sched = schedule;
      reg = registry;
      host;
      front_ports = Array.make n 0;
      backends = Array.make n ("", 0);
      t0 = 0.;
      started = false;
      links = [];
    }
  in
  for i = 0 to n - 1 do
    t.front_ports.(i) <-
      Netio.listen io ~host ~port:ports.(i) ~on_accept:(fun conn ->
          on_front_accept t i conn)
  done;
  t

(* Pin the campaign clock and arm the scheduled resets.  Must be called
   before the loop thread starts (timer state is not thread-safe). *)
let start_clock t =
  t.t0 <- Netio.now t.io;
  t.started <- true;
  List.iter
    (fun a ->
      match a with
      | Schedule.Reset { dst; at } ->
          Netio.after t.io at (fun () ->
              count t "chaos_resets";
              List.iter
                (fun l -> if l.replica = dst then kill t l)
                t.links)
      | Schedule.Cut _ | Schedule.Partition _ | Schedule.Delay _
      | Schedule.Duplicate _ | Schedule.Reorder _ | Schedule.Corrupt _
      | Schedule.Truncate _ | Schedule.Stall _ ->
          ())
    t.sched.Schedule.actions

let run t = Netio.run t.io

let stop t = Netio.stop t.io

let shutdown t = Netio.shutdown t.io

let registry t = t.reg
