type fault = Crash of float * int | Restart of float * int

type config = {
  n : int;
  delta : float;
  ts : float;
  duration : float;
  pre_loss : float;
  seed : int64;
  faults : fault list;
  record_trace : bool;
}

(* Long wall-clock runs must not accumulate unbounded trace memory, so
   the realtime executor always records into a bounded ring. *)
let trace_capacity = 65536

type result = {
  decisions : (float * int) option array;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  elapsed : float;
  agreement_violation : bool;
  trace : Sim.Trace.t;
  metrics : Sim.Registry.t;
}

(* One mailbox entry: a message from a peer, an expired timer (tagged
   with the incarnation that armed it), or a fault action.  Messages
   carry their trace id and payload, minted at send time, so the router
   can record deliveries without knowing the message type. *)
type 'msg item =
  | Ev_msg of { src : int; id : int; payload : Sim.Trace.payload; msg : 'msg }
  | Ev_timer of int * int  (* incarnation, tag *)
  | Ev_crash
  | Ev_restart

(* Pending router work: deliver [what] to [dst] at wall time [at]. *)
type 'msg pending = { at : float; dst : int; what : 'msg item }

type 'msg shared = {
  cfg : config;
  mutex : Mutex.t;
  conds : Condition.t array;  (* one per process, signalled on new mail *)
  mailboxes : 'msg item Queue.t array;
  mutable pending : 'msg pending list;  (* unsorted; router scans *)
  mutable stop : bool;
  up : bool array;
  incarnations : int array;
  start : float;
  net_rng : Sim.Prng.t;  (* guarded by [mutex] *)
  decisions : (float * int) option array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable violation : bool;
  trace : Sim.Trace.t;  (* guarded by [mutex] *)
  metrics : Sim.Registry.t;  (* guarded by [mutex] *)
  mutable next_msg_id : int;  (* guarded by [mutex] *)
}

let now sh = Unix.gettimeofday () -. sh.start

let locked sh f =
  Mutex.lock sh.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.mutex) f

(* Called with the mutex held. *)
let enqueue_pending sh ~at ~dst what =
  sh.pending <- { at; dst; what } :: sh.pending

let router_quantum = 0.0005

(* The router moves due pending items into mailboxes and wakes their
   owners; it is the only place deliveries materialize, so delivery
   order at a process is by due time with scheduler jitter. *)
let router sh () =
  let rec loop () =
    let continue_ =
      locked sh (fun () ->
          if sh.stop then false
          else begin
            let t = now sh in
            let due, rest =
              List.partition (fun p -> p.at <= t) sh.pending
            in
            sh.pending <- rest;
            List.iter
              (fun p ->
                match p.what with
                | Ev_msg { src; id; payload; _ } when not sh.up.(p.dst) ->
                    sh.dropped <- sh.dropped + 1;
                    Sim.Registry.inc sh.metrics ~proc:p.dst "msgs_dropped";
                    Sim.Trace.record sh.trace
                      (Sim.Trace.Drop
                         { t = now sh; id; src; dst = p.dst; payload })
                | Ev_timer _ when not sh.up.(p.dst) -> ()
                | what ->
                    Queue.push what sh.mailboxes.(p.dst);
                    (match what with
                    | Ev_msg { src; id; payload; _ } ->
                        sh.delivered <- sh.delivered + 1;
                        Sim.Registry.inc sh.metrics ~proc:p.dst
                          "msgs_delivered";
                        Sim.Trace.record sh.trace
                          (Sim.Trace.Deliver
                             { t = now sh; id; src; dst = p.dst; payload })
                    | Ev_timer (_, tag) ->
                        Sim.Trace.record sh.trace
                          (Sim.Trace.Timer_fire
                             { t = now sh; proc = p.dst; tag })
                    | Ev_crash | Ev_restart -> ());
                    Condition.signal sh.conds.(p.dst))
              (List.sort (fun a b -> Float.compare a.at b.at) due);
            true
          end)
    in
    if continue_ then begin
      Thread.delay router_quantum;
      loop ()
    end
  in
  loop ()

(* Network policy: the simulator's eventual synchrony, on wall time.
   Called with the mutex held (uses the shared rng). *)
let delivery_delay sh ~src ~dst =
  let t = now sh in
  let c = sh.cfg in
  if t >= c.ts then
    if src = dst then Some (0.05 *. c.delta)
    else Some (Sim.Prng.float_range sh.net_rng (0.05 *. c.delta) c.delta)
  else if Sim.Prng.bool sh.net_rng c.pre_loss then None
  else Some (Sim.Prng.float_range sh.net_rng (0.05 *. c.delta) (4. *. c.delta))

let make_ctx sh ~proposals ~proc_rng ~storage ~msg_payload p :
    _ Sim.Runtime.ctx =
  let send ~dst msg =
    locked sh (fun () ->
        sh.sent <- sh.sent + 1;
        Sim.Registry.inc sh.metrics ~proc:p "msgs_sent";
        let id = sh.next_msg_id in
        sh.next_msg_id <- id + 1;
        let payload () : Sim.Trace.payload =
          if Sim.Trace.enabled sh.trace then msg_payload msg
          else Sim.Trace.info ""
        in
        match delivery_delay sh ~src:p ~dst with
        | None ->
            sh.dropped <- sh.dropped + 1;
            Sim.Registry.inc sh.metrics ~proc:dst "msgs_dropped";
            Sim.Trace.record sh.trace
              (Sim.Trace.Drop { t = now sh; id; src = p; dst; payload = payload () })
        | Some d ->
            Sim.Trace.record sh.trace
              (Sim.Trace.Send { t = now sh; id; src = p; dst; payload = payload () });
            enqueue_pending sh ~at:(now sh +. d) ~dst
              (Ev_msg { src = p; id; payload = payload (); msg }))
  in
  {
    Sim.Runtime.self = p;
    n = sh.cfg.n;
    proposal = proposals.(p);
    local_time = (fun () -> now sh);
    send;
    broadcast =
      (fun msg ->
        for dst = 0 to sh.cfg.n - 1 do
          send ~dst msg
        done);
    set_timer =
      (fun ~local_delay ~tag ->
        locked sh (fun () ->
            let at = now sh +. local_delay in
            Sim.Trace.record sh.trace
              (Sim.Trace.Timer_set { t = now sh; proc = p; tag; fire_at = at });
            enqueue_pending sh ~at ~dst:p
              (Ev_timer (sh.incarnations.(p), tag))));
    persist = (fun st -> locked sh (fun () -> storage.(p) <- Some st));
    decide =
      (fun v ->
        locked sh (fun () ->
            if sh.decisions.(p) = None then begin
              let t = now sh in
              sh.decisions.(p) <- Some (t, v);
              Sim.Registry.inc sh.metrics ~proc:p "decisions";
              Sim.Registry.observe sh.metrics "decision_latency_delta"
                ((t -. sh.cfg.ts) /. sh.cfg.delta);
              Sim.Trace.record sh.trace
                (Sim.Trace.Decide { t; proc = p; value = v });
              Array.iter
                (function
                  | Some (_, v') when v' <> v -> sh.violation <- true
                  | _ -> ())
                sh.decisions
            end));
    has_decided = (fun () -> locked sh (fun () -> sh.decisions.(p) <> None));
    rng = proc_rng;
    scratch = Sim.Scratch.create ();
    note =
      (fun text ->
        locked sh (fun () ->
            Sim.Trace.record sh.trace
              (Sim.Trace.Note { t = now sh; proc = p; text })));
    count =
      (fun name -> locked sh (fun () -> Sim.Registry.inc sh.metrics ~proc:p name));
    oracle_time = (fun () -> now sh);
  }

(* A process thread: drain the mailbox, fold the protocol over events.
   Crashes take effect between events (no preemption): the thread drops
   protocol events while down and rebuilds its state from stable storage
   on restart. *)
let process_loop sh (protocol : _ Sim.Runtime.protocol) ctx ~storage p () =
  let state = ref (protocol.Sim.Runtime.on_boot ctx) in
  let rec loop () =
    let next =
      locked sh (fun () ->
          let rec wait () =
            if sh.stop then None
            else if Queue.is_empty sh.mailboxes.(p) then begin
              Condition.wait sh.conds.(p) sh.mutex;
              wait ()
            end
            else Some (Queue.pop sh.mailboxes.(p), sh.up.(p), sh.incarnations.(p))
          in
          wait ())
    in
    match next with
    | None -> ()
    | Some (Ev_crash, _, _) ->
        locked sh (fun () ->
            sh.up.(p) <- false;
            sh.incarnations.(p) <- sh.incarnations.(p) + 1;
            Queue.clear sh.mailboxes.(p);
            Sim.Trace.record sh.trace
              (Sim.Trace.Crash { t = now sh; proc = p }));
        loop ()
    | Some (Ev_restart, _, _) ->
        let persisted =
          locked sh (fun () ->
              sh.up.(p) <- true;
              Sim.Trace.record sh.trace
                (Sim.Trace.Restart { t = now sh; proc = p });
              storage.(p))
        in
        state := protocol.Sim.Runtime.on_restart ctx ~persisted;
        loop ()
    | Some ((Ev_msg _ | Ev_timer _), false, _) -> loop () (* down: drop *)
    | Some (Ev_msg { src; msg; _ }, true, _) ->
        state := protocol.Sim.Runtime.on_message ctx !state ~src msg;
        loop ()
    | Some (Ev_timer (inc, tag), true, cur_inc) ->
        if inc = cur_inc then
          state := protocol.Sim.Runtime.on_timer ctx !state ~tag;
        loop ()
  in
  loop ()

let run cfg ~proposals protocol =
  if cfg.n <= 0 then invalid_arg "Threads_engine.run: n must be positive";
  if Array.length proposals <> cfg.n then
    invalid_arg "Threads_engine.run: proposals length differs from n";
  if cfg.delta <= 0. || cfg.duration <= 0. || cfg.ts < 0. then
    invalid_arg "Threads_engine.run: non-positive timing parameter";
  if cfg.pre_loss < 0. || cfg.pre_loss > 1. then
    invalid_arg "Threads_engine.run: pre_loss not in [0,1]";
  List.iter
    (fun f ->
      let t, p = match f with Crash (t, p) | Restart (t, p) -> (t, p) in
      if p < 0 || p >= cfg.n || t < 0. then
        invalid_arg "Threads_engine.run: bad fault spec")
    cfg.faults;
  let root = Sim.Prng.create cfg.seed in
  let sh =
    {
      cfg;
      mutex = Mutex.create ();
      conds = Array.init cfg.n (fun _ -> Condition.create ());
      mailboxes = Array.init cfg.n (fun _ -> Queue.create ());
      pending = [];
      stop = false;
      up = Array.make cfg.n true;
      incarnations = Array.make cfg.n 0;
      start = Unix.gettimeofday ();
      net_rng = Sim.Prng.split root;
      decisions = Array.make cfg.n None;
      sent = 0;
      delivered = 0;
      dropped = 0;
      violation = false;
      trace =
        Sim.Trace.create ~capacity:trace_capacity ~enabled:cfg.record_trace ();
      metrics = Sim.Registry.create ();
      next_msg_id = 0;
    }
  in
  Sim.Registry.inc sh.metrics "runs";
  let storage = Array.make cfg.n None in
  (* schedule the fault script *)
  locked sh (fun () ->
      List.iter
        (fun f ->
          match f with
          | Crash (t, p) -> enqueue_pending sh ~at:t ~dst:p Ev_crash
          | Restart (t, p) -> enqueue_pending sh ~at:t ~dst:p Ev_restart)
        cfg.faults);
  let proc_rngs = Array.init cfg.n (fun _ -> Sim.Prng.split root) in
  let router_thread = Thread.create (router sh) () in
  let msg_payload = protocol.Sim.Runtime.msg_payload in
  let proc_threads =
    Array.init cfg.n (fun p ->
        let ctx =
          make_ctx sh ~proposals ~proc_rng:proc_rngs.(p) ~storage ~msg_payload
            p
        in
        Thread.create (process_loop sh protocol ctx ~storage p) ())
  in
  (* Wait until every currently-up process decided (with no pending
     fault still to apply) or the deadline passes. *)
  let rec watch () =
    let all_decided =
      locked sh (fun () ->
          let pending_faults =
            List.exists
              (fun p ->
                match p.what with
                | Ev_crash | Ev_restart -> true
                | Ev_msg _ | Ev_timer _ -> false)
              sh.pending
          in
          (not pending_faults)
          && Array.for_all (( <> ) None) sh.decisions)
    in
    if (not all_decided) && now sh < cfg.duration then begin
      Thread.delay 0.005;
      watch ()
    end
  in
  watch ();
  locked sh (fun () ->
      sh.stop <- true;
      Array.iter Condition.signal sh.conds);
  Array.iter Thread.join proc_threads;
  Thread.join router_thread;
  {
    decisions = Array.copy sh.decisions;
    messages_sent = sh.sent;
    messages_delivered = sh.delivered;
    messages_dropped = sh.dropped;
    elapsed = now sh;
    agreement_violation = sh.violation;
    trace = sh.trace;
    metrics = sh.metrics;
  }
