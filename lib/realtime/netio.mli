(** Socket readiness and timers for the real-process cluster.

    A {!t} is a single-threaded [Unix.select] loop owning a set of
    nonblocking TCP connections, listeners, and one-shot closure
    timers.  Reads and writes are fully buffered: {!send} never blocks
    (bytes queue until the socket is writable), and incoming bytes
    accumulate in a per-connection buffer that the [on_data] callback
    consumes incrementally via {!input}/{!consume} — the natural shape
    for {!Smr.Wire}-framed traffic.

    This module is part of [lib/realtime], the only layer permitted to
    read the wall clock (lint R1); code above it takes time from
    {!now}/{!wall}. *)

type t

type conn

val create : unit -> t
(** Also ignores [SIGPIPE] process-wide: a peer that vanishes must
    surface as a closed connection, not a fatal signal. *)

val wall : unit -> float
(** Wall-clock seconds since the epoch (for trace stamps). *)

val resolve : string -> Unix.inet_addr
(** Numeric IPv4 literal or hostname (first address).  Raises
    [Not_found] when the name does not resolve. *)

val now : t -> float
(** Seconds since [create] — the loop's time base; timers use it. *)

val set_limits : t -> ?partial_timeout:float -> ?max_input:int -> unit -> unit
(** Connection hardening.  [partial_timeout] closes a connection whose
    unconsumed input has sat in the buffer for longer than that many
    seconds — a peer that sends 11 of 12 header bytes and stalls (or
    drip-feeds without ever completing a frame: arrival of more bytes
    does {e not} reset the clock, only consuming everything does).
    [max_input] closes a connection whose unconsumed input grows past
    that many bytes.  Omitted arguments disable the corresponding
    check; both default to off.  Drops are counted as
    [netio_partial_timeouts] / [netio_input_overflows] when a registry
    is attached via {!set_registry}.  Raises [Invalid_argument] on a
    non-positive timeout or bound. *)

val set_registry : t -> Sim.Registry.t -> unit
(** Attach a metrics registry; the loop increments [netio_*] counters
    ([netio_partial_timeouts], [netio_input_overflows],
    [netio_accept_backoffs]) as it drops connections or backs off a
    listener. *)

val listen :
  t -> host:string -> port:int -> on_accept:(conn -> unit) -> int
(** Bind and listen; returns the actual port (useful with [port:0]).
    Raises [Unix.Unix_error] if the bind fails. *)

val connect : t -> host:string -> port:int -> conn
(** Nonblocking connect.  The connection is usable immediately — writes
    buffer until the connect completes; a refused connect surfaces as
    [on_close]. *)

val set_callbacks :
  conn -> on_data:(conn -> unit) -> on_close:(conn -> unit) -> unit
(** [on_data] fires after new bytes were appended to the input buffer;
    [on_close] fires exactly once, on EOF, error, or {!close}. *)

val conn_id : conn -> int
(** Loop-unique id, for keying tables without physical equality. *)

val send : t -> conn -> Bytes.t -> unit
(** Queue bytes for writing; attempts an eager write when possible. *)

val send_buffer : t -> conn -> Buffer.t -> unit
(** [send] the current contents of a buffer (which is not cleared). *)

val enqueue : conn -> Bytes.t -> unit
(** Queue bytes without flushing, so many small frames coalesce into one
    [write].  Call {!flush} once the burst is assembled. *)

val flush : t -> conn -> unit
(** Flush any queued output now (no-op when the queue is empty). *)

val closing : conn -> bool
(** True once the connection has been closed (callbacks may race a
    close; check before continuing to consume input). *)

val input : conn -> Bytes.t * int * int
(** [(buf, pos, avail)] — the unconsumed input region.  Valid until the
    next loop iteration; decode from it, then {!consume}. *)

val consume : conn -> int -> unit
(** Discard [n] bytes from the front of the input region. *)

val close : t -> conn -> unit
(** Close now; pending unwritten output is dropped. *)

val after : t -> float -> (unit -> unit) -> unit
(** One-shot timer: run the closure [delay] seconds from now. *)

val every : t -> float -> (unit -> unit) -> unit
(** Periodic timer (re-arms itself after each firing). *)

val step : t -> float -> unit
(** One select iteration with the given timeout ceiling: fire due
    timers, poll readiness, dispatch callbacks. *)

val run : t -> unit
(** [step] until {!stop}. *)

val stop : t -> unit
(** Stop {!run} from any thread or signal handler (self-pipe wakeup). *)

val shutdown : t -> unit
(** Close every connection, listener, and the wakeup pipe. *)

(**/**)

module Private : sig
  (** Test hooks — not part of the public surface. *)

  val sabotage_listeners : t -> unit
  (** Make every listener's accept fail persistently (ENOTSOCK) while
      its fd stays readable, reproducing the fd-exhaustion shape that
      triggers accept backoff. *)

  val paused_listeners : t -> int
  (** Number of listeners currently inside their backoff window. *)
end
