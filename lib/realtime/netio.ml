(* Single-threaded Unix.select event loop: nonblocking TCP with
   buffered reads/writes, one-shot closure timers, and the wall clock.
   lib/realtime is the only layer allowed to read real time (lint R1);
   everything above gets time through [now]/[wall]. *)

type conn = {
  cid : int;
  fd : Unix.file_descr;
  mutable connected : bool;  (* false while a nonblocking connect pends *)
  mutable closing : bool;
  mutable inbuf : Bytes.t;
  mutable in_off : int;  (* first unconsumed byte *)
  mutable in_len : int;  (* end of valid data *)
  mutable stale_since : float;
      (* loop time at which the unconsumed input region became non-empty;
         -1 while it is empty.  Drip-feeding bytes without ever completing
         a frame does NOT reset it — only consuming everything does — so
         it bounds how long a partial frame may sit in the buffer. *)
  outq : Bytes.t Queue.t;
  mutable out_off : int;  (* offset into the head of [outq] *)
  mutable on_data : conn -> unit;
  mutable on_close : conn -> unit;
}

type listener = {
  lfd : Unix.file_descr;
  on_accept : conn -> unit;
  mutable pause_until : float;
      (* accept backoff deadline (loop time): after a persistent accept
         error (EMFILE/ENFILE/ECONNABORTED...) the listener fd stays
         readable, so polling it again immediately would spin select at
         100% CPU; keep it out of rfds until the deadline passes *)
}

type t = {
  mutable conns : conn list;
  mutable listeners : listener list;
  timers : (float * int * (unit -> unit)) Sim.Event_queue.t;
  mutable timer_seq : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable stopped : bool;
  mutable next_cid : int;
  t0 : float;
  mutable partial_timeout : float option;
      (* close a connection whose unconsumed input has sat for longer
         than this (a stalled peer holding a partial frame) *)
  mutable max_input : int option;
      (* close a connection whose unconsumed input grows past this *)
  mutable registry : Sim.Registry.t option;  (* netio_* drop counters *)
}

(* the realtime engine owns the wall clock: lib/realtime is R1-exempt
   by scope, so no sited allow is needed here *)
let wall () = Unix.gettimeofday ()

let timer_cmp (t1, s1, _) (t2, s2, _) =
  let c = Float.compare t1 t2 in
  if c <> 0 then c else Int.compare s1 s2

let create () =
  (* a write on a freshly closed peer socket must surface as EPIPE, not
     kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    conns = [];
    listeners = [];
    timers = Sim.Event_queue.create ~cmp:timer_cmp ();
    timer_seq = 0;
    wake_r;
    wake_w;
    stopped = false;
    next_cid = 0;
    t0 = wall ();
    partial_timeout = None;
    max_input = None;
    registry = None;
  }

let now t = wall () -. t.t0

let set_limits t ?partial_timeout ?max_input () =
  (match partial_timeout with
  | Some d when d <= 0. -> invalid_arg "Netio.set_limits: timeout <= 0"
  | Some _ | None -> ());
  (match max_input with
  | Some b when b < 1 -> invalid_arg "Netio.set_limits: max_input < 1"
  | Some _ | None -> ());
  t.partial_timeout <- partial_timeout;
  t.max_input <- max_input

let set_registry t reg = t.registry <- Some reg

let count t name =
  match t.registry with Some reg -> Sim.Registry.inc reg name | None -> ()

let conn_id c = c.cid

let after t delay fn =
  t.timer_seq <- t.timer_seq + 1;
  Sim.Event_queue.add t.timers (now t +. delay, t.timer_seq, fn)

let rec every t period fn =
  after t period (fun () ->
      fn ();
      every t period fn)

(* Best-effort: a stop racing the loop's own teardown may find the wake
   pipe already closed (EBADF) — the loop is gone either way. *)
let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let stop t =
  t.stopped <- true;
  wake t

let noop_data (_ : conn) = ()
let noop_close (_ : conn) = ()

let make_conn t fd ~connected =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  t.next_cid <- t.next_cid + 1;
  let c =
    {
      cid = t.next_cid;
      fd;
      connected;
      closing = false;
      inbuf = Bytes.create 4096;
      in_off = 0;
      in_len = 0;
      stale_since = -1.;
      outq = Queue.create ();
      out_off = 0;
      on_data = noop_data;
      on_close = noop_close;
    }
  in
  t.conns <- c :: t.conns;
  c

let set_callbacks c ~on_data ~on_close =
  c.on_data <- on_data;
  c.on_close <- on_close

let close t c =
  if not c.closing then begin
    c.closing <- true;
    t.conns <- List.filter (fun o -> o.cid <> c.cid) t.conns;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    c.on_close c
  end

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> raise Not_found
    | h -> h.Unix.h_addr_list.(0))

let listen t ~host ~port ~on_accept =
  let addr = Unix.ADDR_INET (resolve host, port) in
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.set_nonblock lfd;
  (try Unix.bind lfd addr
   with e ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen lfd 64;
  t.listeners <- { lfd; on_accept; pause_until = 0. } :: t.listeners;
  match Unix.getsockname lfd with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> port

let connect t ~host ~port =
  let addr = Unix.ADDR_INET (resolve host, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  let connected =
    try
      Unix.connect fd addr;
      true
    with
    | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> false
  in
  make_conn t fd ~connected

(* ---- buffered output ---- *)

let flush_out t c =
  if c.connected && not c.closing then
    try
      let progress = ref true in
      while !progress && not (Queue.is_empty c.outq) do
        let chunk = Queue.peek c.outq in
        let len = Bytes.length chunk - c.out_off in
        let n = Unix.write c.fd chunk c.out_off len in
        if n = len then begin
          ignore (Queue.pop c.outq);
          c.out_off <- 0
        end
        else begin
          c.out_off <- c.out_off + n;
          progress := false
        end
      done
    with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | Unix.Unix_error _ -> close t c

let send t c bytes =
  if not c.closing then begin
    Queue.add bytes c.outq;
    flush_out t c
  end

let send_buffer t c buf =
  if Buffer.length buf > 0 then send t c (Buffer.to_bytes buf)

(* Queue without flushing: lets a caller coalesce many small frames
   into one write.  Pair with [flush] once the burst is assembled. *)
let enqueue c bytes = if not c.closing then Queue.add bytes c.outq

let flush t c = if not (Queue.is_empty c.outq) then flush_out t c

let pending_out c = not (Queue.is_empty c.outq)

let closing c = c.closing

(* ---- buffered input ---- *)

let input c = (c.inbuf, c.in_off, c.in_len - c.in_off)

let consume c n =
  c.in_off <- c.in_off + n;
  if c.in_off >= c.in_len then begin
    c.in_off <- 0;
    c.in_len <- 0;
    c.stale_since <- -1.
  end
  else if c.in_off > 65536 then begin
    (* keep the live region anchored near the front so the buffer does
       not grow without bound under sustained pipelining *)
    Bytes.blit c.inbuf c.in_off c.inbuf 0 (c.in_len - c.in_off);
    c.in_len <- c.in_len - c.in_off;
    c.in_off <- 0
  end

let read_ready t c =
  let cap = Bytes.length c.inbuf in
  if cap - c.in_len < 4096 then begin
    let bigger = Bytes.create (max (cap * 2) (c.in_len + 65536)) in
    Bytes.blit c.inbuf 0 bigger 0 c.in_len;
    c.inbuf <- bigger
  end;
  match Unix.read c.fd c.inbuf c.in_len (Bytes.length c.inbuf - c.in_len) with
  | 0 -> close t c
  | n ->
      c.in_len <- c.in_len + n;
      c.on_data c;
      if not c.closing then begin
        let unconsumed = c.in_len - c.in_off in
        if unconsumed = 0 then c.stale_since <- -1.
        else begin
          if c.stale_since < 0. then c.stale_since <- now t;
          match t.max_input with
          | Some cap when unconsumed > cap ->
              (* the peer outran the decoder's appetite (or is feeding us
                 a frame the application refuses to consume): drop it
                 rather than buffering without bound *)
              count t "netio_input_overflows";
              close t c
          | Some _ | None -> ()
        end
      end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ -> close t c

let write_ready t c =
  if not c.connected then begin
    match Unix.getsockopt_error c.fd with
    | None ->
        c.connected <- true;
        flush_out t c
    | Some _ -> close t c
  end
  else flush_out t c

(* ---- the loop ---- *)

let run_due_timers t =
  let fired = ref true in
  while !fired do
    fired := false;
    match Sim.Event_queue.peek_min t.timers with
    | Some (due, _, _) when due <= now t -> (
        match Sim.Event_queue.pop_min t.timers with
        | Some (_, _, fn) ->
            fired := true;
            fn ()
        | None -> ())
    | Some _ | None -> ()
  done

let step t timeout =
  run_due_timers t;
  let timeout =
    match Sim.Event_queue.peek_min t.timers with
    | Some (due, _, _) -> Float.min timeout (Float.max 0. (due -. now t))
    | None -> timeout
  in
  let rfds =
    t.wake_r
    :: List.filter_map
         (fun l -> if l.pause_until <= now t then Some l.lfd else None)
         t.listeners
    @ List.filter_map
        (fun c -> if c.connected && not c.closing then Some c.fd else None)
        t.conns
  in
  let wfds =
    List.filter_map
      (fun c ->
        if c.closing then None
        else if (not c.connected) || pending_out c then Some c.fd
        else None)
      t.conns
  in
  match Unix.select rfds wfds [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | readable, writable, _ ->
      if List.memq t.wake_r readable then begin
        let junk = Bytes.create 64 in
        try
          while Unix.read t.wake_r junk 0 64 > 0 do
            ()
          done
        with Unix.Unix_error _ -> ()
      end;
      List.iter
        (fun l ->
          if List.memq l.lfd readable then
            let accepting = ref true in
            while !accepting do
              match Unix.accept ~cloexec:true l.lfd with
              | fd, _ ->
                  let c = make_conn t fd ~connected:true in
                  l.on_accept c
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                ->
                  accepting := false
              | exception Unix.Unix_error _ ->
                  (* persistent failure (e.g. fd exhaustion): the fd
                     stays readable, so back off instead of busy-spinning
                     through select *)
                  count t "netio_accept_backoffs";
                  l.pause_until <- now t +. 0.05;
                  accepting := false
            done)
        t.listeners;
      (* snapshot: callbacks may open or close connections *)
      let snapshot = t.conns in
      List.iter
        (fun c -> if (not c.closing) && List.memq c.fd writable then write_ready t c)
        snapshot;
      List.iter
        (fun c -> if (not c.closing) && List.memq c.fd readable then read_ready t c)
        snapshot;
      (match t.partial_timeout with
      | None -> ()
      | Some limit ->
          let deadline = now t -. limit in
          List.iter
            (fun c ->
              if
                (not c.closing)
                && c.stale_since >= 0.
                && c.stale_since < deadline
              then begin
                count t "netio_partial_timeouts";
                close t c
              end)
            t.conns);
      run_due_timers t

let run t =
  while not t.stopped do
    step t 0.1
  done

let shutdown t =
  List.iter (fun c -> close t c) t.conns;
  List.iter
    (fun l -> try Unix.close l.lfd with Unix.Unix_error _ -> ())
    t.listeners;
  t.listeners <- [];
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

module Private = struct
  (* Replace every listener fd with the read end of a pipe holding one
     unread byte: select reports it readable, accept fails with
     ENOTSOCK — a persistent error, which is exactly the shape of fd
     exhaustion — so the next [step] must take the backoff branch.
     dup2 keeps the fd *number* alive, so the loop's bookkeeping is
     untouched; only the kernel object behind it changes. *)
  let sabotage_listeners t =
    List.iter
      (fun l ->
        let r, w = Unix.pipe () in
        ignore (Unix.write w (Bytes.make 1 'x') 0 1);
        Unix.dup2 r l.lfd;
        Unix.close r;
        Unix.close w)
      t.listeners

  let paused_listeners t =
    List.length (List.filter (fun l -> l.pause_until > now t) t.listeners)
end
