(** A real-time, thread-based executor for the same protocol records the
    simulator runs.

    Where {!Sim.Engine} interprets a protocol over virtual time, this
    executor gives each process an OS thread, delivers messages through
    an in-memory router that imposes real (wall-clock) delays, and fires
    timers with [Thread.delay]-based scheduling.  Nothing about a
    protocol implementation changes: it receives the same
    {!Sim.Runtime.ctx} capabilities.

    The network model mirrors the simulator's eventual synchrony:
    before [ts] (seconds from the start of the run) messages are dropped
    with probability [pre_loss] or delayed up to [4 * delta]; from [ts]
    on, every message is delivered within [delta] (plus scheduler
    jitter — the router polls on a small quantum, so treat [delta] below
    a few milliseconds as unreliable on a loaded machine).

    Limitations compared to the simulator, by design: wall-clock runs
    are not reproducible and there are no drifting clocks ([rho = 0]).
    Tracing (when [record_trace] is set) goes into a {e bounded} ring of
    {!val:trace_capacity} entries, so long runs keep constant memory at
    the cost of losing the oldest events; entry times are wall-clock
    seconds from run start, and ordering carries scheduler jitter.  The
    executor exists to demonstrate — and test — that the protocol layer
    is not simulator-bound, not to replace the simulator for
    experiments. *)

type fault = Crash of float * int | Restart of float * int
    (** (wall-clock seconds from start, process) *)

type config = {
  n : int;
  delta : float;  (** post-[ts] delivery bound, seconds *)
  ts : float;  (** stabilization instant, seconds from run start *)
  duration : float;  (** hard stop, seconds *)
  pre_loss : float;  (** pre-[ts] drop probability, [0..1] *)
  seed : int64;  (** seeds the delay/loss draws *)
  faults : fault list;
      (** crash wipes volatile state and voids pending timers; restart
          resumes from the last [persist]ed state — same semantics as the
          simulator, on wall time *)
  record_trace : bool;
      (** record a bounded structured trace of the run *)
}

(** Ring-buffer bound for realtime traces (retained entries). *)
val trace_capacity : int

type result = {
  decisions : (float * int) option array;
      (** per process: (wall-clock seconds from run start, value) *)
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  elapsed : float;
  agreement_violation : bool;
  trace : Sim.Trace.t;
      (** bounded trace of the run (empty when [record_trace] is off) *)
  metrics : Sim.Registry.t;
      (** same counter/histogram names as the simulator's {!Sim.Engine} *)
}

(** [run cfg ~proposals protocol] blocks until every process has decided
    or [cfg.duration] elapses.  Raises [Invalid_argument] on a bad
    config. *)
val run :
  config ->
  proposals:int array ->
  ('msg, 'state) Sim.Runtime.protocol ->
  result
