open Consensus

type t =
  | First of { stamp : Logical_clock.stamp; round : int; value : Types.value }
  | Report of { round : int; value : Types.value }
  | Lock of { round : int; value : Types.value option }
  | Decision of { value : Types.value }

let round_of = function
  | First { round; _ } | Report { round; _ } | Lock { round; _ } -> Some round
  | Decision _ -> None

let info = function
  | First { stamp; round; value } ->
      Printf.sprintf "first(r%d,v%d,@%s)" round value
        (Format.asprintf "%a" Logical_clock.pp_stamp stamp)
  | Report { round; value } -> Printf.sprintf "report(r%d,v%d)" round value
  | Lock { round; value } -> (
      match value with
      | Some v -> Printf.sprintf "lock(r%d,v%d)" round v
      | None -> Printf.sprintf "lock(r%d,?)" round)
  | Decision { value } -> Printf.sprintf "decision(v%d)" value

let payload = function
  | First { stamp; round; value } ->
      Sim.Trace.payload ~round ~value
        ~detail:(Format.asprintf "@%a" Logical_clock.pp_stamp stamp)
        "first"
  | Report { round; value } -> Sim.Trace.payload ~round ~value "report"
  | Lock { round; value } -> (
      match value with
      | Some value -> Sim.Trace.payload ~round ~value "lock"
      | None -> Sim.Trace.payload ~round ~detail:"?" "lock")
  | Decision { value } -> Sim.Trace.payload ~value "decision"
