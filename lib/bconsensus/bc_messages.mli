(** Wire messages of the modified B-Consensus algorithm. *)

open Consensus

type t =
  | First of { stamp : Logical_clock.stamp; round : int; value : Types.value }
      (** stage 1, sent through the ordering oracle: the sender's current
          estimate, stamped with its logical clock *)
  | Report of { round : int; value : Types.value }
      (** stage 2a: the value of the first oracle-delivered [First] of
          this round *)
  | Lock of { round : int; value : Types.value option }
      (** stage 2b: [Some v] after collecting a majority of identical
          reports, [None] (the Ben-Or "?") otherwise *)
  | Decision of { value : Types.value }

(** Round carried by the message ([None] for [Decision]). *)
val round_of : t -> int option

(** One-line human-readable description. *)
val info : t -> string

(** Structured trace payload: kind ["first"]/["report"]/["lock"]/
    ["decision"] with round and value. *)
val payload : t -> Sim.Trace.payload
