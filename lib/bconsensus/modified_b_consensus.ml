open Consensus
module Engine = Sim.Engine

type tuning = {
  hold_back : float;
  epsilon : float;
  broadcast_decision : bool;
  jump : bool;
}

let default_tuning ~delta =
  {
    hold_back = 2. *. delta;
    epsilon = delta /. 4.;
    broadcast_decision = false;
    jump = true;
  }

let resend_tag = -1

let oracle_tag = -2

type config = { n : int; tuning : tuning; hold_local : float }

(* What we still retransmit about the round we most recently left, so
   that a process one round behind us can finish it.  (The paper notes
   the alternative — retransmitting *all* previous rounds — is
   unreasonable; one round back suffices because a process more than one
   round behind jumps instead.) *)
type prev_round = {
  pr_round : int;
  pr_first : Types.value option;
      (* the estimate we wabcast in that round — [None] if we entered it
         by jumping and so never contributed a First *)
  pr_report : Types.value option;
  pr_lock : Types.value option option;  (* None = never locked *)
}

type state = {
  cfg : config;
  round : int;
  est : Types.value;
  oracle : (int * Types.value) Ordering_oracle.t;
  (* first oracle-delivered First per round >= current round; the cache
     lets a process that jumps report immediately on round entry *)
  delivered_firsts : (int * Types.value) list;
  (* current-round stage bookkeeping *)
  first_sent : bool;
      (* whether we wabcast our estimate into this round: true when we
         entered it through the lock phase (or at boot), false when we
         jumped in *)
  reported : bool;
  stage2_value : Types.value option;  (* value we reported this round *)
  reports : (Types.proc_id * Types.value) list;
  locked : bool;
  lock_value : Types.value option;  (* what we locked, once [locked] *)
  locks : (Types.proc_id * Types.value option) list;
  history : prev_round list;
      (* rounds we have left, newest first.  With jumping on, only the
         newest entry is retransmitted (a process more than one round
         behind jumps); without jumping, every entry is — the cost the
         paper calls unreasonable, measured by experiment A3. *)
  decided : Types.value option;
}

let round st = st.round

let estimate st = st.est

let decided st = st.decided

let oracle_pending st = Ordering_oracle.pending_count st.oracle

let majority st = Quorum.majority st.cfg.n

(* Stage 1: push an estimate into the oracle stream (fresh stamp). *)
let wabcast ctx st ~round ~value =
  let oracle, stamp = Ordering_oracle.next_stamp st.oracle in
  Engine.broadcast ctx (Bc_messages.First { stamp; round; value });
  { st with oracle }

let record_decision ctx st v =
  Engine.decide ctx v;
  match st.decided with
  | Some _ -> st
  | None ->
      if st.cfg.tuning.broadcast_decision then
        Engine.broadcast ctx (Bc_messages.Decision { value = v });
      { st with decided = Some v }

(* Stage 2b: the first majority of reports determines our lock.  [Some v]
   needs every collected report equal to [v]; two conflicting [Some]
   locks are impossible in one round because each would need a majority
   of identical reports and every process reports once per round. *)
let maybe_lock ctx st =
  if st.locked || List.length st.reports < majority st then st
  else begin
    let lock_value =
      match st.reports with
      | [] -> None
      | (_, v0) :: rest ->
          if List.for_all (fun (_, v) -> v = v0) rest then Some v0 else None
    in
    Engine.broadcast ctx
      (Bc_messages.Lock { round = st.round; value = lock_value });
    { st with locked = true; lock_value }
  end

let rec enter_round ctx st r =
  assert (r > st.round);
  (* [r = st.round + 1] is round completion (the only call site is the
     lock phase); anything further is a jump. *)
  let jumped = r > st.round + 1 in
  let left =
    {
      pr_round = st.round;
      pr_first = (if st.first_sent then Some st.est else None);
      pr_report = (if st.reported then st.stage2_value else None);
      pr_lock = (if st.locked then Some st.lock_value else None);
    }
  in
  let history =
    if st.cfg.tuning.jump then [ left ] else left :: st.history
  in
  let st =
    {
      st with
      round = r;
      delivered_firsts =
        List.filter (fun (rr, _) -> rr >= r) st.delivered_firsts;
      first_sent = not jumped;
      reported = false;
      stage2_value = None;
      reports = [];
      locked = false;
      lock_value = None;
      locks = [];
      history;
    }
  in
  (* A jumper must not inject its estimate into a round it did not reach
     through the lock phase.  Once some round decides [v], every First
     of a later round carries [v] — that is the agreement induction —
     but a jumper's estimate predates the decision, and since stage 2
     reports echo whichever First the oracle delivers {e first}, a
     single stale First can win the round at every process and overturn
     the decided value.  Entering by completion is safe: stage 4 just
     set [est] from a lock majority that intersects every decision
     quorum.  The jumper still reports, locks and finishes the round —
     at which point its estimate is sanctioned and it speaks again. *)
  let st =
    if jumped then st else wabcast ctx st ~round:r ~value:st.est
  in
  (* A First of this round may already have been oracle-delivered while
     we were behind: report it now. *)
  maybe_report ctx st

and maybe_report ctx st =
  if st.reported then st
  else
    match List.assoc_opt st.round st.delivered_firsts with
    | None -> st
    | Some v ->
        let st = { st with reported = true; stage2_value = Some v } in
        Engine.broadcast ctx (Bc_messages.Report { round = st.round; value = v });
        maybe_lock ctx st

(* Lock-phase completion ends the round.  There is no other way to leave
   a round short of jumping: hearing a majority of locks *is* the
   paper's majority gate ("does not start round i+1 until a majority of
   the processes have begun round i"). *)
let maybe_finish_round ctx st =
  if List.length st.locks < majority st then st
  else begin
    let somes = List.filter_map snd st.locks in
    let st =
      match somes with
      | v :: _ when List.length somes = List.length st.locks ->
          (* every collected lock is [Some v]: decide *)
          record_decision ctx { st with est = v } v
      | v :: _ ->
          (* at least one lock: adopt it — if anyone decided this round,
             every majority of locks contains its value *)
          { st with est = v }
      | [] -> (
          (* nobody locked, so nobody decided this round: free to follow
             the oracle's suggestion, which converges after TS *)
          match st.stage2_value with
          | Some v -> { st with est = v }
          | None -> st)
    in
    enter_round ctx st (st.round + 1)
  end

(* Oracle delivery: the first round-[r] First delivered fixes the value
   this process reports in round [r] (cached if we are not there yet). *)
let on_oracle_delivery ctx st (r, v) =
  if r < st.round then st
  else begin
    let st =
      if List.mem_assoc r st.delivered_firsts then st
      else { st with delivered_firsts = (r, v) :: st.delivered_firsts }
    in
    (* Jump only when more than one round behind: a process exactly one
       round behind can still finish its round from in-flight and
       retransmitted messages (no loss after TS), and abandoning it
       would stall the processes that need our participation. *)
    if st.cfg.tuning.jump && r > st.round + 1 then enter_round ctx st r
    else maybe_report ctx st
  end

let drain_oracle ctx st =
  let oracle, ready =
    Ordering_oracle.due st.oracle ~now_local:(Engine.local_time ctx)
  in
  let st = { st with oracle } in
  List.fold_left
    (fun st (_stamp, payload) -> on_oracle_delivery ctx st payload)
    st ready

let handle_first ctx st stamp r v =
  let oracle, release_local =
    Ordering_oracle.receive st.oracle ~now_local:(Engine.local_time ctx)
      ~stamp (r, v)
  in
  let st = { st with oracle } in
  let delay = Float.max 0. (release_local -. Engine.local_time ctx) in
  Engine.set_timer ctx ~local_delay:delay ~tag:oracle_tag;
  (* Round jumping happens on *receipt* of a far-future-round message
     (the paper's modification); the payload itself still waits in the
     oracle. *)
  if st.cfg.tuning.jump && r > st.round + 1 then enter_round ctx st r else st

let handle_report ctx st ~src r v =
  if r <> st.round then st
  else if List.mem_assoc src st.reports then st
  else maybe_lock ctx { st with reports = (src, v) :: st.reports }

let handle_lock ctx st ~src r lv =
  if r <> st.round then st
  else if List.mem_assoc src st.locks then st
  else maybe_finish_round ctx { st with locks = (src, lv) :: st.locks }

let on_message_impl ctx st ~src msg =
  match msg with
  | Bc_messages.Decision { value } -> record_decision ctx st value
  | Bc_messages.First { stamp; round; value } ->
      handle_first ctx st stamp round value
  | Bc_messages.Report { round; value } ->
      let st =
        if st.cfg.tuning.jump && round > st.round + 1 then
          enter_round ctx st round
        else st
      in
      handle_report ctx st ~src round value
  | Bc_messages.Lock { round; value } ->
      let st =
        if st.cfg.tuning.jump && round > st.round + 1 then
          enter_round ctx st round
        else st
      in
      handle_lock ctx st ~src round value

let retransmit ctx st =
  (* Current round, every epsilon: processes silenced before TS complete
     the round within O(delta) of stabilization.  A jumper keeps its
     silence in stage 1 (see [enter_round]) — repeating its stale
     estimate here would reopen the same hole. *)
  let st =
    if st.first_sent then wabcast ctx st ~round:st.round ~value:st.est
    else st
  in
  (match st.stage2_value with
  | Some v when st.reported ->
      Engine.broadcast ctx (Bc_messages.Report { round = st.round; value = v })
  | _ -> ());
  if st.locked then
    Engine.broadcast ctx
      (Bc_messages.Lock { round = st.round; value = st.lock_value });
  (* Previous rounds too: with jumping, only the last one (a process one
     round behind can finish it; anyone further behind jumps); without
     jumping, all of them, since a straggler must execute every round. *)
  List.fold_left
    (fun st p ->
      let st =
        match p.pr_first with
        | Some v -> wabcast ctx st ~round:p.pr_round ~value:v
        | None -> st
      in
      (match p.pr_report with
      | Some v ->
          Engine.broadcast ctx
            (Bc_messages.Report { round = p.pr_round; value = v })
      | None -> ());
      (match p.pr_lock with
      | Some lv ->
          Engine.broadcast ctx
            (Bc_messages.Lock { round = p.pr_round; value = lv })
      | None -> ());
      st)
    st st.history

let on_timer_impl ctx st ~tag =
  if tag = oracle_tag then drain_oracle ctx st
  else if tag = resend_tag then begin
    (* Decided processes keep participating: with a bare majority alive,
       every remaining process's traffic is needed by the others. *)
    let st = retransmit ctx st in
    Engine.set_timer ctx ~local_delay:st.cfg.tuning.epsilon ~tag:resend_tag;
    st
  end
  else st

let initial_state ctx cfg =
  {
    cfg;
    round = 0;
    est = Engine.proposal ctx;
    oracle =
      Ordering_oracle.create ~owner:(Engine.self ctx)
        ~hold_local:cfg.hold_local;
    delivered_firsts = [];
    first_sent = true;
    reported = false;
    stage2_value = None;
    reports = [];
    locked = false;
    lock_value = None;
    locks = [];
    history = [];
    decided = None;
  }

let with_persist f ctx st =
  let st' = f ctx st in
  Engine.persist ctx st';
  st'

let protocol ?tuning ~n ~delta ~rho () =
  let tuning =
    match tuning with Some t -> t | None -> default_tuning ~delta
  in
  if tuning.hold_back < 0. then
    invalid_arg "Modified_b_consensus.protocol: negative hold-back";
  if tuning.epsilon <= 0. then
    invalid_arg "Modified_b_consensus.protocol: non-positive epsilon";
  if rho < 0. || rho >= 1. then
    invalid_arg "Modified_b_consensus.protocol: rho out of range";
  (* Local hold-back that guarantees >= hold_back real seconds under
     every admissible clock rate. *)
  let cfg = { n; tuning; hold_local = tuning.hold_back *. (1. +. rho) } in
  let boot ctx =
    let st = initial_state ctx cfg in
    Engine.set_timer ctx ~local_delay:tuning.epsilon ~tag:resend_tag;
    let st = wabcast ctx st ~round:0 ~value:st.est in
    Engine.persist ctx st;
    st
  in
  {
    Engine.name =
      (if tuning.jump then "modified-b-consensus"
       else "modified-b-consensus-nojump");
    on_boot = boot;
    on_message =
      (fun ctx st ~src msg ->
        with_persist (fun ctx st -> on_message_impl ctx st ~src msg) ctx st);
    on_timer =
      (fun ctx st ~tag ->
        with_persist (fun ctx st -> on_timer_impl ctx st ~tag) ctx st);
    on_restart =
      (fun ctx ~persisted ->
        match persisted with
        | None -> boot ctx
        | Some st ->
            Engine.set_timer ctx ~local_delay:tuning.epsilon ~tag:resend_tag;
            (* Whatever the oracle already held is re-examined shortly
               after the restart. *)
            Engine.set_timer ctx ~local_delay:cfg.hold_local ~tag:oracle_tag;
            Engine.persist ctx st;
            st);
    msg_payload = Bc_messages.payload;
  }
