type ('msg, 'state) ctx = {
  self : int;
  n : int;
  proposal : int;
  local_time : unit -> float;
  send : dst:int -> 'msg -> unit;
  broadcast : 'msg -> unit;
  set_timer : local_delay:float -> tag:int -> unit;
  persist : 'state -> unit;
  decide : int -> unit;
  has_decided : unit -> bool;
  rng : Prng.t;
  scratch : Scratch.t;
  note : string -> unit;
  count : string -> unit;
  oracle_time : unit -> Sim_time.t;
}

type ('msg, 'state) protocol = {
  name : string;
  on_boot : ('msg, 'state) ctx -> 'state;
  on_message : ('msg, 'state) ctx -> 'state -> src:int -> 'msg -> 'state;
  on_timer : ('msg, 'state) ctx -> 'state -> tag:int -> 'state;
  on_restart : ('msg, 'state) ctx -> persisted:'state option -> 'state;
  msg_payload : 'msg -> Trace.payload;
}
