(** Simulated stable storage.

    The paper's processes keep their protocol state in stable storage so
    that a restart "simply resumes where it left off".  The engine owns
    one slot per process; a crash wipes volatile state but leaves the
    slot intact, and a restart hands the last persisted value back to the
    protocol. *)

type 'a t

(** [create ~n] makes [n] empty slots, one per process. *)
val create : n:int -> 'a t

(** Overwrite the slot of [proc]. *)
val save : 'a t -> proc:int -> 'a -> unit

(** Last value saved by [proc], if any. *)
val load : 'a t -> proc:int -> 'a option

(** Number of processes that have persisted at least once. *)
val persisted_count : 'a t -> int
