type ('msg, 'state) protocol = ('msg, 'state) Runtime.protocol = {
  name : string;
  on_boot : ('msg, 'state) Runtime.ctx -> 'state;
  on_message :
    ('msg, 'state) Runtime.ctx -> 'state -> src:int -> 'msg -> 'state;
  on_timer : ('msg, 'state) Runtime.ctx -> 'state -> tag:int -> 'state;
  on_restart :
    ('msg, 'state) Runtime.ctx -> persisted:'state option -> 'state;
  msg_payload : 'msg -> Trace.payload;
}

type ('msg, 'state) ctx = ('msg, 'state) Runtime.ctx

(* Events are packed into the five int words of [Packed_queue]: the
   bit-cast fire time, an order word [(seq lsl kind_bits) lor kind]
   (so simultaneous events fire in scheduling order and the kind rides
   along for free), and three payload words:

     Deliver: f1 = src, f2 = dst, f3 = arena slot of the message
     Timer:   f1 = proc, f2 = incarnation at arming time, f3 = tag
     Fault:   f1 = proc, f2 = action (0 = crash, 1 = restart)

   Messages themselves live in a per-run arena ([arena_msgs] and
   friends): a slot is claimed per *sent* message, shared by all
   scheduled copies via a refcount, and recycled through a free list
   once the last copy leaves the queue — so a steady-state run touches a
   constant set of slots and the event loop allocates nothing. *)

let kind_bits = 2
let kind_mask = (1 lsl kind_bits) - 1
let kind_deliver = 0
let kind_timer = 1
let kind_fault = 2

type ('msg, 'state) t = {
  scenario : Scenario.t;
  protocol : ('msg, 'state) protocol;
  queue : Packed_queue.t;
  mutable now_key : int;  (* Sim_time.key_of_t of current time *)
  mutable next_seq : int;
  (* Message arena.  [arena_ids] holds the trace message id while a slot
     is live and the next-free link while it is on the free list; a
     freed slot keeps its last message reachable until reuse (bounded by
     arena size, which itself is bounded by peak in-flight messages). *)
  mutable arena_msgs : 'msg array;
  mutable arena_ids : int array;
  mutable arena_refs : int array;
  mutable arena_len : int;
  mutable free_head : int;  (* -1 = none *)
  net_env : Network.env;
  net_delays : Network.delays;
  states : 'state option array;  (* None = process down *)
  incarnations : int array;
  clocks : Clock.t array;
  storage : 'state Stable_storage.t;
  net_rng : Prng.t;
  proc_rngs : Prng.t array;
  decision_times : Sim_time.t option array;
  decision_values : int option array;
  trace : Trace.t;
  metrics : Registry.t;
  h_sent : Registry.handle;
  h_delivered : Registry.handle;
  h_dropped : Registry.handle;
  mutable next_msg_id : int;
  mutable ctxs : ('msg, 'state) ctx array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable pending_faults : int;
  mutable events_processed : int;
  mutable agreement_violation : (int * int * int * int) option;
  (* Incremental mirrors of the [states] / [decision_values] arrays so
     the stop test is O(1) per event instead of an O(N) rescan:
     [up_count] = processes with [states.(p) <> None];
     [undecided_up_count] = up processes that have not decided. *)
  mutable up_count : int;
  mutable undecided_up_count : int;
}

(* Local inline copies of the [Sim_time] key bit-casts.  The hot path
   must not call float-returning functions in other modules: under the
   dev profile cross-module calls are opaque (no inlining), so e.g. a
   [Sim_time.t_of_key] call would box its float result on every event.
   These bodies are pure externals, which stay direct in every profile;
   [Sim_time.key_of_t] documents the encoding. *)
let[@inline] key_of_time t =
  Int64.to_int (Int64.bits_of_float t) lxor Stdlib.min_int

let[@inline] time_of_key k =
  Int64.float_of_bits
    (Int64.logand (Int64.of_int (k lxor Stdlib.min_int)) Int64.max_int)

let[@inline] now eng = time_of_key eng.now_key

let negative_event_time () : int =
  invalid_arg "Engine: event time must be >= 0"

(* Bit-cast keys only order correctly for non-negative times; negative
   instants have no meaning in the model, so reject them loudly.  The
   [>=] comparison also rejects NaN. *)
let[@inline] key_of_event_time at =
  if at >= 0. then key_of_time at else negative_event_time ()

let schedule_packed eng ~key ~kind ~f1 ~f2 ~f3 =
  let seq = eng.next_seq in
  eng.next_seq <- seq + 1;
  Packed_queue.add eng.queue ~key
    ~ord:((seq lsl kind_bits) lor kind)
    ~f1 ~f2 ~f3

(* ------------------------------------------------------------------ *)
(* Message arena                                                       *)
(* ------------------------------------------------------------------ *)

let arena_grow eng filler =
  let cap = Array.length eng.arena_refs in
  let ncap = if cap = 0 then 64 else 2 * cap in
  let msgs = Array.make ncap filler in
  Array.blit eng.arena_msgs 0 msgs 0 cap;
  let ids = Array.make ncap 0 in
  Array.blit eng.arena_ids 0 ids 0 cap;
  let refs = Array.make ncap 0 in
  Array.blit eng.arena_refs 0 refs 0 cap;
  eng.arena_msgs <- msgs;
  eng.arena_ids <- ids;
  eng.arena_refs <- refs

let arena_alloc eng msg ~id ~refs =
  let slot =
    match eng.free_head with
    | -1 ->
        if eng.arena_len = Array.length eng.arena_refs then
          arena_grow eng msg;
        let s = eng.arena_len in
        eng.arena_len <- s + 1;
        s
    | s ->
        eng.free_head <- eng.arena_ids.(s);
        s
  in
  eng.arena_msgs.(slot) <- msg;
  eng.arena_ids.(slot) <- id;
  eng.arena_refs.(slot) <- refs;
  slot

let arena_release eng slot =
  let r = eng.arena_refs.(slot) - 1 in
  eng.arena_refs.(slot) <- r;
  if r = 0 then begin
    eng.arena_ids.(slot) <- eng.free_head;
    eng.free_head <- slot
  end

(* ------------------------------------------------------------------ *)
(* Context operations (thin wrappers over the closure record so that   *)
(* protocol code reads [Engine.send ctx ...])                          *)
(* ------------------------------------------------------------------ *)

let self (c : _ ctx) = c.Runtime.self

let n_processes (c : _ ctx) = c.Runtime.n

let proposal (c : _ ctx) = c.Runtime.proposal

let local_time (c : _ ctx) = c.Runtime.local_time ()

let send (c : _ ctx) ~dst msg = c.Runtime.send ~dst msg

let broadcast (c : _ ctx) msg = c.Runtime.broadcast msg

let set_timer (c : _ ctx) ~local_delay ~tag =
  c.Runtime.set_timer ~local_delay ~tag

let persist (c : _ ctx) st = c.Runtime.persist st

let decide (c : _ ctx) v = c.Runtime.decide v

let has_decided (c : _ ctx) = c.Runtime.has_decided ()

let rng (c : _ ctx) = c.Runtime.rng

let scratch (c : _ ctx) = c.Runtime.scratch

let note (c : _ ctx) text = c.Runtime.note text

let count (c : _ ctx) name = c.Runtime.count name

let oracle_time (c : _ ctx) = c.Runtime.oracle_time ()

(* ------------------------------------------------------------------ *)
(* Simulator implementations of the context capabilities               *)
(* ------------------------------------------------------------------ *)

let eng_send eng p ~dst msg =
  eng.sent <- eng.sent + 1;
  Registry.inc_handle eng.h_sent ~proc:p;
  let t = now eng in
  eng.net_env.Network.now <- t;
  let sc = eng.scenario in
  let copies =
    sc.Scenario.network.Network.decide_into eng.net_rng eng.net_env
      eng.net_delays ~src:p ~dst
  in
  if copies = 0 then begin
    eng.dropped <- eng.dropped + 1;
    Registry.inc_handle eng.h_dropped ~proc:dst;
    (* A dropped message only needs an id for its trace record. *)
    if Trace.enabled eng.trace then begin
      let id = eng.next_msg_id in
      eng.next_msg_id <- id + 1;
      Trace.record_drop eng.trace ~t ~id ~src:p ~dst
        (eng.protocol.msg_payload msg)
    end
  end
  else begin
    let id = eng.next_msg_id in
    eng.next_msg_id <- id + 1;
    if Trace.enabled eng.trace then
      Trace.record_send eng.trace ~t ~id ~src:p ~dst
        (eng.protocol.msg_payload msg);
    let slot = arena_alloc eng msg ~id ~refs:copies in
    let delays = eng.net_delays.Network.delays in
    for i = 0 to copies - 1 do
      schedule_packed eng
        ~key:(key_of_event_time (t +. delays.(i)))
        ~kind:kind_deliver ~f1:p ~f2:dst ~f3:slot
    done
  end

let eng_set_timer eng p ~local_delay ~tag =
  if local_delay < 0. then invalid_arg "Engine.set_timer: negative delay";
  let t = now eng in
  let fire_at = t +. Clock.global_duration eng.clocks.(p) local_delay in
  if Trace.enabled eng.trace then
    Trace.record_timer_set eng.trace ~t ~proc:p ~tag ~fire_at;
  schedule_packed eng ~key:(key_of_event_time fire_at) ~kind:kind_timer ~f1:p
    ~f2:eng.incarnations.(p) ~f3:tag

(* Counter maintenance: call [mark_up]/[mark_down] after/before every
   [None <-> Some] transition of [states.(p)]. *)
let mark_up eng p =
  eng.up_count <- eng.up_count + 1;
  if eng.decision_values.(p) = None then
    eng.undecided_up_count <- eng.undecided_up_count + 1

let mark_down eng p =
  eng.up_count <- eng.up_count - 1;
  if eng.decision_values.(p) = None then
    eng.undecided_up_count <- eng.undecided_up_count - 1

let eng_decide eng p v =
  match eng.decision_values.(p) with
  | Some _ -> ()
  | None ->
      if eng.states.(p) <> None then
        eng.undecided_up_count <- eng.undecided_up_count - 1;
      eng.decision_values.(p) <- Some v;
      eng.decision_times.(p) <- Some (now eng);
      Registry.inc eng.metrics ~proc:p "decisions";
      Registry.observe eng.metrics "decision_latency_delta"
        (Sim_time.diff (now eng) eng.scenario.Scenario.ts
        /. eng.scenario.Scenario.delta);
      Trace.record_decide eng.trace ~t:(now eng) ~proc:p ~value:v;
      (* Flag (but do not abort on) an agreement violation so that tests
         can surface a safety bug with the full trace in hand. *)
      if eng.agreement_violation = None then
        Array.iteri
          (fun q vq ->
            match vq with
            | Some vq when vq <> v && eng.agreement_violation = None ->
                eng.agreement_violation <- Some (p, v, q, vq)
            | _ -> ())
          eng.decision_values

let make_ctx eng p : _ ctx =
  let n = eng.scenario.Scenario.n in
  {
    Runtime.self = p;
    n;
    proposal = eng.scenario.Scenario.proposals.(p);
    local_time = (fun () -> Clock.local_of_global eng.clocks.(p) (now eng));
    send = (fun ~dst msg -> eng_send eng p ~dst msg);
    broadcast =
      (fun msg ->
        for dst = 0 to n - 1 do
          eng_send eng p ~dst msg
        done);
    set_timer =
      (fun ~local_delay ~tag -> eng_set_timer eng p ~local_delay ~tag);
    persist = (fun st -> Stable_storage.save eng.storage ~proc:p st);
    decide = (fun v -> eng_decide eng p v);
    has_decided =
      (fun () ->
        match eng.decision_values.(p) with Some _ -> true | None -> false);
    rng = eng.proc_rngs.(p);
    scratch = Scratch.create ();
    note = (fun text -> Trace.record_note eng.trace ~t:(now eng) ~proc:p text);
    count = (fun name -> Registry.inc eng.metrics ~proc:p name);
    oracle_time = (fun () -> now eng);
  }

(* ------------------------------------------------------------------ *)
(* Run loop                                                            *)
(* ------------------------------------------------------------------ *)

type 'state run_result = {
  scenario : Scenario.t;
  protocol_name : string;
  decision_times : Sim_time.t option array;
  decision_values : int option array;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  end_time : Sim_time.t;
  events_processed : int;
  trace : Trace.t;
  metrics : Registry.t;
  agreement_violation : (int * int * int * int) option;
  final_states : 'state option array;
}

let all_up_decided (eng : (_, _) t) =
  eng.up_count > 0 && eng.undecided_up_count = 0

let should_stop (eng : (_, _) t) =
  eng.scenario.Scenario.stop_on_all_decided
  && eng.pending_faults = 0
  && all_up_decided eng

let dispatch (eng : (_, _) t) ~kind ~f1 ~f2 ~f3 =
  eng.events_processed <- eng.events_processed + 1;
  if kind = kind_deliver then begin
    let src = f1 and dst = f2 and slot = f3 in
    let msg = eng.arena_msgs.(slot) in
    let id = eng.arena_ids.(slot) in
    arena_release eng slot;
    match eng.states.(dst) with
    | None ->
        (* Receiver is down: the message is lost on arrival. *)
        eng.dropped <- eng.dropped + 1;
        Registry.inc_handle eng.h_dropped ~proc:dst;
        if Trace.enabled eng.trace then
          Trace.record_drop eng.trace ~t:(now eng) ~id ~src ~dst
            (eng.protocol.msg_payload msg)
    | Some st ->
        eng.delivered <- eng.delivered + 1;
        Registry.inc_handle eng.h_delivered ~proc:dst;
        if Trace.enabled eng.trace then
          Trace.record_deliver eng.trace ~t:(now eng) ~id ~src ~dst
            (eng.protocol.msg_payload msg);
        let st' = eng.protocol.on_message eng.ctxs.(dst) st ~src msg in
        (* lint: allow R5 — same-object means the handler kept its state;
           skipping the store is the point, equal-but-rebuilt states may
           be stored redundantly and that is harmless *)
        if st' != st then eng.states.(dst) <- Some st'
  end
  else if kind = kind_timer then begin
    let proc = f1 and tag = f3 in
    (* A timer set before a crash is void: the incarnation moved on. *)
    if f2 = eng.incarnations.(proc) then
      match eng.states.(proc) with
      | None -> ()
      | Some st ->
          if Trace.enabled eng.trace then
            Trace.record_timer_fire eng.trace ~t:(now eng) ~proc ~tag;
          let st' = eng.protocol.on_timer eng.ctxs.(proc) st ~tag in
          (* lint: allow R5 — store avoidance, as in the deliver arm *)
          if st' != st then eng.states.(proc) <- Some st'
  end
  else begin
    let proc = f1 in
    eng.pending_faults <- eng.pending_faults - 1;
    if f2 = 0 then begin
      (* crash *)
      Trace.record_crash eng.trace ~t:(now eng) ~proc;
      if eng.states.(proc) <> None then mark_down eng proc;
      eng.states.(proc) <- None;
      eng.incarnations.(proc) <- eng.incarnations.(proc) + 1
    end
    else begin
      (* restart *)
      Trace.record_restart eng.trace ~t:(now eng) ~proc;
      eng.incarnations.(proc) <- eng.incarnations.(proc) + 1;
      let persisted = Stable_storage.load eng.storage ~proc in
      let was_up = eng.states.(proc) <> None in
      eng.states.(proc) <-
        Some (eng.protocol.on_restart eng.ctxs.(proc) ~persisted);
      if not was_up then mark_up eng proc
    end
  end

let run ?(injections = []) scenario protocol =
  (match Scenario.validate scenario with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.run: invalid scenario: " ^ msg));
  let n = scenario.Scenario.n in
  let root = Prng.create scenario.Scenario.seed in
  let net_rng = Prng.split root in
  let clock_rng = Prng.split root in
  let proc_rngs = Array.init n (fun _ -> Prng.split root) in
  let clocks =
    Array.init n (fun _ ->
        Clock.random clock_rng ~rho:scenario.Scenario.rho
          ~max_offset:scenario.Scenario.delta)
  in
  let metrics = Registry.create () in
  let eng =
    {
      scenario;
      protocol;
      queue = Packed_queue.create ();
      now_key = key_of_time Sim_time.zero;
      next_seq = 0;
      arena_msgs = [||];
      arena_ids = [||];
      arena_refs = [||];
      arena_len = 0;
      free_head = -1;
      net_env =
        Network.make_env ~now:Sim_time.zero ~ts:scenario.Scenario.ts
          ~delta:scenario.Scenario.delta;
      net_delays = Network.make_delays ();
      states = Array.make n None;
      incarnations = Array.make n 0;
      clocks;
      storage = Stable_storage.create ~n;
      net_rng;
      proc_rngs;
      decision_times = Array.make n None;
      decision_values = Array.make n None;
      trace =
        Trace.create
          ~capacity:scenario.Scenario.trace_capacity
          ~enabled:scenario.Scenario.record_trace ();
      metrics;
      h_sent = Registry.handle ~procs:n metrics "msgs_sent";
      h_delivered = Registry.handle ~procs:n metrics "msgs_delivered";
      h_dropped = Registry.handle ~procs:n metrics "msgs_dropped";
      next_msg_id = 0;
      ctxs = [||];
      sent = 0;
      delivered = 0;
      dropped = 0;
      pending_faults = 0;
      events_processed = 0;
      agreement_violation = None;
      up_count = 0;
      undecided_up_count = 0;
    }
  in
  eng.ctxs <- Array.init n (fun p -> make_ctx eng p);
  (* Fault script. *)
  List.iter
    (fun { Fault.at; proc; action } ->
      eng.pending_faults <- eng.pending_faults + 1;
      let act = match action with Fault.Crash -> 0 | Fault.Restart -> 1 in
      schedule_packed eng ~key:(key_of_event_time at) ~kind:kind_fault
        ~f1:proc ~f2:act ~f3:0)
    (Fault.sorted_events scenario.Scenario.faults);
  Registry.inc eng.metrics "runs";
  (* Injected in-flight messages (obsolete pre-TS traffic): no recorded
     origin, so they carry [Trace.no_origin] as their message id. *)
  List.iter
    (fun (at, src, dst, msg) ->
      let slot = arena_alloc eng msg ~id:Trace.no_origin ~refs:1 in
      schedule_packed eng ~key:(key_of_event_time at) ~kind:kind_deliver
        ~f1:src ~f2:dst ~f3:slot)
    injections;
  (* Boot initially-up processes. *)
  for p = 0 to n - 1 do
    if not (List.mem p scenario.Scenario.faults.Fault.initially_down) then begin
      eng.states.(p) <- Some (protocol.on_boot eng.ctxs.(p));
      mark_up eng p
    end
  done;
  (* Main loop: five int loads, an in-place heap pop, dispatch. *)
  let horizon_key = key_of_event_time scenario.Scenario.horizon in
  let q = eng.queue in
  let rec loop () =
    if (not (should_stop eng)) && Packed_queue.length q > 0 then begin
      let key = Packed_queue.min_key q in
      if key <= horizon_key then begin
        let ord = Packed_queue.min_ord q in
        let f1 = Packed_queue.min_f1 q in
        let f2 = Packed_queue.min_f2 q in
        let f3 = Packed_queue.min_f3 q in
        Packed_queue.drop_min q;
        if key > eng.now_key then eng.now_key <- key;
        dispatch eng ~kind:(ord land kind_mask) ~f1 ~f2 ~f3;
        loop ()
      end
    end
  in
  loop ();
  {
    scenario;
    protocol_name = protocol.name;
    decision_times = Array.copy eng.decision_times;
    decision_values = Array.copy eng.decision_values;
    messages_sent = eng.sent;
    messages_delivered = eng.delivered;
    messages_dropped = eng.dropped;
    end_time = now eng;
    events_processed = eng.events_processed;
    trace = eng.trace;
    metrics = eng.metrics;
    agreement_violation = eng.agreement_violation;
    final_states = Array.copy eng.states;
  }

(* ------------------------------------------------------------------ *)
(* Result helpers                                                      *)
(* ------------------------------------------------------------------ *)

let decisions r =
  let acc = ref [] in
  for p = Array.length r.decision_values - 1 downto 0 do
    match (r.decision_values.(p), r.decision_times.(p)) with
    | Some v, Some t -> acc := (p, t, v) :: !acc
    | _ -> ()
  done;
  !acc

let default_procs r =
  List.init (Array.length r.decision_values) (fun i -> i)

let last_decision_time ?procs r =
  let procs = match procs with Some ps -> ps | None -> default_procs r in
  List.fold_left
    (fun acc p ->
      match (acc, r.decision_times.(p)) with
      | Some worst, Some t -> Some (Sim_time.max worst t)
      | _, _ -> None)
    (Some Sim_time.zero)
    procs

let all_decided ?procs r =
  let procs = match procs with Some ps -> ps | None -> default_procs r in
  procs <> []
  && List.for_all (fun p -> r.decision_values.(p) <> None) procs
  && r.agreement_violation = None
