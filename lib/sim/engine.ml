type 'msg body =
  | Deliver of { src : int; dst : int; msg_id : int; msg : 'msg }
  | Timer of { proc : int; incarnation : int; tag : int }
  | Fault_action of { proc : int; action : Fault.action }

type 'msg event = { at : Sim_time.t; seq : int; body : 'msg body }

type ('msg, 'state) protocol = ('msg, 'state) Runtime.protocol = {
  name : string;
  on_boot : ('msg, 'state) Runtime.ctx -> 'state;
  on_message :
    ('msg, 'state) Runtime.ctx -> 'state -> src:int -> 'msg -> 'state;
  on_timer : ('msg, 'state) Runtime.ctx -> 'state -> tag:int -> 'state;
  on_restart :
    ('msg, 'state) Runtime.ctx -> persisted:'state option -> 'state;
  msg_payload : 'msg -> Trace.payload;
}

type ('msg, 'state) ctx = ('msg, 'state) Runtime.ctx

type ('msg, 'state) t = {
  scenario : Scenario.t;
  protocol : ('msg, 'state) protocol;
  queue : 'msg event Event_queue.t;
  mutable now : Sim_time.t;
  mutable next_seq : int;
  states : 'state option array;  (* None = process down *)
  incarnations : int array;
  clocks : Clock.t array;
  storage : 'state Stable_storage.t;
  net_rng : Prng.t;
  proc_rngs : Prng.t array;
  decision_times : Sim_time.t option array;
  decision_values : int option array;
  trace : Trace.t;
  metrics : Registry.t;
  mutable next_msg_id : int;
  mutable ctxs : ('msg, 'state) ctx array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable pending_faults : int;
  mutable events_processed : int;
  mutable agreement_violation : (int * int * int * int) option;
  (* Incremental mirrors of the [states] / [decision_values] arrays so
     the stop test is O(1) per event instead of an O(N) rescan:
     [up_count] = processes with [states.(p) <> None];
     [undecided_up_count] = up processes that have not decided. *)
  mutable up_count : int;
  mutable undecided_up_count : int;
}

(* Events are ordered by (time, insertion sequence): simultaneous events
   fire in the order they were scheduled, which makes runs deterministic. *)
let event_cmp a b =
  let c = Sim_time.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

let schedule eng ~at body =
  let ev = { at; seq = eng.next_seq; body } in
  eng.next_seq <- eng.next_seq + 1;
  Event_queue.add eng.queue ev

(* ------------------------------------------------------------------ *)
(* Context operations (thin wrappers over the closure record so that   *)
(* protocol code reads [Engine.send ctx ...])                          *)
(* ------------------------------------------------------------------ *)

let self (c : _ ctx) = c.Runtime.self

let n_processes (c : _ ctx) = c.Runtime.n

let proposal (c : _ ctx) = c.Runtime.proposal

let local_time (c : _ ctx) = c.Runtime.local_time ()

let send (c : _ ctx) ~dst msg = c.Runtime.send ~dst msg

let broadcast (c : _ ctx) msg = c.Runtime.broadcast msg

let set_timer (c : _ ctx) ~local_delay ~tag =
  c.Runtime.set_timer ~local_delay ~tag

let persist (c : _ ctx) st = c.Runtime.persist st

let decide (c : _ ctx) v = c.Runtime.decide v

let has_decided (c : _ ctx) = c.Runtime.has_decided ()

let rng (c : _ ctx) = c.Runtime.rng

let note (c : _ ctx) text = c.Runtime.note text

let count (c : _ ctx) name = c.Runtime.count name

let oracle_time (c : _ ctx) = c.Runtime.oracle_time ()

(* ------------------------------------------------------------------ *)
(* Simulator implementations of the context capabilities               *)
(* ------------------------------------------------------------------ *)

let eng_send eng p ~dst msg =
  let sc = eng.scenario in
  eng.sent <- eng.sent + 1;
  Registry.inc eng.metrics ~proc:p "msgs_sent";
  let payload () = eng.protocol.msg_payload msg in
  let fresh_id () =
    let id = eng.next_msg_id in
    eng.next_msg_id <- id + 1;
    id
  in
  match
    sc.Scenario.network.Network.decide eng.net_rng ~now:eng.now
      ~ts:sc.Scenario.ts ~delta:sc.Scenario.delta ~src:p ~dst
  with
  | Network.Drop ->
      eng.dropped <- eng.dropped + 1;
      Registry.inc eng.metrics ~proc:dst "msgs_dropped";
      if Trace.enabled eng.trace then
        Trace.record eng.trace
          (Trace.Drop
             { t = eng.now; id = fresh_id (); src = p; dst; payload = payload () })
  | Network.Deliver_after delay ->
      let id = fresh_id () in
      if Trace.enabled eng.trace then
        Trace.record eng.trace
          (Trace.Send { t = eng.now; id; src = p; dst; payload = payload () });
      schedule eng
        ~at:(Sim_time.add eng.now delay)
        (Deliver { src = p; dst; msg_id = id; msg })
  | Network.Deliver_copies delays ->
      let id = fresh_id () in
      if Trace.enabled eng.trace then
        Trace.record eng.trace
          (Trace.Send { t = eng.now; id; src = p; dst; payload = payload () });
      List.iter
        (fun delay ->
          schedule eng
            ~at:(Sim_time.add eng.now delay)
            (Deliver { src = p; dst; msg_id = id; msg }))
        delays

let eng_set_timer eng p ~local_delay ~tag =
  if local_delay < 0. then invalid_arg "Engine.set_timer: negative delay";
  let global_delay = Clock.global_duration eng.clocks.(p) local_delay in
  let fire_at = Sim_time.add eng.now global_delay in
  if Trace.enabled eng.trace then
    Trace.record eng.trace
      (Trace.Timer_set { t = eng.now; proc = p; tag; fire_at });
  schedule eng ~at:fire_at
    (Timer { proc = p; incarnation = eng.incarnations.(p); tag })

(* Counter maintenance: call [mark_up]/[mark_down] after/before every
   [None <-> Some] transition of [states.(p)]. *)
let mark_up eng p =
  eng.up_count <- eng.up_count + 1;
  if eng.decision_values.(p) = None then
    eng.undecided_up_count <- eng.undecided_up_count + 1

let mark_down eng p =
  eng.up_count <- eng.up_count - 1;
  if eng.decision_values.(p) = None then
    eng.undecided_up_count <- eng.undecided_up_count - 1

let eng_decide eng p v =
  match eng.decision_values.(p) with
  | Some _ -> ()
  | None ->
      if eng.states.(p) <> None then
        eng.undecided_up_count <- eng.undecided_up_count - 1;
      eng.decision_values.(p) <- Some v;
      eng.decision_times.(p) <- Some eng.now;
      Registry.inc eng.metrics ~proc:p "decisions";
      Registry.observe eng.metrics "decision_latency_delta"
        (Sim_time.diff eng.now eng.scenario.Scenario.ts
        /. eng.scenario.Scenario.delta);
      Trace.record eng.trace (Trace.Decide { t = eng.now; proc = p; value = v });
      (* Flag (but do not abort on) an agreement violation so that tests
         can surface a safety bug with the full trace in hand. *)
      if eng.agreement_violation = None then
        Array.iteri
          (fun q vq ->
            match vq with
            | Some vq when vq <> v && eng.agreement_violation = None ->
                eng.agreement_violation <- Some (p, v, q, vq)
            | _ -> ())
          eng.decision_values

let make_ctx eng p : _ ctx =
  let n = eng.scenario.Scenario.n in
  {
    Runtime.self = p;
    n;
    proposal = eng.scenario.Scenario.proposals.(p);
    local_time = (fun () -> Clock.local_of_global eng.clocks.(p) eng.now);
    send = (fun ~dst msg -> eng_send eng p ~dst msg);
    broadcast =
      (fun msg ->
        for dst = 0 to n - 1 do
          eng_send eng p ~dst msg
        done);
    set_timer =
      (fun ~local_delay ~tag -> eng_set_timer eng p ~local_delay ~tag);
    persist = (fun st -> Stable_storage.save eng.storage ~proc:p st);
    decide = (fun v -> eng_decide eng p v);
    has_decided = (fun () -> eng.decision_values.(p) <> None);
    rng = eng.proc_rngs.(p);
    note =
      (fun text ->
        Trace.record eng.trace (Trace.Note { t = eng.now; proc = p; text }));
    count = (fun name -> Registry.inc eng.metrics ~proc:p name);
    oracle_time = (fun () -> eng.now);
  }

(* ------------------------------------------------------------------ *)
(* Run loop                                                            *)
(* ------------------------------------------------------------------ *)

type 'state run_result = {
  scenario : Scenario.t;
  protocol_name : string;
  decision_times : Sim_time.t option array;
  decision_values : int option array;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  end_time : Sim_time.t;
  events_processed : int;
  trace : Trace.t;
  metrics : Registry.t;
  agreement_violation : (int * int * int * int) option;
  final_states : 'state option array;
}

let all_up_decided (eng : (_, _) t) =
  eng.up_count > 0 && eng.undecided_up_count = 0

let should_stop (eng : (_, _) t) =
  eng.scenario.Scenario.stop_on_all_decided
  && eng.pending_faults = 0
  && all_up_decided eng

let dispatch (eng : (_, _) t) ev =
  eng.events_processed <- eng.events_processed + 1;
  match ev.body with
  | Deliver { src; dst; msg_id; msg } -> (
      match eng.states.(dst) with
      | None ->
          (* Receiver is down: the message is lost on arrival. *)
          eng.dropped <- eng.dropped + 1;
          Registry.inc eng.metrics ~proc:dst "msgs_dropped";
          if Trace.enabled eng.trace then
            Trace.record eng.trace
              (Trace.Drop
                 {
                   t = eng.now;
                   id = msg_id;
                   src;
                   dst;
                   payload = eng.protocol.msg_payload msg;
                 })
      | Some st ->
          eng.delivered <- eng.delivered + 1;
          Registry.inc eng.metrics ~proc:dst "msgs_delivered";
          if Trace.enabled eng.trace then
            Trace.record eng.trace
              (Trace.Deliver
                 {
                   t = eng.now;
                   id = msg_id;
                   src;
                   dst;
                   payload = eng.protocol.msg_payload msg;
                 });
          eng.states.(dst) <-
            Some (eng.protocol.on_message eng.ctxs.(dst) st ~src msg))
  | Timer { proc; incarnation; tag } -> (
      (* A timer set before a crash is void: the incarnation moved on. *)
      if incarnation = eng.incarnations.(proc) then
        match eng.states.(proc) with
        | None -> ()
        | Some st ->
            if Trace.enabled eng.trace then
              Trace.record eng.trace
                (Trace.Timer_fire { t = eng.now; proc; tag });
            eng.states.(proc) <-
              Some (eng.protocol.on_timer eng.ctxs.(proc) st ~tag))
  | Fault_action { proc; action } -> (
      eng.pending_faults <- eng.pending_faults - 1;
      match action with
      | Fault.Crash ->
          Trace.record eng.trace (Trace.Crash { t = eng.now; proc });
          if eng.states.(proc) <> None then mark_down eng proc;
          eng.states.(proc) <- None;
          eng.incarnations.(proc) <- eng.incarnations.(proc) + 1
      | Fault.Restart ->
          Trace.record eng.trace (Trace.Restart { t = eng.now; proc });
          eng.incarnations.(proc) <- eng.incarnations.(proc) + 1;
          let persisted = Stable_storage.load eng.storage ~proc in
          let was_up = eng.states.(proc) <> None in
          eng.states.(proc) <-
            Some (eng.protocol.on_restart eng.ctxs.(proc) ~persisted);
          if not was_up then mark_up eng proc)

let run ?(injections = []) scenario protocol =
  (match Scenario.validate scenario with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.run: invalid scenario: " ^ msg));
  let n = scenario.Scenario.n in
  let root = Prng.create scenario.Scenario.seed in
  let net_rng = Prng.split root in
  let clock_rng = Prng.split root in
  let proc_rngs = Array.init n (fun _ -> Prng.split root) in
  let clocks =
    Array.init n (fun _ ->
        Clock.random clock_rng ~rho:scenario.Scenario.rho
          ~max_offset:scenario.Scenario.delta)
  in
  let eng =
    {
      scenario;
      protocol;
      queue = Event_queue.create ~cmp:event_cmp ();
      now = Sim_time.zero;
      next_seq = 0;
      states = Array.make n None;
      incarnations = Array.make n 0;
      clocks;
      storage = Stable_storage.create ~n;
      net_rng;
      proc_rngs;
      decision_times = Array.make n None;
      decision_values = Array.make n None;
      trace =
        Trace.create
          ~capacity:scenario.Scenario.trace_capacity
          ~enabled:scenario.Scenario.record_trace ();
      metrics = Registry.create ();
      next_msg_id = 0;
      ctxs = [||];
      sent = 0;
      delivered = 0;
      dropped = 0;
      pending_faults = 0;
      events_processed = 0;
      agreement_violation = None;
      up_count = 0;
      undecided_up_count = 0;
    }
  in
  eng.ctxs <- Array.init n (fun p -> make_ctx eng p);
  (* Fault script. *)
  List.iter
    (fun { Fault.at; proc; action } ->
      eng.pending_faults <- eng.pending_faults + 1;
      schedule eng ~at (Fault_action { proc; action }))
    (Fault.sorted_events scenario.Scenario.faults);
  Registry.inc eng.metrics "runs";
  (* Injected in-flight messages (obsolete pre-TS traffic): no recorded
     origin, so they carry [Trace.no_origin] as their message id. *)
  List.iter
    (fun (at, src, dst, msg) ->
      schedule eng ~at (Deliver { src; dst; msg_id = Trace.no_origin; msg }))
    injections;
  (* Boot initially-up processes. *)
  for p = 0 to n - 1 do
    if not (List.mem p scenario.Scenario.faults.Fault.initially_down) then begin
      eng.states.(p) <- Some (protocol.on_boot eng.ctxs.(p));
      mark_up eng p
    end
  done;
  (* Main loop. *)
  let rec loop () =
    if should_stop eng then ()
    else
      match Event_queue.peek_min eng.queue with
      | None -> ()
      | Some ev ->
          if ev.at > scenario.Scenario.horizon then ()
          else begin
            ignore (Event_queue.pop_min eng.queue);
            eng.now <- Sim_time.max eng.now ev.at;
            dispatch eng ev;
            loop ()
          end
  in
  loop ();
  {
    scenario;
    protocol_name = protocol.name;
    decision_times = Array.copy eng.decision_times;
    decision_values = Array.copy eng.decision_values;
    messages_sent = eng.sent;
    messages_delivered = eng.delivered;
    messages_dropped = eng.dropped;
    end_time = eng.now;
    events_processed = eng.events_processed;
    trace = eng.trace;
    metrics = eng.metrics;
    agreement_violation = eng.agreement_violation;
    final_states = Array.copy eng.states;
  }

(* ------------------------------------------------------------------ *)
(* Result helpers                                                      *)
(* ------------------------------------------------------------------ *)

let decisions r =
  let acc = ref [] in
  for p = Array.length r.decision_values - 1 downto 0 do
    match (r.decision_values.(p), r.decision_times.(p)) with
    | Some v, Some t -> acc := (p, t, v) :: !acc
    | _ -> ()
  done;
  !acc

let default_procs r =
  List.init (Array.length r.decision_values) (fun i -> i)

let last_decision_time ?procs r =
  let procs = match procs with Some ps -> ps | None -> default_procs r in
  List.fold_left
    (fun acc p ->
      match (acc, r.decision_times.(p)) with
      | Some worst, Some t -> Some (Sim_time.max worst t)
      | _, _ -> None)
    (Some Sim_time.zero)
    procs

let all_decided ?procs r =
  let procs = match procs with Some ps -> ps | None -> default_procs r in
  procs <> []
  && List.for_all (fun p -> r.decision_values.(p) <> None) procs
  && r.agreement_violation = None
