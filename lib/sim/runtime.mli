(** The capability record protocols run against.

    {!Engine} (the discrete-event simulator) and any other executor (for
    instance the thread-based real-time runner in [lib/realtime]) give
    protocols the same handle: a record of closures for sending, timing,
    persistence and deciding.  Protocol code never constructs one of
    these — it receives them from its executor and calls them through
    the convenience wrappers in {!Engine} — but executors do, which is
    why the record is public here. *)

type ('msg, 'state) ctx = {
  self : int;  (** this process's id, [0 .. n-1] *)
  n : int;  (** number of processes *)
  proposal : int;  (** this process's initial proposal value *)
  local_time : unit -> float;
      (** the process's own (possibly drifting) clock *)
  send : dst:int -> 'msg -> unit;
  broadcast : 'msg -> unit;  (** to every process, including self *)
  set_timer : local_delay:float -> tag:int -> unit;
  persist : 'state -> unit;  (** stable storage, survives crashes *)
  decide : int -> unit;
  has_decided : unit -> bool;
  rng : Prng.t;  (** per-process deterministic randomness *)
  scratch : Scratch.t;
      (** reusable per-process workspace for handler-local temporaries;
          see {!Scratch} for the aliasing rules *)
  note : string -> unit;  (** trace annotation; may be a no-op *)
  count : string -> unit;
      (** bump a named protocol counter in the run's metrics
          {!Registry} (attributed to [self]); may be a no-op *)
  oracle_time : unit -> Sim_time.t;
      (** real time — for modelling external oracles only, never for
          protocol logic *)
}

(** The protocol record all executors accept. *)
type ('msg, 'state) protocol = {
  name : string;
  on_boot : ('msg, 'state) ctx -> 'state;
  on_message : ('msg, 'state) ctx -> 'state -> src:int -> 'msg -> 'state;
  on_timer : ('msg, 'state) ctx -> 'state -> tag:int -> 'state;
  on_restart : ('msg, 'state) ctx -> persisted:'state option -> 'state;
  msg_payload : 'msg -> Trace.payload;
      (** structured trace payload for a wire message (kind, ballot,
          session, phase, round, value as applicable) *)
}
