(** Fixed-size worker pool over OCaml 5 domains.

    Built from the stdlib only ([Domain], [Mutex], [Condition]): worker
    domains are spawned once at {!create} and consume closures from a
    shared queue, so callers pay the domain-spawn cost once per pool, not
    once per task.

    The pool is designed for the simulator's sweep layer: every
    {!Engine.run} is a self-contained deterministic function of its
    scenario, so a sweep is an embarrassingly parallel [map] whose
    results are collected by submission index — {!map} returns results
    in input order regardless of which domain finished first. *)

type t

(** [create ~domains ()] spawns [domains - 1] worker domains; the
    calling domain is the remaining member — during {!map} it drains
    tasks alongside the workers, so [domains] domains compute in total.
    Sizing the pool ([Domain.recommended_domain_count]) is the caller's
    job.  A [domains] of 1 spawns nothing: {!map} then runs everything
    on the calling domain, which is the exact serial path.

    Raises [Invalid_argument] if [domains < 1]. *)
val create : domains:int -> unit -> t

(** The size the pool was created with (1 = serial). *)
val size : t -> int

(** [map pool f xs] applies [f] to every element of [xs] on the pool's
    domains and returns the results in the order of [xs].

    If one or more applications raise, [map] waits for the remaining
    tasks, then re-raises the exception of the {e lowest-index} failing
    element (deterministic regardless of scheduling).

    Nested calls — [f] itself calling [map] on the same pool — are safe:
    a caller drains the shared queue before blocking, so its subtasks
    run on itself at worst and the pool cannot deadlock. *)
val map : t -> ('a -> 'b) -> 'a list -> 'b list

(** Stops the workers and joins them.  Idempotent.  Outstanding {!map}
    calls must have returned; {!map} on a shut-down pool of any size
    runs serially on the caller (the queue is no longer consumed). *)
val shutdown : t -> unit
