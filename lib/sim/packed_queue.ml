(* Monotone min-priority queue of packed simulation events: a byte-radix
   heap over a pooled linked-node store.

   Ordering is lexicographic on [(key, ord)]:

   - [key] is the event's fire time, bit-cast by [Sim_time.key_of_t]
     (IEEE-754 bits of a non-negative double compare as its value);
   - [ord] breaks ties; the engine packs a monotone sequence number into
     its high bits, so simultaneous events fire in scheduling order.

   [f1]..[f3] are opaque payload words carried alongside.

   Discrete-event simulation never schedules into the past: every key
   added is >= the current minimum ([add] raises [Invalid_argument]
   otherwise).  That monotonicity admits a radix structure, which beats
   any comparison heap here — no O(log n) sift per operation, just O(1)
   bucket pushes and an amortized-constant redistribution.

   Layout.  Events are nodes in parallel int arrays (fields plus a
   [nxt] link), so moving an event between buckets is two stores — the
   five payload fields never move.  Buckets are singly-linked lists
   arranged in 8 levels of 256:

   - [last] is the floor: the key of the current minimum, advanced
     lazily.  Internally keys are compared through [ukey = key lxor
     min_int], which makes byte-wise (unsigned) bucket order agree with
     OCaml's signed int order.
   - An event with key [k] lives at level [j] = index of the highest
     byte in which [k] differs from [last] ([k lxor last] fits below
     [2^(8j+8)]), in bucket [byte j of ukey].  Everything in one bucket
     agrees with [last] above byte [j] and shares byte [j], so at level
     0 a bucket holds exactly one key value, and the global minimum is
     always in the lowest nonempty level's lowest nonempty bucket.
   - Popping with level 0 empty pulls the lowest nonempty bucket of the
     lowest nonempty level [j]: its (key, ord)-minimum becomes the new
     [last] and the bucket's events relink into levels [< j] (they all
     share byte [j] with the new [last]).  A bucket is pulled apart at
     most once per level per event, and for the clustered keys a
     simulation produces nearly every event goes straight to level 0
     and is never moved again.
   - Within level [j], later arrivals always land in buckets at or
     above [byte j of ulast], so a per-level cursor scans each level's
     256 bucket heads monotonically between pulls from higher levels.

   Hot paths are straight-line int arithmetic plus unsafe array traffic;
   every node index is below [hw] and every bucket index below 2048 by
   construction, and the public entry points check emptiness. *)

type t = {
  mutable last : int;  (* floor; no live key is below it *)
  mutable size : int;
  (* node pool: parallel fields plus free-list/bucket links *)
  mutable keys : int array;
  mutable ords : int array;
  mutable pf1 : int array;
  mutable pf2 : int array;
  mutable pf3 : int array;
  mutable nxt : int array;
  mutable hw : int;  (* nodes [0, hw) have been allocated at least once *)
  mutable free : int;  (* free-list head; -1 = none *)
  heads : int array;  (* 8 levels * 256 bucket list heads; -1 = empty *)
  counts : int array;  (* live events per level *)
  cur : int array;  (* per-level bucket scan cursor *)
  mutable min_node : int;  (* materialized minimum; -1 = unknown *)
  mutable min_prev : int;  (* its predecessor in the bucket list; -1 = head *)
}

let n_heads = 8 * 256

let create ?(capacity = 256) () =
  let cap = Stdlib.max capacity 16 in
  {
    last = Stdlib.min_int;
    size = 0;
    keys = Array.make cap 0;
    ords = Array.make cap 0;
    pf1 = Array.make cap 0;
    pf2 = Array.make cap 0;
    pf3 = Array.make cap 0;
    nxt = Array.make cap 0;
    hw = 0;
    free = -1;
    heads = Array.make n_heads (-1);
    counts = Array.make 8 0;
    cur = Array.make 8 0;
    min_node = -1;
    min_prev = -1;
  }

let length t = t.size

let is_empty t = t.size = 0

let clear t =
  Array.fill t.heads 0 n_heads (-1);
  Array.fill t.counts 0 8 0;
  Array.fill t.cur 0 8 0;
  t.hw <- 0;
  t.free <- -1;
  t.size <- 0;
  t.last <- Stdlib.min_int;
  t.min_node <- -1;
  t.min_prev <- -1

let grow_pool t =
  let cap = Array.length t.keys in
  let ncap = 2 * cap in
  let extend a =
    let b = Array.make ncap 0 in
    Array.blit a 0 b 0 cap;
    b
  in
  t.keys <- extend t.keys;
  t.ords <- extend t.ords;
  t.pf1 <- extend t.pf1;
  t.pf2 <- extend t.pf2;
  t.pf3 <- extend t.pf3;
  t.nxt <- extend t.nxt

(* Level of [x = key lxor last]: index of its highest nonzero byte.  An
   ascending compare ladder — simulation keys cluster near [last], so
   the first branch almost always takes.  Negative [x] means the top
   (sign) bit differs: level 7. *)
let[@inline] level_of x =
  if x < 0 then 7
  else if x < 0x100 then 0
  else if x < 0x10000 then 1
  else if x < 0x1000000 then 2
  else if x < 0x100000000 then 3
  else if x < 0x10000000000 then 4
  else if x < 0x1000000000000 then 5
  else if x < 0x100000000000000 then 6
  else 7

let add t ~key ~ord ~f1 ~f2 ~f3 =
  if key < t.last then
    invalid_arg "Packed_queue.add: key below the current minimum";
  let j = level_of (key lxor t.last) in
  let b = ((key lxor Stdlib.min_int) lsr (j lsl 3)) land 0xFF in
  let h = (j lsl 8) lor b in
  (* A key equal to the materialized minimum joins its bucket; the
     cached minimum may no longer be the ord-smallest, so rescan. *)
  if j = 0 && b = Array.unsafe_get t.cur 0 then t.min_node <- -1;
  let n =
    match t.free with
    | -1 ->
        if t.hw = Array.length t.keys then grow_pool t;
        let n = t.hw in
        t.hw <- n + 1;
        n
    | n ->
        t.free <- Array.unsafe_get t.nxt n;
        n
  in
  Array.unsafe_set t.keys n key;
  Array.unsafe_set t.ords n ord;
  Array.unsafe_set t.pf1 n f1;
  Array.unsafe_set t.pf2 n f2;
  Array.unsafe_set t.pf3 n f3;
  Array.unsafe_set t.nxt n (Array.unsafe_get t.heads h);
  Array.unsafe_set t.heads h n;
  Array.unsafe_set t.counts j (Array.unsafe_get t.counts j + 1);
  t.size <- t.size + 1

(* Level 0 is empty but the queue is not: pull apart the lowest
   nonempty bucket of the lowest nonempty level.  Its minimum becomes
   the new [last]; every event of the bucket relinks strictly below
   level [j] (all of them now agree with [last] on byte [j] and above),
   so this terminates and amortizes. *)
let pull_up t =
  let j = ref 1 in
  while Array.unsafe_get t.counts !j = 0 do
    incr j
  done;
  let j = !j in
  let base = j lsl 8 in
  let b = ref (Array.unsafe_get t.cur j) in
  while Array.unsafe_get t.heads (base lor !b) < 0 do
    incr b
  done;
  let h = base lor !b in
  let keys = t.keys
  and ords = t.ords
  and nxt = t.nxt
  and heads = t.heads
  and counts = t.counts in
  (* (key, ord)-minimum of the bucket *)
  let head = Array.unsafe_get heads h in
  let m = ref head in
  let mk = ref (Array.unsafe_get keys head) in
  let n = ref (Array.unsafe_get nxt head) in
  while !n >= 0 do
    let k = Array.unsafe_get keys !n in
    if
      k < !mk
      || k = !mk
         && Array.unsafe_get ords !n < Array.unsafe_get ords !m
    then begin
      m := !n;
      mk := k
    end;
    n := Array.unsafe_get nxt !n
  done;
  let last = !mk in
  t.last <- last;
  let ulast = last lxor Stdlib.min_int in
  for i = 0 to j - 1 do
    Array.unsafe_set t.cur i ((ulast lsr (i lsl 3)) land 0xFF)
  done;
  Array.unsafe_set t.cur j (!b + 1);
  (* Relink every event of the bucket at its new, strictly lower
     level. *)
  let n = ref head in
  let moved = ref 0 in
  while !n >= 0 do
    let node = !n in
    n := Array.unsafe_get nxt node;
    let k = Array.unsafe_get keys node in
    let i = level_of (k lxor last) in
    let b' = ((k lxor Stdlib.min_int) lsr (i lsl 3)) land 0xFF in
    let h' = (i lsl 8) lor b' in
    Array.unsafe_set nxt node (Array.unsafe_get heads h');
    Array.unsafe_set heads h' node;
    Array.unsafe_set counts i (Array.unsafe_get counts i + 1);
    incr moved
  done;
  Array.unsafe_set heads h (-1);
  Array.unsafe_set counts j (Array.unsafe_get counts j - !moved)

(* Materialize the minimum: afterwards [min_node] is the ord-minimum of
   the level-0 bucket at the cursor, all of whose keys equal [t.last]
   (the floor advances to the materialized minimum — sound, because
   buckets only depend on the bytes of [last] at or above their level,
   and only byte 0 changes here). *)
let[@inline never] refresh t =
  if Array.unsafe_get t.counts 0 = 0 then pull_up t;
  let heads = t.heads
  and ords = t.ords
  and nxt = t.nxt in
  let c = ref (Array.unsafe_get t.cur 0) in
  while Array.unsafe_get heads !c < 0 do
    incr c
  done;
  Array.unsafe_set t.cur 0 !c;
  let head = Array.unsafe_get heads !c in
  let m = ref head in
  let mp = ref (-1) in
  let prev = ref head in
  let n = ref (Array.unsafe_get nxt head) in
  while !n >= 0 do
    if Array.unsafe_get ords !n < Array.unsafe_get ords !m then begin
      m := !n;
      mp := !prev
    end;
    prev := !n;
    n := Array.unsafe_get nxt !n
  done;
  t.min_node <- !m;
  t.min_prev <- !mp;
  t.last <- Array.unsafe_get t.keys !m

let[@inline] ensure t = if t.min_node < 0 then refresh t

let min_key t =
  if t.size = 0 then invalid_arg "Packed_queue.min_key: empty queue";
  ensure t;
  t.last

let min_ord t =
  if t.size = 0 then invalid_arg "Packed_queue.min_ord: empty queue";
  ensure t;
  Array.unsafe_get t.ords t.min_node

let min_f1 t =
  if t.size = 0 then invalid_arg "Packed_queue.min_f1: empty queue";
  ensure t;
  Array.unsafe_get t.pf1 t.min_node

let min_f2 t =
  if t.size = 0 then invalid_arg "Packed_queue.min_f2: empty queue";
  ensure t;
  Array.unsafe_get t.pf2 t.min_node

let min_f3 t =
  if t.size = 0 then invalid_arg "Packed_queue.min_f3: empty queue";
  ensure t;
  Array.unsafe_get t.pf3 t.min_node

let drop_min t =
  if t.size = 0 then invalid_arg "Packed_queue.drop_min: empty queue";
  ensure t;
  let n = t.min_node in
  let succ = Array.unsafe_get t.nxt n in
  (match t.min_prev with
  | -1 -> Array.unsafe_set t.heads (Array.unsafe_get t.cur 0) succ
  | p -> Array.unsafe_set t.nxt p succ);
  Array.unsafe_set t.nxt n t.free;
  t.free <- n;
  Array.unsafe_set t.counts 0 (Array.unsafe_get t.counts 0 - 1);
  t.size <- t.size - 1;
  t.min_node <- -1;
  t.min_prev <- -1
