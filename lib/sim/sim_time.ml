type t = float

let zero = 0.

let infinity = Float.infinity

let add t d = t +. d

let diff a b = a -. b

let compare = Float.compare

let min = Float.min

let max = Float.max

let is_finite t = Float.is_finite t

(* Non-negative IEEE-754 doubles order the same as their bit patterns,
   so an instant can be carried as an immediate int (no float box) on
   the engine's hot path.  The sign bit of a non-negative double is 0,
   so the bit pattern is a 63-bit unsigned value and the [Int64.to_int]
   truncation is lossless — but patterns with bit 62 set (all doubles
   >= 2.0) would read as negative OCaml ints, so we flip bit 62
   ([lxor min_int]) to turn the unsigned-63 ordering into the native
   signed ordering. *)
let[@inline] key_of_t t = Int64.to_int (Int64.bits_of_float t) lxor Stdlib.min_int

let[@inline] t_of_key k =
  Int64.float_of_bits
    (Int64.logand (Int64.of_int (k lxor Stdlib.min_int)) Int64.max_int)

let in_window t ~lo ~hi = lo <= t && t <= hi

let to_string t =
  if not (Float.is_finite t) then "inf" else Printf.sprintf "%.6fs" t

let pp fmt t = Format.pp_print_string fmt (to_string t)
