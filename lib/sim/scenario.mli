(** Scenario: the full description of one execution.

    A scenario pins down everything the engine needs — process count,
    stabilization time [ts], delivery bound [delta], clock drift [rho],
    seed, network policy, fault script, proposals — so that a run is a
    deterministic function of the scenario alone. *)

type t = {
  name : string;
  n : int;  (** number of processes, ids [0 .. n-1] *)
  ts : Sim_time.t;  (** stabilization time TS *)
  delta : float;  (** post-TS delivery bound, seconds *)
  rho : float;  (** clock rate error, [0 <= rho < 1] *)
  seed : int64;
  horizon : Sim_time.t;  (** hard stop for the event loop *)
  network : Network.t;
  faults : Fault.t;
  proposals : int array;  (** initial value of each process *)
  stop_on_all_decided : bool;
      (** stop once every currently-up process has decided and no fault
          event is pending *)
  record_trace : bool;
  trace_capacity : int;
      (** retained-entry bound for the trace ring buffer; [0] =
          unbounded (see {!Trace.create}) *)
}

(** [make ~n ()] builds a scenario with sane defaults: [ts = 0.],
    [delta = 0.01], [rho = 0.], seed 1, horizon [1000 * delta] after
    [ts], synchronous-after-ts network, no faults, proposals
    [100 + i], early stop on decision, no trace (unbounded when on). *)
val make :
  ?name:string ->
  ?ts:Sim_time.t ->
  ?delta:float ->
  ?rho:float ->
  ?seed:int64 ->
  ?horizon:Sim_time.t ->
  ?network:Network.t ->
  ?faults:Fault.t ->
  ?proposals:int array ->
  ?stop_on_all_decided:bool ->
  ?record_trace:bool ->
  ?trace_capacity:int ->
  n:int ->
  unit ->
  t

(** Check internal consistency: [n > 0], [delta > 0],
    [trace_capacity >= 0], [rho] in [[0,1)], [ts >= 0],
    [horizon > ts] (a run must extend past stabilization), proposals
    length [n], fault-script validity ({!Fault.validate}), and no fault
    event scheduled past [horizon]. *)
val validate : t -> (unit, string) result

(** Same scenario, different seed — the unit of statistical replication. *)
val with_seed : t -> int64 -> t

val pp : Format.formatter -> t -> unit
