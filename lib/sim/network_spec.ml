type t =
  | Eventually_synchronous of { pre_loss : float; pre_delay_max : float option }
  | Always_synchronous
  | Silent_until_ts
  | Deterministic_after_ts
  | Partitioned_until_ts of int list list
  | With_duplication of { prob : float; base : t }
  | With_reordering of { window : float; base : t }

let rec compile = function
  | Eventually_synchronous { pre_loss; pre_delay_max } ->
      Network.eventually_synchronous ~pre_loss ?pre_delay_max ()
  | Always_synchronous -> Network.always_synchronous
  | Silent_until_ts -> Network.silent_until_ts
  | Deterministic_after_ts -> Network.deterministic_after_ts
  | Partitioned_until_ts groups -> Network.partitioned_until_ts groups
  | With_duplication { prob; base } ->
      Network.with_duplication ~prob (compile base)
  | With_reordering { window; base } ->
      Network.with_reordering ~window (compile base)

let name spec = (compile spec).Network.name

let rec validate = function
  | Eventually_synchronous { pre_loss; pre_delay_max } ->
      if pre_loss < 0. || pre_loss > 1. then
        Error "network: pre_loss not in [0,1]"
      else if
        match pre_delay_max with Some d -> d < 0. | None -> false
      then Error "network: negative pre_delay_max"
      else Ok ()
  | Always_synchronous | Silent_until_ts | Deterministic_after_ts -> Ok ()
  | Partitioned_until_ts groups ->
      if List.exists (List.exists (fun p -> p < 0)) groups then
        Error "network: negative process id in partition group"
      else Ok ()
  | With_duplication { prob; base } ->
      if prob < 0. || prob > 1. then Error "network: dup prob not in [0,1]"
      else validate base
  | With_reordering { window; base } ->
      if window < 0. then Error "network: negative reordering window"
      else validate base

let rec complexity = function
  | Always_synchronous -> 0
  | Silent_until_ts | Deterministic_after_ts -> 1
  | Eventually_synchronous _ -> 2
  | Partitioned_until_ts groups -> 1 + List.length groups
  | With_duplication { base; _ } | With_reordering { base; _ } ->
      1 + complexity base

(* Strictly simpler candidates, most aggressive first: the shrinker
   tries them in order and keeps the first that still reproduces. *)
let rec shrink = function
  | Always_synchronous -> []
  | Silent_until_ts | Deterministic_after_ts -> [ Always_synchronous ]
  | Eventually_synchronous { pre_loss; pre_delay_max } ->
      [ Always_synchronous; Silent_until_ts ]
      @ (if pre_loss > 0. then
           [ Eventually_synchronous { pre_loss = 0.; pre_delay_max } ]
         else [])
      @
      if pre_delay_max <> None then
        [ Eventually_synchronous { pre_loss; pre_delay_max = None } ]
      else []
  | Partitioned_until_ts groups ->
      Always_synchronous
      :: List.map
           (fun dropped ->
             Partitioned_until_ts
               (List.filteri (fun i _ -> i <> dropped) groups))
           (List.init (List.length groups) Fun.id)
  | With_duplication { prob; base } ->
      (* unwrap first, then simplify underneath *)
      base
      :: List.map (fun b -> With_duplication { prob; base = b }) (shrink base)
  | With_reordering { window; base } ->
      base
      :: List.map (fun b -> With_reordering { window; base = b }) (shrink base)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let rec to_json = function
  | Eventually_synchronous { pre_loss; pre_delay_max } ->
      Json.Obj
        ([ ("kind", Json.Str "eventually-synchronous");
           ("pre_loss", Json.float pre_loss);
         ]
        @
        match pre_delay_max with
        | Some d -> [ ("pre_delay_max", Json.float d) ]
        | None -> [])
  | Always_synchronous -> Json.Obj [ ("kind", Json.Str "always-synchronous") ]
  | Silent_until_ts -> Json.Obj [ ("kind", Json.Str "silent-until-ts") ]
  | Deterministic_after_ts ->
      Json.Obj [ ("kind", Json.Str "deterministic-after-ts") ]
  | Partitioned_until_ts groups ->
      Json.Obj
        [
          ("kind", Json.Str "partitioned-until-ts");
          ( "groups",
            Json.Arr
              (List.map (fun g -> Json.Arr (List.map Json.int g)) groups) );
        ]
  | With_duplication { prob; base } ->
      Json.Obj
        [
          ("kind", Json.Str "with-duplication");
          ("prob", Json.float prob);
          ("base", to_json base);
        ]
  | With_reordering { window; base } ->
      Json.Obj
        [
          ("kind", Json.Str "with-reordering");
          ("window", Json.float window);
          ("base", to_json base);
        ]

let ( let* ) = Result.bind

let rec of_json j =
  let* kind = Result.bind (Json.member "kind" j) Json.to_string in
  match kind with
  | "eventually-synchronous" ->
      let* pre_loss = Result.bind (Json.member "pre_loss" j) Json.to_float in
      let* pre_delay_max =
        match Json.member_opt "pre_delay_max" j with
        | None -> Ok None
        | Some v -> Result.map Option.some (Json.to_float v)
      in
      Ok (Eventually_synchronous { pre_loss; pre_delay_max })
  | "always-synchronous" -> Ok Always_synchronous
  | "silent-until-ts" -> Ok Silent_until_ts
  | "deterministic-after-ts" -> Ok Deterministic_after_ts
  | "partitioned-until-ts" ->
      let* groups = Result.bind (Json.member "groups" j) Json.to_list in
      let* groups =
        List.fold_left
          (fun acc g ->
            let* acc = acc in
            let* items = Json.to_list g in
            let* ids =
              List.fold_left
                (fun acc p ->
                  let* acc = acc in
                  let* p = Json.to_int p in
                  Ok (p :: acc))
                (Ok []) items
            in
            Ok (List.rev ids :: acc))
          (Ok []) groups
      in
      Ok (Partitioned_until_ts (List.rev groups))
  | "with-duplication" ->
      let* prob = Result.bind (Json.member "prob" j) Json.to_float in
      let* base = Result.bind (Json.member "base" j) of_json in
      Ok (With_duplication { prob; base })
  | "with-reordering" ->
      let* window = Result.bind (Json.member "window" j) Json.to_float in
      let* base = Result.bind (Json.member "base" j) of_json in
      Ok (With_reordering { window; base })
  | k -> Error (Printf.sprintf "unknown network kind %S" k)

let pp fmt spec = Format.pp_print_string fmt (name spec)

let rec equal a b =
  match (a, b) with
  | ( Eventually_synchronous { pre_loss = l1; pre_delay_max = d1 },
      Eventually_synchronous { pre_loss = l2; pre_delay_max = d2 } ) ->
      Float.equal l1 l2 && Option.equal Float.equal d1 d2
  | Always_synchronous, Always_synchronous
  | Silent_until_ts, Silent_until_ts
  | Deterministic_after_ts, Deterministic_after_ts ->
      true
  | Partitioned_until_ts g1, Partitioned_until_ts g2 ->
      List.equal (List.equal Int.equal) g1 g2
  | ( With_duplication { prob = p1; base = b1 },
      With_duplication { prob = p2; base = b2 } ) ->
      Float.equal p1 p2 && equal b1 b2
  | ( With_reordering { window = w1; base = b1 },
      With_reordering { window = w2; base = b2 } ) ->
      Float.equal w1 w2 && equal b1 b2
  | _ -> false
