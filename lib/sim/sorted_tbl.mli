(** Deterministic [Hashtbl] snapshots: sort the bindings by key before
    anything observes the order.

    This is the one module allowed to iterate a [Hashtbl] directly
    (lint rule R3); everywhere else, iteration-order nondeterminism
    must go through these sorted snapshots.  The comparison is a
    required argument so call sites stay monomorphic (lint rule R6).

    Tables that hold several bindings for one key (via [Hashtbl.add]
    shadowing) snapshot all of them, in unspecified relative order —
    use [Hashtbl.replace] tables with these helpers. *)

val bindings :
  compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings, sorted by key. *)

val keys : compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** All keys, sorted. *)

val iter :
  compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter ~compare f tbl]: [f] over the sorted bindings. *)

val fold :
  compare:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** [fold ~compare f tbl init]: left fold over the sorted bindings. *)
