(** Purely functional pairing heap, used as the simulator's event queue.

    Pairing heaps give O(1) insert and amortised O(log n) delete-min,
    which matches the event-queue access pattern (many inserts, one pop
    per step).  The heap is a min-heap with respect to the comparison
    supplied at creation; ties are resolved by the comparison itself, so
    callers that need deterministic FIFO order must fold a sequence
    number into their element type. *)

type 'a t

(** The empty heap ordered by [cmp]. *)
val empty : cmp:('a -> 'a -> int) -> 'a t

val is_empty : 'a t -> bool

(** Number of elements; O(1). *)
val size : 'a t -> int

(** [insert h x] is [h] with [x] added; O(1), persistent. *)
val insert : 'a t -> 'a -> 'a t

(** Smallest element, if any, without removing it. *)
val peek_min : 'a t -> 'a option

(** Smallest element and the remaining heap. *)
val pop_min : 'a t -> ('a * 'a t) option

(** [of_list ~cmp xs] builds a heap from [xs]. *)
val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

(** Pops everything; returns elements in ascending order. *)
val to_sorted_list : 'a t -> 'a list
