(** Named counters and fixed-bucket histograms, one registry per run.

    The engine maintains one registry per simulated run (counting
    messages sent/delivered/dropped per process, decisions, and the
    decision-latency histogram in units of [delta]); protocols add their
    own counters through [Runtime.ctx.count].

    A registry is mutated from a single domain — each simulated run is
    sequential — and aggregated across [Domain_pool] workers with
    {!merge_into} on the caller's domain, so no internal locking is
    needed or provided.  Callers that share one accumulator across
    domains (e.g. the experiment harness) must guard {!merge_into} with
    their own mutex. *)

type t

val create : unit -> t

(** [inc t name] bumps counter [name] by [by] (default 1); [?proc]
    additionally attributes the increment to that process id (negative
    ids are counted in the total only). *)
val inc : ?proc:int -> ?by:int -> t -> string -> unit

(** A pre-resolved counter.  {!inc} performs a [Hashtbl] lookup (and an
    [option] allocation) per call; hot paths resolve the counter once
    with {!handle} and bump it with {!inc_handle}, which allocates
    nothing. *)
type handle

(** [handle ?procs t name] resolves (creating if needed) counter [name].
    [procs] pre-sizes the per-process array for ids [0..procs-1] so
    later increments never grow it. *)
val handle : ?procs:int -> t -> string -> handle

(** [inc_handle h ~proc] bumps the counter by 1, attributing to [proc]
    unless [proc] is negative.  Allocation-free once the per-process
    array covers [proc]. *)
val inc_handle : handle -> proc:int -> unit

(** Total for a counter; [0] if it was never incremented. *)
val counter_total : t -> string -> int

(** Per-process totals for a counter (a fresh array indexed by process
    id; may be shorter than [n] if high ids never incremented). *)
val counter_per_proc : t -> string -> int array

(** Decision-latency bucket bounds in [delta] units: 1, 2, 4, ... 100. *)
val default_latency_buckets : float array

(** [observe t name v] adds sample [v] to histogram [name], creating it
    with [?buckets] (default {!default_latency_buckets}) on first use.
    [buckets] are strictly-increasing upper bounds; samples above the
    last bound land in an overflow bucket. *)
val observe : ?buckets:float array -> t -> string -> float -> unit

val histogram_count : t -> string -> int

val histogram_mean : t -> string -> float option

(** [quantile t name q] estimates the [q]-quantile as the upper bound of
    the bucket containing the rank-[ceil q*n] sample.  [None] if the
    histogram is absent or empty. *)
val quantile : t -> string -> float -> float option

(** [merge_into ~dst src] adds all of [src]'s counters and histograms
    into [dst].  Histograms merge bucket-wise; merging two histograms of
    the same name with different bucket arrays raises
    [Invalid_argument]. *)
val merge_into : dst:t -> t -> unit

(** Drop all counters and histograms. *)
val reset : t -> unit

(** All counters as [(name, total)], sorted by name (deterministic). *)
val counters : t -> (string * int) list

(** All histograms as [(name, sample_count, sum)], sorted by name. *)
val histograms : t -> (string * int * float) list

(** Render as a single JSON object
    [{"counters":{...},"histograms":{...}}] with keys sorted, suitable
    for embedding in [BENCH_RESULTS.json]. *)
val to_json : t -> string

val pp : Format.formatter -> t -> unit
