type action = Crash | Restart

type event = { at : Sim_time.t; proc : int; action : action }

type t = { initially_down : int list; events : event list }

let none = { initially_down = []; events = [] }

let make ?(initially_down = []) events = { initially_down; events }

let crash ~at proc = { at; proc; action = Crash }

let restart ~at proc = { at; proc; action = Restart }

let crash_then_restart ~crash_at ~restart_at proc =
  if restart_at < crash_at then
    invalid_arg "Fault.crash_then_restart: restart before crash";
  make [ crash ~at:crash_at proc; restart ~at:restart_at proc ]

let union a b =
  {
    initially_down =
      List.sort_uniq Int.compare (a.initially_down @ b.initially_down);
    events = a.events @ b.events;
  }

let sorted_events t =
  List.stable_sort (fun a b -> Sim_time.compare a.at b.at) t.events

let alive_at t ~proc ~time =
  let initial = not (List.mem proc t.initially_down) in
  List.fold_left
    (fun alive e ->
      if e.proc = proc && e.at <= time then
        match e.action with Crash -> false | Restart -> true
      else alive)
    initial (sorted_events t)

let alive_set t ~n ~time =
  List.filter
    (fun p -> alive_at t ~proc:p ~time)
    (List.init n (fun i -> i))

let validate ~n t =
  let check_id p = p >= 0 && p < n in
  if not (List.for_all check_id t.initially_down) then
    Error "initially_down contains an out-of-range process id"
  else if not (List.for_all (fun e -> check_id e.proc) t.events) then
    Error "event refers to an out-of-range process id"
  else if List.exists (fun e -> e.at < 0.) t.events then
    Error "event scheduled at negative time"
  else
    let ok = ref (Ok ()) in
    for p = 0 to n - 1 do
      let up = ref (not (List.mem p t.initially_down)) in
      List.iter
        (fun e ->
          if e.proc = p then
            match e.action with
            | Crash ->
                if not !up then
                  ok := Error (Printf.sprintf "process %d crashed while down" p)
                else up := false
            | Restart ->
                if !up then
                  ok :=
                    Error (Printf.sprintf "process %d restarted while up" p)
                else up := true)
        (sorted_events t)
    done;
    !ok
