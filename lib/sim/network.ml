type decision = Drop | Deliver_after of float | Deliver_copies of float list

type t = {
  name : string;
  decide :
    Prng.t ->
    now:Sim_time.t ->
    ts:Sim_time.t ->
    delta:float ->
    src:int ->
    dst:int ->
    decision;
}

let min_delay_factor = 0.05

(* Post-stabilization delay: the paper only gives the upper bound delta.
   Drawing from [min_delay_factor * delta, delta] keeps deliveries
   strictly positive (so the event loop always advances) while exercising
   the full admissible range.  Self-addressed messages model local
   handoff and take the minimum delay, matching the proof's implicit
   assumption that a process "has" its own message immediately. *)
let stable_delay rng ~delta ~src ~dst =
  if src = dst then min_delay_factor *. delta
  else Prng.float_range rng (min_delay_factor *. delta) delta

let eventually_synchronous ?(pre_loss = 0.5) ?pre_delay_max () =
  if pre_loss < 0. || pre_loss > 1. then
    invalid_arg "Network.eventually_synchronous: pre_loss not in [0,1]";
  let decide rng ~now ~ts ~delta ~src ~dst =
    if now >= ts then Deliver_after (stable_delay rng ~delta ~src ~dst)
    else if Prng.bool rng pre_loss then Drop
    else
      let max_delay =
        match pre_delay_max with Some d -> d | None -> 4. *. delta
      in
      Deliver_after (Prng.float_range rng (min_delay_factor *. delta) max_delay)
  in
  { name = "eventually-synchronous"; decide }

let always_synchronous =
  let decide rng ~now:_ ~ts:_ ~delta ~src ~dst =
    Deliver_after (stable_delay rng ~delta ~src ~dst)
  in
  { name = "always-synchronous"; decide }

let silent_until_ts =
  let decide rng ~now ~ts ~delta ~src ~dst =
    if now >= ts then Deliver_after (stable_delay rng ~delta ~src ~dst)
    else Drop
  in
  { name = "silent-until-ts"; decide }

let deterministic_after_ts =
  let decide _rng ~now ~ts ~delta ~src ~dst =
    if now < ts then Drop
    else if src = dst then Deliver_after (min_delay_factor *. delta)
    else Deliver_after delta
  in
  { name = "deterministic-after-ts"; decide }

let partitioned_until_ts groups =
  (* Precomputed at construction: [decide] runs once per message, and a
     [List.mem] scan over the groups there is O(N) on the hot path. *)
  let max_id =
    List.fold_left (List.fold_left Stdlib.max) (-1) groups
  in
  let table = Array.make (max_id + 1) Int.min_int in
  List.iteri
    (fun i g ->
      List.iter
        (fun p -> if p >= 0 && table.(p) = Int.min_int then table.(p) <- i)
        g)
    groups;
  let group_of p =
    if p >= 0 && p <= max_id && table.(p) <> Int.min_int then table.(p)
    else -1 - p (* unique negative id: isolated *)
  in
  let decide rng ~now ~ts ~delta ~src ~dst =
    if now >= ts || group_of src = group_of dst then
      Deliver_after (stable_delay rng ~delta ~src ~dst)
    else Drop
  in
  { name = "partitioned-until-ts"; decide }

let with_duplication ~prob base =
  if prob < 0. || prob > 1. then
    invalid_arg "Network.with_duplication: prob not in [0,1]";
  let decide rng ~now ~ts ~delta ~src ~dst =
    match base.decide rng ~now ~ts ~delta ~src ~dst with
    | Drop -> Drop
    | Deliver_copies _ as d -> d
    | Deliver_after d when Prng.bool rng prob ->
        (* the duplicate takes its own admissible delay *)
        let extra =
          if now >= ts then stable_delay rng ~delta ~src ~dst
          else Prng.float_range rng (min_delay_factor *. delta) (4. *. delta)
        in
        Deliver_copies [ d; extra ]
    | Deliver_after _ as d -> d
  in
  { name = base.name ^ "+dup"; decide }

let with_reordering ~window base =
  if window < 0. then invalid_arg "Network.with_reordering: negative window";
  let jitter rng d = d +. Prng.float rng window in
  let decide rng ~now ~ts ~delta ~src ~dst =
    match base.decide rng ~now ~ts ~delta ~src ~dst with
    | d when now >= ts -> d
    | Drop -> Drop
    | Deliver_after d -> Deliver_after (jitter rng d)
    | Deliver_copies ds -> Deliver_copies (List.map (jitter rng) ds)
  in
  { name = base.name ^ "+reorder"; decide }

let with_hook ~name base hook =
  let decide rng ~now ~ts ~delta ~src ~dst =
    match hook ~now ~ts ~delta ~src ~dst with
    | Some d -> d
    | None -> base.decide rng ~now ~ts ~delta ~src ~dst
  in
  { name; decide }
