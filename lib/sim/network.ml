type decision = Drop | Deliver_after of float | Deliver_copies of float list

type env = { mutable now : Sim_time.t; ts : Sim_time.t; delta : float }

let make_env ~now ~ts ~delta = { now; ts; delta }

type delays = { mutable delays : float array }

let make_delays () = { delays = Array.make 8 0. }

let ensure_delays b k =
  if Array.length b.delays < k then begin
    let nbuf = Array.make (Stdlib.max k (2 * Array.length b.delays)) 0. in
    Array.blit b.delays 0 nbuf 0 (Array.length b.delays);
    b.delays <- nbuf
  end

let[@inline] delay b i = b.delays.(i)

type t = {
  name : string;
  decide :
    Prng.t ->
    now:Sim_time.t ->
    ts:Sim_time.t ->
    delta:float ->
    src:int ->
    dst:int ->
    decision;
  decide_into : Prng.t -> env -> delays -> src:int -> dst:int -> int;
}

(* [decide] is derived from [decide_into]: the policies are written
   against the scratch buffer (so the engine's send path moves floats
   through a flat array instead of allocating a [decision] per message)
   and the variant API survives as a convenience for tests and
   experiment probes.  A copy count of 1 renders as [Deliver_after],
   matching what every pre-scratch policy produced. *)
let of_into name decide_into =
  let decide rng ~now ~ts ~delta ~src ~dst =
    let env = { now; ts; delta } in
    let b = make_delays () in
    match decide_into rng env b ~src ~dst with
    | 0 -> Drop
    | 1 -> Deliver_after b.delays.(0)
    | k -> Deliver_copies (List.init k (Array.get b.delays))
  in
  { name; decide; decide_into }

let min_delay_factor = 0.05

(* Post-stabilization delay: the paper only gives the upper bound delta.
   Drawing from [min_delay_factor * delta, delta] keeps deliveries
   strictly positive (so the event loop always advances) while exercising
   the full admissible range.  Self-addressed messages model local
   handoff and take the minimum delay, matching the proof's implicit
   assumption that a process "has" its own message immediately. *)
let stable_delay rng ~delta ~src ~dst =
  if src = dst then min_delay_factor *. delta
  else Prng.float_range rng (min_delay_factor *. delta) delta

let eventually_synchronous ?(pre_loss = 0.5) ?pre_delay_max () =
  if pre_loss < 0. || pre_loss > 1. then
    invalid_arg "Network.eventually_synchronous: pre_loss not in [0,1]";
  let decide_into rng env b ~src ~dst =
    if env.now >= env.ts then begin
      b.delays.(0) <- stable_delay rng ~delta:env.delta ~src ~dst;
      1
    end
    else if Prng.bool rng pre_loss then 0
    else begin
      let max_delay =
        match pre_delay_max with Some d -> d | None -> 4. *. env.delta
      in
      b.delays.(0) <-
        Prng.float_range rng (min_delay_factor *. env.delta) max_delay;
      1
    end
  in
  of_into "eventually-synchronous" decide_into

let always_synchronous =
  let decide_into rng env b ~src ~dst =
    b.delays.(0) <- stable_delay rng ~delta:env.delta ~src ~dst;
    1
  in
  of_into "always-synchronous" decide_into

let silent_until_ts =
  let decide_into rng env b ~src ~dst =
    if env.now >= env.ts then begin
      b.delays.(0) <- stable_delay rng ~delta:env.delta ~src ~dst;
      1
    end
    else 0
  in
  of_into "silent-until-ts" decide_into

let deterministic_after_ts =
  let decide_into _rng env b ~src ~dst =
    if env.now < env.ts then 0
    else begin
      b.delays.(0) <-
        (if src = dst then min_delay_factor *. env.delta else env.delta);
      1
    end
  in
  of_into "deterministic-after-ts" decide_into

let partitioned_until_ts groups =
  (* Precomputed at construction: [decide] runs once per message, and a
     [List.mem] scan over the groups there is O(N) on the hot path. *)
  let max_id =
    List.fold_left (List.fold_left Stdlib.max) (-1) groups
  in
  let table = Array.make (max_id + 1) Int.min_int in
  List.iteri
    (fun i g ->
      List.iter
        (fun p -> if p >= 0 && table.(p) = Int.min_int then table.(p) <- i)
        g)
    groups;
  let group_of p =
    if p >= 0 && p <= max_id && table.(p) <> Int.min_int then table.(p)
    else -1 - p (* unique negative id: isolated *)
  in
  let decide_into rng env b ~src ~dst =
    if env.now >= env.ts || group_of src = group_of dst then begin
      b.delays.(0) <- stable_delay rng ~delta:env.delta ~src ~dst;
      1
    end
    else 0
  in
  of_into "partitioned-until-ts" decide_into

let with_duplication ~prob base =
  if prob < 0. || prob > 1. then
    invalid_arg "Network.with_duplication: prob not in [0,1]";
  let decide_into rng env b ~src ~dst =
    match base.decide_into rng env b ~src ~dst with
    | 1 when Prng.bool rng prob ->
        (* the duplicate takes its own admissible delay *)
        let extra =
          if env.now >= env.ts then stable_delay rng ~delta:env.delta ~src ~dst
          else
            Prng.float_range rng (min_delay_factor *. env.delta)
              (4. *. env.delta)
        in
        ensure_delays b 2;
        b.delays.(1) <- extra;
        2
    | k -> k
  in
  of_into (base.name ^ "+dup") decide_into

let with_reordering ~window base =
  if window < 0. then invalid_arg "Network.with_reordering: negative window";
  let decide_into rng env b ~src ~dst =
    let k = base.decide_into rng env b ~src ~dst in
    if env.now >= env.ts then k
    else begin
      for i = 0 to k - 1 do
        b.delays.(i) <- b.delays.(i) +. Prng.float rng window
      done;
      k
    end
  in
  of_into (base.name ^ "+reorder") decide_into

let with_hook ~name base hook =
  let decide_into rng env b ~src ~dst =
    match hook ~now:env.now ~ts:env.ts ~delta:env.delta ~src ~dst with
    | Some Drop -> 0
    | Some (Deliver_after d) ->
        b.delays.(0) <- d;
        1
    | Some (Deliver_copies ds) ->
        let k = List.length ds in
        ensure_delays b k;
        List.iteri (fun i d -> b.delays.(i) <- d) ds;
        k
    | None -> base.decide_into rng env b ~src ~dst
  in
  of_into name decide_into
