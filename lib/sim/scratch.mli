(** Per-process reusable workspaces for handler-local bookkeeping.

    Every {!Runtime.ctx} carries one scratch.  Handlers may use it for
    temporaries that do not outlive the current event — quorum tallies,
    per-peer tables, note text — so the steady-state path reuses one
    allocation instead of building fresh arrays and strings per event.

    Rules: never store scratch (or anything aliasing it) in protocol
    state — states must stay immutable snapshots — and never hold a
    scratch array across a call that might use the same scratch. *)

type t

val create : unit -> t

(** [ints t n] is a reusable array of length >= [n] with arbitrary
    (stale) contents; [cleared_ints t n] zeroes the first [n] slots.
    The same storage is returned on every call, grown as needed. *)
val ints : t -> int -> int array

val cleared_ints : t -> int -> int array

val floats : t -> int -> float array

val cleared_floats : t -> int -> float array

(** An emptied reusable buffer for building note/label text. *)
val buffer : t -> Buffer.t
