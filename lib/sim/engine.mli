(** Discrete-event simulation engine.

    The engine runs one consensus protocol over one {!Scenario.t}.  It is
    polymorphic in the protocol's message and state types: a protocol is
    a record of pure-ish transition functions that receive a context
    handle ([ctx]) through which they send messages, set timers, persist
    state and announce decisions.  Handlers execute atomically at an
    instant of virtual time — processing cost is absorbed into message
    delay, exactly as in the paper's model.

    Determinism: executions are a pure function of the scenario.  All
    randomness flows from the scenario seed; simultaneous events are
    ordered by a monotone sequence number.

    Faults: a crash erases volatile state and invalidates pending timers;
    stable storage (written via {!persist}) survives.  A restart calls
    the protocol's [on_restart] with the last persisted state. *)

(** The context handle is the capability record of {!Runtime}; it is
    abstract to protocols, which use the wrappers below.  Other executors
    (e.g. the thread-based one in [lib/realtime]) construct their own
    {!Runtime.ctx} and run the very same protocol records. *)
type ('msg, 'state) ctx = ('msg, 'state) Runtime.ctx

type ('msg, 'state) protocol = ('msg, 'state) Runtime.protocol = {
  name : string;
  on_boot : ('msg, 'state) ctx -> 'state;
      (** Called once per process at time 0 (if initially up). May send
          and set timers. *)
  on_message : ('msg, 'state) ctx -> 'state -> src:int -> 'msg -> 'state;
  on_timer : ('msg, 'state) ctx -> 'state -> tag:int -> 'state;
  on_restart : ('msg, 'state) ctx -> persisted:'state option -> 'state;
      (** Called when a crashed process restarts; [persisted] is the last
          value written via {!persist}, if any. *)
  msg_payload : 'msg -> Trace.payload;
      (** structured trace payload for a wire message *)
}

(** {2 Context operations available to protocol handlers} *)

(** This process's id. *)
val self : ('msg, 'state) ctx -> int

(** Number of processes. *)
val n_processes : ('msg, 'state) ctx -> int

(** This process's initial proposal value. *)
val proposal : ('msg, 'state) ctx -> int

(** Local-clock reading (drifts with rate error rho). Protocols must only
    ever look at this clock; global time is not observable. *)
val local_time : ('msg, 'state) ctx -> float

(** Send a message to one process (possibly self). Delivery is decided by
    the scenario's network policy. *)
val send : ('msg, 'state) ctx -> dst:int -> 'msg -> unit

(** Send to every process, including self. *)
val broadcast : ('msg, 'state) ctx -> 'msg -> unit

(** [set_timer ctx ~local_delay ~tag] schedules an [on_timer] callback
    after [local_delay] seconds of {e local} clock time.  There is no
    cancellation: protocols disambiguate stale timers with the [tag]
    (e.g. tag = session number). *)
val set_timer : ('msg, 'state) ctx -> local_delay:float -> tag:int -> unit

(** Write to stable storage (survives crashes). *)
val persist : ('msg, 'state) ctx -> 'state -> unit

(** Announce a decision. Only the first decision of each process is
    recorded; repeated calls are no-ops. *)
val decide : ('msg, 'state) ctx -> int -> unit

(** Whether this process has already decided in this run. *)
val has_decided : ('msg, 'state) ctx -> bool

(** Per-process deterministic randomness (for protocols that need it). *)
val rng : ('msg, 'state) ctx -> Prng.t

(** Per-process reusable workspace for handler-local temporaries (never
    for protocol state); see {!Scratch}. *)
val scratch : ('msg, 'state) ctx -> Scratch.t

(** Global (real) time of the current event.  {b Not for protocol
    logic} — processes cannot observe real time in the model.  This
    exists solely so that external oracles the paper {e assumes} (the
    leader-election service of Section 2) can be modelled as functions of
    real time. *)
val oracle_time : ('msg, 'state) ctx -> Sim_time.t

(** Free-text trace annotation (no-op when tracing is off). *)
val note : ('msg, 'state) ctx -> string -> unit

(** Bump a named protocol counter (attributed to this process) in the
    run's metrics {!Registry}. *)
val count : ('msg, 'state) ctx -> string -> unit

(** {2 Running} *)

type 'state run_result = {
  scenario : Scenario.t;
  protocol_name : string;
  decision_times : Sim_time.t option array;  (** indexed by process *)
  decision_values : int option array;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  end_time : Sim_time.t;
  events_processed : int;
  trace : Trace.t;
  metrics : Registry.t;
      (** per-run counters and histograms: ["runs"], ["msgs_sent"],
          ["msgs_delivered"], ["msgs_dropped"], ["decisions"], the
          ["decision_latency_delta"] histogram ((t - TS)/delta), plus any
          protocol counters bumped via {!count} *)
  agreement_violation : (int * int * int * int) option;
      (** [(p1, v1, p2, v2)] if two processes decided differently *)
  final_states : 'state option array;
      (** [None] for processes down at the end *)
}

(** [run scenario protocol] executes to completion (all-decided, empty
    queue, or horizon).

    [injections] are messages placed directly into the network at setup:
    [(deliver_at, src, dst, msg)].  They model messages "sent before TS
    by processes that have since failed" — the obsolete messages of the
    paper — without simulating the execution that produced them.

    Raises [Invalid_argument] if the scenario fails {!Scenario.validate}. *)
val run :
  ?injections:(Sim_time.t * int * int * 'msg) list ->
  Scenario.t ->
  ('msg, 'state) protocol ->
  'state run_result

(** {2 Result helpers} *)

(** All recorded decisions as [(proc, time, value)], ordered by process. *)
val decisions : 'state run_result -> (int * Sim_time.t * int) list

(** Latest decision time among [procs] (default: all processes that
    decided). [None] if some process in [procs] did not decide. *)
val last_decision_time :
  ?procs:int list -> 'state run_result -> Sim_time.t option

(** [true] when every process in [procs] decided and all values agree. *)
val all_decided : ?procs:int list -> 'state run_result -> bool
