(** Structured execution traces (v2).

    Recording is optional (scenarios enable it); when disabled every call
    is a no-op, so protocols can trace unconditionally.

    Storage is a ring of fixed-width binary records in a single [Bytes]
    buffer (see OBSERVABILITY.md for the record format); strings are
    interned per trace.  Recording through the typed [record_*]
    functions allocates no per-entry heap blocks; the [entry] variant
    below is the decode layer, materialized on demand by [get] and
    friends.  An {e unbounded} trace ([capacity = 0], the default)
    retains every entry; a {e bounded} trace overwrites the oldest entry
    once full, so long realtime runs can record in constant memory.
    Entries are appended in non-decreasing time order, which makes
    windowed queries [O(log n + window)].

    Message entries ([Send]/[Deliver]/[Drop]) carry a causal message
    [id]: the id minted at [Send] is threaded through to the matching
    [Deliver] or [Drop], so a delivery can always be traced back to its
    origin.  Entries with [id = no_origin] were injected without a
    recorded send (e.g. adversarial injections).

    Traces export to JSONL ({!to_jsonl}) — one flat JSON object per line
    — and re-import losslessly with {!of_jsonl}. *)

(** Typed semantic payload attached to message entries.  [kind] is the
    wire-level message kind (["1a"], ["2b"], ["estimate"], ...); the
    optional fields carry whichever protocol coordinates apply (DGL
    ballots and sessions, round-based rounds, decided/proposed values).
    [detail] is a free-form suffix for anything not covered. *)
type payload = {
  kind : string;
  session : int option;
  ballot : int option;
  phase : int option;
  round : int option;
  value : int option;
  detail : string;
}

(** [payload ?session ?ballot ?phase ?round ?value ?detail kind] builds a
    payload; omitted fields are [None] / [""]. *)
val payload :
  ?session:int ->
  ?ballot:int ->
  ?phase:int ->
  ?round:int ->
  ?value:int ->
  ?detail:string ->
  string ->
  payload

(** [info kind] is [payload kind]: a bare payload with only a kind, for
    protocols with no semantic coordinates (e.g. heartbeats). *)
val info : string -> payload

val pp_payload : Format.formatter -> payload -> unit

type entry =
  | Send of { t : Sim_time.t; id : int; src : int; dst : int; payload : payload }
  | Deliver of
      { t : Sim_time.t; id : int; src : int; dst : int; payload : payload }
  | Drop of { t : Sim_time.t; id : int; src : int; dst : int; payload : payload }
  | Timer_set of { t : Sim_time.t; proc : int; tag : int; fire_at : Sim_time.t }
  | Timer_fire of { t : Sim_time.t; proc : int; tag : int }
  | Crash of { t : Sim_time.t; proc : int }
  | Restart of { t : Sim_time.t; proc : int }
  | Decide of { t : Sim_time.t; proc : int; value : int }
  | Note of { t : Sim_time.t; proc : int; text : string }

(** Message id for entries whose originating [Send] was never recorded. *)
val no_origin : int

type t

(** [create ?capacity ~enabled] makes a trace.  [capacity = 0] (default)
    retains every entry; [capacity > 0] bounds retained entries,
    overwriting the oldest once full.  Raises [Invalid_argument] on a
    negative capacity. *)
val create : ?capacity:int -> enabled:bool -> unit -> t

val enabled : t -> bool

val record : t -> entry -> unit

(** {1 Typed recorders}

    Equivalent to {!record} on the matching constructor, but writing the
    binary record directly — no intermediate [entry] (or payload option)
    blocks.  The engine's hot path uses these; [record] remains for
    callers that already hold an [entry]. *)

val record_send :
  t -> t:Sim_time.t -> id:int -> src:int -> dst:int -> payload -> unit

val record_deliver :
  t -> t:Sim_time.t -> id:int -> src:int -> dst:int -> payload -> unit

val record_drop :
  t -> t:Sim_time.t -> id:int -> src:int -> dst:int -> payload -> unit

val record_timer_set :
  t -> t:Sim_time.t -> proc:int -> tag:int -> fire_at:Sim_time.t -> unit

val record_timer_fire : t -> t:Sim_time.t -> proc:int -> tag:int -> unit

val record_crash : t -> t:Sim_time.t -> proc:int -> unit

val record_restart : t -> t:Sim_time.t -> proc:int -> unit

val record_decide : t -> t:Sim_time.t -> proc:int -> value:int -> unit

val record_note : t -> t:Sim_time.t -> proc:int -> string -> unit

(** Retained entries, oldest first. *)
val entries : t -> entry list

(** [get t i] is the [i]-th oldest retained entry (0-based).  Raises
    [Invalid_argument] out of bounds. *)
val get : t -> int -> entry

(** Retained entry count. *)
val length : t -> int

(** Entries ever recorded, including any overwritten in bounded mode. *)
val total_recorded : t -> int

(** [total_recorded t - length t]: entries lost to bounded-mode wrap. *)
val dropped_oldest : t -> int

(** The bound, or [None] for an unbounded trace. *)
val capacity : t -> int option

(** Iterate retained entries oldest-first without materialising a list. *)
val iter : (entry -> unit) -> t -> unit

val fold : ('a -> entry -> 'a) -> 'a -> t -> 'a

(** [fold_window f acc t ~lo ~hi] folds over retained entries with
    [lo <= time_of e <= hi], oldest first.  [O(log n + window)]. *)
val fold_window :
  ('a -> entry -> 'a) -> 'a -> t -> lo:Sim_time.t -> hi:Sim_time.t -> 'a

val time_of : entry -> Sim_time.t

(** [sends_in_window t ~lo ~hi] counts [Send] entries with
    [lo <= t <= hi].  [O(log n + window)]. *)
val sends_in_window : t -> lo:Sim_time.t -> hi:Sim_time.t -> int

(** Decide entries as [(proc, time, value)] triples, chronological.
    Single pass over the retained entries. *)
val decisions : t -> (int * Sim_time.t * int) list

val pp_entry : Format.formatter -> entry -> unit

val pp : Format.formatter -> t -> unit

(** {1 JSONL export / import} *)

(** One flat JSON object per entry, newline-terminated lines, oldest
    first.  Floats are printed with enough digits to round-trip. *)
val to_jsonl : t -> string

(** A single entry as a JSON object (no trailing newline). *)
val entry_to_json : entry -> string

(** Parse JSONL produced by {!to_jsonl} (blank lines ignored) into a
    fresh unbounded trace.  [Error msg] names the offending line. *)
val of_jsonl : string -> (t, string) result
