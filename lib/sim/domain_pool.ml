type t = {
  mutex : Mutex.t;
  work_available : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  domains : int;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.tasks && not pool.stop do
    Condition.wait pool.work_available pool.mutex
  done;
  match Queue.take_opt pool.tasks with
  | None ->
      (* stopped and drained *)
      Mutex.unlock pool.mutex
  | Some task ->
      Mutex.unlock pool.mutex;
      task ();
      worker_loop pool

let create ~domains () =
  if domains < 1 then invalid_arg "Domain_pool.create: domains < 1";
  let pool =
    {
      mutex = Mutex.create ();
      work_available = Condition.create ();
      tasks = Queue.create ();
      stop = false;
      workers = [];
      domains;
    }
  in
  pool.workers <-
    List.init (domains - 1) (fun _ ->
        Domain.spawn (fun () -> worker_loop pool));
  pool

let size t = t.domains

(* Deadlock-freedom of nested [map]s: a caller only blocks on [all_done]
   after the shared queue is empty, so every enqueued task is being run
   by some domain; a task that itself calls [map] drains its own subtasks
   in its drain loop at worst.  Every popped task therefore terminates,
   inductively. *)
let map pool f xs =
  match xs with
  | [] | [ _ ] -> List.map f xs
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      (* Lowest failing index wins, so the raised exception does not
         depend on scheduling. *)
      let failed = ref None in
      let remaining = ref n in
      let all_done = Condition.create () in
      let run_one i =
        let outcome =
          try Ok (f arr.(i))
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock pool.mutex;
        (match outcome with
        | Ok r -> results.(i) <- Some r
        | Error err -> (
            match !failed with
            | Some (j, _) when j <= i -> ()
            | _ -> failed := Some (i, err)));
        decr remaining;
        if !remaining = 0 then Condition.broadcast all_done;
        Mutex.unlock pool.mutex
      in
      Mutex.lock pool.mutex;
      for i = 0 to n - 1 do
        Queue.add (fun () -> run_one i) pool.tasks
      done;
      Condition.broadcast pool.work_available;
      (* The caller is a pool member: drain tasks alongside the workers,
         then wait for whatever is still in flight elsewhere. *)
      let rec drain () =
        match Queue.take_opt pool.tasks with
        | Some task ->
            Mutex.unlock pool.mutex;
            task ();
            Mutex.lock pool.mutex;
            drain ()
        | None -> ()
      in
      drain ();
      while !remaining > 0 do
        Condition.wait all_done pool.mutex
      done;
      Mutex.unlock pool.mutex;
      (match !failed with
      | Some (_, (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list (Array.map Option.get results)

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  let ws = pool.workers in
  pool.workers <- [];
  List.iter Domain.join ws
