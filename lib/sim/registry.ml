(* Named counters and fixed-bucket histograms, one registry per run.

   A registry is mutated from a single domain (each simulated run is
   sequential); cross-domain aggregation happens by [merge_into] on the
   caller's domain after workers return, so no locking is needed here. *)

type counter = {
  mutable total : int;
  mutable per_proc : int array;  (* grows on demand; index = process id *)
}

type histogram = {
  buckets : float array;  (* upper bounds, strictly increasing *)
  counts : int array;  (* length = Array.length buckets + 1 (overflow) *)
  mutable sum : float;
  mutable n : int;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; histograms = Hashtbl.create 4 }

let default_latency_buckets =
  [| 1.; 2.; 4.; 6.; 8.; 10.; 12.; 14.; 17.; 20.; 25.; 30.; 40.; 60.; 100. |]

let find_counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = { total = 0; per_proc = [||] } in
      Hashtbl.add t.counters name c;
      c

let ensure_proc c proc =
  let len = Array.length c.per_proc in
  if proc >= len then begin
    let nbuf = Array.make (Stdlib.max (proc + 1) (2 * len)) 0 in
    Array.blit c.per_proc 0 nbuf 0 len;
    c.per_proc <- nbuf
  end

type handle = counter

let handle ?(procs = 0) t name =
  let c = find_counter t name in
  if procs > 0 then ensure_proc c (procs - 1);
  c

let inc_handle c ~proc =
  c.total <- c.total + 1;
  if proc >= 0 then begin
    ensure_proc c proc;
    c.per_proc.(proc) <- c.per_proc.(proc) + 1
  end

let inc ?proc ?(by = 1) t name =
  let c = find_counter t name in
  c.total <- c.total + by;
  match proc with
  | None -> ()
  | Some p when p < 0 -> ()
  | Some p ->
      ensure_proc c p;
      c.per_proc.(p) <- c.per_proc.(p) + by

let counter_total t name =
  match Hashtbl.find_opt t.counters name with Some c -> c.total | None -> 0

let counter_per_proc t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> Array.copy c.per_proc
  | None -> [||]

let find_histogram t ~buckets name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          buckets = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          sum = 0.;
          n = 0;
        }
      in
      Hashtbl.add t.histograms name h;
      h

let bucket_index buckets v =
  (* first bucket whose upper bound is >= v; Array.length = overflow *)
  let lo = ref 0 and hi = ref (Array.length buckets) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if buckets.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let observe ?(buckets = default_latency_buckets) t name v =
  let h = find_histogram t ~buckets name in
  let i = bucket_index h.buckets v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1

let histogram_count t name =
  match Hashtbl.find_opt t.histograms name with Some h -> h.n | None -> 0

let histogram_mean t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h when h.n > 0 -> Some (h.sum /. float_of_int h.n)
  | _ -> None

(* Upper bound of the bucket containing the q-quantile sample; an
   estimate, not the exact sample value.  Overflow reports the last
   finite bound. *)
let quantile t name q =
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some h when h.n = 0 -> None
  | Some h ->
      let target =
        Stdlib.max 1
          (int_of_float (ceil (q *. float_of_int h.n)))
      in
      let rec go i acc =
        if i >= Array.length h.counts then
          h.buckets.(Array.length h.buckets - 1)
        else
          let acc = acc + h.counts.(i) in
          if acc >= target then
            if i < Array.length h.buckets then h.buckets.(i)
            else h.buckets.(Array.length h.buckets - 1)
          else go (i + 1) acc
      in
      Some (go 0 0)

let merge_into ~dst src =
  (* sorted order is not load-bearing here (integer adds commute), but
     it keeps enumeration order out of observable behaviour entirely *)
  Sorted_tbl.iter ~compare:String.compare
    (fun name (c : counter) ->
      let d = find_counter dst name in
      d.total <- d.total + c.total;
      Array.iteri
        (fun p v ->
          if v <> 0 then begin
            ensure_proc d p;
            d.per_proc.(p) <- d.per_proc.(p) + v
          end)
        c.per_proc)
    src.counters;
  Sorted_tbl.iter ~compare:String.compare
    (fun name (h : histogram) ->
      let d = find_histogram dst ~buckets:h.buckets name in
      if Array.length d.counts <> Array.length h.counts then
        invalid_arg
          (Printf.sprintf "Registry.merge_into: bucket mismatch for %S" name)
      else begin
        Array.iteri (fun i v -> d.counts.(i) <- d.counts.(i) + v) h.counts;
        d.sum <- d.sum +. h.sum;
        d.n <- d.n + h.n
      end)
    src.histograms

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.histograms

let counters t =
  Sorted_tbl.bindings ~compare:String.compare t.counters
  |> List.map (fun (name, c) -> (name, c.total))

let histograms t =
  Sorted_tbl.bindings ~compare:String.compare t.histograms
  |> List.map (fun (name, h) -> (name, h.n, h.sum))

(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (name, total) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (json_escape name);
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int total))
    (counters t);
  Buffer.add_string buf "},\"histograms\":{";
  let hs = Sorted_tbl.bindings ~compare:String.compare t.histograms in
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (json_escape name);
      Buffer.add_string buf
        (Printf.sprintf ":{\"n\":%d,\"sum\":%.6f,\"buckets\":[" h.n h.sum);
      Array.iteri
        (fun j b ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "%g" b))
        h.buckets;
      Buffer.add_string buf "],\"counts\":[";
      Array.iteri
        (fun j c ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int c))
        h.counts;
      Buffer.add_string buf "]}")
    hs;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let pp fmt t =
  List.iter
    (fun (name, total) -> Format.fprintf fmt "%-24s %d@." name total)
    (counters t);
  List.iter
    (fun (name, n, sum) ->
      Format.fprintf fmt "%-24s n=%d mean=%.3f p50<=%.3g p95<=%.3g@." name n
        (if n = 0 then 0. else sum /. float_of_int n)
        (Option.value ~default:Float.nan (quantile t name 0.5))
        (Option.value ~default:Float.nan (quantile t name 0.95)))
    (histograms t)
