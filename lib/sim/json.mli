(** Minimal JSON values: print and parse without an external dependency.

    {!Trace} keeps its own flat per-line format for speed; this module
    exists for the {e nested} documents the fuzzer needs — network
    specifications are trees and fault scripts are arrays, so corpus
    files cannot be flat objects.  Numbers keep their raw lexeme so that
    64-bit integers (seeds) round-trip exactly instead of being squeezed
    through a float. *)

type t =
  | Null
  | Bool of bool
  | Num of string  (** raw lexeme, e.g. ["42"], ["-0.5"], ["1e-3"] *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** {2 Constructors} *)

val int : int -> t

val int64 : int64 -> t

(** Finite floats print with enough digits to round-trip ([%.17g]). *)
val float : float -> t

(** {2 Accessors — [Error] names what was expected} *)

val to_int : t -> (int, string) result

val to_int64 : t -> (int64, string) result

val to_float : t -> (float, string) result

val to_string : t -> (string, string) result

val to_list : t -> (t list, string) result

(** [member k j] looks up key [k] in object [j]. *)
val member : string -> t -> (t, string) result

(** [member_opt k j] is [None] when [j] is an object without key [k]. *)
val member_opt : string -> t -> t option

(** {2 Printing and parsing} *)

(** Compact one-line rendering. *)
val print : t -> string

(** Two-space-indented multi-line rendering (stable field order: objects
    print in construction order). *)
val print_pretty : t -> string

(** Parse one JSON document (surrounding whitespace allowed).
    [Error msg] includes the offending position. *)
val parse : string -> (t, string) result
