type t =
  | Null
  | Bool of bool
  | Num of string
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Constructors / accessors                                            *)
(* ------------------------------------------------------------------ *)

let int i = Num (string_of_int i)

let int64 i = Num (Int64.to_string i)

(* "%.17g" round-trips every finite float through float_of_string. *)
let float f =
  if Float.is_finite f then Num (Printf.sprintf "%.17g" f) else Null

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Num _ -> "number"
  | Str _ -> "string"
  | Arr _ -> "array"
  | Obj _ -> "object"

let expected what j =
  Error (Printf.sprintf "expected %s, got %s" what (type_name j))

let to_int = function
  | Num s as j -> (
      match int_of_string_opt s with
      | Some i -> Ok i
      | None -> expected "integer" j)
  | j -> expected "integer" j

let to_int64 = function
  | Num s as j -> (
      match Int64.of_string_opt s with
      | Some i -> Ok i
      | None -> expected "int64" j)
  | j -> expected "int64" j

let to_float = function
  | Num s as j -> (
      match float_of_string_opt s with
      | Some f -> Ok f
      | None -> expected "number" j)
  | j -> expected "number" j

let to_string = function Str s -> Ok s | j -> expected "string" j

let to_list = function Arr l -> Ok l | j -> expected "array" j

let member k = function
  | Obj fields -> (
      match List.assoc_opt k fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" k))
  | j -> expected (Printf.sprintf "object with field %S" k) j

let member_opt k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* [indent = None] prints compact; [Some base] pretty-prints with
   two-space steps starting at [base]. *)
let rec add buf ~indent j =
  let pad n = String.make (2 * n) ' ' in
  let sequence ~open_c ~close_c items add_item =
    Buffer.add_char buf open_c;
    (match (items, indent) with
    | [], _ -> ()
    | _, None ->
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            add_item ~indent:None x)
          items
    | _, Some base ->
        List.iteri
          (fun i x ->
            Buffer.add_string buf (if i > 0 then ",\n" else "\n");
            Buffer.add_string buf (pad (base + 1));
            add_item ~indent:(Some (base + 1)) x)
          items;
        Buffer.add_char buf '\n';
        Buffer.add_string buf (pad base));
    Buffer.add_char buf close_c
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num s -> Buffer.add_string buf s
  | Str s -> escape buf s
  | Arr items ->
      sequence ~open_c:'[' ~close_c:']' items (fun ~indent x ->
          add buf ~indent x)
  | Obj fields ->
      sequence ~open_c:'{' ~close_c:'}' fields (fun ~indent (k, v) ->
          escape buf k;
          Buffer.add_string buf
            (match indent with None -> ":" | Some _ -> ": ");
          add buf ~indent v)

let print j =
  let buf = Buffer.create 256 in
  add buf ~indent:None j;
  Buffer.contents buf

let print_pretty j =
  let buf = Buffer.create 256 in
  add buf ~indent:(Some 0) j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let expect c =
    match peek () with
    | Some c' when Char.equal c' c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | _ -> false
    do
      advance ()
    done
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              (* we only emit \u00xx for control characters; decode the
                 low byte and pass anything else through as '?' *)
              if code < 0x100 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?'
          | _ -> fail "bad escape");
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> true
      | _ -> false
    do
      advance ()
    done;
    let lexeme = String.sub s start (!pos - start) in
    match float_of_string_opt lexeme with
    | Some _ -> Num lexeme
    | None -> fail (Printf.sprintf "bad number %S" lexeme)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        let fields =
          match peek () with
          | Some '}' ->
              advance ();
              []
          | _ ->
              let rec members acc =
                skip_ws ();
                let k = parse_string () in
                skip_ws ();
                expect ':';
                let v = parse_value () in
                skip_ws ();
                match peek () with
                | Some ',' ->
                    advance ();
                    members ((k, v) :: acc)
                | Some '}' ->
                    advance ();
                    List.rev ((k, v) :: acc)
                | _ -> fail "expected ',' or '}'"
              in
              members []
        in
        Obj fields
    | Some '[' ->
        advance ();
        skip_ws ();
        (match peek () with
        | Some ']' ->
            advance ();
            Arr []
        | _ ->
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  Arr (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            items [])
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg
