(** Mutable array-backed binary min-heap, the simulator's event queue.

    The functional {!Pairing_heap} allocates a node per insert and churns
    the minor heap on every [pop_min]; this heap stores elements in a
    flat array that grows in place (doubling), so the steady state of the
    event loop allocates nothing.  One heap drives one {!Engine.run} and
    is never shared across domains.

    The heap is a min-heap with respect to the comparison supplied at
    creation.  Binary heaps are not stable, so callers that need
    deterministic order among equal keys must make the comparison total —
    the engine folds its insertion sequence number into [cmp], preserving
    the [(time, seq)] order of the functional queue exactly. *)

type 'a t

(** [create ?capacity ~cmp ()] is an empty heap.  [capacity] is the
    initial array size hint (default 256; clipped to at least 1). *)
val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t

(** Number of queued elements; O(1). *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** Pushes an element; amortised O(log n), O(1) allocation-free except
    when the backing array doubles. *)
val add : 'a t -> 'a -> unit

(** Smallest element, if any, without removing it. *)
val peek_min : 'a t -> 'a option

(** Removes and returns the smallest element. *)
val pop_min : 'a t -> 'a option

(** Like {!peek_min} but without the [Some] allocation; raises
    [Invalid_argument] on an empty queue.  Callers on allocation-free
    paths pair it with {!is_empty}. *)
val peek_min_exn : 'a t -> 'a

(** Like {!pop_min} but without the [Some] allocation; raises
    [Invalid_argument] on an empty queue. *)
val pop_min_exn : 'a t -> 'a

(** [of_list ~cmp xs] builds a heap containing [xs]. *)
val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

(** Drains the heap (destructively); returns elements in ascending
    order. *)
val drain_sorted : 'a t -> 'a list
