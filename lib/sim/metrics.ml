type summary = {
  samples : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let mean = function
  | [] -> invalid_arg "Metrics.mean: empty"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.
  | xs ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

(* Nearest-rank percentile over a sorted array: O(1) per query, so
   [summarize] can sort once and ask for as many quantiles as it likes. *)
let percentile_sorted q sorted =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Metrics.percentile: empty";
  if q < 0. || q > 1. then invalid_arg "Metrics.percentile: q not in [0,1]";
  let rank =
    let r = int_of_float (ceil (q *. float_of_int n)) in
    Stdlib.max 1 (Stdlib.min n r)
  in
  sorted.(rank - 1)

let percentile q xs =
  let sorted = Array.of_list xs in
  Array.sort Float.compare sorted;
  percentile_sorted q sorted

let summarize xs =
  if xs = [] then invalid_arg "Metrics.summarize: empty";
  let sorted = Array.of_list xs in
  Array.sort Float.compare sorted;
  {
    samples = Array.length sorted;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(Array.length sorted - 1);
    p50 = percentile_sorted 0.5 sorted;
    p95 = percentile_sorted 0.95 sorted;
  }

let linear_fit points =
  if List.length points < 2 then invalid_arg "Metrics.linear_fit: need >= 2";
  let n = float_of_int (List.length points) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. points in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then
    invalid_arg "Metrics.linear_fit: degenerate x values";
  let b = ((n *. sxy) -. (sx *. sy)) /. denom in
  let a = (sy -. (b *. sx)) /. n in
  (a, b)

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f" s.samples
    s.mean s.stddev s.min s.p50 s.p95 s.max
