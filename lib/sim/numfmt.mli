(** Allocation-conscious numeric emitters for the JSONL trace encoder.

    Byte-for-byte compatible with the [Printf.sprintf] forms they
    replaced (["%.17g"], [string_of_int], ["\\u%04x"]), pinned by
    [test/test_numfmt.ml].  [add_g17] computes the exact decimal
    expansion of the double in a reusable bignum scratch and rounds to
    17 significant digits with round-half-even ties, matching glibc's
    correctly-rounded ["%.17g"] under the default rounding mode. *)

(** Reusable bignum workspace for {!add_g17}.  One scratch per export
    (or per thread); not safe to share across domains. *)
type scratch

val scratch : unit -> scratch

(** [add_g17 sc buf f] appends [Printf.sprintf "%.17g" f] to [buf],
    including ["-0"], ["inf"], ["-inf"], ["nan"] and ["-nan"] forms. *)
val add_g17 : scratch -> Buffer.t -> float -> unit

(** [add_int buf n] appends [string_of_int n] to [buf] without building
    the intermediate string.  Handles [min_int]. *)
val add_int : Buffer.t -> int -> unit

(** [add_u4_hex buf code] appends [Printf.sprintf "\\u%04x" code] for
    [0 <= code < 0x10000] — the JSON control-character escape. *)
val add_u4_hex : Buffer.t -> int -> unit
