(** Monotone min-priority queue of packed simulation events.

    The engine's steady-state queue: events are five unboxed int fields
    ordered lexicographically by [(key, ord)].  [key] is a
    {!Sim_time.key_of_t} bit-cast fire time (so the queue compares ints,
    never floats) and [ord] is the engine's tie-break word (monotone
    sequence number with the event kind in its low bits).  [f1]..[f3]
    are opaque payload words.

    The queue is {e monotone}: simulation never schedules into the past,
    so [add] requires the new key to be at least the current minimum
    (more precisely, at least the largest key ever returned as the
    minimum) and raises [Invalid_argument] otherwise.  A fresh or
    {!clear}ed queue accepts any key.  Monotonicity is what lets the
    implementation be a radix heap — amortized O(1) bucket operations
    instead of an O(log n) sift per pop.

    No operation allocates once the per-bucket high-water capacity is
    reached.  All [min_*] accessors and [drop_min] raise
    [Invalid_argument] on an empty queue — check {!length} first on hot
    paths. *)

type t

(** [create ?capacity ()] makes an empty queue; [capacity] (default 256)
    only seeds the internal bucket sizes, which double on demand. *)
val create : ?capacity:int -> unit -> t

val length : t -> int

val is_empty : t -> bool

(** Remove all events and reset the monotonicity floor (keeps
    capacity). *)
val clear : t -> unit

(** [add t ~key ~ord ~f1 ~f2 ~f3] enqueues an event.  Raises
    [Invalid_argument] if [key] is below the current minimum. *)
val add : t -> key:int -> ord:int -> f1:int -> f2:int -> f3:int -> unit

(** Smallest [(key, ord)] event's fields, without removing it. *)
val min_key : t -> int

val min_ord : t -> int

val min_f1 : t -> int

val min_f2 : t -> int

val min_f3 : t -> int

(** Remove the smallest [(key, ord)] event. *)
val drop_min : t -> unit
