(* Hand-rolled numeric emitters for the JSONL trace encoder.

   [Printf.sprintf "%.17g"] allocates a fresh string (plus format
   machinery) per field; these emitters write the identical bytes
   straight into the caller's [Buffer].  Byte-compatibility with the
   glibc "%.17g" forms is pinned by test/test_numfmt.ml, because
   [Trace.of_jsonl] round-trips and committed trace fixtures both
   depend on the exact rendering.

   "%.17g" semantics reproduced here:
   - the value is rounded to 17 significant decimal digits with
     round-half-even ties (glibc prints correctly-rounded decimals
     under the default FP rounding mode);
   - e-style is used when the decimal exponent is < -4 or >= 17,
     f-style otherwise;
   - trailing fractional zeros are stripped, a bare point is dropped;
   - the e-style exponent is signed and at least two digits;
   - zeros keep their sign ("0" / "-0"); infinities and NaNs render as
     "inf" / "-inf" / "nan" / "-nan".

   Rounding is done on the exact decimal expansion: a finite double is
   m * 2^e with m < 2^53, so its value is the integer m * 2^max(e,0) *
   5^max(-e,0) scaled by 10^-max(-e,0).  That integer has at most ~770
   digits, computed here in a base-10^9 bignum held in a reusable
   [scratch] so a whole trace export allocates one scratch, not one
   string per field. *)

type scratch = {
  mutable limbs : int array;  (* base 10^9, little-endian *)
  mutable nlimbs : int;
  mutable digits : Bytes.t;  (* ASCII decimal expansion, big-endian *)
}

let scratch () = { limbs = Array.make 128 0; nlimbs = 0; digits = Bytes.create 1280 }

let base = 1_000_000_000

let set_int sc v =
  (* v < 2^53: at most three limbs *)
  let l0 = v mod base and v = v / base in
  let l1 = v mod base and l2 = v / base in
  sc.limbs.(0) <- l0;
  sc.limbs.(1) <- l1;
  sc.limbs.(2) <- l2;
  sc.nlimbs <- (if l2 > 0 then 3 else if l1 > 0 then 2 else 1)

(* Multiply in place by [k]; limb * k + carry stays well under max_int
   for k <= 2^30. *)
let mul_small sc k =
  let carry = ref 0 in
  for i = 0 to sc.nlimbs - 1 do
    let v = (sc.limbs.(i) * k) + !carry in
    sc.limbs.(i) <- v mod base;
    carry := v / base
  done;
  while !carry > 0 do
    if sc.nlimbs >= Array.length sc.limbs then begin
      let nbuf = Array.make (2 * Array.length sc.limbs) 0 in
      Array.blit sc.limbs 0 nbuf 0 sc.nlimbs;
      sc.limbs <- nbuf
    end;
    sc.limbs.(sc.nlimbs) <- !carry mod base;
    sc.nlimbs <- sc.nlimbs + 1;
    carry := !carry / base
  done

let mul_pow2 sc e =
  let e = ref e in
  while !e >= 29 do
    mul_small sc (1 lsl 29);
    e := !e - 29
  done;
  if !e > 0 then mul_small sc (1 lsl !e)

let pow5_13 = 1_220_703_125

let mul_pow5 sc k =
  let k = ref k in
  while !k >= 13 do
    mul_small sc pow5_13;
    k := !k - 13
  done;
  let rest = ref 1 in
  for _ = 1 to !k do
    rest := !rest * 5
  done;
  if !rest > 1 then mul_small sc !rest

(* Render the bignum into [sc.digits] as 9-digit groups; returns
   (dstart, total): the expansion is digits[dstart .. total-1]. *)
let emit_limb_digits sc =
  let total = sc.nlimbs * 9 in
  if Bytes.length sc.digits < total then
    sc.digits <- Bytes.create (2 * total);
  for i = 0 to sc.nlimbs - 1 do
    let base_pos = total - (9 * (i + 1)) in
    let v = ref sc.limbs.(i) in
    for j = 8 downto 0 do
      Bytes.unsafe_set sc.digits (base_pos + j)
        (Char.unsafe_chr (48 + (!v mod 10)));
      v := !v / 10
    done
  done;
  let dstart = ref 0 in
  while Bytes.get sc.digits !dstart = '0' do
    incr dstart
  done;
  (!dstart, total)

let add_exponent buf e10 =
  Buffer.add_char buf 'e';
  Buffer.add_char buf (if e10 < 0 then '-' else '+');
  let a = abs e10 in
  if a < 10 then begin
    Buffer.add_char buf '0';
    Buffer.add_char buf (Char.chr (48 + a))
  end
  else if a < 100 then begin
    Buffer.add_char buf (Char.chr (48 + (a / 10)));
    Buffer.add_char buf (Char.chr (48 + (a mod 10)))
  end
  else begin
    Buffer.add_char buf (Char.chr (48 + (a / 100)));
    Buffer.add_char buf (Char.chr (48 + (a / 10 mod 10)));
    Buffer.add_char buf (Char.chr (48 + (a mod 10)))
  end

let add_g17 sc buf f =
  let bits = Int64.bits_of_float f in
  let neg = Int64.compare bits 0L < 0 in
  let biased = Int64.to_int (Int64.logand (Int64.shift_right_logical bits 52) 0x7FFL) in
  let frac = Int64.to_int (Int64.logand bits 0xF_FFFF_FFFF_FFFFL) in
  if neg then Buffer.add_char buf '-';
  if biased = 0x7FF then
    Buffer.add_string buf (if frac = 0 then "inf" else "nan")
  else if biased = 0 && frac = 0 then Buffer.add_char buf '0'
  else begin
    (* f = m * 2^e exactly *)
    let m, e =
      if biased = 0 then (frac, -1074)
      else (frac lor (1 lsl 52), biased - 1075)
    in
    set_int sc m;
    let k10 = if e < 0 then -e else 0 in
    if e >= 0 then mul_pow2 sc e else mul_pow5 sc k10;
    let dstart, total = emit_limb_digits sc in
    let ndigits = total - dstart in
    let e10 = ref (ndigits - 1 - k10) in
    let d = sc.digits in
    (* Round to 17 significant digits, half to even. *)
    if ndigits > 17 then begin
      let d18 = Char.code (Bytes.get d (dstart + 17)) - 48 in
      let round_up =
        if d18 > 5 then true
        else if d18 < 5 then false
        else begin
          let nonzero_tail = ref false in
          for i = dstart + 18 to total - 1 do
            if Bytes.get d i <> '0' then nonzero_tail := true
          done;
          !nonzero_tail
          || (Char.code (Bytes.get d (dstart + 16)) - 48) land 1 = 1
        end
      in
      if round_up then begin
        let i = ref (dstart + 16) in
        let carrying = ref true in
        while !carrying && !i >= dstart do
          if Bytes.get d !i = '9' then begin
            Bytes.set d !i '0';
            decr i
          end
          else begin
            Bytes.set d !i (Char.chr (Char.code (Bytes.get d !i) + 1));
            carrying := false
          end
        done;
        if !carrying then begin
          (* 999...9 rolled over: the rounded value is 1 followed by
             zeros, one decimal order higher. *)
          Bytes.set d dstart '1';
          incr e10
        end
      end
    end;
    let sig_digits = Stdlib.min ndigits 17 in
    let s = ref sig_digits in
    while !s > 1 && Bytes.get d (dstart + !s - 1) = '0' do
      decr s
    done;
    let s = !s in
    let e10 = !e10 in
    if e10 < -4 || e10 >= 17 then begin
      (* e-style *)
      Buffer.add_char buf (Bytes.get d dstart);
      if s > 1 then begin
        Buffer.add_char buf '.';
        Buffer.add_subbytes buf d (dstart + 1) (s - 1)
      end;
      add_exponent buf e10
    end
    else if e10 >= 0 then begin
      (* f-style, integer part of e10+1 digits (zero-padded if the
         significant digits run out) *)
      let int_digits = e10 + 1 in
      if s >= int_digits then begin
        Buffer.add_subbytes buf d dstart int_digits;
        if s > int_digits then begin
          Buffer.add_char buf '.';
          Buffer.add_subbytes buf d (dstart + int_digits) (s - int_digits)
        end
      end
      else begin
        Buffer.add_subbytes buf d dstart s;
        for _ = s + 1 to int_digits do
          Buffer.add_char buf '0'
        done
      end
    end
    else begin
      (* f-style, below one: 0.00...digits *)
      Buffer.add_string buf "0.";
      for _ = 1 to -e10 - 1 do
        Buffer.add_char buf '0'
      done;
      Buffer.add_subbytes buf d dstart s
    end
  end

let add_int buf n =
  if n = 0 then Buffer.add_char buf '0'
  else begin
    if n < 0 then Buffer.add_char buf '-';
    (* Work on the negative side so [min_int] needs no special case. *)
    let n = if n > 0 then -n else n in
    let div = ref 1 in
    while !div <= Stdlib.max_int / 10 && n <= - !div * 10 do
      div := !div * 10
    done;
    while !div > 0 do
      let digit = -(n / !div mod 10) mod 10 in
      Buffer.add_char buf (Char.chr (48 + digit));
      div := !div / 10
    done
  end

let hex_digit d = if d < 10 then Char.chr (48 + d) else Char.chr (87 + d)

let add_u4_hex buf code =
  Buffer.add_string buf "\\u";
  Buffer.add_char buf (hex_digit ((code lsr 12) land 0xf));
  Buffer.add_char buf (hex_digit ((code lsr 8) land 0xf));
  Buffer.add_char buf (hex_digit ((code lsr 4) land 0xf));
  Buffer.add_char buf (hex_digit (code land 0xf))
