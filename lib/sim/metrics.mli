(** Summary statistics over samples (decision latencies, message counts).

    All functions take plain [float list] samples; experiments normalise
    latencies to units of [delta] before aggregating so results read like
    the paper's bound ("decides within ~17 delta"). *)

type summary = {
  samples : int;  (** sample count *)
  mean : float;
  stddev : float;  (** sample standard deviation *)
  min : float;
  max : float;
  p50 : float;  (** median (nearest rank) *)
  p95 : float;  (** 95th percentile (nearest rank) *)
}

(** Raises [Invalid_argument] on an empty list. *)
val summarize : float list -> summary

(** Arithmetic mean.  Raises [Invalid_argument] on an empty list. *)
val mean : float list -> float

(** Sample standard deviation (Bessel-corrected); [0.] on fewer than two
    samples. *)
val stddev : float list -> float

(** [percentile q xs] with [0. <= q <= 1.], nearest-rank on the sorted
    samples. Raises on empty input. *)
val percentile : float -> float list -> float

(** Nearest-rank percentile over an already-sorted array; [O(1)].
    [summarize] sorts once and uses this for every quantile. *)
val percentile_sorted : float -> float array -> float

(** Ordinary least squares fit [y = a + b * x]; returns [(a, b)].
    Raises on fewer than two points or degenerate x. *)
val linear_fit : (float * float) list -> float * float

(** One-line rendering: mean, stddev, range and percentiles. *)
val pp_summary : Format.formatter -> summary -> unit
