(** Crash/restart schedules.

    The paper's fault model: processes fail by stopping (omission faults
    only), may restart at any time resuming from stable storage, and no
    process fails after [TS].  A schedule is a scripted list of crash and
    restart instants; the engine executes it and refuses nothing — it is
    the scenario author's job to keep the script consistent with the
    model being studied (e.g. no crashes after [TS] when reproducing the
    paper's bound). *)

type action = Crash | Restart

(** One scripted action: [proc] crashes or restarts at instant [at]. *)
type event = { at : Sim_time.t; proc : int; action : action }

type t = {
  initially_down : int list;  (** processes that are down at time 0 *)
  events : event list;  (** applied in time order *)
}

(** No faults at all. *)
val none : t

(** [make ?initially_down events] assembles a schedule. *)
val make : ?initially_down:int list -> event list -> t

(** [crash ~at p] is the event "process [p] crashes at [at]". *)
val crash : at:Sim_time.t -> int -> event

(** [restart ~at p] is the event "process [p] restarts at [at]". *)
val restart : at:Sim_time.t -> int -> event

(** [crash_then_restart ~crash_at ~restart_at p] is the two-event script. *)
val crash_then_restart : crash_at:Sim_time.t -> restart_at:Sim_time.t -> int -> t

(** Merge two schedules (concatenates scripts, unions initial-down sets). *)
val union : t -> t -> t

(** Events sorted by time (stable for equal times). *)
val sorted_events : t -> event list

(** [alive_at t ~proc ~time] replays the schedule: is [proc] up at [time]?
    An event at exactly [time] is considered applied. *)
val alive_at : t -> proc:int -> time:Sim_time.t -> bool

(** Processes that are up at [time] out of [n]. *)
val alive_set : t -> n:int -> time:Sim_time.t -> int list

(** [validate ~n t] checks ids in range, non-negative times, and that the
    per-process event sequence alternates sensibly (no crash while down,
    no restart while up).  Returns [Error msg] on the first problem. *)
val validate : n:int -> t -> (unit, string) result
