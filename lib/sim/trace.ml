(* Structured execution traces, v3.

   Storage is a ring of fixed-width 96-byte binary records in a single
   [Bytes] buffer: recording an entry writes a tag byte, a
   payload-presence bitmask, the time's IEEE-754 bits, and up to ten
   64-bit integer slots — no per-entry heap blocks.  Strings (payload
   kinds, details, note text) are interned in a per-trace table and
   recorded by index; identical strings are stored once per run.

   Unbounded traces double the buffer when full; bounded traces
   overwrite the oldest record once [capacity] is reached, so long
   realtime runs record in constant memory.  Entries are appended in
   non-decreasing time order (engine time is monotone), which is what
   makes windowed queries O(log n + window) via binary search.

   The [entry] variant is the decode layer: [get]/[iter]/[entries]
   materialize entries on demand (cold paths — assertions, rendering,
   JSONL export).  JSONL is derived from the binary records on export
   and re-imported losslessly; it is no longer the recording format. *)

type payload = {
  kind : string;
  session : int option;
  ballot : int option;
  phase : int option;
  round : int option;
  value : int option;
  detail : string;
}

let payload ?session ?ballot ?phase ?round ?value ?(detail = "") kind =
  { kind; session; ballot; phase; round; value; detail }

let info kind = payload kind

let pp_payload fmt p =
  Format.pp_print_string fmt p.kind;
  let fields =
    List.filter_map
      (fun (k, v) -> Option.map (fun v -> Printf.sprintf "%s%d" k v) v)
      [
        ("s", p.session);
        ("b", p.ballot);
        ("ph", p.phase);
        ("r", p.round);
        ("v", p.value);
      ]
  in
  if fields <> [] then
    Format.fprintf fmt "[%s]" (String.concat " " fields);
  if p.detail <> "" then Format.fprintf fmt " %s" p.detail

type entry =
  | Send of { t : Sim_time.t; id : int; src : int; dst : int; payload : payload }
  | Deliver of
      { t : Sim_time.t; id : int; src : int; dst : int; payload : payload }
  | Drop of { t : Sim_time.t; id : int; src : int; dst : int; payload : payload }
  | Timer_set of { t : Sim_time.t; proc : int; tag : int; fire_at : Sim_time.t }
  | Timer_fire of { t : Sim_time.t; proc : int; tag : int }
  | Crash of { t : Sim_time.t; proc : int }
  | Restart of { t : Sim_time.t; proc : int }
  | Decide of { t : Sim_time.t; proc : int; value : int }
  | Note of { t : Sim_time.t; proc : int; text : string }

let no_origin = -1

let time_of = function
  | Send { t; _ }
  | Deliver { t; _ }
  | Drop { t; _ }
  | Timer_set { t; _ }
  | Timer_fire { t; _ }
  | Crash { t; _ }
  | Restart { t; _ }
  | Decide { t; _ }
  | Note { t; _ } ->
      t

(* --- binary record layout -------------------------------------------

   off 0      tag byte (tag_* below)
   off 1      payload-presence bitmask (mask_* bits; message tags only)
   off 8      entry time, IEEE-754 bits, little-endian
   off 16+8k  int64 slot k, k in 0..9

   Send/Deliver/Drop: slots id, src, dst, kind_idx, detail_idx,
                      session, ballot, phase, round, value
   Timer_set:         slots proc, tag, fire_at-bits
   Timer_fire:        slots proc, tag
   Crash/Restart:     slot  proc
   Decide:            slots proc, value
   Note:              slots proc, text_idx                            *)

let rec_size = 96

let tag_send = 1
let tag_deliver = 2
let tag_drop = 3
let tag_timer_set = 4
let tag_timer_fire = 5
let tag_crash = 6
let tag_restart = 7
let tag_decide = 8
let tag_note = 9

let mask_session = 1
let mask_ballot = 2
let mask_phase = 4
let mask_round = 8
let mask_value = 16

type t = {
  enabled : bool;
  capacity : int;  (* 0 = unbounded *)
  mutable buf : Bytes.t;
  mutable first : int;  (* ring index (in records) of the oldest entry *)
  mutable len : int;  (* retained entries *)
  mutable total : int;  (* entries ever recorded, retained or not *)
  (* string interning: [strs.(0 .. nstrs-1)] are the distinct strings
     ever recorded; records refer to them by index *)
  mutable strs : string array;
  mutable nstrs : int;
  str_ids : (string, int) Hashtbl.t;
}

let create ?(capacity = 0) ~enabled () =
  if capacity < 0 then invalid_arg "Trace.create: negative capacity";
  {
    enabled;
    capacity;
    buf = Bytes.create 0;
    first = 0;
    len = 0;
    total = 0;
    strs = Array.make 16 "";
    nstrs = 0;
    str_ids = Hashtbl.create 16;
  }

let enabled t = t.enabled

let length t = t.len

let total_recorded t = t.total

let dropped_oldest t = t.total - t.len

let capacity t = if t.capacity = 0 then None else Some t.capacity

let intern t s =
  match Hashtbl.find_opt t.str_ids s with
  | Some i -> i
  | None ->
      let i = t.nstrs in
      if i = Array.length t.strs then begin
        let nbuf = Array.make (2 * i) "" in
        Array.blit t.strs 0 nbuf 0 i;
        t.strs <- nbuf
      end;
      t.strs.(i) <- s;
      t.nstrs <- i + 1;
      Hashtbl.add t.str_ids s i;
      i

let ring_cap t = Bytes.length t.buf / rec_size

let grow t =
  (* Grow (respecting the bound, if any): unwind the ring so the oldest
     record sits at index 0 of the new buffer. *)
  let cap = ring_cap t in
  let want = Stdlib.max 64 (2 * cap) in
  let want = if t.capacity > 0 then Stdlib.min want t.capacity else want in
  let nbuf = Bytes.create (want * rec_size) in
  if t.len > 0 then begin
    let head = Stdlib.min t.len (cap - t.first) in
    Bytes.blit t.buf (t.first * rec_size) nbuf 0 (head * rec_size);
    if head < t.len then
      Bytes.blit t.buf 0 nbuf (head * rec_size) ((t.len - head) * rec_size)
  end;
  t.buf <- nbuf;
  t.first <- 0

(* Byte offset of the record slot the next entry should be written to,
   advancing the ring bookkeeping. *)
let write_slot t =
  t.total <- t.total + 1;
  if t.capacity > 0 && t.len = t.capacity then begin
    (* Bounded and full: overwrite the oldest slot. *)
    let cap = ring_cap t in
    let idx = (t.first + t.len) mod cap in
    t.first <- (t.first + 1) mod cap;
    idx * rec_size
  end
  else begin
    if t.len = ring_cap t then grow t;
    let idx = (t.first + t.len) mod ring_cap t in
    t.len <- t.len + 1;
    idx * rec_size
  end

let set_slot t off k v =
  Bytes.set_int64_le t.buf (off + 16 + (8 * k)) (Int64.of_int v)

let get_slot t off k = Int64.to_int (Bytes.get_int64_le t.buf (off + 16 + (8 * k)))

let set_time t off tm =
  Bytes.set_int64_le t.buf (off + 8) (Int64.bits_of_float tm)

let get_time t off = Int64.float_of_bits (Bytes.get_int64_le t.buf (off + 8))

let set_tag t off tag mask =
  Bytes.unsafe_set t.buf off (Char.unsafe_chr tag);
  Bytes.unsafe_set t.buf (off + 1) (Char.unsafe_chr mask)

(* --- typed recorders ------------------------------------------------ *)

let record_message tr tag ~t ~id ~src ~dst p =
  if tr.enabled then begin
    let kind_idx = intern tr p.kind in
    let detail_idx = intern tr p.detail in
    let off = write_slot tr in
    let mask = ref 0 in
    let opt m k = function
      | None -> set_slot tr off k 0
      | Some v ->
          mask := !mask lor m;
          set_slot tr off k v
    in
    set_time tr off t;
    set_slot tr off 0 id;
    set_slot tr off 1 src;
    set_slot tr off 2 dst;
    set_slot tr off 3 kind_idx;
    set_slot tr off 4 detail_idx;
    opt mask_session 5 p.session;
    opt mask_ballot 6 p.ballot;
    opt mask_phase 7 p.phase;
    opt mask_round 8 p.round;
    opt mask_value 9 p.value;
    set_tag tr off tag !mask
  end

let record_send tr ~t ~id ~src ~dst p = record_message tr tag_send ~t ~id ~src ~dst p

let record_deliver tr ~t ~id ~src ~dst p =
  record_message tr tag_deliver ~t ~id ~src ~dst p

let record_drop tr ~t ~id ~src ~dst p = record_message tr tag_drop ~t ~id ~src ~dst p

let record_timer_set tr ~t ~proc ~tag ~fire_at =
  if tr.enabled then begin
    let off = write_slot tr in
    set_time tr off t;
    set_slot tr off 0 proc;
    set_slot tr off 1 tag;
    Bytes.set_int64_le tr.buf (off + 16 + 16) (Int64.bits_of_float fire_at);
    set_tag tr off tag_timer_set 0
  end

let record_timer_fire tr ~t ~proc ~tag =
  if tr.enabled then begin
    let off = write_slot tr in
    set_time tr off t;
    set_slot tr off 0 proc;
    set_slot tr off 1 tag;
    set_tag tr off tag_timer_fire 0
  end

let record_proc_event tr tag ~t ~proc =
  if tr.enabled then begin
    let off = write_slot tr in
    set_time tr off t;
    set_slot tr off 0 proc;
    set_tag tr off tag 0
  end

let record_crash tr ~t ~proc = record_proc_event tr tag_crash ~t ~proc

let record_restart tr ~t ~proc = record_proc_event tr tag_restart ~t ~proc

let record_decide tr ~t ~proc ~value =
  if tr.enabled then begin
    let off = write_slot tr in
    set_time tr off t;
    set_slot tr off 0 proc;
    set_slot tr off 1 value;
    set_tag tr off tag_decide 0
  end

let record_note tr ~t ~proc text =
  if tr.enabled then begin
    let text_idx = intern tr text in
    let off = write_slot tr in
    set_time tr off t;
    set_slot tr off 0 proc;
    set_slot tr off 1 text_idx;
    set_tag tr off tag_note 0
  end

let record tr e =
  match e with
  | Send { t; id; src; dst; payload } -> record_send tr ~t ~id ~src ~dst payload
  | Deliver { t; id; src; dst; payload } ->
      record_deliver tr ~t ~id ~src ~dst payload
  | Drop { t; id; src; dst; payload } -> record_drop tr ~t ~id ~src ~dst payload
  | Timer_set { t; proc; tag; fire_at } ->
      record_timer_set tr ~t ~proc ~tag ~fire_at
  | Timer_fire { t; proc; tag } -> record_timer_fire tr ~t ~proc ~tag
  | Crash { t; proc } -> record_crash tr ~t ~proc
  | Restart { t; proc } -> record_restart tr ~t ~proc
  | Decide { t; proc; value } -> record_decide tr ~t ~proc ~value
  | Note { t; proc; text } -> record_note tr ~t ~proc text

(* --- decode --------------------------------------------------------- *)

let offset_of tr i = (tr.first + i) mod ring_cap tr * rec_size

let decode tr off =
  let tag = Char.code (Bytes.get tr.buf off) in
  let t = get_time tr off in
  if tag <= tag_drop then begin
    let mask = Char.code (Bytes.get tr.buf (off + 1)) in
    let opt m k = if mask land m <> 0 then Some (get_slot tr off k) else None in
    let payload =
      {
        kind = tr.strs.(get_slot tr off 3);
        session = opt mask_session 5;
        ballot = opt mask_ballot 6;
        phase = opt mask_phase 7;
        round = opt mask_round 8;
        value = opt mask_value 9;
        detail = tr.strs.(get_slot tr off 4);
      }
    in
    let id = get_slot tr off 0
    and src = get_slot tr off 1
    and dst = get_slot tr off 2 in
    if tag = tag_send then Send { t; id; src; dst; payload }
    else if tag = tag_deliver then Deliver { t; id; src; dst; payload }
    else Drop { t; id; src; dst; payload }
  end
  else if tag = tag_timer_set then
    Timer_set
      {
        t;
        proc = get_slot tr off 0;
        tag = get_slot tr off 1;
        fire_at = Int64.float_of_bits (Bytes.get_int64_le tr.buf (off + 16 + 16));
      }
  else if tag = tag_timer_fire then
    Timer_fire { t; proc = get_slot tr off 0; tag = get_slot tr off 1 }
  else if tag = tag_crash then Crash { t; proc = get_slot tr off 0 }
  else if tag = tag_restart then Restart { t; proc = get_slot tr off 0 }
  else if tag = tag_decide then
    Decide { t; proc = get_slot tr off 0; value = get_slot tr off 1 }
  else Note { t; proc = get_slot tr off 0; text = tr.strs.(get_slot tr off 1) }

(* [get t i]: the [i]th oldest retained entry, 0-based. *)
let get tr i =
  if i < 0 || i >= tr.len then invalid_arg "Trace.get: index out of bounds";
  decode tr (offset_of tr i)

(* Time of the [i]th oldest retained entry without decoding it. *)
let time_at tr i = get_time tr (offset_of tr i)

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun e -> acc := f !acc e) t;
  !acc

let entries t = List.init t.len (get t)

(* Entries are recorded in non-decreasing time order, so the earliest
   index at or after a time bound is a binary search. *)
let first_at_or_after t time =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Sim_time.compare (time_at t mid) time < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

let fold_window f acc t ~lo ~hi =
  let acc = ref acc in
  let i = ref (first_at_or_after t lo) in
  let continue_ = ref true in
  while !continue_ && !i < t.len do
    let e = get t !i in
    if Sim_time.compare (time_of e) hi > 0 then continue_ := false
    else begin
      acc := f !acc e;
      incr i
    end
  done;
  !acc

let sends_in_window t ~lo ~hi =
  fold_window
    (fun acc e -> match e with Send _ -> acc + 1 | _ -> acc)
    0 t ~lo ~hi

let decisions t =
  List.rev
    (fold
       (fun acc e ->
         match e with
         | Decide { t; proc; value } -> (proc, t, value) :: acc
         | _ -> acc)
       [] t)

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_entry fmt = function
  | Send { t; id; src; dst; payload } ->
      Format.fprintf fmt "%a send #%d %d->%d %a" Sim_time.pp t id src dst
        pp_payload payload
  | Deliver { t; id; src; dst; payload } ->
      Format.fprintf fmt "%a dlvr #%d %d->%d %a" Sim_time.pp t id src dst
        pp_payload payload
  | Drop { t; id; src; dst; payload } ->
      Format.fprintf fmt "%a drop #%d %d->%d %a" Sim_time.pp t id src dst
        pp_payload payload
  | Timer_set { t; proc; tag; fire_at } ->
      Format.fprintf fmt "%a tset p%d tag=%d fire=%a" Sim_time.pp t proc tag
        Sim_time.pp fire_at
  | Timer_fire { t; proc; tag } ->
      Format.fprintf fmt "%a fire p%d tag=%d" Sim_time.pp t proc tag
  | Crash { t; proc } -> Format.fprintf fmt "%a CRASH p%d" Sim_time.pp t proc
  | Restart { t; proc } ->
      Format.fprintf fmt "%a RESTART p%d" Sim_time.pp t proc
  | Decide { t; proc; value } ->
      Format.fprintf fmt "%a DECIDE p%d value=%d" Sim_time.pp t proc value
  | Note { t; proc; text } ->
      Format.fprintf fmt "%a note p%d %s" Sim_time.pp t proc text

let pp fmt t = iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) t

(* ------------------------------------------------------------------ *)
(* JSONL export / import                                               *)
(* ------------------------------------------------------------------ *)

(* The export format is one flat JSON object per line, derived from the
   binary records on demand.  Keeping values limited to strings, ints
   and floats lets [of_jsonl] use a tiny hand-rolled parser instead of
   a JSON dependency.  Emission goes through {!Numfmt} rather than
   [Printf]: the bytes are pinned (test_numfmt.ml) to the historical
   sprintf forms, so existing fixtures and parsers are unaffected. *)

let json_escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Numfmt.add_u4_hex buf (Char.code c)
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* "%.17g" round-trips every finite float through float_of_string. *)
let add_float sc buf f = Numfmt.add_g17 sc buf f

let add_field buf ~first k v =
  if not !first then Buffer.add_char buf ',';
  first := false;
  json_escape buf k;
  Buffer.add_char buf ':';
  v ()

let add_int_field buf ~first k i =
  add_field buf ~first k (fun () -> Numfmt.add_int buf i)

let add_float_field sc buf ~first k f =
  add_field buf ~first k (fun () -> add_float sc buf f)

let add_str_field buf ~first k s =
  add_field buf ~first k (fun () -> json_escape buf s)

let add_opt_int_field buf ~first k = function
  | None -> ()
  | Some i -> add_int_field buf ~first k i

let add_payload buf ~first p =
  add_str_field buf ~first "kind" p.kind;
  add_opt_int_field buf ~first "session" p.session;
  add_opt_int_field buf ~first "ballot" p.ballot;
  add_opt_int_field buf ~first "phase" p.phase;
  add_opt_int_field buf ~first "round" p.round;
  add_opt_int_field buf ~first "value" p.value;
  if p.detail <> "" then add_str_field buf ~first "detail" p.detail

let add_entry sc buf e =
  Buffer.add_char buf '{';
  let first = ref true in
  let msg ev t id src dst payload =
    add_str_field buf ~first "ev" ev;
    add_float_field sc buf ~first "t" t;
    add_int_field buf ~first "id" id;
    add_int_field buf ~first "src" src;
    add_int_field buf ~first "dst" dst;
    add_payload buf ~first payload
  in
  (match e with
  | Send { t; id; src; dst; payload } -> msg "send" t id src dst payload
  | Deliver { t; id; src; dst; payload } -> msg "deliver" t id src dst payload
  | Drop { t; id; src; dst; payload } -> msg "drop" t id src dst payload
  | Timer_set { t; proc; tag; fire_at } ->
      add_str_field buf ~first "ev" "timer_set";
      add_float_field sc buf ~first "t" t;
      add_int_field buf ~first "proc" proc;
      add_int_field buf ~first "tag" tag;
      add_float_field sc buf ~first "fire_at" fire_at
  | Timer_fire { t; proc; tag } ->
      add_str_field buf ~first "ev" "timer_fire";
      add_float_field sc buf ~first "t" t;
      add_int_field buf ~first "proc" proc;
      add_int_field buf ~first "tag" tag
  | Crash { t; proc } ->
      add_str_field buf ~first "ev" "crash";
      add_float_field sc buf ~first "t" t;
      add_int_field buf ~first "proc" proc
  | Restart { t; proc } ->
      add_str_field buf ~first "ev" "restart";
      add_float_field sc buf ~first "t" t;
      add_int_field buf ~first "proc" proc
  | Decide { t; proc; value } ->
      add_str_field buf ~first "ev" "decide";
      add_float_field sc buf ~first "t" t;
      add_int_field buf ~first "proc" proc;
      add_int_field buf ~first "value" value
  | Note { t; proc; text } ->
      add_str_field buf ~first "ev" "note";
      add_float_field sc buf ~first "t" t;
      add_int_field buf ~first "proc" proc;
      add_str_field buf ~first "text" text);
  Buffer.add_string buf "}\n"

let entry_to_json e =
  let buf = Buffer.create 128 in
  add_entry (Numfmt.scratch ()) buf e;
  (* strip the trailing newline for single-entry rendering *)
  let s = Buffer.contents buf in
  String.sub s 0 (String.length s - 1)

let to_jsonl t =
  let buf = Buffer.create (256 * t.len) in
  let sc = Numfmt.scratch () in
  iter (add_entry sc buf) t;
  Buffer.contents buf

(* --- import -------------------------------------------------------- *)

(* numbers keep their raw lexeme so 63-bit ints round-trip exactly
   (a float detour would truncate beyond 2^53) *)
type json_value = Jstr of string | Jnum of string

exception Parse of string

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Parse (Printf.sprintf "expected %C at column %d" c !pos))
  in
  let skip_ws () =
    while
      match peek () with Some (' ' | '\t') -> true | _ -> false
    do
      advance ()
    done
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Parse "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then raise (Parse "bad \\u escape");
              let hex = String.sub line !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> raise (Parse "bad \\u escape")
              in
              (* we only emit \u00xx for control chars; decode the
                 low byte and pass anything else through as '?' *)
              if code < 0x100 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?'
          | _ -> raise (Parse "bad escape"));
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> true
      | Some ('i' | 'n' | 'f' | 'a') -> true (* inf / nan *)
      | _ -> false
    do
      advance ()
    done;
    let s = String.sub line start (!pos - start) in
    match float_of_string_opt s with
    | Some _ -> s
    | None -> raise (Parse (Printf.sprintf "bad number %S" s))
  in
  let fields = ref [] in
  skip_ws ();
  expect '{';
  skip_ws ();
  (match peek () with
  | Some '}' -> advance ()
  | _ ->
      let rec members () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        skip_ws ();
        let v =
          match peek () with
          | Some '"' -> Jstr (parse_string ())
          | _ -> Jnum (parse_number ())
        in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | Some '}' -> advance ()
        | _ -> raise (Parse "expected ',' or '}'")
      in
      members ());
  List.rev !fields

let entry_of_fields fields =
  let str k =
    match List.assoc_opt k fields with
    | Some (Jstr s) -> s
    | Some (Jnum _) -> raise (Parse (Printf.sprintf "field %S: not a string" k))
    | None -> raise (Parse (Printf.sprintf "missing field %S" k))
  in
  let raw_num k =
    match List.assoc_opt k fields with
    | Some (Jnum s) -> Some s
    | Some (Jstr _) -> raise (Parse (Printf.sprintf "field %S: not a number" k))
    | None -> None
  in
  let num k =
    match raw_num k with
    | Some s -> float_of_string s
    | None -> raise (Parse (Printf.sprintf "missing field %S" k))
  in
  let int_of_raw k s =
    match int_of_string_opt s with
    | Some i -> i
    | None ->
        let f = float_of_string s in
        let i = int_of_float f in
        if float_of_int i <> f then
          raise (Parse (Printf.sprintf "field %S: not an integer" k));
        i
  in
  let int k =
    match raw_num k with
    | Some s -> int_of_raw k s
    | None -> raise (Parse (Printf.sprintf "missing field %S" k))
  in
  let opt_int k = Option.map (int_of_raw k) (raw_num k) in
  let opt_str ~default k =
    match List.assoc_opt k fields with Some (Jstr s) -> s | _ -> default
  in
  let payload () =
    {
      kind = str "kind";
      session = opt_int "session";
      ballot = opt_int "ballot";
      phase = opt_int "phase";
      round = opt_int "round";
      value = opt_int "value";
      detail = opt_str ~default:"" "detail";
    }
  in
  let msg mk =
    mk ~t:(num "t") ~id:(int "id") ~src:(int "src") ~dst:(int "dst")
      ~payload:(payload ())
  in
  match str "ev" with
  | "send" -> msg (fun ~t ~id ~src ~dst ~payload -> Send { t; id; src; dst; payload })
  | "deliver" ->
      msg (fun ~t ~id ~src ~dst ~payload -> Deliver { t; id; src; dst; payload })
  | "drop" -> msg (fun ~t ~id ~src ~dst ~payload -> Drop { t; id; src; dst; payload })
  | "timer_set" ->
      Timer_set
        { t = num "t"; proc = int "proc"; tag = int "tag"; fire_at = num "fire_at" }
  | "timer_fire" ->
      Timer_fire { t = num "t"; proc = int "proc"; tag = int "tag" }
  | "crash" -> Crash { t = num "t"; proc = int "proc" }
  | "restart" -> Restart { t = num "t"; proc = int "proc" }
  | "decide" -> Decide { t = num "t"; proc = int "proc"; value = int "value" }
  | "note" -> Note { t = num "t"; proc = int "proc"; text = str "text" }
  | ev -> raise (Parse (Printf.sprintf "unknown event kind %S" ev))

let of_jsonl s =
  let tr = create ~enabled:true () in
  let lines = String.split_on_char '\n' s in
  let rec go lineno = function
    | [] -> Ok tr
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" then go (lineno + 1) rest
        else begin
          match entry_of_fields (parse_line trimmed) with
          | e ->
              record tr e;
              go (lineno + 1) rest
          | exception Parse msg ->
              Error (Printf.sprintf "line %d: %s" lineno msg)
        end
  in
  go 1 lines
