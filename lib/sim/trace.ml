(* Structured execution traces, v2.

   Storage is a circular buffer over a growable array: unbounded traces
   double the array when full (amortized O(1) record, no per-entry list
   cells), bounded traces overwrite the oldest entry once [capacity] is
   reached so long realtime runs record in constant memory.  Entries are
   appended in non-decreasing time order (engine time is monotone), which
   is what makes windowed queries O(log n + window) via binary search. *)

type payload = {
  kind : string;
  session : int option;
  ballot : int option;
  phase : int option;
  round : int option;
  value : int option;
  detail : string;
}

let payload ?session ?ballot ?phase ?round ?value ?(detail = "") kind =
  { kind; session; ballot; phase; round; value; detail }

let info kind = payload kind

let pp_payload fmt p =
  Format.pp_print_string fmt p.kind;
  let fields =
    List.filter_map
      (fun (k, v) -> Option.map (fun v -> Printf.sprintf "%s%d" k v) v)
      [
        ("s", p.session);
        ("b", p.ballot);
        ("ph", p.phase);
        ("r", p.round);
        ("v", p.value);
      ]
  in
  if fields <> [] then
    Format.fprintf fmt "[%s]" (String.concat " " fields);
  if p.detail <> "" then Format.fprintf fmt " %s" p.detail

type entry =
  | Send of { t : Sim_time.t; id : int; src : int; dst : int; payload : payload }
  | Deliver of
      { t : Sim_time.t; id : int; src : int; dst : int; payload : payload }
  | Drop of { t : Sim_time.t; id : int; src : int; dst : int; payload : payload }
  | Timer_set of { t : Sim_time.t; proc : int; tag : int; fire_at : Sim_time.t }
  | Timer_fire of { t : Sim_time.t; proc : int; tag : int }
  | Crash of { t : Sim_time.t; proc : int }
  | Restart of { t : Sim_time.t; proc : int }
  | Decide of { t : Sim_time.t; proc : int; value : int }
  | Note of { t : Sim_time.t; proc : int; text : string }

let no_origin = -1

let time_of = function
  | Send { t; _ }
  | Deliver { t; _ }
  | Drop { t; _ }
  | Timer_set { t; _ }
  | Timer_fire { t; _ }
  | Crash { t; _ }
  | Restart { t; _ }
  | Decide { t; _ }
  | Note { t; _ } ->
      t

type t = {
  enabled : bool;
  capacity : int;  (* 0 = unbounded *)
  mutable buf : entry array;
  mutable first : int;  (* ring index of the oldest retained entry *)
  mutable len : int;  (* retained entries *)
  mutable total : int;  (* entries ever recorded, retained or not *)
}

let dummy = Note { t = Sim_time.zero; proc = 0; text = "" }

let create ?(capacity = 0) ~enabled () =
  if capacity < 0 then invalid_arg "Trace.create: negative capacity";
  {
    enabled;
    capacity;
    buf = [||];
    first = 0;
    len = 0;
    total = 0;
  }

let enabled t = t.enabled

let length t = t.len

let total_recorded t = t.total

let dropped_oldest t = t.total - t.len

let capacity t = if t.capacity = 0 then None else Some t.capacity

let record t e =
  if t.enabled then begin
    t.total <- t.total + 1;
    let cap = Array.length t.buf in
    if t.capacity > 0 && t.len = t.capacity then begin
      (* Bounded and full: overwrite the oldest slot. *)
      t.buf.((t.first + t.len) mod cap) <- e;
      t.first <- (t.first + 1) mod cap
    end
    else begin
      if t.len = cap then begin
        (* Grow (respecting the bound, if any): unwind the ring so the
           oldest entry sits at index 0 of the new array. *)
        let want = Stdlib.max 64 (2 * cap) in
        let want = if t.capacity > 0 then Stdlib.min want t.capacity else want in
        let nbuf = Array.make want dummy in
        for i = 0 to t.len - 1 do
          nbuf.(i) <- t.buf.((t.first + i) mod (Stdlib.max 1 cap))
        done;
        t.buf <- nbuf;
        t.first <- 0
      end;
      t.buf.((t.first + t.len) mod Array.length t.buf) <- e;
      t.len <- t.len + 1
    end
  end

(* [get t i]: the [i]th oldest retained entry, 0-based. *)
let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: index out of bounds";
  t.buf.((t.first + i) mod Array.length t.buf)

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun e -> acc := f !acc e) t;
  !acc

let entries t = List.init t.len (get t)

(* Entries are recorded in non-decreasing time order, so the earliest
   index at or after a time bound is a binary search. *)
let first_at_or_after t time =
  let lo = ref 0 and hi = ref t.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Sim_time.compare (time_of (get t mid)) time < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

let fold_window f acc t ~lo ~hi =
  let acc = ref acc in
  let i = ref (first_at_or_after t lo) in
  let continue_ = ref true in
  while !continue_ && !i < t.len do
    let e = get t !i in
    if Sim_time.compare (time_of e) hi > 0 then continue_ := false
    else begin
      acc := f !acc e;
      incr i
    end
  done;
  !acc

let sends_in_window t ~lo ~hi =
  fold_window
    (fun acc e -> match e with Send _ -> acc + 1 | _ -> acc)
    0 t ~lo ~hi

let decisions t =
  List.rev
    (fold
       (fun acc e ->
         match e with
         | Decide { t; proc; value } -> (proc, t, value) :: acc
         | _ -> acc)
       [] t)

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_entry fmt = function
  | Send { t; id; src; dst; payload } ->
      Format.fprintf fmt "%a send #%d %d->%d %a" Sim_time.pp t id src dst
        pp_payload payload
  | Deliver { t; id; src; dst; payload } ->
      Format.fprintf fmt "%a dlvr #%d %d->%d %a" Sim_time.pp t id src dst
        pp_payload payload
  | Drop { t; id; src; dst; payload } ->
      Format.fprintf fmt "%a drop #%d %d->%d %a" Sim_time.pp t id src dst
        pp_payload payload
  | Timer_set { t; proc; tag; fire_at } ->
      Format.fprintf fmt "%a tset p%d tag=%d fire=%a" Sim_time.pp t proc tag
        Sim_time.pp fire_at
  | Timer_fire { t; proc; tag } ->
      Format.fprintf fmt "%a fire p%d tag=%d" Sim_time.pp t proc tag
  | Crash { t; proc } -> Format.fprintf fmt "%a CRASH p%d" Sim_time.pp t proc
  | Restart { t; proc } ->
      Format.fprintf fmt "%a RESTART p%d" Sim_time.pp t proc
  | Decide { t; proc; value } ->
      Format.fprintf fmt "%a DECIDE p%d value=%d" Sim_time.pp t proc value
  | Note { t; proc; text } ->
      Format.fprintf fmt "%a note p%d %s" Sim_time.pp t proc text

let pp fmt t = iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) t

(* ------------------------------------------------------------------ *)
(* JSONL export / import                                               *)
(* ------------------------------------------------------------------ *)

(* The export format is one flat JSON object per line.  Keeping values
   limited to strings, ints and floats lets [of_jsonl] use a tiny
   hand-rolled parser instead of a JSON dependency. *)

let json_escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* "%.17g" round-trips every finite float through float_of_string. *)
let add_float buf f = Buffer.add_string buf (Printf.sprintf "%.17g" f)

let add_field buf ~first k v =
  if not !first then Buffer.add_char buf ',';
  first := false;
  json_escape buf k;
  Buffer.add_char buf ':';
  v ()

let add_int_field buf ~first k i =
  add_field buf ~first k (fun () -> Buffer.add_string buf (string_of_int i))

let add_float_field buf ~first k f =
  add_field buf ~first k (fun () -> add_float buf f)

let add_str_field buf ~first k s =
  add_field buf ~first k (fun () -> json_escape buf s)

let add_opt_int_field buf ~first k = function
  | None -> ()
  | Some i -> add_int_field buf ~first k i

let add_payload buf ~first p =
  add_str_field buf ~first "kind" p.kind;
  add_opt_int_field buf ~first "session" p.session;
  add_opt_int_field buf ~first "ballot" p.ballot;
  add_opt_int_field buf ~first "phase" p.phase;
  add_opt_int_field buf ~first "round" p.round;
  add_opt_int_field buf ~first "value" p.value;
  if p.detail <> "" then add_str_field buf ~first "detail" p.detail

let add_entry buf e =
  Buffer.add_char buf '{';
  let first = ref true in
  let msg ev t id src dst payload =
    add_str_field buf ~first "ev" ev;
    add_float_field buf ~first "t" t;
    add_int_field buf ~first "id" id;
    add_int_field buf ~first "src" src;
    add_int_field buf ~first "dst" dst;
    add_payload buf ~first payload
  in
  (match e with
  | Send { t; id; src; dst; payload } -> msg "send" t id src dst payload
  | Deliver { t; id; src; dst; payload } -> msg "deliver" t id src dst payload
  | Drop { t; id; src; dst; payload } -> msg "drop" t id src dst payload
  | Timer_set { t; proc; tag; fire_at } ->
      add_str_field buf ~first "ev" "timer_set";
      add_float_field buf ~first "t" t;
      add_int_field buf ~first "proc" proc;
      add_int_field buf ~first "tag" tag;
      add_float_field buf ~first "fire_at" fire_at
  | Timer_fire { t; proc; tag } ->
      add_str_field buf ~first "ev" "timer_fire";
      add_float_field buf ~first "t" t;
      add_int_field buf ~first "proc" proc;
      add_int_field buf ~first "tag" tag
  | Crash { t; proc } ->
      add_str_field buf ~first "ev" "crash";
      add_float_field buf ~first "t" t;
      add_int_field buf ~first "proc" proc
  | Restart { t; proc } ->
      add_str_field buf ~first "ev" "restart";
      add_float_field buf ~first "t" t;
      add_int_field buf ~first "proc" proc
  | Decide { t; proc; value } ->
      add_str_field buf ~first "ev" "decide";
      add_float_field buf ~first "t" t;
      add_int_field buf ~first "proc" proc;
      add_int_field buf ~first "value" value
  | Note { t; proc; text } ->
      add_str_field buf ~first "ev" "note";
      add_float_field buf ~first "t" t;
      add_int_field buf ~first "proc" proc;
      add_str_field buf ~first "text" text);
  Buffer.add_string buf "}\n"

let entry_to_json e =
  let buf = Buffer.create 128 in
  add_entry buf e;
  (* strip the trailing newline for single-entry rendering *)
  let s = Buffer.contents buf in
  String.sub s 0 (String.length s - 1)

let to_jsonl t =
  let buf = Buffer.create (256 * t.len) in
  iter (add_entry buf) t;
  Buffer.contents buf

(* --- import -------------------------------------------------------- *)

(* numbers keep their raw lexeme so 63-bit ints round-trip exactly
   (a float detour would truncate beyond 2^53) *)
type json_value = Jstr of string | Jnum of string

exception Parse of string

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Parse (Printf.sprintf "expected %C at column %d" c !pos))
  in
  let skip_ws () =
    while
      match peek () with Some (' ' | '\t') -> true | _ -> false
    do
      advance ()
    done
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Parse "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then raise (Parse "bad \\u escape");
              let hex = String.sub line !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> raise (Parse "bad \\u escape")
              in
              (* we only emit \u00xx for control chars; decode the
                 low byte and pass anything else through as '?' *)
              if code < 0x100 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?'
          | _ -> raise (Parse "bad escape"));
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> true
      | Some ('i' | 'n' | 'f' | 'a') -> true (* inf / nan *)
      | _ -> false
    do
      advance ()
    done;
    let s = String.sub line start (!pos - start) in
    match float_of_string_opt s with
    | Some _ -> s
    | None -> raise (Parse (Printf.sprintf "bad number %S" s))
  in
  let fields = ref [] in
  skip_ws ();
  expect '{';
  skip_ws ();
  (match peek () with
  | Some '}' -> advance ()
  | _ ->
      let rec members () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        skip_ws ();
        let v =
          match peek () with
          | Some '"' -> Jstr (parse_string ())
          | _ -> Jnum (parse_number ())
        in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ()
        | Some '}' -> advance ()
        | _ -> raise (Parse "expected ',' or '}'")
      in
      members ());
  List.rev !fields

let entry_of_fields fields =
  let str k =
    match List.assoc_opt k fields with
    | Some (Jstr s) -> s
    | Some (Jnum _) -> raise (Parse (Printf.sprintf "field %S: not a string" k))
    | None -> raise (Parse (Printf.sprintf "missing field %S" k))
  in
  let raw_num k =
    match List.assoc_opt k fields with
    | Some (Jnum s) -> Some s
    | Some (Jstr _) -> raise (Parse (Printf.sprintf "field %S: not a number" k))
    | None -> None
  in
  let num k =
    match raw_num k with
    | Some s -> float_of_string s
    | None -> raise (Parse (Printf.sprintf "missing field %S" k))
  in
  let int_of_raw k s =
    match int_of_string_opt s with
    | Some i -> i
    | None ->
        let f = float_of_string s in
        let i = int_of_float f in
        if float_of_int i <> f then
          raise (Parse (Printf.sprintf "field %S: not an integer" k));
        i
  in
  let int k =
    match raw_num k with
    | Some s -> int_of_raw k s
    | None -> raise (Parse (Printf.sprintf "missing field %S" k))
  in
  let opt_int k = Option.map (int_of_raw k) (raw_num k) in
  let opt_str ~default k =
    match List.assoc_opt k fields with Some (Jstr s) -> s | _ -> default
  in
  let payload () =
    {
      kind = str "kind";
      session = opt_int "session";
      ballot = opt_int "ballot";
      phase = opt_int "phase";
      round = opt_int "round";
      value = opt_int "value";
      detail = opt_str ~default:"" "detail";
    }
  in
  let msg mk =
    mk ~t:(num "t") ~id:(int "id") ~src:(int "src") ~dst:(int "dst")
      ~payload:(payload ())
  in
  match str "ev" with
  | "send" -> msg (fun ~t ~id ~src ~dst ~payload -> Send { t; id; src; dst; payload })
  | "deliver" ->
      msg (fun ~t ~id ~src ~dst ~payload -> Deliver { t; id; src; dst; payload })
  | "drop" -> msg (fun ~t ~id ~src ~dst ~payload -> Drop { t; id; src; dst; payload })
  | "timer_set" ->
      Timer_set
        { t = num "t"; proc = int "proc"; tag = int "tag"; fire_at = num "fire_at" }
  | "timer_fire" ->
      Timer_fire { t = num "t"; proc = int "proc"; tag = int "tag" }
  | "crash" -> Crash { t = num "t"; proc = int "proc" }
  | "restart" -> Restart { t = num "t"; proc = int "proc" }
  | "decide" -> Decide { t = num "t"; proc = int "proc"; value = int "value" }
  | "note" -> Note { t = num "t"; proc = int "proc"; text = str "text" }
  | ev -> raise (Parse (Printf.sprintf "unknown event kind %S" ev))

let of_jsonl s =
  let tr = create ~enabled:true () in
  let lines = String.split_on_char '\n' s in
  let rec go lineno = function
    | [] -> Ok tr
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" then go (lineno + 1) rest
        else begin
          match entry_of_fields (parse_line trimmed) with
          | e ->
              record tr e;
              go (lineno + 1) rest
          | exception Parse msg ->
              Error (Printf.sprintf "line %d: %s" lineno msg)
        end
  in
  go 1 lines
