(* Deterministic Hashtbl snapshots.

   Hashtbl.iter/fold/to_seq enumerate in hash-bucket order, which is
   not part of any contract and must never leak into experiment tables,
   traces or merged metrics.  This module is the one place allowed to
   iterate a Hashtbl directly (lint rule R3): it snapshots the bindings
   and sorts them by key under an explicit comparison before anything
   observes the order.

   The comparison is a required argument on purpose: a defaulted
   polymorphic compare would just trade the iteration-order hazard for
   a variant-ordering one (lint rule R6). *)

let bindings ~compare:cmp tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> cmp a b)

let keys ~compare:cmp tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort cmp

let iter ~compare:cmp f tbl =
  List.iter (fun (k, v) -> f k v) (bindings ~compare:cmp tbl)

let fold ~compare:cmp f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (bindings ~compare:cmp tbl)
