(** Virtual time.

    Simulated time is a non-negative float, in seconds.  All arithmetic on
    it goes through this module so that unit conventions (and the
    pretty-printing used by traces and reports) live in one place. *)

type t = float

(** The start of every simulation. *)
val zero : t

(** Strictly-positive infinity, used as "never" / unbounded horizon. *)
val infinity : t

(** [add t d] is the instant [d] seconds after [t]. *)
val add : t -> float -> t

(** [diff a b] is [a -. b], the elapsed seconds from [b] to [a]. *)
val diff : t -> t -> float

(** Total order on instants, compatible with [( < )] on floats. *)
val compare : t -> t -> int

(** Earlier of two instants. *)
val min : t -> t -> t

(** Later of two instants. *)
val max : t -> t -> t

(** [false] exactly for {!infinity} (and NaN). *)
val is_finite : t -> bool

(** [key_of_t t] is an int encoding of [t]'s IEEE-754 bit pattern.  For
    non-negative instants (every simulated time, including
    {!infinity}) keys order exactly as the times do, so the event
    queue can compare instants with int compares and carry them in
    unboxed fields.  Not meaningful for negative times or NaN. *)
val key_of_t : t -> int

(** Inverse of {!key_of_t}. *)
val t_of_key : int -> t

(** [in_window t ~lo ~hi] is [lo <= t && t <= hi]. *)
val in_window : t -> lo:t -> hi:t -> bool

(** Render as seconds with microsecond precision, e.g. ["1.204000s"]. *)
val to_string : t -> string

(** Formatter version of {!to_string}. *)
val pp : Format.formatter -> t -> unit
