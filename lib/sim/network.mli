(** Message-delivery policies: the model of eventual synchrony.

    The paper's system model makes exactly one guarantee: after the
    (unknown) stabilization time [TS], every message sent between
    nonfaulty processes is delivered and reacted to within [delta]
    seconds.  Messages sent {e before} [TS] may be lost, or delivered at
    an arbitrary later time — including after [TS], which is the source
    of the "obsolete message" problem the paper solves.

    A policy decides, at send time, the fate of each message.  Policies
    are deterministic functions of the supplied [Prng.t], so executions
    replay exactly. *)

type decision =
  | Drop
  | Deliver_after of float  (** delay in seconds from the send instant *)
  | Deliver_copies of float list
      (** duplicated delivery: one copy per delay.  The paper notes the
          algorithms tolerate duplication ("the Paxos algorithm works
          despite duplication of messages"), so the model can exercise
          it.  Each copy is still subject to the admissibility rule that
          applies at the send instant (post-[ts] copies all within
          [delta]). *)

(** Per-run decision environment: the engine allocates one [env] per run
    and mutates [now] before each decision, so the hot send path passes a
    single pointer instead of three (possibly boxed) float arguments. *)
type env = { mutable now : Sim_time.t; ts : Sim_time.t; delta : float }

val make_env : now:Sim_time.t -> ts:Sim_time.t -> delta:float -> env

(** Reusable delay buffer filled by {!field-decide_into}.  Grows on
    demand (only multi-copy policies ever need more than one slot).  The
    array is public so the engine's send path can read delays with plain
    float-array loads (a [delay] call would box its float result when
    cross-module inlining is off); treat it as read-only outside this
    module and never hold it across a [decide_into] call. *)
type delays = { mutable delays : float array }

val make_delays : unit -> delays

(** [delay b i] is the [i]-th delay written by the last
    [decide_into .. b] call, for [0 <= i <] its return value. *)
val delay : delays -> int -> float

type t = {
  name : string;
  decide :
    Prng.t ->
    now:Sim_time.t ->
    ts:Sim_time.t ->
    delta:float ->
    src:int ->
    dst:int ->
    decision;
      (** Convenience form: same policy as [decide_into], rendered as a
          {!decision} (a copy count of 1 becomes [Deliver_after]).
          Allocates; tests and probes use it, the engine does not. *)
  decide_into : Prng.t -> env -> delays -> src:int -> dst:int -> int;
      (** Non-allocating form: writes the delay of each delivered copy
          into the buffer and returns the copy count ([0] = drop).  Both
          fields consume the PRNG identically, draw for draw. *)
}

(** Fraction of [delta] used for self-addressed messages and as the lower
    bound of the post-[TS] delay distribution. *)
val min_delay_factor : float

(** [eventually_synchronous ?pre_loss ?pre_delay_max ()] is the model of
    the paper:
    - messages sent at or after [ts] are delivered after a delay uniform
      in [[min_delay_factor * delta, delta]] (self-addressed messages take
      [min_delay_factor * delta]);
    - messages sent before [ts] are dropped with probability [pre_loss]
      (default [0.5]) and otherwise delayed uniformly in
      [[0, pre_delay_max]] (default [4 * delta] — long enough to straddle
      [ts] and become obsolete). *)
val eventually_synchronous :
  ?pre_loss:float -> ?pre_delay_max:float -> unit -> t

(** Synchronous from the start: every message takes at most [delta],
    regardless of [ts].  Models a system that was "stable all along". *)
val always_synchronous : t

(** [silent_until_ts] drops every message sent before [ts] and behaves
    synchronously afterwards.  The harshest admissible pre-stability
    adversary short of delayed delivery. *)
val silent_until_ts : t

(** [deterministic_after_ts] drops everything before [ts]; afterwards
    every message takes {e exactly} [delta] ([min_delay_factor * delta]
    for self-addressed ones).  Fully predictable timing — used by
    worst-case adversary constructions that must align injected obsolete
    messages with a protocol's retry cycle. *)
val deterministic_after_ts : t

(** [partitioned_until_ts groups] isolates the process groups from one
    another before [ts] (intra-group traffic is synchronous), then heals.
    A process absent from every group is isolated. *)
val partitioned_until_ts : int list list -> t

(** [with_duplication ~prob base] duplicates each delivered message with
    probability [prob]: the copy arrives at an independent admissible
    delay (within [delta] after [ts], within [4 delta] before).
    Duplication is admissible in the paper's model and the algorithms
    must tolerate it. *)
val with_duplication : prob:float -> t -> t

(** [with_reordering ~window base] perturbs the delivery of pre-[ts]
    messages: each message [base] would deliver gets up to [window]
    seconds of extra delay (uniform), so messages sent in one order may
    arrive in another — but never more than [window] apart from their
    base schedule.  Reordering pre-[ts] traffic is admissible: the model
    allows those messages {e any} later delivery time.  Post-[ts]
    messages are untouched (they must stay within [delta]).  Raises
    [Invalid_argument] on a negative [window]. *)
val with_reordering : window:float -> t -> t

(** [with_hook ~name base hook] runs [hook] first; [hook] returns
    [Some d] to override the base policy, [None] to defer to it.  Used by
    experiments that need surgical control of specific edges. *)
val with_hook :
  name:string ->
  t ->
  (now:Sim_time.t -> ts:Sim_time.t -> delta:float -> src:int -> dst:int ->
   decision option) ->
  t
