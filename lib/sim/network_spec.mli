(** Declarative network descriptions.

    {!Network.t} is a closure, which makes it fast but opaque: a
    scenario holding one cannot be serialized, compared, or shrunk.
    This module is the declarative counterpart — a plain data term that
    {!compile}s to the equivalent {!Network.t} — giving scenarios a
    lossless JSON form.  The fuzzer ({!Harness.Fuzz}) generates,
    persists, and delta-debugs these terms; the combinators mirror the
    admissible building blocks of {!Network} one to one. *)

type t =
  | Eventually_synchronous of { pre_loss : float; pre_delay_max : float option }
      (** {!Network.eventually_synchronous}; [None] means its default
          [4 delta] pre-stability delay ceiling *)
  | Always_synchronous
  | Silent_until_ts
  | Deterministic_after_ts
  | Partitioned_until_ts of int list list
  | With_duplication of { prob : float; base : t }
  | With_reordering of { window : float; base : t }
      (** {!Network.with_reordering}: bounded extra delay (seconds) on
          pre-[ts] deliveries *)

(** Build the equivalent delivery policy.  Compiling twice yields
    behaviourally identical policies (they share no state). *)
val compile : t -> Network.t

(** The compiled policy's display name, e.g.
    ["eventually-synchronous+dup"]. *)
val name : t -> string

(** Parameter ranges: probabilities in [[0,1]], non-negative delays,
    non-negative partition-group ids. *)
val validate : t -> (unit, string) result

(** Structural size (wrappers and partition groups count, the base
    policies are free-ish) — the measure the shrinker must not grow. *)
val complexity : t -> int

(** Strictly simpler variants to try when shrinking, most aggressive
    first: drop wrappers, zero probabilities, merge partitions.  Every
    candidate has a smaller {!complexity} or fewer parameters. *)
val shrink : t -> t list

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result

val equal : t -> t -> bool

(** Prints {!name}. *)
val pp : Format.formatter -> t -> unit
