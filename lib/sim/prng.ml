(* The 64-bit state lives in an 8-byte [Bytes] rather than a
   [mutable int64] record field: [Bytes.set_int64_le] stores the raw
   bits in place, while an int64 field store would box a fresh int64 on
   every draw.  The stream is bit-identical to the record version. *)
type t = Bytes.t

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed =
  let t = Bytes.create 8 in
  Bytes.set_int64_le t 0 seed;
  t

let copy t = Bytes.sub t 0 8

(* splitmix64 finalizer: Steele, Lea & Flood, OOPSLA 2014. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  let s = Int64.add (Bytes.get_int64_le t 0) golden_gamma in
  Bytes.set_int64_le t 0 s;
  mix s

let split t =
  let seed = next_int64 t in
  (* Mixing once more decorrelates the child stream from the parent's
     subsequent outputs. *)
  create (mix seed)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  if bound < 0. then invalid_arg "Prng.float: bound must be non-negative";
  if Float.equal bound 0. then 0.
  else
    (* 53 high bits give a uniform dyadic rational in [0,1). *)
    let bits = Int64.shift_right_logical (next_int64 t) 11 in
    let unit = Int64.to_float bits /. 9007199254740992. in
    unit *. bound

let float_range t lo hi =
  if lo > hi then invalid_arg "Prng.float_range: lo > hi";
  lo +. float t (hi -. lo)

let bool t p =
  let p = if p < 0. then 0. else if p > 1. then 1. else p in
  float t 1.0 < p

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t lst =
  match lst with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth lst (int t (List.length lst))
