type t = {
  name : string;
  n : int;
  ts : Sim_time.t;
  delta : float;
  rho : float;
  seed : int64;
  horizon : Sim_time.t;
  network : Network.t;
  faults : Fault.t;
  proposals : int array;
  stop_on_all_decided : bool;
  record_trace : bool;
  trace_capacity : int;
}

let make ?(name = "scenario") ?(ts = 0.) ?(delta = 0.01) ?(rho = 0.)
    ?(seed = 1L) ?horizon ?network ?(faults = Fault.none) ?proposals
    ?(stop_on_all_decided = true) ?(record_trace = false)
    ?(trace_capacity = 0) ~n () =
  let horizon =
    match horizon with Some h -> h | None -> ts +. (1000. *. delta)
  in
  let network =
    match network with Some p -> p | None -> Network.eventually_synchronous ()
  in
  let proposals =
    match proposals with
    | Some vs -> vs
    | None -> Array.init n (fun i -> 100 + i)
  in
  {
    name;
    n;
    ts;
    delta;
    rho;
    seed;
    horizon;
    network;
    faults;
    proposals;
    stop_on_all_decided;
    record_trace;
    trace_capacity;
  }

let validate t =
  if t.n <= 0 then Error "n must be positive"
  else if t.trace_capacity < 0 then Error "trace_capacity must be >= 0"
  else if t.delta <= 0. then Error "delta must be positive"
  else if t.rho < 0. || t.rho >= 1. then Error "rho must be in [0, 1)"
  else if t.ts < 0. then Error "ts must be non-negative"
  else if t.horizon <= t.ts then Error "horizon does not extend past ts"
  else if Array.length t.proposals <> t.n then
    Error "proposals array length differs from n"
  else
    match Fault.validate ~n:t.n t.faults with
    | Error _ as e -> e
    | Ok () -> (
        (* A fault scripted past the horizon can never execute; the
           scenario author almost certainly mis-specified one of the
           two, so reject rather than silently ignore the event. *)
        match
          List.find_opt
            (fun { Fault.at; _ } -> at > t.horizon)
            t.faults.Fault.events
        with
        | Some { Fault.at; proc; _ } ->
            Error
              (Printf.sprintf
                 "fault event for process %d at %g falls past horizon %g"
                 proc at t.horizon)
        | None -> Ok ())

let with_seed t seed = { t with seed }

let pp fmt t =
  Format.fprintf fmt
    "%s{n=%d; ts=%a; delta=%.4f; rho=%.3f; seed=%Ld; net=%s; horizon=%a}"
    t.name t.n Sim_time.pp t.ts t.delta t.rho t.seed t.network.Network.name
    Sim_time.pp t.horizon
