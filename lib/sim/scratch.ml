(* Per-process reusable workspaces, threaded to protocols through
   [Runtime.ctx].  One scratch lives as long as its process's context, so
   handler-local bookkeeping (tallies, temporary tables, note text) can
   reuse the same storage on every event instead of allocating afresh.

   Protocol *state* must stay immutable (the model checker hashes and
   stores states); scratch is only for values that die before the handler
   returns. *)

type t = {
  mutable ints : int array;
  mutable floats : float array;
  buf : Buffer.t;
}

let create () = { ints = [||]; floats = [||]; buf = Buffer.create 64 }

let ints t n =
  if Array.length t.ints < n then
    t.ints <- Array.make (Stdlib.max n (2 * Array.length t.ints)) 0;
  t.ints

let cleared_ints t n =
  let a = ints t n in
  Array.fill a 0 n 0;
  a

let floats t n =
  if Array.length t.floats < n then
    t.floats <- Array.make (Stdlib.max n (2 * Array.length t.floats)) 0.;
  t.floats

let cleared_floats t n =
  let a = floats t n in
  Array.fill a 0 n 0.;
  a

let buffer t =
  Buffer.clear t.buf;
  t.buf
