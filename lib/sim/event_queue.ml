type 'a t = {
  cmp : 'a -> 'a -> int;
  capacity_hint : int;
  mutable data : 'a array;  (* [||] until the first add *)
  mutable size : int;
}

let create ?(capacity = 256) ~cmp () =
  { cmp; capacity_hint = Stdlib.max 1 capacity; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* The backing array cannot exist before we have a value of type ['a] to
   fill it with, so it is created (and later grown) using the element
   being inserted as the filler. *)
let ensure_room t x =
  let cap = Array.length t.data in
  if t.size >= cap then
    let data = Array.make (Stdlib.max t.capacity_hint (2 * cap)) x in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data

let add t x =
  ensure_room t x;
  (* Sift up: walk the hole from the end toward the root. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.cmp x t.data.(parent) < 0 then begin
      t.data.(!i) <- t.data.(parent);
      i := parent
    end
    else continue := false
  done;
  t.data.(!i) <- x

let peek_min t = if t.size = 0 then None else Some t.data.(0)

let peek_min_exn t =
  if t.size = 0 then invalid_arg "Event_queue.peek_min_exn: empty queue";
  t.data.(0)

let sift_down t x =
  (* Place [x] starting from the root; the slot at the end was vacated. *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= t.size then continue := false
    else begin
      let r = l + 1 in
      let smallest =
        if r < t.size && t.cmp t.data.(r) t.data.(l) < 0 then r else l
      in
      if t.cmp t.data.(smallest) x < 0 then begin
        t.data.(!i) <- t.data.(smallest);
        i := smallest
      end
      else continue := false
    end
  done;
  t.data.(!i) <- x

let pop_min_exn t =
  if t.size = 0 then invalid_arg "Event_queue.pop_min_exn: empty queue";
  let min = t.data.(0) in
  t.size <- t.size - 1;
  let last = t.data.(t.size) in
  (* The slot past [size] keeps a stale reference to [last], which the
     heap still holds elsewhere — no extra retention. *)
  if t.size > 0 then sift_down t last else t.data.(0) <- last;
  min

let pop_min t = if t.size = 0 then None else Some (pop_min_exn t)

let of_list ~cmp xs =
  let t = create ~capacity:(Stdlib.max 1 (List.length xs)) ~cmp () in
  List.iter (add t) xs;
  t

let drain_sorted t =
  let rec loop acc =
    match pop_min t with None -> List.rev acc | Some x -> loop (x :: acc)
  in
  loop []
