(** Wire messages of the modified Paxos algorithm.

    Identical to traditional Paxos minus the [Rejected] message (the
    modified algorithm replaces rejection with session timeouts), plus an
    optional [Decision] announcement. *)

open Consensus

type t =
  | P1a of { mbal : Ballot.t }
      (** "prepare": treated as sent by [owner mbal] regardless of which
          process relayed it (processes gossip 1a messages on session
          entry and every [epsilon] seconds) *)
  | P1b of { mbal : Ballot.t; vote : Vote.t }
      (** "promise" to [owner mbal], reporting the highest accepted vote *)
  | P2a of { mbal : Ballot.t; value : Types.value }  (** "accept?" *)
  | P2b of { mbal : Ballot.t; value : Types.value }
      (** "accepted", sent to every process *)
  | Decision of { value : Types.value }
      (** optional decision gossip (config flag) *)

(** Ballot carried by the message ([None] for [Decision]). *)
val mbal : t -> Ballot.t option

(** The process this message counts as "heard from" for the
    majority-in-session rule: the actual transport-level sender ([None]
    for [Decision], which carries no ballot).  Note the distinction from
    the paper's parenthetical "any phase 1a message m is treated as if it
    were sent by process [m.mbal mod N]": that rule governs the {e Paxos
    role} of a relayed 1a (in particular, where the 1b answer goes — see
    the proof of step 2, where a process must receive "phase 1a messages
    from every process in W" even though they all relay the same
    ballot), not whom the message counts as contact with. *)
val session_sender : n:int -> src:Types.proc_id -> t -> Types.proc_id option

(** One-line human-readable description, e.g. ["1a(b7)"]. *)
val info : t -> string

(** Structured trace payload: kind ["1a"]/["1b"]/["2a"]/["2b"]/
    ["decision"], with ballot, session ([b / n]), phase and value as
    applicable. *)
val payload : n:int -> t -> Sim.Trace.payload
