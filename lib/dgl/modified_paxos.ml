open Consensus
module Engine = Sim.Engine

module Imap = Map.Make (Int)

type options = { session_gate : bool; prestart : bool }

let default_options = { session_gate = true; prestart = false }

let resend_tag = -1

type state = {
  cfg : Config.t;
  opts : options;
  mbal : Ballot.t;
  vote : Vote.t;  (* highest accepted (vbal, vval) *)
  session : Session.t;
  proposal : Types.value;
  p1b_from : Quorum.t;  (* senders of 1b for [mbal] while we own it *)
  p1b_votes : Vote.t list;
  sent_2a : bool;
  p2b : (Quorum.t * Types.value) Imap.t;  (* ballot -> (who sent 2b, value) *)
  decided : Types.value option;
  last_active_local : float;  (* local time of last 1a/2a send *)
}

let mbal st = st.mbal

let session_number st = st.session.Session.number

let current_vote st = st.vote

let decided st = st.decided

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)
(* ------------------------------------------------------------------ *)

let n_of st = st.cfg.Config.n

let mark_active ctx st = { st with last_active_local = Engine.local_time ctx }

let gossip_1a ctx st =
  Engine.broadcast ctx (Messages.P1a { mbal = st.mbal });
  mark_active ctx st

(* Raise [mbal] to [b] (strictly higher).  Clears ballot-scoped
   bookkeeping; if the session number advances this also re-arms the
   session timer and gossips a 1a, per "a process sends a phase 1a
   message to all other processes whenever it begins a new session".
   Session entries are recorded as trace notes ("session:<n>:<how>") so
   tests can verify the proof's step-1 invariant from traces. *)
let adopt_ballot ?(how = "adopt") ctx st b =
  assert (b > st.mbal);
  let n = n_of st in
  let new_session = Ballot.session ~n b in
  let st =
    {
      st with
      mbal = b;
      p1b_from = Quorum.create ~n;
      p1b_votes = [];
      sent_2a = false;
    }
  in
  if new_session > st.session.Session.number then begin
    let st = { st with session = Session.enter st.session ~number:new_session } in
    let buf = Sim.Scratch.buffer (Engine.scratch ctx) in
    Buffer.add_string buf "session:";
    Sim.Numfmt.add_int buf new_session;
    Buffer.add_char buf ':';
    Buffer.add_string buf how;
    Engine.note ctx (Buffer.contents buf);
    Engine.count ctx "session_entries";
    Engine.set_timer ctx ~local_delay:st.cfg.Config.timer_local
      ~tag:new_session;
    gossip_1a ctx st
  end
  else st

let record_decision ctx st v =
  Engine.decide ctx v;
  match st.decided with
  | Some _ -> st
  | None ->
      if st.cfg.Config.broadcast_decision then
        Engine.broadcast ctx (Messages.Decision { value = v });
      { st with decided = Some v }

(* Start Phase 1: jump to the next session with a self-owned ballot.
   [adopt_ballot] performs the session entry, timer reset and 1a
   broadcast. *)
let start_phase1 ctx st =
  let b =
    Ballot.next_session ~n:(n_of st) ~proc:(Engine.self ctx) st.mbal
  in
  Engine.count ctx "phase1_starts";
  adopt_ballot ~how:"start" ctx st b

let can_start st =
  if st.opts.session_gate then Session.can_start_phase1 st.session
  else st.session.Session.timer_expired

let maybe_start_phase1 ctx st =
  if can_start st then start_phase1 ctx st else st

(* Majority-in-session bookkeeping: any message whose ballot carries the
   current session counts as contact with its transport-level sender
   (see Messages.session_sender for why not the ballot owner). *)
let hear ctx st ~src msg =
  match Messages.session_sender ~n:(n_of st) ~src msg with
  | None -> st
  | Some sender -> (
      match Messages.mbal msg with
      | None -> st
      | Some b ->
          if Ballot.session ~n:(n_of st) b = st.session.Session.number then
            let st = { st with session = Session.hear st.session sender } in
            maybe_start_phase1 ctx st
          else st)

(* ------------------------------------------------------------------ *)
(* Message handlers                                                    *)
(* ------------------------------------------------------------------ *)

let handle_1a ctx st b =
  if b >= st.mbal then begin
    let st = if b > st.mbal then adopt_ballot ctx st b else st in
    Engine.send ctx
      ~dst:(Ballot.owner ~n:(n_of st) b)
      (Messages.P1b { mbal = b; vote = st.vote });
    st
  end
  else st (* no Reject action in the modified algorithm *)

let handle_1b ctx st ~src b vote =
  if b = st.mbal
     && Ballot.owner ~n:(n_of st) b = Engine.self ctx
     && not st.sent_2a
     && not (Quorum.mem st.p1b_from src)
  then begin
    let st =
      {
        st with
        p1b_from = Quorum.add st.p1b_from src;
        p1b_votes = vote :: st.p1b_votes;
      }
    in
    if Quorum.reached st.p1b_from then begin
      let value = Vote.choose ~fallback:st.proposal st.p1b_votes in
      Engine.broadcast ctx (Messages.P2a { mbal = b; value });
      mark_active ctx { st with sent_2a = true }
    end
    else st
  end
  else st

let handle_2a ctx st b value =
  if b >= st.mbal then begin
    let st = if b > st.mbal then adopt_ballot ctx st b else st in
    let st = { st with vote = Vote.make ~vbal:b ~vval:value } in
    Engine.broadcast ctx (Messages.P2b { mbal = b; value });
    st
  end
  else st

let handle_2b ctx st ~src b value =
  let who, v =
    match Imap.find_opt b st.p2b with
    | Some (q, v) -> (q, v)
    | None -> (Quorum.create ~n:(n_of st), value)
  in
  (* All honest 2b messages for one ballot carry the same value. *)
  if v <> value then st
  else
    let who = Quorum.add who src in
    let st = { st with p2b = Imap.add b (who, v) st.p2b } in
    if Quorum.reached who then record_decision ctx st v else st

(* ------------------------------------------------------------------ *)
(* Protocol record                                                     *)
(* ------------------------------------------------------------------ *)

let initial_state ctx cfg opts =
  let self = Engine.self ctx in
  let mbal =
    if opts.prestart then 0 else Ballot.initial ~proc:self
  in
  {
    cfg;
    opts;
    mbal;
    vote = Vote.none;
    session = Session.initial ~n:cfg.Config.n;
    proposal = Engine.proposal ctx;
    p1b_from = Quorum.create ~n:cfg.Config.n;
    p1b_votes = [];
    sent_2a = false;
    p2b = Imap.empty;
    decided = None;
    last_active_local = Engine.local_time ctx;
  }

let arm_timers ctx st =
  Engine.set_timer ctx ~local_delay:st.cfg.Config.timer_local
    ~tag:st.session.Session.number;
  Engine.set_timer ctx ~local_delay:st.cfg.Config.epsilon ~tag:resend_tag

let on_boot_impl cfg opts ctx =
  let st = initial_state ctx cfg opts in
  arm_timers ctx st;
  if opts.prestart && Engine.self ctx = 0 then begin
    (* Phase 1 of ballot 0 "executed in advance": open with a 2a. *)
    Engine.broadcast ctx
      (Messages.P2a { mbal = 0; value = st.proposal });
    mark_active ctx { st with sent_2a = true }
  end
  else st

let on_message_impl ctx st ~src msg =
  let st =
    match msg with
    | Messages.P1a { mbal } -> handle_1a ctx st mbal
    | Messages.P1b { mbal; vote } -> handle_1b ctx st ~src mbal vote
    | Messages.P2a { mbal; value } -> handle_2a ctx st mbal value
    | Messages.P2b { mbal; value } -> handle_2b ctx st ~src mbal value
    | Messages.Decision { value } -> record_decision ctx st value
  in
  hear ctx st ~src msg

let on_timer_impl ctx st ~tag =
  if tag = resend_tag then begin
    let lnow = Engine.local_time ctx in
    let eps = st.cfg.Config.epsilon in
    (* The paper's optional optimization: deciders periodically
       re-broadcast their decision so late restarters catch up in one
       message delay instead of one session turnover. *)
    (match st.decided with
    | Some v when st.cfg.Config.broadcast_decision ->
        Engine.broadcast ctx (Messages.Decision { value = v })
    | Some _ | None -> ());
    let quiet = lnow -. st.last_active_local in
    if quiet >= eps -. (eps *. 1e-9) then begin
      let st = gossip_1a ctx st in
      Engine.set_timer ctx ~local_delay:eps ~tag:resend_tag;
      st
    end
    else begin
      Engine.set_timer ctx ~local_delay:(eps -. quiet) ~tag:resend_tag;
      st
    end
  end
  else if
    tag = st.session.Session.number && not st.session.Session.timer_expired
  then
    let st = { st with session = Session.expire st.session } in
    maybe_start_phase1 ctx st
  else st (* stale timer from an earlier session *)

let on_restart_impl cfg opts ctx ~persisted =
  match persisted with
  | None -> on_boot_impl cfg opts ctx
  | Some st ->
      (* Resume where we left off (state was in stable storage); volatile
         timers are gone, so re-arm them and re-evaluate enablement. *)
      let st = { st with last_active_local = Engine.local_time ctx } in
      arm_timers ctx st;
      maybe_start_phase1 ctx st

let with_persist f ctx st =
  let st' = f ctx st in
  Engine.persist ctx st';
  st'

let protocol ?(options = default_options) cfg =
  {
    Engine.name =
      (if options.session_gate then "modified-paxos"
       else "modified-paxos-ungated");
    on_boot =
      (fun ctx ->
        let st = on_boot_impl cfg options ctx in
        Engine.persist ctx st;
        st);
    on_message =
      (fun ctx st ~src msg ->
        with_persist (fun ctx st -> on_message_impl ctx st ~src msg) ctx st);
    on_timer =
      (fun ctx st ~tag ->
        with_persist (fun ctx st -> on_timer_impl ctx st ~tag) ctx st);
    on_restart =
      (fun ctx ~persisted ->
        let st = on_restart_impl cfg options ctx ~persisted in
        Engine.persist ctx st;
        st);
    msg_payload = Messages.payload ~n:cfg.Config.n;
  }
