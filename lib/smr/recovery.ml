(* The paper's recovery bound as a reusable check over a wall-clock
   latency trace.  Shared by `client --check-recovery` (trace read back
   from a JSONL file) and the chaos campaign (samples straight from the
   load report). *)

type verdict = {
  bound : float;
  slack : float;
  settled : float;
  total : int;
  post : int;
  worst_post : float;
  stall : float;
  failures : string list;
}

let ok v = v.failures = []

let default_slack bound = Float.max 1.0 bound

let check ~bound ?slack ~after samples =
  let slack = match slack with Some s -> s | None -> default_slack bound in
  let settled = after +. bound +. slack in
  let post = List.filter (fun (t, _) -> t > settled) samples in
  let worst_post =
    List.fold_left (fun acc (_, l) -> Float.max acc l) 0. post
  in
  (* longest commit stall from just before the disruption to the end *)
  let stall, _ =
    List.fold_left
      (fun (stall, prev) (t, _) ->
        if t < after -. 1. then (stall, t)
        else (Float.max stall (t -. prev), t))
      (0., after) samples
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if samples = [] then fail "trace holds no samples";
  if samples <> [] && post = [] then
    fail "no commits after the settle point";
  if worst_post > bound +. slack then
    fail "post-settle latency %.3fs exceeds %.3fs" worst_post (bound +. slack);
  if stall > bound +. slack then
    fail "commit stall %.3fs exceeds %.3fs" stall (bound +. slack);
  {
    bound;
    slack;
    settled;
    total = List.length samples;
    post = List.length post;
    worst_post;
    stall;
    failures = List.rev !failures;
  }

let pp fmt v =
  Format.fprintf fmt
    "%d samples, %d after settle point; worst post-settle latency %.3fs; \
     longest stall %.3fs"
    v.total v.post v.worst_post v.stall;
  List.iter (fun m -> Format.fprintf fmt "@\nFAIL: %s" m) v.failures
