(* One real process of the replicated KV service: a Netio event loop
   that speaks Wire frames to its peers and clients and drives the
   unmodified Multi_paxos protocol through a hand-built Runtime.ctx.

   Delivery discipline: a protocol handler must never run re-entrantly
   (the state is threaded functionally through a single mutable slot),
   so self-addressed sends/broadcasts go through [selfq] and are drained
   by [service] after the current handler returns. *)

module Netio = Realtime.Netio

type config = {
  id : int;
  cluster : (string * int) array;
  bind : (string * int) option;
      (* listen here instead of cluster.(id): lets a chaos proxy own the
         advertised address while the replica hides on a backend port *)
  delta : float;
  batch : int;  (* max client commands folded into one decree *)
  window : int;  (* max own decrees in flight (pipelining depth) *)
  snapshot : string option;  (* durable-essence path; None = volatile *)
  snapshot_period : float;
  seed : int;
  verbose : bool;
}

let default_config ~id ~cluster =
  {
    id;
    cluster;
    bind = None;
    delta = 0.05;
    batch = 64;
    window = 32;
    snapshot = None;
    snapshot_period = 0.05;
    seed = 1;
    verbose = false;
  }

type kind = Pending | Peer_link of int | Client_link

type t = {
  cfg : config;
  n : int;
  dcfg : Dgl.Config.t;
  proto : (Smr_messages.t, Multi_paxos.state) Sim.Runtime.protocol;
  io : Netio.t;
  registry : Sim.Registry.t;
  kv : Kv_state.t;
  mutable port : int;
  mutable peer_ports : int array;
  peers : Netio.conn option array;  (* own outbound link per peer *)
  kinds : (int, kind) Hashtbl.t;  (* inbound conn_id -> role *)
  clients : (int, Netio.conn) Hashtbl.t;
  selfq : (int * Smr_messages.t) Queue.t;
  backlog : Command.t Queue.t;  (* accepted, not yet injected *)
  reply_map : (int, int * int * float) Hashtbl.t;
      (* uid -> (client conn_id, client seq, accept time) *)
  outstanding : (int, unit) Hashtbl.t;  (* injected decree uids *)
  mutable inflight : int;
  mutable next_uid : int;
  mutable applied_upto : int;
  mutable st : Multi_paxos.state option;
  mutable ctx : (Smr_messages.t, Multi_paxos.state) Sim.Runtime.ctx option;
  mutable dispatching : bool;
  mutable dirty : bool;
  mutable running : bool;
}

let registry t = t.registry

let port t = t.port

let set_peer_ports t ports =
  if Array.length ports <> t.n then
    invalid_arg "Replica.set_peer_ports: wrong length";
  t.peer_ports <- Array.copy ports

let chosen_count t =
  match t.st with Some st -> Multi_paxos.chosen_upto st | None -> 0

let is_leading t =
  match t.st with Some st -> Multi_paxos.leading st | None -> false

let kv_get t key = Kv_state.get t.kv key

let kv_checksum t = Kv_state.checksum t.kv

let kv_applied t = Kv_state.applied t.kv

(* one-line internals dump for tests and load-harness diagnostics *)
let stats t =
  match t.st with
  | None -> "not booted"
  | Some st ->
      Printf.sprintf
        "mbal=%d owner=%d session=%d leading=%b chosen_upto=%d pending=%d \
         backlog=%d inflight=%d outstanding=%d reply_map=%d"
        (Multi_paxos.mbal st)
        (Consensus.Ballot.owner ~n:t.n (Multi_paxos.mbal st))
        (Multi_paxos.session_number st)
        (Multi_paxos.leading st)
        (Multi_paxos.chosen_upto st)
        (Multi_paxos.pending_count st)
        (Queue.length t.backlog) t.inflight
        (Hashtbl.length t.outstanding)
        (Hashtbl.length t.reply_map)

let fresh_uid t =
  let u = t.next_uid in
  t.next_uid <- u + 1;
  (u * t.n) + t.cfg.id

let log t fmt =
  if t.cfg.verbose then
    Printf.eprintf ("replica %d: " ^^ fmt ^^ "\n%!") t.cfg.id
  else Printf.ifprintf stderr fmt

(* ---- peer links (full mesh of unidirectional outbound conns) ---- *)

let rec ensure_peer t j =
  if t.running && j <> t.cfg.id then
    match t.peers.(j) with
    | Some _ -> ()
    | None -> (
        let host, _ = t.cfg.cluster.(j) in
        let port = t.peer_ports.(j) in
        if port > 0 then
          match Netio.connect t.io ~host ~port with
          | c ->
              t.peers.(j) <- Some c;
              Netio.set_callbacks c
                ~on_data:(fun _ -> ())
                ~on_close:(fun _ ->
                  t.peers.(j) <- None;
                  if t.running then
                    Netio.after t.io 0.2 (fun () -> ensure_peer t j));
              Netio.send t.io c
                (Wire.to_bytes (Wire.Hello { sender = t.cfg.id }))
          | exception _ ->
              Netio.after t.io 0.2 (fun () -> ensure_peer t j))

let send_peer t j msg =
  ensure_peer t j;
  match t.peers.(j) with
  | Some c -> Netio.send t.io c (Wire.to_bytes (Wire.Peer msg))
  | None -> Sim.Registry.inc ~proc:t.cfg.id t.registry "serve_dropped_sends"

(* ---- protocol driving ---- *)

let deliver t dst msg =
  if dst = t.cfg.id then Queue.add (t.cfg.id, msg) t.selfq
  else send_peer t dst msg

let rec make_ctx t : (Smr_messages.t, Multi_paxos.state) Sim.Runtime.ctx =
  {
    Sim.Runtime.self = t.cfg.id;
    n = t.n;
    proposal = 0;
    local_time = (fun () -> Netio.now t.io);
    send = (fun ~dst msg -> deliver t dst msg);
    broadcast =
      (fun msg ->
        for j = 0 to t.n - 1 do
          deliver t j msg
        done);
    set_timer =
      (fun ~local_delay ~tag ->
        Netio.after t.io local_delay (fun () ->
            if t.running then begin
              (match (t.st, t.ctx) with
              | Some st, Some ctx ->
                  t.st <- Some (t.proto.Sim.Runtime.on_timer ctx st ~tag)
              | (Some _ | None), _ -> ());
              service t
            end));
    (* Durability is asynchronous by design: persist only marks the
       state dirty and the essence is fsynced on the snapshot timer, so
       promises/votes emitted within the last ~snapshot_period can be
       forgotten across a SIGKILL.  This is a documented divergence from
       the paper's synchronous stable-storage model — see "Durability
       caveat" in DESIGN.md §5h for the safety consequences and why we
       accept them. *)
    persist = (fun _ -> t.dirty <- true);
    decide = (fun _ -> ());
    has_decided = (fun () -> false);
    rng = Sim.Prng.create (Int64.of_int (t.cfg.seed + t.cfg.id));
    scratch = Sim.Scratch.create ();
    note = (fun _ -> ());
    count = (fun name -> Sim.Registry.inc ~proc:t.cfg.id t.registry name);
    oracle_time = (fun () -> Netio.now t.io);
  }

(* Apply newly chosen instances to the KV store and answer clients. *)
and apply_chosen t =
  match t.st with
  | None -> ()
  | Some st ->
      let upto = Multi_paxos.chosen_upto st in
      (* coalesce the whole batch's responses per client into one write *)
      let touched = Hashtbl.create 8 in
      while t.applied_upto < upto do
        (match Multi_paxos.chosen_at st t.applied_upto with
        | None -> ()
        | Some cmd ->
            if Hashtbl.mem t.outstanding cmd.Command.id then begin
              Hashtbl.remove t.outstanding cmd.Command.id;
              t.inflight <- t.inflight - 1
            end;
            Sim.Registry.inc ~proc:t.cfg.id t.registry "serve_decrees";
            let replies = Kv_state.apply t.kv cmd in
            List.iter
              (fun (uid, r) ->
                match Hashtbl.find_opt t.reply_map uid with
                | None -> ()
                | Some (cid, seq, t0) ->
                    Hashtbl.remove t.reply_map uid;
                    let lat = Netio.now t.io -. t0 in
                    Sim.Registry.observe t.registry
                      "serve_commit_latency_delta" (lat /. t.cfg.delta);
                    Sim.Registry.inc ~proc:t.cfg.id t.registry
                      "serve_committed";
                    (match Hashtbl.find_opt t.clients cid with
                    | Some conn ->
                        Netio.enqueue conn
                          (Wire.to_bytes
                             (Wire.Response
                                { seq; reply = Wire.reply_of_kv r }));
                        Hashtbl.replace touched cid conn
                    | None -> ()))
              replies);
        t.applied_upto <- t.applied_upto + 1
      done;
      (* lint: allow R3 — flush order across distinct clients is moot *)
      Hashtbl.iter (fun _ conn -> Netio.flush t.io conn) touched

(* Fold the client backlog into decrees, up to the pipelining window. *)
and maybe_inject t =
  let injected = ref false in
  while t.inflight < t.cfg.window && not (Queue.is_empty t.backlog) do
    let k = Stdlib.min t.cfg.batch (Queue.length t.backlog) in
    let rec take k acc =
      if k = 0 then List.rev acc else take (k - 1) (Queue.pop t.backlog :: acc)
    in
    let cmd =
      match take k [] with
      | [ single ] -> single
      | items -> Command.make ~id:(fresh_uid t) (Command.Batch items)
    in
    Hashtbl.replace t.outstanding cmd.Command.id ();
    t.inflight <- t.inflight + 1;
    Sim.Registry.inc ~proc:t.cfg.id t.registry "serve_batches";
    Queue.add (t.cfg.id, Smr_messages.Forward { cmd }) t.selfq;
    (* eager forward when someone else leads; the protocol's epsilon
       resend tick repairs any loss *)
    (match t.st with
    | Some st when not (Multi_paxos.leading st) ->
        let leader =
          Consensus.Ballot.owner ~n:t.n (Multi_paxos.mbal st)
        in
        if leader <> t.cfg.id then
          send_peer t leader (Smr_messages.Forward { cmd })
    | Some _ | None -> ());
    injected := true
  done;
  !injected

(* Drain self-deliveries, apply, inject — until quiescent. *)
and service t =
  if not t.dispatching then begin
    t.dispatching <- true;
    let continue = ref true in
    (try
       while !continue do
         while not (Queue.is_empty t.selfq) do
           let src, msg = Queue.pop t.selfq in
           match (t.st, t.ctx) with
           | Some st, Some ctx ->
               t.st <-
                 Some (t.proto.Sim.Runtime.on_message ctx st ~src msg)
           | (Some _ | None), _ -> Queue.clear t.selfq
         done;
         apply_chosen t;
         let injected = maybe_inject t in
         continue := injected || not (Queue.is_empty t.selfq)
       done
     with e ->
       t.dispatching <- false;
       raise e);
    t.dispatching <- false
  end

(* ---- frames ---- *)

let accept_request t conn seq (cmd : Command.t) =
  match cmd.Command.op with
  | Command.Batch _ ->
      (* The batch opcode is replica-internal (WIRE.md §5): admitting a
         client batch would nest inside this replica's own backlog
         folding (making [Command.make] reject the decree), and its
         client-chosen inner ids would alias the server-stamped uid
         namespace keying [reply_map] and the exactly-once cache. *)
      Sim.Registry.inc ~proc:t.cfg.id t.registry "serve_rejected";
      Netio.send t.io conn
        (Wire.to_bytes
           (Wire.Response
              {
                seq;
                reply = Wire.R_error "request must not carry a batch command";
              }))
  | Command.Set _ | Command.Add _ | Command.Noop | Command.Kv_get _
  | Command.Kv_put _ | Command.Kv_cas _ -> (
      match Command.make ~id:(fresh_uid t) cmd.Command.op with
      | cmd ->
          Hashtbl.replace t.reply_map cmd.Command.id
            (Netio.conn_id conn, seq, Netio.now t.io);
          Sim.Registry.inc ~proc:t.cfg.id t.registry "serve_requests";
          Queue.add cmd t.backlog
      | exception Invalid_argument reason ->
          Netio.send t.io conn
            (Wire.to_bytes
               (Wire.Response { seq; reply = Wire.R_error reason })))

let on_frame t conn msg =
  let cid = Netio.conn_id conn in
  match Hashtbl.find_opt t.kinds cid with
  | None -> Netio.close t.io conn
  | Some Pending -> (
      match msg with
      | Wire.Hello { sender } ->
          if sender >= 0 && sender < t.n && sender <> t.cfg.id then begin
            Hashtbl.replace t.kinds cid (Peer_link sender);
            log t "peer %d connected" sender
          end
          else if sender = -1 then begin
            Hashtbl.replace t.kinds cid Client_link;
            Hashtbl.replace t.clients cid conn;
            log t "client connected (conn %d)" cid
          end
          else Netio.close t.io conn
      | Wire.Peer _ | Wire.Request _ | Wire.Response _ ->
          (* first frame must identify the sender *)
          Netio.close t.io conn)
  | Some (Peer_link src) -> (
      match msg with
      | Wire.Peer m -> Queue.add (src, m) t.selfq
      | Wire.Hello _ -> ()
      | Wire.Request _ | Wire.Response _ -> Netio.close t.io conn)
  | Some Client_link -> (
      match msg with
      | Wire.Request { seq; cmd } -> accept_request t conn seq cmd
      | Wire.Hello _ -> ()
      | Wire.Peer _ | Wire.Response _ -> Netio.close t.io conn)

(* Decode every buffered frame before servicing: a pipelined burst of
   client requests then folds into one decree instead of one decree per
   request (an order of magnitude in both decree count and messages). *)
let drain_frames t conn =
  let rec decode_all () =
    if not (Netio.closing conn) then begin
      let buf, pos, avail = Netio.input conn in
      match Wire.decode buf ~pos ~avail with
      | Ok (msg, used) ->
          Netio.consume conn used;
          on_frame t conn msg;
          decode_all ()
      | Error `Need_more -> ()
      | Error (`Error e) ->
          Sim.Registry.inc ~proc:t.cfg.id t.registry "serve_bad_frames";
          log t "dropping conn %d: %s" (Netio.conn_id conn)
            (Format.asprintf "%a" Wire.pp_error e);
          Netio.close t.io conn
    end
  in
  decode_all ();
  service t

(* ---- durable essence ---- *)

let essence_to_msg (e : Multi_paxos.essence) =
  Wire.Peer
    (Smr_messages.M1b
       {
         mbal = e.Multi_paxos.e_mbal;
         votes = e.Multi_paxos.e_votes;
         chosen_upto = e.Multi_paxos.e_chosen_upto;
       })

let write_snapshot t =
  match (t.cfg.snapshot, t.st) with
  | Some path, Some st when t.dirty ->
      t.dirty <- false;
      let bytes = Wire.to_bytes (essence_to_msg (Multi_paxos.essence st)) in
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      output_bytes oc bytes;
      flush oc;
      (* fsync before the rename: otherwise a crash can leave the
         renamed file empty and the replica restarts without even the
         state it thought it had checkpointed *)
      (try Unix.fsync (Unix.descr_of_out_channel oc)
       with Unix.Unix_error _ -> ());
      close_out oc;
      Sys.rename tmp path;
      Sim.Registry.inc ~proc:t.cfg.id t.registry "serve_snapshots"
  | (Some _ | None), _ -> ()

let load_snapshot path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic -> (
      let len = in_channel_length ic in
      let bytes = really_input_string ic len |> Bytes.of_string in
      close_in ic;
      match Wire.decode bytes ~pos:0 ~avail:len with
      | Ok (Wire.Peer m, _) -> (
          match m with
          | Smr_messages.M1b { mbal; votes; chosen_upto } ->
              Some
                {
                  Multi_paxos.e_mbal = mbal;
                  e_votes = votes;
                  e_chosen_upto = chosen_upto;
                }
          | Smr_messages.M1a _ | Smr_messages.M2a _ | Smr_messages.M2b _
          | Smr_messages.Forward _ | Smr_messages.Chosen_digest _
          | Smr_messages.Chosen _ ->
              None)
      | Ok ((Wire.Hello _ | Wire.Request _ | Wire.Response _), _) -> None
      | Error (`Need_more | `Error _) -> None)

(* ---- lifecycle ---- *)

let create cfg =
  let n = Array.length cfg.cluster in
  if n = 0 then invalid_arg "Replica.create: empty cluster";
  if cfg.id < 0 || cfg.id >= n then invalid_arg "Replica.create: bad id";
  if cfg.batch < 1 || cfg.window < 1 then
    invalid_arg "Replica.create: batch and window must be >= 1";
  let dcfg = Dgl.Config.make ~n ~delta:cfg.delta () in
  let proto = Multi_paxos.protocol dcfg ~workloads:(Array.make n []) in
  let t =
    {
      cfg;
      n;
      dcfg;
      proto;
      io = Netio.create ();
      registry = Sim.Registry.create ();
      kv = Kv_state.create ();
      port = 0;
      peer_ports = Array.map snd cfg.cluster;
      peers = Array.make n None;
      kinds = Hashtbl.create 16;
      clients = Hashtbl.create 16;
      selfq = Queue.create ();
      backlog = Queue.create ();
      reply_map = Hashtbl.create 1024;
      outstanding = Hashtbl.create 64;
      inflight = 0;
      next_uid = 0;
      applied_upto = 0;
      st = None;
      ctx = None;
      dispatching = false;
      dirty = false;
      running = false;
    }
  in
  Netio.set_registry t.io t.registry;
  (* A peer that stalls mid-frame (or a proxy dripping bytes) must not
     hold a connection forever; anything past one max frame plus slack
     in unconsumed input is a protocol violation. *)
  Netio.set_limits t.io ~partial_timeout:10.
    ~max_input:(Wire.header_len + Wire.max_payload + 65536)
    ();
  let host, port =
    match cfg.bind with Some hp -> hp | None -> cfg.cluster.(cfg.id)
  in
  t.port <-
    Netio.listen t.io ~host ~port ~on_accept:(fun conn ->
        Hashtbl.replace t.kinds (Netio.conn_id conn) Pending;
        Netio.set_callbacks conn
          ~on_data:(fun c -> drain_frames t c)
          ~on_close:(fun c ->
            let cid = Netio.conn_id c in
            Hashtbl.remove t.kinds cid;
            Hashtbl.remove t.clients cid));
  t.peer_ports.(cfg.id) <- t.port;
  t.ctx <- Some (make_ctx t);
  t

let run t =
  t.running <- true;
  for j = 0 to t.n - 1 do
    ensure_peer t j
  done;
  (match t.ctx with
  | None -> ()
  | Some ctx -> (
      match
        match t.cfg.snapshot with
        | Some path -> load_snapshot path
        | None -> None
      with
      | Some e ->
          log t "restoring from snapshot (chosen_upto %d)"
            e.Multi_paxos.e_chosen_upto;
          Sim.Registry.inc ~proc:t.cfg.id t.registry "serve_restores";
          t.st <- Some (Multi_paxos.restore t.dcfg ctx e)
      | None -> t.st <- Some (t.proto.Sim.Runtime.on_boot ctx)));
  service t;
  (* The essence serializes the whole chosen log, so a fixed cadence
     would eat the event loop as the log grows.  Bound the duty cycle
     instead: the next snapshot waits at least 20x however long the
     last write took (so snapshotting costs at most ~5% of the loop). *)
  let rec snapshot_loop () =
    if t.running then begin
      let before = Netio.now t.io in
      write_snapshot t;
      let took = Netio.now t.io -. before in
      let delay = Float.max t.cfg.snapshot_period (20. *. took) in
      Netio.after t.io delay snapshot_loop
    end
  in
  (match t.cfg.snapshot with
  | Some _ -> Netio.after t.io t.cfg.snapshot_period snapshot_loop
  | None -> ());
  log t "listening on port %d" t.port;
  Netio.run t.io;
  t.dirty <- true;
  write_snapshot t;
  Netio.shutdown t.io

let stop t =
  t.running <- false;
  Netio.stop t.io
