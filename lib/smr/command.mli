(** Client commands for the replicated state machine.

    The replicated state is a single integer register plus a string
    key/value store ({!Kv_state}); commands are the register operations,
    the key/value operations ([Kv_get]/[Kv_put]/[Kv_cas]), [Noop] (which
    leaders propose to fill log gaps), and [Batch] (a flat run of client
    commands decided as one decree — the unit of batching in the socket
    replica, see [WIRE.md]).  Every client command carries a unique id so
    that a command re-proposed by two leaders (possible across leader
    changes) executes only once. *)

type op =
  | Set of int  (** register := v *)
  | Add of int  (** register := register + d *)
  | Noop  (** identity; the gap-filler *)
  | Kv_get of string  (** read [key]; a no-op on the state, replied to *)
  | Kv_put of { key : string; value : string }  (** store [key = value] *)
  | Kv_cas of { key : string; expect : string option; set : string }
      (** compare-and-swap: if the current binding of [key] equals
          [expect] ([None] = absent), store [set] *)
  | Batch of t list
      (** one decree carrying many client commands, applied in order.
          Batches never nest and every element has a non-negative id. *)

and t = { id : int; op : op }

val make : id:int -> op -> t
(** Rejects negative ids and nested or malformed batches. *)

val noop : t
(** The gap-filler: [id = -1], applies as the identity. *)

val is_noop : t -> bool

(** [apply state cmd] — the integer-register transition.  Key/value
    operations leave the register untouched (their effect lives in
    {!Kv_state}); a batch folds over its elements. *)
val apply : int -> t -> int

(** Order-sensitive digest of a command sequence; two replicas that
    applied the same commands in the same order agree on it. *)
val checksum : t list -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val info : t -> string
