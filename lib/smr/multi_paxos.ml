open Consensus
module Engine = Sim.Engine
module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

module IBmap = Map.Make (struct
  type t = int * int (* instance, ballot *)

  let compare (i1, b1) (i2, b2) =
    let c = Int.compare i1 i2 in
    if c <> 0 then c else Int.compare b1 b2
end)

let resend_tag = -1

let submit_tag = -2

(* Chosen entries are folded into 1b votes with an infinite ballot: a
   new leader's max-vbal choice can then never contradict a chosen
   command (Paxos safety would already prevent it for *reported* votes,
   but a replica that garbage-collected an instance into its chosen set
   must still speak for it in phase 1b). *)
let chosen_vbal = max_int

let catchup_batch = 32

type state = {
  cfg : Dgl.Config.t;
  progress_gate : bool;
  workload : (float * Command.t) array;  (* own submission schedule *)
  next_submit : int;
  total_commands : int;
  mbal : Ballot.t;
  session : Dgl.Session.t;
  ivotes : Smr_messages.ivote Imap.t;  (* accepted votes, unchosen instances *)
  chosen : Command.t Imap.t;
  chosen_ids : Iset.t;  (* non-noop command ids present in [chosen] *)
  chosen_upto : int;  (* instances 0 .. chosen_upto-1 are all chosen *)
  pending : Command.t list;  (* submitted / forwarded, not yet chosen *)
  (* leader bookkeeping, valid for the current mbal *)
  p1b_from : Quorum.t;
  p1b_merged : Smr_messages.ivote Imap.t;
  p1b_watermark : int;  (* max chosen_upto heard in 1b responses *)
  leading : bool;
  next_instance : int;
  proposed : Command.t Imap.t;
  proposed_ids : Iset.t;
  p2b : (Quorum.t * Command.t) IBmap.t;
  decided : bool;
  last_active_local : float;
  progress_mark : int;
      (* chosen_upto when the session timer was last armed: the timer
         only triggers Start Phase 1 if no instance was chosen since *)
}

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let mbal st = st.mbal

let session_number st = st.session.Dgl.Session.number

let leading st = st.leading

let chosen_upto st = st.chosen_upto

let log_prefix st =
  List.init st.chosen_upto (fun i -> Imap.find i st.chosen)

let applied st =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      if Command.is_noop c || Hashtbl.mem seen c.Command.id then false
      else begin
        Hashtbl.add seen c.Command.id ();
        true
      end)
    (log_prefix st)

let register st = List.fold_left Command.apply 0 (applied st)

let pending_count st = List.length st.pending

let chosen_at st instance = Imap.find_opt instance st.chosen

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let n_of st = st.cfg.Dgl.Config.n

let mark_active ctx st = { st with last_active_local = Engine.local_time ctx }

let gossip_1a ctx st =
  Engine.broadcast ctx (Smr_messages.M1a { mbal = st.mbal });
  mark_active ctx st

(* O(log n): every client submission consults this, so it must not scan
   the chosen log (that turns the server quadratic in decrees) *)
let chosen_id_known st id = Iset.mem id st.chosen_ids

let add_pending st cmd =
  if
    Command.is_noop cmd
    || List.exists (fun c -> c.Command.id = cmd.Command.id) st.pending
    || chosen_id_known st cmd.Command.id
  then st
  else
    (* lint: allow T2 — pending is bounded by in-flight client commands
       and the duplicate scan above is already linear; the tail append
       keeps FIFO proposal order without a deque *)
    { st with pending = st.pending @ [ cmd ] }

(* Raise mbal to [b]; resets leader bookkeeping and, when the session
   advances, re-arms the session timer and gossips a 1a — the same rules
   as the single-shot algorithm.  Commands we proposed but that are not
   chosen yet go back to pending so they are re-forwarded to whoever
   leads next. *)
let adopt_ballot ctx st b =
  assert (b > st.mbal);
  let n = n_of st in
  let orphans =
    Imap.fold
      (fun _ cmd acc ->
        if chosen_id_known st cmd.Command.id || Command.is_noop cmd then acc
        else cmd :: acc)
      st.proposed []
  in
  let st =
    {
      st with
      mbal = b;
      p1b_from = Quorum.create ~n;
      p1b_merged = Imap.empty;
      p1b_watermark = st.chosen_upto;
      leading = false;
      proposed = Imap.empty;
      proposed_ids = Iset.empty;
    }
  in
  let st = List.fold_left add_pending st orphans in
  let new_session = Ballot.session ~n b in
  if new_session > st.session.Dgl.Session.number then begin
    let st =
      {
        st with
        session = Dgl.Session.enter st.session ~number:new_session;
        progress_mark = st.chosen_upto;
      }
    in
    Engine.set_timer ctx ~local_delay:st.cfg.Dgl.Config.timer_local
      ~tag:new_session;
    gossip_1a ctx st
  end
  else st

(* ------------------------------------------------------------------ *)
(* Choosing and applying                                               *)
(* ------------------------------------------------------------------ *)

let maybe_decide ctx st =
  if st.decided || st.total_commands = 0 then st
  else begin
    let prefix_cmds = applied st in
    if List.length prefix_cmds = st.total_commands then begin
      Engine.decide ctx (Command.checksum prefix_cmds);
      { st with decided = true }
    end
    else st
  end

let learn_chosen ctx st instance cmd =
  if Imap.mem instance st.chosen then st
  else begin
    if not (Command.is_noop cmd) then begin
      let buf = Sim.Scratch.buffer (Engine.scratch ctx) in
      Buffer.add_string buf "chosen:";
      Sim.Numfmt.add_int buf cmd.Command.id;
      Engine.note ctx (Buffer.contents buf)
    end;
    let st =
      {
        st with
        chosen = Imap.add instance cmd st.chosen;
        chosen_ids =
          (if Command.is_noop cmd then st.chosen_ids
           else Iset.add cmd.Command.id st.chosen_ids);
        ivotes = Imap.remove instance st.ivotes;
        pending =
          List.filter
            (fun c -> c.Command.id <> cmd.Command.id)
            st.pending;
      }
    in
    let rec advance upto =
      if Imap.mem upto st.chosen then advance (upto + 1) else upto
    in
    let st = { st with chosen_upto = advance st.chosen_upto } in
    maybe_decide ctx st
  end

(* ------------------------------------------------------------------ *)
(* Leader side                                                         *)
(* ------------------------------------------------------------------ *)

let propose ctx st cmd =
  let instance = st.next_instance in
  Engine.broadcast ctx (Smr_messages.M2a { mbal = st.mbal; instance; cmd });
  mark_active ctx
    {
      st with
      next_instance = instance + 1;
      proposed = Imap.add instance cmd st.proposed;
      proposed_ids =
        (if Command.is_noop cmd then st.proposed_ids
         else Iset.add cmd.Command.id st.proposed_ids);
    }

let propose_at ctx st instance cmd =
  Engine.broadcast ctx (Smr_messages.M2a { mbal = st.mbal; instance; cmd });
  mark_active ctx
    {
      st with
      proposed = Imap.add instance cmd st.proposed;
      proposed_ids =
        (if Command.is_noop cmd then st.proposed_ids
         else Iset.add cmd.Command.id st.proposed_ids);
      next_instance = Stdlib.max st.next_instance (instance + 1);
    }

let may_propose st cmd =
  (not (Iset.mem cmd.Command.id st.proposed_ids))
  && not (chosen_id_known st cmd.Command.id)

(* Phase 1 completed: re-propose anchored commands, close gaps with
   noops, then ship the pending queue. *)
let open_phase2 ctx st =
  let st = { st with leading = true } in
  (* Everything below the quorum watermark is chosen at some responder
     (their prefixes are contiguous): never propose there — a stale
     1b vote or a noop gap-fill could then be chosen over the committed
     value.  Those instances arrive through the Chosen_digest
     exchange instead. *)
  let floor_ = Stdlib.max st.chosen_upto st.p1b_watermark in
  let horizon =
    Imap.fold (fun i _ acc -> Stdlib.max acc (i + 1)) st.p1b_merged
      (Stdlib.max floor_ st.next_instance)
  in
  let st = { st with next_instance = horizon } in
  (* anchored or chosen instances first *)
  let st =
    Imap.fold
      (fun instance (vote : Smr_messages.ivote) st ->
        if Imap.mem instance st.chosen then st
        else if vote.Smr_messages.vbal = chosen_vbal then
          learn_chosen ctx st instance vote.Smr_messages.vcmd
        else if instance < floor_ then st
        else propose_at ctx st instance vote.Smr_messages.vcmd)
      st.p1b_merged st
  in
  (* fill gaps below the horizon *)
  let st = ref st in
  for i = floor_ to horizon - 1 do
    if
      (not (Imap.mem i !st.chosen))
      && (not (Imap.mem i !st.proposed))
      && not (Imap.mem i !st.p1b_merged)
    then st := propose_at ctx !st i Command.noop
  done;
  let st = !st in
  (* new work *)
  List.fold_left
    (fun st cmd -> if may_propose st cmd then propose ctx st cmd else st)
    st st.pending

let handle_1b ctx st ~src b votes chosen_upto_src =
  if
    b = st.mbal
    && Ballot.owner ~n:(n_of st) b = Engine.self ctx
    && (not st.leading)
    && not (Quorum.mem st.p1b_from src)
  then begin
    let merged =
      List.fold_left
        (fun m (i, (v : Smr_messages.ivote)) ->
          match Imap.find_opt i m with
          | Some (old : Smr_messages.ivote)
            when old.Smr_messages.vbal >= v.Smr_messages.vbal ->
              m
          | _ -> Imap.add i v m)
        st.p1b_merged votes
    in
    let st =
      {
        st with
        p1b_from = Quorum.add st.p1b_from src;
        p1b_merged = merged;
        p1b_watermark = Stdlib.max st.p1b_watermark chosen_upto_src;
      }
    in
    if Quorum.reached st.p1b_from then open_phase2 ctx st else st
  end
  else st

(* ------------------------------------------------------------------ *)
(* Acceptor / learner side                                             *)
(* ------------------------------------------------------------------ *)

let my_1b st =
  (* The contiguous chosen prefix [0, chosen_upto) is summarized by the
     watermark alone; the leader backfills it through the Chosen_digest
     exchange.  Shipping the prefix in every 1b makes phase 1 O(log) —
     under load that eventually outlasts the session timeout and the
     cluster livelocks on leader election.  Safety: an instance inside
     some responder's prefix is chosen, so no new proposal is needed
     there (open_phase2 never proposes below the quorum watermark), and
     every instance above all watermarks still has its highest vote (or
     its chosen value, as an infinite-ballot vote) carried here. *)
  let votes =
    Imap.fold
      (fun i v acc -> (i, v) :: acc)
      st.ivotes
      (Imap.fold
         (fun i cmd acc ->
           if i >= st.chosen_upto then
             (i, { Smr_messages.vbal = chosen_vbal; vcmd = cmd }) :: acc
           else acc)
         st.chosen [])
  in
  Smr_messages.M1b { mbal = st.mbal; votes; chosen_upto = st.chosen_upto }

let handle_1a ctx st b =
  if b >= st.mbal then begin
    let st = if b > st.mbal then adopt_ballot ctx st b else st in
    Engine.send ctx ~dst:(Ballot.owner ~n:(n_of st) b) (my_1b st);
    st
  end
  else st

let handle_2a ctx st b instance cmd =
  if b >= st.mbal then begin
    let st = if b > st.mbal then adopt_ballot ctx st b else st in
    let accept =
      match Imap.find_opt instance st.ivotes with
      | Some (v : Smr_messages.ivote) -> b >= v.Smr_messages.vbal
      | None -> true
    in
    if accept && not (Imap.mem instance st.chosen) then begin
      let st =
        {
          st with
          ivotes =
            Imap.add instance
              { Smr_messages.vbal = b; vcmd = cmd }
              st.ivotes;
        }
      in
      Engine.broadcast ctx (Smr_messages.M2b { mbal = b; instance; cmd });
      st
    end
    else st
  end
  else st

let handle_2b ctx st ~src b instance cmd =
  let key = (instance, b) in
  let who, c =
    match IBmap.find_opt key st.p2b with
    | Some (q, c) -> (q, c)
    | None -> (Quorum.create ~n:(n_of st), cmd)
  in
  if not (Command.equal c cmd) then st
  else begin
    let who = Quorum.add who src in
    let st = { st with p2b = IBmap.add key (who, c) st.p2b } in
    if Quorum.reached who then learn_chosen ctx st instance cmd else st
  end

let handle_forward ctx st cmd =
  if st.leading && may_propose st cmd then propose ctx st cmd
  else add_pending st cmd

let handle_digest ctx st ~src upto =
  if st.chosen_upto > upto then begin
    let hi = Stdlib.min st.chosen_upto (upto + catchup_batch) in
    for i = upto to hi - 1 do
      Engine.send ctx ~dst:src
        (Smr_messages.Chosen { instance = i; cmd = Imap.find i st.chosen })
    done;
    st
  end
  else st

(* ------------------------------------------------------------------ *)
(* Session machinery (identical to the single-shot algorithm)          *)
(* ------------------------------------------------------------------ *)

let start_phase1 ctx st =
  let b = Ballot.next_session ~n:(n_of st) ~proc:(Engine.self ctx) st.mbal in
  adopt_ballot ctx st b

let maybe_start_phase1 ctx st =
  if Dgl.Session.can_start_phase1 st.session then start_phase1 ctx st else st

let hear ctx st ~src msg =
  match Smr_messages.mbal msg with
  | None -> st
  | Some b ->
      if Ballot.session ~n:(n_of st) b = st.session.Dgl.Session.number then
        maybe_start_phase1 ctx
          { st with session = Dgl.Session.hear st.session src }
      else st

(* ------------------------------------------------------------------ *)
(* Client submissions                                                  *)
(* ------------------------------------------------------------------ *)

let schedule_next_submission ctx st =
  if st.next_submit < Array.length st.workload then begin
    let at, _ = st.workload.(st.next_submit) in
    let delay = Float.max 0. (at -. Engine.local_time ctx) in
    Engine.set_timer ctx ~local_delay:delay ~tag:submit_tag
  end

let handle_submit ctx st =
  if st.next_submit >= Array.length st.workload then st
  else begin
    let _, cmd = st.workload.(st.next_submit) in
    let buf = Sim.Scratch.buffer (Engine.scratch ctx) in
    Buffer.add_string buf "submit:";
    Sim.Numfmt.add_int buf cmd.Command.id;
    Engine.note ctx (Buffer.contents buf);
    let st = { st with next_submit = st.next_submit + 1 } in
    schedule_next_submission ctx st;
    let st =
      if st.leading && may_propose st cmd then propose ctx st cmd
      else begin
        Engine.send ctx
          ~dst:(Ballot.owner ~n:(n_of st) st.mbal)
          (Smr_messages.Forward { cmd });
        add_pending st cmd
      end
    in
    st
  end

(* ------------------------------------------------------------------ *)
(* Timers                                                              *)
(* ------------------------------------------------------------------ *)

let on_timer_impl ctx st ~tag =
  if tag = submit_tag then handle_submit ctx st
  else if tag = resend_tag then begin
    let eps = st.cfg.Dgl.Config.epsilon in
    (* catch-up gossip + pending re-forward ride the epsilon tick *)
    Engine.broadcast ctx (Smr_messages.Chosen_digest { upto = st.chosen_upto });
    let leader = Ballot.owner ~n:(n_of st) st.mbal in
    List.iter
      (fun cmd ->
        if not (Iset.mem cmd.Command.id st.proposed_ids) then
          Engine.send ctx ~dst:leader (Smr_messages.Forward { cmd }))
      st.pending;
    let lnow = Engine.local_time ctx in
    let quiet = lnow -. st.last_active_local in
    let st =
      if quiet >= eps -. (eps *. 1e-9) then gossip_1a ctx st else st
    in
    Engine.set_timer ctx ~local_delay:eps ~tag:resend_tag;
    st
  end
  else if
    tag = st.session.Dgl.Session.number
    && not st.session.Dgl.Session.timer_expired
  then begin
    (* Progress gate (the paper's stable-case optimization): a session
       timeout only opens Start Phase 1 if there is outstanding work and
       nothing was chosen since the timer was armed.  Otherwise the
       current leadership is doing its job — re-arm and stand down.
       Safety never depends on when Start Phase 1 runs. *)
    let work_outstanding =
      st.pending <> []
      || Imap.exists (fun i _ -> not (Imap.mem i st.chosen)) st.ivotes
      || Imap.exists (fun i _ -> not (Imap.mem i st.chosen)) st.proposed
    in
    let progressed = st.chosen_upto > st.progress_mark in
    if (not st.progress_gate) || (work_outstanding && not progressed) then
      maybe_start_phase1 ctx
        { st with session = Dgl.Session.expire st.session }
    else begin
      Engine.set_timer ctx ~local_delay:st.cfg.Dgl.Config.timer_local
        ~tag:st.session.Dgl.Session.number;
      { st with progress_mark = st.chosen_upto }
    end
  end
  else st

(* ------------------------------------------------------------------ *)
(* Protocol record                                                     *)
(* ------------------------------------------------------------------ *)

let on_message_impl ctx st ~src msg =
  let st =
    match msg with
    | Smr_messages.M1a { mbal } -> handle_1a ctx st mbal
    | Smr_messages.M1b { mbal; votes; chosen_upto } ->
        handle_1b ctx st ~src mbal votes chosen_upto
    | Smr_messages.M2a { mbal; instance; cmd } ->
        handle_2a ctx st mbal instance cmd
    | Smr_messages.M2b { mbal; instance; cmd } ->
        handle_2b ctx st ~src mbal instance cmd
    | Smr_messages.Forward { cmd } -> handle_forward ctx st cmd
    | Smr_messages.Chosen_digest { upto } -> handle_digest ctx st ~src upto
    | Smr_messages.Chosen { instance; cmd } -> learn_chosen ctx st instance cmd
  in
  hear ctx st ~src msg

let initial_state ctx cfg ~progress_gate workload total_commands =
  let n = cfg.Dgl.Config.n in
  {
    cfg;
    progress_gate;
    workload;
    next_submit = 0;
    total_commands;
    mbal = Ballot.initial ~proc:(Engine.self ctx);
    session = Dgl.Session.initial ~n;
    ivotes = Imap.empty;
    chosen = Imap.empty;
    chosen_ids = Iset.empty;
    chosen_upto = 0;
    pending = [];
    p1b_from = Quorum.create ~n;
    p1b_watermark = 0;
    p1b_merged = Imap.empty;
    leading = false;
    next_instance = 0;
    proposed = Imap.empty;
    proposed_ids = Iset.empty;
    p2b = IBmap.empty;
    decided = false;
    last_active_local = Engine.local_time ctx;
    progress_mark = 0;
  }

let arm_timers ctx st =
  Engine.set_timer ctx ~local_delay:st.cfg.Dgl.Config.timer_local
    ~tag:st.session.Dgl.Session.number;
  Engine.set_timer ctx ~local_delay:st.cfg.Dgl.Config.epsilon ~tag:resend_tag;
  schedule_next_submission ctx st

let with_persist f ctx st =
  let st' = f ctx st in
  Engine.persist ctx st';
  st'

(* ------------------------------------------------------------------ *)
(* Durable essence (socket replica restart)                            *)
(* ------------------------------------------------------------------ *)

(* What a real process must carry across a crash is exactly what its 1b
   would report: highest ballot heard, accepted votes, and the chosen
   log (folded in as infinite-ballot votes).  The socket replica
   serializes this as a Wire M1b frame — one codec, CRC included. *)
type essence = {
  e_mbal : Ballot.t;
  e_votes : (int * Smr_messages.ivote) list;
  e_chosen_upto : int;
}

let essence st =
  let votes =
    Imap.fold
      (fun i v acc -> (i, v) :: acc)
      st.ivotes
      (Imap.fold
         (fun i cmd acc ->
           (i, { Smr_messages.vbal = chosen_vbal; vcmd = cmd }) :: acc)
         st.chosen [])
  in
  { e_mbal = st.mbal; e_votes = votes; e_chosen_upto = st.chosen_upto }

let restore ?(progress_gate = true) cfg ctx e =
  let st = initial_state ctx cfg ~progress_gate [||] 0 in
  let chosen, ivotes =
    List.fold_left
      (fun (ch, iv) (i, (v : Smr_messages.ivote)) ->
        if v.Smr_messages.vbal = chosen_vbal then
          (Imap.add i v.Smr_messages.vcmd ch, iv)
        else (ch, Imap.add i v iv))
      (Imap.empty, Imap.empty) e.e_votes
  in
  let n = cfg.Dgl.Config.n in
  let mbal = Stdlib.max e.e_mbal st.mbal in
  let number = Ballot.session ~n mbal in
  let session =
    if number > st.session.Dgl.Session.number then
      Dgl.Session.enter st.session ~number
    else st.session
  in
  let rec advance upto = if Imap.mem upto chosen then advance (upto + 1) else upto in
  let chosen_upto = advance (Stdlib.max 0 e.e_chosen_upto) in
  let horizon =
    Imap.fold
      (fun i _ acc -> Stdlib.max acc (i + 1))
      chosen
      (Imap.fold (fun i _ acc -> Stdlib.max acc (i + 1)) ivotes chosen_upto)
  in
  let st =
    {
      st with
      mbal;
      session;
      ivotes;
      chosen;
      chosen_ids =
        Imap.fold
          (fun _ c acc ->
            if Command.is_noop c then acc else Iset.add c.Command.id acc)
          chosen Iset.empty;
      chosen_upto;
      next_instance = horizon;
      progress_mark = chosen_upto;
    }
  in
  arm_timers ctx st;
  (* tell peers where we stand so their digests backfill the tail we
     lost between the last snapshot and the crash *)
  Engine.broadcast ctx (Smr_messages.Chosen_digest { upto = st.chosen_upto });
  Engine.persist ctx st;
  st

let protocol ?(progress_gate = true) cfg ~workloads =
  if Array.length workloads <> cfg.Dgl.Config.n then
    invalid_arg "Multi_paxos.protocol: workloads length differs from n";
  let all_ids =
    Array.to_list workloads
    |> List.concat_map (List.map (fun (_, c) -> c.Command.id))
  in
  if List.length all_ids <> List.length (List.sort_uniq Int.compare all_ids) then
    invalid_arg "Multi_paxos.protocol: duplicate command ids in workload";
  if List.exists (fun id -> id < 0) all_ids then
    invalid_arg "Multi_paxos.protocol: negative command id in workload";
  let total_commands = List.length all_ids in
  let boot ctx =
    let st =
      initial_state ctx cfg ~progress_gate
        (Array.of_list workloads.(Engine.self ctx))
        total_commands
    in
    arm_timers ctx st;
    Engine.persist ctx st;
    st
  in
  {
    Engine.name = "smr-multi-paxos";
    on_boot = boot;
    on_message =
      (fun ctx st ~src msg ->
        with_persist (fun ctx st -> on_message_impl ctx st ~src msg) ctx st);
    on_timer =
      (fun ctx st ~tag ->
        with_persist (fun ctx st -> on_timer_impl ctx st ~tag) ctx st);
    on_restart =
      (fun ctx ~persisted ->
        match persisted with
        | None -> boot ctx
        | Some st ->
            let st = { st with last_active_local = Engine.local_time ctx } in
            arm_timers ctx st;
            let st = maybe_start_phase1 ctx st in
            Engine.persist ctx st;
            st);
    msg_payload = Smr_messages.payload ~n:cfg.Dgl.Config.n;
  }
