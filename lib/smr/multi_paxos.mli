(** State machine replication over the modified Paxos algorithm.

    The paper's "Reducing Message Complexity" discussion is about systems
    that run {e a sequence of instances} of consensus: phase 1 can be
    executed once, in advance, for all instances, after which a stable
    leader commits each client command with a single phase-2 round —
    "all nonfaulty processes decide within 3 message delays" (forward to
    the leader, 2a, 2b).  This module realizes that design on top of the
    session-gated ballot machinery of {!Dgl}:

    - ballots and sessions are global (one Start Phase 1 action, one
      session timer, one majority-heard gate — identical to
      {!Dgl.Modified_paxos});
    - phase 1b messages report the sender's accepted votes for {e all}
      unchosen instances (chosen instances are reported as votes with an
      infinite ballot so a new leader can never contradict them);
    - a leader whose phase 1 completed assigns each new command to the
      next free instance and broadcasts a single 2a; followers forward
      client commands to the current ballot owner;
    - gaps left by leader changes are filled with [Noop]s, and replicas
      exchange [Chosen] entries so restarted processes catch up;
    - command ids make re-proposed commands idempotent: the state machine
      applies the first occurrence only.

    A process "decides" (in the engine's single-shot sense) when its
    contiguous chosen prefix contains every workload command; the decided
    value is an order-sensitive checksum of the applied command sequence,
    so the engine's agreement check doubles as a replicated-log
    divergence detector. *)

open Consensus

type state

(** [protocol cfg ~workloads] builds the engine protocol.

    [workloads.(p)] is process [p]'s submission schedule: commands paired
    with the local-clock time at which the client hands them to [p]
    (sorted ascending).  Command ids must be unique across the whole
    workload; raises [Invalid_argument] otherwise. *)
val protocol :
  ?progress_gate:bool ->
  Dgl.Config.t ->
  workloads:(float * Command.t) list array ->
  (Smr_messages.t, state) Sim.Engine.protocol
(** [progress_gate] (default true): Start Phase 1 fires only when there
    is outstanding work and nothing was chosen since the session timer
    was armed — the paper's "same behavior as normal Paxos in the stable
    case".  Disabling it (the A4 ablation) makes leadership churn every
    session timeout even in a healthy system. *)

(** {2 Accessors for tests and experiments} *)

val mbal : state -> Ballot.t

val session_number : state -> int

val leading : state -> bool

(** Length of the contiguous chosen prefix. *)
val chosen_upto : state -> int

(** The contiguous chosen prefix, oldest first. *)
val log_prefix : state -> Command.t list

(** The commands actually applied (first occurrences of non-noop
    commands in prefix order). *)
val applied : state -> Command.t list

(** Register value after applying {!applied} to 0. *)
val register : state -> int

val pending_count : state -> int

(** [chosen_at st i] — the command chosen at instance [i], if any (not
    limited to the contiguous prefix).  The socket replica uses it to
    apply instances incrementally as [chosen_upto] advances. *)
val chosen_at : state -> int -> Command.t option

(** {2 Durable essence (socket replica restart)}

    What a real process must carry across a crash is exactly what its
    phase-1b message reports: the highest ballot heard, its accepted
    votes, and the chosen log (folded in as infinite-ballot votes, the
    same convention the live protocol uses).  {!essence} extracts that
    triple; {!restore} rebuilds a working state from it on a fresh
    process, re-arms the session and resend timers, and broadcasts a
    [Chosen_digest] so peers backfill whatever was chosen after the
    snapshot was taken. *)

type essence = {
  e_mbal : Ballot.t;
  e_votes : (int * Smr_messages.ivote) list;
  e_chosen_upto : int;
}

val essence : state -> essence

val restore :
  ?progress_gate:bool ->
  Dgl.Config.t ->
  (Smr_messages.t, state) Sim.Runtime.ctx ->
  essence ->
  state
