(** The paper's recovery bound, checked against a wall-clock latency
    trace.

    After a disruption ends at time [after], the model promises that
    once message delays are δ-bounded again the cluster decides within
    [decision_bound]; on real hardware schedulers and snapshot cadence
    sit on top, so a slack term (default [max 1.0 bound]) is added.
    Three conditions must hold on the trace of
    [(completion wall time, latency)] samples:

    - commits exist after the settle point [after + bound + slack];
    - every post-settle latency is at most [bound + slack];
    - no inter-commit stall from just before [after] onwards exceeds
      [bound + slack].

    Used by [client --check-recovery] (samples parsed from a JSONL
    trace) and by {!Chaos}' campaign runner (samples straight from the
    {!Client.report}). *)

type verdict = {
  bound : float;  (** the model's decision bound *)
  slack : float;
  settled : float;  (** [after + bound + slack] *)
  total : int;  (** samples in the trace *)
  post : int;  (** samples after the settle point *)
  worst_post : float;  (** worst post-settle latency, seconds *)
  stall : float;  (** longest inter-commit gap from [after - 1] on *)
  failures : string list;  (** empty iff the bound holds *)
}

val check :
  bound:float ->
  ?slack:float ->
  after:float ->
  (float * float) list ->
  verdict
(** [check ~bound ~after samples] with samples as
    [(completion wall time, latency seconds)] in trace order. *)

val ok : verdict -> bool

val default_slack : float -> float
(** [max 1.0 bound] — CI-safe slack over the model's promise. *)

val pp : Format.formatter -> verdict -> unit
(** The summary line followed by one [FAIL: ...] line per failure. *)
