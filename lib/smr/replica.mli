(** A real process of the replicated key/value service.

    A replica is a {!Realtime.Netio} event loop that

    - listens on its cluster endpoint and speaks {!Wire} frames;
    - keeps one outbound connection per peer (reconnecting with backoff;
      frames sent while a link is down are dropped — the protocol's
      digest gossip and epsilon resend tick repair the loss);
    - drives the {e unmodified} {!Multi_paxos} protocol through a
      hand-built {!Sim.Runtime.ctx} whose clock is the loop's and whose
      self-addressed messages are deferred to a queue drained between
      handlers (a handler never runs re-entrantly);
    - batches accepted client commands into [Batch] decrees (up to
      [batch] per decree) and pipelines up to [window] of its own
      decrees in flight;
    - applies the contiguous chosen prefix to a {!Kv_state} and answers
      each client on the connection that submitted the command;
    - optionally snapshots its {!Multi_paxos.essence} to disk (written
      atomically: fsync, then rename; encoded as a single Wire M1b
      frame) so a SIGKILLed process restarts into the same ballot/vote
      state it last persisted, then catches up the chosen tail from its
      peers.  Snapshotting is periodic (group-commit style), so the
      last ~[snapshot_period] of promises/votes can be lost across a
      SIGKILL — an explicit divergence from the paper's synchronous
      stable-storage model (see "Durability caveat", DESIGN.md §5h);
      recovery additionally relies on a majority of peers staying up,
      which is the crash model of the paper's restart analysis.

    Metrics land in a {!Sim.Registry} under the [serve_*] family (see
    OBSERVABILITY.md). *)

type config = {
  id : int;  (** this replica's index into [cluster] *)
  cluster : (string * int) array;  (** (host, port) per replica *)
  bind : (string * int) option;
      (** listen here instead of [cluster.(id)] — lets a chaos proxy own
          the advertised cluster address while this replica serves from a
          backend port the proxy forwards to; [None] binds the cluster
          address directly *)
  delta : float;  (** the protocol's post-stabilization delay bound *)
  batch : int;  (** max client commands folded into one decree *)
  window : int;  (** max own decrees in flight (pipelining depth) *)
  snapshot : string option;  (** durable-essence path; [None] = volatile *)
  snapshot_period : float;  (** seconds between dirty-state snapshots *)
  seed : int;  (** PRNG seed (per-replica offset applied) *)
  verbose : bool;  (** progress chatter on stderr *)
}

val default_config : id:int -> cluster:(string * int) array -> config
(** delta 0.05s, batch 64, window 32, snapshot off, 50 ms snapshot
    period. *)

type t

val create : config -> t
(** Bind the listener (port [0] picks a free port — see {!port}) and
    build the protocol; does not start serving.  Raises
    [Invalid_argument] on a malformed config and [Unix.Unix_error] if
    the bind fails. *)

val port : t -> int
(** The actually bound listening port. *)

val set_peer_ports : t -> int array -> unit
(** Override the peers' ports before {!run} — for tests that bind every
    replica on port [0] and exchange the real ports afterwards. *)

val run : t -> unit
(** Serve until {!stop}: boot the protocol (or restore it from the
    snapshot file when one exists), then run the event loop.  On exit a
    final snapshot is written and every socket is closed. *)

val stop : t -> unit
(** Stop {!run} from any thread or signal handler. *)

val registry : t -> Sim.Registry.t
(** The [serve_*] counters and latency histogram. *)

(** {2 Probes for tests and the smoke harness} *)

val chosen_count : t -> int

val is_leading : t -> bool

val kv_get : t -> string -> string option
(** Local (non-linearizable) read of the applied store. *)

val kv_checksum : t -> int
(** Order-independent digest of the applied KV state — replicas that
    applied the same log prefix agree on it (the chaos campaign's
    agreement check). *)

val kv_applied : t -> int
(** Number of distinct commands applied (duplicates excluded). *)

val stats : t -> string
(** One-line dump of protocol and queue internals (ballot, session,
    chosen watermark, queue depths) for tests and load-harness
    diagnostics. *)
