type reply =
  | Stored
  | Found of string
  | Absent
  | Cas_ok
  | Cas_fail of string option
  | Noreply

type t = {
  store : (string, string) Hashtbl.t;
  (* command id -> cached reply, for exactly-once semantics when a
     command is re-decided after a leader change *)
  replies : (int, reply) Hashtbl.t;
  mutable applied : int;  (* count of non-noop commands executed *)
}

let create () =
  { store = Hashtbl.create 256; replies = Hashtbl.create 256; applied = 0 }

let reply_equal a b =
  match (a, b) with
  | Stored, Stored | Absent, Absent | Cas_ok, Cas_ok | Noreply, Noreply ->
      true
  | Found x, Found y -> String.equal x y
  | Cas_fail x, Cas_fail y -> Option.equal String.equal x y
  | (Stored | Found _ | Absent | Cas_ok | Cas_fail _ | Noreply), _ -> false

let pp_reply fmt = function
  | Stored -> Format.pp_print_string fmt "stored"
  | Found v -> Format.fprintf fmt "found(%s)" v
  | Absent -> Format.pp_print_string fmt "absent"
  | Cas_ok -> Format.pp_print_string fmt "cas-ok"
  | Cas_fail None -> Format.pp_print_string fmt "cas-fail(<absent>)"
  | Cas_fail (Some v) -> Format.fprintf fmt "cas-fail(%s)" v
  | Noreply -> Format.pp_print_string fmt "noreply"

let execute t (op : Command.op) =
  match op with
  | Command.Noop -> Noreply
  | Command.Set _ | Command.Add _ ->
      (* integer-register traffic: tracked by Command.apply elsewhere;
         the kv store only acknowledges it *)
      Noreply
  | Command.Kv_get key -> (
      match Hashtbl.find_opt t.store key with
      | Some v -> Found v
      | None -> Absent)
  | Command.Kv_put { key; value } ->
      Hashtbl.replace t.store key value;
      Stored
  | Command.Kv_cas { key; expect; set } ->
      let current = Hashtbl.find_opt t.store key in
      if Option.equal String.equal current expect then (
        Hashtbl.replace t.store key set;
        Cas_ok)
      else Cas_fail current
  | Command.Batch _ -> Noreply

let apply_one t (cmd : Command.t) =
  if cmd.id < 0 then (cmd.id, Noreply)
  else
    match Hashtbl.find_opt t.replies cmd.id with
    | Some cached -> (cmd.id, cached)  (* duplicate decree: replay reply *)
    | None ->
        let r = execute t cmd.op in
        Hashtbl.replace t.replies cmd.id r;
        t.applied <- t.applied + 1;
        (cmd.id, r)

let apply t (cmd : Command.t) =
  match cmd.op with
  | Command.Batch cmds -> List.map (apply_one t) cmds
  | Command.Noop when cmd.id < 0 -> []
  | Command.Set _ | Command.Add _ | Command.Noop | Command.Kv_get _
  | Command.Kv_put _ | Command.Kv_cas _ ->
      [ apply_one t cmd ]

let get t key = Hashtbl.find_opt t.store key

let size t = Hashtbl.length t.store

let applied t = t.applied

let checksum t =
  (* order-independent digest: xor of per-binding FNV digests, so two
     replicas with the same bindings agree regardless of Hashtbl layout *)
  let mix h x = (h lxor x) * 0x100000001b3 land max_int in
  let mix_string h s =
    let h = ref (mix h (String.length s)) in
    String.iter (fun c -> h := mix !h (Char.code c)) s;
    !h
  in
  (* lint: allow R3 — xor of digests is commutative, order-free *)
  Hashtbl.fold
    (fun k v acc -> acc lxor mix_string (mix_string 0xcbf29ce4 k) v)
    t.store 0
