(** Binary wire protocol for the socket cluster ([WIRE.md] is the
    byte-level spec; this module is its only implementation).

    Every frame is a 12-byte header — magic ["ES"], version byte, tag
    byte, payload length (u32, big-endian), CRC-32 of the payload (u32,
    big-endian) — followed by the payload.  Tags [0x10]–[0x16] carry the
    replica-to-replica messages of {!Smr_messages.t} verbatim; [0x01]
    identifies a connecting peer or client, and [0x20]/[0x21] are the
    client request/response pair.

    {!decode} is incremental: feed it a buffer prefix and it returns
    either a message plus the number of bytes consumed, [`Need_more]
    when the frame is still incomplete, or a typed {!error}.  Corrupt
    frames (bad magic, version, CRC, tag, or payload shape) are
    rejected without consuming input, so the caller decides whether to
    drop the connection. *)

(** Client-visible outcome of a command, as carried by a [Response]
    frame.  {!reply_of_kv} maps {!Kv_state.reply} onto it. *)
type reply =
  | R_stored  (** write acknowledged (put, register ops, noop) *)
  | R_value of string option  (** get result; [None] = key absent *)
  | R_cas of { ok : bool; actual : string option }
      (** cas outcome; [actual] is the losing binding on failure *)
  | R_redirect of { leader : int }
      (** not the leader; retry at replica [leader] *)
  | R_error of string

type t =
  | Hello of { sender : int }
      (** first frame on every connection; [sender] is the replica id,
          or [-1] for clients *)
  | Peer of Smr_messages.t  (** replica-to-replica consensus traffic *)
  | Request of { seq : int; cmd : Command.t }
      (** client command; [seq] is echoed in the response *)
  | Response of { seq : int; reply : reply }

type error =
  | Bad_magic
  | Bad_version
  | Bad_crc
  | Bad_tag of int
  | Too_large of int
  | Malformed

val header_len : int
(** Frame header size in bytes (12). *)

val max_payload : int
(** Largest accepted payload (16 MiB); longer frames are [Too_large]. *)

val encode : Buffer.t -> t -> unit
(** Append one complete frame (header + payload) to [buf]. *)

val to_bytes : t -> Bytes.t
(** [encode] into a fresh buffer. *)

val decode :
  Bytes.t ->
  pos:int ->
  avail:int ->
  (t * int, [ `Need_more | `Error of error ]) result
(** [decode buf ~pos ~avail] parses one frame starting at [pos], given
    [avail] readable bytes.  [Ok (msg, consumed)] on success;
    [`Need_more] when the buffer holds only a frame prefix. *)

val crc32 : Bytes.t -> int -> int -> int
(** [crc32 buf off len] — IEEE CRC-32 of a byte range (exposed for the
    spec's worked example and the tests). *)

val reply_of_kv : Kv_state.reply -> reply

val info : t -> string
(** One-line rendering for traces and verbose logs. *)

val pp_error : Format.formatter -> error -> unit
