(** Client for the socket cluster: synchronous KV operations and the
    closed-loop load generator.

    One blocking TCP connection to a cluster member, {!Wire} frames both
    ways.  On a connection failure the client reconnects to the next
    member round-robin and resubmits everything outstanding.  Delivery
    is therefore {e at-least-once}: replicas assign a fresh command id
    to every submission, so a resubmitted command may execute twice —
    acceptable for this KV workload and called out in WIRE.md. *)

type t

exception Disconnected of string
(** Raised when no cluster member is reachable (or a synchronous call
    exhausted its retry). *)

val connect :
  ?verbose:bool -> ?prefer:int -> ?backoff_seed:int -> (string * int) array -> t
(** Connect to the first reachable member, probing from [prefer]
    (default 0) — concurrent load generators should each prefer a
    different replica so the per-command framing work spreads across
    the cluster.  [backoff_seed] (default 1) seeds the reconnect
    jitter, keeping retry timing reproducible run to run. *)

val close : t -> unit

val member : t -> int
(** Index of the member currently connected to. *)

val reconnect_count : t -> int

val backoff_total : t -> float
(** Total seconds this client has slept between reconnect rounds. *)

val backoff_delay : ?base:float -> ?cap:float -> round:int -> float -> float
(** [backoff_delay ~round jitter] — the pure reconnect-delay curve:
    [min cap (base * 2^round)] scaled by a jitter factor in
    [0.75, 1.25) derived from [jitter] (which must lie in [0,1)).
    Defaults: [base = 0.05], [cap = 1.0].  Exposed so tests can pin
    the curve without sleeping. *)

(** {2 Synchronous operations}

    Each call is one command round trip: submit, wait for the decree to
    commit, return the replica's reply.  [timeout] (default 5 s) bounds
    the wait per attempt; one reconnect-and-retry on failure. *)

val put : t -> key:string -> value:string -> Wire.reply

val get : t -> string -> Wire.reply

val cas : t -> key:string -> expect:string option -> set:string -> Wire.reply

val request : ?timeout:float -> t -> Command.op -> Wire.reply

(** {2 Load generation} *)

type mix =
  | Mixed  (** 70% put / 20% get / 10% cas over a shared keyspace *)
  | Unique_puts
      (** command [i] is [put "u<i>" v] — idempotent, so at-least-once
          delivery yields exactly-once {e effects}; the chaos campaign's
          workload, where the final KV state certifies the run *)

type load = {
  commands : int;  (** total commands to push (>= 1) *)
  pipeline : int;  (** outstanding requests kept in flight *)
  value_bytes : int;
  keyspace : int;  (** keys are [k0 .. k(keyspace-1)] *)
  seed : int;
  mix : mix;
  latency_trace : string option;
      (** JSONL sink: one [{"t":epoch_seconds,"lat":seconds}] line per
          completed command — the input of [client --check-recovery] *)
}

val default_load : load
(** 100k commands, pipeline 64, 16-byte values, 1k keys. *)

type report = {
  sent : int;
  completed : int;
  resubmitted : int;  (** commands resent after a failover *)
  reconnects : int;
  backoff : float;  (** seconds slept between reconnect rounds *)
  elapsed : float;  (** seconds *)
  throughput : float;  (** completed commands per second *)
  latencies : float array;  (** per-command seconds, sorted ascending *)
  samples : (float * float) array;
      (** [(completion wall time, latency)] in completion order — the
          latency trace as data, for in-process recovery checks *)
}

val run_load : ?timeout:float -> t -> load -> report
(** Keep [pipeline] requests in flight until [commands] complete; on a
    connection failure, fail over and resubmit the outstanding window.
    The op mix is 70% put / 20% get / 10% cas over [keyspace] keys. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0,1] (e.g. [0.99]). *)
