(* Blocking pipelined client: one TCP connection to a cluster member,
   Wire frames both ways, failover to the next member on error with
   resubmission of everything outstanding (at-least-once — replicas
   assign fresh command ids, so a resubmitted command may execute
   twice; fine for the KV workload, documented in WIRE.md). *)

module Netio = Realtime.Netio

exception Disconnected of string

type t = {
  cluster : (string * int) array;
  mutable fd : Unix.file_descr option;
  mutable member : int;
  mutable inbuf : Bytes.t;
  mutable in_off : int;
  mutable in_len : int;
  mutable next_seq : int;
  mutable reconnects : int;
  mutable backoff_total : float;  (* seconds slept inside [reconnect] *)
  rng : Sim.Prng.t;  (* jitter source — seeded, so retry timing replays *)
  verbose : bool;
}

let log t fmt =
  if t.verbose then Printf.eprintf ("client: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let resolve_addr (host, port) =
  Unix.ADDR_INET (Netio.resolve host, port)

let hello_bytes () = Wire.to_bytes (Wire.Hello { sender = -1 })

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd bytes !off (len - !off) with
    | 0 -> raise (Disconnected "write returned 0")
    | n -> off := !off + n
    | exception Unix.Unix_error (e, _, _) ->
        raise (Disconnected (Unix.error_message e))
  done

let disconnect t =
  match t.fd with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.fd <- None
  | None -> ()

let try_connect_member t i =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (resolve_addr t.cluster.(i));
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    write_all fd (hello_bytes ());
    t.fd <- Some fd;
    t.member <- i;
    t.in_off <- 0;
    t.in_len <- 0;
    log t "connected to replica %d" i;
    true
  with
  | Unix.Unix_error _ | Disconnected _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      false

(* Capped exponential backoff with jitter: base doubles per completed
   round over the whole cluster, the jitter factor is uniform in
   [0.75, 1.25) so a fleet of clients that died together does not
   reconnect in lockstep.  Pure so tests can pin the curve. *)
let backoff_delay ?(base = 0.05) ?(cap = 1.0) ~round jitter =
  if round < 0 then invalid_arg "Client.backoff_delay: negative round";
  if jitter < 0. || jitter >= 1. then
    invalid_arg "Client.backoff_delay: jitter outside [0,1)";
  let exp = Float.min cap (base *. Float.pow 2. (float_of_int round)) in
  exp *. (0.75 +. (0.5 *. jitter))

(* Round-robin from [start] until some member accepts, backing off
   between full rounds. *)
let reconnect ?(attempts = 40) t =
  disconnect t;
  t.reconnects <- t.reconnects + 1;
  let n = Array.length t.cluster in
  let ok = ref false in
  let tries = ref 0 in
  while (not !ok) && !tries < attempts do
    let i = (t.member + 1 + !tries) mod n in
    if try_connect_member t i then ok := true
    else begin
      incr tries;
      if !tries mod n = 0 then begin
        let d = backoff_delay ~round:((!tries / n) - 1) (Sim.Prng.float t.rng 1.) in
        t.backoff_total <- t.backoff_total +. d;
        Unix.sleepf d
      end
    end
  done;
  if not !ok then raise (Disconnected "no cluster member reachable")

let connect ?(verbose = false) ?(prefer = 0) ?(backoff_seed = 1) cluster =
  if Array.length cluster = 0 then invalid_arg "Client.connect: empty cluster";
  let n = Array.length cluster in
  let t =
    {
      cluster;
      fd = None;
      (* reconnect starts probing at member+1, so aim it at [prefer] —
         spreading concurrent load generators across replicas *)
      member = (((prefer mod n) + n - 1) mod n + n) mod n;
      inbuf = Bytes.create 65536;
      in_off = 0;
      in_len = 0;
      next_seq = 0;
      reconnects = -1;  (* first connect is not a reconnect *)
      backoff_total = 0.;
      rng = Sim.Prng.create (Int64.of_int backoff_seed);
      verbose;
    }
  in
  reconnect t;
  t

let close t = disconnect t

let reconnect_count t = Stdlib.max 0 t.reconnects

let backoff_total t = t.backoff_total

let member t = t.member

let fd_exn t =
  match t.fd with Some fd -> fd | None -> raise (Disconnected "closed")

let send_request t cmd =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  write_all (fd_exn t) (Wire.to_bytes (Wire.Request { seq; cmd }));
  seq

(* Decode one frame from the receive buffer without touching the
   socket; [None] when no complete frame is buffered. *)
let buffered_frame t =
  match Wire.decode t.inbuf ~pos:t.in_off ~avail:(t.in_len - t.in_off) with
  | Ok (msg, used) ->
      t.in_off <- t.in_off + used;
      if t.in_off = t.in_len then begin
        t.in_off <- 0;
        t.in_len <- 0
      end;
      Some msg
  | Error (`Error e) ->
      raise (Disconnected (Format.asprintf "%a" Wire.pp_error e))
  | Error `Need_more -> None

(* Block (with [timeout] per select) until one full frame is buffered. *)
let rec recv_frame t ~timeout =
  match buffered_frame t with
  | Some msg -> msg
  | None ->
      let fd = fd_exn t in
      (match Unix.select [ fd ] [] [] timeout with
      | [], _, _ -> raise (Disconnected "timeout waiting for response")
      | _ :: _, _, _ ->
          (* compact before growing *)
          if t.in_off > 0 then begin
            Bytes.blit t.inbuf t.in_off t.inbuf 0 (t.in_len - t.in_off);
            t.in_len <- t.in_len - t.in_off;
            t.in_off <- 0
          end;
          let cap = Bytes.length t.inbuf in
          if cap - t.in_len < 4096 then begin
            let bigger = Bytes.create (cap * 2) in
            Bytes.blit t.inbuf 0 bigger 0 t.in_len;
            t.inbuf <- bigger
          end;
          (match
             Unix.read fd t.inbuf t.in_len (Bytes.length t.inbuf - t.in_len)
           with
          | 0 -> raise (Disconnected "connection closed by replica")
          | n -> t.in_len <- t.in_len + n
          | exception Unix.Unix_error (e, _, _) ->
              raise (Disconnected (Unix.error_message e)))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      recv_frame t ~timeout

(* Synchronous round trip (reconnects and retries on failure). *)
let request ?(timeout = 5.) t op =
  let attempt () =
    let seq = send_request t (Command.make ~id:0 op) in
    let rec await () =
      match recv_frame t ~timeout with
      | Wire.Response { seq = s; reply } when s = seq -> reply
      | Wire.Response _ | Wire.Hello _ | Wire.Peer _ | Wire.Request _ ->
          await ()
    in
    await ()
  in
  try attempt ()
  with Disconnected reason ->
    log t "round trip failed (%s); reconnecting" reason;
    reconnect t;
    attempt ()

let put t ~key ~value = request t (Command.Kv_put { key; value })

let get t key = request t (Command.Kv_get key)

let cas t ~key ~expect ~set = request t (Command.Kv_cas { key; expect; set })

(* ------------------------------------------------------------------ *)
(* Closed-loop load generator                                          *)
(* ------------------------------------------------------------------ *)

type mix =
  | Mixed  (* 70% put / 20% get / 10% cas over a shared keyspace *)
  | Unique_puts
      (* command i puts key "u<i>": idempotent, so at-least-once delivery
         yields exactly-once *effects* — what a chaos campaign asserts *)

type load = {
  commands : int;
  pipeline : int;  (* outstanding requests kept in flight *)
  value_bytes : int;
  keyspace : int;
  seed : int;
  mix : mix;
  latency_trace : string option;  (* JSONL: {"t":epoch_s,"lat":seconds} *)
}

let default_load =
  {
    commands = 100_000;
    pipeline = 64;
    value_bytes = 16;
    keyspace = 1024;
    seed = 1;
    mix = Mixed;
    latency_trace = None;
  }

type report = {
  sent : int;
  completed : int;
  resubmitted : int;
  reconnects : int;
  backoff : float;  (* seconds spent sleeping between reconnect rounds *)
  elapsed : float;
  throughput : float;  (* completed commands per second *)
  latencies : float array;  (* sorted, seconds *)
  samples : (float * float) array;
      (* (completion wall time, latency) in completion order — the
         latency trace as data, whether or not a JSONL sink was given *)
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(Stdlib.min (n - 1) (int_of_float (q *. float_of_int n)))

let gen_op rng ~mix ~keyspace ~value_bytes i =
  match mix with
  | Unique_puts ->
      Command.Kv_put
        {
          key = "u" ^ string_of_int i;
          value = Printf.sprintf "%0*d" value_bytes (i land 0xffffff);
        }
  | Mixed ->
      let key = Printf.sprintf "k%d" (Sim.Prng.int rng keyspace) in
      let roll = Sim.Prng.int rng 10 in
      if roll < 7 then
        Command.Kv_put
          { key; value = Printf.sprintf "%0*d" value_bytes (i land 0xffffff) }
      else if roll < 9 then Command.Kv_get key
      else
        Command.Kv_cas
          {
            key;
            expect = None;
            set = Printf.sprintf "%0*d" value_bytes (i land 0xffffff);
          }

let run_load ?(timeout = 10.) t load =
  if load.commands < 1 || load.pipeline < 1 then
    invalid_arg "Client.run_load: commands and pipeline must be >= 1";
  let rng = Sim.Prng.create (Int64.of_int load.seed) in
  let trace =
    match load.latency_trace with
    | Some path -> Some (open_out path)
    | None -> None
  in
  let pending = Hashtbl.create (2 * load.pipeline) in
  (* seq -> (op, send wall time) *)
  let latencies = Array.make load.commands 0. in
  let samples = Array.make load.commands (0., 0.) in
  let sent = ref 0 in
  let completed = ref 0 in
  let resubmitted = ref 0 in
  let t0 = Netio.wall () in
  (* requests are encoded into [outbuf] and written in one burst: one
     syscall per window refill instead of one per command *)
  let outbuf = Buffer.create 65536 in
  let submit op =
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Wire.encode outbuf (Wire.Request { seq; cmd = Command.make ~id:0 op });
    Hashtbl.replace pending seq (op, Netio.wall ())
  in
  let flush_requests () =
    if Buffer.length outbuf > 0 then begin
      let bytes = Buffer.to_bytes outbuf in
      Buffer.clear outbuf;
      write_all (fd_exn t) bytes
    end
  in
  let top_up () =
    while Hashtbl.length pending < load.pipeline && !sent < load.commands do
      submit
        (gen_op rng ~mix:load.mix ~keyspace:load.keyspace
           ~value_bytes:load.value_bytes !sent);
      incr sent
    done;
    flush_requests ()
  in
  let resubmit_outstanding () =
    Buffer.clear outbuf;
    (* lint: allow R3 — the pipelined window is unordered by design *)
    let stuck = Hashtbl.fold (fun _ (op, _) acc -> op :: acc) pending [] in
    Hashtbl.reset pending;
    resubmitted := !resubmitted + List.length stuck;
    List.iter submit stuck;
    flush_requests ()
  in
  let handle_frame = function
    | Wire.Response { seq; reply = _ } -> (
        match Hashtbl.find_opt pending seq with
        | Some (_, ts) ->
            Hashtbl.remove pending seq;
            let now = Netio.wall () in
            let lat = now -. ts in
            if !completed < load.commands then begin
              latencies.(!completed) <- lat;
              samples.(!completed) <- (now, lat)
            end;
            incr completed;
            (match trace with
            | Some oc ->
                Printf.fprintf oc "{\"t\":%.6f,\"lat\":%.6f}\n" now lat
            | None -> ())
        | None -> ())
    | Wire.Hello _ | Wire.Peer _ | Wire.Request _ -> ()
  in
  while !completed < load.commands do
    (try
       top_up ();
       (* block for one frame, then drain every response already
          buffered before refilling: one request burst per response
          burst instead of one write syscall per response *)
       handle_frame (recv_frame t ~timeout);
       let draining = ref true in
       while !draining do
         match buffered_frame t with
         | Some msg -> handle_frame msg
         | None -> draining := false
       done
     with Disconnected reason ->
       log t "load interrupted (%s); failing over" reason;
       reconnect t;
       resubmit_outstanding ())
  done;
  let elapsed = Netio.wall () -. t0 in
  (match trace with Some oc -> close_out oc | None -> ());
  let n = Stdlib.min !completed load.commands in
  let lat = Array.sub latencies 0 n in
  Array.sort Float.compare lat;
  {
    sent = !sent;
    completed = !completed;
    resubmitted = !resubmitted;
    reconnects = reconnect_count t;
    backoff = t.backoff_total;
    elapsed;
    throughput =
      (if elapsed > 0. then float_of_int !completed /. elapsed else 0.);
    latencies = lat;
    samples = Array.sub samples 0 n;
  }
