(* Byte-level codec for the cluster protocol.  WIRE.md is the normative
   spec; the loopback test decodes the hexdump printed there, so keep
   the two in lockstep. *)

(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320). *)
(* lint: allow R4 — write-once CRC table, never mutated after init *)
let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc32 bytes off len =
  let c = ref 0xffffffff in
  for i = off to off + len - 1 do
    c :=
      crc_table.((!c lxor Char.code (Bytes.get bytes i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

type reply =
  | R_stored
  | R_value of string option
  | R_cas of { ok : bool; actual : string option }
  | R_redirect of { leader : int }
  | R_error of string

type t =
  | Hello of { sender : int }
  | Peer of Smr_messages.t
  | Request of { seq : int; cmd : Command.t }
  | Response of { seq : int; reply : reply }

type error =
  | Bad_magic
  | Bad_version
  | Bad_crc
  | Bad_tag of int
  | Too_large of int
  | Malformed

let pp_error fmt = function
  | Bad_magic -> Format.pp_print_string fmt "bad magic"
  | Bad_version -> Format.pp_print_string fmt "unsupported version"
  | Bad_crc -> Format.pp_print_string fmt "payload CRC mismatch"
  | Bad_tag t -> Format.fprintf fmt "unknown tag 0x%02x" t
  | Too_large n -> Format.fprintf fmt "payload length %d exceeds limit" n
  | Malformed -> Format.pp_print_string fmt "malformed payload"

let version = 0x01
let header_len = 12
let max_payload = 0x100_0000 (* 16 MiB *)

(* frame tags *)
let tag_hello = 0x01
let tag_m1a = 0x10
let tag_m1b = 0x11
let tag_m2a = 0x12
let tag_m2b = 0x13
let tag_forward = 0x14
let tag_chosen_digest = 0x15
let tag_chosen = 0x16
let tag_request = 0x20
let tag_response = 0x21

let tag_of = function
  | Hello _ -> tag_hello
  | Peer (Smr_messages.M1a _) -> tag_m1a
  | Peer (Smr_messages.M1b _) -> tag_m1b
  | Peer (Smr_messages.M2a _) -> tag_m2a
  | Peer (Smr_messages.M2b _) -> tag_m2b
  | Peer (Smr_messages.Forward _) -> tag_forward
  | Peer (Smr_messages.Chosen_digest _) -> tag_chosen_digest
  | Peer (Smr_messages.Chosen _) -> tag_chosen
  | Request _ -> tag_request
  | Response _ -> tag_response

(* ---- payload writers (big-endian throughout) ---- *)

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let w_u32 b v = Buffer.add_int32_be b (Int32.of_int v)
let w_s64 b v = Buffer.add_int64_be b (Int64.of_int v)

let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_opt_string b = function
  | None -> w_u8 b 0
  | Some s ->
      w_u8 b 1;
      w_string b s

(* command opcodes *)
let op_noop = 0x00
let op_set = 0x01
let op_add = 0x02
let op_get = 0x03
let op_put = 0x04
let op_cas = 0x05
let op_batch = 0x06

let rec w_cmd b (c : Command.t) =
  w_s64 b c.id;
  match c.op with
  | Command.Noop -> w_u8 b op_noop
  | Command.Set v ->
      w_u8 b op_set;
      w_s64 b v
  | Command.Add d ->
      w_u8 b op_add;
      w_s64 b d
  | Command.Kv_get k ->
      w_u8 b op_get;
      w_string b k
  | Command.Kv_put { key; value } ->
      w_u8 b op_put;
      w_string b key;
      w_string b value
  | Command.Kv_cas { key; expect; set } ->
      w_u8 b op_cas;
      w_string b key;
      w_opt_string b expect;
      w_string b set
  | Command.Batch cmds ->
      w_u8 b op_batch;
      w_u32 b (List.length cmds);
      List.iter (w_cmd b) cmds

let w_reply b = function
  | R_stored -> w_u8 b 0x00
  | R_value v ->
      w_u8 b 0x01;
      w_opt_string b v
  | R_cas { ok; actual } ->
      w_u8 b 0x02;
      w_u8 b (if ok then 1 else 0);
      w_opt_string b actual
  | R_redirect { leader } ->
      w_u8 b 0x03;
      w_s64 b leader
  | R_error msg ->
      w_u8 b 0x04;
      w_string b msg

let w_payload b = function
  | Hello { sender } -> w_s64 b sender
  | Peer (Smr_messages.M1a { mbal }) -> w_s64 b mbal
  | Peer (Smr_messages.M1b { mbal; votes; chosen_upto }) ->
      w_s64 b mbal;
      w_s64 b chosen_upto;
      w_u32 b (List.length votes);
      List.iter
        (fun (i, (v : Smr_messages.ivote)) ->
          w_s64 b i;
          w_s64 b v.vbal;
          w_cmd b v.vcmd)
        votes
  | Peer (Smr_messages.M2a { mbal; instance; cmd })
  | Peer (Smr_messages.M2b { mbal; instance; cmd }) ->
      w_s64 b mbal;
      w_s64 b instance;
      w_cmd b cmd
  | Peer (Smr_messages.Forward { cmd }) -> w_cmd b cmd
  | Peer (Smr_messages.Chosen_digest { upto }) -> w_s64 b upto
  | Peer (Smr_messages.Chosen { instance; cmd }) ->
      w_s64 b instance;
      w_cmd b cmd
  | Request { seq; cmd } ->
      w_s64 b seq;
      w_cmd b cmd
  | Response { seq; reply } ->
      w_s64 b seq;
      w_reply b reply

let encode buf msg =
  let payload = Buffer.create 64 in
  w_payload payload msg;
  let len = Buffer.length payload in
  let body = Buffer.to_bytes payload in
  Buffer.add_char buf 'E';
  Buffer.add_char buf 'S';
  w_u8 buf version;
  w_u8 buf (tag_of msg);
  w_u32 buf len;
  w_u32 buf (crc32 body 0 len);
  Buffer.add_bytes buf body

let to_bytes msg =
  let b = Buffer.create 64 in
  encode b msg;
  Buffer.to_bytes b

(* ---- payload readers ---- *)

exception Truncated

type reader = { rbuf : Bytes.t; mutable rpos : int; rend : int }

let need r n = if r.rpos + n > r.rend then raise Truncated

let r_u8 r =
  need r 1;
  let v = Char.code (Bytes.get r.rbuf r.rpos) in
  r.rpos <- r.rpos + 1;
  v

let r_u32 r =
  need r 4;
  let v = Int32.to_int (Bytes.get_int32_be r.rbuf r.rpos) land 0xffffffff in
  r.rpos <- r.rpos + 4;
  v

let r_s64 r =
  need r 8;
  let v = Int64.to_int (Bytes.get_int64_be r.rbuf r.rpos) in
  r.rpos <- r.rpos + 8;
  v

let r_string r =
  let n = r_u32 r in
  need r n;
  let s = Bytes.sub_string r.rbuf r.rpos n in
  r.rpos <- r.rpos + n;
  s

let r_opt_string r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (r_string r)
  | _ -> raise Truncated

let rec r_cmd r : Command.t =
  let id = r_s64 r in
  let op =
    match r_u8 r with
    | o when o = op_noop -> Command.Noop
    | o when o = op_set -> Command.Set (r_s64 r)
    | o when o = op_add -> Command.Add (r_s64 r)
    | o when o = op_get -> Command.Kv_get (r_string r)
    | o when o = op_put ->
        let key = r_string r in
        let value = r_string r in
        Command.Kv_put { key; value }
    | o when o = op_cas ->
        let key = r_string r in
        let expect = r_opt_string r in
        let set = r_string r in
        Command.Kv_cas { key; expect; set }
    | o when o = op_batch ->
        let n = r_u32 r in
        if n > max_payload then raise Truncated;
        let cmds = List.init n (fun _ -> r_cmd r) in
        Command.Batch cmds
    | _ -> raise Truncated
  in
  { id; op }

let r_reply r =
  match r_u8 r with
  | 0x00 -> R_stored
  | 0x01 -> R_value (r_opt_string r)
  | 0x02 ->
      let ok = r_u8 r = 1 in
      let actual = r_opt_string r in
      R_cas { ok; actual }
  | 0x03 -> R_redirect { leader = r_s64 r }
  | 0x04 -> R_error (r_string r)
  | _ -> raise Truncated

let r_payload tag r =
  if tag = tag_hello then Some (Hello { sender = r_s64 r })
  else if tag = tag_m1a then Some (Peer (Smr_messages.M1a { mbal = r_s64 r }))
  else if tag = tag_m1b then (
    let mbal = r_s64 r in
    let chosen_upto = r_s64 r in
    let n = r_u32 r in
    if n > max_payload then raise Truncated;
    let votes =
      List.init n (fun _ ->
          let i = r_s64 r in
          let vbal = r_s64 r in
          let vcmd = r_cmd r in
          (i, { Smr_messages.vbal; vcmd }))
    in
    Some (Peer (Smr_messages.M1b { mbal; votes; chosen_upto })))
  else if tag = tag_m2a then (
    let mbal = r_s64 r in
    let instance = r_s64 r in
    let cmd = r_cmd r in
    Some (Peer (Smr_messages.M2a { mbal; instance; cmd })))
  else if tag = tag_m2b then (
    let mbal = r_s64 r in
    let instance = r_s64 r in
    let cmd = r_cmd r in
    Some (Peer (Smr_messages.M2b { mbal; instance; cmd })))
  else if tag = tag_forward then Some (Peer (Smr_messages.Forward { cmd = r_cmd r }))
  else if tag = tag_chosen_digest then
    Some (Peer (Smr_messages.Chosen_digest { upto = r_s64 r }))
  else if tag = tag_chosen then (
    let instance = r_s64 r in
    let cmd = r_cmd r in
    Some (Peer (Smr_messages.Chosen { instance; cmd })))
  else if tag = tag_request then (
    let seq = r_s64 r in
    let cmd = r_cmd r in
    Some (Request { seq; cmd }))
  else if tag = tag_response then (
    let seq = r_s64 r in
    let reply = r_reply r in
    Some (Response { seq; reply }))
  else None

let decode buf ~pos ~avail =
  if avail < header_len then Error `Need_more
  else if Bytes.get buf pos <> 'E' || Bytes.get buf (pos + 1) <> 'S' then
    Error (`Error Bad_magic)
  else if Char.code (Bytes.get buf (pos + 2)) <> version then
    Error (`Error Bad_version)
  else
    let tag = Char.code (Bytes.get buf (pos + 3)) in
    let len =
      Int32.to_int (Bytes.get_int32_be buf (pos + 4)) land 0xffffffff
    in
    if len > max_payload then Error (`Error (Too_large len))
    else if avail < header_len + len then Error `Need_more
    else
      let crc_expect =
        Int32.to_int (Bytes.get_int32_be buf (pos + 8)) land 0xffffffff
      in
      if crc32 buf (pos + header_len) len <> crc_expect then
        Error (`Error Bad_crc)
      else
        let r = { rbuf = buf; rpos = pos + header_len; rend = pos + header_len + len } in
        match r_payload tag r with
        | None -> Error (`Error (Bad_tag tag))
        | Some msg ->
            (* every payload byte must be consumed: trailing garbage is
               a framing bug, not forward-compat slack *)
            if r.rpos <> r.rend then Error (`Error Malformed)
            else Ok (msg, header_len + len)
        | exception Truncated -> Error (`Error Malformed)

let info = function
  | Hello { sender } -> Printf.sprintf "hello(%d)" sender
  | Peer m -> Smr_messages.info m
  | Request { seq; cmd } ->
      Printf.sprintf "request(#%d,%s)" seq (Command.info cmd)
  | Response { seq; _ } -> Printf.sprintf "response(#%d)" seq

let reply_of_kv = function
  | Kv_state.Stored | Kv_state.Noreply -> R_stored
  | Kv_state.Found v -> R_value (Some v)
  | Kv_state.Absent -> R_value None
  | Kv_state.Cas_ok -> R_cas { ok = true; actual = None }
  | Kv_state.Cas_fail actual -> R_cas { ok = false; actual }
