(** The replicated key/value store driven by the chosen log.

    A {!t} is the materialized effect of a log prefix: a string-keyed
    store plus a per-command-id reply cache.  The cache gives
    exactly-once semantics — a command decided twice (possible when two
    leaders re-propose across a session change) executes once and the
    second application replays the cached reply — which is what lets the
    socket replica ({!Replica}) answer client retries idempotently.

    Apply order must match the chosen-log order on every replica; the
    store itself is deterministic, so replicas that applied the same
    prefix agree on {!checksum}. *)

type reply =
  | Stored  (** [Kv_put] acknowledged *)
  | Found of string  (** [Kv_get] hit *)
  | Absent  (** [Kv_get] miss *)
  | Cas_ok  (** [Kv_cas] succeeded *)
  | Cas_fail of string option
      (** [Kv_cas] expectation failed; carries the actual binding *)
  | Noreply  (** register ops and noops: nothing to report *)

type t

val create : unit -> t

val apply : t -> Command.t -> (int * reply) list
(** Execute one decree.  Returns one [(command id, reply)] pair per
    client command executed (a [Batch] yields one pair per element, the
    gap-filler noop yields none), in execution order.  Duplicate ids are
    not re-executed; their cached reply is returned. *)

val get : t -> string -> string option
(** Read a binding directly (bypasses the log — for local probes). *)

val size : t -> int
(** Number of live bindings. *)

val applied : t -> int
(** Count of distinct client commands executed so far. *)

val checksum : t -> int
(** Order-independent digest of the current bindings; replicas that
    applied the same log prefix agree on it. *)

val reply_equal : reply -> reply -> bool

val pp_reply : Format.formatter -> reply -> unit
