type op =
  | Set of int
  | Add of int
  | Noop
  | Kv_get of string
  | Kv_put of { key : string; value : string }
  | Kv_cas of { key : string; expect : string option; set : string }
  | Batch of t list

and t = { id : int; op : op }

let rec valid_op = function
  | Set _ | Add _ | Noop | Kv_get _ | Kv_put _ | Kv_cas _ -> true
  | Batch cmds ->
      (* one level of batching only: a decree is a flat run of client
         commands, each with its own non-negative id *)
      List.for_all
        (fun c ->
          c.id >= 0
          && (match c.op with Batch _ -> false | _ -> true)
          && valid_op c.op)
        cmds

let make ~id op =
  if id < 0 then invalid_arg "Command.make: negative id";
  if not (valid_op op) then
    invalid_arg "Command.make: nested or malformed batch";
  { id; op }

let noop = { id = -1; op = Noop }

let is_noop c = match c.op with Noop -> true | _ -> false

let rec apply state cmd =
  match cmd.op with
  | Set v -> v
  | Add d -> state + d
  | Noop -> state
  (* key/value traffic leaves the integer register untouched; the real
     store lives in {!Kv_state} *)
  | Kv_get _ | Kv_put _ | Kv_cas _ -> state
  | Batch cmds -> List.fold_left apply state cmds

(* FNV-1a over (id, op) words: cheap, order-sensitive. *)
let mix h x = (h lxor x) * 0x100000001b3 land max_int

let mix_string h s =
  let h = ref (mix h (String.length s)) in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h

let mix_opt_string h = function
  | None -> mix h 0
  | Some s -> mix_string (mix h 1) s

let rec mix_cmd h c =
  let h = mix h c.id in
  match c.op with
  | Set v -> mix (mix h 1) v
  | Add d -> mix (mix h 2) d
  | Noop -> mix (mix h 3) 0
  | Kv_get k -> mix_string (mix h 4) k
  | Kv_put { key; value } -> mix_string (mix_string (mix h 5) key) value
  | Kv_cas { key; expect; set } ->
      mix_string (mix_opt_string (mix_string (mix h 6) key) expect) set
  | Batch cmds ->
      List.fold_left mix_cmd (mix (mix h 7) (List.length cmds)) cmds

let checksum cmds = List.fold_left mix_cmd 0xcbf29ce4 cmds

let rec equal a b =
  a.id = b.id
  &&
  match (a.op, b.op) with
  | Set x, Set y | Add x, Add y -> x = y
  | Noop, Noop -> true
  | Kv_get x, Kv_get y -> String.equal x y
  | Kv_put x, Kv_put y ->
      String.equal x.key y.key && String.equal x.value y.value
  | Kv_cas x, Kv_cas y ->
      String.equal x.key y.key
      && Option.equal String.equal x.expect y.expect
      && String.equal x.set y.set
  | Batch x, Batch y -> List.equal equal x y
  | (Set _ | Add _ | Noop | Kv_get _ | Kv_put _ | Kv_cas _ | Batch _), _ ->
      false

let rec pp fmt c =
  match c.op with
  | Set v -> Format.fprintf fmt "cmd%d:set(%d)" c.id v
  | Add d -> Format.fprintf fmt "cmd%d:add(%d)" c.id d
  | Noop -> Format.fprintf fmt "noop"
  | Kv_get k -> Format.fprintf fmt "cmd%d:get(%s)" c.id k
  | Kv_put { key; value } ->
      Format.fprintf fmt "cmd%d:put(%s=%s)" c.id key value
  | Kv_cas { key; expect; set } ->
      Format.fprintf fmt "cmd%d:cas(%s,%s->%s)" c.id key
        (match expect with None -> "<absent>" | Some e -> e)
        set
  | Batch cmds ->
      Format.fprintf fmt "cmd%d:batch[%d]{" c.id (List.length cmds);
      List.iteri
        (fun i sub ->
          if i > 0 then Format.pp_print_char fmt ' ';
          pp fmt sub)
        cmds;
      Format.pp_print_char fmt '}'

let info c = Format.asprintf "%a" pp c
