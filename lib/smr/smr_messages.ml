open Consensus

type ivote = { vbal : Ballot.t; vcmd : Command.t }

type t =
  | M1a of { mbal : Ballot.t }
  | M1b of {
      mbal : Ballot.t;
      votes : (int * ivote) list;
      chosen_upto : int;
    }
  | M2a of { mbal : Ballot.t; instance : int; cmd : Command.t }
  | M2b of { mbal : Ballot.t; instance : int; cmd : Command.t }
  | Forward of { cmd : Command.t }
  | Chosen_digest of { upto : int }
  | Chosen of { instance : int; cmd : Command.t }

let mbal = function
  | M1a { mbal } | M1b { mbal; _ } | M2a { mbal; _ } | M2b { mbal; _ } ->
      Some mbal
  | Forward _ | Chosen_digest _ | Chosen _ -> None

let info = function
  | M1a { mbal } -> Printf.sprintf "1a(b%d)" mbal
  | M1b { mbal; votes; chosen_upto } ->
      Printf.sprintf "1b(b%d,%d votes,upto %d)" mbal (List.length votes)
        chosen_upto
  | M2a { mbal; instance; cmd } ->
      Printf.sprintf "2a(b%d,i%d,%s)" mbal instance (Command.info cmd)
  | M2b { mbal; instance; cmd } ->
      Printf.sprintf "2b(b%d,i%d,%s)" mbal instance (Command.info cmd)
  | Forward { cmd } -> Printf.sprintf "forward(%s)" (Command.info cmd)
  | Chosen_digest { upto } -> Printf.sprintf "digest(upto %d)" upto
  | Chosen { instance; cmd } ->
      Printf.sprintf "chosen(i%d,%s)" instance (Command.info cmd)

let payload ~n = function
  | M1a { mbal } ->
      Sim.Trace.payload ~ballot:mbal ~session:(Ballot.session ~n mbal)
        ~phase:1 "1a"
  | M1b { mbal; votes; chosen_upto } ->
      Sim.Trace.payload ~ballot:mbal ~session:(Ballot.session ~n mbal)
        ~phase:1
        ~detail:(Printf.sprintf "%d votes,upto %d" (List.length votes)
                   chosen_upto)
        "1b"
  | M2a { mbal; instance; cmd } ->
      Sim.Trace.payload ~ballot:mbal ~session:(Ballot.session ~n mbal)
        ~phase:2 ~round:instance ~detail:(Command.info cmd) "2a"
  | M2b { mbal; instance; cmd } ->
      Sim.Trace.payload ~ballot:mbal ~session:(Ballot.session ~n mbal)
        ~phase:2 ~round:instance ~detail:(Command.info cmd) "2b"
  | Forward { cmd } -> Sim.Trace.payload ~detail:(Command.info cmd) "forward"
  | Chosen_digest { upto } ->
      Sim.Trace.payload ~detail:(Printf.sprintf "upto %d" upto) "digest"
  | Chosen { instance; cmd } ->
      Sim.Trace.payload ~round:instance ~detail:(Command.info cmd) "chosen"
