(** Wire messages of the multi-instance (state-machine-replication)
    variant of the modified Paxos algorithm.

    Ballots and sessions are global — one phase 1 covers {e all}
    instances, which is what lets a stable leader commit each command in
    phase 2 alone ("phase 1 is executed in advance for all instances of
    the algorithm", Section 4).  Phase 2 messages name the log instance
    they belong to. *)

open Consensus

(** A per-instance accepted vote: the highest ballot at which the sender
    accepted a command in that instance, and the command. *)
type ivote = { vbal : Ballot.t; vcmd : Command.t }

type t =
  | M1a of { mbal : Ballot.t }
  | M1b of {
      mbal : Ballot.t;
      votes : (int * ivote) list;
          (** accepted votes for every instance not yet known chosen *)
      chosen_upto : int;  (** sender's contiguous chosen prefix length *)
    }
  | M2a of { mbal : Ballot.t; instance : int; cmd : Command.t }
  | M2b of { mbal : Ballot.t; instance : int; cmd : Command.t }
  | Forward of { cmd : Command.t }
      (** client command forwarded to the believed leader *)
  | Chosen_digest of { upto : int }
      (** gossip: my contiguous chosen prefix has this length *)
  | Chosen of { instance : int; cmd : Command.t }
      (** catch-up: this instance's chosen command *)

(** Ballot carried by the message ([None] for ballot-free messages). *)
val mbal : t -> Ballot.t option

(** One-line human-readable description. *)
val info : t -> string

(** Structured trace payload.  The log instance of a phase-2 message is
    carried in the [round] field; [session] is the global session of the
    message's ballot. *)
val payload : n:int -> t -> Sim.Trace.payload
