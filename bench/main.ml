(* Benchmark harness.

   Two halves:
   1. Bechamel micro-benchmarks — one [Test.make] per experiment table,
      each timing one representative execution of that experiment's
      scenario (so the cost of regenerating each table is itself
      tracked), plus substrate micro-benches (event queue, PRNG, the
      ordering oracle).
   2. The experiment tables themselves (E1-E9, A1, A2): the rows that
      reproduce each of the paper's quantitative claims.

   BENCH_SPEED=full widens the sweeps (more sizes, more seeds);
   BENCH_SKIP_MICRO=1 skips the expensive per-experiment bechamel half —
   the cheap substrate micro-benches (event queue, PRNG, heaps, oracle)
   always run, so micro_ns_per_run is never empty.

   A third section benchmarks the model checker itself (layered-BFS
   throughput, visited-table footprint, serial-vs-parallel speedup);
   its numbers land in BENCH_RESULTS.json as mcheck_*.  A fourth runs a
   seeded fault-injection fuzz campaign over the default protocol mix;
   its throughput and counters land as fuzz_*. *)

open Bechamel

let delta = 0.01

let ts = 0.5

(* --- representative single runs, one per experiment table ----------- *)

let run_modified_paxos ~n ~network ~faults ~injections () =
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts ~delta ~seed:42L ~network ~faults ()
  in
  let cfg = Dgl.Config.make ~n ~delta () in
  Sim.Engine.run ~injections sc (Dgl.Modified_paxos.protocol cfg)

let e1_once () =
  let n = 9 in
  let victims = Harness.Adversaries.faulty_minority ~n in
  ignore
    (run_modified_paxos ~n ~network:Sim.Network.deterministic_after_ts
       ~faults:(Sim.Fault.make ~initially_down:victims [])
       ~injections:
         (Harness.Adversaries.dgl_session1_injections ~n ~from:ts
            ~spacing:(2. *. delta) ~victims)
       ())

let e2_once () =
  let n = 9 in
  let victims = Harness.Adversaries.faulty_minority ~n in
  let faults = Sim.Fault.make ~initially_down:victims [] in
  let t0 =
    Harness.Adversaries.traditional_first_start ~ts ~theta:(2. *. delta)
      ~stabilize_delay:delta
  in
  let injections =
    Harness.Adversaries.paxos_aligned_injections ~n ~delta ~t0 ~leader:0
      ~victims
  in
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts ~delta ~seed:42L
      ~network:Sim.Network.deterministic_after_ts ~faults ()
  in
  let oracle = Baselines.Leader_election.make ~n ~ts ~delta ~faults () in
  ignore
    (Sim.Engine.run ~injections sc
       (Baselines.Traditional_paxos.protocol ~n ~delta ~oracle ()))

let e3_once () =
  let n = 9 in
  let dead = List.init (Consensus.Quorum.majority n - 1) (fun i -> i) in
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts ~delta ~seed:42L
      ~network:Sim.Network.silent_until_ts
      ~faults:(Sim.Fault.make ~initially_down:dead [])
      ()
  in
  ignore
    (Sim.Engine.run sc (Baselines.Rotating_coordinator.protocol ~n ~delta ()))

let e4_once () =
  let n = 5 in
  let faults =
    Sim.Fault.crash_then_restart ~crash_at:(ts /. 2.)
      ~restart_at:(ts +. (20. *. delta))
      2
  in
  ignore
    (run_modified_paxos ~n
       ~network:(Sim.Network.eventually_synchronous ())
       ~faults ~injections:[] ())

let e5_once () =
  let n = 9 in
  let victims = Harness.Adversaries.faulty_minority ~n in
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts ~delta ~seed:42L
      ~network:Sim.Network.silent_until_ts
      ~faults:(Sim.Fault.make ~initially_down:victims [])
      ()
  in
  ignore
    (Sim.Engine.run sc
       (Bconsensus.Modified_b_consensus.protocol ~n ~delta ~rho:0. ()))

let e6_once () =
  let n = 5 in
  let cfg = Dgl.Config.make ~n ~delta ~epsilon:delta () in
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts ~delta ~seed:42L
      ~network:Sim.Network.silent_until_ts ()
  in
  ignore (Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg))

let e7_once () =
  let n = 5 in
  let cfg = Dgl.Config.make ~n ~delta () in
  let options = { Dgl.Modified_paxos.default_options with prestart = true } in
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts:0. ~delta ~seed:42L
      ~network:Sim.Network.deterministic_after_ts ()
  in
  ignore (Sim.Engine.run sc (Dgl.Modified_paxos.protocol ~options cfg))

let e8_once () =
  let n = 5 in
  let cfg = Dgl.Config.make ~n ~delta ~sigma:(8. *. delta) () in
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts ~delta ~seed:42L
      ~network:Sim.Network.silent_until_ts ()
  in
  ignore (Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg))

let e9_once () =
  let n = 5 in
  let cfg = Dgl.Config.make ~n ~delta ~rho:0.05 () in
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts ~delta ~rho:0.05 ~seed:42L
      ~network:Sim.Network.silent_until_ts ()
  in
  ignore (Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg))

let a1_once () =
  let n = 9 in
  let victims = Harness.Adversaries.faulty_minority ~n in
  let cfg = Dgl.Config.make ~n ~delta () in
  let options =
    { Dgl.Modified_paxos.default_options with session_gate = false }
  in
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts ~delta ~seed:42L
      ~network:Sim.Network.deterministic_after_ts
      ~faults:(Sim.Fault.make ~initially_down:victims [])
      ()
  in
  ignore
    (Sim.Engine.run
       ~injections:
         (Harness.Adversaries.dgl_high_session_injections ~n ~from:ts
            ~spacing:(3. *. delta) ~victims)
       sc
       (Dgl.Modified_paxos.protocol ~options cfg))

let a2_once () =
  let n = 9 in
  let tuning =
    {
      (Bconsensus.Modified_b_consensus.default_tuning ~delta) with
      hold_back = 0.5 *. delta;
    }
  in
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts ~delta ~seed:42L
      ~network:(Sim.Network.eventually_synchronous ())
      ~horizon:(ts +. (500. *. delta))
      ()
  in
  ignore
    (Sim.Engine.run sc
       (Bconsensus.Modified_b_consensus.protocol ~tuning ~n ~delta ~rho:0. ()))

let e10_once () =
  let n = 5 in
  let cfg = Dgl.Config.make ~n ~delta () in
  let workloads =
    Array.init n (fun p ->
        if p <> 1 then []
        else
          List.init 4 (fun k ->
              ( 0.2 +. (10. *. delta *. float_of_int k),
                Smr.Command.make ~id:k (Smr.Command.Add 1) )))
  in
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts:0. ~delta ~seed:42L
      ~network:Sim.Network.deterministic_after_ts ~horizon:1.0 ()
  in
  ignore (Sim.Engine.run sc (Smr.Multi_paxos.protocol cfg ~workloads))

let a3_once () =
  let n = 5 in
  let tuning =
    {
      (Bconsensus.Modified_b_consensus.default_tuning ~delta) with
      epsilon = delta;
      jump = false;
    }
  in
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts:(25. *. delta) ~delta ~seed:42L
      ~network:(Sim.Network.partitioned_until_ts [ List.init (n - 1) Fun.id ])
      ~horizon:(25. *. delta +. 2.) ()
  in
  ignore
    (Sim.Engine.run sc
       (Bconsensus.Modified_b_consensus.protocol ~tuning ~n ~delta ~rho:0. ()))

let e11_once () =
  let n = 9 in
  let dead = List.init (n - Consensus.Quorum.majority n) Fun.id in
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts ~delta ~seed:42L
      ~network:Sim.Network.deterministic_after_ts
      ~faults:(Sim.Fault.make ~initially_down:dead [])
      ~horizon:(ts +. 1.0) ()
  in
  ignore (Sim.Engine.run sc (Baselines.Heartbeat_omega.protocol ~n ~delta ()))

let a4_once () =
  let n = 5 in
  let cfg = Dgl.Config.make ~n ~delta () in
  let workloads =
    Array.init n (fun p ->
        if p <> 1 then []
        else [ (0.1, Smr.Command.make ~id:0 (Smr.Command.Add 1)) ])
  in
  let sc =
    Sim.Scenario.make ~name:"bench" ~n ~ts:0. ~delta ~seed:42L
      ~network:Sim.Network.always_synchronous ~stop_on_all_decided:false
      ~horizon:1.0 ()
  in
  ignore
    (Sim.Engine.run sc
       (Smr.Multi_paxos.protocol ~progress_gate:false cfg ~workloads))

(* --- substrate micro-benches ---------------------------------------- *)

let heap_churn () =
  let cmp (a1, i1) (a2, i2) =
    let c = Float.compare a1 a2 in
    if c <> 0 then c else Int.compare i1 i2
  in
  let h = ref (Sim.Pairing_heap.empty ~cmp) in
  for i = 0 to 999 do
    h := Sim.Pairing_heap.insert !h (float_of_int ((i * 7919) mod 997), i)
  done;
  for _ = 0 to 999 do
    match Sim.Pairing_heap.pop_min !h with
    | Some (_, rest) -> h := rest
    | None -> ()
  done

(* The engine's actual queue since the packed-event rework: five unboxed
   int fields per event, int-compare ordering.  Keeps the historical
   [substrate/event-queue-1k] name so BENCH_RESULTS.json trajectories
   stay comparable — same 1k-churn workload.  The queue is reused across
   runs ([clear], not [create]) because that is how the engine uses it:
   one queue per simulation, millions of events; steady-state churn is
   the quantity the packed rework optimizes. *)
let event_queue_q = Sim.Packed_queue.create ()

let event_queue_churn () =
  let q = event_queue_q in
  Sim.Packed_queue.clear q;
  for i = 0 to 999 do
    Sim.Packed_queue.add q
      ~key:((i * 7919) mod 997)
      ~ord:i ~f1:i ~f2:0 ~f3:0
  done;
  for _ = 0 to 999 do
    ignore (Sim.Packed_queue.min_f1 q : int);
    Sim.Packed_queue.drop_min q
  done

(* Same churn on the generic comparator-based binary heap (the queue the
   packed one replaced; still used by non-engine callers). *)
let generic_event_queue_churn () =
  let cmp (a1, i1) (a2, i2) =
    let c = Float.compare a1 a2 in
    if c <> 0 then c else Int.compare i1 i2
  in
  let q = Sim.Event_queue.create ~cmp () in
  for i = 0 to 999 do
    Sim.Event_queue.add q (float_of_int ((i * 7919) mod 997), i)
  done;
  for _ = 0 to 999 do
    ignore (Sim.Event_queue.pop_min q)
  done

let prng_draws () =
  let rng = Sim.Prng.create 1L in
  for _ = 0 to 999 do
    ignore (Sim.Prng.float rng 1.0)
  done

let oracle_churn () =
  let o = ref (Bconsensus.Ordering_oracle.create ~owner:0 ~hold_local:0.02) in
  for i = 0 to 199 do
    let oo, stamp = Bconsensus.Ordering_oracle.next_stamp !o in
    let oo, _release =
      Bconsensus.Ordering_oracle.receive oo
        ~now_local:(float_of_int i *. 0.001)
        ~stamp (i, i)
    in
    o := oo
  done;
  ignore (Bconsensus.Ordering_oracle.due !o ~now_local:10.)

(* The cheap substrate micro-benches always run (microseconds each);
   BENCH_SKIP_MICRO only drops the per-experiment half, which re-times a
   whole simulated execution per sample. *)
let cheap_cases =
  [
    Test.make ~name:"substrate/pairing-heap-1k" (Staged.stage heap_churn);
    Test.make ~name:"substrate/event-queue-1k" (Staged.stage event_queue_churn);
    Test.make ~name:"substrate/generic-event-queue-1k"
      (Staged.stage generic_event_queue_churn);
    Test.make ~name:"substrate/prng-1k" (Staged.stage prng_draws);
    Test.make ~name:"substrate/ordering-oracle-200" (Staged.stage oracle_churn);
  ]

let expensive_cases =
  [
      Test.make ~name:"e1/modified-paxos-run" (Staged.stage e1_once);
      Test.make ~name:"e2/traditional-paxos-run" (Staged.stage e2_once);
      Test.make ~name:"e3/rotating-coordinator-run" (Staged.stage e3_once);
      Test.make ~name:"e4/restart-run" (Staged.stage e4_once);
      Test.make ~name:"e5/b-consensus-run" (Staged.stage e5_once);
      Test.make ~name:"e6/epsilon-run" (Staged.stage e6_once);
      Test.make ~name:"e7/prestart-run" (Staged.stage e7_once);
      Test.make ~name:"e8/sigma-run" (Staged.stage e8_once);
      Test.make ~name:"e9/drift-run" (Staged.stage e9_once);
      Test.make ~name:"a1/ungated-run" (Staged.stage a1_once);
      Test.make ~name:"a2/holdback-run" (Staged.stage a2_once);
      Test.make ~name:"e10/smr-run" (Staged.stage e10_once);
      Test.make ~name:"e11/omega-run" (Staged.stage e11_once);
    Test.make ~name:"a3/nojump-run" (Staged.stage a3_once);
    Test.make ~name:"a4/progress-gate-run" (Staged.stage a4_once);
  ]

(* [run_micro cases] prints the human table and returns
   [(name, ns_per_run option, r_square option)] rows for the JSON dump. *)
let run_micro cases =
  let tests = Test.make_grouped ~name:"repro" cases in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows = Sim.Sorted_tbl.bindings ~compare:String.compare results in
  Printf.printf "--- micro-benchmarks (monotonic clock, OLS ns/run) ---\n";
  let rows =
    List.map
      (fun (name, o) ->
        let est =
          match Analyze.OLS.estimates o with
          | Some [ est ] -> Some est
          | _ -> None
        in
        let r2 = Analyze.OLS.r_square o in
        (match est with
        | Some est ->
            Printf.printf "  %-36s %12.0f ns/run  (r2 %s)\n" name est
              (match r2 with
              | Some r2 -> Printf.sprintf "%.3f" r2
              | None -> "n/a")
        | None -> Printf.printf "  %-36s (no estimate)\n" name);
        (name, est, r2))
      rows
  in
  print_newline ();
  rows

(* --- engine throughput and allocation instruments -------------------- *)

(* Steady-state engine speed over the hot-path token ring: n processes,
   one message event each per delta of virtual time, tracing off, rng-free
   network.  ~1M events per timed run, warmed up once so queue/arena
   growth is excluded. *)
let engine_stats () =
  let sc = Harness.Hotpath.scenario ~n:100 ~horizon:100. () in
  let events () =
    (Sim.Engine.run sc Harness.Hotpath.pinger).Sim.Engine.events_processed
  in
  ignore (events () : int);
  let t0 = Unix.gettimeofday () in
  let e = events () in
  let wall = Unix.gettimeofday () -. t0 in
  let events_per_s = if wall > 0. then float_of_int e /. wall else 0. in
  let words_per_event =
    Harness.Hotpath.alloc_words_per_event Harness.Hotpath.pinger ~n:3
      ~horizon_lo:1.0 ~horizon_hi:11.0
  in
  (* Whole-run allocation of a representative real workload: one
     modified-paxos execution under the conformance scenario (RNG-drawing
     network, tracing off), setup and boot/decide included. *)
  let words_per_run =
    let sc =
      Sim.Scenario.make ~name:"bench-alloc" ~n:3 ~ts ~delta ~seed:42L
        ~network:(Sim.Network.eventually_synchronous ())
        ~horizon:(ts +. (500. *. delta))
        ()
    in
    let cfg = Dgl.Config.make ~n:3 ~delta () in
    let once () =
      ignore
        (Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg)
          : _ Sim.Engine.run_result)
    in
    once ();
    let w0 = Gc.minor_words () in
    once ();
    Gc.minor_words () -. w0
  in
  Printf.printf
    "engine: %.2fM events/s; %.2f words/event steady-state, %.0f words per \
     modified-paxos run\n\n\
     %!"
    (events_per_s /. 1e6) words_per_event words_per_run;
  (events_per_s, words_per_event, words_per_run)

let engine_metric_names =
  [ "engine_events_per_s"; "alloc_words_per_event"; "alloc_words_per_run" ]

(* --- real-socket cluster throughput ---------------------------------- *)

(* An in-process 3-replica cluster on loopback (port 0, one Netio loop
   per replica thread) loaded by the blocking pipelined client — the
   same stack `consensus_sim serve`/`client --load` run across real
   processes, minus fork/exec.  Produces the serve_* family: headline
   numbers as top-level JSON keys, plus the replica-side counters and
   commit-latency histogram merged into ["metrics"] when a registry is
   supplied. *)
let serve_delta = 0.02

let serve_stats ?metrics ~commands ~pipeline () =
  let n = 3 in
  let cluster = Array.make n ("127.0.0.1", 0) in
  let replicas =
    Array.init n (fun id ->
        Smr.Replica.create
          {
            (Smr.Replica.default_config ~id ~cluster) with
            delta = serve_delta;
            batch = 256;
            window = 64;
            seed = 7;
          })
  in
  let ports = Array.map Smr.Replica.port replicas in
  Array.iter (fun r -> Smr.Replica.set_peer_ports r ports) replicas;
  let threads =
    Array.map (fun r -> Thread.create (fun () -> Smr.Replica.run r) ()) replicas
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter Smr.Replica.stop replicas;
      Array.iter Thread.join threads)
    (fun () ->
      let endpoints = Array.map (fun p -> ("127.0.0.1", p)) ports in
      let c = Smr.Client.connect endpoints in
      let report =
        Fun.protect
          ~finally:(fun () -> Smr.Client.close c)
          (fun () ->
            Smr.Client.run_load c
              { Smr.Client.default_load with commands; pipeline; seed = 3 })
      in
      let pct q =
        1000. *. Smr.Client.percentile report.Smr.Client.latencies q
      in
      (match metrics with
      | Some reg ->
          Array.iter
            (fun l ->
              Sim.Registry.observe reg "serve_client_latency_delta"
                (l /. serve_delta))
            report.Smr.Client.latencies;
          Array.iter
            (fun r -> Sim.Registry.merge_into ~dst:reg (Smr.Replica.registry r))
            replicas
      | None -> ());
      Printf.printf
        "serve: %d commands at %.0f cmd/s over the loopback socket cluster \
         (pipeline %d; p50 %.2f ms, p99 %.2f ms)\n\n\
         %!"
        report.Smr.Client.completed report.Smr.Client.throughput pipeline
        (pct 0.5) (pct 0.99);
      (report.Smr.Client.throughput, pct 0.5, pct 0.99))

let serve_metric_names =
  [ "serve_commands_per_s"; "serve_latency_p50_ms"; "serve_latency_p99_ms" ]

(* --- chaos campaign throughput ---------------------------------------- *)

(* A seeded fault campaign through the in-process chaos proxy (see
   DESIGN.md §5i): chaos_commands_per_s is client throughput *through
   the adversary*, chaos_faults_injected the volume of interference the
   run absorbed.  Both are meaningless if the robustness contract
   breaks, so a failed campaign fails the bench. *)
let chaos_stats ?metrics ~commands ~pipeline () =
  let schedule =
    Chaos.Schedule.generate ~seed:7L ~n:3 ~ts:0.4 ~delta:serve_delta
      ~horizon:1.6 ()
  in
  let outcome =
    Chaos.Campaign.run
      {
        (Chaos.Campaign.default_config schedule) with
        Chaos.Campaign.commands;
        pipeline;
      }
  in
  if not (Chaos.Campaign.ok outcome) then begin
    Format.printf "%a" Chaos.Campaign.pp_outcome outcome;
    failwith "chaos campaign violated its robustness contract during bench"
  end;
  let reg = outcome.Chaos.Campaign.registry in
  let faults =
    List.fold_left
      (fun acc n -> acc + Sim.Registry.counter_total reg n)
      0
      [
        "chaos_dropped";
        "chaos_delayed";
        "chaos_duplicated";
        "chaos_reordered";
        "chaos_corrupted";
        "chaos_truncated";
        "chaos_resets";
      ]
  in
  let throughput =
    match outcome.Chaos.Campaign.report with
    | Some r -> r.Smr.Client.throughput
    | None -> 0.
  in
  (match metrics with
  | Some dst -> Sim.Registry.merge_into ~dst reg
  | None -> ());
  Printf.printf
    "chaos: %d commands at %.0f cmd/s through the fault proxy (%d faults \
     injected)\n\n\
     %!"
    commands throughput faults;
  (throughput, faults)

let chaos_metric_names = [ "chaos_commands_per_s"; "chaos_faults_injected" ]

(* --- smoke mode ------------------------------------------------------- *)

(* [--smoke]: the cheap micro-benches plus the engine/allocation
   instruments, with the produced metric-name set diffed against the
   committed schema (bench/metric_schema.txt).  Run by `./dev check`, so
   a rename or silent disappearance of a performance metric fails CI
   before it corrupts the BENCH_RESULTS.json trajectory.  Never writes
   BENCH_RESULTS.json. *)
let smoke () =
  let micro = run_micro cheap_cases in
  ignore (engine_stats () : float * float * float);
  ignore (serve_stats ~commands:5_000 ~pipeline:128 () : float * float * float);
  ignore (chaos_stats ~commands:2_000 ~pipeline:64 () : float * int);
  let produced =
    List.sort_uniq String.compare
      (List.map (fun (name, _, _) -> name) micro
      @ engine_metric_names @ serve_metric_names @ chaos_metric_names)
  in
  let schema_path =
    match Lint.Driver.find_root () with
    | Some root -> Filename.concat root "bench/metric_schema.txt"
    | None -> "bench/metric_schema.txt"
  in
  let committed =
    let ic = open_in schema_path in
    let rec go acc =
      match input_line ic with
      | line ->
          let line = String.trim line in
          go (if line = "" || line.[0] = '#' then acc else line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.sort_uniq String.compare acc
    in
    go []
  in
  let missing = List.filter (fun n -> not (List.mem n produced)) committed in
  let extra = List.filter (fun n -> not (List.mem n committed)) produced in
  if missing = [] && extra = [] then begin
    Printf.printf "bench smoke: ok (%d metric names match %s)\n"
      (List.length produced) schema_path;
    exit 0
  end
  else begin
    List.iter
      (fun n -> Printf.eprintf "bench smoke: missing metric %s\n" n)
      missing;
    List.iter
      (fun n ->
        Printf.eprintf
          "bench smoke: unexpected metric %s (add it to %s if intentional)\n" n
          schema_path)
      extra;
    exit 1
  end

(* --- machine-readable results dump ----------------------------------- *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let json_opt_float = function Some f -> json_float f | None -> "null"

let write_results ~path ~speed ~domains ~wall ~serial_wall ~micro ~metrics
    ~mcheck ~fuzz ~engine ~serve ~chaos ~invariants_ok ~lint =
  let mc_states, mc_wall, mc_states_per_s, mc_visited_mb, mc_speedup =
    mcheck
  in
  let fuzz_runs, fuzz_wall, fuzz_runs_per_s, fuzz_failures = fuzz in
  let events_per_s, words_per_event, words_per_run = engine in
  let serve_tp, serve_p50_ms, serve_p99_ms = serve in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"speed\": %s,\n" (json_string speed);
  p "  \"domains\": %d,\n" domains;
  p "  \"engine_events_per_s\": %s,\n" (json_float events_per_s);
  p "  \"alloc_words_per_event\": %s,\n" (json_float words_per_event);
  p "  \"alloc_words_per_run\": %s,\n" (json_float words_per_run);
  p "  \"experiments\": {\n";
  p "    \"wall_clock_s\": %s,\n" (json_float wall);
  p "    \"serial_wall_clock_s\": %s,\n" (json_opt_float serial_wall);
  p "    \"parallel_speedup\": %s\n"
    (match serial_wall with
    | Some s when wall > 0. -> json_float (s /. wall)
    | _ -> "null");
  p "  },\n";
  p "  \"mcheck_states\": %d,\n" mc_states;
  p "  \"mcheck_wall_clock_s\": %s,\n" (json_float mc_wall);
  p "  \"mcheck_states_per_s\": %s,\n" (json_float mc_states_per_s);
  p "  \"mcheck_visited_mb\": %s,\n" (json_float mc_visited_mb);
  p "  \"mcheck_speedup\": %s,\n" (json_opt_float mc_speedup);
  p "  \"fuzz_runs\": %d,\n" fuzz_runs;
  p "  \"fuzz_wall_clock_s\": %s,\n" (json_float fuzz_wall);
  p "  \"fuzz_runs_per_s\": %s,\n" (json_float fuzz_runs_per_s);
  p "  \"fuzz_failures\": %d,\n" fuzz_failures;
  p "  \"serve_commands_per_s\": %s,\n" (json_float serve_tp);
  p "  \"serve_latency_p50_ms\": %s,\n" (json_float serve_p50_ms);
  p "  \"serve_latency_p99_ms\": %s,\n" (json_float serve_p99_ms);
  (let chaos_tp, chaos_faults = chaos in
   p "  \"chaos_commands_per_s\": %s,\n" (json_float chaos_tp);
   p "  \"chaos_faults_injected\": %d,\n" chaos_faults);
  p "  \"trace_invariants_ok\": %b,\n" invariants_ok;
  (match lint with
  | Some (lint_ok, findings, rules_run, callgraph_nodes) ->
      p "  \"lint_ok\": %b,\n" lint_ok;
      p "  \"lint_findings\": %d,\n" findings;
      p "  \"lint_rules_run\": %d,\n" rules_run;
      p "  \"lint_callgraph_nodes\": %d,\n" callgraph_nodes
  | None ->
      p "  \"lint_ok\": null,\n";
      p "  \"lint_findings\": null,\n";
      p "  \"lint_rules_run\": null,\n";
      p "  \"lint_callgraph_nodes\": null,\n");
  p "  \"metrics\": %s,\n" (Sim.Registry.to_json metrics);
  p "  \"micro_ns_per_run\": [";
  List.iteri
    (fun i (name, est, r2) ->
      p "%s\n    { \"name\": %s, \"ns_per_run\": %s, \"r_square\": %s }"
        (if i = 0 then "" else ",")
        (json_string name) (json_opt_float est) (json_opt_float r2))
    micro;
  p "\n  ]\n}\n";
  close_out oc

let () =
  if Array.exists (String.equal "--smoke") Sys.argv then smoke ();
  let speed =
    match Sys.getenv_opt "BENCH_SPEED" with
    | Some "full" -> Harness.Experiments.Full
    | _ -> Harness.Experiments.Quick
  in
  let speed_name =
    match speed with Harness.Experiments.Full -> "full" | Quick -> "quick"
  in
  let micro =
    run_micro
      (if Sys.getenv_opt "BENCH_SKIP_MICRO" = None then
         cheap_cases @ expensive_cases
       else cheap_cases)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let domains = Harness.Measure.domain_count () in
  Harness.Experiments.reset_metrics ();
  let tables, wall = time (fun () -> Harness.Experiments.all ~speed ()) in
  (* Aggregate counters/histograms from every run the sweeps performed,
     snapshotted before the serial re-run below double-counts them. *)
  let metrics = Harness.Experiments.metrics_snapshot () in
  Harness.Report.print_all Format.std_formatter tables;
  Format.printf "@.";
  Harness.Report.bar_chart Format.std_formatter
    ~title:
      "Headline figure: worst-case decision latency after TS, each \
       algorithm under its worst admissible adversary"
    ~unit_label:"delta"
    (Harness.Experiments.headline ~speed ());
  (* Re-run the sweeps on one domain so the JSON records the speedup the
     pool delivers on this machine. *)
  let serial_wall =
    if domains > 1 then
      let _, w =
        time (fun () ->
            Harness.Measure.with_domains 1 (fun () ->
                Harness.Experiments.all ~speed ()))
      in
      Some w
    else None
  in
  Format.printf "@.(experiments regenerated in %.1fs on %d domain%s%s, \
                 speed=%s)@."
    wall domains
    (if domains = 1 then "" else "s")
    (match serial_wall with
    | Some s when wall > 0. ->
        Printf.sprintf "; serial %.1fs, speedup %.2fx" s (s /. wall)
    | _ -> "")
    speed_name;
  (* Trace-driven invariant checking over one traced replay per
     experiment: the same checker the `trace` CLI and tests run. *)
  let invariants_ok =
    List.for_all
      (fun id ->
        match Harness.Experiments.replay id with
        | Some rp ->
            let ok =
              Harness.Invariants.ok rp.Harness.Experiments.invariants
            in
            if not ok then
              Format.printf "TRACE INVARIANT FAILURE in %s: %a@." id
                Harness.Invariants.pp rp.Harness.Experiments.invariants;
            ok
        | None -> false)
      Harness.Experiments.ids
  in
  Format.printf "trace invariants: %s on %d replayed scenarios@."
    (if invariants_ok then "OK" else "FAILED")
    (List.length Harness.Experiments.ids);
  (* Model-checker throughput: one deep bounded search of the paxos core
     (~2*10^5 states at depth 10) on the pool, re-run serially when the
     pool is real so the JSON records the speedup on this machine. *)
  let mcheck =
    let cfg =
      { Mcheck.Model.n = 3; proposals = [| 10; 20; 30 |]; max_session = 1;
        gate = true }
    in
    let properties = Mcheck.Explorer.all_properties cfg in
    let search ?registry ~domains () =
      Mcheck.Explorer.run ~max_depth:10 ~domains ?registry cfg
        ~max_states:1_000_000 ~properties
    in
    let o, mc_wall = time (fun () -> search ~registry:metrics ~domains ()) in
    let serial_wall =
      if domains > 1 then Some (snd (time (fun () -> search ~domains:1 ())))
      else None
    in
    let states_per_s =
      if mc_wall > 0. then float_of_int o.Mcheck.Explorer.states /. mc_wall
      else 0.
    in
    let visited_mb =
      float_of_int o.Mcheck.Explorer.table_words *. 8. /. 1e6
    in
    let speedup =
      match serial_wall with
      | Some s when mc_wall > 0. -> Some (s /. mc_wall)
      | _ -> None
    in
    Format.printf
      "mcheck: %d states, %d transitions in %.1fs (%.0f states/s, visited \
       table %.1f MB, %d domain%s%s)@."
      o.Mcheck.Explorer.states o.Mcheck.Explorer.transitions mc_wall
      states_per_s visited_mb domains
      (if domains = 1 then "" else "s")
      (match speedup with
      | Some sp -> Printf.sprintf ", speedup %.2fx" sp
      | None -> "");
    (o.Mcheck.Explorer.states, mc_wall, states_per_s, visited_mb, speedup)
  in
  (* Fuzzer throughput: a seeded campaign over the default protocol mix
     (the same workload `consensus_sim fuzz` runs).  Its counters land
     in the shared registry as fuzz_*; a healthy tree reports zero
     failures here. *)
  let fuzz =
    let budget =
      match speed with Harness.Experiments.Full -> 1000 | Quick -> 200
    in
    let summary, fz_wall =
      time (fun () -> Harness.Fuzz.campaign ~budget ~seed:42L ())
    in
    Harness.Fuzz.register_metrics metrics summary;
    let runs_per_s =
      if fz_wall > 0. then float_of_int summary.Harness.Fuzz.runs /. fz_wall
      else 0.
    in
    Format.printf
      "fuzz: %d runs in %.1fs (%.0f runs/s, %d failure%s, %d domain%s)@."
      summary.Harness.Fuzz.runs fz_wall runs_per_s
      summary.Harness.Fuzz.failures
      (if summary.Harness.Fuzz.failures = 1 then "" else "s")
      domains
      (if domains = 1 then "" else "s");
    (summary.Harness.Fuzz.runs, fz_wall, runs_per_s,
     summary.Harness.Fuzz.failures)
  in
  (* Static-analysis verdict alongside the dynamic one: the same pass
     `consensus_sim lint` runs, against the checked-in baseline.  [None]
     when the sources are not on disk (e.g. an installed binary). *)
  let lint =
    match Lint.Driver.find_root () with
    | None -> None
    | Some root ->
        let baseline =
          match Lint.Baseline.load (Filename.concat root "lint.baseline") with
          | Ok b -> b
          | Error _ -> Lint.Baseline.empty
        in
        let r = Lint.Driver.run ~root ~baseline () in
        Some
          (Lint.Driver.ok r, List.length r.findings, r.rules_run,
           r.callgraph_nodes)
  in
  (match lint with
  | Some (lint_ok, findings, rules_run, callgraph_nodes) ->
      Format.printf "lint: %s (%d findings, %d rules, %d graph nodes)@."
        (if lint_ok then "OK" else "FAILED")
        findings rules_run callgraph_nodes
  | None -> Format.printf "lint: skipped (no source tree)@.");
  let engine = engine_stats () in
  (* Socket-cluster throughput: sized so the load runs for a few seconds
     at the measured steady state (pipeline 1024 is the sweet spot; 2048
     thrashes the closed loop — see README). *)
  let serve =
    let commands =
      match speed with Harness.Experiments.Full -> 200_000 | Quick -> 50_000
    in
    serve_stats ~metrics ~commands ~pipeline:1024 ()
  in
  (* Same socket stack again, this time through the chaos proxy under
     the canonical seeded fault campaign. *)
  let chaos =
    let commands =
      match speed with Harness.Experiments.Full -> 50_000 | Quick -> 10_000
    in
    chaos_stats ~metrics ~commands ~pipeline:128 ()
  in
  let path = "BENCH_RESULTS.json" in
  write_results ~path ~speed:speed_name ~domains ~wall ~serial_wall ~micro
    ~metrics ~mcheck ~fuzz ~engine ~serve ~chaos ~invariants_ok ~lint;
  Format.printf "(wrote %s)@." path
