(* The same algorithm, off the simulator: real threads, real clocks.

     dune exec examples/realtime_demo.exe

   Every other example runs over the discrete-event simulator.  This one
   runs the identical Modified-Paxos protocol record over
   [Realtime.Threads_engine]: one OS thread per process, an in-memory
   router imposing genuine wall-clock delays (silent before ts, within
   delta after), timers from the system clock.  The protocol code cannot
   tell the difference — it sees the same {!Sim.Runtime.ctx}
   capabilities. *)

let () =
  let n = 5 in
  let delta = 0.02 (* 20 ms *) in
  let ts = 0.25 (* network silent for the first 250 ms *) in
  let cfg =
    {
      Realtime.Threads_engine.n;
      delta;
      ts;
      duration = 5.0;
      pre_loss = 1.0;
      seed = 11L;
      faults = [];
      record_trace = false;
    }
  in
  let proposals = Array.init n (fun i -> 100 + i) in
  Format.printf
    "running modified Paxos on %d OS threads: delta = %.0f ms, network \
     silent for the first %.0f ms...@."
    n (delta *. 1000.) (ts *. 1000.);
  let t0 = Unix.gettimeofday () in
  let r =
    Realtime.Threads_engine.run cfg ~proposals
      (Dgl.Modified_paxos.protocol (Dgl.Config.make ~n ~delta ()))
  in
  ignore t0;
  Array.iteri
    (fun p d ->
      match d with
      | Some (t, v) ->
          Format.printf
            "  process %d decided %d at wall time %4.0f ms (%.1f delta \
             after stabilization)@."
            p v (t *. 1000.)
            ((t -. ts) /. delta)
      | None -> Format.printf "  process %d: no decision@." p)
    r.decisions;
  Format.printf "messages: %d sent, %d delivered, %d dropped pre-ts@."
    r.messages_sent r.messages_delivered r.messages_dropped;
  Format.printf "%s@."
    (if r.agreement_violation then "AGREEMENT VIOLATION"
     else "all threads agree — same protocol, real time.")
