(* consensus-sim: run one consensus execution or regenerate the paper's
   experiment tables from the command line.

     consensus-sim run --protocol modified-paxos --n 5 --ts 0.5
     consensus-sim run --protocol traditional-paxos --n 9 --network silent
     consensus-sim experiment e1
     consensus-sim experiment all --full
     consensus-sim trace e1 --timeline --export e1.jsonl
     consensus-sim trace --import e1.jsonl
     consensus-sim lint            # determinism/hygiene pass over the tree
     consensus-sim lint --list-rules
     consensus-sim fuzz --budget 200 --seed 1 --domains 4
     consensus-sim fuzz --protocol ungated-paxos --save-corpus test/corpus
     consensus-sim replay test/corpus/liveness-fuzz-1-17.json
     consensus-sim serve --id 0 --cluster 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103
     consensus-sim client --cluster ... set k1 v1
     consensus-sim client --cluster ... --load --commands 100000 --pipeline 64
     consensus-sim client --check-recovery trace.jsonl --after 1723000000.0
     consensus-sim list

   Exit codes: 0 success; 1 domain failure (lint findings, trace-invariant
   violation, fuzz campaign found violations, corpus replay did not
   reproduce, client load completed short, recovery bound violated);
   3 serve/client environment failure (cannot bind the listener, no
   cluster member reachable); 123..125 are cmdliner's usage/internal
   errors. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared argument parsing                                             *)
(* ------------------------------------------------------------------ *)

type proto_kind = Modified_paxos | Traditional_paxos | Rotating | B_consensus | Smr

let protocols =
  [
    ("modified-paxos", Modified_paxos);
    ("traditional-paxos", Traditional_paxos);
    ("rotating-coordinator", Rotating);
    ("b-consensus", B_consensus);
    ("smr", Smr);
  ]

let networks delta =
  [
    ("lossy", Sim.Network.eventually_synchronous ());
    ("silent", Sim.Network.silent_until_ts);
    ("sync", Sim.Network.always_synchronous);
    ("deterministic", Sim.Network.deterministic_after_ts);
    ( "lossy-light",
      Sim.Network.eventually_synchronous ~pre_loss:0.2
        ~pre_delay_max:(2. *. delta) () );
  ]

(* "p@t" crash/restart specs. *)
let fault_spec_conv =
  let parse s =
    match String.split_on_char '@' s with
    | [ p; t ] -> (
        match (int_of_string_opt p, float_of_string_opt t) with
        | Some p, Some t -> Ok (p, t)
        | _ -> Error (`Msg (Printf.sprintf "bad fault spec %S (want p@t)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad fault spec %S (want p@t)" s))
  in
  let print fmt (p, t) = Format.fprintf fmt "%d@%g" p t in
  Arg.conv (parse, print)

let n_arg =
  Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let delta_arg =
  Arg.(
    value
    & opt float 0.01
    & info [ "delta" ] ~docv:"SECONDS"
        ~doc:"Post-stabilization message-delivery bound.")

let ts_arg =
  Arg.(
    value
    & opt float 0.5
    & info [ "ts" ] ~docv:"SECONDS" ~doc:"Stabilization time TS.")

let rho_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "rho" ] ~docv:"RHO" ~doc:"Clock rate-error bound, 0 <= rho < 1.")

let seed_arg =
  Arg.(
    value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let network_arg =
  Arg.(
    value
    & opt string "lossy"
    & info [ "network" ]
        ~doc:
          "Pre-TS network behaviour: $(b,lossy) (50% loss, long delays), \
           $(b,lossy-light), $(b,silent), $(b,sync) (stable from the \
           start), or $(b,deterministic) (silent before TS, exactly delta \
           after).")

let proto_arg =
  Arg.(
    value
    & opt (enum protocols) Modified_paxos
    & info [ "protocol"; "p" ]
        ~doc:
          "Protocol: $(b,modified-paxos) (the paper's algorithm), \
           $(b,traditional-paxos), $(b,rotating-coordinator), \
           $(b,b-consensus), or $(b,smr) (state machine replication; see \
           --commands).")

let crash_arg =
  Arg.(
    value
    & opt_all fault_spec_conv []
    & info [ "crash" ] ~docv:"P@T" ~doc:"Crash process P at time T (repeatable).")

let restart_arg =
  Arg.(
    value
    & opt_all fault_spec_conv []
    & info [ "restart" ] ~docv:"P@T"
        ~doc:"Restart process P at time T (repeatable).")

let down_arg =
  Arg.(
    value
    & opt_all int []
    & info [ "down" ] ~docv:"P" ~doc:"Process P is down from the start.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Print the full event trace of the run.")

let sigma_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "sigma" ] ~docv:"SECONDS"
        ~doc:"Session-timeout upper bound (modified Paxos; default 5*delta).")

let epsilon_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "epsilon" ] ~docv:"SECONDS"
        ~doc:"Phase-1a resend period (default delta/4).")

let commands_arg =
  Arg.(
    value & opt int 6
    & info [ "commands" ] ~docv:"K"
        ~doc:
          "For -p smr: K commands submitted to process 1, 10*delta apart, \
           starting at TS/2.")

let horizon_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "horizon" ] ~docv:"SECONDS" ~doc:"Hard stop for the event loop.")

(* ------------------------------------------------------------------ *)
(* run                                                                 *)
(* ------------------------------------------------------------------ *)

let print_result ~ts ~delta (r : _ Sim.Engine.run_result) ~trace =
  Format.printf "protocol: %s@." r.Sim.Engine.protocol_name;
  Format.printf "scenario: %a@." Sim.Scenario.pp r.scenario;
  if trace then begin
    Format.printf "--- trace ---@.";
    Sim.Trace.pp Format.std_formatter r.trace;
    Format.printf "--- end trace ---@."
  end;
  List.iter
    (fun (p, t, v) ->
      Format.printf "p%d decided %d at %a (%+.1f delta after TS)@." p v
        Sim.Sim_time.pp t
        ((t -. ts) /. delta))
    (Sim.Engine.decisions r);
  Array.iteri
    (fun p v -> if v = None then Format.printf "p%d: no decision@." p)
    r.decision_values;
  Format.printf "messages: sent %d, delivered %d, dropped %d@."
    r.messages_sent r.messages_delivered r.messages_dropped;
  Format.printf "events processed: %d, end time: %a@." r.events_processed
    Sim.Sim_time.pp r.end_time;
  match Harness.Measure.check_safety r with
  | Ok () -> Format.printf "safety: agreement + validity OK@."
  | Error msg -> Format.printf "SAFETY: %s@." msg

let run_cmd_impl proto n delta ts rho seed network crashes restarts down
    trace sigma epsilon horizon commands =
  let faults =
    Sim.Fault.make ~initially_down:down
      (List.map (fun (p, t) -> Sim.Fault.crash ~at:t p) crashes
      @ List.map (fun (p, t) -> Sim.Fault.restart ~at:t p) restarts)
  in
  let network =
    match List.assoc_opt network (networks delta) with
    | Some p -> p
    | None -> failwith (Printf.sprintf "unknown network %S" network)
  in
  let sc =
    Sim.Scenario.make ~name:"cli" ~n ~ts ~delta ~rho ~seed ~network ~faults
      ?horizon ~record_trace:trace ()
  in
  (match Sim.Scenario.validate sc with
  | Ok () -> ()
  | Error msg -> failwith ("invalid scenario: " ^ msg));
  match proto with
  | Modified_paxos ->
      let cfg = Dgl.Config.make ?sigma ?epsilon ~rho ~n ~delta () in
      let r = Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg) in
      print_result ~ts ~delta r ~trace
  | Traditional_paxos ->
      let oracle = Baselines.Leader_election.make ~n ~ts ~delta ~faults () in
      let r =
        Sim.Engine.run sc
          (Baselines.Traditional_paxos.protocol ~n ~delta ~oracle ())
      in
      print_result ~ts ~delta r ~trace
  | Rotating ->
      let r =
        Sim.Engine.run sc (Baselines.Rotating_coordinator.protocol ~n ~delta ())
      in
      print_result ~ts ~delta r ~trace
  | B_consensus ->
      let r =
        Sim.Engine.run sc
          (Bconsensus.Modified_b_consensus.protocol ~n ~delta ~rho ())
      in
      print_result ~ts ~delta r ~trace
  | Smr ->
      let cfg = Dgl.Config.make ?sigma ?epsilon ~rho ~n ~delta () in
      let workloads =
        Array.init n (fun p ->
            if p <> 1 mod n then []
            else
              List.init commands (fun k ->
                  ( (ts /. 2.) +. (10. *. delta *. float_of_int k),
                    Smr.Command.make ~id:k (Smr.Command.Add (k + 1)) )))
      in
      let r = Sim.Engine.run sc (Smr.Multi_paxos.protocol cfg ~workloads) in
      Format.printf "protocol: %s@." r.Sim.Engine.protocol_name;
      Format.printf "scenario: %a@." Sim.Scenario.pp r.scenario;
      if trace then Sim.Trace.pp Format.std_formatter r.trace;
      Array.iteri
        (fun p st ->
          match st with
          | Some st ->
              Format.printf
                "replica %d: register=%d, log=%d entries, %d commands \
                 applied, converged=%b@."
                p
                (Smr.Multi_paxos.register st)
                (Smr.Multi_paxos.chosen_upto st)
                (List.length (Smr.Multi_paxos.applied st))
                (r.Sim.Engine.decision_values.(p) <> None)
          | None -> Format.printf "replica %d: down@." p)
        r.final_states;
      (match r.agreement_violation with
      | None -> Format.printf "logs: identical applied sequences@."
      | Some _ -> Format.printf "LOG DIVERGENCE@.")

let run_term =
  Term.(
    const run_cmd_impl $ proto_arg $ n_arg $ delta_arg $ ts_arg $ rho_arg
    $ seed_arg $ network_arg $ crash_arg $ restart_arg $ down_arg $ trace_arg
    $ sigma_arg $ epsilon_arg $ horizon_arg $ commands_arg)

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run one consensus execution and print the outcome.")
    run_term

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)
(* ------------------------------------------------------------------ *)

let experiment_impl id full =
  let speed =
    if full then Harness.Experiments.Full else Harness.Experiments.Quick
  in
  match String.lowercase_ascii id with
  | "all" ->
      Harness.Report.print_all Format.std_formatter
        (Harness.Experiments.all ~speed ())
  | id -> (
      match Harness.Experiments.by_id id with
      | Some f -> Harness.Report.print Format.std_formatter (f ~speed ())
      | None ->
          failwith
            (Printf.sprintf "unknown experiment %S (try: %s, all)" id
               (String.concat ", " Harness.Experiments.ids)))

let experiment_cmd =
  let id_arg =
    Arg.(
      value
      & pos 0 string "all"
      & info [] ~docv:"ID" ~doc:"Experiment id (e1..e9, a1, a2, or all).")
  in
  let full_arg =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Wider sweeps: more sizes and more seeds.")
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate one (or all) of the paper's experiment tables.")
    Term.(const experiment_impl $ id_arg $ full_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)
(* ------------------------------------------------------------------ *)

let sweep_impl proto sizes seeds delta ts network =
  let network_policy =
    match List.assoc_opt network (networks delta) with
    | Some p -> p
    | None -> failwith (Printf.sprintf "unknown network %S" network)
  in
  Format.printf "  %-4s | %-10s | %-10s | %s@." "n" "mean(d)" "worst(d)"
    "undecided";
  List.iter
    (fun n ->
      let lats =
        List.concat
          (List.init seeds (fun i ->
               let seed = Int64.of_int ((i * 7919) + 1) in
               let faults =
                 Sim.Fault.make
                   ~initially_down:(Harness.Adversaries.faulty_minority ~n)
                   []
               in
               let sc =
                 Sim.Scenario.make ~name:"sweep" ~n ~ts ~delta ~seed
                   ~network:network_policy ~faults ()
               in
               let live =
                 Harness.Measure.procs ~n
                   ~except:(Harness.Adversaries.faulty_minority ~n)
                   ()
               in
               let r =
                 match proto with
                 | Modified_paxos ->
                     let cfg = Dgl.Config.make ~n ~delta () in
                     let r =
                       Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg)
                     in
                     List.map
                       (fun p ->
                         match r.Sim.Engine.decision_times.(p) with
                         | Some t -> (t -. ts) /. delta
                         | None -> Float.infinity)
                       live
                 | Traditional_paxos ->
                     let oracle =
                       Baselines.Leader_election.make ~n ~ts ~delta ~faults ()
                     in
                     let r =
                       Sim.Engine.run sc
                         (Baselines.Traditional_paxos.protocol ~n ~delta
                            ~oracle ())
                     in
                     List.map
                       (fun p ->
                         match r.Sim.Engine.decision_times.(p) with
                         | Some t -> (t -. ts) /. delta
                         | None -> Float.infinity)
                       live
                 | Rotating ->
                     let r =
                       Sim.Engine.run sc
                         (Baselines.Rotating_coordinator.protocol ~n ~delta ())
                     in
                     List.map
                       (fun p ->
                         match r.Sim.Engine.decision_times.(p) with
                         | Some t -> (t -. ts) /. delta
                         | None -> Float.infinity)
                       live
                 | B_consensus ->
                     let r =
                       Sim.Engine.run sc
                         (Bconsensus.Modified_b_consensus.protocol ~n ~delta
                            ~rho:0. ())
                     in
                     List.map
                       (fun p ->
                         match r.Sim.Engine.decision_times.(p) with
                         | Some t -> (t -. ts) /. delta
                         | None -> Float.infinity)
                       live
                 | Smr ->
                     failwith "sweep does not support -p smr (single-shot \
                               consensus latencies only)"
               in
               r))
      in
      let finite = List.filter Float.is_finite lats in
      let undecided = List.length lats - List.length finite in
      match finite with
      | [] -> Format.printf "  %-4d | %-10s | %-10s | %d@." n "-" "-" undecided
      | _ ->
          Format.printf "  %-4d | %-10.2f | %-10.1f | %d@." n
            (Sim.Metrics.mean finite)
            (List.fold_left Float.max 0. finite)
            undecided)
    sizes

let sweep_cmd =
  let sizes_arg =
    Arg.(
      value
      & opt (list int) [ 3; 5; 9; 17 ]
      & info [ "sizes" ] ~docv:"N,N,..." ~doc:"Cluster sizes to sweep.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 5
      & info [ "seeds" ] ~docv:"K" ~doc:"Seeds per size.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep cluster sizes for one protocol (faulty minority down, \
          latency after TS in delta units).")
    Term.(
      const sweep_impl $ proto_arg $ sizes_arg $ seeds_arg $ delta_arg
      $ ts_arg $ network_arg)

(* ------------------------------------------------------------------ *)
(* check (bounded model checking)                                      *)
(* ------------------------------------------------------------------ *)

let check_impl model gate max_session depth max_states domains exact_keys =
  (* lint: allow R1 — elapsed-time display for the operator, not part
     of any simulated run *)
  let t0 = Unix.gettimeofday () in
  let domains =
    match domains with
    | Some d -> d
    | None -> Harness.Measure.domain_count ()
  in
  let registry = Sim.Registry.create () in
  (* Everything on stdout is identical at any --domains (the merge rule
     in {!Mcheck.Explore}); wall-clock and pool size go to stderr so
     stdout can be diffed across domain counts. *)
  let footer collisions =
    (match collisions with
    | Some c ->
        Format.printf "exact-keys: %d fingerprint collision%s@." c
          (if c = 1 then "" else "s")
    | None -> ());
    Format.printf "frontier: %d levels, %d states@."
      (Sim.Registry.counter_total registry "mcheck_frontier_levels")
      (Sim.Registry.counter_total registry "mcheck_frontier_states");
    (* lint: allow R1 — elapsed-time display for the operator *)
    let elapsed = Unix.gettimeofday () -. t0 in
    Format.eprintf "(%d domain%s, %.1fs)@." domains
      (if domains = 1 then "" else "s")
      elapsed
  in
  match model with
  | "paxos" ->
      let cfg =
        {
          Mcheck.Model.n = 3;
          proposals = [| 10; 20; 30 |];
          max_session;
          gate;
        }
      in
      let o =
        Mcheck.Explorer.run ~max_depth:depth ~domains ~exact_keys ~registry
          cfg ~max_states
          ~properties:
            (if gate then Mcheck.Explorer.all_properties cfg
             else Mcheck.Explorer.safety_properties cfg)
      in
      Format.printf "model: modified-paxos core, n=3, sessions <= %d, gate %s, depth <= %d@."
        max_session
        (if gate then "on" else "off")
        depth;
      Format.printf "%a@." Mcheck.Explorer.pp_outcome o;
      (* pp_outcome already reports collisions *)
      footer None
  | "b-consensus" ->
      let cfg =
        {
          Mcheck.Bc_model.n = 3;
          proposals = [| 10; 20; 30 |];
          max_round = max_session;
          mutation = None;
        }
      in
      let o =
        Mcheck.Explore.run ~domains ~exact_keys ~registry
          ~initial:(Mcheck.Bc_model.initial cfg)
          ~successors:(Mcheck.Bc_model.successors cfg)
          ~fingerprint:Mcheck.Bc_model.fingerprint ~key:Mcheck.Bc_model.key
          ~properties:
            [
              ("agreement", Mcheck.Bc_model.agreement);
              ("validity", fun st -> Mcheck.Bc_model.validity cfg st);
              ("lock-uniqueness", Mcheck.Bc_model.lock_uniqueness);
            ]
          ~max_depth:depth ~max_states ()
      in
      Format.printf "model: b-consensus round core, n=3, rounds <= %d, depth <= %d@."
        max_session depth;
      (match o.Mcheck.Explore.violation with
      | Some (name, st) ->
          Format.printf "VIOLATION of %s at %a@." name Mcheck.Bc_model.pp_state
            st
      | None ->
          Format.printf "%s: %d states, %d transitions, no violations@."
            (if o.Mcheck.Explore.complete then "exhaustive"
             else "bounded (cap hit)")
            o.Mcheck.Explore.states o.transitions);
      footer o.Mcheck.Explore.collisions
  | m -> failwith (Printf.sprintf "unknown model %S (paxos, b-consensus)" m)

let check_cmd =
  let gate_arg =
    Arg.(
      value & opt bool true
      & info [ "gate" ] ~docv:"BOOL"
          ~doc:"Session gate on (the paper's algorithm) or off (ablation).")
  in
  let session_arg =
    Arg.(
      value & opt int 1
      & info [ "max-session" ] ~docv:"S" ~doc:"Session cap for the model.")
  in
  let depth_arg =
    Arg.(
      value & opt int 8
      & info [ "depth" ] ~docv:"D" ~doc:"Exploration depth bound.")
  in
  let states_arg =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-states" ] ~docv:"K" ~doc:"State-count cap.")
  in
  let model_arg =
    Arg.(
      value & opt string "paxos"
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "$(b,paxos) (the session-gated core) or $(b,b-consensus) (the \
             Section 5 round core; --max-session bounds rounds).")
  in
  let domains_arg =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for frontier expansion (default: \
             $(b,SIM_DOMAINS) or the recommended domain count).  Results \
             are identical at any value; 1 runs fully serial.")
  in
  let exact_keys_arg =
    Arg.(
      value & flag
      & info [ "exact-keys" ]
          ~doc:
            "Verification mode: key the visited set on full structural \
             state keys (authoritative) and count 128-bit fingerprint \
             collisions against them.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Bounded model checking of the protocol cores (time-free \
          over-approximation; safety results transfer to all timed \
          executions).")
    Term.(
      const check_impl $ model_arg $ gate_arg $ session_arg $ depth_arg
      $ states_arg $ domains_arg $ exact_keys_arg)

(* ------------------------------------------------------------------ *)
(* trace: replay / import, filter, timeline, invariants                *)
(* ------------------------------------------------------------------ *)

(* The process a trace entry "belongs to" for --filter proc= and the
   timeline: senders own their sends, receivers own deliveries/drops. *)
let entry_procs = function
  | Sim.Trace.Send { src; dst; _ }
  | Sim.Trace.Deliver { src; dst; _ }
  | Sim.Trace.Drop { src; dst; _ } ->
      [ src; dst ]
  | Sim.Trace.Timer_set { proc; _ }
  | Sim.Trace.Timer_fire { proc; _ }
  | Sim.Trace.Crash { proc; _ }
  | Sim.Trace.Restart { proc; _ }
  | Sim.Trace.Decide { proc; _ }
  | Sim.Trace.Note { proc; _ } ->
      [ proc ]

let entry_kind = function
  | Sim.Trace.Send { payload; _ }
  | Sim.Trace.Deliver { payload; _ }
  | Sim.Trace.Drop { payload; _ } ->
      Some payload.Sim.Trace.kind
  | _ -> None

let entry_event_name = function
  | Sim.Trace.Send _ -> "send"
  | Sim.Trace.Deliver _ -> "deliver"
  | Sim.Trace.Drop _ -> "drop"
  | Sim.Trace.Timer_set _ -> "timer_set"
  | Sim.Trace.Timer_fire _ -> "timer_fire"
  | Sim.Trace.Crash _ -> "crash"
  | Sim.Trace.Restart _ -> "restart"
  | Sim.Trace.Decide _ -> "decide"
  | Sim.Trace.Note _ -> "note"

type trace_filter =
  | Fproc of int
  | Fkind of string
  | Fwindow of float * float

let filter_conv =
  let parse s =
    match String.index_opt s '=' with
    | None ->
        Error
          (`Msg
             (Printf.sprintf
                "bad filter %S (want proc=N, kind=K or window=LO:HI)" s))
    | Some i -> (
        let key = String.sub s 0 i in
        let v = String.sub s (i + 1) (String.length s - i - 1) in
        match key with
        | "proc" -> (
            match int_of_string_opt v with
            | Some p -> Ok (Fproc p)
            | None -> Error (`Msg (Printf.sprintf "bad process id %S" v)))
        | "kind" -> Ok (Fkind v)
        | "window" -> (
            match String.split_on_char ':' v with
            | [ lo; hi ] -> (
                match (float_of_string_opt lo, float_of_string_opt hi) with
                | Some lo, Some hi -> Ok (Fwindow (lo, hi))
                | _ ->
                    Error (`Msg (Printf.sprintf "bad window %S (want LO:HI)" v))
                )
            | _ -> Error (`Msg (Printf.sprintf "bad window %S (want LO:HI)" v)))
        | k -> Error (`Msg (Printf.sprintf "unknown filter key %S" k)))
  in
  let print fmt = function
    | Fproc p -> Format.fprintf fmt "proc=%d" p
    | Fkind k -> Format.fprintf fmt "kind=%s" k
    | Fwindow (lo, hi) -> Format.fprintf fmt "window=%g:%g" lo hi
  in
  Arg.conv (parse, print)

let filter_matches filters e =
  List.for_all
    (fun f ->
      match f with
      | Fproc p -> List.mem p (entry_procs e)
      | Fkind k -> entry_kind e = Some k || entry_event_name e = k
      | Fwindow (lo, hi) ->
          Sim.Sim_time.in_window (Sim.Trace.time_of e) ~lo ~hi)
    filters

(* ASCII per-process timeline: one row per process, one column per time
   bucket; the highest-priority event in a bucket wins its cell. *)
let print_timeline fmt trace =
  let len = Sim.Trace.length trace in
  if len = 0 then Format.fprintf fmt "(empty trace)@."
  else begin
    let n =
      Sim.Trace.fold
        (fun acc e -> List.fold_left Int.max acc (entry_procs e))
        0 trace
      + 1
    in
    let t0 = Sim.Trace.time_of (Sim.Trace.get trace 0) in
    let t1 = Sim.Trace.time_of (Sim.Trace.get trace (len - 1)) in
    let width = 64 in
    let span = Float.max (t1 -. t0) 1e-12 in
    let rows = Array.init n (fun _ -> Bytes.make width ' ') in
    let rank = function
      | 'D' -> 9
      | 'X' -> 8
      | 'R' -> 7
      | '!' -> 6
      | 'o' -> 5
      | '>' -> 4
      | 't' -> 3
      | '~' -> 2
      | _ -> 0
    in
    let put proc t ch =
      let col =
        Int.min (width - 1)
          (int_of_float ((t -. t0) /. span *. float_of_int width))
      in
      if rank ch > rank (Bytes.get rows.(proc) col) then
        Bytes.set rows.(proc) col ch
    in
    Sim.Trace.iter
      (fun e ->
        match e with
        | Sim.Trace.Send { t; src; _ } -> put src t '>'
        | Sim.Trace.Deliver { t; dst; _ } -> put dst t 'o'
        | Sim.Trace.Drop { t; dst; _ } -> put dst t '!'
        | Sim.Trace.Timer_fire { t; proc; _ } -> put proc t 't'
        | Sim.Trace.Timer_set _ -> ()
        | Sim.Trace.Crash { t; proc } -> put proc t 'X'
        | Sim.Trace.Restart { t; proc } -> put proc t 'R'
        | Sim.Trace.Decide { t; proc; _ } -> put proc t 'D'
        | Sim.Trace.Note { t; proc; _ } -> put proc t '~')
      trace;
    Format.fprintf fmt "timeline %s .. %s (%d entries; col = %.4gs)@."
      (Sim.Sim_time.to_string t0) (Sim.Sim_time.to_string t1) len
      (span /. float_of_int width);
    Array.iteri
      (fun p row -> Format.fprintf fmt "  p%-3d |%s|@." p (Bytes.to_string row))
      rows;
    Format.fprintf fmt
      "  legend: D decide, X crash, R restart, ! drop, o deliver, > send, \
       t timer, ~ note@."
  end

let print_trace_summary fmt trace =
  let counts = Hashtbl.create 9 in
  Sim.Trace.iter
    (fun e ->
      let k = entry_event_name e in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    trace;
  let parts =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt counts k with
        | Some c -> Some (Printf.sprintf "%s %d" k c)
        | None -> None)
      [
        "send"; "deliver"; "drop"; "timer_set"; "timer_fire"; "crash";
        "restart"; "decide"; "note";
      ]
  in
  Format.fprintf fmt "entries: %d retained (%d recorded)%s@."
    (Sim.Trace.length trace)
    (Sim.Trace.total_recorded trace)
    (match parts with [] -> "" | _ -> ": " ^ String.concat ", " parts);
  List.iter
    (fun (p, t, v) ->
      Format.fprintf fmt "  p%d decided %d at %a@." p v Sim.Sim_time.pp t)
    (Sim.Trace.decisions trace)

let trace_impl id import export filters timeline stats =
  let trace, proposals, timer_bounds, metrics =
    match import with
    | Some path ->
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        (match Sim.Trace.of_jsonl s with
        | Ok t ->
            Format.printf "imported %d entries from %s@." (Sim.Trace.length t)
              path;
            (t, None, None, None)
        | Error msg -> failwith (Printf.sprintf "%s: %s" path msg))
    | None -> (
        match id with
        | None ->
            failwith
              "nothing to do: give an experiment id (see `consensus-sim \
               list`) or --import FILE"
        | Some id -> (
            match Harness.Experiments.replay id with
            | None ->
                failwith
                  (Printf.sprintf "unknown experiment %S (try: %s)" id
                     (String.concat ", " Harness.Experiments.ids))
            | Some rp ->
                Format.printf "replayed %s: scenario %a@."
                  rp.Harness.Experiments.replay_id Sim.Scenario.pp
                  rp.Harness.Experiments.scenario;
                ( rp.Harness.Experiments.trace,
                  rp.Harness.Experiments.proposals,
                  rp.Harness.Experiments.timer_bounds,
                  Some rp.Harness.Experiments.metrics )))
  in
  print_trace_summary Format.std_formatter trace;
  (match export with
  | Some path ->
      let oc = open_out_bin path in
      output_string oc (Sim.Trace.to_jsonl trace);
      close_out oc;
      Format.printf "exported %d entries to %s@." (Sim.Trace.length trace)
        path
  | None -> ());
  if filters <> [] then begin
    Format.printf "--- matching entries ---@.";
    let shown =
      Sim.Trace.fold
        (fun shown e ->
          if filter_matches filters e then begin
            Format.printf "%a@." Sim.Trace.pp_entry e;
            shown + 1
          end
          else shown)
        0 trace
    in
    Format.printf "--- %d matching entries ---@." shown
  end;
  if timeline then print_timeline Format.std_formatter trace;
  if stats then begin
    match metrics with
    | Some m -> Format.printf "--- metrics ---@.%a@." Sim.Registry.pp m
    | None ->
        Format.printf
          "(no metrics: imported traces carry events only; metrics live in \
           the run's registry)@."
  end;
  let report = Harness.Invariants.check ?proposals ?timer_bounds trace in
  Format.printf "%a@." Harness.Invariants.pp report;
  if not (Harness.Invariants.ok report) then exit 1

let trace_cmd =
  let id_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ID"
          ~doc:"Experiment id to replay with tracing on (e1..e11, a1..a4).")
  in
  let import_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "import" ] ~docv:"FILE"
          ~doc:"Check a previously exported JSONL trace instead of replaying.")
  in
  let export_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "export" ] ~docv:"FILE" ~doc:"Write the trace as JSONL.")
  in
  let filter_arg =
    Arg.(
      value
      & opt_all filter_conv []
      & info [ "filter" ] ~docv:"KEY=VALUE"
          ~doc:
            "Print entries matching all given filters: $(b,proc=N) \
             (involving process N), $(b,kind=K) (message kind like 1a/2b, \
             or an event name like decide), $(b,window=LO:HI) (seconds). \
             Repeatable.")
  in
  let timeline_arg =
    Arg.(
      value & flag
      & info [ "timeline" ] ~doc:"Draw an ASCII per-process timeline.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the run's metrics registry (counters, histograms).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Replay an experiment scenario with structured tracing (or import \
          a JSONL trace), inspect it, and check trace invariants.  Exits \
          non-zero if any invariant fails."
       ~exits:
         (Cmd.Exit.info 1 ~doc:"on a trace-invariant violation."
         :: Cmd.Exit.defaults))
    Term.(
      const trace_impl $ id_arg $ import_arg $ export_arg $ filter_arg
      $ timeline_arg $ stats_arg)

(* ------------------------------------------------------------------ *)
(* lint: determinism & protocol-hygiene static analysis                *)
(* ------------------------------------------------------------------ *)

let lint_impl paths root json baseline_path no_baseline list_rules
    update_baseline call_graph =
  if list_rules then
    List.iter
      (fun id ->
        Format.printf "%s  %s@.    %s@."
          (Lint.Rules.id_to_string id)
          (Lint.Rules.title id) (Lint.Rules.rationale id))
      Lint.Rules.all_ids
  else begin
    let root =
      match root with
      | Some r -> r
      | None -> (
          match Lint.Driver.find_root () with Some r -> r | None -> ".")
    in
    let baseline_file =
      match baseline_path with
      | Some p -> p
      | None -> Filename.concat root "lint.baseline"
    in
    let paths =
      match paths with [] -> Lint.Driver.default_paths | ps -> ps
    in
    match call_graph with
    | Some "dot" -> print_string (Lint.Driver.call_graph_dot ~root ~paths ())
    | Some other ->
        failwith
          (Printf.sprintf "unknown --call-graph format %S (supported: dot)"
             other)
    | None ->
        let old_baseline =
          if no_baseline then Lint.Baseline.empty
          else
            match Lint.Baseline.load baseline_file with
            | Ok b -> b
            | Error msg -> failwith (Printf.sprintf "%s: %s" baseline_file msg)
        in
        let baseline =
          if update_baseline then Lint.Baseline.empty else old_baseline
        in
        let report = Lint.Driver.run ~root ~baseline ~paths () in
        if update_baseline then begin
          let entries, pruned =
            Lint.Baseline.update old_baseline report.Lint.Driver.findings
          in
          let oc = open_out_bin baseline_file in
          output_string oc
            "# Grandfathered lint findings: RULE<TAB>FILE<TAB>CONTEXT<TAB>REASON.\n\
             # Prefer fixing or a sited allow-comment at the offending line;\n\
             # entries here should be rare and justified.\n";
          if entries <> [] then
            output_string oc (Lint.Baseline.to_string entries);
          close_out oc;
          List.iter
            (fun (e : Lint.Baseline.entry) ->
              Format.printf "pruned stale entry: %s %s %S@."
                (Lint.Rules.id_to_string e.rule)
                e.file e.context)
            pruned;
          Format.printf "wrote %d entr%s to %s (%d pruned)@."
            (List.length entries)
            (if List.length entries = 1 then "y" else "ies")
            baseline_file (List.length pruned)
        end
        else begin
          if json then print_string (Lint.Driver.report_to_json report ^ "\n")
          else Lint.Driver.pp_report Format.std_formatter report;
          if not (Lint.Driver.ok report) then exit 1
        end
  end

let lint_cmd =
  let paths_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to lint, relative to the project root \
             (default: lib bin bench examples test; findings under test/ \
             and examples/ are advisory).")
  in
  let root_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "root" ] ~docv:"DIR"
          ~doc:
            "Project root (default: nearest ancestor with a dune-project).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Machine-readable report on stdout.")
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Baseline file (default: ROOT/lint.baseline).")
  in
  let no_baseline_arg =
    Arg.(
      value & flag
      & info [ "no-baseline" ]
          ~doc:"Ignore the baseline: report grandfathered findings too.")
  in
  let list_rules_arg =
    Arg.(
      value & flag
      & info [ "list-rules" ] ~doc:"Print the rule catalogue and exit.")
  in
  let update_baseline_arg =
    Arg.(
      value & flag
      & info [ "update-baseline" ]
          ~doc:
            "Rewrite the baseline file to cover the current findings \
             instead of reporting them: entries still matching keep \
             their reasons, stale entries are pruned (and printed).")
  in
  let call_graph_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "call-graph" ] ~docv:"FORMAT"
          ~doc:
            "Dump the phase-2 whole-program call graph instead of \
             linting.  Supported formats: dot (Graphviz; entry points \
             boxed, hot-path-reachable nodes shaded).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static determinism & protocol-hygiene analysis of the OCaml \
          sources.  Per-file syntactic rules R1-R9 (wall clocks, ambient \
          Random, Hashtbl iteration order, toplevel mutable state, \
          physical equality, polymorphic compare, wildcard message arms, \
          partial functions and per-event allocation on handler paths) \
          plus whole-program analyses T1-T3 over the summarized call \
          graph (taint reaching the deterministic core, hot-path \
          reachability of R7/R8/R9 hazards, arena acquire/release \
          pairing).  Suppress per site with a 'lint: allow Rn - reason' \
          comment at the offending line."
       ~exits:
         (Cmd.Exit.info 1
            ~doc:
              "on unsuppressed findings or unparsable/unreadable sources."
         :: Cmd.Exit.defaults))
    Term.(
      const lint_impl $ paths_arg $ root_arg $ json_arg $ baseline_arg
      $ no_baseline_arg $ list_rules_arg $ update_baseline_arg
      $ call_graph_arg)

(* ------------------------------------------------------------------ *)
(* realtime                                                            *)
(* ------------------------------------------------------------------ *)

let realtime_impl proto n delta ts seed =
  let cfg =
    {
      Realtime.Threads_engine.n;
      delta;
      ts;
      duration = ts +. Float.max 2.0 (200. *. delta);
      pre_loss = 1.0;
      seed;
      faults = [];
      record_trace = true;
    }
  in
  let proposals = Array.init n (fun i -> 100 + i) in
  let run p = Realtime.Threads_engine.run cfg ~proposals p in
  let r =
    match proto with
    | Modified_paxos ->
        run (Dgl.Modified_paxos.protocol (Dgl.Config.make ~n ~delta ()))
    | B_consensus ->
        run (Bconsensus.Modified_b_consensus.protocol ~n ~delta ~rho:0. ())
    | Traditional_paxos | Rotating | Smr ->
        failwith
          "realtime supports -p modified-paxos and -p b-consensus (the \
           leader oracle and workload plumbing are simulator-side)"
  in
  Format.printf
    "real threads, wall clock: delta = %.0f ms, silent until %.0f ms@."
    (delta *. 1000.) (ts *. 1000.);
  Array.iteri
    (fun p d ->
      match d with
      | Some (t, v) ->
          Format.printf "  p%d decided %d at %4.0f ms (%.1f delta after ts)@."
            p v (t *. 1000.)
            ((t -. ts) /. delta)
      | None -> Format.printf "  p%d: no decision by the deadline@." p)
    r.Realtime.Threads_engine.decisions;
  Format.printf "messages: %d sent, %d delivered, %d dropped@."
    r.Realtime.Threads_engine.messages_sent r.messages_delivered
    r.messages_dropped;
  if r.Realtime.Threads_engine.agreement_violation then
    Format.printf "AGREEMENT VIOLATION@.";
  (* The same trace-driven checker the simulator uses: wall-clock trace,
     so no timer bounds, but agreement/causality/monotonicity apply. *)
  Format.printf "%a@." Harness.Invariants.pp
    (Harness.Invariants.check ~proposals
       r.Realtime.Threads_engine.trace)

let realtime_cmd =
  let delta_rt =
    Arg.(
      value & opt float 0.02
      & info [ "delta" ] ~docv:"SECONDS"
          ~doc:"Delivery bound; keep >= 10 ms for scheduler headroom.")
  in
  let ts_rt =
    Arg.(
      value & opt float 0.25
      & info [ "ts" ] ~docv:"SECONDS" ~doc:"Stabilization instant.")
  in
  Cmd.v
    (Cmd.info "realtime"
       ~doc:
         "Run the protocol over OS threads and wall-clock delays instead \
          of the simulator.")
    Term.(const realtime_impl $ proto_arg $ n_arg $ delta_rt $ ts_rt $ seed_arg)

(* ------------------------------------------------------------------ *)
(* serve / client: the real-process socket cluster                     *)
(* ------------------------------------------------------------------ *)

let cluster_conv =
  let parse s =
    let endpoint hp =
      match String.rindex_opt hp ':' with
      | None -> failwith "endpoint must be host:port"
      | Some i ->
          let host = String.sub hp 0 i in
          let port =
            int_of_string (String.sub hp (i + 1) (String.length hp - i - 1))
          in
          if host = "" then failwith "empty host";
          if port < 0 || port > 65535 then failwith "port out of range";
          (host, port)
    in
    match String.split_on_char ',' s with
    | [] | [ "" ] -> Error (`Msg "empty --cluster")
    | parts -> (
        try Ok (Array.of_list (List.map endpoint parts))
        with Failure msg -> Error (`Msg ("bad --cluster: " ^ msg)))
  in
  let print fmt c =
    Format.pp_print_string fmt
      (String.concat ","
         (List.map
            (fun (h, p) -> Printf.sprintf "%s:%d" h p)
            (Array.to_list c)))
  in
  Arg.conv (parse, print)

let cluster_arg =
  Arg.(
    required
    & opt (some cluster_conv) None
    & info [ "cluster" ] ~docv:"HOST:PORT,..."
        ~doc:
          "Comma-separated replica endpoints, one per replica, in id \
           order (identical on every replica and client).")

let endpoint_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg "expected HOST:PORT")
    | Some i -> (
        let host = String.sub s 0 i in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
        with
        | Some port when host <> "" && port >= 0 && port <= 65535 ->
            Ok (host, port)
        | Some _ | None -> Error (`Msg "expected HOST:PORT"))
  in
  let print fmt (h, p) = Format.fprintf fmt "%s:%d" h p in
  Arg.conv (parse, print)

let serve_impl id cluster bind delta batch window snapshot seed verbose =
  if id < 0 || id >= Array.length cluster then begin
    Printf.eprintf "serve: --id %d out of range for a %d-replica cluster\n"
      id (Array.length cluster);
    exit 3
  end;
  let cfg =
    {
      Smr.Replica.id;
      cluster;
      bind;
      delta;
      batch;
      window;
      snapshot;
      snapshot_period = 0.05;
      seed = Int64.to_int seed;
      verbose;
    }
  in
  match Smr.Replica.create cfg with
  | exception Unix.Unix_error (e, _, _) ->
      let host, port =
        match bind with Some hp -> hp | None -> cluster.(id)
      in
      Printf.eprintf "serve: cannot bind %s:%d: %s\n" host port
        (Unix.error_message e);
      exit 3
  | exception Invalid_argument msg ->
      Printf.eprintf "serve: %s\n" msg;
      exit 3
  | r ->
      let quit _ = Smr.Replica.stop r in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
      Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
      let host =
        match bind with Some (h, _) -> h | None -> fst cluster.(id)
      in
      Printf.printf "replica %d serving on %s:%d (batch %d, window %d)\n%!"
        id host (Smr.Replica.port r) batch window;
      Smr.Replica.run r;
      let reg = Smr.Replica.registry r in
      (* kv_checksum=/kv_applied= are parsed by the chaos campaign's
         agreement check — keep them machine-readable *)
      Printf.printf
        "replica %d stopped: %d requests, %d decrees applied, \
         kv_applied=%d kv_checksum=%d\n%!"
        id
        (Sim.Registry.counter_total reg "serve_requests")
        (Sim.Registry.counter_total reg "serve_decrees")
        (Smr.Replica.kv_applied r)
        (Smr.Replica.kv_checksum r)

let serve_cmd =
  let id_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "id" ] ~docv:"I" ~doc:"This replica's index into --cluster.")
  in
  let delta_arg =
    Arg.(
      value & opt float 0.05
      & info [ "delta" ] ~docv:"SECONDS"
          ~doc:"Post-stabilization delivery bound the protocol assumes.")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N"
          ~doc:"Max client commands folded into one decree.")
  in
  let window_arg =
    Arg.(
      value & opt int 32
      & info [ "window" ] ~docv:"N"
          ~doc:"Max own decrees pipelined in flight.")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"PATH"
          ~doc:
            "Durable-essence file: written periodically while serving, \
             loaded on startup when present (crash recovery).")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Progress chatter on stderr.")
  in
  let bind_arg =
    Arg.(
      value
      & opt (some endpoint_conv) None
      & info [ "bind" ] ~docv:"HOST:PORT"
          ~doc:
            "Listen here instead of the --cluster entry for --id: used \
             when a chaos proxy owns the advertised address and forwards \
             to this backend.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run one replica of the replicated KV service over real sockets \
          (wire protocol: WIRE.md).  Stop with SIGTERM/SIGINT."
       ~exits:
         (Cmd.Exit.info 3 ~doc:"when the listener cannot bind or the \
                                configuration is malformed."
         :: Cmd.Exit.defaults))
    Term.(
      const serve_impl $ id_arg $ cluster_arg $ bind_arg $ delta_arg
      $ batch_arg $ window_arg $ snapshot_arg $ seed_arg $ verbose_arg)

let pp_reply fmt = function
  | Smr.Wire.R_stored -> Format.pp_print_string fmt "stored"
  | Smr.Wire.R_value None -> Format.pp_print_string fmt "(absent)"
  | Smr.Wire.R_value (Some v) -> Format.pp_print_string fmt v
  | Smr.Wire.R_cas { ok = true; _ } -> Format.pp_print_string fmt "cas-ok"
  | Smr.Wire.R_cas { ok = false; actual = None } ->
      Format.pp_print_string fmt "cas-fail (absent)"
  | Smr.Wire.R_cas { ok = false; actual = Some v } ->
      Format.fprintf fmt "cas-fail (actual %s)" v
  | Smr.Wire.R_redirect { leader } -> Format.fprintf fmt "redirect %d" leader
  | Smr.Wire.R_error msg -> Format.fprintf fmt "error: %s" msg

(* Parse one latency-trace line: {"t":<epoch>,"lat":<seconds>} *)
let parse_trace_line line =
  match Scanf.sscanf line "{\"t\":%f,\"lat\":%f}" (fun t l -> (t, l)) with
  | pair -> Some pair
  | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> None

let check_recovery_impl path after delta n =
  let cfg = Dgl.Config.make ~n ~delta () in
  let bound = Dgl.Config.decision_bound cfg in
  let samples = ref [] in
  let ic = open_in path in
  (try
     while true do
       match parse_trace_line (input_line ic) with
       | Some s -> samples := s :: !samples
       | None -> ()
     done
   with End_of_file -> close_in ic);
  let samples = List.rev !samples in
  if samples = [] then begin
    Printf.eprintf "check-recovery: %s holds no samples\n" path;
    exit 1
  end;
  let v = Smr.Recovery.check ~bound ~after samples in
  Printf.printf
    "check-recovery: kill at %.3f, decision bound %.3fs (+%.3fs slack)\n"
    after v.Smr.Recovery.bound v.Smr.Recovery.slack;
  Format.printf "  @[<v>%a@]@." Smr.Recovery.pp v;
  if Smr.Recovery.ok v then Printf.printf "  recovery bound respected\n"
  else exit 1

let client_impl cluster member op_args load commands pipeline value_bytes
    keyspace seed latency_trace check_recovery after delta verbose =
  match check_recovery with
  | Some path -> check_recovery_impl path after delta (Array.length cluster)
  | None -> (
      let connect () =
        match Smr.Client.connect ~verbose ~prefer:member cluster with
        | c -> c
        | exception Smr.Client.Disconnected msg ->
            Printf.eprintf "client: %s\n" msg;
            exit 3
      in
      if load then begin
        let c = connect () in
        let report =
          Smr.Client.run_load c
            {
              Smr.Client.commands;
              pipeline;
              value_bytes;
              keyspace;
              seed = Int64.to_int seed;
              mix = Smr.Client.Mixed;
              latency_trace;
            }
        in
        Smr.Client.close c;
        let reg = Sim.Registry.create () in
        Array.iter
          (fun l ->
            Sim.Registry.observe reg "serve_client_latency_delta" (l /. delta))
          report.Smr.Client.latencies;
        let pct q = Smr.Client.percentile report.Smr.Client.latencies q in
        Printf.printf
          "load: %d commands in %.3fs = %.0f cmd/s (%d resubmitted, %d \
           reconnects, %.3fs backoff)\n"
          report.Smr.Client.completed report.Smr.Client.elapsed
          report.Smr.Client.throughput report.Smr.Client.resubmitted
          report.Smr.Client.reconnects report.Smr.Client.backoff;
        Printf.printf
          "latency: p50 %.1f ms, p90 %.1f ms, p99 %.1f ms, max %.1f ms\n"
          (1000. *. pct 0.5) (1000. *. pct 0.9) (1000. *. pct 0.99)
          (1000. *. pct 1.0);
        Printf.printf "%s\n" (Sim.Registry.to_json reg);
        if report.Smr.Client.completed < commands then exit 1
      end
      else
        match op_args with
        | [ "get"; key ] ->
            let c = connect () in
            Format.printf "%a@." pp_reply (Smr.Client.get c key);
            Smr.Client.close c
        | [ "set"; key; value ] ->
            let c = connect () in
            Format.printf "%a@." pp_reply (Smr.Client.put c ~key ~value);
            Smr.Client.close c
        | [ "cas"; key; expect; set ] ->
            let c = connect () in
            let expect = if expect = "-" then None else Some expect in
            Format.printf "%a@." pp_reply (Smr.Client.cas c ~key ~expect ~set);
            Smr.Client.close c
        | [] ->
            Printf.eprintf
              "client: expected an operation (get K | set K V | cas K E V, \
               E = '-' for absent) or --load\n";
            exit 124
        | args ->
            Printf.eprintf "client: cannot parse operation: %s\n"
              (String.concat " " args);
            exit 124)

let client_cmd =
  let ops_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"OP"
          ~doc:
            "Synchronous operation: $(b,get) KEY, $(b,set) KEY VALUE, or \
             $(b,cas) KEY EXPECT NEW (EXPECT $(b,-) means absent).")
  in
  let load_arg =
    Arg.(
      value & flag
      & info [ "load" ]
          ~doc:"Run the closed-loop load generator instead of one operation.")
  in
  let member_arg =
    Arg.(
      value & opt int 0
      & info [ "member" ] ~docv:"I"
          ~doc:
            "Replica to talk to first (concurrent load generators should \
             each prefer a different one).")
  in
  let commands_arg =
    Arg.(
      value & opt int 100_000
      & info [ "commands" ] ~docv:"N" ~doc:"Commands to push under --load.")
  in
  let pipeline_arg =
    Arg.(
      value & opt int 64
      & info [ "pipeline" ] ~docv:"W"
          ~doc:"Outstanding requests kept in flight under --load.")
  in
  let value_bytes_arg =
    Arg.(
      value & opt int 16
      & info [ "value-bytes" ] ~docv:"B" ~doc:"Value size under --load.")
  in
  let keyspace_arg =
    Arg.(
      value & opt int 1024
      & info [ "keyspace" ] ~docv:"K" ~doc:"Distinct keys under --load.")
  in
  let latency_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "latency-trace" ] ~docv:"FILE"
          ~doc:
            "Write one {\"t\":epoch,\"lat\":seconds} JSONL line per \
             completed command (input of --check-recovery).")
  in
  let check_recovery_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "check-recovery" ] ~docv:"FILE"
          ~doc:
            "Assert the paper's recovery/decision bound on a recorded \
             latency trace instead of talking to the cluster.")
  in
  let after_arg =
    Arg.(
      value & opt float 0.
      & info [ "after" ] ~docv:"EPOCH"
          ~doc:"Wall-clock instant of the replica kill (--check-recovery).")
  in
  let delta_arg =
    Arg.(
      value & opt float 0.05
      & info [ "delta" ] ~docv:"SECONDS"
          ~doc:"Delta used to derive the bound (--check-recovery) and to \
                scale latency histogram buckets (--load).")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Progress chatter on stderr.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running cluster: one synchronous KV operation, the \
          --load generator, or --check-recovery over a recorded trace."
       ~exits:
         (Cmd.Exit.info 1
            ~doc:
              "when --load completes short or --check-recovery finds the \
               bound violated."
         :: Cmd.Exit.info 3 ~doc:"when no cluster member is reachable."
         :: Cmd.Exit.defaults))
    Term.(
      const client_impl $ cluster_arg $ member_arg $ ops_arg $ load_arg
      $ commands_arg $ pipeline_arg $ value_bytes_arg $ keyspace_arg
      $ seed_arg $ latency_trace_arg $ check_recovery_arg $ after_arg
      $ delta_arg $ verbose_arg)

(* ------------------------------------------------------------------ *)
(* fuzz / replay                                                       *)
(* ------------------------------------------------------------------ *)

let fuzz_impl budget seed domains protocol corpus_dir =
  (* lint: allow R1 — elapsed-time display for the operator, not part
     of any simulated run *)
  let t0 = Unix.gettimeofday () in
  let domains =
    match domains with
    | Some d -> d
    | None -> Harness.Measure.domain_count ()
  in
  let protocol =
    Option.map
      (fun s ->
        match Harness.Fuzz_scenario.protocol_of_name s with
        | Some p -> p
        | None ->
            failwith
              (Printf.sprintf "unknown protocol %S (try: %s)" s
                 (String.concat ", "
                    (List.map Harness.Fuzz_scenario.protocol_name
                       Harness.Fuzz_scenario.protocols))))
      protocol
  in
  (* Everything on stdout is a pure function of (budget, seed, protocol)
     — identical at any --domains; wall-clock and pool size go to stderr
     so stdout can be diffed across domain counts. *)
  let summary =
    Harness.Measure.with_domains domains (fun () ->
        Harness.Fuzz.campaign ?protocol ~budget ~seed ())
  in
  Format.printf "%a" Harness.Fuzz.pp_summary summary;
  (match corpus_dir with
  | Some dir ->
      List.iter
        (fun cx ->
          let path =
            Harness.Fuzz.save_entry ~dir
              (Harness.Fuzz.entry_of_counterexample cx)
          in
          Format.printf "saved %s@." path)
        summary.Harness.Fuzz.counterexamples
  | None -> ());
  (* lint: allow R1 — elapsed-time display for the operator *)
  let elapsed = Unix.gettimeofday () -. t0 in
  Format.eprintf "(%d domain%s, %.1fs)@." domains
    (if domains = 1 then "" else "s")
    elapsed;
  if summary.Harness.Fuzz.failures > 0 then exit 1

let fuzz_cmd =
  let budget_arg =
    Arg.(
      value & opt int 100
      & info [ "budget" ] ~docv:"N" ~doc:"Number of scenarios to generate.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Worker domains for the campaign (default: $(b,SIM_DOMAINS) or \
             the recommended domain count).  The summary is identical at \
             any value; 1 runs fully serial.")
  in
  let protocol_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol" ; "p" ] ~docv:"P"
          ~doc:
            "Fuzz only this protocol.  Default: a mix of every correct \
             implementation; $(b,ungated-paxos) (the A1 ablation, broken \
             by design) is only fuzzed when named here.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-corpus" ] ~docv:"DIR"
          ~doc:
            "Write each shrunk counterexample as a corpus JSON file into \
             DIR (see test/corpus/README.md).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run a seeded fault-injection campaign: random admissible \
          scenarios (crashes, restarts, losses, partitions, duplication, \
          reordering, clock drift, obsolete-message injections) checked \
          against the trace invariants and a liveness deadline; every \
          violation is shrunk to a minimal counterexample."
       ~exits:
         (Cmd.Exit.info 1 ~doc:"when the campaign found violations."
         :: Cmd.Exit.defaults))
    Term.(
      const fuzz_impl $ budget_arg $ seed_arg $ domains_arg $ protocol_arg
      $ corpus_arg)

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let read_whole_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* A chaos corpus file is the schedule document plus the load shape
   that exposed the failure, so `replay` re-runs the exact campaign. *)
let chaos_entry_to_json schedule ~commands ~pipeline =
  match Chaos.Schedule.to_json schedule with
  | Sim.Json.Obj fields ->
      Sim.Json.Obj
        (fields
        @ [
            ("commands", Sim.Json.int commands);
            ("pipeline", Sim.Json.int pipeline);
          ])
  | j -> j

let chaos_entry_of_json j =
  match Chaos.Schedule.of_json j with
  | Error _ as e -> e
  | Ok schedule ->
      let geti name default =
        match Sim.Json.member_opt name j with
        | Some v -> (
            match Sim.Json.to_int v with Ok i -> i | Error _ -> default)
        | None -> default
      in
      Ok (schedule, geti "commands" 50_000, geti "pipeline" 128)

let serve_argv ~delta ~id ~cluster ~bind ~snapshot =
  [|
    Sys.executable_name;
    "serve";
    "--id";
    string_of_int id;
    "--cluster";
    cluster;
    "--bind";
    bind;
    "--snapshot";
    snapshot;
    "--delta";
    Printf.sprintf "%g" delta;
    "--batch";
    "256";
    "--window";
    "64";
  |]

let with_scratch_dir f =
  let dir =
    Filename.temp_file "chaos-campaign" ""
  in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      match Sys.readdir dir with
      | names ->
          Array.iter (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ()) names;
          (try Unix.rmdir dir with Unix.Unix_error _ -> ())
      | exception Sys_error _ -> ())
    (fun () -> f dir)

let run_campaign schedule ~commands ~pipeline ~in_process ~save_failing
    ~verbose =
  Format.printf "chaos: %a@." Chaos.Schedule.pp schedule;
  let run mode =
    Chaos.Campaign.run
      {
        (Chaos.Campaign.default_config schedule) with
        Chaos.Campaign.commands;
        pipeline;
        mode;
        verbose;
      }
  in
  let outcome =
    if in_process then run Chaos.Campaign.In_process
    else
      with_scratch_dir (fun dir ->
          run
            (Chaos.Campaign.Subprocess
               {
                 argv = serve_argv ~delta:schedule.Chaos.Schedule.delta;
                 dir;
               }))
  in
  Format.printf "%a" Chaos.Campaign.pp_outcome outcome;
  (match outcome.Chaos.Campaign.report with
  | Some r ->
      Format.printf "load: %d commands in %.3fs = %.0f cmd/s@."
        r.Smr.Client.completed r.Smr.Client.elapsed r.Smr.Client.throughput
  | None -> ());
  Format.printf "%s@."
    (Sim.Registry.to_json outcome.Chaos.Campaign.registry);
  if Chaos.Campaign.ok outcome then ()
  else begin
    (match save_failing with
    | None -> ()
    | Some dir ->
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error ((Unix.EEXIST | Unix.EPERM), _, _) -> ());
        let path =
          Filename.concat dir
            (Printf.sprintf "%s.json" schedule.Chaos.Schedule.name)
        in
        let oc = open_out path in
        output_string oc
          (Sim.Json.print_pretty
             (chaos_entry_to_json schedule ~commands ~pipeline));
        output_char oc '\n';
        close_out oc;
        Format.printf "failing schedule saved to %s (replay with: \
                       consensus_sim replay %s)@."
          path path);
    exit 1
  end

let chaos_impl seed n ts delta horizon commands pipeline schedule_file
    print_schedule in_process save_failing verbose =
  let schedule =
    match schedule_file with
    | Some path -> (
        match Sim.Json.parse (read_whole_file path) with
        | Error msg ->
            Printf.eprintf "chaos: %s: %s\n" path msg;
            exit 3
        | Ok j -> (
            match Chaos.Schedule.of_json j with
            | Error msg ->
                Printf.eprintf "chaos: %s: %s\n" path msg;
                exit 3
            | Ok s -> s))
    | None -> (
        let horizon = if horizon > 0. then horizon else ts +. 2.0 in
        match Chaos.Schedule.generate ~seed ~n ~ts ~delta ~horizon () with
        | s -> s
        | exception Invalid_argument msg ->
            Printf.eprintf "chaos: %s\n" msg;
            exit 3)
  in
  if print_schedule then
    print_endline (Sim.Json.print_pretty (Chaos.Schedule.to_json schedule))
  else
    run_campaign schedule ~commands ~pipeline ~in_process ~save_failing
      ~verbose

let chaos_cmd =
  let n_arg =
    Arg.(
      value & opt int 3
      & info [ "n" ] ~docv:"N" ~doc:"Cluster size (3-5 is the usual range).")
  in
  let ts_arg =
    Arg.(
      value & opt float 0.5
      & info [ "ts" ] ~docv:"SECONDS"
          ~doc:
            "Stabilization point of the generated schedule: disruptive \
             faults end by then.")
  in
  let delta_arg =
    Arg.(
      value & opt float 0.02
      & info [ "delta" ] ~docv:"SECONDS"
          ~doc:"Post-stabilization delivery bound (added latency cap).")
  in
  let horizon_arg =
    Arg.(
      value & opt float 0.
      & info [ "horizon" ] ~docv:"SECONDS"
          ~doc:
            "End of scheduled interference (default ts + 2): delta-bounded \
             latency is injected until then.")
  in
  let commands_arg =
    Arg.(
      value & opt int 120_000
      & info [ "commands" ] ~docv:"N"
          ~doc:
            "Load size; must keep the client running past the settle point \
             so the recovery bound has post-settle samples.")
  in
  let pipeline_arg =
    Arg.(
      value & opt int 256
      & info [ "pipeline" ] ~docv:"N" ~doc:"Client pipelining depth.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:
            "Run this schedule file instead of generating one from --seed.")
  in
  let print_arg =
    Arg.(
      value & flag
      & info [ "print-schedule" ]
          ~doc:
            "Print the (generated or loaded) schedule as JSON and exit — \
             the same seed prints byte-identical output.")
  in
  let in_process_arg =
    Arg.(
      value & flag
      & info [ "in-process" ]
          ~doc:
            "Run replicas on threads in this process instead of spawning \
             real serve processes (cheaper; direct state probes).")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) (Some "chaos-failures")
      & info [ "save-failing" ] ~docv:"DIR"
          ~doc:
            "Persist the schedule of a failing campaign here for replay \
             (default chaos-failures).")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Progress chatter on stderr.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a live localhost cluster behind the deterministic chaos \
          proxy and assert the robustness contract: lossless completion, \
          exactly-once effects, replica agreement, and the paper's \
          recovery bound after the schedule's stabilization point."
       ~exits:
         (Cmd.Exit.info 1 ~doc:"when the robustness contract is violated."
         :: Cmd.Exit.info 3
              ~doc:"when the environment prevents the campaign from running."
         :: Cmd.Exit.defaults))
    Term.(
      const chaos_impl $ seed_arg $ n_arg $ ts_arg $ delta_arg $ horizon_arg
      $ commands_arg $ pipeline_arg $ schedule_arg $ print_arg
      $ in_process_arg $ save_arg $ verbose_arg)

let replay_chaos path j =
  match chaos_entry_of_json j with
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
  | Ok (schedule, commands, pipeline) ->
      Format.printf "%s: replaying chaos campaign@." path;
      run_campaign schedule ~commands ~pipeline ~in_process:true
        ~save_failing:None ~verbose:false

let replay_impl paths =
  if paths = [] then
    failwith "replay: give at least one corpus file (test/corpus/*.json)";
  let is_chaos path =
    match Sim.Json.parse (read_whole_file path) with
    | Error _ -> None
    | Ok j -> (
        match Sim.Json.member_opt "format" j with
        | Some (Sim.Json.Str f) when f = Chaos.Schedule.format_tag -> Some j
        | Some _ | None -> None)
  in
  let ok =
    List.fold_left
      (fun ok path ->
        match is_chaos path with
        | Some j ->
            replay_chaos path j;
            ok
        | None -> (
            match Harness.Fuzz.load_entry path with
            | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
            | Ok entry -> (
                match Harness.Fuzz.replay entry with
                | Ok o ->
                    Format.printf
                      "%s: reproduced %s (%a; %d events, %d decided)@." path
                      entry.Harness.Fuzz.check Harness.Fuzz_scenario.pp
                      entry.Harness.Fuzz.scenario o.Harness.Fuzz.events
                      o.Harness.Fuzz.decided;
                    ok
                | Error (saw, _) ->
                    Format.printf "%s: NOT reproduced — expected %s, saw %s@."
                      path entry.Harness.Fuzz.check saw;
                    false)))
      true paths
  in
  if not ok then exit 1

let replay_cmd =
  let paths_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Corpus files to re-execute.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-execute fuzzer counterexamples from corpus files and check \
          that each still violates its recorded invariant."
       ~exits:
         (Cmd.Exit.info 1
            ~doc:"when a file no longer reproduces its violation."
         :: Cmd.Exit.defaults))
    Term.(const replay_impl $ paths_arg)

(* ------------------------------------------------------------------ *)
(* list                                                                *)
(* ------------------------------------------------------------------ *)

let list_impl () =
  Format.printf "protocols:@.";
  List.iter (fun (name, _) -> Format.printf "  %s@." name) protocols;
  Format.printf "networks:@.";
  List.iter (fun (name, _) -> Format.printf "  %s@." name) (networks 0.01);
  Format.printf "experiments:@.";
  List.iter (fun id -> Format.printf "  %s@." id) Harness.Experiments.ids

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List protocols, networks and experiments.")
    Term.(const list_impl $ const ())

let main =
  Cmd.group
    (Cmd.info "consensus-sim" ~version:"1.0.0"
       ~doc:
         "Reproduction of \"How Fast Can Eventual Synchrony Lead to \
          Consensus?\" (Dutta, Guerraoui, Lamport; DSN 2005).")
    [
      run_cmd;
      experiment_cmd;
      trace_cmd;
      lint_cmd;
      fuzz_cmd;
      replay_cmd;
      sweep_cmd;
      check_cmd;
      realtime_cmd;
      serve_cmd;
      client_cmd;
      chaos_cmd;
      list_cmd;
    ]

let () = exit (Cmd.eval main)
