(* Bounded model checking of the B-Consensus round core — the mechanical
   counterpart of the hand-written safety argument behind our Section 5
   reconstruction (see lib/bconsensus/modified_b_consensus.mli). *)

let cfg ?mutation ?(proposals = [| 10; 20; 30 |]) ?(max_round = 1) () =
  { Mcheck.Bc_model.n = 3; proposals; max_round; mutation }

let explore ?(max_depth = 10) ?(max_states = 500_000) cfg properties =
  Mcheck.Explore.run
    ~initial:(Mcheck.Bc_model.initial cfg)
    ~successors:(Mcheck.Bc_model.successors cfg)
    ~fingerprint:Mcheck.Bc_model.fingerprint ~key:Mcheck.Bc_model.key
    ~properties ~max_depth ~max_states ()

let all_props cfg =
  [
    ("agreement", Mcheck.Bc_model.agreement);
    ("validity", fun st -> Mcheck.Bc_model.validity cfg st);
    ("lock-uniqueness", Mcheck.Bc_model.lock_uniqueness);
  ]

let test_initial () =
  let c = cfg () in
  let st = Mcheck.Bc_model.initial c in
  Alcotest.(check bool) "agreement" true (Mcheck.Bc_model.agreement st);
  Alcotest.(check bool) "lock uniqueness" true
    (Mcheck.Bc_model.lock_uniqueness st);
  (* first moves: each process can wabcast *)
  Alcotest.(check int) "three wabcasts" 3
    (List.length (Mcheck.Bc_model.successors c st))

let test_safety_depth10 () =
  let c = cfg () in
  let o = explore ~max_depth:10 c (all_props c) in
  Alcotest.(check bool) "no violation" true (o.Mcheck.Explore.violation = None);
  Alcotest.(check bool) "nontrivial" true (o.Mcheck.Explore.states > 10_000)

let test_safety_two_rounds () =
  let c = cfg ~max_round:2 () in
  let o = explore ~max_depth:9 c (all_props c) in
  Alcotest.(check bool) "no violation across rounds" true
    (o.Mcheck.Explore.violation = None)

let test_decision_reachable () =
  let c = cfg () in
  let o =
    explore ~max_depth:12 c
      [
        ( "nobody-decides",
          fun st ->
            Array.for_all
              (fun p -> p.Mcheck.Bc_model.decided < 0)
              st.Mcheck.Bc_model.procs );
      ]
  in
  Alcotest.(check bool) "a decision is reachable" true
    (match o.Mcheck.Explore.violation with
    | Some ("nobody-decides", _) -> true
    | _ -> false)

let test_mutated_lock_rule_caught () =
  (* weakening the lock rule must produce conflicting non-bottom locks *)
  let c = cfg ~mutation:Mcheck.Bc_model.Lock_on_first_report () in
  let o =
    explore ~max_depth:8 c
      [ ("lock-uniqueness", Mcheck.Bc_model.lock_uniqueness) ]
  in
  Alcotest.(check bool) "checker catches the planted bug" true
    (match o.Mcheck.Explore.violation with
    | Some ("lock-uniqueness", _) -> true
    | _ -> false)

let test_mutated_decide_rule_caught_slow () =
  (* The deep mutation: decide on any non-bottom lock.  The shortest
     counterexample needs ~13 steps, so this explores a few hundred
     thousand states (~1 min); set BC_MUTATION_DEEP=1 to enable. *)
  if Sys.getenv_opt "BC_MUTATION_DEEP" = None then ()
  else begin
    let c =
      cfg ~mutation:Mcheck.Bc_model.Decide_on_any_some
        ~proposals:[| 10; 10; 20 |] ()
    in
    let o =
      explore ~max_depth:14 ~max_states:2_000_000 c
        [ ("agreement", Mcheck.Bc_model.agreement) ]
    in
    Alcotest.(check bool) "disagreement found" true
      (match o.Mcheck.Explore.violation with
      | Some ("agreement", _) -> true
      | _ -> false)
  end

let test_pp () =
  let c = cfg () in
  let s =
    Format.asprintf "%a" Mcheck.Bc_model.pp_state (Mcheck.Bc_model.initial c)
  in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial;
    Alcotest.test_case "safety to depth 10" `Quick test_safety_depth10;
    Alcotest.test_case "safety across two rounds" `Quick
      test_safety_two_rounds;
    Alcotest.test_case "decision reachable" `Quick test_decision_reachable;
    Alcotest.test_case "planted lock bug caught" `Quick
      test_mutated_lock_rule_caught;
    Alcotest.test_case "planted decide bug caught (env-gated)" `Slow
      test_mutated_decide_rule_caught_slow;
    Alcotest.test_case "state printing" `Quick test_pp;
  ]
