(* Chaos layer: deterministic schedules, the frame-aware proxy over a
   live loopback cluster, and the campaign's robustness contract.
   Socket timing is inherently noisy, so liveness checks get generous
   margins; determinism checks are exact. *)

module Netio = Realtime.Netio

let localhost = "127.0.0.1"

(* ---- schedules ---------------------------------------------------- *)

let gen seed =
  Chaos.Schedule.generate ~seed ~n:3 ~ts:0.5 ~delta:0.02 ~horizon:2.5 ()

let test_generation_deterministic () =
  let print s = Sim.Json.print (Chaos.Schedule.to_json s) in
  Alcotest.(check string)
    "same seed, byte-identical schedule" (print (gen 42L)) (print (gen 42L));
  Alcotest.(check bool)
    "different seeds differ" false
    (print (gen 42L) = print (gen 43L))

let test_json_round_trip () =
  let s = gen 9L in
  (match Chaos.Schedule.of_json (Chaos.Schedule.to_json s) with
  | Ok s' ->
      Alcotest.(check bool) "round-trips to an equal schedule" true
        (Chaos.Schedule.equal s s')
  | Error m -> Alcotest.fail ("round trip failed: " ^ m));
  match Chaos.Schedule.of_json (Sim.Json.Obj [ ("format", Sim.Json.Str "nope") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong format tag must be rejected"

let test_validate_rejects_model_violations () =
  let base = { (gen 1L) with Chaos.Schedule.actions = [] } in
  let rejected actions =
    match
      Chaos.Schedule.validate { base with Chaos.Schedule.actions }
    with
    | Error _ -> true
    | Ok () -> false
  in
  Alcotest.(check bool) "cut crossing ts" true
    (rejected
       [ Chaos.Schedule.Cut { src = 0; dst = 1; from_ = 0.1; until = 1.0 } ]);
  Alcotest.(check bool) "post-ts delay above delta" true
    (rejected
       [
         Chaos.Schedule.Delay { from_ = 0.5; until = 1.0; max_delay = 0.5 };
       ]);
  Alcotest.(check bool) "reset after ts" true
    (rejected [ Chaos.Schedule.Reset { dst = 0; at = 0.9 } ]);
  Alcotest.(check bool) "overlapping partition groups" true
    (rejected
       [
         Chaos.Schedule.Partition
           { groups = [ [ 0; 1 ]; [ 1; 2 ] ]; from_ = 0.0; until = 0.2 };
       ]);
  Alcotest.(check bool) "probability out of range" true
    (rejected
       [
         Chaos.Schedule.Corrupt
           { src = 0; dst = 1; from_ = 0.0; until = 0.2; prob = 1.5 };
       ]);
  Alcotest.(check bool) "a pre-ts disruption is fine" false
    (rejected
       [ Chaos.Schedule.Cut { src = 0; dst = 1; from_ = 0.0; until = 0.4 } ])

(* ---- client backoff curve ----------------------------------------- *)

let test_backoff_delay_curve () =
  let check_f = Alcotest.(check (float 1e-9)) in
  check_f "round 0, low jitter" 0.0375
    (Smr.Client.backoff_delay ~round:0 0.0);
  check_f "round 2 doubles twice" 0.15 (Smr.Client.backoff_delay ~round:2 0.0);
  check_f "cap binds" 0.75 (Smr.Client.backoff_delay ~round:10 0.0);
  Alcotest.(check bool) "jitter stays under cap * 1.25" true
    (Smr.Client.backoff_delay ~round:10 0.999 < 1.25);
  Alcotest.(check bool) "monotone in round until the cap" true
    (Smr.Client.backoff_delay ~round:1 0.5
    < Smr.Client.backoff_delay ~round:3 0.5);
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "negative round rejected" true
    (raises (fun () -> Smr.Client.backoff_delay ~round:(-1) 0.0));
  Alcotest.(check bool) "jitter >= 1 rejected" true
    (raises (fun () -> Smr.Client.backoff_delay ~round:0 1.0))

(* ---- netio hardening ---------------------------------------------- *)

(* run [t]'s loop inline until [pred] or the deadline; returns [pred]'s
   final value *)
let step_until t pred =
  let deadline = Netio.wall () +. 5.0 in
  let rec go () =
    if pred () then true
    else if Netio.wall () >= deadline then pred ()
    else begin
      Netio.step t 0.02;
      go ()
    end
  in
  go ()

let test_netio_partial_timeout () =
  let t = Netio.create () in
  let reg = Sim.Registry.create () in
  Netio.set_registry t reg;
  Netio.set_limits t ~partial_timeout:0.05 ();
  let port =
    Netio.listen t ~host:localhost ~port:0 ~on_accept:(fun c ->
        (* never consume: unconsumed partial input must age out *)
        Netio.set_callbacks c ~on_data:(fun _ -> ()) ~on_close:(fun _ -> ()))
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Netio.resolve localhost, port));
  (* 5 bytes of a 12-byte header, then silence *)
  ignore (Unix.write sock (Bytes.of_string "ES\x01\x00\x00") 0 5);
  let dropped () = Sim.Registry.counter_total reg "netio_partial_timeouts" > 0 in
  Alcotest.(check bool) "stalled partial frame dropped" true
    (step_until t dropped);
  Unix.close sock;
  Netio.shutdown t

let test_netio_input_overflow () =
  let t = Netio.create () in
  let reg = Sim.Registry.create () in
  Netio.set_registry t reg;
  Netio.set_limits t ~max_input:64 ();
  let port =
    Netio.listen t ~host:localhost ~port:0 ~on_accept:(fun c ->
        Netio.set_callbacks c ~on_data:(fun _ -> ()) ~on_close:(fun _ -> ()))
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Netio.resolve localhost, port));
  ignore (Unix.write sock (Bytes.make 1024 'x') 0 1024);
  let dropped () = Sim.Registry.counter_total reg "netio_input_overflows" > 0 in
  Alcotest.(check bool) "unbounded inbound buffer dropped" true
    (step_until t dropped);
  Unix.close sock;
  Netio.shutdown t

let test_netio_accept_backoff () =
  let t = Netio.create () in
  let reg = Sim.Registry.create () in
  Netio.set_registry t reg;
  ignore
    (Netio.listen t ~host:localhost ~port:0 ~on_accept:(fun _ ->
         Alcotest.fail "sabotaged listener must not accept"));
  Netio.Private.sabotage_listeners t;
  let backed_off () =
    Sim.Registry.counter_total reg "netio_accept_backoffs" > 0
  in
  Alcotest.(check bool) "persistent accept failure backs off" true
    (step_until t backed_off);
  Alcotest.(check int) "listener is inside its pause window" 1
    (Netio.Private.paused_listeners t);
  (* while paused the loop must keep stepping without spinning on the
     poisoned fd: counters stay put *)
  let before = Sim.Registry.counter_total reg "netio_accept_backoffs" in
  Netio.step t 0.01;
  Netio.step t 0.01;
  Alcotest.(check int) "no accept attempts while paused" before
    (Sim.Registry.counter_total reg "netio_accept_backoffs");
  Netio.shutdown t

(* ---- proxy over a live cluster ------------------------------------ *)

let empty_schedule =
  {
    Chaos.Schedule.name = "empty";
    seed = 5L;
    n = 3;
    ts = 0.1;
    delta = 0.02;
    horizon = 0.1;
    actions = [];
  }

(* the campaign's in-process plumbing, inlined so tests can reach the
   replica registries and KV state directly *)
let start_proxied_cluster schedule =
  let reg = Sim.Registry.create () in
  let proxy = Chaos.Proxy.create ~schedule ~registry:reg () in
  let fronts = Chaos.Proxy.fronts proxy in
  let replicas =
    Array.init schedule.Chaos.Schedule.n (fun id ->
        Smr.Replica.create
          {
            (Smr.Replica.default_config ~id ~cluster:fronts) with
            bind = Some (localhost, 0);
            delta = schedule.Chaos.Schedule.delta;
            seed = 7;
          })
  in
  Chaos.Proxy.set_backends proxy
    (Array.map (fun r -> (localhost, Smr.Replica.port r)) replicas);
  Chaos.Proxy.start_clock proxy;
  let proxy_thread = Thread.create Chaos.Proxy.run proxy in
  let replica_threads =
    Array.map (fun r -> Thread.create Smr.Replica.run r) replicas
  in
  let stop () =
    Array.iter Smr.Replica.stop replicas;
    Array.iter Thread.join replica_threads;
    Chaos.Proxy.stop proxy;
    Thread.join proxy_thread;
    Chaos.Proxy.shutdown proxy
  in
  (proxy, reg, replicas, fronts, stop)

let wait_converged replicas =
  let deadline = Netio.wall () +. 10. in
  let converged () =
    let sigs =
      Array.map
        (fun r -> (Smr.Replica.chosen_count r, Smr.Replica.kv_checksum r))
        replicas
    in
    Array.for_all (fun s -> s = sigs.(0)) sigs
  in
  while (not (converged ())) && Netio.wall () < deadline do
    Thread.delay 0.05
  done;
  converged ()

let test_proxy_transparent () =
  let _, reg, replicas, fronts, stop =
    start_proxied_cluster empty_schedule
  in
  Fun.protect ~finally:stop (fun () ->
      let c = Smr.Client.connect fronts in
      Fun.protect
        ~finally:(fun () -> Smr.Client.close c)
        (fun () ->
          (match Smr.Client.put c ~key:"a" ~value:"1" with
          | Smr.Wire.R_stored -> ()
          | _ -> Alcotest.fail "put through the proxy should succeed");
          match Smr.Client.get c "a" with
          | Smr.Wire.R_value (Some "1") -> ()
          | _ -> Alcotest.fail "get through the proxy should see the put");
      Alcotest.(check bool) "replicas converged" true
        (wait_converged replicas);
      Alcotest.(check int) "frames flowed through the proxy" 0
        (if Sim.Registry.counter_total reg "chaos_frames" > 0 then 0 else 1);
      List.iter
        (fun name ->
          Alcotest.(check int)
            (name ^ " untouched by an empty schedule")
            0
            (Sim.Registry.counter_total reg name))
        [
          "chaos_dropped";
          "chaos_delayed";
          "chaos_duplicated";
          "chaos_reordered";
          "chaos_corrupted";
          "chaos_truncated";
          "chaos_resets";
          "chaos_bad_frames";
        ])

let test_corruption_teardown_and_recovery () =
  (* every frame replica 0 sends replica 1 is corrupted for 0.3 s: the
     receiver's CRC check must tear the connection down cleanly, the
     mesh must keep deciding through the third replica, and once the
     window closes the link heals and the cluster converges *)
  let schedule =
    {
      Chaos.Schedule.name = "corrupt-link";
      seed = 11L;
      n = 3;
      ts = 0.3;
      delta = 0.02;
      horizon = 0.3;
      actions =
        [
          Chaos.Schedule.Corrupt
            { src = 0; dst = 1; from_ = 0.0; until = 0.3; prob = 1.0 };
        ];
    }
  in
  let _, reg, replicas, fronts, stop = start_proxied_cluster schedule in
  Fun.protect ~finally:stop (fun () ->
      let c = Smr.Client.connect ~prefer:0 fronts in
      let report =
        Fun.protect
          ~finally:(fun () -> Smr.Client.close c)
          (fun () ->
            Smr.Client.run_load ~timeout:0.5 c
              {
                Smr.Client.default_load with
                commands = 1_000;
                pipeline = 32;
                seed = 3;
              })
      in
      Alcotest.(check int) "all commands completed through the fault" 1_000
        report.Smr.Client.completed;
      Alcotest.(check bool) "proxy corrupted frames" true
        (Sim.Registry.counter_total reg "chaos_corrupted" > 0);
      let bad_frames =
        Array.fold_left
          (fun acc r ->
            acc
            + Sim.Registry.counter_total (Smr.Replica.registry r)
                "serve_bad_frames")
          0 replicas
      in
      Alcotest.(check bool) "a replica saw and dropped corrupt frames" true
        (bad_frames > 0);
      Alcotest.(check bool) "cluster converged after the window" true
        (wait_converged replicas);
      let sums = Array.map Smr.Replica.kv_checksum replicas in
      Array.iter
        (fun s ->
          Alcotest.(check bool) "replica checksums agree" true (s = sums.(0)))
        sums)

(* ---- the campaign end to end -------------------------------------- *)

let test_mini_campaign () =
  let schedule =
    Chaos.Schedule.generate ~seed:3L ~n:3 ~ts:0.4 ~delta:0.02 ~horizon:1.6 ()
  in
  let outcome =
    Chaos.Campaign.run
      {
        (Chaos.Campaign.default_config schedule) with
        Chaos.Campaign.commands = 1_500;
        pipeline = 32;
      }
  in
  Alcotest.(check bool)
    (Format.asprintf "campaign contract holds: %a" Chaos.Campaign.pp_outcome
       outcome)
    true
    (Chaos.Campaign.ok outcome);
  Alcotest.(check bool) "campaign produced a client report" true
    (outcome.Chaos.Campaign.report <> None);
  match outcome.Chaos.Campaign.recovery with
  | None -> Alcotest.fail "campaign produced no recovery verdict"
  | Some v ->
      Alcotest.(check bool) "post-settle samples exist" true
        (v.Smr.Recovery.post > 0)

(* ---- recovery verdict unit behaviour ------------------------------ *)

let test_recovery_check () =
  let bound = 0.1 in
  (* slack = max 1.0 bound = 1.0, settled = 0.5 + 1.1 = 1.6 *)
  let good =
    List.init 40 (fun i -> (0.1 *. float_of_int i, 0.01))
  in
  let v = Smr.Recovery.check ~bound ~after:0.5 good in
  Alcotest.(check bool)
    (Format.asprintf "steady trace passes: %a" Smr.Recovery.pp v)
    true (Smr.Recovery.ok v);
  let no_post = [ (0.1, 0.01); (0.2, 0.01) ] in
  Alcotest.(check bool) "trace ending before the settle point fails" false
    (Smr.Recovery.ok (Smr.Recovery.check ~bound ~after:0.5 no_post));
  let slow_post = good @ [ (6.0, 0.01) ] in
  Alcotest.(check bool) "post-settle stall fails" false
    (Smr.Recovery.ok (Smr.Recovery.check ~bound ~after:0.5 slow_post));
  let laggy = good @ [ (4.05, 3.0) ] in
  Alcotest.(check bool) "post-settle latency above the bound fails" false
    (Smr.Recovery.ok (Smr.Recovery.check ~bound ~after:0.5 laggy))

let suite =
  [
    Alcotest.test_case "schedule generation is deterministic" `Quick
      test_generation_deterministic;
    Alcotest.test_case "schedule JSON round-trips" `Quick test_json_round_trip;
    Alcotest.test_case "validate rejects model-shape violations" `Quick
      test_validate_rejects_model_violations;
    Alcotest.test_case "client backoff delay curve" `Quick
      test_backoff_delay_curve;
    Alcotest.test_case "netio drops stalled partial frames" `Quick
      test_netio_partial_timeout;
    Alcotest.test_case "netio bounds the inbound buffer" `Quick
      test_netio_input_overflow;
    Alcotest.test_case "netio backs off a failing accept" `Quick
      test_netio_accept_backoff;
    Alcotest.test_case "recovery verdicts" `Quick test_recovery_check;
    Alcotest.test_case "empty schedule is transparent" `Slow
      test_proxy_transparent;
    Alcotest.test_case "corruption tears down and the link heals" `Slow
      test_corruption_teardown_and_recovery;
    Alcotest.test_case "mini campaign holds the contract" `Slow
      test_mini_campaign;
  ]
