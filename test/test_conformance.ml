(* A uniform conformance matrix: every single-shot consensus protocol in
   the repository, run over the same grid of networks, fault scripts and
   seeds, must satisfy termination-after-TS, agreement and validity.

   This complements the per-protocol suites (which test
   protocol-specific behaviour) with breadth: the same conditions for
   everyone. *)

let delta = 0.01

let ts = 0.5

type runner = {
  rname : string;
  run :
    n:int ->
    seed:int64 ->
    network:Sim.Network.t ->
    faults:Sim.Fault.t ->
    unit Sim.Engine.run_result;
}

(* Erase the protocol state type so runners fit one list. *)
let erase (r : _ Sim.Engine.run_result) : unit Sim.Engine.run_result =
  {
    scenario = r.Sim.Engine.scenario;
    protocol_name = r.protocol_name;
    decision_times = r.decision_times;
    decision_values = r.decision_values;
    messages_sent = r.messages_sent;
    messages_delivered = r.messages_delivered;
    messages_dropped = r.messages_dropped;
    end_time = r.end_time;
    events_processed = r.events_processed;
    trace = r.trace;
    metrics = r.metrics;
    agreement_violation = r.agreement_violation;
    final_states = Array.map (Option.map ignore) r.final_states;
  }

let scenario ~n ~seed ~network ~faults =
  Sim.Scenario.make ~name:"conformance" ~n ~ts ~delta ~seed ~network ~faults
    ~horizon:(ts +. (500. *. delta))
    ()

let runners =
  [
    {
      rname = "modified-paxos";
      run =
        (fun ~n ~seed ~network ~faults ->
          let cfg = Dgl.Config.make ~n ~delta () in
          erase
            (Sim.Engine.run
               (scenario ~n ~seed ~network ~faults)
               (Dgl.Modified_paxos.protocol cfg)));
    };
    {
      rname = "traditional-paxos";
      run =
        (fun ~n ~seed ~network ~faults ->
          let oracle = Baselines.Leader_election.make ~n ~ts ~delta ~faults () in
          erase
            (Sim.Engine.run
               (scenario ~n ~seed ~network ~faults)
               (Baselines.Traditional_paxos.protocol ~n ~delta ~oracle ())));
    };
    {
      rname = "rotating-coordinator";
      run =
        (fun ~n ~seed ~network ~faults ->
          erase
            (Sim.Engine.run
               (scenario ~n ~seed ~network ~faults)
               (Baselines.Rotating_coordinator.protocol ~n ~delta ())));
    };
    {
      rname = "modified-b-consensus";
      run =
        (fun ~n ~seed ~network ~faults ->
          erase
            (Sim.Engine.run
               (scenario ~n ~seed ~network ~faults)
               (Bconsensus.Modified_b_consensus.protocol ~n ~delta ~rho:0. ())));
    };
  ]

let networks =
  [
    ("lossy", Sim.Network.eventually_synchronous ());
    ("silent", Sim.Network.silent_until_ts);
    ("deterministic", Sim.Network.deterministic_after_ts);
    ("sync", Sim.Network.always_synchronous);
    ( "duplicating",
      Sim.Network.with_duplication ~prob:0.3
        (Sim.Network.eventually_synchronous ()) );
  ]

let fault_grid ~n =
  [
    ("fault-free", Sim.Fault.none, []);
    ( "minority-down",
      Sim.Fault.make ~initially_down:(Harness.Adversaries.faulty_minority ~n) [],
      Harness.Adversaries.faulty_minority ~n );
    ( "crash+restart",
      Sim.Fault.crash_then_restart ~crash_at:(ts /. 2.)
        ~restart_at:(ts +. (30. *. delta))
        (n - 1),
      [] );
  ]

let check_grid runner () =
  let n = 5 in
  List.iter
    (fun (net_name, network) ->
      List.iter
        (fun (fault_name, faults, excluded) ->
          List.iter
            (fun seed ->
              let r = runner.run ~n ~seed ~network ~faults in
              let label =
                Printf.sprintf "%s/%s/%s/seed=%Ld" runner.rname net_name
                  fault_name seed
              in
              (match Harness.Measure.check_safety r with
              | Ok () -> ()
              | Error msg -> Alcotest.fail (label ^ ": " ^ msg));
              List.iter
                (fun p ->
                  if not (List.mem p excluded) then
                    Alcotest.(check bool)
                      (Printf.sprintf "%s: p%d decided" label p)
                      true
                      (r.Sim.Engine.decision_values.(p) <> None))
                (List.init n Fun.id))
            [ 11L; 22L ])
        (fault_grid ~n))
    networks

let suite =
  List.map
    (fun runner ->
      Alcotest.test_case
        (runner.rname ^ ": full grid (5 nets x 3 faults x 2 seeds)")
        `Quick (check_grid runner))
    runners
