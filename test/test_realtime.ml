(* The thread-based real-time executor runs the very same protocol
   records as the simulator.  Wall-clock timing is inherently noisy, so
   these tests check safety exactly and liveness with generous margins. *)

let cfg ?(n = 3) ?(delta = 0.02) ?(ts = 0.15) ?(duration = 3.0)
    ?(pre_loss = 1.0) ?(seed = 7L) ?(faults = []) ?(record_trace = true) () =
  {
    Realtime.Threads_engine.n;
    delta;
    ts;
    duration;
    pre_loss;
    seed;
    faults;
    record_trace;
  }

let proposals n = Array.init n (fun i -> 100 + i)

let check_consensus ~what ~proposals:props
    (r : Realtime.Threads_engine.result) =
  Alcotest.(check bool) (what ^ ": no violation") false r.agreement_violation;
  let values =
    Array.to_list r.decisions |> List.filter_map (Option.map snd)
  in
  Alcotest.(check int)
    (what ^ ": everyone decided")
    (Array.length r.decisions)
    (List.length values);
  (match values with
  | [] -> Alcotest.fail (what ^ ": no decisions")
  | v :: rest ->
      List.iter (fun v' -> Alcotest.(check int) (what ^ ": agree") v v') rest;
      Alcotest.(check bool)
        (what ^ ": validity")
        true
        (Array.exists (( = ) v) props));
  ()

let test_modified_paxos_realtime () =
  let c = cfg () in
  let props = proposals c.Realtime.Threads_engine.n in
  let dgl_cfg =
    Dgl.Config.make ~n:c.Realtime.Threads_engine.n
      ~delta:c.Realtime.Threads_engine.delta ()
  in
  let r =
    Realtime.Threads_engine.run c ~proposals:props
      (Dgl.Modified_paxos.protocol dgl_cfg)
  in
  check_consensus ~what:"modified paxos" ~proposals:props r;
  (* messages were silenced before ts, so decisions come after it *)
  Array.iter
    (function
      | Some (t, _) ->
          Alcotest.(check bool) "decided after ts" true
            (t >= c.Realtime.Threads_engine.ts)
      | None -> ())
    r.decisions;
  (* the wall-clock trace satisfies the same trace invariants the
     simulator's traces do (no timer bounds: real scheduling jitters) *)
  let report = Harness.Invariants.check ~proposals:props r.trace in
  Alcotest.(check bool)
    (Format.asprintf "realtime trace invariants: %a" Harness.Invariants.pp
       report)
    true
    (Harness.Invariants.ok report);
  Alcotest.(check bool) "trace non-empty" true (Sim.Trace.length r.trace > 0);
  Alcotest.(check int) "metrics runs counter" 1
    (Sim.Registry.counter_total r.metrics "runs")

let test_b_consensus_realtime () =
  let c = cfg ~delta:0.02 () in
  let props = proposals c.Realtime.Threads_engine.n in
  let r =
    Realtime.Threads_engine.run c ~proposals:props
      (Bconsensus.Modified_b_consensus.protocol
         ~n:c.Realtime.Threads_engine.n ~delta:c.Realtime.Threads_engine.delta
         ~rho:0. ())
  in
  check_consensus ~what:"b-consensus" ~proposals:props r

let test_stable_from_start_is_fast () =
  (* with ts = 0 the protocol should finish long before the deadline *)
  let c = cfg ~ts:0. ~duration:3.0 ~pre_loss:0. () in
  let props = proposals c.Realtime.Threads_engine.n in
  let dgl_cfg =
    Dgl.Config.make ~n:c.Realtime.Threads_engine.n
      ~delta:c.Realtime.Threads_engine.delta ()
  in
  let r =
    Realtime.Threads_engine.run c ~proposals:props
      (Dgl.Modified_paxos.protocol dgl_cfg)
  in
  check_consensus ~what:"stable start" ~proposals:props r;
  Alcotest.(check bool) "well under the deadline" true (r.elapsed < 2.0)

let test_smr_over_threads () =
  (* the most complex protocol record in the repository, over real
     threads: replicated logs must converge *)
  let c = cfg ~n:3 ~delta:0.02 ~ts:0.1 ~duration:4.0 () in
  let n = c.Realtime.Threads_engine.n in
  let dgl_cfg = Dgl.Config.make ~n ~delta:c.Realtime.Threads_engine.delta () in
  let workloads =
    Array.init n (fun p ->
        if p <> 1 then []
        else
          List.init 3 (fun k ->
              ( 0.15 +. (0.1 *. float_of_int k),
                Smr.Command.make ~id:k (Smr.Command.Add (k + 1)) )))
  in
  let r =
    Realtime.Threads_engine.run c ~proposals:(proposals n)
      (Smr.Multi_paxos.protocol dgl_cfg ~workloads)
  in
  Alcotest.(check bool) "no log divergence" false r.agreement_violation;
  Array.iteri
    (fun p d ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d converged" p)
        true (d <> None))
    r.decisions

let test_crash_restart_over_threads () =
  (* a process crashes mid-chaos and restarts after stabilization: it
     must rebuild from stable storage and still decide *)
  let faults =
    [
      Realtime.Threads_engine.Crash (0.05, 2);
      Realtime.Threads_engine.Restart (0.4, 2);
    ]
  in
  let c = cfg ~ts:0.15 ~duration:4.0 ~faults () in
  let props = proposals c.Realtime.Threads_engine.n in
  let dgl_cfg =
    Dgl.Config.make ~n:c.Realtime.Threads_engine.n
      ~delta:c.Realtime.Threads_engine.delta ()
  in
  let r =
    Realtime.Threads_engine.run c ~proposals:props
      (Dgl.Modified_paxos.protocol dgl_cfg)
  in
  check_consensus ~what:"crash+restart" ~proposals:props r;
  (match r.decisions.(2) with
  | Some (t, _) ->
      Alcotest.(check bool) "restarted process decided after its restart"
        true (t >= 0.4)
  | None -> Alcotest.fail "restarted process never decided")

let test_config_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  let c = cfg () in
  let props = proposals 3 in
  let proto = Dgl.Modified_paxos.protocol (Dgl.Config.make ~n:3 ~delta:0.02 ()) in
  Alcotest.(check bool) "n=0" true
    (bad (fun () ->
         Realtime.Threads_engine.run
           { c with Realtime.Threads_engine.n = 0 }
           ~proposals:props proto));
  Alcotest.(check bool) "proposal arity" true
    (bad (fun () ->
         Realtime.Threads_engine.run c ~proposals:[| 1 |] proto));
  Alcotest.(check bool) "bad loss" true
    (bad (fun () ->
         Realtime.Threads_engine.run
           { c with Realtime.Threads_engine.pre_loss = 2.0 }
           ~proposals:props proto));
  Alcotest.(check bool) "bad fault spec" true
    (bad (fun () ->
         Realtime.Threads_engine.run
           { c with
             Realtime.Threads_engine.faults =
               [ Realtime.Threads_engine.Crash (0.1, 99) ] }
           ~proposals:props proto))

let suite =
  [
    Alcotest.test_case "modified paxos over threads" `Slow
      test_modified_paxos_realtime;
    Alcotest.test_case "b-consensus over threads" `Slow
      test_b_consensus_realtime;
    Alcotest.test_case "stable start is fast" `Slow
      test_stable_from_start_is_fast;
    Alcotest.test_case "smr over threads" `Slow test_smr_over_threads;
    Alcotest.test_case "crash+restart over threads" `Slow
      test_crash_restart_over_threads;
    Alcotest.test_case "config validation" `Quick test_config_validation;
  ]
