(* The packed five-field radix heap is the engine's steady-state queue.
   These tests pin its ordering contract — lexicographic (key, ord) with
   payload words carried faithfully, under the monotone-add discipline
   the engine obeys — against a sort-based model, and the bit-cast time
   keys it is fed against plain float comparison. *)

let drain q =
  let out = ref [] in
  while not (Sim.Packed_queue.is_empty q) do
    out :=
      ( Sim.Packed_queue.min_key q,
        Sim.Packed_queue.min_ord q,
        ( Sim.Packed_queue.min_f1 q,
          Sim.Packed_queue.min_f2 q,
          Sim.Packed_queue.min_f3 q ) )
      :: !out;
    Sim.Packed_queue.drop_min q
  done;
  List.rev !out

let model evs =
  List.sort
    (fun (k1, o1, _) (k2, o2, _) ->
      let c = compare (k1 : int) k2 in
      if c <> 0 then c else compare (o1 : int) o2)
    evs

let add_all q evs =
  List.iter
    (fun (key, ord, (f1, f2, f3)) -> Sim.Packed_queue.add q ~key ~ord ~f1 ~f2 ~f3)
    evs

let test_empty_raises () =
  let q = Sim.Packed_queue.create () in
  Alcotest.(check bool) "is_empty" true (Sim.Packed_queue.is_empty q);
  Alcotest.(check int) "length" 0 (Sim.Packed_queue.length q);
  let expect name f =
    Alcotest.check_raises name
      (Invalid_argument ("Packed_queue." ^ name ^ ": empty queue"))
      (fun () -> ignore (f q : int))
  in
  expect "min_key" Sim.Packed_queue.min_key;
  expect "min_ord" Sim.Packed_queue.min_ord;
  expect "min_f1" Sim.Packed_queue.min_f1;
  expect "min_f2" Sim.Packed_queue.min_f2;
  expect "min_f3" Sim.Packed_queue.min_f3;
  Alcotest.check_raises "drop_min"
    (Invalid_argument "Packed_queue.drop_min: empty queue") (fun () ->
      Sim.Packed_queue.drop_min q)

let test_basic_order_and_fields () =
  let q = Sim.Packed_queue.create ~capacity:1 () in
  let evs =
    [
      (5, 0, (50, 51, 52));
      (3, 1, (30, 31, 32));
      (5, 2, (53, 54, 55));
      (1, 3, (10, 11, 12));
      (3, 4, (33, 34, 35));
    ]
  in
  add_all q evs;
  Alcotest.(check int) "length" 5 (Sim.Packed_queue.length q);
  Alcotest.(check (list (triple int int (triple int int int))))
    "sorted by (key, ord), fields intact" (model evs) (drain q);
  Alcotest.(check bool) "drained" true (Sim.Packed_queue.is_empty q)

let test_clear_keeps_working () =
  let q = Sim.Packed_queue.create ~capacity:2 () in
  for i = 0 to 99 do
    Sim.Packed_queue.add q ~key:(100 - i) ~ord:i ~f1:i ~f2:0 ~f3:0
  done;
  Sim.Packed_queue.clear q;
  Alcotest.(check int) "cleared" 0 (Sim.Packed_queue.length q);
  let evs = [ (2, 0, (0, 0, 0)); (1, 1, (1, 1, 1)) ] in
  add_all q evs;
  Alcotest.(check (list (triple int int (triple int int int))))
    "usable after clear" (model evs) (drain q)

(* Heavily colliding keys (drawn from a pool of 8) with unique ords, the
   engine's numbering scheme.  Payload words are derived from the index so
   any field mix-up during sift-up/down shows as a value mismatch. *)
let workload =
  QCheck.Gen.(
    list (int_bound 7) >|= fun keys ->
    List.mapi (fun i k -> (k, i, (3 * i, (3 * i) + 1, (3 * i) + 2))) keys)

let arbitrary_workload =
  QCheck.make workload ~print:(fun evs ->
      String.concat ";"
        (List.map (fun (k, o, _) -> Printf.sprintf "(%d,%d)" k o) evs))

let prop_drains_sorted =
  QCheck.Test.make ~name:"drains in (key, ord) order with fields intact"
    ~count:500 arbitrary_workload (fun evs ->
      let q = Sim.Packed_queue.create ~capacity:1 () in
      add_all q evs;
      drain q = model evs)

let prop_interleaved_matches_model =
  (* Random add/drop interleavings against a sorted-list model: the heap
     must agree on every minimum, not just full drains.  Added keys are
     clamped to the largest key dropped so far — the monotone discipline
     the engine guarantees (virtual time never runs backwards). *)
  QCheck.Test.make ~name:"interleaved add/drop matches sorted model"
    ~count:300
    QCheck.(list (pair bool (int_bound 7)))
    (fun ops ->
      let q = Sim.Packed_queue.create ~capacity:1 () in
      let m = ref [] in
      let n = ref 0 in
      let floor = ref min_int in
      List.for_all
        (fun (is_add, k) ->
          if is_add then begin
            let ev = (Stdlib.max k !floor, !n, (!n, !n + 1, !n + 2)) in
            incr n;
            add_all q [ ev ];
            m := model (ev :: !m);
            true
          end
          else
            match !m with
            | [] -> Sim.Packed_queue.is_empty q
            | ((k, o, (f1, f2, f3)) as _min) :: rest ->
                m := rest;
                floor := k;
                let got =
                  ( Sim.Packed_queue.min_key q,
                    Sim.Packed_queue.min_ord q,
                    ( Sim.Packed_queue.min_f1 q,
                      Sim.Packed_queue.min_f2 q,
                      Sim.Packed_queue.min_f3 q ) )
                in
                Sim.Packed_queue.drop_min q;
                got = (k, o, (f1, f2, f3)))
        ops)

let prop_time_keys_order_like_floats =
  (* The engine feeds the queue Sim_time.key_of_t bit-casts.  For the
     non-negative times a simulation produces, int comparison of keys
     must agree with float comparison of times, and t_of_key must invert
     key_of_t exactly. *)
  QCheck.Test.make ~name:"Sim_time keys order like the times they encode"
    ~count:1000
    QCheck.(pair (float_range 0. 1e12) (float_range 0. 1e12))
    (fun (a, b) ->
      let ka = Sim.Sim_time.key_of_t a and kb = Sim.Sim_time.key_of_t b in
      compare ka kb = Float.compare a b
      && Sim.Sim_time.t_of_key ka = a
      && Sim.Sim_time.t_of_key kb = b)

let test_monotone_contract () =
  let q = Sim.Packed_queue.create () in
  (* Before any minimum is materialized, any keys are fine in any
     order... *)
  Sim.Packed_queue.add q ~key:10 ~ord:0 ~f1:0 ~f2:0 ~f3:0;
  Sim.Packed_queue.add q ~key:5 ~ord:1 ~f1:0 ~f2:0 ~f3:0;
  Alcotest.(check int) "min" 5 (Sim.Packed_queue.min_key q);
  (* ...but once 5 has been observed as the minimum, keys below it are
     rejected, even while an event at that very key is still queued. *)
  Alcotest.check_raises "below-min add"
    (Invalid_argument "Packed_queue.add: key below the current minimum")
    (fun () -> Sim.Packed_queue.add q ~key:4 ~ord:2 ~f1:0 ~f2:0 ~f3:0);
  Sim.Packed_queue.add q ~key:5 ~ord:2 ~f1:0 ~f2:0 ~f3:0;
  Sim.Packed_queue.drop_min q;
  Sim.Packed_queue.drop_min q;
  Alcotest.(check int) "later key still queued" 10 (Sim.Packed_queue.min_key q);
  (* clear resets the floor. *)
  Sim.Packed_queue.clear q;
  Sim.Packed_queue.add q ~key:(-7) ~ord:0 ~f1:0 ~f2:0 ~f3:0;
  Alcotest.(check int) "post-clear min" (-7) (Sim.Packed_queue.min_key q)

let test_time_key_extremes () =
  List.iter
    (fun t ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "round-trip %g" t)
        t
        (Sim.Sim_time.t_of_key (Sim.Sim_time.key_of_t t)))
    [ 0.; Float.min_float; 0.5; 1.; 2.; 1e300; Float.max_float ];
  (* infinity is the engine's "never": it must round-trip and sort after
     every finite instant. *)
  Alcotest.(check bool)
    "inf round-trips" true
    (Sim.Sim_time.t_of_key (Sim.Sim_time.key_of_t Float.infinity)
    = Float.infinity);
  Alcotest.(check bool)
    "inf sorts last" true
    (Sim.Sim_time.key_of_t Float.max_float
    < Sim.Sim_time.key_of_t Float.infinity)

let suite =
  [
    Alcotest.test_case "empty accessors raise" `Quick test_empty_raises;
    Alcotest.test_case "basic order and fields" `Quick
      test_basic_order_and_fields;
    Alcotest.test_case "clear keeps working" `Quick test_clear_keeps_working;
    Alcotest.test_case "monotone contract" `Quick test_monotone_contract;
    Alcotest.test_case "time-key extremes" `Quick test_time_key_extremes;
    QCheck_alcotest.to_alcotest prop_drains_sorted;
    QCheck_alcotest.to_alcotest prop_interleaved_matches_model;
    QCheck_alcotest.to_alcotest prop_time_keys_order_like_floats;
  ]
