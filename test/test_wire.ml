(* The socket wire codec: round-trip identity, rejection of truncated
   and corrupted frames, and byte-for-byte agreement with the worked
   example in WIRE.md. *)

open Smr

(* --- equality over Wire.t (structural, via the public types) ---------- *)

let reply_equal (a : Wire.reply) (b : Wire.reply) =
  match (a, b) with
  | Wire.R_stored, Wire.R_stored -> true
  | Wire.R_value x, Wire.R_value y -> Option.equal String.equal x y
  | Wire.R_cas x, Wire.R_cas y ->
      x.ok = y.ok && Option.equal String.equal x.actual y.actual
  | Wire.R_redirect x, Wire.R_redirect y -> x.leader = y.leader
  | Wire.R_error x, Wire.R_error y -> String.equal x y
  | ( ( Wire.R_stored | Wire.R_value _ | Wire.R_cas _ | Wire.R_redirect _
      | Wire.R_error _ ),
      _ ) ->
      false

let ivote_equal (a : Smr_messages.ivote) (b : Smr_messages.ivote) =
  a.vbal = b.vbal && Command.equal a.vcmd b.vcmd

let peer_equal (a : Smr_messages.t) (b : Smr_messages.t) =
  match (a, b) with
  | Smr_messages.M1a x, Smr_messages.M1a y -> x.mbal = y.mbal
  | Smr_messages.M1b x, Smr_messages.M1b y ->
      x.mbal = y.mbal
      && x.chosen_upto = y.chosen_upto
      && List.equal
           (fun (i1, v1) (i2, v2) -> i1 = i2 && ivote_equal v1 v2)
           x.votes y.votes
  | Smr_messages.M2a x, Smr_messages.M2a y ->
      x.mbal = y.mbal && x.instance = y.instance && Command.equal x.cmd y.cmd
  | Smr_messages.M2b x, Smr_messages.M2b y ->
      x.mbal = y.mbal && x.instance = y.instance && Command.equal x.cmd y.cmd
  | Smr_messages.Forward x, Smr_messages.Forward y -> Command.equal x.cmd y.cmd
  | Smr_messages.Chosen_digest x, Smr_messages.Chosen_digest y ->
      x.upto = y.upto
  | Smr_messages.Chosen x, Smr_messages.Chosen y ->
      x.instance = y.instance && Command.equal x.cmd y.cmd
  | ( ( Smr_messages.M1a _ | Smr_messages.M1b _ | Smr_messages.M2a _
      | Smr_messages.M2b _ | Smr_messages.Forward _
      | Smr_messages.Chosen_digest _ | Smr_messages.Chosen _ ),
      _ ) ->
      false

let wire_equal (a : Wire.t) (b : Wire.t) =
  match (a, b) with
  | Wire.Hello x, Wire.Hello y -> x.sender = y.sender
  | Wire.Peer x, Wire.Peer y -> peer_equal x y
  | Wire.Request x, Wire.Request y ->
      x.seq = y.seq && Command.equal x.cmd y.cmd
  | Wire.Response x, Wire.Response y ->
      x.seq = y.seq && reply_equal x.reply y.reply
  | (Wire.Hello _ | Wire.Peer _ | Wire.Request _ | Wire.Response _), _ ->
      false

(* --- generators ------------------------------------------------------- *)

let gen_key = QCheck.Gen.(map (Printf.sprintf "k%d") (int_bound 999))

let gen_value = QCheck.Gen.(string_size (int_bound 24))

let gen_simple_op =
  QCheck.Gen.(
    oneof
      [
        map (fun v -> Command.Set v) small_signed_int;
        map (fun v -> Command.Add v) small_signed_int;
        return Command.Noop;
        map (fun k -> Command.Kv_get k) gen_key;
        map2 (fun key value -> Command.Kv_put { key; value }) gen_key gen_value;
        map3
          (fun key expect set -> Command.Kv_cas { key; expect; set })
          gen_key (opt gen_value) gen_value;
      ])

let gen_cmd =
  QCheck.Gen.(
    let gen_simple_cmd =
      map2 (fun id op -> Command.make ~id op) (int_bound 100000) gen_simple_op
    in
    oneof
      [
        gen_simple_cmd;
        map2
          (fun id cmds -> Command.make ~id (Command.Batch cmds))
          (int_bound 100000)
          (list_size (int_range 0 8)
             (map2
                (fun id op -> Command.make ~id op)
                (int_bound 100000) gen_simple_op));
      ])

let gen_ivote =
  QCheck.Gen.(
    map2
      (fun vbal vcmd -> { Smr_messages.vbal; vcmd })
      (int_bound 1000) gen_cmd)

let gen_peer =
  QCheck.Gen.(
    oneof
      [
        map (fun mbal -> Smr_messages.M1a { mbal }) (int_bound 1000);
        map3
          (fun mbal votes chosen_upto ->
            Smr_messages.M1b { mbal; votes; chosen_upto })
          (int_bound 1000)
          (list_size (int_range 0 6)
             (map2 (fun i v -> (i, v)) (int_bound 100) gen_ivote))
          (int_bound 100);
        map3
          (fun mbal instance cmd -> Smr_messages.M2a { mbal; instance; cmd })
          (int_bound 1000) (int_bound 1000) gen_cmd;
        map3
          (fun mbal instance cmd -> Smr_messages.M2b { mbal; instance; cmd })
          (int_bound 1000) (int_bound 1000) gen_cmd;
        map (fun cmd -> Smr_messages.Forward { cmd }) gen_cmd;
        map (fun upto -> Smr_messages.Chosen_digest { upto }) (int_bound 1000);
        map2
          (fun instance cmd -> Smr_messages.Chosen { instance; cmd })
          (int_bound 1000) gen_cmd;
      ])

let gen_reply =
  QCheck.Gen.(
    oneof
      [
        return Wire.R_stored;
        map (fun v -> Wire.R_value v) (opt gen_value);
        map2
          (fun ok actual -> Wire.R_cas { ok; actual })
          bool (opt gen_value);
        map (fun leader -> Wire.R_redirect { leader }) (int_bound 10);
        map (fun m -> Wire.R_error m) (string_size (int_bound 32));
      ])

let gen_wire =
  QCheck.Gen.(
    oneof
      [
        map (fun sender -> Wire.Hello { sender }) (int_range (-1) 10);
        map (fun m -> Wire.Peer m) gen_peer;
        map2 (fun seq cmd -> Wire.Request { seq; cmd }) (int_bound 100000)
          gen_cmd;
        map2
          (fun seq reply -> Wire.Response { seq; reply })
          (int_bound 100000) gen_reply;
      ])

let arb_wire = QCheck.make ~print:Wire.info gen_wire

(* --- properties ------------------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"wire: encode/decode identity" ~count:500 arb_wire
    (fun msg ->
      let bytes = Wire.to_bytes msg in
      match Wire.decode bytes ~pos:0 ~avail:(Bytes.length bytes) with
      | Ok (decoded, used) ->
          used = Bytes.length bytes && wire_equal msg decoded
      | Error `Need_more -> QCheck.Test.fail_report "spurious Need_more"
      | Error (`Error e) ->
          QCheck.Test.fail_reportf "decode error: %a" Wire.pp_error e)

let prop_truncated =
  QCheck.Test.make ~name:"wire: every strict prefix wants more bytes"
    ~count:200 arb_wire (fun msg ->
      let bytes = Wire.to_bytes msg in
      let ok = ref true in
      for avail = 0 to Bytes.length bytes - 1 do
        match Wire.decode bytes ~pos:0 ~avail with
        | Error `Need_more -> ()
        | Ok _ | Error (`Error _) -> ok := false
      done;
      !ok)

let prop_bad_crc =
  QCheck.Test.make ~name:"wire: payload corruption is caught" ~count:200
    arb_wire (fun msg ->
      let bytes = Wire.to_bytes msg in
      QCheck.assume (Bytes.length bytes > Wire.header_len);
      (* flip one bit in every payload byte in turn *)
      let ok = ref true in
      for i = Wire.header_len to Bytes.length bytes - 1 do
        let orig = Bytes.get bytes i in
        Bytes.set bytes i (Char.chr (Char.code orig lxor 0x40));
        (match Wire.decode bytes ~pos:0 ~avail:(Bytes.length bytes) with
        | Error (`Error Wire.Bad_crc) -> ()
        | Ok _ | Error _ -> ok := false);
        Bytes.set bytes i orig
      done;
      !ok)

(* --- directed cases --------------------------------------------------- *)

let hex_to_bytes s =
  let s =
    String.concat ""
      (String.split_on_char ' '
         (String.concat "" (String.split_on_char '\n' s)))
  in
  let n = String.length s / 2 in
  Bytes.init n (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

(* The worked `set` round trip from WIRE.md — the documented hexdump
   must decode to exactly these messages and re-encode byte-for-byte. *)
let documented_request =
  "4553 0120 0000 001d 5a99 fbd9 0000 0000\n\
   0000 0001 0000 0000 0000 0000 0400 0000\n\
   026b 3100 0000 0276 31"

let documented_response = "4553 0121 0000 0009 ff12 25ef 0000 0000 0000 0001 00"

let test_wire_md_request () =
  let bytes = hex_to_bytes documented_request in
  match Wire.decode bytes ~pos:0 ~avail:(Bytes.length bytes) with
  | Ok (msg, used) ->
      Alcotest.(check int) "consumed" (Bytes.length bytes) used;
      let expected =
        Wire.Request
          {
            seq = 1;
            cmd =
              Command.make ~id:0
                (Command.Kv_put { key = "k1"; value = "v1" });
          }
      in
      Alcotest.(check bool) "decodes to the documented set" true
        (wire_equal expected msg);
      Alcotest.(check bytes) "re-encodes byte-for-byte" bytes
        (Wire.to_bytes msg)
  | Error `Need_more -> Alcotest.fail "documented request: Need_more"
  | Error (`Error e) ->
      Alcotest.failf "documented request: %a" Wire.pp_error e

let test_wire_md_response () =
  let bytes = hex_to_bytes documented_response in
  match Wire.decode bytes ~pos:0 ~avail:(Bytes.length bytes) with
  | Ok (msg, used) ->
      Alcotest.(check int) "consumed" (Bytes.length bytes) used;
      Alcotest.(check bool) "decodes to the documented stored reply" true
        (wire_equal (Wire.Response { seq = 1; reply = Wire.R_stored }) msg);
      Alcotest.(check bytes) "re-encodes byte-for-byte" bytes
        (Wire.to_bytes msg)
  | Error `Need_more -> Alcotest.fail "documented response: Need_more"
  | Error (`Error e) ->
      Alcotest.failf "documented response: %a" Wire.pp_error e

let test_bad_magic_version_tag () =
  let bytes = Wire.to_bytes (Wire.Hello { sender = 2 }) in
  let mutate i v =
    let b = Bytes.copy bytes in
    Bytes.set b i (Char.chr v);
    Wire.decode b ~pos:0 ~avail:(Bytes.length b)
  in
  (match mutate 0 0x58 with
  | Error (`Error Wire.Bad_magic) -> ()
  | Ok _ | Error _ -> Alcotest.fail "bad magic not rejected");
  (match mutate 2 0x7f with
  | Error (`Error Wire.Bad_version) -> ()
  | Ok _ | Error _ -> Alcotest.fail "bad version not rejected");
  match mutate 3 0xee with
  | Error (`Error (Wire.Bad_tag 0xee)) -> ()
  | Ok _ | Error _ -> Alcotest.fail "bad tag not rejected"

let test_crc_vector () =
  (* the classic check value: CRC-32("123456789") = 0xcbf43926 *)
  Alcotest.(check int) "crc32 check vector" 0xcbf43926
    (Wire.crc32 (Bytes.of_string "123456789") 0 9)

let suite =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_roundtrip; prop_truncated; prop_bad_crc ]
  @ [
      Alcotest.test_case "crc32 check vector" `Quick test_crc_vector;
      Alcotest.test_case "WIRE.md request hexdump" `Quick test_wire_md_request;
      Alcotest.test_case "WIRE.md response hexdump" `Quick
        test_wire_md_response;
      Alcotest.test_case "bad magic/version/tag" `Quick
        test_bad_magic_version_tag;
    ]
