(* Numfmt emitters must be byte-compatible with the Printf forms they
   replaced: trace fixtures, the JSONL round-trip and external parsers
   all depend on the exact rendering.  Every check here compares against
   Printf.sprintf on the same value. *)

let sc = lazy (Sim.Numfmt.scratch ())

let g17 f =
  let buf = Buffer.create 32 in
  Sim.Numfmt.add_g17 (Lazy.force sc) buf f;
  Buffer.contents buf

let check_g17 f =
  Alcotest.(check string)
    (Printf.sprintf "%%.17g of %h" f)
    (Printf.sprintf "%.17g" f) (g17 f)

(* Edge floats: zeros, signs, subnormals, extremes, exact decimal ties
   (half-even), the e-style/f-style boundary at e16/e17, and values
   whose 17-digit renderings are load-bearing for round-trips. *)
let edge_floats =
  [
    0.;
    -0.;
    1.;
    -1.;
    0.1;
    -0.1;
    1. /. 3.;
    2. /. 3.;
    0.5;
    1.5;
    1e-300;
    -1e-300;
    1e300;
    4.9e-324 (* min subnormal *);
    Float.min_float;
    Float.max_float;
    -.Float.max_float;
    epsilon_float;
    1e16;
    1e17;
    -1e16;
    -1e17;
    123456789012345678.;
    9007199254740993. (* 2^53 + 1, rounds *);
    9007199254740992.;
    ldexp 1. (-25) (* exact tie, even 17th digit: stays *);
    ldexp 3. (-26) (* tail beyond the 18th digit: rounds up *);
    ldexp 5. (-27);
    ldexp 3. (-25);
    ldexp 7. (-30);
    1e-5;
    1.0000000000000002e-05;
    0.0001;
    0.00001 (* f/e-style boundary at e-4/e-5 *);
    3.141592653589793;
    2.718281828459045;
    6.02214076e23;
    1.6e-35;
    infinity;
    neg_infinity;
    nan;
    -.nan;
    Int64.float_of_bits 0x7FF8000000000001L (* NaN with payload *);
    Int64.float_of_bits 0xFFF0000000000001L (* negative signalling NaN *);
  ]

let test_edge_floats () = List.iter check_g17 edge_floats

(* Random doubles drawn from raw bit patterns cover the whole
   representable range, not just qcheck's tame generator. *)
let prop_g17_matches_sprintf_bits =
  QCheck.Test.make ~count:2000 ~name:"add_g17 = sprintf %.17g on raw bits"
    (QCheck.make
       QCheck.Gen.(map Int64.of_int int)
       ~print:(fun b -> Printf.sprintf "bits %Lx" b))
    (fun bits ->
      let f = Int64.float_of_bits bits in
      String.equal (Printf.sprintf "%.17g" f) (g17 f))

let prop_g17_matches_sprintf_float =
  QCheck.Test.make ~count:2000 ~name:"add_g17 = sprintf %.17g on floats"
    QCheck.float (fun f -> String.equal (Printf.sprintf "%.17g" f) (g17 f))

let prop_g17_round_trips =
  QCheck.Test.make ~count:1000 ~name:"add_g17 output round-trips"
    QCheck.float (fun f ->
      QCheck.assume (Float.is_finite f);
      Float.equal (float_of_string (g17 f)) f)

let int_str n =
  let buf = Buffer.create 24 in
  Sim.Numfmt.add_int buf n;
  Buffer.contents buf

let test_edge_ints () =
  List.iter
    (fun n ->
      Alcotest.(check string)
        (Printf.sprintf "add_int %d" n)
        (string_of_int n) (int_str n))
    [ 0; 1; -1; 9; 10; -10; 99; 100; 1000000000; max_int; min_int; min_int + 1 ]

let prop_int_matches =
  QCheck.Test.make ~count:2000 ~name:"add_int = string_of_int" QCheck.int
    (fun n -> String.equal (string_of_int n) (int_str n))

let test_hex () =
  for code = 0 to 0x1F do
    let buf = Buffer.create 8 in
    Sim.Numfmt.add_u4_hex buf code;
    Alcotest.(check string)
      (Printf.sprintf "add_u4_hex %d" code)
      (Printf.sprintf "\\u%04x" code)
      (Buffer.contents buf)
  done;
  List.iter
    (fun code ->
      let buf = Buffer.create 8 in
      Sim.Numfmt.add_u4_hex buf code;
      Alcotest.(check string)
        (Printf.sprintf "add_u4_hex %d" code)
        (Printf.sprintf "\\u%04x" code)
        (Buffer.contents buf))
    [ 0x7F; 0xFF; 0xABC; 0xFFFF ]

let suite =
  [
    Alcotest.test_case "edge floats match sprintf" `Quick test_edge_floats;
    Alcotest.test_case "edge ints match string_of_int" `Quick test_edge_ints;
    Alcotest.test_case "control-char hex escapes" `Quick test_hex;
    QCheck_alcotest.to_alcotest prop_g17_matches_sprintf_bits;
    QCheck_alcotest.to_alcotest prop_g17_matches_sprintf_float;
    QCheck_alcotest.to_alcotest prop_g17_round_trips;
    QCheck_alcotest.to_alcotest prop_int_matches;
  ]
