(* The generic layered-BFS engine (lib/mcheck/explore) and the 128-bit
   fingerprints its visited set is keyed on.

   The load-bearing properties here:
   - bound semantics: every discovered state is property-checked before
     the state cap or depth bound drops it (the cap once silently
     swallowed the witness);
   - determinism: serial (domains = 1) and parallel (domains = 4) runs
     produce identical outcomes — including the same first witness —
     for randomized configurations of both protocol models;
   - fingerprint soundness: exact-keys mode observes zero collisions on
     the real state spaces. *)

(* --- a toy chain: state = i, succ i = [i+1] -------------------------- *)

let int_fp i =
  Mcheck.Fingerprint.finish (Mcheck.Fingerprint.add_int Mcheck.Fingerprint.empty i)

let chain ?(domains = 1) ?(exact_keys = false) ~max_depth ~max_states properties
    =
  Mcheck.Explore.run ~domains ~exact_keys ~initial:0
    ~successors:(fun i -> [ i + 1 ])
    ~fingerprint:int_fp ~key:Fun.id ~properties ~max_depth ~max_states ()

let test_cap_checks_before_drop () =
  (* regression: the state arriving exactly at the cap must still be
     property-checked (it used to be dropped unchecked while its edge
     counted) *)
  let o =
    chain ~max_depth:100 ~max_states:2 [ ("small", fun i -> i < 2) ]
  in
  Alcotest.(check int) "stored states" 2 o.Mcheck.Explore.states;
  Alcotest.(check int) "edges of expanded levels" 2 o.Mcheck.Explore.transitions;
  Alcotest.(check bool) "incomplete" false o.Mcheck.Explore.complete;
  Alcotest.(check bool) "the dropped state is the witness" true
    (match o.Mcheck.Explore.violation with
    | Some ("small", 2) -> true
    | _ -> false)

let test_cap_gates_storage_only () =
  let o = chain ~max_depth:100 ~max_states:3 [ ("true", fun _ -> true) ] in
  Alcotest.(check int) "stored states" 3 o.Mcheck.Explore.states;
  Alcotest.(check int) "edges" 3 o.Mcheck.Explore.transitions;
  Alcotest.(check bool) "incomplete" false o.Mcheck.Explore.complete;
  Alcotest.(check bool) "no violation" true
    (Option.is_none o.Mcheck.Explore.violation)

let test_depth_bound_stores_and_checks () =
  (* states at the depth bound are stored and checked, not expanded *)
  let o = chain ~max_depth:2 ~max_states:1000 [ ("true", fun _ -> true) ] in
  Alcotest.(check int) "0,1,2 stored" 3 o.Mcheck.Explore.states;
  Alcotest.(check int) "two expanded levels" 2 o.Mcheck.Explore.transitions;
  Alcotest.(check bool) "incomplete" false o.Mcheck.Explore.complete;
  let o = chain ~max_depth:2 ~max_states:1000 [ ("small", fun i -> i < 2) ] in
  Alcotest.(check bool) "frontier state at the bound is checked" true
    (match o.Mcheck.Explore.violation with
    | Some ("small", 2) -> true
    | _ -> false)

let test_exhaustive_small () =
  let o =
    Mcheck.Explore.run ~initial:0
      ~successors:(fun i -> if i < 4 then [ i + 1 ] else [])
      ~fingerprint:int_fp ~key:Fun.id
      ~properties:[ ("true", fun _ -> true) ]
      ~max_depth:100 ~max_states:1000 ()
  in
  Alcotest.(check int) "five states" 5 o.Mcheck.Explore.states;
  Alcotest.(check int) "four edges" 4 o.Mcheck.Explore.transitions;
  Alcotest.(check bool) "complete" true o.Mcheck.Explore.complete;
  Alcotest.(check bool) "no collision count outside exact mode" true
    (Option.is_none o.Mcheck.Explore.collisions);
  Alcotest.(check bool) "table footprint measured" true
    (o.Mcheck.Explore.table_words > 0)

(* --- fingerprints ---------------------------------------------------- *)

let test_fingerprint_basics () =
  let fp_of xs =
    Mcheck.Fingerprint.finish
      (List.fold_left Mcheck.Fingerprint.add_int Mcheck.Fingerprint.empty xs)
  in
  Alcotest.(check bool) "deterministic" true
    (Mcheck.Fingerprint.equal (fp_of [ 1; 2; 3 ]) (fp_of [ 1; 2; 3 ]));
  Alcotest.(check bool) "order-sensitive" false
    (Mcheck.Fingerprint.equal (fp_of [ 1; 2 ]) (fp_of [ 2; 1 ]));
  Alcotest.(check bool) "length-sensitive" false
    (Mcheck.Fingerprint.equal (fp_of [ 1 ]) (fp_of [ 1; 0 ]));
  Alcotest.(check int) "hex is 128 bits" 32
    (String.length (Mcheck.Fingerprint.to_hex (fp_of [ 42 ])));
  Alcotest.(check int) "compare agrees with equal" 0
    (Mcheck.Fingerprint.compare (fp_of [ 5 ]) (fp_of [ 5 ]))

let test_fingerprint_no_collisions_smoke () =
  (* 100k single-word inputs: all fingerprints distinct *)
  let tbl = Mcheck.Fingerprint.Tbl.create 1024 in
  for i = 0 to 99_999 do
    Mcheck.Fingerprint.Tbl.replace tbl (int_fp i) ()
  done;
  Alcotest.(check int) "distinct" 100_000 (Mcheck.Fingerprint.Tbl.length tbl)

let test_model_fingerprint_matches_key () =
  (* over a real BFS prefix, fingerprint equality coincides with
     structural-key equality: exact-keys mode reports zero collisions *)
  let c = { Mcheck.Model.n = 3; proposals = [| 10; 20; 30 |]; max_session = 1;
            gate = true }
  in
  let o =
    Mcheck.Explorer.run ~max_depth:6 ~exact_keys:true c ~max_states:500_000
      ~properties:(Mcheck.Explorer.all_properties c)
  in
  Alcotest.(check (option int)) "no paxos collisions" (Some 0)
    o.Mcheck.Explorer.collisions;
  let bc = { Mcheck.Bc_model.n = 3; proposals = [| 10; 20; 30 |];
             max_round = 1; mutation = None }
  in
  let o =
    Mcheck.Explore.run ~exact_keys:true
      ~initial:(Mcheck.Bc_model.initial bc)
      ~successors:(Mcheck.Bc_model.successors bc)
      ~fingerprint:Mcheck.Bc_model.fingerprint ~key:Mcheck.Bc_model.key
      ~properties:[ ("agreement", Mcheck.Bc_model.agreement) ]
      ~max_depth:7 ~max_states:500_000 ()
  in
  Alcotest.(check (option int)) "no bc collisions" (Some 0)
    o.Mcheck.Explore.collisions

(* --- serial vs parallel determinism (randomized configs) ------------- *)

(* Small state caps are deliberately included so the `Full path (the cap
   semantics above) is exercised under parallel merge too. *)

type pcase = { gate : bool; sessions : int; depth : int; cap : int; prop : int }

let paxos_proposals = [| [| 10; 20; 30 |]; [| 10; 10; 20 |]; [| 7; 7; 7 |] |]

let pcase_gen =
  QCheck.Gen.(
    let* gate = bool in
    let* sessions = int_range 1 2 in
    let* depth = int_range 3 6 in
    let* cap = oneofl [ 40; 700; 500_000 ] in
    let* prop = int_range 0 (Array.length paxos_proposals - 1) in
    return { gate; sessions; depth; cap; prop })

let pcase_print c =
  Printf.sprintf "{gate=%b; sessions=%d; depth=%d; cap=%d; prop=%d}" c.gate
    c.sessions c.depth c.cap c.prop

let pcase_arb = QCheck.make ~print:pcase_print pcase_gen

let paxos_summary (o : Mcheck.Explorer.outcome) =
  ( o.states,
    o.transitions,
    o.complete,
    Option.map (fun (name, st) -> (name, Mcheck.Model.key st)) o.violation )

let prop_paxos_serial_parallel =
  QCheck.Test.make ~name:"paxos: domains=1 and domains=4 agree" ~count:15
    pcase_arb (fun c ->
      let cfg =
        { Mcheck.Model.n = 3; proposals = paxos_proposals.(c.prop);
          max_session = c.sessions; gate = c.gate }
      in
      let props =
        if c.gate then Mcheck.Explorer.all_properties cfg
        else Mcheck.Explorer.safety_properties cfg
      in
      let run domains =
        paxos_summary
          (Mcheck.Explorer.run ~max_depth:c.depth ~domains cfg
             ~max_states:c.cap ~properties:props)
      in
      run 1 = run 4)

type bcase = { mutate : bool; rounds : int; bdepth : int; bcap : int }

let bcase_gen =
  QCheck.Gen.(
    let* mutate = bool in
    let* rounds = int_range 1 2 in
    let* bdepth = int_range 3 6 in
    let* bcap = oneofl [ 40; 700; 500_000 ] in
    return { mutate; rounds; bdepth; bcap })

let bcase_print c =
  Printf.sprintf "{mutate=%b; rounds=%d; depth=%d; cap=%d}" c.mutate c.rounds
    c.bdepth c.bcap

let bcase_arb = QCheck.make ~print:bcase_print bcase_gen

let bc_run ~domains ~cfg ~max_depth ~max_states props =
  let o =
    Mcheck.Explore.run ~domains
      ~initial:(Mcheck.Bc_model.initial cfg)
      ~successors:(Mcheck.Bc_model.successors cfg)
      ~fingerprint:Mcheck.Bc_model.fingerprint ~key:Mcheck.Bc_model.key
      ~properties:props ~max_depth ~max_states ()
  in
  ( o.Mcheck.Explore.states,
    o.Mcheck.Explore.transitions,
    o.Mcheck.Explore.complete,
    Option.map
      (fun (name, st) -> (name, Mcheck.Bc_model.key st))
      o.Mcheck.Explore.violation )

let prop_bc_serial_parallel =
  QCheck.Test.make ~name:"b-consensus: domains=1 and domains=4 agree"
    ~count:15 bcase_arb (fun c ->
      let cfg =
        { Mcheck.Bc_model.n = 3; proposals = [| 10; 20; 30 |];
          max_round = c.rounds;
          mutation =
            (if c.mutate then Some Mcheck.Bc_model.Lock_on_first_report
             else None) }
      in
      let props =
        [
          ("agreement", Mcheck.Bc_model.agreement);
          ("lock-uniqueness", Mcheck.Bc_model.lock_uniqueness);
        ]
      in
      let run domains =
        bc_run ~domains ~cfg ~max_depth:c.bdepth ~max_states:c.bcap props
      in
      run 1 = run 4)

let test_first_witness_deterministic () =
  (* a seeded violation (the planted lock bug) must yield the same first
     witness — BFS discovery order — serially, in parallel, and across
     repeated runs *)
  let cfg =
    { Mcheck.Bc_model.n = 3; proposals = [| 10; 20; 30 |]; max_round = 1;
      mutation = Some Mcheck.Bc_model.Lock_on_first_report }
  in
  let props = [ ("lock-uniqueness", Mcheck.Bc_model.lock_uniqueness) ] in
  let run domains =
    bc_run ~domains ~cfg ~max_depth:8 ~max_states:500_000 props
  in
  let _, _, _, w1 = run 1 in
  Alcotest.(check bool) "violation found" true (Option.is_some w1);
  Alcotest.(check bool) "serial re-run: same witness" true (run 1 = run 1);
  Alcotest.(check bool) "parallel: same witness" true (run 1 = run 4)

let test_registry_counters () =
  let reg = Sim.Registry.create () in
  let c = { Mcheck.Model.n = 3; proposals = [| 10; 20; 30 |]; max_session = 1;
            gate = true }
  in
  let o =
    Mcheck.Explorer.run ~max_depth:4 ~registry:reg c ~max_states:500_000
      ~properties:(Mcheck.Explorer.all_properties c)
  in
  (* every stored state passes through exactly one frontier level *)
  Alcotest.(check int) "frontier states = stored states"
    o.Mcheck.Explorer.states
    (Sim.Registry.counter_total reg "mcheck_frontier_states");
  Alcotest.(check int) "levels = depth levels entered" 5
    (Sim.Registry.counter_total reg "mcheck_frontier_levels")

let suite =
  [
    Alcotest.test_case "cap: witness checked before drop" `Quick
      test_cap_checks_before_drop;
    Alcotest.test_case "cap gates storage only" `Quick
      test_cap_gates_storage_only;
    Alcotest.test_case "depth bound stores and checks" `Quick
      test_depth_bound_stores_and_checks;
    Alcotest.test_case "exhaustive small space" `Quick test_exhaustive_small;
    Alcotest.test_case "fingerprint basics" `Quick test_fingerprint_basics;
    Alcotest.test_case "fingerprints: 100k distinct" `Quick
      test_fingerprint_no_collisions_smoke;
    Alcotest.test_case "exact-keys: zero collisions, both models" `Quick
      test_model_fingerprint_matches_key;
    Alcotest.test_case "first witness deterministic" `Quick
      test_first_witness_deterministic;
    Alcotest.test_case "frontier registry counters" `Quick
      test_registry_counters;
    QCheck_alcotest.to_alcotest prop_paxos_serial_parallel;
    QCheck_alcotest.to_alcotest prop_bc_serial_parallel;
  ]
