(* Single-process loopback cluster: three replicas on 127.0.0.1 with
   port 0 (no free-port assumptions), each run on its own thread, driven
   by the blocking client.  Exercises the whole socket stack — framing,
   peer mesh, batching/pipelining, KV semantics, replication. *)

open Smr

let localhost = "127.0.0.1"

let delta = 0.02

let start_cluster ?(batch = 16) ?(window = 16) n =
  let cluster = Array.make n (localhost, 0) in
  let replicas =
    Array.init n (fun id ->
        Replica.create
          {
            (Replica.default_config ~id ~cluster) with
            delta;
            batch;
            window;
            seed = 7;
          })
  in
  let ports = Array.map Replica.port replicas in
  Array.iter (fun r -> Replica.set_peer_ports r ports) replicas;
  let threads =
    Array.map (fun r -> Thread.create (fun () -> Replica.run r) ()) replicas
  in
  (replicas, ports, threads)

let stop_cluster replicas threads =
  Array.iter Replica.stop replicas;
  Array.iter Thread.join threads

let endpoints ports = Array.map (fun p -> (localhost, p)) ports

let test_kv_semantics () =
  let replicas, ports, threads = start_cluster 3 in
  Fun.protect
    ~finally:(fun () -> stop_cluster replicas threads)
    (fun () ->
      let c = Client.connect (endpoints ports) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          (match Client.get c "missing" with
          | Wire.R_value None -> ()
          | _ -> Alcotest.fail "get of a missing key should be absent");
          (match Client.put c ~key:"a" ~value:"1" with
          | Wire.R_stored -> ()
          | _ -> Alcotest.fail "put should be acknowledged");
          (match Client.get c "a" with
          | Wire.R_value (Some "1") -> ()
          | _ -> Alcotest.fail "get should see the put");
          (match Client.cas c ~key:"a" ~expect:(Some "1") ~set:"2" with
          | Wire.R_cas { ok = true; _ } -> ()
          | _ -> Alcotest.fail "matching cas should succeed");
          (match Client.cas c ~key:"a" ~expect:(Some "1") ~set:"3" with
          | Wire.R_cas { ok = false; actual = Some "2" } -> ()
          | _ -> Alcotest.fail "stale cas should fail with the live value");
          match Client.get c "a" with
          | Wire.R_value (Some "2") -> ()
          | _ -> Alcotest.fail "failed cas must not write"))

let test_pipelined_load_replicates () =
  let replicas, ports, threads = start_cluster 3 in
  Fun.protect
    ~finally:(fun () -> stop_cluster replicas threads)
    (fun () ->
      let c = Client.connect (endpoints ports) in
      let report =
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            Client.run_load c
              {
                Client.default_load with
                commands = 2_000;
                pipeline = 32;
                seed = 11;
              })
      in
      Alcotest.(check int) "all commands completed" 2_000
        report.Client.completed;
      Alcotest.(check bool) "made progress" true
        (report.Client.throughput > 0.);
      (* replication: every replica converges to the same chosen count *)
      let deadline = Unix.gettimeofday () +. 10. in
      let converged () =
        let counts = Array.map Replica.chosen_count replicas in
        Array.for_all (fun c -> c = counts.(0) && c > 0) counts
      in
      while (not (converged ())) && Unix.gettimeofday () < deadline do
        Thread.delay 0.05
      done;
      Alcotest.(check bool) "replicas converged on the chosen log" true
        (converged ()))

let test_client_batch_rejected () =
  (* the batch opcode is replica-internal (WIRE.md §5): a well-formed
     client batch request must be answered with an error reply, not
     admitted into the backlog — where the replica's own folding would
     nest it and crash the process (regression: REVIEW finding) *)
  let replicas, ports, threads = start_cluster 3 in
  Fun.protect
    ~finally:(fun () -> stop_cluster replicas threads)
    (fun () ->
      let c = Client.connect (endpoints ports) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let batch =
            Command.Batch
              [
                Command.make ~id:1
                  (Command.Kv_put { key = "sneaky"; value = "1" });
                Command.make ~id:2
                  (Command.Kv_put { key = "sneakier"; value = "2" });
              ]
          in
          (* two in a row so a folded backlog of >= 2 would have nested *)
          (match Client.request c batch with
          | Wire.R_error _ -> ()
          | _ -> Alcotest.fail "client batch should be rejected");
          (match Client.request c batch with
          | Wire.R_error _ -> ()
          | _ -> Alcotest.fail "client batch should be rejected");
          (* the connection and the replica both survived the rejection *)
          (match Client.put c ~key:"after" ~value:"ok" with
          | Wire.R_stored -> ()
          | _ -> Alcotest.fail "put after rejected batch should succeed");
          (match Client.get c "after" with
          | Wire.R_value (Some "ok") -> ()
          | _ -> Alcotest.fail "get after rejected batch should succeed");
          match Client.get c "sneaky" with
          | Wire.R_value None -> ()
          | _ -> Alcotest.fail "rejected batch must not have been applied"))

let test_batching_counts () =
  (* with batch >> pipeline disabled (batch=1) every command is its own
     decree; with batching on, decrees are far fewer than commands *)
  let replicas, ports, threads = start_cluster ~batch:32 ~window:8 3 in
  Fun.protect
    ~finally:(fun () -> stop_cluster replicas threads)
    (fun () ->
      let c = Client.connect (endpoints ports) in
      let report =
        Fun.protect
          ~finally:(fun () -> Client.close c)
          (fun () ->
            Client.run_load c
              {
                Client.default_load with
                commands = 1_000;
                pipeline = 64;
                seed = 5;
              })
      in
      Alcotest.(check int) "all commands completed" 1_000
        report.Client.completed;
      let batches =
        Array.fold_left
          (fun acc r ->
            acc
            + Sim.Registry.counter_total (Replica.registry r) "serve_batches")
          0 replicas
      in
      Alcotest.(check bool)
        (Printf.sprintf "batching folds commands into decrees (%d batches)"
           batches)
        true
        (batches > 0 && batches < 1_000))

let suite =
  [
    Alcotest.test_case "kv semantics over the loopback cluster" `Quick
      test_kv_semantics;
    Alcotest.test_case "pipelined load completes and replicates" `Quick
      test_pipelined_load_replicates;
    Alcotest.test_case "client-submitted batch is rejected" `Quick
      test_client_batch_rejected;
    Alcotest.test_case "batching folds commands into decrees" `Quick
      test_batching_counts;
  ]
