(* The mutable binary-heap event queue must be observationally identical
   to the functional pairing heap it replaced: same drain order under the
   engine's (time, seq) comparison, including time ties. *)

let cmp (t1, s1) (t2, s2) =
  let c = compare (t1 : float) t2 in
  if c <> 0 then c else compare (s1 : int) s2

let test_empty () =
  let q = Sim.Event_queue.create ~cmp:compare () in
  Alcotest.(check bool) "is_empty" true (Sim.Event_queue.is_empty q);
  Alcotest.(check int) "length" 0 (Sim.Event_queue.length q);
  Alcotest.(check (option int)) "peek" None (Sim.Event_queue.peek_min q);
  Alcotest.(check (option int)) "pop" None (Sim.Event_queue.pop_min q)

let test_exn_on_empty () =
  let q = Sim.Event_queue.create ~cmp:compare () in
  Alcotest.check_raises "peek_min_exn"
    (Invalid_argument "Event_queue.peek_min_exn: empty queue") (fun () ->
      ignore (Sim.Event_queue.peek_min_exn q : int));
  Alcotest.check_raises "pop_min_exn"
    (Invalid_argument "Event_queue.pop_min_exn: empty queue") (fun () ->
      ignore (Sim.Event_queue.pop_min_exn q : int));
  (* A drained-then-refilled queue must behave like a fresh one. *)
  Sim.Event_queue.add q 7;
  Alcotest.(check int) "peek_min_exn" 7 (Sim.Event_queue.peek_min_exn q);
  Alcotest.(check int) "pop_min_exn" 7 (Sim.Event_queue.pop_min_exn q);
  Alcotest.check_raises "pop_min_exn after drain"
    (Invalid_argument "Event_queue.pop_min_exn: empty queue") (fun () ->
      ignore (Sim.Event_queue.pop_min_exn q : int))

let test_basic_order () =
  let q = Sim.Event_queue.of_list ~cmp:compare [ 5; 3; 9; 1; 7; 3; 0; -2 ] in
  Alcotest.(check int) "length" 8 (Sim.Event_queue.length q);
  Alcotest.(check (option int)) "peek" (Some (-2)) (Sim.Event_queue.peek_min q);
  Alcotest.(check (list int))
    "sorted"
    [ -2; 0; 1; 3; 3; 5; 7; 9 ]
    (Sim.Event_queue.drain_sorted q);
  Alcotest.(check bool) "drained" true (Sim.Event_queue.is_empty q)

let test_grows_from_tiny_capacity () =
  let q = Sim.Event_queue.create ~capacity:1 ~cmp:compare () in
  for i = 999 downto 0 do
    Sim.Event_queue.add q i
  done;
  Alcotest.(check int) "length" 1000 (Sim.Event_queue.length q);
  Alcotest.(check (list int))
    "sorted after growth"
    (List.init 1000 Fun.id)
    (Sim.Event_queue.drain_sorted q)

let test_ties_resolved_by_seq () =
  let q =
    Sim.Event_queue.of_list ~cmp [ (1.0, 0); (1.0, 1); (0.5, 2); (1.0, 3) ]
  in
  Alcotest.(check (list (pair (float 0.) int)))
    "fifo among equal times"
    [ (0.5, 2); (1.0, 0); (1.0, 1); (1.0, 3) ]
    (Sim.Event_queue.drain_sorted q)

(* Workload generator biased toward time collisions: times are drawn from
   a small pool, seq is the element's index (unique), mirroring how the
   engine numbers events. *)
let workload =
  QCheck.Gen.(
    list (int_bound 15) >|= fun times ->
    List.mapi (fun i t -> (float_of_int t /. 4., i)) times)

let arbitrary_workload =
  QCheck.make workload
    ~print:(fun evs ->
      String.concat ";"
        (List.map (fun (t, s) -> Printf.sprintf "(%g,%d)" t s) evs))

let prop_drains_like_pairing_heap =
  QCheck.Test.make ~name:"drains in Pairing_heap.to_sorted_list order"
    ~count:500 arbitrary_workload (fun evs ->
      Sim.Event_queue.drain_sorted (Sim.Event_queue.of_list ~cmp evs)
      = Sim.Pairing_heap.to_sorted_list (Sim.Pairing_heap.of_list ~cmp evs))

let prop_interleaved_matches_pairing_heap =
  (* Random add/pop interleavings against the pairing heap as the model:
     both structures must agree on every pop, not just on full drains. *)
  QCheck.Test.make ~name:"interleaved add/pop matches pairing heap"
    ~count:300
    QCheck.(list (pair bool (int_bound 15)))
    (fun ops ->
      let q = Sim.Event_queue.create ~cmp () in
      let h = ref (Sim.Pairing_heap.empty ~cmp) in
      List.for_all
        (fun (is_add, t) ->
          if is_add then begin
            let ev = (float_of_int t /. 4., Sim.Pairing_heap.size !h) in
            Sim.Event_queue.add q ev;
            h := Sim.Pairing_heap.insert !h ev;
            true
          end
          else
            match (Sim.Event_queue.pop_min q, Sim.Pairing_heap.pop_min !h) with
            | None, None -> true
            | Some x, Some (y, rest) ->
                h := rest;
                x = y
            | _ -> false)
        ops)

let prop_exn_interleaved_matches_pairing_heap =
  (* Same model check as above, but through the non-allocating accessors:
     [peek_min_exn]/[pop_min_exn] guarded by [is_empty] must agree with
     the pairing heap on every operation, so the engine's hot path and
     the option API are observationally the same queue. *)
  QCheck.Test.make ~name:"exn accessors match pairing heap" ~count:300
    QCheck.(list (pair bool (int_bound 15)))
    (fun ops ->
      let q = Sim.Event_queue.create ~cmp () in
      let h = ref (Sim.Pairing_heap.empty ~cmp) in
      List.for_all
        (fun (is_add, t) ->
          if is_add then begin
            let ev = (float_of_int t /. 4., Sim.Pairing_heap.size !h) in
            Sim.Event_queue.add q ev;
            h := Sim.Pairing_heap.insert !h ev;
            true
          end
          else if Sim.Event_queue.is_empty q then
            Sim.Pairing_heap.pop_min !h = None
          else
            let peeked = Sim.Event_queue.peek_min_exn q in
            let popped = Sim.Event_queue.pop_min_exn q in
            match Sim.Pairing_heap.pop_min !h with
            | None -> false
            | Some (y, rest) ->
                h := rest;
                peeked = y && popped = y)
        ops)

let suite =
  [
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "exn accessors on empty" `Quick test_exn_on_empty;
    Alcotest.test_case "basic order" `Quick test_basic_order;
    Alcotest.test_case "grows in place" `Quick test_grows_from_tiny_capacity;
    Alcotest.test_case "seq tie-break" `Quick test_ties_resolved_by_seq;
    QCheck_alcotest.to_alcotest prop_drains_like_pairing_heap;
    QCheck_alcotest.to_alcotest prop_interleaved_matches_pairing_heap;
    QCheck_alcotest.to_alcotest prop_exn_interleaved_matches_pairing_heap;
  ]
