(* The paper's algorithm: config derivations, session rules, and
   end-to-end behaviour of modified Paxos. *)

let delta = 0.01

let ts = 0.5

(* --- Config ----------------------------------------------------------- *)

let checkf = Alcotest.(check (float 1e-9))

let test_config_defaults () =
  let c = Dgl.Config.make ~n:5 ~delta () in
  checkf "sigma" (5. *. delta) c.Dgl.Config.sigma;
  checkf "epsilon" (delta /. 4.) c.Dgl.Config.epsilon;
  checkf "tau = max(2d+e, sigma)" (5. *. delta) (Dgl.Config.tau c);
  (* eps + 3 tau + 5 delta *)
  checkf "decision bound"
    ((delta /. 4.) +. (15. *. delta) +. (5. *. delta))
    (Dgl.Config.decision_bound c)

let test_config_timer_window () =
  List.iter
    (fun rho ->
      let c = Dgl.Config.make ~n:5 ~delta ~rho () in
      let lo, hi =
        Sim.Clock.real_duration_bounds ~rho c.Dgl.Config.timer_local
      in
      Alcotest.(check bool)
        (Printf.sprintf "real timeout in [4d, sigma] for rho=%.2f" rho)
        true
        (lo >= (4. *. delta) -. 1e-9 && hi <= c.Dgl.Config.sigma +. 1e-9))
    [ 0.; 0.01; 0.05; 0.1 ]

let test_config_tau_epsilon_dominates () =
  let c = Dgl.Config.make ~n:5 ~delta ~epsilon:(4. *. delta) ~sigma:(5. *. delta) () in
  checkf "tau = 2d + eps when bigger" (6. *. delta) (Dgl.Config.tau c)

let test_config_rejects_bad_params () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "sigma < 4 delta" true
    (bad (fun () -> Dgl.Config.make ~n:5 ~delta ~sigma:(3. *. delta) ()));
  Alcotest.(check bool) "infeasible window" true
    (bad (fun () -> Dgl.Config.make ~n:5 ~delta ~sigma:(4. *. delta) ~rho:0.1 ()));
  Alcotest.(check bool) "eps <= 0" true
    (bad (fun () -> Dgl.Config.make ~n:5 ~delta ~epsilon:0. ()));
  Alcotest.(check bool) "n <= 0" true
    (bad (fun () -> Dgl.Config.make ~n:0 ~delta ()));
  Alcotest.(check bool) "delta <= 0" true
    (bad (fun () -> Dgl.Config.make ~n:3 ~delta:0. ()))

(* --- Session ---------------------------------------------------------- *)

let test_session_rules () =
  let s = Dgl.Session.initial ~n:5 in
  Alcotest.(check int) "starts at 0" 0 s.Dgl.Session.number;
  Alcotest.(check bool) "not startable before expiry" false
    (Dgl.Session.can_start_phase1 s);
  let s = Dgl.Session.expire s in
  Alcotest.(check bool) "session 0 needs no majority" true
    (Dgl.Session.can_start_phase1 s);
  let s = Dgl.Session.enter s ~number:3 in
  Alcotest.(check int) "entered 3" 3 s.Dgl.Session.number;
  Alcotest.(check bool) "entry resets expiry" false
    (Dgl.Session.can_start_phase1 (Dgl.Session.expire s |> fun s ->
      Dgl.Session.enter s ~number:4));
  let s = Dgl.Session.expire s in
  Alcotest.(check bool) "session 3 needs majority" false
    (Dgl.Session.can_start_phase1 s);
  let s = List.fold_left Dgl.Session.hear s [ 0; 1; 2 ] in
  Alcotest.(check bool) "majority heard enables" true
    (Dgl.Session.can_start_phase1 s)

let test_session_enter_monotone () =
  let s = Dgl.Session.initial ~n:3 in
  Alcotest.(check bool) "cannot re-enter same session" true
    (try
       ignore (Dgl.Session.enter s ~number:0);
       false
     with Invalid_argument _ -> true)

(* --- Messages --------------------------------------------------------- *)

let test_message_metadata () =
  let open Dgl.Messages in
  Alcotest.(check (option int)) "1a ballot" (Some 7) (mbal (P1a { mbal = 7 }));
  Alcotest.(check (option int)) "decision no ballot" None
    (mbal (Decision { value = 1 }));
  Alcotest.(check (option int)) "1a heard as transport sender" (Some 3)
    (session_sender ~n:5 ~src:3 (P1a { mbal = 7 }));
  Alcotest.(check (option int)) "2b heard as sender" (Some 2)
    (session_sender ~n:5 ~src:2 (P2b { mbal = 7; value = 1 }));
  Alcotest.(check (option int)) "decision not heard" None
    (session_sender ~n:5 ~src:2 (Decision { value = 1 }));
  List.iter
    (fun m -> Alcotest.(check bool) "info non-empty" true (info m <> ""))
    [
      P1a { mbal = 7 };
      P1b { mbal = 7; vote = Consensus.Vote.none };
      P2a { mbal = 7; value = 3 };
      P2b { mbal = 7; value = 3 };
      Decision { value = 3 };
    ]

(* --- End-to-end behaviour --------------------------------------------- *)

let run_scenario ?(n = 5) ?(seed = 1L) ?(network = Sim.Network.silent_until_ts)
    ?(faults = Sim.Fault.none) ?options ?injections ?cfg () =
  let cfg = match cfg with Some c -> c | None -> Dgl.Config.make ~n ~delta () in
  let sc = Sim.Scenario.make ~name:"dgl-test" ~n ~ts ~delta ~seed ~network ~faults () in
  Sim.Engine.run ?injections sc (Dgl.Modified_paxos.protocol ?options cfg)

let alive_procs ~n faults =
  List.filter
    (fun p -> Sim.Fault.alive_at faults ~proc:p ~time:ts)
    (List.init n (fun i -> i))

let test_decides_within_bound_various_networks () =
  List.iter
    (fun network ->
      List.iter
        (fun seed ->
          let n = 5 in
          let r = run_scenario ~n ~seed ~network () in
          Alcotest.(check bool) "all decided, agree" true
            (Sim.Engine.all_decided r);
          let cfg = Dgl.Config.make ~n ~delta () in
          let worst =
            Harness.Measure.worst_latency r
              ~procs:(List.init n (fun i -> i))
              ~from_time:ts ~delta
          in
          Alcotest.(check bool) "within bound" true
            (worst <= Dgl.Config.decision_bound cfg /. delta))
        [ 1L; 2L; 3L ])
    [
      Sim.Network.silent_until_ts;
      Sim.Network.eventually_synchronous ();
      Sim.Network.deterministic_after_ts;
      Sim.Network.always_synchronous;
    ]

let test_validity () =
  let r = run_scenario () in
  Alcotest.(check bool) "validity" true
    (Harness.Measure.check_safety r = Ok ())

let test_minority_crash_still_decides () =
  let n = 9 in
  let victims = Harness.Adversaries.faulty_minority ~n in
  let faults = Sim.Fault.make ~initially_down:victims [] in
  let r = run_scenario ~n ~faults () in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "p%d decided" p)
        true
        (r.Sim.Engine.decision_values.(p) <> None))
    (alive_procs ~n faults)

let test_obsolete_session1_ballots_absorbed () =
  let n = 9 in
  let victims = Harness.Adversaries.faulty_minority ~n in
  let faults = Sim.Fault.make ~initially_down:victims [] in
  let injections =
    Harness.Adversaries.dgl_session1_injections ~n ~from:ts
      ~spacing:(2. *. delta) ~victims
  in
  let r =
    run_scenario ~n ~faults ~network:Sim.Network.deterministic_after_ts
      ~injections ()
  in
  let worst =
    Harness.Measure.worst_latency r ~procs:(alive_procs ~n faults)
      ~from_time:ts ~delta
  in
  let cfg = Dgl.Config.make ~n ~delta () in
  Alcotest.(check bool) "decided within bound despite obsolete ballots" true
    (worst <= Dgl.Config.decision_bound cfg /. delta)

let test_gate_pins_partitioned_minority () =
  (* The proof's step-1 invariant observed behaviourally: a minority that
     never hears a majority cannot advance past session 1. *)
  let n = 7 in
  let sc =
    (* Horizon a hair past TS: validate requires horizon > ts, and no
       message or timer can fire within 1e-9 s, so the states observed
       are still those at stabilization. *)
    Sim.Scenario.make ~name:"gate" ~n ~ts:10.0 ~delta ~seed:3L
      ~network:(Sim.Network.partitioned_until_ts [ [ 0; 1; 2; 3 ]; [ 4; 5; 6 ] ])
      ~horizon:(10.0 +. 1e-9) ~stop_on_all_decided:false ()
  in
  let cfg = Dgl.Config.make ~n ~delta () in
  let r = Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg) in
  List.iter
    (fun p ->
      match r.Sim.Engine.final_states.(p) with
      | Some st ->
          let s = Dgl.Modified_paxos.session_number st in
          if p >= 4 then
            Alcotest.(check bool)
              (Printf.sprintf "minority p%d pinned (session %d <= 1)" p s)
              true (s <= 1)
          else
            Alcotest.(check bool)
              (Printf.sprintf "majority p%d advances (session %d > 10)" p s)
              true (s > 10)
      | None -> Alcotest.fail "process down unexpectedly")
    (List.init n (fun i -> i))

let test_ungated_minority_races () =
  (* Without the gate the same minority keeps advancing on every
     timeout — the behaviour the gate exists to prevent. *)
  let n = 7 in
  let sc =
    Sim.Scenario.make ~name:"ungated" ~n ~ts:10.0 ~delta ~seed:3L
      ~network:(Sim.Network.partitioned_until_ts [ [ 0; 1; 2; 3 ]; [ 4; 5; 6 ] ])
      ~horizon:(10.0 +. 1e-9) ~stop_on_all_decided:false ()
  in
  let cfg = Dgl.Config.make ~n ~delta () in
  let options =
    { Dgl.Modified_paxos.default_options with session_gate = false }
  in
  let r = Sim.Engine.run sc (Dgl.Modified_paxos.protocol ~options cfg) in
  match r.Sim.Engine.final_states.(5) with
  | Some st ->
      Alcotest.(check bool) "minority session runs away" true
        (Dgl.Modified_paxos.session_number st > 10)
  | None -> Alcotest.fail "process down unexpectedly"

let test_restart_decides_quickly () =
  let n = 5 in
  let restart_at = ts +. (30. *. delta) in
  let faults =
    Sim.Fault.crash_then_restart ~crash_at:(ts /. 2.) ~restart_at 2
  in
  let r =
    run_scenario ~n ~faults ~network:(Sim.Network.eventually_synchronous ()) ()
  in
  let cfg = Dgl.Config.make ~n ~delta () in
  let lat =
    Harness.Measure.worst_latency r ~procs:[ 2 ] ~from_time:restart_at ~delta
  in
  Alcotest.(check bool) "restarted process decides within restart bound" true
    (lat <= Dgl.Config.restart_bound cfg /. delta);
  Alcotest.(check bool) "no disagreement" true
    (r.Sim.Engine.agreement_violation = None)

let test_prestart_two_delays () =
  let n = 5 in
  let cfg = Dgl.Config.make ~n ~delta () in
  let options = { Dgl.Modified_paxos.default_options with prestart = true } in
  let sc =
    Sim.Scenario.make ~name:"prestart" ~n ~ts:0. ~delta ~seed:1L
      ~network:Sim.Network.deterministic_after_ts ()
  in
  let r = Sim.Engine.run sc (Dgl.Modified_paxos.protocol ~options cfg) in
  let worst =
    Harness.Measure.worst_latency r
      ~procs:(List.init n (fun i -> i))
      ~from_time:0. ~delta
  in
  Alcotest.(check bool) "decides in ~2 message delays" true (worst <= 2.5);
  Alcotest.(check bool) "chooses p0's proposal" true
    (r.Sim.Engine.decision_values.(1)
    = Some r.Sim.Engine.scenario.Sim.Scenario.proposals.(0))

let test_decision_broadcast_speeds_up_restart () =
  let n = 5 in
  let restart_at = ts +. (50. *. delta) in
  let faults =
    Sim.Fault.crash_then_restart ~crash_at:(ts /. 2.) ~restart_at 2
  in
  let lat broadcast_decision =
    let cfg = Dgl.Config.make ~n ~delta ~broadcast_decision () in
    let r =
      run_scenario ~n ~faults
        ~network:(Sim.Network.eventually_synchronous ())
        ~cfg ()
    in
    Harness.Measure.worst_latency r ~procs:[ 2 ] ~from_time:restart_at ~delta
  in
  (* With periodic gossip the restarted process hears a Decision within
     epsilon + delta instead of waiting for a session to complete. *)
  Alcotest.(check bool) "gossip makes restart fast" true (lat true <= 2.0);
  Alcotest.(check bool) "gossip not slower" true (lat true <= lat false)

let test_persisted_state_reused () =
  (* A process that crashes and restarts resumes from its persisted
     ballot: its final mbal is never below what it had persisted, which
     shows up as the restarted process rejoining the current session
     rather than session 0 (its final session must match the others). *)
  let n = 5 in
  let faults =
    Sim.Fault.crash_then_restart ~crash_at:(ts /. 2.)
      ~restart_at:(ts +. (20. *. delta))
      1
  in
  let r =
    run_scenario ~n ~faults ~network:(Sim.Network.eventually_synchronous ()) ()
  in
  match (r.Sim.Engine.final_states.(1), r.Sim.Engine.final_states.(0)) with
  | Some restarted, Some witness ->
      Alcotest.(check bool) "rejoined the current session" true
        (Dgl.Modified_paxos.session_number restarted
         >= Dgl.Modified_paxos.session_number witness - 1)
  | _ -> Alcotest.fail "processes should be up at the end"

let test_anchored_value_wins () =
  (* The Paxos safety core: once a majority has accepted a value, every
     later ballot must choose it.  We force processes 0 and 1 (a
     majority of 3) to accept value 100 at a session-1 ballot before TS
     (their 2b answers are lost to the silent network, so nothing is
     decided yet), then let the algorithm run: whoever leads after TS
     must re-propose 100, never its own proposal. *)
  let n = 3 in
  let anchored_ballot = Consensus.Ballot.of_session ~n ~proc:2 1 in
  let injections =
    List.map
      (fun dst ->
        ( ts /. 2.,
          2,
          dst,
          Dgl.Messages.P2a { mbal = anchored_ballot; value = 100 } ))
      [ 0; 1 ]
  in
  List.iter
    (fun seed ->
      let r = run_scenario ~n ~seed ~injections () in
      Array.iter
        (fun v ->
          Alcotest.(check (option int)) "anchored value decided" (Some 100) v)
        r.Sim.Engine.decision_values)
    [ 1L; 2L; 3L; 4L ]

let test_decision_message_decides () =
  (* a Decision message makes the receiver decide directly *)
  let n = 3 in
  let injections = [ (ts +. 0.001, 1, 0, Dgl.Messages.Decision { value = 101 }) ] in
  let r = run_scenario ~n ~seed:1L ~injections () in
  Alcotest.(check (option int)) "p0 took the shortcut" (Some 101)
    r.Sim.Engine.decision_values.(0);
  Alcotest.(check bool) "and everyone agreed" true
    (r.Sim.Engine.agreement_violation = None)

let test_larger_cluster_flat_latency () =
  (* E1's flatness, as a regression test: n=33 must not be slower than
     ~3x n=3 under the same adversary. *)
  let lat n =
    let victims = Harness.Adversaries.faulty_minority ~n in
    let faults = Sim.Fault.make ~initially_down:victims [] in
    let r =
      run_scenario ~n ~faults ~network:Sim.Network.deterministic_after_ts
        ~injections:
          (Harness.Adversaries.dgl_session1_injections ~n ~from:ts
             ~spacing:(2. *. delta) ~victims)
        ()
    in
    Harness.Measure.worst_latency r ~procs:(alive_procs ~n faults)
      ~from_time:ts ~delta
  in
  let l3 = lat 3 and l33 = lat 33 in
  Alcotest.(check bool)
    (Printf.sprintf "flat in n (l3=%.1f, l33=%.1f)" l3 l33)
    true
    (l33 <= Stdlib.max (3. *. l3) 10.)

let suite =
  [
    Alcotest.test_case "config defaults and bound" `Quick test_config_defaults;
    Alcotest.test_case "config timer window" `Quick test_config_timer_window;
    Alcotest.test_case "config tau epsilon-dominated" `Quick
      test_config_tau_epsilon_dominates;
    Alcotest.test_case "config rejects bad params" `Quick
      test_config_rejects_bad_params;
    Alcotest.test_case "session start rules" `Quick test_session_rules;
    Alcotest.test_case "session entry monotone" `Quick
      test_session_enter_monotone;
    Alcotest.test_case "message metadata" `Quick test_message_metadata;
    Alcotest.test_case "decides within bound on all networks" `Quick
      test_decides_within_bound_various_networks;
    Alcotest.test_case "validity" `Quick test_validity;
    Alcotest.test_case "minority crash still decides" `Quick
      test_minority_crash_still_decides;
    Alcotest.test_case "obsolete session-1 ballots absorbed" `Quick
      test_obsolete_session1_ballots_absorbed;
    Alcotest.test_case "gate pins partitioned minority" `Quick
      test_gate_pins_partitioned_minority;
    Alcotest.test_case "ungated minority races" `Quick
      test_ungated_minority_races;
    Alcotest.test_case "restart decides quickly" `Quick
      test_restart_decides_quickly;
    Alcotest.test_case "prestart: two message delays" `Quick
      test_prestart_two_delays;
    Alcotest.test_case "decision gossip helps restarts" `Quick
      test_decision_broadcast_speeds_up_restart;
    Alcotest.test_case "persisted state reused on restart" `Quick
      test_persisted_state_reused;
    Alcotest.test_case "anchored value wins" `Quick test_anchored_value_wins;
    Alcotest.test_case "decision message decides" `Quick
      test_decision_message_decides;
    Alcotest.test_case "latency flat in n" `Quick
      test_larger_cluster_flat_latency;
  ]
