(* Smaller sim modules: Sim_time, Stable_storage, Scenario, Metrics. *)

let checkf = Alcotest.(check (float 1e-9))

(* --- Sim_time ------------------------------------------------------- *)

let test_time_ops () =
  checkf "add" 1.5 (Sim.Sim_time.add 1.0 0.5);
  checkf "diff" 0.5 (Sim.Sim_time.diff 1.5 1.0);
  Alcotest.(check bool) "compare" true (Sim.Sim_time.compare 1.0 2.0 < 0);
  checkf "min" 1.0 (Sim.Sim_time.min 1.0 2.0);
  checkf "max" 2.0 (Sim.Sim_time.max 1.0 2.0);
  Alcotest.(check bool) "finite" true (Sim.Sim_time.is_finite 1.0);
  Alcotest.(check bool) "infinity not finite" false
    (Sim.Sim_time.is_finite Sim.Sim_time.infinity);
  Alcotest.(check bool) "window member" true
    (Sim.Sim_time.in_window 1.5 ~lo:1.0 ~hi:2.0);
  Alcotest.(check bool) "window edge" true
    (Sim.Sim_time.in_window 2.0 ~lo:1.0 ~hi:2.0);
  Alcotest.(check bool) "outside window" false
    (Sim.Sim_time.in_window 2.5 ~lo:1.0 ~hi:2.0);
  Alcotest.(check string) "to_string" "1.204000s"
    (Sim.Sim_time.to_string 1.204);
  Alcotest.(check string) "infinity renders" "inf"
    (Sim.Sim_time.to_string Sim.Sim_time.infinity)

(* --- Stable_storage -------------------------------------------------- *)

let test_storage () =
  let s = Sim.Stable_storage.create ~n:3 in
  Alcotest.(check (option int)) "empty" None (Sim.Stable_storage.load s ~proc:0);
  Sim.Stable_storage.save s ~proc:0 41;
  Sim.Stable_storage.save s ~proc:0 42;
  Alcotest.(check (option int)) "overwrites" (Some 42)
    (Sim.Stable_storage.load s ~proc:0);
  Alcotest.(check (option int)) "isolated slots" None
    (Sim.Stable_storage.load s ~proc:1);
  Alcotest.(check int) "persisted count" 1 (Sim.Stable_storage.persisted_count s);
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Stable_storage.create: n must be positive") (fun () ->
      ignore (Sim.Stable_storage.create ~n:0))

(* --- Scenario --------------------------------------------------------- *)

let test_scenario_defaults () =
  let sc = Sim.Scenario.make ~n:4 () in
  Alcotest.(check bool) "valid" true (Sim.Scenario.validate sc = Ok ());
  Alcotest.(check int) "proposal count" 4 (Array.length sc.Sim.Scenario.proposals);
  Alcotest.(check int) "distinct proposals" 4
    (List.length
       (List.sort_uniq compare (Array.to_list sc.Sim.Scenario.proposals)))

let test_scenario_validation () =
  let bad f = Sim.Scenario.validate f <> Ok () in
  Alcotest.(check bool) "n=0" true (bad (Sim.Scenario.make ~n:0 ()));
  Alcotest.(check bool) "delta<=0" true
    (bad (Sim.Scenario.make ~n:3 ~delta:0. ()));
  Alcotest.(check bool) "rho out of range" true
    (bad (Sim.Scenario.make ~n:3 ~rho:1.5 ()));
  Alcotest.(check bool) "negative ts" true
    (bad (Sim.Scenario.make ~n:3 ~ts:(-1.) ()));
  Alcotest.(check bool) "horizon before ts" true
    (bad (Sim.Scenario.make ~n:3 ~ts:5. ~horizon:1. ()));
  Alcotest.(check bool) "proposals length mismatch" true
    (bad (Sim.Scenario.make ~n:3 ~proposals:[| 1 |] ()));
  Alcotest.(check bool) "invalid fault script" true
    (bad
       (Sim.Scenario.make ~n:3
          ~faults:(Sim.Fault.make [ Sim.Fault.crash ~at:1. 9 ])
          ()))

let test_scenario_validation_edges () =
  let bad f = Sim.Scenario.validate f <> Ok () in
  Alcotest.(check bool) "horizon = ts" true
    (bad (Sim.Scenario.make ~n:3 ~ts:1. ~horizon:1. ()));
  Alcotest.(check bool) "negative trace_capacity" true
    (bad (Sim.Scenario.make ~n:3 ~trace_capacity:(-1) ()));
  Alcotest.(check bool) "fault event past horizon" true
    (bad
       (Sim.Scenario.make ~n:3 ~ts:1. ~horizon:2.
          ~faults:(Sim.Fault.make [ Sim.Fault.crash ~at:3. 0 ])
          ()));
  Alcotest.(check bool) "fault event at horizon accepted" true
    (Sim.Scenario.validate
       (Sim.Scenario.make ~n:3 ~ts:1. ~horizon:2.
          ~faults:(Sim.Fault.make [ Sim.Fault.crash ~at:2. 0 ])
          ())
    = Ok ())

let test_with_seed () =
  let sc = Sim.Scenario.make ~n:3 ~seed:1L () in
  let sc2 = Sim.Scenario.with_seed sc 9L in
  Alcotest.(check int64) "seed replaced" 9L sc2.Sim.Scenario.seed;
  Alcotest.(check int64) "original untouched" 1L sc.Sim.Scenario.seed

(* --- Metrics ---------------------------------------------------------- *)

let test_metrics_basic () =
  checkf "mean" 2. (Sim.Metrics.mean [ 1.; 2.; 3. ]);
  checkf "stddev" 1. (Sim.Metrics.stddev [ 1.; 2.; 3. ]);
  checkf "stddev singleton" 0. (Sim.Metrics.stddev [ 5. ]);
  checkf "p50" 2. (Sim.Metrics.percentile 0.5 [ 3.; 1.; 2. ]);
  checkf "p100" 3. (Sim.Metrics.percentile 1.0 [ 3.; 1.; 2. ]);
  checkf "p0 clamps to first" 1. (Sim.Metrics.percentile 0.0 [ 3.; 1.; 2. ])

let test_metrics_summary () =
  let s = Sim.Metrics.summarize [ 4.; 2.; 8.; 6. ] in
  Alcotest.(check int) "samples" 4 s.Sim.Metrics.samples;
  checkf "min" 2. s.Sim.Metrics.min;
  checkf "max" 8. s.Sim.Metrics.max;
  checkf "mean" 5. s.Sim.Metrics.mean;
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Metrics.summarize: empty") (fun () ->
      ignore (Sim.Metrics.summarize []))

let test_linear_fit () =
  let a, b = Sim.Metrics.linear_fit [ (0., 1.); (1., 3.); (2., 5.) ] in
  checkf "intercept" 1. a;
  checkf "slope" 2. b;
  Alcotest.check_raises "degenerate x"
    (Invalid_argument "Metrics.linear_fit: degenerate x values") (fun () ->
      ignore (Sim.Metrics.linear_fit [ (1., 1.); (1., 2.) ]))

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within sample range" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 30) (float_bound_exclusive 100.)) (float_bound_inclusive 1.0))
    (fun (xs, q) ->
      let p = Sim.Metrics.percentile q xs in
      let lo = List.fold_left Float.min Float.infinity xs in
      let hi = List.fold_left Float.max Float.neg_infinity xs in
      p >= lo && p <= hi)

let suite =
  [
    Alcotest.test_case "sim_time operations" `Quick test_time_ops;
    Alcotest.test_case "stable storage" `Quick test_storage;
    Alcotest.test_case "scenario defaults" `Quick test_scenario_defaults;
    Alcotest.test_case "scenario validation" `Quick test_scenario_validation;
    Alcotest.test_case "scenario validation edges" `Quick
      test_scenario_validation_edges;
    Alcotest.test_case "with_seed" `Quick test_with_seed;
    Alcotest.test_case "metrics basics" `Quick test_metrics_basic;
    Alcotest.test_case "metrics summary" `Quick test_metrics_summary;
    Alcotest.test_case "linear fit" `Quick test_linear_fit;
    QCheck_alcotest.to_alcotest prop_percentile_bounds;
  ]
