let () =
  Alcotest.run "eventual-consensus"
    [
      ("prng", Test_prng.suite);
      ("pairing-heap", Test_pairing_heap.suite);
      ("event-queue", Test_event_queue.suite);
      ("packed-queue", Test_packed_queue.suite);
      ("domain-pool", Test_domain_pool.suite);
      ("clock", Test_clock.suite);
      ("network", Test_network.suite);
      ("fault", Test_fault.suite);
      ("trace", Test_trace.suite);
      ("numfmt", Test_numfmt.suite);
      ("sim-misc", Test_misc_sim.suite);
      ("engine", Test_engine.suite);
      ("consensus-lib", Test_consensus_lib.suite);
      ("dgl (modified paxos)", Test_dgl.suite);
      ("baselines", Test_baselines.suite);
      ("b-consensus", Test_bconsensus.suite);
      ("properties", Test_properties.suite);
      ("conformance", Test_conformance.suite);
      ("smr", Test_smr.suite);
      ("wire", Test_wire.suite);
      ("serve", Test_serve.suite);
      ("model-check", Test_mcheck.suite);
      ("model-check-engine", Test_explore.suite);
      ("model-check-bc", Test_bc_model.suite);
      ("realtime", Test_realtime.suite);
      ("harness", Test_harness.suite);
      ("invariants", Test_invariants.suite);
      ("alloc", Test_alloc.suite);
      ("lint", Test_lint.suite);
      ("fuzz", Test_fuzz.suite);
      ("chaos", Test_chaos.suite);
    ]
