(* Harness: report formatting, measurement helpers, adversary builders,
   and a smoke check that every experiment runs and produces sane rows. *)

let delta = 0.01

(* --- Report ------------------------------------------------------------ *)

let test_report_render () =
  let t =
    Harness.Report.make ~id:"T1" ~title:"demo" ~claim:"c"
      ~columns:[ "a"; "bb" ]
      ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
      ~notes:[ "n1" ] ()
  in
  let s = Format.asprintf "%a" Harness.Report.print t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0
    &&
    let contains needle =
      let n = String.length needle and h = String.length s in
      let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
      go 0
    in
    contains "T1" && contains "333" && contains "note: n1")

let test_report_rejects_ragged_rows () =
  Alcotest.(check bool) "ragged row rejected" true
    (try
       ignore
         (Harness.Report.make ~id:"x" ~title:"t" ~claim:"c"
            ~columns:[ "a"; "b" ] ~rows:[ [ "1" ] ] ());
       false
     with Invalid_argument _ -> true)

let test_report_cells () =
  Alcotest.(check string) "latency finite" "3.5"
    (Harness.Report.cell_latency 3.5);
  Alcotest.(check string) "latency stuck" "stuck"
    (Harness.Report.cell_latency Float.infinity);
  Alcotest.(check string) "bool yes" "yes" (Harness.Report.cell_bool true);
  Alcotest.(check string) "bool no" "NO" (Harness.Report.cell_bool false)

(* --- Measure ------------------------------------------------------------ *)

let dummy_run () =
  let sc = Sim.Scenario.make ~name:"m" ~n:3 ~ts:0. ~delta ~seed:1L () in
  let cfg = Dgl.Config.make ~n:3 ~delta () in
  Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg)

let test_measure_latency () =
  let r = dummy_run () in
  let w =
    Harness.Measure.worst_latency r ~procs:[ 0; 1; 2 ] ~from_time:0. ~delta
  in
  let m =
    Harness.Measure.mean_latency r ~procs:[ 0; 1; 2 ] ~from_time:0. ~delta
  in
  Alcotest.(check bool) "worst >= mean" true (w >= m);
  Alcotest.(check bool) "finite" true (Float.is_finite w);
  Alcotest.(check bool) "undecided maps to infinity" true
    (Harness.Measure.worst_latency r ~procs:[ 0 ] ~from_time:1e9 ~delta < 0.
    || true);
  (* a process id with no decision *)
  let r2 = { r with Sim.Engine.decision_times = Array.make 3 None } in
  Alcotest.(check bool) "no decision = infinite latency" true
    (Harness.Measure.worst_latency r2 ~procs:[ 0 ] ~from_time:0. ~delta
    = Float.infinity)

let test_measure_procs () =
  Alcotest.(check (list int)) "except removes" [ 0; 2 ]
    (Harness.Measure.procs ~n:3 ~except:[ 1 ] ());
  Alcotest.(check (list int)) "no except" [ 0; 1; 2 ]
    (Harness.Measure.procs ~n:3 ())

let test_over_seeds_distinct () =
  let seeds = Harness.Measure.over_seeds ~seeds:5 ~base:1L Fun.id in
  Alcotest.(check int) "five seeds" 5 (List.length seeds);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq compare seeds))

(* --- Adversaries --------------------------------------------------------- *)

let test_faulty_minority () =
  Alcotest.(check (list int)) "n=5" [ 4; 3 ] (Harness.Adversaries.faulty_minority ~n:5);
  Alcotest.(check (list int)) "n=3" [ 2 ] (Harness.Adversaries.faulty_minority ~n:3);
  List.iter
    (fun n ->
      let k = List.length (Harness.Adversaries.faulty_minority ~n) in
      Alcotest.(check bool)
        (Printf.sprintf "n - k is a majority (n=%d)" n)
        true
        (Consensus.Quorum.is_quorum ~n (n - k)))
    [ 3; 4; 5; 8; 9; 16; 17 ]

let test_session1_injections_admissible () =
  let injs =
    Harness.Adversaries.dgl_session1_injections ~n:5 ~from:1.0 ~spacing:0.02
      ~victims:[ 4; 3 ]
  in
  Alcotest.(check bool) "non-empty" true (injs <> []);
  List.iter
    (fun (at, src, dst, msg) ->
      Alcotest.(check bool) "at or after from" true (at >= 1.0);
      Alcotest.(check bool) "from a victim" true (List.mem src [ 4; 3 ]);
      Alcotest.(check bool) "not delivered to victims" true
        (not (List.mem dst [ 4; 3 ]));
      match msg with
      | Dgl.Messages.P1a { mbal } ->
          Alcotest.(check int) "session 1" 1 (Consensus.Ballot.session ~n:5 mbal);
          Alcotest.(check int) "owned by the victim" src
            (Consensus.Ballot.owner ~n:5 mbal)
      | _ -> Alcotest.fail "expected P1a")
    injs

let test_high_session_injections_increasing () =
  let injs =
    Harness.Adversaries.dgl_high_session_injections ~n:5 ~from:1.0
      ~spacing:0.03 ~victims:[ 4; 3 ]
  in
  let ballots =
    List.sort_uniq compare
      (List.filter_map
         (fun (_, _, _, m) ->
           match m with Dgl.Messages.P1a { mbal } -> Some mbal | _ -> None)
         injs)
  in
  Alcotest.(check int) "one ballot per victim" 2 (List.length ballots);
  Alcotest.(check bool) "sessions far apart" true
    (match ballots with
    | [ a; b ] ->
        Consensus.Ballot.session ~n:5 b - Consensus.Ballot.session ~n:5 a
        >= 999
    | _ -> false)

let test_first_start_alignment () =
  let t0 =
    Harness.Adversaries.traditional_first_start ~ts:0.5 ~theta:0.02
      ~stabilize_delay:0.01
  in
  Alcotest.(check (float 1e-9)) "first theta tick after stability" 0.52 t0

let test_bar_chart () =
  let s =
    Format.asprintf "%a"
      (fun fmt () ->
        Harness.Report.bar_chart fmt ~title:"t" ~unit_label:"u"
          [ ("a", 1.0); ("bee", 2.0); ("c", Float.infinity); ("d", 0.0) ])
      ()
  in
  let contains needle =
    let n = String.length needle and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "title" true (contains "t\n");
  Alcotest.(check bool) "value rendered" true (contains "2.0 u");
  Alcotest.(check bool) "infinite clipped" true (contains "(no decision)");
  Alcotest.(check bool) "zero renders a dot" true (contains ".")

let test_headline_series () =
  let series = Harness.Experiments.headline ~speed:Harness.Experiments.Quick () in
  Alcotest.(check bool) "three algorithms x sizes" true
    (List.length series >= 9);
  List.iter
    (fun (label, v) ->
      Alcotest.(check bool) (label ^ " finite") true (Float.is_finite v))
    series

(* --- Experiments smoke --------------------------------------------------- *)

let row_count table = List.length table.Harness.Report.rows

let test_each_experiment_produces_rows () =
  List.iter
    (fun id ->
      match Harness.Experiments.by_id id with
      | None -> Alcotest.fail ("missing experiment " ^ id)
      | Some f ->
          let t = f ~speed:Harness.Experiments.Quick () in
          Alcotest.(check bool) (id ^ " has rows") true (row_count t > 0);
          Alcotest.(check bool) (id ^ " no safety violations") true
            (not
               (List.exists
                  (fun n ->
                    String.length n >= 6 && String.sub n 0 6 = "SAFETY")
                  t.Harness.Report.notes)))
    Harness.Experiments.ids

let test_parallel_rendering_deterministic () =
  (* The acceptance bar for the parallel sweep layer: the formatted table
     must be byte-identical whatever the pool size. *)
  let render () =
    match Harness.Experiments.by_id "e1" with
    | None -> Alcotest.fail "missing experiment e1"
    | Some f ->
        Format.asprintf "%a" Harness.Report.print
          (f ~speed:Harness.Experiments.Quick ())
  in
  let serial = Harness.Measure.with_domains 1 render in
  let parallel = Harness.Measure.with_domains 4 render in
  Alcotest.(check string) "SIM_DOMAINS=1 and =4 render identically" serial
    parallel

let test_by_id_unknown () =
  Alcotest.(check bool) "unknown id" true
    (Harness.Experiments.by_id "zz" = None);
  Alcotest.(check bool) "case insensitive" true
    (Harness.Experiments.by_id "E1" <> None)

let suite =
  [
    Alcotest.test_case "report renders" `Quick test_report_render;
    Alcotest.test_case "report rejects ragged rows" `Quick
      test_report_rejects_ragged_rows;
    Alcotest.test_case "report cells" `Quick test_report_cells;
    Alcotest.test_case "measure latency" `Quick test_measure_latency;
    Alcotest.test_case "measure procs" `Quick test_measure_procs;
    Alcotest.test_case "over_seeds distinct" `Quick test_over_seeds_distinct;
    Alcotest.test_case "faulty minority leaves a majority" `Quick
      test_faulty_minority;
    Alcotest.test_case "session-1 injections admissible" `Quick
      test_session1_injections_admissible;
    Alcotest.test_case "high-session injections" `Quick
      test_high_session_injections_increasing;
    Alcotest.test_case "traditional first-start alignment" `Quick
      test_first_start_alignment;
    Alcotest.test_case "bar chart renders" `Quick test_bar_chart;
    Alcotest.test_case "headline series" `Quick test_headline_series;
    Alcotest.test_case "experiments produce rows (slow)" `Slow
      test_each_experiment_produces_rows;
    Alcotest.test_case "parallel rendering deterministic" `Quick
      test_parallel_rendering_deterministic;
    Alcotest.test_case "experiment lookup" `Quick test_by_id_unknown;
  ]
