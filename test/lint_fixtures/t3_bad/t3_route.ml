(* T3: the early-return arm drops the acquired slot — the sibling arm
   releases it, so the empty-queue path leaks it from the free list. *)

let route pool q msg =
  let slot = T3_pool.arena_alloc pool in
  match q with
  | [] -> 0
  | x :: _ ->
      T3_pool.arena_release pool slot;
      x + msg
