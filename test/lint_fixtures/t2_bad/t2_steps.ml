(* The entry point: step itself is hazard-free, the trouble is one
   module over. *)

let step st m =
  let tag = T2_depths.classify m in
  let hd = T2_depths.first st in
  (tag, hd, T2_depths.describe hd)
