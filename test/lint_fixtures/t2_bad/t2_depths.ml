(* T2: hazards in a helper that is *not* lexically inside a handler —
   the syntactic R7/R8/R9 stay quiet, but T2_steps.step reaches every
   one of these transitively. *)

let classify m =
  match m with
  | T2_messages.Ping _ -> "ping"
  | _ -> "other"

let first xs = List.hd xs

let describe n = Printf.sprintf "n=%d" n
