(* R3 clean: snapshot through Sorted_tbl with an explicit key order. *)
let dump tbl =
  List.iter
    (fun (k, v) -> Printf.printf "%s=%d\n" k v)
    (Sim.Sorted_tbl.bindings ~compare:String.compare tbl)

let total tbl =
  Sim.Sorted_tbl.fold ~compare:String.compare
    (fun _ v acc -> acc + v)
    tbl 0
