(* Allow-comments silence a finding at its site, in both styles. *)
let total tbl =
  Hashtbl.fold (fun _ v acc -> acc + v) tbl 0 (* lint: allow R3 — sum is commutative *)

(* lint: allow R1 — fixture demonstrating the comment-above style *)
let stamp () = Unix.gettimeofday ()
