(* R3: Hashtbl traversal order is unspecified; results depend on
   insertion history and hashing. *)
let dump tbl = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl

let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

let stream tbl = Hashtbl.to_seq tbl
