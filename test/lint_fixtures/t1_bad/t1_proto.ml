(* The deterministic-core entry point: handle_msg transitively reaches
   the wall-clock read two modules over. *)

let handle_msg st _msg = st +. T1_helper.jitter ()
