(* The laundering hop: nothing here reads a clock, it only forwards
   the tainted value across a module boundary. *)

let jitter () = T1_clock.sample () *. 0.5
