(* T1: the wall-clock read is locally allowed (silencing R1), but the
   value is laundered through T1_helper into a handler — the sited
   allow must not stop the whole-program taint analysis. *)

(* lint: allow R1 — fixture: sited allow silences R1 at the read *)
let sample () = Unix.gettimeofday ()
