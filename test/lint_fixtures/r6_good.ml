(* R6 clean: monomorphic comparisons with explicit orderings. *)
let cmp = Int.compare

let sort_ids ids = List.sort Int.compare ids

let is_zero x = Float.equal x 0.0

let by_seq a b = Int.compare a.Types.seq b.Types.seq
