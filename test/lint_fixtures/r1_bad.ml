(* R1: wall-clock reads in simulation code break determinism. *)
let stamp () = Unix.gettimeofday ()

let coarse () = Unix.time ()

let cpu () = Sys.time ()
