(* R2: ambient [Random] draws from process-global state. *)
let jitter () = Random.float 0.01

let pick xs = List.nth xs (Random.int (List.length xs))

let flake () = Random.bool ()
