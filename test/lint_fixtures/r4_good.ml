(* R4 clean: mutable state lives behind constructors the caller owns,
   one instance per simulation. *)
type t = { hits : int ref; cache : (string, int) Hashtbl.t }

let create () = { hits = ref 0; cache = Hashtbl.create 16 }

let bump t = incr t.hits
