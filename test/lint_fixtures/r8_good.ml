(* R8 clean: handlers treat malformed input as a protocol no-op. *)
let handle_report st reports =
  match (reports, st) with
  | first :: _, Some v when first = v -> st
  | _ :: _, Some _ -> None
  | [], _ | _, None -> st

let step st = function Some v -> v | None -> st
