(* R7 clean: every constructor named; warning 8 (as an error under the
   dev profile) then catches any constructor added later. *)
let on_message _st msg =
  match msg with
  | Dgl_messages.M1a { round } -> Some round
  | Dgl_messages.M1b _ -> None
  | Dgl_messages.M2a _ -> None
  | Dgl_messages.M2b _ -> None
