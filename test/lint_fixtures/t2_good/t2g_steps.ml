let step st m = T2g_depths.first st + T2g_depths.classify m
