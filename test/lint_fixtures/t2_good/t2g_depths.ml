(* T2 clean: the same helper shape, but every constructor is
   enumerated and every function is total. *)

let classify m =
  match m with T2g_messages.Ping x -> x | T2g_messages.Pong x -> x

let first xs = match xs with [] -> 0 | x :: _ -> x
