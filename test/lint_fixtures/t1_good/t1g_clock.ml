(* T1 clean: the same call shape as t1_bad, but time is threaded in as
   a parameter — no nondeterminism source anywhere in the chain. *)

let sample now = now
