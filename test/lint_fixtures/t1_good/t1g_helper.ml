let jitter now = T1g_clock.sample now *. 0.5
