let handle_msg st now = st +. T1g_helper.jitter now
