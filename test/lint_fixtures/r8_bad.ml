(* R8: partial functions in a handler turn a malformed message into a
   process crash instead of a protocol-level no-op. *)
let handle_report st reports =
  let first = List.hd reports in
  let v = Option.get st in
  if first = v then st else failwith "conflicting report"

let step st = function
  | Some v -> v
  | None -> assert false
