(* R7: a wildcard arm in a protocol-message match silently swallows
   any constructor added later. *)
let on_message st msg =
  match msg with
  | Dgl_messages.M1a { round } -> Some round
  | Dgl_messages.M2a _ -> None
  | _ -> None
