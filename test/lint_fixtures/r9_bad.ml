(* R9: per-event allocation in a handler — sprintf allocates and
   re-interprets its format string on every message, and (@) copies its
   whole left operand. *)
let handle_vote st votes v =
  let note = Printf.sprintf "vote:%d" v in
  let votes = votes @ [ v ] in
  (note, votes, st)

let step st log entry = { st with log = log @ [ entry ] }

let on_message _ctx st m = Format.asprintf "m%d" m :: st
