type t = { mutable free : int list }

let arena_alloc p =
  match p.free with
  | [] -> -1
  | s :: rest ->
      p.free <- rest;
      s

let arena_release p s = p.free <- s :: p.free
