(* T3 clean: every arm either releases the slot or hands it off. *)

let route pool q msg =
  let slot = T3g_pool.arena_alloc pool in
  match q with
  | [] ->
      T3g_pool.arena_release pool slot;
      0
  | x :: _ ->
      T3g_pool.arena_release pool slot;
      x + msg
