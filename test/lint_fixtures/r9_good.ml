(* R9 clean: handlers build text in the reusable ctx scratch buffer via
   the Numfmt emitters and grow lists by cons, not append. *)
let handle_vote ctx st votes v =
  let buf = Sim.Scratch.buffer (Engine.scratch ctx) in
  Buffer.add_string buf "vote:";
  Sim.Numfmt.add_int buf v;
  (Buffer.contents buf, v :: votes, st)

let step st log entry = { st with log = entry :: log }

let on_message _ctx st m = m :: st
