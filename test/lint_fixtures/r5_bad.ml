(* R5: physical equality on boxed values compares addresses, not
   contents; copies of equal messages diverge. *)
let same_msg a b = a == b

let distinct a b = a != b

let memoized tbl k v = Hashtbl.find tbl k == v
