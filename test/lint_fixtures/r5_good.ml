(* R5 clean: structural or monomorphic equality. *)
let same_id (a : int) b = Int.equal a b

let same_name a b = String.equal a b
