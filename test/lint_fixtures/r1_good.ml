(* R1 clean: time comes from the simulated clock, never the OS. *)
let stamp ctx = Sim.Engine.now ctx

let elapsed ~start ctx = Sim.Engine.now ctx -. start
