(* R4: toplevel mutable state is shared by every domain that closes
   over this module. *)
let hits = ref 0

let cache = Hashtbl.create 16

let scratch = Buffer.create 256

let inbox = Queue.create ()

let cell = Atomic.make 0
