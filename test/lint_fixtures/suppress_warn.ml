(* Sloppy allow directives: each one below warns.  The file itself is
   finding-free, so a run over it isolates the warnings. *)

(* lint: allow R3 R5 — bundles two rules in one comment *)
let total xs = List.fold_left ( + ) 0 xs

(* lint: allow R42 — names an unknown rule *)
let stamp x = x

(* lint: allow R2 — suppresses nothing *)
let pure x = x + 1

let a = 1 (* lint: allow R1 — first *) (* lint: allow R1 — second marker, same line *)

let b = a + 1
