(* R2 clean: randomness is threaded through the seeded PRNG. *)
let jitter rng = Sim.Prng.float rng 0.01

let pick rng xs = List.nth xs (Sim.Prng.int rng (List.length xs))
