(* R6: polymorphic compare walks representation, not meaning — it
   raises on closures, and float equality misses NaN. *)
let cmp = compare

let sort_msgs ms = List.sort Stdlib.compare ms

let is_zero x = x = 0.0

let not_half x = x <> 0.5
