(* The trace-driven invariant checker: clean traces pass, corrupted
   traces are flagged, and every experiment scenario's replay satisfies
   all invariants. *)

let mk entries =
  let tr = Sim.Trace.create ~enabled:true () in
  List.iter (Sim.Trace.record tr) entries;
  tr

let has_violation ~check report =
  List.exists
    (fun v -> v.Harness.Invariants.check = check)
    report.Harness.Invariants.violations

let send ~t ~id ~src ~dst kind =
  Sim.Trace.Send { t; id; src; dst; payload = Sim.Trace.info kind }

let deliver ~t ~id ~src ~dst kind =
  Sim.Trace.Deliver { t; id; src; dst; payload = Sim.Trace.info kind }

let clean_trace () =
  mk
    [
      send ~t:0.1 ~id:0 ~src:0 ~dst:1 "1a";
      Sim.Trace.Note { t = 0.15; proc = 0; text = "session:1:timer" };
      deliver ~t:0.2 ~id:0 ~src:0 ~dst:1 "1a";
      Sim.Trace.Timer_set { t = 0.2; proc = 1; tag = 1; fire_at = 0.5 };
      Sim.Trace.Note { t = 0.25; proc = 0; text = "session:2:message" };
      Sim.Trace.Timer_fire { t = 0.5; proc = 1; tag = 1 };
      Sim.Trace.Decide { t = 0.6; proc = 0; value = 7 };
      Sim.Trace.Decide { t = 0.7; proc = 1; value = 7 };
    ]

let test_clean_trace_passes () =
  let report =
    Harness.Invariants.check ~proposals:[| 7; 8 |] (clean_trace ())
  in
  Alcotest.(check bool)
    (Format.asprintf "clean: %a" Harness.Invariants.pp report)
    true
    (Harness.Invariants.ok report);
  Alcotest.(check int) "all entries examined" 8
    report.Harness.Invariants.entries_checked;
  Alcotest.(check bool) "not wrapped" false report.Harness.Invariants.wrapped

let test_agreement_violation () =
  let tr =
    mk
      [
        Sim.Trace.Decide { t = 0.6; proc = 0; value = 7 };
        Sim.Trace.Decide { t = 0.7; proc = 1; value = 8 };
      ]
  in
  let report = Harness.Invariants.check tr in
  Alcotest.(check bool) "flagged" false (Harness.Invariants.ok report);
  Alcotest.(check bool) "named agreement" true
    (has_violation ~check:"agreement" report)

let test_decide_once_violation () =
  let tr =
    mk
      [
        Sim.Trace.Decide { t = 0.6; proc = 0; value = 7 };
        Sim.Trace.Decide { t = 0.7; proc = 0; value = 7 };
      ]
  in
  Alcotest.(check bool) "double decide flagged" true
    (has_violation ~check:"decide-once" (Harness.Invariants.check tr))

let test_validity_violation () =
  let tr = mk [ Sim.Trace.Decide { t = 0.6; proc = 0; value = 99 } ] in
  Alcotest.(check bool) "unproposed value flagged" true
    (has_violation ~check:"validity"
       (Harness.Invariants.check ~proposals:[| 7; 8 |] tr));
  (* without proposals the same trace is fine *)
  Alcotest.(check bool) "no proposals, no validity check" true
    (Harness.Invariants.ok (Harness.Invariants.check tr))

let test_causality_violations () =
  (* a delivery whose send was never recorded *)
  let orphan = mk [ deliver ~t:0.2 ~id:5 ~src:0 ~dst:1 "1a" ] in
  Alcotest.(check bool) "orphan deliver flagged" true
    (has_violation ~check:"causality" (Harness.Invariants.check orphan));
  (* endpoints must match the minting send *)
  let mismatched =
    mk
      [
        send ~t:0.1 ~id:5 ~src:0 ~dst:1 "1a";
        deliver ~t:0.2 ~id:5 ~src:0 ~dst:2 "1a";
      ]
  in
  Alcotest.(check bool) "endpoint mismatch flagged" true
    (has_violation ~check:"causality" (Harness.Invariants.check mismatched));
  (* injected messages (no_origin) are exempt *)
  let injected =
    mk [ deliver ~t:0.2 ~id:Sim.Trace.no_origin ~src:0 ~dst:1 "1a" ]
  in
  Alcotest.(check bool) "injection exempt" true
    (Harness.Invariants.ok (Harness.Invariants.check injected))

let test_session_monotonicity_violation () =
  let tr =
    mk
      [
        Sim.Trace.Note { t = 0.1; proc = 0; text = "session:3:timer" };
        Sim.Trace.Note { t = 0.2; proc = 0; text = "session:2:message" };
      ]
  in
  Alcotest.(check bool) "regressing session flagged" true
    (has_violation ~check:"session-monotonic"
       (Harness.Invariants.check tr))

let test_timer_violations () =
  let spurious = mk [ Sim.Trace.Timer_fire { t = 0.5; proc = 0; tag = 1 } ] in
  Alcotest.(check bool) "fire without set flagged" false
    (Harness.Invariants.ok (Harness.Invariants.check spurious));
  let past =
    mk [ Sim.Trace.Timer_set { t = 0.5; proc = 0; tag = 1; fire_at = 0.2 } ]
  in
  Alcotest.(check bool) "fire-in-past flagged" false
    (Harness.Invariants.ok (Harness.Invariants.check past))

let test_sigma_bound () =
  let delta = 0.01 in
  let sigma = 22. *. delta in
  let session_timer dur =
    mk [ Sim.Trace.Timer_set { t = 1.0; proc = 0; tag = 2; fire_at = 1.0 +. dur } ]
  in
  let check dur =
    Harness.Invariants.check ~timer_bounds:(delta, sigma) (session_timer dur)
  in
  Alcotest.(check bool) "duration inside [4 delta, sigma] ok" true
    (Harness.Invariants.ok (check (10. *. delta)));
  Alcotest.(check bool) "too short flagged" true
    (has_violation ~check:"sigma-timer" (check (2. *. delta)));
  Alcotest.(check bool) "too long flagged" true
    (has_violation ~check:"sigma-timer" (check (40. *. delta)));
  (* the resend timer (tag -1) is not a session timer *)
  let resend =
    mk [ Sim.Trace.Timer_set { t = 1.0; proc = 0; tag = -1; fire_at = 1.0 +. delta } ]
  in
  Alcotest.(check bool) "resend timer exempt" true
    (Harness.Invariants.ok
       (Harness.Invariants.check ~timer_bounds:(delta, sigma) resend))

let test_wrapped_trace_skips_causality () =
  (* once a bounded ring overwrites the minting sends, deliveries must
     not be reported as orphans *)
  let tr = Sim.Trace.create ~capacity:4 ~enabled:true () in
  for i = 0 to 9 do
    Sim.Trace.record tr
      (send ~t:(0.1 *. float_of_int i) ~id:i ~src:0 ~dst:1 "1a")
  done;
  for i = 0 to 9 do
    Sim.Trace.record tr
      (deliver ~t:(1.0 +. (0.1 *. float_of_int i)) ~id:i ~src:0 ~dst:1 "1a")
  done;
  let report = Harness.Invariants.check tr in
  Alcotest.(check bool) "wrapped" true report.Harness.Invariants.wrapped;
  Alcotest.(check bool)
    (Format.asprintf "no spurious violations: %a" Harness.Invariants.pp
       report)
    true
    (Harness.Invariants.ok report)

(* --- corrupted trace via the JSONL path (the ISSUE fixture) --------- *)

(* Replay a scenario, export its trace to JSONL, tamper with one decided
   value in the serialized form, re-import — the checker must flag the
   agreement violation the corruption introduced. *)
let test_corrupted_jsonl_flagged () =
  let rp =
    match Harness.Experiments.replay "e7" with
    | Some rp -> rp
    | None -> Alcotest.fail "replay e7 unavailable"
  in
  Alcotest.(check bool)
    (Format.asprintf "pristine replay is clean: %a" Harness.Invariants.pp
       rp.Harness.Experiments.invariants)
    true
    (Harness.Invariants.ok rp.Harness.Experiments.invariants);
  let jsonl = Sim.Trace.to_jsonl rp.Harness.Experiments.trace in
  (* corrupt the last decide line: swap its value for one nobody proposed *)
  let lines = String.split_on_char '\n' jsonl in
  let is_decide l =
    (* substring search for the event tag *)
    let tag = "\"ev\":\"decide\"" in
    let nl = String.length l and nt = String.length tag in
    let rec scan i = i + nt <= nl && (String.sub l i nt = tag || scan (i + 1)) in
    scan 0
  in
  let n_decides = List.length (List.filter is_decide lines) in
  Alcotest.(check bool) "fixture has decisions" true (n_decides > 0);
  let seen = ref 0 in
  let corrupted =
    List.map
      (fun l ->
        if is_decide l then (
          incr seen;
          if !seen = n_decides then
            (* rewrite the value field; the decide object ends "value":V} *)
            match String.rindex_opt l ':' with
            | Some i -> String.sub l 0 (i + 1) ^ "424242}"
            | None -> l
          else l)
        else l)
      lines
    |> String.concat "\n"
  in
  match Sim.Trace.of_jsonl corrupted with
  | Error msg -> Alcotest.fail ("corrupted JSONL should still parse: " ^ msg)
  | Ok tr ->
      let report =
        Harness.Invariants.check
          ?proposals:rp.Harness.Experiments.proposals
          ?timer_bounds:rp.Harness.Experiments.timer_bounds tr
      in
      Alcotest.(check bool) "corruption detected" false
        (Harness.Invariants.ok report);
      Alcotest.(check bool) "named agreement" true
        (has_violation ~check:"agreement" report);
      Alcotest.(check bool) "named validity" true
        (has_violation ~check:"validity" report)

(* --- every experiment scenario replays cleanly ---------------------- *)

let test_all_replays_pass () =
  List.iter
    (fun id ->
      match Harness.Experiments.replay id with
      | None -> Alcotest.fail (id ^ ": no replay defined")
      | Some rp ->
          Alcotest.(check bool)
            (Format.asprintf "%s: %a" id Harness.Invariants.pp
               rp.Harness.Experiments.invariants)
            true
            (Harness.Invariants.ok rp.Harness.Experiments.invariants);
          Alcotest.(check bool)
            (id ^ ": trace non-empty")
            true
            (Sim.Trace.length rp.Harness.Experiments.trace > 0))
    Harness.Experiments.ids

let suite =
  [
    Alcotest.test_case "clean trace passes" `Quick test_clean_trace_passes;
    Alcotest.test_case "agreement violation" `Quick test_agreement_violation;
    Alcotest.test_case "decide-once violation" `Quick
      test_decide_once_violation;
    Alcotest.test_case "validity violation" `Quick test_validity_violation;
    Alcotest.test_case "causality violations" `Quick test_causality_violations;
    Alcotest.test_case "session monotonicity" `Quick
      test_session_monotonicity_violation;
    Alcotest.test_case "timer sanity" `Quick test_timer_violations;
    Alcotest.test_case "sigma timer bound" `Quick test_sigma_bound;
    Alcotest.test_case "wrapped ring skips causality" `Quick
      test_wrapped_trace_skips_causality;
    Alcotest.test_case "corrupted JSONL is flagged" `Quick
      test_corrupted_jsonl_flagged;
    Alcotest.test_case "all 15 experiment replays pass" `Slow
      test_all_replays_pass;
  ]
