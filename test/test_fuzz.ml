(* Fuzzer tests: generator admissibility, scenario JSON round-trips,
   shrinker properties (same invariant, never grows, deterministic),
   campaign determinism across domain counts, corpus file round-trips
   and replay, and the b-consensus round-jump regression the fuzzer
   found. *)

module F = Harness.Fuzz
module Fs = Harness.Fuzz_scenario

(* --- Generation -------------------------------------------------------- *)

let case_arb =
  QCheck.make
    ~print:(fun (seed, index) -> Printf.sprintf "seed=%Ld index=%d" seed index)
    QCheck.Gen.(
      pair (map Int64.of_int (int_range 1 1_000_000)) (int_range 0 499))

let prop_generate_valid =
  QCheck.Test.make ~name:"generated scenarios validate and are pure"
    ~count:300 case_arb (fun (seed, index) ->
      let s = F.generate ~seed ~index () in
      Fs.validate s = Ok () && Fs.equal s (F.generate ~seed ~index ()))

let prop_generate_targeted_valid =
  QCheck.Test.make ~name:"targeted generation stays admissible" ~count:100
    case_arb (fun (seed, index) ->
      List.for_all
        (fun protocol ->
          let s = F.generate ~protocol ~seed ~index () in
          Fs.validate s = Ok () && s.Fs.protocol = protocol)
        Fs.protocols)

(* --- Scenario JSON ----------------------------------------------------- *)

(* Round-trip through the rendered text, not just the tree: corpus files
   must survive print -> parse losslessly (floats, int64 seeds). *)
let prop_json_roundtrip =
  QCheck.Test.make ~name:"scenario JSON round-trips through text" ~count:200
    case_arb (fun (seed, index) ->
      let s = F.generate ~seed ~index () in
      match Sim.Json.parse (Sim.Json.print_pretty (Fs.to_json s)) with
      | Error e -> QCheck.Test.fail_reportf "parse: %s" e
      | Ok j -> (
          match Fs.of_json j with
          | Error e -> QCheck.Test.fail_reportf "of_json: %s" e
          | Ok s' -> Fs.equal s s'))

(* --- Shrinking --------------------------------------------------------- *)

(* The ungated ablation is the reliable violation source: campaigns
   against it must find the obsolete-session liveness attack.  Collect a
   couple of failing scenarios deterministically so the shrinker tests
   cannot be vacuous. *)
let failing_ungated =
  lazy
    (let rec go i acc =
       if List.length acc >= 2 || i >= 40 then List.rev acc
       else
         let s = F.generate ~protocol:Fs.Ungated_paxos ~seed:1L ~index:i () in
         match (F.run_one s).F.violations with
         | [] -> go (i + 1) acc
         | v :: _ -> go (i + 1) ((s, v.Harness.Invariants.check) :: acc)
     in
     go 0 [])

let test_ungated_attack_found () =
  let fails = Lazy.force failing_ungated in
  Alcotest.(check bool) "ungated fuzzing finds violations" true (fails <> []);
  List.iter
    (fun (_, check) -> Alcotest.(check string) "check" "liveness" check)
    fails

let prop_shrink =
  QCheck.Test.make ~name:"shrinker: same invariant, never grows, pure"
    ~count:2
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1))
    (fun i ->
      let fails = Lazy.force failing_ungated in
      if fails = [] then QCheck.Test.fail_report "no failing scenario found";
      let s, check = List.nth fails (i mod List.length fails) in
      (* A reduced try budget keeps the suite fast; the properties hold
         at any budget. *)
      let r = F.shrink ~max_tries:200 s ~check in
      let still_fails =
        List.exists
          (fun v -> v.Harness.Invariants.check = check)
          (F.run_one r.F.shrunk).F.violations
      in
      let r' = F.shrink ~max_tries:200 s ~check in
      still_fails
      && Fs.size r.F.shrunk <= Fs.size s
      && Fs.equal r.F.shrunk r'.F.shrunk
      && r.F.steps = r'.F.steps && r.F.tries = r'.F.tries)

(* --- Campaign determinism ---------------------------------------------- *)

let render s = Format.asprintf "%a" F.pp_summary s

let test_campaign_domain_invariance () =
  let run d =
    Harness.Measure.with_domains d (fun () -> F.campaign ~budget:30 ~seed:7L ())
  in
  Alcotest.(check string) "summary identical at 1 and 4 domains"
    (render (run 1)) (render (run 4))

let test_campaign_domain_invariance_with_failures () =
  (* Budget 12 covers campaign index 11, the first seed-1 scenario that
     trips the obsolete-session attack, so the rendered counterexample
     (including its shrink) is part of the comparison. *)
  let run d =
    Harness.Measure.with_domains d (fun () ->
        F.campaign ~protocol:Fs.Ungated_paxos ~budget:12 ~seed:1L ())
  in
  let s1 = run 1 and s4 = run 4 in
  Alcotest.(check bool) "campaign finds failures" true (s1.F.failures > 0);
  Alcotest.(check string) "summary identical at 1 and 4 domains" (render s1)
    (render s4)

(* --- Corpus ------------------------------------------------------------ *)

let sample_entry () =
  match Lazy.force failing_ungated with
  | [] -> Alcotest.fail "no failing scenario found"
  | (s, check) :: _ ->
      { F.format = F.corpus_format; check; detail = "unit test"; scenario = s }

let test_corpus_roundtrip () =
  let e = sample_entry () in
  match Sim.Json.parse (Sim.Json.print_pretty (F.entry_to_json e)) with
  | Error msg -> Alcotest.fail msg
  | Ok j -> (
      match F.entry_of_json j with
      | Error msg -> Alcotest.fail msg
      | Ok e' ->
          Alcotest.(check string) "check" e.F.check e'.F.check;
          Alcotest.(check string) "detail" e.F.detail e'.F.detail;
          Alcotest.(check bool) "scenario" true
            (Fs.equal e.F.scenario e'.F.scenario))

let test_corpus_save_load_replay () =
  let e = sample_entry () in
  let dir = Filename.get_temp_dir_name () in
  let path = F.save_entry ~dir e in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      match F.load_entry path with
      | Error msg -> Alcotest.fail msg
      | Ok e' -> (
          Alcotest.(check bool) "loaded scenario" true
            (Fs.equal e.F.scenario e'.F.scenario);
          match F.replay e' with
          | Ok _ -> ()
          | Error (saw, _) ->
              Alcotest.failf "replay did not reproduce %s: %s" e.F.check saw))

(* --- Regression: b-consensus round-jump -------------------------------- *)

(* Found by `fuzz --budget 500 --seed 3 --protocol b-consensus`: p1/p2
   decide 3 in round 1 before TS inside a partition; p0 restarts, jumps
   from round 0 into a later round and (before the fix) wabcast a First
   carrying its stale estimate 0, which the oracle echoed into every
   stage-2 report — overturning the decided value.  Jumping processes
   must not contribute a First for rounds they never properly entered. *)
let bc_jump_scenario_json =
  {|{
  "name": "bc-round-jump",
  "protocol": "b-consensus",
  "n": 3,
  "ts": 0.067466681291881408,
  "delta": 0.0050000000000000001,
  "rho": 0.042728282690102377,
  "seed": 4842358710450799512,
  "horizon": 0.51746668129188145,
  "network": {
    "kind": "with-duplication",
    "prob": 0.10022875408849745,
    "base": { "kind": "partitioned-until-ts", "groups": [[1, 2]] }
  },
  "initially_down": [],
  "fault_events": [
    { "at": 0.045093023642165053, "proc": 0, "action": "crash" },
    { "at": 0.059178281496594029, "proc": 0, "action": "restart" }
  ],
  "proposals": [0, 3, 1],
  "injections": []
}|}

let test_bc_round_jump_regression () =
  match Sim.Json.parse bc_jump_scenario_json with
  | Error msg -> Alcotest.fail msg
  | Ok j -> (
      match Fs.of_json j with
      | Error msg -> Alcotest.fail msg
      | Ok s ->
          let o = F.run_one s in
          List.iter
            (fun v ->
              Alcotest.failf "violation: %s (%s)" v.Harness.Invariants.check
                v.Harness.Invariants.detail)
            o.F.violations;
          Alcotest.(check int) "all three decide" 3 o.F.decided)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_generate_valid;
    QCheck_alcotest.to_alcotest prop_generate_targeted_valid;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    Alcotest.test_case "ungated attack found" `Quick test_ungated_attack_found;
    QCheck_alcotest.to_alcotest prop_shrink;
    Alcotest.test_case "campaign domain invariance" `Quick
      test_campaign_domain_invariance;
    Alcotest.test_case "campaign domain invariance (failures)" `Quick
      test_campaign_domain_invariance_with_failures;
    Alcotest.test_case "corpus JSON round-trip" `Quick test_corpus_roundtrip;
    Alcotest.test_case "corpus save/load/replay" `Quick
      test_corpus_save_load_replay;
    Alcotest.test_case "b-consensus round-jump regression" `Quick
      test_bc_round_jump_regression;
  ]
