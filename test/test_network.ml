let delta = 0.01

let decide policy ~now ~src ~dst seed =
  policy.Sim.Network.decide (Sim.Prng.create seed) ~now ~ts:1.0 ~delta ~src
    ~dst

let is_within_delta = function
  | Sim.Network.Deliver_after d -> d > 0. && d <= delta +. 1e-12
  | Sim.Network.Deliver_copies ds ->
      ds <> [] && List.for_all (fun d -> d > 0. && d <= delta +. 1e-12) ds
  | Sim.Network.Drop -> false

let test_stable_bound () =
  let p = Sim.Network.eventually_synchronous () in
  for i = 1 to 500 do
    Alcotest.(check bool) "post-TS within delta" true
      (is_within_delta (decide p ~now:1.5 ~src:0 ~dst:1 (Int64.of_int i)))
  done

let test_self_delivery_fast () =
  let p = Sim.Network.eventually_synchronous () in
  match decide p ~now:2.0 ~src:3 ~dst:3 1L with
  | Sim.Network.Deliver_after d ->
      Alcotest.(check (float 1e-12)) "self delay"
        (Sim.Network.min_delay_factor *. delta)
        d
  | Sim.Network.Deliver_copies _ | Sim.Network.Drop ->
      Alcotest.fail "self message dropped or duplicated post-TS"

let test_pre_ts_can_drop_and_delay () =
  let p = Sim.Network.eventually_synchronous () in
  let drops = ref 0 and delivers = ref 0 and long = ref 0 in
  for i = 1 to 1000 do
    match decide p ~now:0.5 ~src:0 ~dst:1 (Int64.of_int i) with
    | Sim.Network.Drop -> incr drops
    | Sim.Network.Deliver_copies _ -> incr delivers
    | Sim.Network.Deliver_after d ->
        incr delivers;
        if d > delta then incr long
  done;
  Alcotest.(check bool) "some drops" true (!drops > 300);
  Alcotest.(check bool) "some deliveries" true (!delivers > 300);
  Alcotest.(check bool) "some beyond delta (obsolete makers)" true (!long > 50)

let test_pre_loss_validation () =
  Alcotest.check_raises "pre_loss > 1 rejected"
    (Invalid_argument "Network.eventually_synchronous: pre_loss not in [0,1]")
    (fun () -> ignore (Sim.Network.eventually_synchronous ~pre_loss:1.5 ()))

let test_silent () =
  let p = Sim.Network.silent_until_ts in
  Alcotest.(check bool) "pre-TS drop" true
    (decide p ~now:0.9 ~src:0 ~dst:1 1L = Sim.Network.Drop);
  Alcotest.(check bool) "post-TS delivery" true
    (is_within_delta (decide p ~now:1.0 ~src:0 ~dst:1 1L))

let test_always_synchronous () =
  let p = Sim.Network.always_synchronous in
  Alcotest.(check bool) "pre-TS also bounded" true
    (is_within_delta (decide p ~now:0.0 ~src:0 ~dst:1 1L))

let test_deterministic () =
  let p = Sim.Network.deterministic_after_ts in
  Alcotest.(check bool) "pre-TS drop" true
    (decide p ~now:0.5 ~src:0 ~dst:1 1L = Sim.Network.Drop);
  (match decide p ~now:1.5 ~src:0 ~dst:1 1L with
  | Sim.Network.Deliver_after d ->
      Alcotest.(check (float 1e-12)) "exactly delta" delta d
  | Sim.Network.Deliver_copies _ | Sim.Network.Drop ->
      Alcotest.fail "dropped or duplicated post-TS");
  match decide p ~now:1.5 ~src:2 ~dst:2 1L with
  | Sim.Network.Deliver_after d ->
      Alcotest.(check (float 1e-12)) "self min-delay"
        (Sim.Network.min_delay_factor *. delta)
        d
  | Sim.Network.Deliver_copies _ | Sim.Network.Drop ->
      Alcotest.fail "self dropped or duplicated post-TS"

let test_partition () =
  let p = Sim.Network.partitioned_until_ts [ [ 0; 1 ]; [ 2; 3 ] ] in
  Alcotest.(check bool) "intra-group pre-TS delivered" true
    (is_within_delta (decide p ~now:0.5 ~src:0 ~dst:1 1L));
  Alcotest.(check bool) "cross-group pre-TS dropped" true
    (decide p ~now:0.5 ~src:0 ~dst:2 1L = Sim.Network.Drop);
  Alcotest.(check bool) "cross-group post-TS delivered" true
    (is_within_delta (decide p ~now:1.0 ~src:0 ~dst:2 1L));
  (* process 4 is in no group: isolated pre-TS, even from itself? it is
     its own (negative) group, so self-delivery works *)
  Alcotest.(check bool) "isolated process cut off" true
    (decide p ~now:0.5 ~src:4 ~dst:0 1L = Sim.Network.Drop);
  Alcotest.(check bool) "isolated self-delivery still works" true
    (is_within_delta (decide p ~now:0.5 ~src:4 ~dst:4 1L))

let test_duplication () =
  let p =
    Sim.Network.with_duplication ~prob:1.0 Sim.Network.always_synchronous
  in
  (match decide p ~now:1.5 ~src:0 ~dst:1 1L with
  | Sim.Network.Deliver_copies [ a; b ] ->
      Alcotest.(check bool) "both copies delta-bounded" true
        (a > 0. && a <= delta && b > 0. && b <= delta)
  | _ -> Alcotest.fail "expected two copies at prob=1");
  let p0 =
    Sim.Network.with_duplication ~prob:0.0 Sim.Network.always_synchronous
  in
  (match decide p0 ~now:1.5 ~src:0 ~dst:1 1L with
  | Sim.Network.Deliver_after _ -> ()
  | _ -> Alcotest.fail "prob=0 must not duplicate");
  Alcotest.(check bool) "bad prob rejected" true
    (try
       ignore
         (Sim.Network.with_duplication ~prob:2.0 Sim.Network.always_synchronous);
       false
     with Invalid_argument _ -> true)

let test_hook_override () =
  let base = Sim.Network.silent_until_ts in
  let p =
    Sim.Network.with_hook ~name:"test" base
      (fun ~now:_ ~ts:_ ~delta:_ ~src ~dst:_ ->
        if src = 7 then Some (Sim.Network.Deliver_after 0.001) else None)
  in
  Alcotest.(check bool) "hook overrides" true
    (decide p ~now:0.5 ~src:7 ~dst:0 1L = Sim.Network.Deliver_after 0.001);
  Alcotest.(check bool) "hook defers" true
    (decide p ~now:0.5 ~src:0 ~dst:0 1L = Sim.Network.Drop)

let test_reordering () =
  let window = 4. *. delta in
  let base = Sim.Network.always_synchronous in
  let p = Sim.Network.with_reordering ~window base in
  for i = 1 to 200 do
    let seed = Int64.of_int i in
    (* Deterministic: equal seeds give equal decisions. *)
    Alcotest.(check bool) "deterministic" true
      (decide p ~now:0.5 ~src:0 ~dst:1 seed
      = decide p ~now:0.5 ~src:0 ~dst:1 seed);
    (* Pre-TS jitter is bounded by [window] relative to the base
       schedule (the wrapper consumes the base's draws first, so the
       same seed exposes the underlying delay). *)
    (match
       ( decide base ~now:0.5 ~src:0 ~dst:1 seed,
         decide p ~now:0.5 ~src:0 ~dst:1 seed )
     with
    | Sim.Network.Deliver_after d0, Sim.Network.Deliver_after d ->
        Alcotest.(check bool) "jitter within window" true
          (d >= d0 && d <= d0 +. window)
    | _ -> Alcotest.fail "always_synchronous must deliver singly");
    (* Post-TS traffic is untouched: it must stay within delta. *)
    Alcotest.(check bool) "post-TS untouched" true
      (decide p ~now:1.5 ~src:0 ~dst:1 seed
      = decide base ~now:1.5 ~src:0 ~dst:1 seed)
  done;
  Alcotest.(check bool) "negative window rejected" true
    (try
       ignore (Sim.Network.with_reordering ~window:(-1.) base);
       false
     with Invalid_argument _ -> true)

let prop_post_ts_always_delivers =
  QCheck.Test.make ~name:"every policy is delta-bounded after TS" ~count:300
    QCheck.(pair int64 (pair (int_bound 9) (int_bound 9)))
    (fun (seed, (src, dst)) ->
      List.for_all
        (fun p ->
          match decide p ~now:1.0 ~src ~dst seed with
          | Sim.Network.Deliver_after d -> d > 0. && d <= delta +. 1e-12
          | Sim.Network.Deliver_copies ds ->
              ds <> []
              && List.for_all (fun d -> d > 0. && d <= delta +. 1e-12) ds
          | Sim.Network.Drop -> false)
        [
          Sim.Network.eventually_synchronous ();
          Sim.Network.silent_until_ts;
          Sim.Network.always_synchronous;
          Sim.Network.deterministic_after_ts;
          Sim.Network.partitioned_until_ts [ [ 0; 1; 2 ] ];
          Sim.Network.with_duplication ~prob:0.5
            (Sim.Network.eventually_synchronous ());
        ])

let suite =
  [
    Alcotest.test_case "post-TS bounded by delta" `Quick test_stable_bound;
    Alcotest.test_case "self delivery fast" `Quick test_self_delivery_fast;
    Alcotest.test_case "pre-TS drops and delays" `Quick
      test_pre_ts_can_drop_and_delay;
    Alcotest.test_case "pre_loss validated" `Quick test_pre_loss_validation;
    Alcotest.test_case "silent policy" `Quick test_silent;
    Alcotest.test_case "always synchronous" `Quick test_always_synchronous;
    Alcotest.test_case "deterministic policy" `Quick test_deterministic;
    Alcotest.test_case "partition policy" `Quick test_partition;
    Alcotest.test_case "duplication wrapper" `Quick test_duplication;
    Alcotest.test_case "hook override" `Quick test_hook_override;
    Alcotest.test_case "reordering wrapper" `Quick test_reordering;
    QCheck_alcotest.to_alcotest prop_post_ts_always_delivers;
  ]
