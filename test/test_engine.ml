(* Engine semantics, exercised through tiny purpose-built protocols. *)

module E = Sim.Engine

type ping_msg = Ping | Pong

(* Process 0 pings everyone at boot; receivers pong back; p0 decides on
   the first pong, others decide on the ping. *)
let ping_protocol =
  {
    E.name = "ping";
    on_boot =
      (fun ctx ->
        if E.self ctx = 0 then E.broadcast ctx Ping;
        0);
    on_message =
      (fun ctx st ~src:_ msg ->
        (match msg with
        | Ping ->
            E.send ctx ~dst:0 Pong;
            E.decide ctx 100
        | Pong -> E.decide ctx 100);
        st + 1);
    on_timer = (fun _ st ~tag:_ -> st);
    on_restart = (fun _ ~persisted -> match persisted with Some s -> s | None -> 0);
    msg_payload = (function Ping -> Sim.Trace.info "ping" | Pong -> Sim.Trace.info "pong");
  }

let base_scenario ?(n = 3) ?(seed = 1L) ?faults ?horizon ?network
    ?stop_on_all_decided ?record_trace () =
  Sim.Scenario.make ~name:"engine-test" ~n ~ts:0. ~delta:0.01 ~seed ?faults
    ?horizon ?network ?stop_on_all_decided ?record_trace ()

let test_ping_all_decide () =
  let r = E.run (base_scenario ()) ping_protocol in
  Alcotest.(check bool) "all decided" true (E.all_decided r);
  Alcotest.(check int) "value recorded" 100
    (match r.E.decision_values.(1) with Some v -> v | None -> -1)

let test_determinism () =
  let run () =
    let r = E.run (base_scenario ~n:5 ~seed:33L ()) ping_protocol in
    ( r.E.decision_times,
      r.E.messages_sent,
      r.E.messages_delivered,
      r.E.end_time )
  in
  Alcotest.(check bool) "two runs identical" true (run () = run ())

let test_seed_changes_timing () =
  let time seed =
    (E.run (base_scenario ~n:5 ~seed ()) ping_protocol).E.end_time
  in
  Alcotest.(check bool) "different seeds give different schedules" true
    (time 1L <> time 2L)

let test_broadcast_reaches_all_including_self () =
  let counters = Array.make 4 0 in
  let proto =
    {
      E.name = "bcast";
      on_boot = (fun ctx -> if E.self ctx = 2 then E.broadcast ctx Ping; 0);
      on_message =
        (fun ctx st ~src:_ _ ->
          counters.(E.self ctx) <- counters.(E.self ctx) + 1;
          E.decide ctx 0;
          st);
      on_timer = (fun _ st ~tag:_ -> st);
      on_restart = (fun _ ~persisted:_ -> 0);
      msg_payload = (fun _ -> Sim.Trace.info "m");
    }
  in
  ignore (E.run (base_scenario ~n:4 ()) proto);
  Alcotest.(check (array int)) "each got exactly one" [| 1; 1; 1; 1 |] counters

let test_timer_fires_once_with_local_delay () =
  let fired = ref [] in
  let proto =
    {
      E.name = "timer";
      on_boot =
        (fun ctx ->
          E.set_timer ctx ~local_delay:0.05 ~tag:7;
          0);
      on_message = (fun _ st ~src:_ _ -> st);
      on_timer =
        (fun ctx st ~tag ->
          fired := (E.self ctx, tag, E.oracle_time ctx) :: !fired;
          E.decide ctx 0;
          st);
      on_restart = (fun _ ~persisted:_ -> 0);
      msg_payload = (fun _ -> Sim.Trace.info "m");
    }
  in
  ignore (E.run (base_scenario ~n:2 ()) proto);
  Alcotest.(check int) "one firing per process" 2 (List.length !fired);
  List.iter
    (fun (_, tag, t) ->
      Alcotest.(check int) "tag preserved" 7 tag;
      (* rho = 0, so local delay = real delay *)
      Alcotest.(check (float 1e-9)) "fire time" 0.05 t)
    !fired

let test_timer_respects_clock_rate () =
  (* With rho > 0 the real firing time is local_delay / rate, inside the
     theoretical bounds. *)
  let fire_time = ref 0. in
  let proto =
    {
      E.name = "timer-rho";
      on_boot =
        (fun ctx ->
          if E.self ctx = 0 then E.set_timer ctx ~local_delay:0.1 ~tag:0;
          0);
      on_message = (fun _ st ~src:_ _ -> st);
      on_timer =
        (fun ctx st ~tag:_ ->
          if E.self ctx = 0 then fire_time := E.oracle_time ctx;
          E.decide ctx 0;
          st);
      on_restart = (fun _ ~persisted:_ -> 0);
      msg_payload = (fun _ -> Sim.Trace.info "m");
    }
  in
  let sc =
    Sim.Scenario.make ~name:"engine-test" ~n:1 ~ts:0. ~delta:0.01 ~rho:0.2
      ~seed:5L ()
  in
  ignore (E.run sc proto);
  let lo, hi = Sim.Clock.real_duration_bounds ~rho:0.2 0.1 in
  Alcotest.(check bool) "within drift bounds" true
    (!fire_time >= lo -. 1e-9 && !fire_time <= hi +. 1e-9)

let test_crash_cancels_timers_and_drops_messages () =
  let fired = ref 0 in
  let proto =
    {
      E.name = "crashy";
      on_boot =
        (fun ctx ->
          if E.self ctx = 1 then E.set_timer ctx ~local_delay:0.5 ~tag:0;
          if E.self ctx = 0 then E.send ctx ~dst:1 Ping;
          0);
      on_message = (fun _ _st ~src:_ _ -> Alcotest.fail "p1 should be down");
      on_timer =
        (fun _ st ~tag:_ ->
          incr fired;
          st);
      on_restart = (fun _ ~persisted:_ -> 0);
      msg_payload = (fun _ -> Sim.Trace.info "m");
    }
  in
  (* p1 crashes almost immediately: before the ping arrives and before
     its timer fires. *)
  let faults = Sim.Fault.make [ Sim.Fault.crash ~at:0.00001 1 ] in
  let r =
    E.run
      (base_scenario ~n:2 ~faults ~horizon:1.0 ~stop_on_all_decided:false ())
      proto
  in
  ignore r;
  Alcotest.(check int) "timer never fired" 0 !fired

let test_restart_gets_persisted_state () =
  let observed = ref None in
  let proto =
    {
      E.name = "persist";
      on_boot =
        (fun ctx ->
          E.persist ctx 777;
          0);
      on_message = (fun _ st ~src:_ _ -> st);
      on_timer = (fun _ st ~tag:_ -> st);
      on_restart =
        (fun ctx ~persisted ->
          observed := persisted;
          E.decide ctx 0;
          0);
      msg_payload = (fun _ -> Sim.Trace.info "m");
    }
  in
  let faults = Sim.Fault.crash_then_restart ~crash_at:0.1 ~restart_at:0.2 0 in
  ignore
    (E.run
       (base_scenario ~n:1 ~faults ~horizon:0.5 ~stop_on_all_decided:false ())
       proto);
  Alcotest.(check (option int)) "persisted state handed back" (Some 777)
    !observed

let test_message_to_down_process_dropped () =
  let r =
    E.run
      (base_scenario ~n:3
         ~faults:(Sim.Fault.make ~initially_down:[ 1 ] [])
         ~horizon:0.2 ~stop_on_all_decided:false ())
      ping_protocol
  in
  Alcotest.(check bool) "p1 never decided" true
    (r.E.decision_values.(1) = None);
  Alcotest.(check bool) "some drop happened" true (r.E.messages_dropped >= 1)

let test_injection_delivered_at_time () =
  let got = ref [] in
  let proto =
    {
      E.name = "inject";
      on_boot = (fun _ -> 0);
      on_message =
        (fun ctx st ~src msg ->
          got := (src, msg, E.oracle_time ctx) :: !got;
          E.decide ctx 0;
          st);
      on_timer = (fun _ st ~tag:_ -> st);
      on_restart = (fun _ ~persisted:_ -> 0);
      msg_payload = (fun _ -> Sim.Trace.info "m");
    }
  in
  ignore
    (E.run
       ~injections:[ (0.25, 9, 0, Ping) ]
       (base_scenario ~n:1 ~horizon:1.0 ())
       proto);
  match !got with
  | [ (9, Ping, t) ] -> Alcotest.(check (float 1e-9)) "at 0.25" 0.25 t
  | _ -> Alcotest.fail "expected exactly the injected message"

let test_horizon_stops_run () =
  let proto =
    {
      E.name = "forever";
      on_boot =
        (fun ctx ->
          E.set_timer ctx ~local_delay:0.1 ~tag:0;
          0);
      on_message = (fun _ st ~src:_ _ -> st);
      on_timer =
        (fun ctx st ~tag:_ ->
          E.set_timer ctx ~local_delay:0.1 ~tag:0;
          st + 1);
      on_restart = (fun _ ~persisted:_ -> 0);
      msg_payload = (fun _ -> Sim.Trace.info "m");
    }
  in
  let r =
    E.run (base_scenario ~n:1 ~horizon:1.0 ~stop_on_all_decided:false ()) proto
  in
  Alcotest.(check bool) "stopped at horizon" true (r.E.end_time <= 1.0);
  Alcotest.(check bool) "ticked about 10 times" true
    (match r.E.final_states.(0) with Some k -> k >= 9 && k <= 10 | None -> false)

let test_agreement_violation_flagged () =
  let proto =
    {
      E.name = "disagree";
      on_boot =
        (fun ctx ->
          E.decide ctx (E.self ctx);
          0);
      on_message = (fun _ st ~src:_ _ -> st);
      on_timer = (fun _ st ~tag:_ -> st);
      on_restart = (fun _ ~persisted:_ -> 0);
      msg_payload = (fun _ -> Sim.Trace.info "m");
    }
  in
  let r = E.run (base_scenario ~n:2 ()) proto in
  Alcotest.(check bool) "violation detected" true
    (r.E.agreement_violation <> None);
  Alcotest.(check bool) "all_decided reports false on violation" false
    (E.all_decided r)

let test_decide_idempotent () =
  let proto =
    {
      E.name = "double-decide";
      on_boot =
        (fun ctx ->
          E.decide ctx 1;
          E.decide ctx 2;
          (* second decide ignored *)
          Alcotest.(check bool) "has_decided" true (E.has_decided ctx);
          0);
      on_message = (fun _ st ~src:_ _ -> st);
      on_timer = (fun _ st ~tag:_ -> st);
      on_restart = (fun _ ~persisted:_ -> 0);
      msg_payload = (fun _ -> Sim.Trace.info "m");
    }
  in
  let r = E.run (base_scenario ~n:1 ()) proto in
  Alcotest.(check (option int)) "first decision wins" (Some 1)
    r.E.decision_values.(0);
  Alcotest.(check bool) "no violation from second decide" true
    (r.E.agreement_violation = None)

let test_trace_recording () =
  let r =
    E.run (base_scenario ~n:3 ~record_trace:true ()) ping_protocol
  in
  Alcotest.(check bool) "trace non-empty" true (Sim.Trace.length r.E.trace > 0);
  Alcotest.(check int) "decide entries match" 3
    (List.length (Sim.Trace.decisions r.E.trace))

let test_proposals_and_ctx_accessors () =
  let seen = ref [] in
  let proto =
    {
      E.name = "accessors";
      on_boot =
        (fun ctx ->
          seen := (E.self ctx, E.n_processes ctx, E.proposal ctx) :: !seen;
          ignore (Sim.Prng.next_int64 (E.rng ctx));
          E.note ctx "booted";
          E.decide ctx (E.proposal ctx);
          0);
      on_message = (fun _ st ~src:_ _ -> st);
      on_timer = (fun _ st ~tag:_ -> st);
      on_restart = (fun _ ~persisted:_ -> 0);
      msg_payload = (fun _ -> Sim.Trace.info "m");
    }
  in
  let sc =
    Sim.Scenario.make ~name:"engine-test" ~n:3 ~ts:0. ~delta:0.01 ~seed:1L
      ~proposals:[| 10; 20; 30 |] ()
  in
  ignore (E.run sc proto);
  Alcotest.(check (list (triple int int int)))
    "ctx accessors"
    [ (0, 3, 10); (1, 3, 20); (2, 3, 30) ]
    (List.sort compare !seen)

let test_invalid_scenario_rejected () =
  Alcotest.(check bool) "invalid scenario raises" true
    (try
       ignore (E.run (Sim.Scenario.make ~n:0 ()) ping_protocol);
       false
     with Invalid_argument _ -> true)

let prop_trace_times_monotone =
  (* the engine must process events in non-decreasing time order; the
     trace records processing order, so its timestamps are sorted *)
  QCheck.Test.make ~name:"event processing is time-monotone" ~count:30
    QCheck.(pair int64 (int_range 2 6))
    (fun (seed, n) ->
      let sc =
        Sim.Scenario.make ~name:"monotone" ~n ~ts:0.3 ~delta:0.01 ~seed
          ~network:(Sim.Network.eventually_synchronous ())
          ~record_trace:true ()
      in
      let cfg = Dgl.Config.make ~n ~delta:0.01 () in
      let r = Sim.Engine.run sc (Dgl.Modified_paxos.protocol cfg) in
      let times =
        List.map Sim.Trace.time_of (Sim.Trace.entries r.Sim.Engine.trace)
      in
      let rec sorted = function
        | a :: b :: rest -> a <= b && sorted (b :: rest)
        | _ -> true
      in
      sorted times)

let suite =
  [
    Alcotest.test_case "ping: all decide" `Quick test_ping_all_decide;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed changes timing" `Quick test_seed_changes_timing;
    Alcotest.test_case "broadcast includes self" `Quick
      test_broadcast_reaches_all_including_self;
    Alcotest.test_case "timer fires with local delay" `Quick
      test_timer_fires_once_with_local_delay;
    Alcotest.test_case "timer respects clock rate" `Quick
      test_timer_respects_clock_rate;
    Alcotest.test_case "crash cancels timers" `Quick
      test_crash_cancels_timers_and_drops_messages;
    Alcotest.test_case "restart gets persisted state" `Quick
      test_restart_gets_persisted_state;
    Alcotest.test_case "message to down process dropped" `Quick
      test_message_to_down_process_dropped;
    Alcotest.test_case "injection delivered on time" `Quick
      test_injection_delivered_at_time;
    Alcotest.test_case "horizon stops run" `Quick test_horizon_stops_run;
    Alcotest.test_case "agreement violation flagged" `Quick
      test_agreement_violation_flagged;
    Alcotest.test_case "decide idempotent" `Quick test_decide_idempotent;
    Alcotest.test_case "trace recording" `Quick test_trace_recording;
    Alcotest.test_case "ctx accessors" `Quick
      test_proposals_and_ctx_accessors;
    Alcotest.test_case "invalid scenario rejected" `Quick
      test_invalid_scenario_rejected;
    QCheck_alcotest.to_alcotest prop_trace_times_monotone;
  ]
