let with_pool domains f =
  let pool = Sim.Domain_pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Sim.Domain_pool.shutdown pool) (fun () ->
      f pool)

let test_map_preserves_order () =
  with_pool 4 (fun pool ->
      let xs = List.init 200 Fun.id in
      Alcotest.(check (list int))
        "results in submission order"
        (List.map (fun i -> i * i) xs)
        (Sim.Domain_pool.map pool (fun i -> i * i) xs))

let test_pool_of_one () =
  with_pool 1 (fun pool ->
      Alcotest.(check int) "size" 1 (Sim.Domain_pool.size pool);
      Alcotest.(check (list string))
        "serial path"
        [ "0"; "1"; "2" ]
        (Sim.Domain_pool.map pool string_of_int [ 0; 1; 2 ]))

let test_empty_and_singleton () =
  with_pool 3 (fun pool ->
      Alcotest.(check (list int)) "empty" []
        (Sim.Domain_pool.map pool (fun i -> i) []);
      Alcotest.(check (list int))
        "singleton" [ 42 ]
        (Sim.Domain_pool.map pool (fun i -> i + 1) [ 41 ]))

let test_exception_propagates () =
  with_pool 4 (fun pool ->
      (* Several elements fail; the lowest index must win so the observed
         exception does not depend on scheduling. *)
      Alcotest.check_raises "lowest failing index wins" (Failure "boom 3")
        (fun () ->
          ignore
            (Sim.Domain_pool.map pool
               (fun i ->
                 if i >= 3 then failwith (Printf.sprintf "boom %d" i) else i)
               (List.init 16 Fun.id))))

let test_pool_usable_after_exception () =
  with_pool 4 (fun pool ->
      (try ignore (Sim.Domain_pool.map pool (fun _ -> failwith "x") [ 1; 2 ])
       with Failure _ -> ());
      Alcotest.(check (list int))
        "map still works" [ 2; 4; 6 ]
        (Sim.Domain_pool.map pool (fun i -> 2 * i) [ 1; 2; 3 ]))

let test_nested_map () =
  with_pool 4 (fun pool ->
      let got =
        Sim.Domain_pool.map pool
          (fun i ->
            Sim.Domain_pool.map pool (fun j -> (10 * i) + j) [ 0; 1; 2 ])
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list (list int)))
        "nested maps on the same pool"
        [ [ 10; 11; 12 ]; [ 20; 21; 22 ]; [ 30; 31; 32 ]; [ 40; 41; 42 ] ]
        got)

let test_shutdown_idempotent () =
  let pool = Sim.Domain_pool.create ~domains:3 () in
  Sim.Domain_pool.shutdown pool;
  Sim.Domain_pool.shutdown pool;
  Alcotest.(check (list int))
    "map after shutdown runs on caller" [ 1; 2 ]
    (Sim.Domain_pool.map pool (fun i -> i) [ 1; 2 ])

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
    Alcotest.test_case "pool of one is serial" `Quick test_pool_of_one;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "usable after exception" `Quick
      test_pool_usable_after_exception;
    Alcotest.test_case "nested map" `Quick test_nested_map;
    Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
  ]
